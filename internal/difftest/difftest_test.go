package difftest

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/workload"
)

// TestDiffGrid is the diff-smoke sweep: every registered engine over the
// checked-in spec grid, all oracle checks on. `make diff-smoke` runs it
// under -race.
func TestDiffGrid(t *testing.T) {
	specs, err := LoadGrid(filepath.Join("testdata", "grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 40 {
		t.Fatalf("grid has %d specs, the sweep promises at least 40", len(specs))
	}
	// Every adversarial corner shape must stay in the grid, and every
	// mainnet-shaped scenario stream with it.
	covered := map[string]bool{}
	for _, s := range specs {
		covered[s.Label()] = true
	}
	for _, kind := range workload.SpecKinds {
		if kind == "sct" || kind == "erc20" {
			continue // useful sweeps, but not required corners
		}
		if !covered[kind] {
			t.Errorf("grid covers no %q workload", kind)
		}
	}
	for _, name := range workload.Scenarios {
		if !covered["scenario-"+name] {
			t.Errorf("grid covers no %q scenario", name)
		}
	}

	// When MTPU_DIFF_REPRO_DIR is set (CI does), every divergence is
	// shrunk and written there so the run's artifact holds ready-made
	// `mtpu-run -diff` reproducers.
	reproDir := os.Getenv("MTPU_DIFF_REPRO_DIR")
	h := &Harness{}
	for i, spec := range specs {
		t.Run(spec.Label()+"/"+itoa(i), func(t *testing.T) {
			t.Parallel()
			fails, err := h.Run(spec)
			if err != nil {
				t.Fatalf("spec %s: %v", spec, err)
			}
			for _, f := range fails {
				t.Errorf("%v", f)
				if reproDir == "" {
					continue
				}
				if out, werr := h.WriteReproducer(reproDir, f); werr != nil {
					t.Logf("writing reproducer: %v", werr)
				} else {
					t.Logf("shrunk reproducer: %s", out)
				}
			}
		})
	}
}

// TestCorpusSeedsPass: the checked-in corner seeds replay green (a red
// seed would mean a known-unfixed divergence slipped into the corpus).
func TestCorpusSeedsPass(t *testing.T) {
	specs, err := CorpusSpecs(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("empty fuzz seed corpus")
	}
	h := &Harness{}
	for _, spec := range specs {
		if fails, err := h.Run(spec); err != nil {
			t.Errorf("%s: %v", spec, err)
		} else {
			for _, f := range fails {
				t.Errorf("%v", f)
			}
		}
	}
}

// injectScheduleBug is the deliberately-injected scheduler bug of the
// mutation test: the latest-starting dispatch is moved to cycle 0, in
// front of the dependencies it was scheduled behind.
func injectScheduleBug(target engine.Mode) func(engine.Mode, *core.Result) {
	return func(m engine.Mode, res *core.Result) {
		if m != target {
			return
		}
		ds := res.Sched.Dispatches
		if len(ds) < 2 {
			return
		}
		last := 0
		for i, d := range ds {
			if d.Start > ds[last].Start {
				last = i
			}
		}
		if ds[last].Start == 0 {
			return // already first; nothing to corrupt
		}
		ds[last].Start = 0
	}
}

// TestMutationCaughtAndShrunk: a scheduler bug injected into the
// spatial-temporal engine's result is caught by the harness and shrunk
// to a reproducer of at most 8 transactions — the acceptance bar for the
// whole differential setup.
func TestMutationCaughtAndShrunk(t *testing.T) {
	st, err := engine.Parse("spatial-temporal")
	if err != nil {
		t.Fatal(err)
	}
	h := &Harness{Modes: []engine.Mode{st}, Mutate: injectScheduleBug(st)}

	spec := Spec{Workload: workload.Spec{Kind: "chain", Txs: 32, Seed: 11}, PUs: 4}
	fails, err := h.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 {
		t.Fatalf("injected scheduler bug produced %d failures, want 1", len(fails))
	}
	if fails[0].Engine != "spatial-temporal" {
		t.Fatalf("failure attributed to %s", fails[0].Engine)
	}

	shrunk := h.Shrink(fails[0])
	kept := shrunk.Workload.Txs - len(shrunk.Workload.Drop)
	if kept > 8 {
		t.Errorf("shrunk reproducer keeps %d transactions, want <= 8", kept)
	}
	if shrunk.PUs != 1 {
		t.Errorf("shrunk reproducer still uses %d PUs", shrunk.PUs)
	}

	// The shrunk spec still reproduces under the bug…
	if fs, err := h.Run(shrunk); err != nil || len(fs) == 0 {
		t.Errorf("shrunk spec does not reproduce (err=%v, %d failures)", err, len(fs))
	}
	// …and is green on the unmutated engine, so the bug is the engine's.
	clean := &Harness{Modes: []engine.Mode{st}}
	if fs, err := clean.Run(shrunk); err != nil {
		t.Errorf("shrunk spec unrunnable without the bug: %v", err)
	} else if len(fs) != 0 {
		t.Errorf("shrunk spec fails even without the bug: %v", fs[0])
	}
}

// TestMutationDigestCorruption: a corrupted state digest (the classic
// "wrong answer, plausible schedule" bug) is also caught.
func TestMutationDigestCorruption(t *testing.T) {
	st, err := engine.Parse("spatial-temporal")
	if err != nil {
		t.Fatal(err)
	}
	h := &Harness{Modes: []engine.Mode{st}, Mutate: func(m engine.Mode, res *core.Result) {
		res.StateDigest[0] ^= 0xff
	}}
	fails, err := h.Run(Spec{Workload: workload.Spec{Kind: "token", Txs: 8, Dep: 0.5, Seed: 21}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || !strings.Contains(fails[0].Err.Error(), "digest") {
		t.Fatalf("digest corruption not caught: %v", fails)
	}
}

// TestDDMin: the reducer isolates a non-adjacent failing pair.
func TestDDMin(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	probes := 0
	got := ddmin(items, func(keep []int) bool {
		probes++
		has3, has7 := false, false
		for _, k := range keep {
			has3 = has3 || k == 3
			has7 = has7 || k == 7
		}
		return has3 && has7
	})
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("ddmin kept %v, want [3 7] (%d probes)", got, probes)
	}
}

// TestWriteReproducer: a failure round-trips through the corpus file
// format with its triage context.
func TestWriteReproducer(t *testing.T) {
	st, err := engine.Parse("spatial-temporal")
	if err != nil {
		t.Fatal(err)
	}
	h := &Harness{Modes: []engine.Mode{st}, Mutate: injectScheduleBug(st)}
	fails, err := h.Run(Spec{Workload: workload.Spec{Kind: "chain", Txs: 16, Seed: 31}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 {
		t.Fatalf("%d failures, want 1", len(fails))
	}
	dir := t.TempDir()
	path, err := h.WriteReproducer(dir, fails[0])
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"engine": "spatial-temporal"`) {
		t.Errorf("reproducer misses the engine name:\n%s", data)
	}
	spec, err := ParseSpecFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Workload.Kind != "chain" {
		t.Errorf("reproducer spec kind %q", spec.Workload.Kind)
	}
	// The bare-Spec form parses too, and junk fields are rejected.
	if _, err := ParseSpecFile([]byte(`{"workload":{"kind":"token","txs":4,"seed":1}}`)); err != nil {
		t.Errorf("bare spec rejected: %v", err)
	}
	if _, err := ParseSpecFile([]byte(`{"workload":{"kind":"token","txs":4,"seed":1},"warp":2}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}
