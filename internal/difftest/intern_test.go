package difftest

import (
	"path/filepath"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/evm"
	"mtpu/internal/workload"
)

// stripInterning deep-copies traces with every dense id removed — the
// pre-interning shape of the input, which forces every warm structure
// (DB-cache tags, State Buffer, fill memo) onto its local-interning
// slow path.
func stripInterning(traces []*arch.TxTrace) []*arch.TxTrace {
	out := make([]*arch.TxTrace, len(traces))
	for i, t := range traces {
		ct := *t
		ct.Syms = nil
		ct.Steps = make([]evm.Step, len(t.Steps))
		copy(ct.Steps, t.Steps)
		for j := range ct.Steps {
			ct.Steps[j].CodeID = 0
			ct.Steps[j].TouchID = 0
		}
		out[i] = &ct
	}
	return out
}

// TestInternedMatchesUninternedOracle replays every grid spec on every
// engine twice — once with the symbol-table ids the trace build
// assigned, once with the ids stripped — and requires byte-identical
// timing. Dense-id interning is a pure layout optimization: the
// simulated machine must not be able to tell how the simulator keys its
// maps.
func TestInternedMatchesUninternedOracle(t *testing.T) {
	specs, err := LoadGrid(filepath.Join("testdata", "grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if spec.Stream != nil || spec.Scenario != nil {
			// Chained specs sweep the state layer, not trace interning;
			// their single-block constituents are covered above.
			continue
		}
		genesis, block, err := spec.Workload.Generate()
		if err != nil {
			t.Fatalf("%s: generate: %v", spec, err)
		}
		traces, receipts, digest, err := core.CollectTraces(genesis, block)
		if err != nil {
			t.Fatalf("%s: oracle: %v", spec, err)
		}
		stripped := stripInterning(traces)

		acc := core.New(spec.Config())
		acc.LearnHotspots(traces, spec.topN())
		opts := core.ReplayOpts{Genesis: genesis}
		for _, m := range engine.Modes() {
			got, err := acc.ReplayWith(block, traces, receipts, digest, m, opts)
			if err != nil {
				t.Fatalf("%s/%s: interned replay: %v", spec, m, err)
			}
			want, err := acc.ReplayWith(block, stripped, receipts, digest, m, opts)
			if err != nil {
				t.Fatalf("%s/%s: uninterned replay: %v", spec, m, err)
			}
			if got.Cycles != want.Cycles {
				t.Errorf("%s/%s: cycles %d interned vs %d uninterned", spec, m, got.Cycles, want.Cycles)
			}
			if got.Pipeline != want.Pipeline {
				t.Errorf("%s/%s: pipeline stats diverged:\ninterned   %+v\nuninterned %+v",
					spec, m, got.Pipeline, want.Pipeline)
			}
			if got.Utilization != want.Utilization {
				t.Errorf("%s/%s: utilization %v vs %v", spec, m, got.Utilization, want.Utilization)
			}
			if len(got.Sched.Dispatches) != len(want.Sched.Dispatches) {
				t.Fatalf("%s/%s: %d dispatches vs %d", spec, m,
					len(got.Sched.Dispatches), len(want.Sched.Dispatches))
			}
			for i := range got.Sched.Dispatches {
				if got.Sched.Dispatches[i] != want.Sched.Dispatches[i] {
					t.Fatalf("%s/%s: dispatch %d = %+v interned vs %+v uninterned", spec, m, i,
						got.Sched.Dispatches[i], want.Sched.Dispatches[i])
				}
			}
		}
	}
}

// TestStrippedTracesExerciseFallback guards the test above against
// vacuity: a representative workload must actually carry interned ids,
// and stripping must remove them.
func TestStrippedTracesExerciseFallback(t *testing.T) {
	spec := workload.Spec{Kind: "token", Txs: 32, Dep: 0.5, Seed: 7}
	genesis, block, err := spec.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	interned := 0
	for _, tr := range traces {
		for _, s := range tr.Steps {
			if s.CodeID != 0 {
				interned++
			}
		}
	}
	if interned == 0 {
		t.Fatal("collected traces carry no interned ids; the oracle test is vacuous")
	}
	for _, tr := range stripInterning(traces) {
		for _, s := range tr.Steps {
			if s.CodeID != 0 || s.TouchID != 0 {
				t.Fatal("stripInterning left an id behind")
			}
		}
	}
}
