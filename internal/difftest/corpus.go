package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Reproducer is the corpus file format: a shrunk failing spec plus the
// triage context (which engine diverged and how). The spec alone is
// enough to replay it — `mtpu-run -diff FILE` accepts either a bare
// Spec or a Reproducer.
type Reproducer struct {
	Engine string `json:"engine,omitempty"`
	Error  string `json:"error,omitempty"`
	Spec   Spec   `json:"spec"`
}

// ParseSpecFile strictly decodes a corpus file, accepting either a
// Reproducer envelope or a bare Spec.
func ParseSpecFile(data []byte) (Spec, error) {
	if probe := struct {
		Spec *Spec `json:"spec"`
	}{}; json.Unmarshal(data, &probe) == nil && probe.Spec != nil {
		var rep Reproducer
		if err := strictDecode(data, &rep); err != nil {
			return Spec{}, err
		}
		return rep.Spec, rep.Spec.Validate()
	}
	var s Spec
	if err := strictDecode(data, &s); err != nil {
		return Spec{}, err
	}
	return s, s.Validate()
}

// LoadGrid reads a checked-in spec grid: a JSON array of Specs.
func LoadGrid(path string) ([]Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var specs []Spec
	if err := strictDecode(data, &specs); err != nil {
		return nil, fmt.Errorf("difftest: grid %s: %w", path, err)
	}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("difftest: grid %s entry %d: %w", path, i, err)
		}
	}
	return specs, nil
}

func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// WriteReproducer shrinks the failure and writes it under dir as a
// deterministically-named corpus file, returning the path. CI uploads
// the directory as an artifact, so a red diff run always ships its
// minimal reproducers.
func (h *Harness) WriteReproducer(dir string, f Failure) (string, error) {
	shrunk := h.Shrink(f)
	rep := Reproducer{Engine: f.Engine, Error: f.Err.Error(), Spec: shrunk}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	// Label/Seed cover every spec form — a stream or scenario reproducer
	// previously collapsed to the empty kind and seed 0.
	name := fmt.Sprintf("diff-%s-%s-%d.json", sanitize(f.Engine), sanitize(shrunk.Label()), shrunk.Seed())
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func sanitize(name string) string {
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// CorpusSpecs loads every *.json spec under dir, sorted by name — the
// fuzz seeds and the smoke sweep's corner cases.
func CorpusSpecs(dir string) ([]Spec, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	specs := make([]Spec, 0, len(names))
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		s, err := ParseSpecFile(data)
		if err != nil {
			return nil, fmt.Errorf("difftest: corpus %s: %w", n, err)
		}
		specs = append(specs, s)
	}
	return specs, nil
}
