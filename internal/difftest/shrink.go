package difftest

import "mtpu/internal/engine"

// Shrink reduces a failing spec to a minimal one that still fails on
// the same engine: first ddmin over the transaction set (recorded as
// workload drop indices, so the reproducer regenerates byte-identically),
// then a greedy pass over the architectural dimensions (PU count,
// candidate window, account pool). Only the originally-failing engine is
// re-run, so shrinking a single divergence never costs a full sweep per
// probe. The failure the caller holds is returned unchanged if nothing
// smaller still fails.
func (h *Harness) Shrink(f Failure) Spec {
	probe := &Harness{Modes: []engine.Mode{f.Mode}, Mutate: h.Mutate}
	fails := func(s Spec) bool {
		fs, err := probe.Run(s)
		// A spec the generator or the sequential oracle rejects is not a
		// reproducer — the divergence under reduction is the engine's.
		return err == nil && len(fs) > 0
	}

	spec := f.Spec
	if spec.Stream != nil {
		// Chained specs have no per-transaction drop encoding; shrink
		// the chain length instead, then the architectural dimensions.
		for spec.Stream.Blocks > 1 {
			s := spec
			ss := *spec.Stream
			ss.Blocks--
			s.Stream = &ss
			if !fails(s) {
				break
			}
			spec = s
		}
		return shrinkDims(spec, fails)
	}
	if spec.Scenario != nil {
		for spec.Scenario.Blocks > 1 {
			s := spec
			ss := *spec.Scenario
			ss.Blocks--
			s.Scenario = &ss
			if !fails(s) {
				break
			}
			spec = s
		}
		return shrinkDims(spec, fails)
	}
	spec = shrinkTxs(spec, fails)
	spec = shrinkDims(spec, fails)
	return spec
}

// shrinkTxs ddmins the kept-transaction set.
func shrinkTxs(spec Spec, fails func(Spec) bool) Spec {
	dropped := make(map[int]bool, len(spec.Workload.Drop))
	for _, d := range spec.Workload.Drop {
		dropped[d] = true
	}
	kept := make([]int, 0, spec.Workload.Txs)
	for i := 0; i < spec.Workload.Txs; i++ {
		if !dropped[i] {
			kept = append(kept, i)
		}
	}

	withKept := func(keep []int) Spec {
		s := spec
		inKeep := make(map[int]bool, len(keep))
		for _, k := range keep {
			inKeep[k] = true
		}
		s.Workload.Drop = nil
		for i := 0; i < s.Workload.Txs; i++ {
			if !inKeep[i] {
				s.Workload.Drop = append(s.Workload.Drop, i)
			}
		}
		return s
	}

	kept = ddmin(kept, func(keep []int) bool {
		if len(keep) == 0 {
			return false
		}
		return fails(withKept(keep))
	})
	return withKept(kept)
}

// ddmin is Zeller's delta-debugging minimization over index sets: try
// removing ever-finer chunks, keeping any reduction that still fails.
func ddmin(items []int, fails func([]int) bool) []int {
	n := 2
	for len(items) >= 2 {
		chunk := (len(items) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(items); lo += chunk {
			hi := lo + chunk
			if hi > len(items) {
				hi = len(items)
			}
			complement := make([]int, 0, len(items)-(hi-lo))
			complement = append(complement, items[:lo]...)
			complement = append(complement, items[hi:]...)
			if fails(complement) {
				items = complement
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(items) {
				break
			}
			n *= 2
			if n > len(items) {
				n = len(items)
			}
		}
	}
	return items
}

// shrinkDims greedily lowers the architectural dimensions while the
// failure persists: the smallest failing PU count, then the smallest
// failing candidate window, then the tightest account pool. Each
// dimension is independent, so a plain first-failing scan suffices.
func shrinkDims(spec Spec, fails func(Spec) bool) Spec {
	for _, pus := range []int{1, 2} {
		if spec.PUs != 0 && pus >= spec.PUs {
			break
		}
		s := spec
		s.PUs = pus
		if fails(s) {
			spec = s
			break
		}
	}
	for _, w := range []int{1, 2} {
		if spec.Window != 0 && w >= spec.Window {
			break
		}
		s := spec
		s.Window = w
		if fails(s) {
			spec = s
			break
		}
	}
	for _, acc := range []int{8, 32} {
		if spec.Stream != nil {
			if acc >= spec.Stream.AccountPool() {
				break
			}
			s := spec
			ss := *spec.Stream
			ss.Accounts = acc
			s.Stream = &ss
			if fails(s) {
				spec = s
				break
			}
			continue
		}
		if spec.Scenario != nil {
			if acc >= spec.Scenario.AccountPool() {
				break
			}
			s := spec
			ss := *spec.Scenario
			ss.Accounts = acc
			s.Scenario = &ss
			if fails(s) {
				spec = s
				break
			}
			continue
		}
		if acc >= spec.Workload.AccountPool() {
			break
		}
		s := spec
		s.Workload.Accounts = acc
		if fails(s) {
			spec = s
			break
		}
	}
	return spec
}
