package difftest

import (
	"path/filepath"
	"testing"

	"mtpu/internal/workload"
)

// fuzzSpec maps the fuzzer's primitive arguments onto a bounded Spec.
// Every input folds into some valid spec, so the whole input space
// exercises engines instead of the validator. scen % 11 >= 6 switches
// the spec to a chained Zipfian scenario stream (5 of 11 values, one
// per scenario); otherwise blocks >= 2 switches it to a chained token
// stream, and 0 and 1 keep the single-block shape.
func fuzzSpec(seed int64, kind, txs, depPct, pus, window uint8, dbLines uint16, minLine, blocks, scen uint8) Spec {
	if sc := int(scen) % 11; sc >= 6 {
		return Spec{
			Scenario: &workload.ScenarioSpec{
				Scenario: workload.Scenarios[sc-6],
				Blocks:   2 + int(blocks)%3,
				Txs:      1 + int(txs)%10,
				Skew:     float64(int(depPct)%161) / 80, // [0, 2]
				Seed:     seed,
			},
			PUs:    1 + int(pus)%8,
			Window: int(window) % 17,
		}
	}
	if n := int(blocks) % 5; n >= 2 {
		return Spec{
			Stream: &workload.StreamSpec{
				Blocks: n,
				Txs:    1 + int(txs)%12,
				Dep:    float64(int(depPct)%101) / 100,
				Seed:   seed,
			},
			PUs:    1 + int(pus)%8,
			Window: int(window) % 17,
		}
	}
	k := workload.SpecKinds[int(kind)%len(workload.SpecKinds)]
	w := workload.Spec{
		Kind: k,
		Txs:  1 + int(txs)%16,
		Seed: seed,
	}
	switch k {
	case "token", "mixed":
		w.Dep = float64(int(depPct)%101) / 100
	case "sct", "erc20":
		w.Share = float64(int(depPct)%101) / 100
	case "batch":
		contracts := []string{"TetherUSD", "Dai", "WETH9", "UniswapV2Router02"}
		w.Contract = contracts[int(depPct)%len(contracts)]
	}
	lines := int(dbLines % 66)
	if lines == 65 {
		lines = -1 // the unbounded-cache encoding
	}
	return Spec{
		Workload: w,
		PUs:      1 + int(pus)%8,
		Window:   int(window) % 17,
		DBLines:  lines,
		MinLine:  int(minLine) % 9,
	}
}

// FuzzDiffEngines fuzzes every registered engine against the sequential
// oracle, seeded from the corner corpus. Any failure is a real
// divergence: the input mapping never produces an invalid spec.
func FuzzDiffEngines(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(7), uint8(50), uint8(3), uint8(8), uint16(0), uint8(0), uint8(0), uint8(0))
	// A chained seed so the stream shape is in the corpus from the start.
	f.Add(int64(9), uint8(0), uint8(11), uint8(40), uint8(3), uint8(0), uint16(0), uint8(0), uint8(3), uint8(0))
	// A scenario seed (scen 8 → nft-mint) so the Zipfian scenario shapes
	// are in the corpus from the start too.
	f.Add(int64(17), uint8(0), uint8(9), uint8(96), uint8(3), uint8(4), uint16(0), uint8(0), uint8(1), uint8(8))
	seeds, err := CorpusSpecs(filepath.Join("testdata", "corpus"))
	if err != nil {
		f.Fatal(err)
	}
	kindIndex := map[string]uint8{}
	for i, k := range workload.SpecKinds {
		kindIndex[k] = uint8(i)
	}
	for _, s := range seeds {
		lines := uint16(0)
		switch {
		case s.DBLines > 0:
			lines = uint16(s.DBLines % 65)
		case s.DBLines == -1:
			lines = 65
		}
		f.Add(s.Workload.Seed, kindIndex[s.Workload.Kind], uint8(s.Workload.Txs-1),
			uint8(s.Workload.Dep*100), uint8(s.PUs-1), uint8(s.Window), lines, uint8(s.MinLine), uint8(0), uint8(0))
	}

	h := &Harness{}
	f.Fuzz(func(t *testing.T, seed int64, kind, txs, depPct, pus, window uint8, dbLines uint16, minLine, blocks, scen uint8) {
		spec := fuzzSpec(seed, kind, txs, depPct, pus, window, dbLines, minLine, blocks, scen)
		fails, err := h.Run(spec)
		if err != nil {
			t.Fatalf("harness error on %s: %v", spec, err)
		}
		for _, fail := range fails {
			t.Errorf("%v", fail)
		}
	})
}
