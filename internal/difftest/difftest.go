// Package difftest is the cross-engine differential test harness: it
// generates workload specs (randomized sweeps plus adversarial corners),
// runs every registered execution engine on each one, and holds every
// result to the sequential oracle — digest and receipt identity from
// core.CollectTraces, schedule validity via core.VerifyResult, and the
// counter identities of obs.Report.CheckInvariants. Any divergence is
// delta-shrunk (drop transactions, lower the PU count, squeeze the
// window and account pool) to a minimal replayable Spec.
//
// The harness is wired three ways: the TestDiffGrid sweep over
// testdata/grid.json, the FuzzDiffEngines fuzz target seeded from
// testdata/corpus, and `mtpu-run -diff FILE` for replaying a saved spec.
package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/mvstate"
	"mtpu/internal/obs"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// Spec is one differential test case: a workload recipe plus the
// architectural dimensions the sweep varies. The zero value of every
// dimension means "the Table 5 default", so corpus files stay terse.
type Spec struct {
	Workload workload.Spec `json:"workload"`
	// Stream, when non-nil, makes this a chained multi-block spec:
	// the harness replays the whole block chain per engine over an
	// mvstate store (each block against its predecessor's post-state)
	// and checks every per-block chained digest against one sequential
	// whole-stream replay. Mutually exclusive with Workload.
	Stream *workload.StreamSpec `json:"stream,omitempty"`
	// Scenario, when non-nil, makes this a chained multi-block spec over
	// one of the mainnet-shaped Zipfian scenario streams, replayed
	// exactly like Stream. Mutually exclusive with Workload and Stream.
	Scenario *workload.ScenarioSpec `json:"scenario,omitempty"`
	// PUs overrides arch.Config.NumPUs (0 = default).
	PUs int `json:"pus,omitempty"`
	// Window overrides the candidate window m (0 = default; engines that
	// never consult the window ignore it).
	Window int `json:"window,omitempty"`
	// DBLines overrides the DB-cache line capacity (0 = default,
	// -1 = unbounded).
	DBLines int `json:"db_lines,omitempty"`
	// MinLine overrides the smallest cacheable line (0 = default).
	MinLine int `json:"min_line,omitempty"`
	// HotspotTopN is how many hot contracts the Contract Table learns
	// before the replays (0 = 8, the CLI default).
	HotspotTopN int `json:"hotspot_top_n,omitempty"`
}

// Validate rejects specs outside the model's dimension ranges.
func (s Spec) Validate() error {
	switch {
	case s.Stream != nil && s.Scenario != nil:
		return fmt.Errorf("difftest: spec has both a stream and a scenario")
	case s.Stream != nil:
		if s.Workload.Kind != "" {
			return fmt.Errorf("difftest: spec has both a stream and a %q workload", s.Workload.Kind)
		}
		if err := s.Stream.Validate(); err != nil {
			return err
		}
	case s.Scenario != nil:
		if s.Workload.Kind != "" {
			return fmt.Errorf("difftest: spec has both a scenario and a %q workload", s.Workload.Kind)
		}
		if err := s.Scenario.Validate(); err != nil {
			return err
		}
	default:
		if err := s.Workload.Validate(); err != nil {
			return err
		}
	}
	if s.PUs < 0 {
		return fmt.Errorf("difftest: negative PU count %d", s.PUs)
	}
	if s.Window < 0 {
		return fmt.Errorf("difftest: negative candidate window %d", s.Window)
	}
	if s.DBLines < -1 {
		return fmt.Errorf("difftest: DB-cache capacity %d below -1 (unbounded)", s.DBLines)
	}
	if s.MinLine < 0 {
		return fmt.Errorf("difftest: negative min line %d", s.MinLine)
	}
	if s.HotspotTopN < 0 {
		return fmt.Errorf("difftest: negative hotspot top-n %d", s.HotspotTopN)
	}
	return nil
}

// Config materializes the architectural configuration the spec asks for.
func (s Spec) Config() arch.Config {
	cfg := arch.DefaultConfig()
	if s.PUs > 0 {
		cfg.NumPUs = s.PUs
	}
	if s.Window > 0 {
		cfg.CandidateWindow = s.Window
	}
	switch {
	case s.DBLines > 0:
		cfg.DBCacheEntries = s.DBLines
	case s.DBLines == -1:
		cfg.DBCacheEntries = 0 // the model's "unbounded" encoding
	}
	if s.MinLine > 0 {
		cfg.MinLineInstructions = s.MinLine
	}
	return cfg
}

func (s Spec) topN() int {
	if s.HotspotTopN > 0 {
		return s.HotspotTopN
	}
	return 8
}

// Label names the spec's workload shape for test names and reproducer
// files: the scenario name, "stream", or the single-block workload kind.
func (s Spec) Label() string {
	switch {
	case s.Scenario != nil:
		return "scenario-" + s.Scenario.Scenario
	case s.Stream != nil:
		return "stream"
	default:
		return s.Workload.Kind
	}
}

// Seed returns the generator seed, whichever spec form holds it.
func (s Spec) Seed() int64 {
	switch {
	case s.Scenario != nil:
		return s.Scenario.Seed
	case s.Stream != nil:
		return s.Stream.Seed
	default:
		return s.Workload.Seed
	}
}

// String renders the spec as its canonical single-line JSON.
func (s Spec) String() string {
	buf, err := json.Marshal(s)
	if err != nil {
		return fmt.Sprintf("difftest{%s}", s.Workload)
	}
	return string(buf)
}

// Failure is one engine's divergence from the sequential oracle on one
// spec.
type Failure struct {
	Spec   Spec
	Mode   engine.Mode
	Engine string
	Err    error
}

func (f Failure) Error() string {
	return fmt.Sprintf("difftest: engine %s diverged on %s: %v", f.Engine, f.Spec, f.Err)
}

// Harness runs specs through the registered engines. The zero value
// tests every engine with no result mutation.
type Harness struct {
	// Modes restricts the engines under test (nil = every registered
	// engine, in registration order).
	Modes []engine.Mode
	// Mutate, when non-nil, corrupts each result before verification —
	// the harness's own mutation testing uses it to prove a scheduler
	// bug cannot slip through (and to exercise the shrinker on demand).
	Mutate func(engine.Mode, *core.Result)
}

func (h *Harness) modes() []engine.Mode {
	if h.Modes != nil {
		return h.Modes
	}
	return engine.Modes()
}

// Run generates the spec's workload and runs every engine under test on
// it, returning one Failure per diverging engine. The error return is
// for the spec itself being unrunnable (invalid spec, generator or
// sequential-oracle failure) — that is a harness problem, not an engine
// divergence, and the shrinker treats it as "not failing".
func (h *Harness) Run(spec Spec) ([]Failure, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Stream != nil || spec.Scenario != nil {
		return h.runChained(spec)
	}
	genesis, block, err := spec.Workload.Generate()
	if err != nil {
		return nil, err
	}
	// The consensus DAG is every engine's input contract: check it against
	// the conflicts a sequential replay actually observes before blaming
	// any engine for what would be a generator bug.
	if err := workload.VerifyDAG(genesis, block); err != nil {
		return nil, fmt.Errorf("difftest: workload DAG: %w", err)
	}
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		return nil, fmt.Errorf("difftest: sequential oracle: %w", err)
	}

	acc := core.New(spec.Config())
	acc.LearnHotspots(traces, spec.topN())

	var failures []Failure
	head := mvstate.SnapshotOf(genesis)
	for _, m := range h.modes() {
		if err := h.runMode(acc, head, block, traces, receipts, digest, m); err != nil {
			failures = append(failures, Failure{Spec: spec, Mode: m, Engine: m.String(), Err: err})
		}
	}
	return failures, nil
}

// runChained runs a multi-block chained spec: one sequential replay of
// the whole stream over an evolving state is the oracle; then every
// engine under test replays the chain block by block over a shared
// mvstate store, each block decoded at and verified against its
// predecessor's post-state. The per-block chained digest must be
// byte-identical to the sequential whole-stream replay's digest at the
// same height, and the final folded head must equal the sequential
// end state — the digest-continuity property of the state layer.
func (h *Harness) runChained(spec Spec) ([]Failure, error) {
	var src workload.BlockSource
	var err error
	if spec.Scenario != nil {
		src, err = spec.Scenario.Open()
	} else {
		src, err = spec.Stream.Open()
	}
	if err != nil {
		return nil, err
	}
	genesis := src.Genesis()
	var blocks []*types.Block
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		blocks = append(blocks, b)
	}

	// The whole-stream sequential oracle: one evolving state, one digest
	// per block boundary.
	seq := genesis.Copy()
	seqDigests := make([]types.Hash, len(blocks))
	for i, b := range blocks {
		_, _, d, err := core.CollectTracesOn(seq, b)
		if err != nil {
			return nil, fmt.Errorf("difftest: sequential oracle at block %d: %w", i, err)
		}
		seqDigests[i] = d
	}

	accs := make(map[engine.Mode]*core.Accelerator, len(h.modes()))
	for _, m := range h.modes() {
		accs[m] = core.New(spec.Config())
	}
	var failures []Failure
	store := mvstate.NewStore(genesis, nil)
	for i, block := range blocks {
		head := store.Head()
		prep, err := core.PrepareBlock(head, block)
		if err != nil {
			return nil, fmt.Errorf("difftest: chained decode of block %d: %w", i, err)
		}
		digest := prep.DigestAt(head, block.Header.Coinbase)
		if digest != seqDigests[i] {
			return nil, fmt.Errorf("difftest: chained digest %s at block %d != whole-stream sequential %s",
				digest, i, seqDigests[i])
		}
		for _, m := range h.modes() {
			if err := h.runMode(accs[m], head, block, prep.Traces, prep.Receipts, digest, m); err != nil {
				failures = append(failures, Failure{Spec: spec, Mode: m, Engine: m.String(),
					Err: fmt.Errorf("block %d: %w", i, err)})
			}
			accs[m].LearnHotspots(prep.Traces, spec.topN())
		}
		store.Commit(prep.WriteKeys, prep.WriteVals, block.Header.Coinbase, &prep.Fees)
	}
	if got := store.HeadDigest(); got != seqDigests[len(blocks)-1] {
		return nil, fmt.Errorf("difftest: folded head digest %s != whole-stream sequential end state %s",
			got, seqDigests[len(blocks)-1])
	}
	return failures, nil
}

// OracleCheck holds one engine result to the sequential oracle: state
// digest and per-receipt identity with the golden sequential execution,
// then the engine's declared serializability verification (DAG-order
// replay or conflict cross-check) via core.VerifyResult. It is the
// re-execution check the harness applies to every grid/fuzz spec and
// the one the block-stream service's shadow validator samples.
func OracleCheck(genesis *state.StateDB, block *types.Block,
	receipts []*types.Receipt, digest types.Hash, res *core.Result) error {
	return OracleCheckAt(mvstate.SnapshotOf(genesis), block, receipts, digest, res)
}

// OracleCheckAt is OracleCheck against an mvstate snapshot of the
// pre-block state — the chained form: the stream service's shadow
// validator pins the head a block folded from and validates against
// that exact pre-state, not genesis.
func OracleCheckAt(head *mvstate.Snapshot, block *types.Block,
	receipts []*types.Receipt, digest types.Hash, res *core.Result) error {
	if res.StateDigest != digest {
		return fmt.Errorf("state digest %s != sequential %s", res.StateDigest, digest)
	}
	if len(res.Receipts) != len(receipts) {
		return fmt.Errorf("%d receipts, sequential produced %d", len(res.Receipts), len(receipts))
	}
	for i, r := range res.Receipts {
		want := receipts[i]
		if r.Status != want.Status || r.GasUsed != want.GasUsed ||
			!bytes.Equal(r.ReturnData, want.ReturnData) {
			return fmt.Errorf("receipt %d diverged: status %d/%d gas %d/%d",
				i, r.Status, want.Status, r.GasUsed, want.GasUsed)
		}
	}
	return core.VerifyResultAt(head, block, res)
}

// runMode replays one engine at the given pre-state and applies every
// oracle check. head is a one-shot snapshot of genesis or the chained
// head of a multi-block run; both read the same way.
func (h *Harness) runMode(acc *core.Accelerator, head *mvstate.Snapshot, block *types.Block,
	traces []*arch.TxTrace, receipts []*types.Receipt, digest types.Hash, m engine.Mode) error {
	res, err := acc.ReplayWith(block, traces, receipts, digest, m,
		core.ReplayOpts{Genesis: head.DB(), Head: head, Obs: obs.NewCollector()})
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if h.Mutate != nil {
		h.Mutate(m, res)
	}

	// Digest, receipt and schedule identity against the sequential oracle.
	if err := OracleCheckAt(head, block, receipts, digest, res); err != nil {
		return err
	}

	// Counter identities across the instrumentation layers.
	if res.Obs == nil {
		return fmt.Errorf("no instrumentation report collected")
	}
	if res.Obs.Makespan != res.Cycles {
		return fmt.Errorf("report makespan %d != result cycles %d", res.Obs.Makespan, res.Cycles)
	}
	if err := res.Obs.CheckInvariants(); err != nil {
		return err
	}
	return nil
}

// RunAll runs every spec and concatenates the failures; spec-level
// errors become failures attributed to no engine so a sweep never
// silently skips a spec.
func (h *Harness) RunAll(specs []Spec) []Failure {
	var out []Failure
	for _, s := range specs {
		fails, err := h.Run(s)
		if err != nil {
			out = append(out, Failure{Spec: s, Engine: "spec", Err: err})
			continue
		}
		out = append(out, fails...)
	}
	return out
}
