// Package metrics provides the small table/series formatting used by the
// benchmark harness to print paper-style tables and figure data.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v (floats via Float).
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = Float(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// Float formats a float cell: NaN renders as "-" so sparse stat tables
// stay readable, infinities as "inf"/"-inf", and negative zero (or a
// negative value rounding to zero) as "0.00".
func Float(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	s := fmt.Sprintf("%.2f", v)
	if s == "-0.00" {
		return "0.00"
	}
	return s
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage ("-18.99%").
func Pct(v float64) string {
	return fmt.Sprintf("%+.2f%%", v*100)
}

// X formats a speedup ("3.53x").
func X(v float64) string {
	return fmt.Sprintf("%.2fx", v)
}
