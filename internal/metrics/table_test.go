package metrics

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("My Title", "name", "value")
	tbl.Row("alpha", 1)
	tbl.Row("beta-long-name", 3.14159)
	out := tbl.String()

	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "alpha") {
		t.Errorf("row order: %q", lines[3])
	}
	if !strings.Contains(lines[4], "3.14") {
		t.Errorf("float formatting: %q", lines[4])
	}
	// Columns aligned: header and row share the second-column offset.
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[4], "3.14")
	if hIdx != rIdx {
		t.Errorf("misaligned columns: %d vs %d", hIdx, rIdx)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.Row("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("leading newline with empty title")
	}
}

func TestPctAndX(t *testing.T) {
	if got := Pct(-0.1899); got != "-18.99%" {
		t.Errorf("Pct: %s", got)
	}
	if got := Pct(0.5); got != "+50.00%" {
		t.Errorf("Pct positive: %s", got)
	}
	if got := X(3.53); got != "3.53x" {
		t.Errorf("X: %s", got)
	}
}
