package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("My Title", "name", "value")
	tbl.Row("alpha", 1)
	tbl.Row("beta-long-name", 3.14159)
	out := tbl.String()

	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "alpha") {
		t.Errorf("row order: %q", lines[3])
	}
	if !strings.Contains(lines[4], "3.14") {
		t.Errorf("float formatting: %q", lines[4])
	}
	// Columns aligned: header and row share the second-column offset.
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[4], "3.14")
	if hIdx != rIdx {
		t.Errorf("misaligned columns: %d vs %d", hIdx, rIdx)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.Row("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("leading newline with empty title")
	}
}

func TestFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3.14159, "3.14"},
		{0, "0.00"},
		{math.Copysign(0, -1), "0.00"}, // negative zero renders as zero
		{-0.0001, "0.00"},              // rounds to -0.00, normalized
		{math.NaN(), "-"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{-2.5, "-2.50"},
	}
	for _, c := range cases {
		if got := Float(c.in); got != c.want {
			t.Errorf("Float(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestTableRowSpecialFloats: a row containing NaN/Inf cells must render
// the placeholder, not "NaN" — a 0/0 hit ratio on an empty sweep is data
// absence, not a number.
func TestTableRowSpecialFloats(t *testing.T) {
	tbl := NewTable("t", "name", "ratio", "speedup")
	tbl.Row("empty", math.NaN(), math.Inf(1))
	out := tbl.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into table: %q", out)
	}
	if !strings.Contains(out, "-") || !strings.Contains(out, "inf") {
		t.Errorf("placeholders missing: %q", out)
	}
}

func TestPctAndX(t *testing.T) {
	if got := Pct(-0.1899); got != "-18.99%" {
		t.Errorf("Pct: %s", got)
	}
	if got := Pct(0.5); got != "+50.00%" {
		t.Errorf("Pct positive: %s", got)
	}
	if got := X(3.53); got != "3.53x" {
		t.Errorf("X: %s", got)
	}
}
