package obs

import "mtpu/internal/types"

// maxHistLine aliases MaxHistLine for the package-internal arrays.
const maxHistLine = MaxHistLine

// PUDBStats are the DB-cache counters of one PU.
type PUDBStats struct {
	Lookups   uint64 `json:"lookups"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Fills     uint64 `json:"fills"`
	Evictions uint64 `json:"evictions"`
	// HitInstructions counts instructions issued from hit lines.
	HitInstructions uint64 `json:"hit_instructions"`
}

// Add accumulates o into s.
func (s *PUDBStats) Add(o PUDBStats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Fills += o.Fills
	s.Evictions += o.Evictions
	s.HitInstructions += o.HitInstructions
}

// HitRate is hits per lookup.
func (s PUDBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// ContractDBStats are one contract's DB-cache lookup counters across
// all PUs.
type ContractDBStats struct {
	Contract types.Address `json:"contract"`
	Lookups  uint64        `json:"lookups"`
	Hits     uint64        `json:"hits"`
}

// HitRate is hits per lookup for the contract.
func (s ContractDBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// OccSample is one scheduling-table occupancy observation: how many
// candidate-window slots were occupied when a PU selected at Cycle.
type OccSample struct {
	Cycle    uint64 `json:"cycle"`
	Occupied int    `json:"occupied"`
}

// Collector is the standard Sink: it accumulates one replay's events.
// Use one Collector per replay; it is not safe for concurrent use (a
// replay's discrete-event loop runs on a single goroutine).
type Collector struct {
	pus         []PUDBStats
	perContract map[types.Address]*ContractDBStats
	lineHist    [maxHistLine + 1]uint64
	picks       [NumPickKinds]uint64
	occupancy   []OccSample
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{perContract: make(map[types.Address]*ContractDBStats)}
}

func (c *Collector) pu(pu int) *PUDBStats {
	for len(c.pus) <= pu {
		c.pus = append(c.pus, PUDBStats{})
	}
	return &c.pus[pu]
}

func (c *Collector) contract(addr types.Address) *ContractDBStats {
	s := c.perContract[addr]
	if s == nil {
		s = &ContractDBStats{Contract: addr}
		c.perContract[addr] = s
	}
	return s
}

// DBFlush implements Sink: merge one batched delta from PU pu.
func (c *Collector) DBFlush(pu int, contract types.Address, d *DBDelta) {
	s := c.pu(pu)
	s.Lookups += d.Lookups
	s.Hits += d.Hits
	s.Misses += d.Misses
	s.HitInstructions += d.HitInstructions
	s.Fills += d.Fills
	s.Evictions += d.Evictions
	if d.Lookups > 0 {
		cs := c.contract(contract)
		cs.Lookups += d.Lookups
		cs.Hits += d.Hits
	}
	for i, n := range d.LineFills {
		c.lineHist[i] += uint64(n)
	}
}

// SchedPick implements Sink.
func (c *Collector) SchedPick(pu int, now uint64, kind PickKind, occupied int) {
	_ = pu
	c.picks[kind]++
	c.occupancy = append(c.occupancy, OccSample{Cycle: now, Occupied: occupied})
}

// PUStats returns the per-PU DB-cache counters, padded to numPUs
// entries (a PU that never looked up still gets a zero row).
func (c *Collector) PUStats(numPUs int) []PUDBStats {
	c.pu(numPUs - 1)
	out := make([]PUDBStats, numPUs)
	copy(out, c.pus[:numPUs])
	return out
}

// LineHistogram returns fills indexed by packed instruction count; the
// last bucket aggregates longer lines.
func (c *Collector) LineHistogram() []uint64 {
	out := make([]uint64, len(c.lineHist))
	copy(out, c.lineHist[:])
	return out
}

// Picks returns the selection counts per PickKind.
func (c *Collector) Picks() [NumPickKinds]uint64 { return c.picks }

// Occupancy returns the occupancy samples in selection order.
func (c *Collector) Occupancy() []OccSample { return c.occupancy }

// Contracts returns per-contract lookup counters sorted by lookups
// descending, address ascending — a deterministic order despite the
// map accumulation.
func (c *Collector) Contracts() []ContractDBStats {
	out := make([]ContractDBStats, 0, len(c.perContract))
	for _, s := range c.perContract {
		out = append(out, *s)
	}
	sortContracts(out)
	return out
}

func sortContracts(s []ContractDBStats) {
	// Insertion sort keeps obs free of sort's interface allocations; the
	// contract set is small (the workload's archetype contracts).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && contractLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func contractLess(a, b ContractDBStats) bool {
	if a.Lookups != b.Lookups {
		return a.Lookups > b.Lookups
	}
	return string(a.Contract[:]) < string(b.Contract[:])
}
