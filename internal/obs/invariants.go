package obs

import "fmt"

// CheckInvariants verifies the report's internal accounting: the
// cross-layer identities every replay must satisfy regardless of
// execution engine. The differential harness (internal/difftest) runs it
// on every engine × workload pair; a violation means a counter was
// dropped, double-charged or attributed to the wrong layer.
//
//   - Per PU: Busy + StallMem + StallLoad + StallSched + Idle == Total
//     == the block makespan, and miss-path issue is a subset of Busy.
//   - DB cache: hits + misses == lookups per PU; the totals row is the
//     per-PU sum; the line-size histogram sums to the fill count; the
//     per-contract rows partition the lookups.
//   - Scheduler: window engines record exactly one pick (and one
//     occupancy sample) per dispatch; windowless engines record none.
//   - Spans: each lies inside the makespan; outside optimistic
//     execution every transaction is dispatched exactly once.
//   - STM: exec + validate + idle cycles == PUs × makespan, committed
//     incarnations equal the transaction count, and every abort is
//     either an ESTIMATE abort or a validation failure.
func (r *Report) CheckInvariants() error {
	if len(r.PUs) != r.NumPUs {
		return fmt.Errorf("obs: %d cycle rows for %d PUs", len(r.PUs), r.NumPUs)
	}
	var txs int
	for _, c := range r.PUs {
		if c.Total != r.Makespan {
			return fmt.Errorf("obs: pu %d total %d != makespan %d", c.PU, c.Total, r.Makespan)
		}
		if got := c.Accounted(); got != c.Total {
			return fmt.Errorf("obs: pu %d busy+stalls+idle = %d, want %d (%+v)", c.PU, got, c.Total, c)
		}
		if c.MissIssue > c.Busy {
			return fmt.Errorf("obs: pu %d miss-issue %d exceeds busy %d", c.PU, c.MissIssue, c.Busy)
		}
		txs += c.Txs
	}
	// Under optimistic execution spans cover incarnations, not committed
	// transactions, so the dispatch count only matches the per-PU totals
	// for the deterministic engines.
	if r.STM == nil && txs != len(r.Spans) {
		return fmt.Errorf("obs: per-PU tx counts sum to %d, spans %d", txs, len(r.Spans))
	}

	var sum PUDBStats
	for i, s := range r.DB.PerPU {
		if s.Hits+s.Misses != s.Lookups {
			return fmt.Errorf("obs: pu %d db hits %d + misses %d != lookups %d", i, s.Hits, s.Misses, s.Lookups)
		}
		sum.Add(s)
	}
	if sum != r.DB.Totals {
		return fmt.Errorf("obs: db totals %+v != per-PU sum %+v", r.DB.Totals, sum)
	}
	var fills uint64
	for _, n := range r.DB.LineSizeHist {
		fills += n
	}
	if fills != r.DB.Totals.Fills {
		return fmt.Errorf("obs: line histogram sums to %d fills, counters say %d", fills, r.DB.Totals.Fills)
	}
	var contractLookups, contractHits uint64
	for _, c := range r.DB.PerContract {
		if c.Hits > c.Lookups {
			return fmt.Errorf("obs: contract %s: %d hits exceed %d lookups", c.Contract, c.Hits, c.Lookups)
		}
		contractLookups += c.Lookups
		contractHits += c.Hits
	}
	if contractLookups != r.DB.Totals.Lookups || contractHits != r.DB.Totals.Hits {
		return fmt.Errorf("obs: per-contract lookups/hits %d/%d != totals %d/%d",
			contractLookups, contractHits, r.DB.Totals.Lookups, r.DB.Totals.Hits)
	}

	var picks uint64
	for _, n := range r.Sched.Picks {
		picks += n
	}
	wantPicks := uint64(0)
	if r.Sched.Window > 0 {
		wantPicks = uint64(len(r.Spans))
	}
	if picks != wantPicks {
		return fmt.Errorf("obs: %d scheduler picks for %d dispatches (window %d)",
			picks, len(r.Spans), r.Sched.Window)
	}
	if len(r.Sched.Occupancy) != int(wantPicks) {
		return fmt.Errorf("obs: %d occupancy samples, want %d", len(r.Sched.Occupancy), wantPicks)
	}

	seen := make(map[int]bool, len(r.Spans))
	for _, s := range r.Spans {
		if s.End < s.Start || s.End > r.Makespan {
			return fmt.Errorf("obs: span %+v outside makespan %d", s, r.Makespan)
		}
		if r.STM == nil {
			if seen[s.Tx] {
				return fmt.Errorf("obs: tx %d dispatched twice", s.Tx)
			}
			seen[s.Tx] = true
		}
	}

	if r.STM != nil {
		if err := r.STM.Check(r.NumPUs, r.Makespan); err != nil {
			return err
		}
	}
	return nil
}

// Check verifies the optimistic-execution counter identities for a
// replay of the given geometry: every PU cycle is attributed to exactly
// one of exec/validate/idle, every transaction commits exactly one
// incarnation, and every abort has exactly one recorded cause.
func (s *STMStats) Check(numPUs int, makespan uint64) error {
	if s.Incarnations-s.Aborts != s.Txs {
		return fmt.Errorf("obs: stm incarnations %d - aborts %d != txs %d", s.Incarnations, s.Aborts, s.Txs)
	}
	if s.Aborts != s.EstimateAborts+s.ValidationFails {
		return fmt.Errorf("obs: stm aborts %d != estimate %d + validation %d",
			s.Aborts, s.EstimateAborts, s.ValidationFails)
	}
	if got, want := s.ExecCycles+s.ValidateCycles+s.IdleCycles, uint64(numPUs)*makespan; got != want {
		return fmt.Errorf("obs: stm exec %d + validate %d + idle %d = %d, want PUs×makespan %d",
			s.ExecCycles, s.ValidateCycles, s.IdleCycles, got, want)
	}
	if s.WastedCycles > s.ExecCycles {
		return fmt.Errorf("obs: stm wasted %d exceeds exec %d", s.WastedCycles, s.ExecCycles)
	}
	return nil
}
