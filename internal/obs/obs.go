// Package obs is the cycle-level instrumentation layer of the MTPU
// simulator. The timing model (arch/pipeline, arch/pu, arch/mtpu, sched,
// core) emits events into a Sink; the default sink is nil, so the hot
// paths pay exactly one nil check per event site and zero allocations
// when instrumentation is disabled. The concrete Collector accumulates
// the events of one replay into a Report: per-PU cycle accounting whose
// stall breakdown sums to the makespan, DB-cache statistics with a
// packed-instructions-per-line histogram and per-contract hit rates,
// scheduler pick classification and window occupancy over time, and a
// per-transaction timeline exportable as Chrome trace-event JSON
// (chrome://tracing, Perfetto).
package obs

import "mtpu/internal/types"

// PickKind classifies one scheduler selection (§3.2.2 selection flow).
type PickKind uint8

const (
	// PickRedundant: the Re bit steered a same-contract transaction to
	// the PU that just ran (or is running) that contract.
	PickRedundant PickKind = iota
	// PickLargestV: no redundancy match; the largest remaining-invocation
	// value V among several selectable candidates won.
	PickLargestV
	// PickForced: exactly one candidate passed the availability mask, so
	// the pick carried no scheduling freedom.
	PickForced

	// NumPickKinds is the number of pick classes.
	NumPickKinds
)

var pickNames = [NumPickKinds]string{"redundant", "largest-V", "forced"}

// String returns the pick class label.
func (k PickKind) String() string {
	if int(k) < len(pickNames) {
		return pickNames[k]
	}
	return "unknown"
}

// Sink receives instrumentation events from the timing model. Every
// emit site guards the call with a single nil check, so implementations
// only pay when instrumentation is enabled; they must still be cheap —
// events fire per DB-cache line and per scheduler pick, not per
// instruction. A Sink is driven from the single goroutine of one replay
// and need not be safe for concurrent use.
type Sink interface {
	// DBLookup records one DB-cache lookup by PU pu on a line of the
	// given contract: hit reports the outcome, insts how many original
	// instructions the line covers (the fill length on a miss).
	DBLookup(pu int, contract types.Address, hit bool, insts int)
	// DBFill records a line of insts packed instructions entering PU
	// pu's DB cache.
	DBFill(pu int, insts int)
	// DBEvict records an LRU eviction from PU pu's DB cache.
	DBEvict(pu int)
	// SchedPick records one scheduling-table selection: the PU that
	// pulled, the simulated cycle, the pick class, and how many window
	// slots were occupied when the selection ran.
	SchedPick(pu int, now uint64, kind PickKind, occupied int)
}
