// Package obs is the cycle-level instrumentation layer of the MTPU
// simulator. The timing model (arch/pipeline, arch/pu, arch/mtpu, sched,
// core) emits events into a Sink; the default sink is nil, so the hot
// paths pay exactly one nil check per event site and zero allocations
// when instrumentation is disabled. DB-cache counters are batched: the
// pipeline accumulates per-PU deltas and flushes them at commit
// boundaries, so enabling instrumentation costs one interface call per
// contract run rather than per cache line. The concrete Collector accumulates
// the events of one replay into a Report: per-PU cycle accounting whose
// stall breakdown sums to the makespan, DB-cache statistics with a
// packed-instructions-per-line histogram and per-contract hit rates,
// scheduler pick classification and window occupancy over time, and a
// per-transaction timeline exportable as Chrome trace-event JSON
// (chrome://tracing, Perfetto).
package obs

import "mtpu/internal/types"

// PickKind classifies one scheduler selection (§3.2.2 selection flow).
type PickKind uint8

const (
	// PickRedundant: the Re bit steered a same-contract transaction to
	// the PU that just ran (or is running) that contract.
	PickRedundant PickKind = iota
	// PickLargestV: no redundancy match; the largest remaining-invocation
	// value V among several selectable candidates won.
	PickLargestV
	// PickForced: exactly one candidate passed the availability mask, so
	// the pick carried no scheduling freedom.
	PickForced

	// NumPickKinds is the number of pick classes.
	NumPickKinds
)

var pickNames = [NumPickKinds]string{"redundant", "largest-V", "forced"}

// String returns the pick class label.
func (k PickKind) String() string {
	if int(k) < len(pickNames) {
		return pickNames[k]
	}
	return "unknown"
}

// MaxHistLine caps the packed-instructions-per-line histogram; longer
// lines land in the last bucket (a line holds at most one member per
// functional unit, so real sizes stay well below this).
const MaxHistLine = 16

// DBDelta is a batch of DB-cache counter increments accumulated by one
// PU while executing one contract's instructions. The pipeline keeps
// one delta per PU and flushes it at commit boundaries (end of an
// Execute call, or when the executing contract changes), so the hot
// loop pays plain integer adds instead of an interface call per cache
// line.
type DBDelta struct {
	Lookups, Hits, Misses uint64
	Fills, Evictions      uint64
	HitInstructions       uint64
	// LineFills histograms fills by packed instruction count; index
	// MaxHistLine aggregates longer lines.
	LineFills [MaxHistLine + 1]uint32
}

// AddFill records one fill of insts packed instructions.
func (d *DBDelta) AddFill(insts int) {
	d.Fills++
	if insts > MaxHistLine {
		insts = MaxHistLine
	}
	d.LineFills[insts]++
}

// Empty reports whether the delta carries no events.
func (d *DBDelta) Empty() bool { return d.Lookups == 0 && d.Fills == 0 && d.Evictions == 0 }

// Reset zeroes the delta for reuse.
func (d *DBDelta) Reset() { *d = DBDelta{} }

// Sink receives instrumentation events from the timing model. Every
// emit site guards the call with a single nil check, so implementations
// only pay when instrumentation is enabled; they must still be cheap —
// DB-cache counters arrive as per-PU batched deltas at commit
// boundaries and scheduler picks per selection, never per instruction.
// A Sink is driven from the single goroutine of one replay and need not
// be safe for concurrent use.
type Sink interface {
	// DBFlush merges one batch of DB-cache counters from PU pu,
	// attributed to the contract whose lines were looked up. The delta
	// is owned by the caller and must not be retained.
	DBFlush(pu int, contract types.Address, d *DBDelta)
	// SchedPick records one scheduling-table selection: the PU that
	// pulled, the simulated cycle, the pick class, and how many window
	// slots were occupied when the selection ran.
	SchedPick(pu int, now uint64, kind PickKind, occupied int)
}
