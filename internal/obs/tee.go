package obs

import "mtpu/internal/types"

// multiSink fans every event out to two or more sinks in order.
type multiSink []Sink

func (m multiSink) DBFlush(pu int, contract types.Address, d *DBDelta) {
	for _, s := range m {
		s.DBFlush(pu, contract, d)
	}
}

func (m multiSink) SchedPick(pu int, now uint64, kind PickKind, occupied int) {
	for _, s := range m {
		s.SchedPick(pu, now, kind, occupied)
	}
}

// Tee combines sinks into one attachment point: the cycle-obs
// Collector and the host-telemetry bridge can both observe a replay
// even though the timing model carries a single Sink. Nil sinks are
// dropped; zero live sinks return nil (preserving the
// one-nil-check-per-event-site fast path), one live sink is returned
// unwrapped (no fan-out indirection when only one layer listens).
func Tee(sinks ...Sink) Sink {
	live := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}
