package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mtpu/internal/types"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace file")

// goldenProcs is a fixed two-mode, two-PU timeline exercising every
// event shape the exporter emits: process metadata, thread metadata
// (once per PU, in first-seen order), and complete events with
// back-to-back and overlapping spans.
func goldenProcs() []Process {
	addr := func(b byte) types.Address {
		var a types.Address
		a[0] = b
		a[len(a)-1] = b
		return a
	}
	return []Process{
		{Name: "scalar", Spans: []Span{
			{PU: 0, Tx: 0, Start: 0, End: 40, Contract: addr(0xaa)},
			{PU: 0, Tx: 1, Start: 40, End: 90, Contract: addr(0xbb)},
		}},
		{Name: "spatial-temporal", Spans: []Span{
			{PU: 0, Tx: 0, Start: 0, End: 40, Contract: addr(0xaa)},
			{PU: 1, Tx: 1, Start: 5, End: 55, Contract: addr(0xbb)},
			{PU: 0, Tx: 2, Start: 40, End: 60, Contract: addr(0xaa)},
		}},
	}
}

// TestWriteChromeTraceGolden pins the exporter's exact output. The
// trace-event format is consumed by external tools (Perfetto,
// chrome://tracing), so byte changes are breaking changes: regenerate
// deliberately with `go test ./internal/obs -run Golden -update` and
// re-open the file in Perfetto before committing.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenProcs()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden file (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// TestWriteChromeTraceShape checks the structural invariants the golden
// bytes alone cannot explain: counts and kinds of events per process.
func TestWriteChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenProcs()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Dur  uint64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Args["contract"] == "" {
				t.Errorf("span %q lost its contract arg", e.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	// 2 process_name + 3 thread_name (PU 0 twice — once per process —
	// and PU 1 once), and one X event per span.
	if meta != 5 {
		t.Errorf("metadata events = %d, want 5", meta)
	}
	if complete != 5 {
		t.Errorf("complete events = %d, want 5", complete)
	}
}
