package obs

import (
	"fmt"
	"strings"

	"mtpu/internal/metrics"
	"mtpu/internal/types"
)

// SchemaVersion identifies the Report layout (and its JSON encoding);
// bump it on any incompatible change so checked-in reports stay
// self-describing. Version 2 added the optimistic-execution (STM)
// section.
const SchemaVersion = 2

// Span is one transaction's execution interval on one PU — the unit of
// the Perfetto timeline.
type Span struct {
	PU       int           `json:"pu"`
	Tx       int           `json:"tx"`
	Start    uint64        `json:"start"`
	End      uint64        `json:"end"`
	Contract types.Address `json:"contract"`
}

// PUCycles is the cycle account of one PU over a block replay. The
// invariant the test suite enforces: Busy + StallMem + StallLoad +
// StallSched + Idle == Total == the block makespan.
type PUCycles struct {
	PU  int `json:"pu"`
	Txs int `json:"txs"`
	// Busy is issue slots — cycles in which the pipeline issued a scalar
	// instruction or a whole DB-cache line.
	Busy uint64 `json:"busy"`
	// MissIssue is the part of Busy spent issuing on the DB-cache miss
	// path (scalar streaming while the fill unit builds a line).
	MissIssue uint64 `json:"miss_issue"`
	// StallMem is dependency stalls: cycles waiting on data accesses
	// (storage, state queries, hashing, copies, context switches).
	StallMem uint64 `json:"stall_mem"`
	// StallLoad is context construction: bytecode loading into the
	// Call_Contract stack plus fixed per-transaction setup.
	StallLoad uint64 `json:"stall_load"`
	// StallSched is the scheduler's critical-path overhead charged on
	// every dispatch.
	StallSched uint64 `json:"stall_sched"`
	// Idle is time with no transaction assigned (waiting on dependencies
	// or an empty window).
	Idle uint64 `json:"idle"`
	// Total is the block makespan.
	Total uint64 `json:"total"`
}

// Accounted sums the breakdown; it must equal Total.
func (c PUCycles) Accounted() uint64 {
	return c.Busy + c.StallMem + c.StallLoad + c.StallSched + c.Idle
}

// DBCacheStats aggregates decoded-bytecode-cache behaviour.
type DBCacheStats struct {
	PerPU  []PUDBStats `json:"per_pu"`
	Totals PUDBStats   `json:"totals"`
	// LineSizeHist counts fills by packed instruction count (index =
	// instructions; the last bucket aggregates longer lines).
	LineSizeHist []uint64          `json:"line_size_hist"`
	PerContract  []ContractDBStats `json:"per_contract"`
}

// SchedStats aggregates scheduler behaviour.
type SchedStats struct {
	// Picks counts selections by class, indexed by PickKind.
	Picks [NumPickKinds]uint64 `json:"picks"`
	// Occupancy samples the candidate-window fill level at each pick.
	Occupancy []OccSample `json:"occupancy,omitempty"`
	// Window is the candidate-window capacity m (0 for the sequential
	// and synchronous modes, which do not use the window).
	Window int `json:"window"`
	// RedundantSteers mirrors sched.Result.RedundantSteers.
	RedundantSteers int `json:"redundant_steers"`
}

// AvgOccupancy is the mean occupied-slot count over all picks.
func (s SchedStats) AvgOccupancy() float64 {
	if len(s.Occupancy) == 0 {
		return 0
	}
	var sum uint64
	for _, o := range s.Occupancy {
		sum += uint64(o.Occupied)
	}
	return float64(sum) / float64(len(s.Occupancy))
}

// StateBufferStats mirrors the shared State Buffer counters.
type StateBufferStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// STMStats are the optimistic-execution counters of one Block-STM block
// replay. Invariants the validator enforces: Incarnations - Aborts ==
// Txs (every transaction commits exactly one incarnation), Aborts ==
// EstimateAborts + ValidationFails, and ExecCycles + ValidateCycles +
// IdleCycles == NumPUs × makespan (every PU cycle is attributed).
type STMStats struct {
	// Txs is the block's transaction count.
	Txs int `json:"txs"`
	// Incarnations counts completed execution attempts (>= Txs).
	Incarnations int `json:"incarnations"`
	// Aborts counts discarded incarnations (wasted speculative work).
	Aborts int `json:"aborts"`
	// EstimateAborts counts incarnations that read an ESTIMATE marker and
	// gave up mid-execution.
	EstimateAborts int `json:"estimate_aborts"`
	// ValidationPasses / ValidationFails count applied validation
	// outcomes (stale outcomes superseded by a re-execution are dropped).
	ValidationPasses int `json:"validation_passes"`
	ValidationFails  int `json:"validation_fails"`
	// EstimateWaits counts transactions that blocked on an aborted
	// writer's re-execution; EstimateWaitCycles is the summed wait time.
	EstimateWaits      int    `json:"estimate_waits"`
	EstimateWaitCycles uint64 `json:"estimate_wait_cycles"`
	// ExecCycles is PU time spent executing incarnations (including the
	// per-task dispatch overhead); WastedCycles is the part belonging to
	// aborted incarnations.
	ExecCycles   uint64 `json:"exec_cycles"`
	WastedCycles uint64 `json:"wasted_cycles"`
	// ValidateCycles is PU time spent on validation tasks.
	ValidateCycles uint64 `json:"validate_cycles"`
	// IdleCycles is PU time with no task available.
	IdleCycles uint64 `json:"idle_cycles"`
}

// Add merges other into s (all counters are commutative sums, so
// concurrent replays of the same block merge deterministically).
func (s *STMStats) Add(other STMStats) {
	s.Txs += other.Txs
	s.Incarnations += other.Incarnations
	s.Aborts += other.Aborts
	s.EstimateAborts += other.EstimateAborts
	s.ValidationPasses += other.ValidationPasses
	s.ValidationFails += other.ValidationFails
	s.EstimateWaits += other.EstimateWaits
	s.EstimateWaitCycles += other.EstimateWaitCycles
	s.ExecCycles += other.ExecCycles
	s.WastedCycles += other.WastedCycles
	s.ValidateCycles += other.ValidateCycles
	s.IdleCycles += other.IdleCycles
}

// Report is the full instrumentation record of one block replay.
type Report struct {
	Schema   int    `json:"schema"`
	Mode     string `json:"mode"`
	NumPUs   int    `json:"num_pus"`
	Makespan uint64 `json:"makespan"`

	PUs   []PUCycles       `json:"pus"`
	DB    DBCacheStats     `json:"db_cache"`
	Sched SchedStats       `json:"sched"`
	SBuf  StateBufferStats `json:"state_buffer"`
	// STM carries the optimistic-execution counters; nil for every mode
	// except block-stm.
	STM   *STMStats `json:"stm,omitempty"`
	Spans []Span    `json:"spans"`
}

// CycleTable renders the per-PU stall attribution.
func (r *Report) CycleTable() *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("cycle accounting — %s (%d PUs, makespan %d)", r.Mode, r.NumPUs, r.Makespan),
		"pu", "txs", "busy", "miss-issue", "mem-stall", "load-stall", "sched", "idle", "total", "busy/total")
	var sum PUCycles
	for _, c := range r.PUs {
		t.Row(c.PU, c.Txs, c.Busy, c.MissIssue, c.StallMem, c.StallLoad,
			c.StallSched, c.Idle, c.Total, share(c.Busy, c.Total))
		sum.Txs += c.Txs
		sum.Busy += c.Busy
		sum.MissIssue += c.MissIssue
		sum.StallMem += c.StallMem
		sum.StallLoad += c.StallLoad
		sum.StallSched += c.StallSched
		sum.Idle += c.Idle
		sum.Total += c.Total
	}
	t.Row("all", sum.Txs, sum.Busy, sum.MissIssue, sum.StallMem, sum.StallLoad,
		sum.StallSched, sum.Idle, sum.Total, share(sum.Busy, sum.Total))
	return t
}

// DBTable renders the DB-cache statistics.
func (r *Report) DBTable() *metrics.Table {
	t := metrics.NewTable("DB cache", "pu", "lookups", "hits", "misses", "hit",
		"fills", "evicts", "hit-insts")
	for i, s := range r.DB.PerPU {
		t.Row(i, s.Lookups, s.Hits, s.Misses, s.HitRate(),
			s.Fills, s.Evictions, s.HitInstructions)
	}
	s := r.DB.Totals
	t.Row("all", s.Lookups, s.Hits, s.Misses, s.HitRate(),
		s.Fills, s.Evictions, s.HitInstructions)
	return t
}

// ContractTable renders per-contract DB-cache hit rates for the topN
// most-looked-up contracts (topN <= 0 means all).
func (r *Report) ContractTable(topN int) *metrics.Table {
	t := metrics.NewTable("DB cache by contract", "contract", "lookups", "hits", "hit")
	rows := r.DB.PerContract
	if topN > 0 && topN < len(rows) {
		rows = rows[:topN]
	}
	for _, c := range rows {
		t.Row(shortAddr(c.Contract), c.Lookups, c.Hits, c.HitRate())
	}
	return t
}

// SchedTable renders the scheduler metrics.
func (r *Report) SchedTable() *metrics.Table {
	t := metrics.NewTable("scheduler", "metric", "value")
	for k := PickKind(0); k < NumPickKinds; k++ {
		t.Row("picks/"+k.String(), r.Sched.Picks[k])
	}
	t.Row("redundant steers", r.Sched.RedundantSteers)
	t.Row("window capacity", r.Sched.Window)
	t.Row("avg occupancy", r.Sched.AvgOccupancy())
	t.Row("state-buffer hits", r.SBuf.Hits)
	t.Row("state-buffer misses", r.SBuf.Misses)
	return t
}

// STMTable renders the optimistic-execution counters (nil-safe: returns
// nil when the replay was not a Block-STM run).
func (r *Report) STMTable() *metrics.Table {
	if r.STM == nil {
		return nil
	}
	s := r.STM
	t := metrics.NewTable("optimistic execution (block-stm)", "metric", "value")
	t.Row("transactions", s.Txs)
	t.Row("incarnations", s.Incarnations)
	t.Row("aborts", s.Aborts)
	t.Row("aborts/estimate", s.EstimateAborts)
	t.Row("aborts/validation", s.ValidationFails)
	t.Row("validation passes", s.ValidationPasses)
	t.Row("estimate waits", s.EstimateWaits)
	t.Row("estimate-wait cycles", s.EstimateWaitCycles)
	t.Row("exec cycles", s.ExecCycles)
	t.Row("wasted cycles", s.WastedCycles)
	t.Row("validate cycles", s.ValidateCycles)
	t.Row("idle cycles", s.IdleCycles)
	return t
}

// Render returns the paper-style summary of the whole report.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString(r.CycleTable().String())
	b.WriteByte('\n')
	b.WriteString(r.DBTable().String())
	if hist := histLine(r.DB.LineSizeHist); hist != "" {
		b.WriteString("insts/line fills: " + hist + "\n")
	}
	if len(r.DB.PerContract) > 0 {
		b.WriteByte('\n')
		b.WriteString(r.ContractTable(8).String())
	}
	b.WriteByte('\n')
	b.WriteString(r.SchedTable().String())
	if t := r.STMTable(); t != nil {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	return b.String()
}

// histLine formats the non-empty histogram buckets ("2:41 3:17 ...").
func histLine(hist []uint64) string {
	var parts []string
	for insts, n := range hist {
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("%d", insts)
		if insts == len(hist)-1 {
			label += "+"
		}
		parts = append(parts, fmt.Sprintf("%s:%d", label, n))
	}
	return strings.Join(parts, " ")
}

// shortAddr abbreviates an address for table cells, keeping the suffix
// (the distinguishing part of the workload's low-numbered addresses).
func shortAddr(a types.Address) string {
	s := a.String()
	if len(s) > 12 {
		s = "0x…" + s[len(s)-10:]
	}
	return s
}

func share(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
