package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"mtpu/internal/types"
)

func addr(b byte) types.Address {
	var a types.Address
	a[0] = b
	return a
}

// lookup/fill/evict emulate the pre-batching per-event emitters with
// single-event deltas, so the accumulation tests keep their shape.
func lookup(c *Collector, pu int, contract types.Address, hit bool, insts int) {
	var d DBDelta
	d.Lookups = 1
	if hit {
		d.Hits = 1
		d.HitInstructions = uint64(insts)
	} else {
		d.Misses = 1
	}
	c.DBFlush(pu, contract, &d)
}

func fill(c *Collector, pu int, insts int) {
	var d DBDelta
	d.AddFill(insts)
	c.DBFlush(pu, types.Address{}, &d)
}

func evict(c *Collector, pu int) {
	d := DBDelta{Evictions: 1}
	c.DBFlush(pu, types.Address{}, &d)
}

func TestCollectorAccumulation(t *testing.T) {
	c := NewCollector()
	a0, a1 := addr(1), addr(2)

	lookup(c, 0, a0, false, 3)
	fill(c, 0, 3)
	lookup(c, 0, a0, true, 3)
	lookup(c, 1, a1, true, 5)
	lookup(c, 1, a1, false, 2)
	fill(c, 1, 2)
	evict(c, 1)

	pus := c.PUStats(3)
	if len(pus) != 3 {
		t.Fatalf("PUStats(3) returned %d rows", len(pus))
	}
	want0 := PUDBStats{Lookups: 2, Hits: 1, Misses: 1, Fills: 1, HitInstructions: 3}
	if pus[0] != want0 {
		t.Errorf("pu 0 = %+v, want %+v", pus[0], want0)
	}
	want1 := PUDBStats{Lookups: 2, Hits: 1, Misses: 1, Fills: 1, Evictions: 1, HitInstructions: 5}
	if pus[1] != want1 {
		t.Errorf("pu 1 = %+v, want %+v", pus[1], want1)
	}
	if pus[2] != (PUDBStats{}) {
		t.Errorf("pu 2 = %+v, want zero", pus[2])
	}

	var tot PUDBStats
	for _, s := range pus {
		tot.Add(s)
	}
	if tot.Hits+tot.Misses != tot.Lookups {
		t.Errorf("hits %d + misses %d != lookups %d", tot.Hits, tot.Misses, tot.Lookups)
	}
	if got := tot.HitRate(); got != 0.5 {
		t.Errorf("aggregate hit rate = %v, want 0.5", got)
	}

	hist := c.LineHistogram()
	if hist[3] != 1 || hist[2] != 1 {
		t.Errorf("line histogram = %v, want one fill at 3 and one at 2", hist)
	}
}

func TestCollectorHistogramClamp(t *testing.T) {
	c := NewCollector()
	fill(c, 0, maxHistLine+7)
	hist := c.LineHistogram()
	if hist[maxHistLine] != 1 {
		t.Errorf("oversized fill not clamped into last bucket: %v", hist)
	}
}

// TestBatchedDeltaEquivalence checks that one multi-event delta merges
// identically to the same events flushed one at a time — the contract
// the pipeline's commit-boundary batching relies on.
func TestBatchedDeltaEquivalence(t *testing.T) {
	a0 := addr(7)
	perEvent := NewCollector()
	lookup(perEvent, 2, a0, false, 4)
	fill(perEvent, 2, 4)
	lookup(perEvent, 2, a0, true, 4)
	lookup(perEvent, 2, a0, true, 6)
	evict(perEvent, 2)

	batched := NewCollector()
	var d DBDelta
	d.Lookups, d.Hits, d.Misses = 3, 2, 1
	d.HitInstructions = 10
	d.AddFill(4)
	d.Evictions = 1
	batched.DBFlush(2, a0, &d)

	if got, want := batched.PUStats(3), perEvent.PUStats(3); got[2] != want[2] {
		t.Errorf("batched PU stats %+v, want %+v", got[2], want[2])
	}
	gc, wc := batched.Contracts(), perEvent.Contracts()
	if len(gc) != 1 || len(wc) != 1 || gc[0] != wc[0] {
		t.Errorf("batched contracts %+v, want %+v", gc, wc)
	}
	gh, wh := batched.LineHistogram(), perEvent.LineHistogram()
	for i := range gh {
		if gh[i] != wh[i] {
			t.Errorf("histogram[%d] = %d, want %d", i, gh[i], wh[i])
		}
	}
}

func TestCollectorContractsDeterministic(t *testing.T) {
	build := func(order []byte) []ContractDBStats {
		c := NewCollector()
		for _, b := range order {
			// lookups per contract: addr(1)=3, addr(2)=3, addr(3)=1
			switch b {
			case 1, 2:
				lookup(c, 0, addr(b), true, 1)
				lookup(c, 0, addr(b), true, 1)
				lookup(c, 0, addr(b), false, 0)
			case 3:
				lookup(c, 0, addr(b), false, 0)
			}
		}
		return c.Contracts()
	}
	a := build([]byte{1, 2, 3})
	b := build([]byte{3, 2, 1})
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("want 3 contracts, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Ties on lookups break by address ascending; the single-lookup
	// contract sorts last.
	if a[0].Contract != addr(1) || a[1].Contract != addr(2) || a[2].Contract != addr(3) {
		t.Errorf("unexpected order: %+v", a)
	}
}

func TestCollectorSchedPicks(t *testing.T) {
	c := NewCollector()
	c.SchedPick(0, 10, PickLargestV, 4)
	c.SchedPick(1, 12, PickRedundant, 3)
	c.SchedPick(0, 20, PickForced, 1)
	c.SchedPick(1, 22, PickLargestV, 2)

	picks := c.Picks()
	if picks[PickLargestV] != 2 || picks[PickRedundant] != 1 || picks[PickForced] != 1 {
		t.Errorf("picks = %v", picks)
	}
	occ := c.Occupancy()
	if len(occ) != 4 {
		t.Fatalf("occupancy samples = %d, want 4", len(occ))
	}
	s := SchedStats{Picks: picks, Occupancy: occ}
	if got := s.AvgOccupancy(); got != 2.5 {
		t.Errorf("avg occupancy = %v, want 2.5", got)
	}
}

func TestPickKindString(t *testing.T) {
	for k := PickKind(0); k < NumPickKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("PickKind(%d) has no name", k)
		}
	}
}

func TestAccountedSum(t *testing.T) {
	c := PUCycles{Busy: 10, StallMem: 5, StallLoad: 3, StallSched: 2, Idle: 1, Total: 21}
	if c.Accounted() != c.Total {
		t.Errorf("Accounted() = %d, want %d", c.Accounted(), c.Total)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	procs := []Process{
		{Name: "st", Spans: []Span{
			{PU: 0, Tx: 0, Start: 0, End: 40, Contract: addr(1)},
			{PU: 1, Tx: 1, Start: 5, End: 25, Contract: addr(2)},
			{PU: 0, Tx: 2, Start: 40, End: 90, Contract: addr(1)},
		}},
		{Name: "scalar", Spans: []Span{
			{PU: 0, Tx: 0, Start: 0, End: 100, Contract: addr(1)},
		}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, procs); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *uint64        `json:"ts"`
			Dur  uint64         `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}

	var spans, procMeta, threadMeta int
	for _, e := range f.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil {
			t.Fatalf("event missing required fields: %+v", e)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.Ts == nil || e.Tid == nil {
				t.Errorf("span without ts/tid: %+v", e)
			}
		case "M":
			switch e.Name {
			case "process_name":
				procMeta++
			case "thread_name":
				threadMeta++
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 4 {
		t.Errorf("span events = %d, want 4", spans)
	}
	if procMeta != 2 {
		t.Errorf("process_name events = %d, want 2", procMeta)
	}
	// Process "st" uses PUs 0 and 1; "scalar" uses PU 0.
	if threadMeta != 3 {
		t.Errorf("thread_name events = %d, want 3", threadMeta)
	}
}
