package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Process groups one timeline's spans under a Perfetto process row;
// mtpu-run exports one process per execution mode so the modes can be
// compared side by side in a single trace.
type Process struct {
	Name  string
	Spans []Span
}

// traceEvent is one Chrome trace-event ("X" complete events for spans,
// "M" metadata events naming processes and threads). Cycles map 1:1 to
// the format's microsecond timestamps, so the Perfetto ruler reads in
// cycles×1µs.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object form of the trace-event format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Meta            traceMeta    `json:"otherData"`
}

type traceMeta struct {
	Schema int    `json:"schema"`
	Unit   string `json:"unit"`
}

// WriteChromeTrace writes the processes' spans as Chrome trace-event
// JSON loadable in Perfetto or chrome://tracing: one process per entry,
// one thread per PU, one complete event per transaction span.
func WriteChromeTrace(w io.Writer, procs []Process) error {
	f := traceFile{
		DisplayTimeUnit: "ms",
		Meta:            traceMeta{Schema: SchemaVersion, Unit: "1 cycle = 1us"},
	}
	for pid, proc := range procs {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": proc.Name},
		})
		seenPU := map[int]bool{}
		for _, s := range proc.Spans {
			if !seenPU[s.PU] {
				seenPU[s.PU] = true
				f.TraceEvents = append(f.TraceEvents, traceEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: s.PU,
					Args: map[string]any{"name": fmt.Sprintf("PU %d", s.PU)},
				})
			}
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: fmt.Sprintf("tx %d", s.Tx),
				Ph:   "X",
				Ts:   s.Start,
				Dur:  s.End - s.Start,
				Pid:  pid,
				Tid:  s.PU,
				Args: map[string]any{
					"tx":       s.Tx,
					"contract": s.Contract.String(),
					"cycles":   s.End - s.Start,
				},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&f)
}
