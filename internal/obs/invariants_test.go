package obs

import (
	"strings"
	"testing"
)

// validReport builds a small internally-consistent report to mutate.
func validReport() *Report {
	r := &Report{
		Schema:   SchemaVersion,
		Mode:     "spatial-temporal",
		NumPUs:   2,
		Makespan: 100,
		PUs: []PUCycles{
			{PU: 0, Txs: 2, Busy: 40, MissIssue: 10, StallMem: 20, StallLoad: 10, StallSched: 10, Idle: 20, Total: 100},
			{PU: 1, Txs: 1, Busy: 30, StallMem: 10, StallLoad: 10, StallSched: 5, Idle: 45, Total: 100},
		},
		Spans: []Span{
			{PU: 0, Tx: 0, Start: 0, End: 40},
			{PU: 1, Tx: 1, Start: 0, End: 55},
			{PU: 0, Tx: 2, Start: 40, End: 80},
		},
	}
	r.DB.PerPU = []PUDBStats{
		{Lookups: 10, Hits: 7, Misses: 3, Fills: 3},
		{Lookups: 4, Hits: 4},
	}
	for _, s := range r.DB.PerPU {
		r.DB.Totals.Add(s)
	}
	r.DB.LineSizeHist = []uint64{0, 1, 2}
	r.DB.PerContract = []ContractDBStats{{Lookups: 14, Hits: 11}}
	r.Sched.Window = 8
	r.Sched.Picks[0] = 3
	r.Sched.Occupancy = []OccSample{{Cycle: 0, Occupied: 3}, {Cycle: 0, Occupied: 2}, {Cycle: 40, Occupied: 1}}
	return r
}

func TestCheckInvariantsAccepts(t *testing.T) {
	if err := validReport().CheckInvariants(); err != nil {
		t.Fatalf("consistent report rejected: %v", err)
	}
}

// TestCheckInvariantsCatches: each single-counter corruption is caught
// with a message naming the violated identity.
func TestCheckInvariantsCatches(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*Report)
		wantMsg string
	}{
		{"pu total vs makespan", func(r *Report) { r.PUs[0].Total = 99 }, "makespan"},
		{"cycle accounting", func(r *Report) { r.PUs[1].Idle++ }, "busy+stalls+idle"},
		{"miss-issue subset", func(r *Report) { r.PUs[0].MissIssue = 41 }, "miss-issue"},
		{"tx count vs spans", func(r *Report) { r.PUs[0].Txs = 3 }, "spans"},
		{"db hits+misses", func(r *Report) { r.DB.PerPU[0].Hits++; r.DB.Totals.Hits++; r.DB.PerContract[0].Hits++ }, "lookups"},
		{"db totals row", func(r *Report) { r.DB.Totals.Evictions++ }, "per-PU sum"},
		{"line histogram", func(r *Report) { r.DB.LineSizeHist[1]++ }, "histogram"},
		{"per-contract partition", func(r *Report) { r.DB.PerContract[0].Lookups++; r.DB.PerContract[0].Hits++ }, "per-contract"},
		{"pick per dispatch", func(r *Report) { r.Sched.Picks[0]++ }, "picks"},
		{"windowless has no picks", func(r *Report) { r.Sched.Window = 0 }, "picks"},
		{"occupancy per pick", func(r *Report) { r.Sched.Occupancy = r.Sched.Occupancy[:2] }, "occupancy"},
		{"span in makespan", func(r *Report) { r.Spans[2].End = 101 }, "outside makespan"},
		{"tx dispatched once", func(r *Report) { r.Spans[2].Tx = 0; r.PUs[0].Txs = 2 }, "twice"},
	} {
		r := validReport()
		tc.mutate(r)
		err := r.CheckInvariants()
		if err == nil {
			t.Errorf("%s: corruption not caught", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantMsg)
		}
	}
}

// TestSTMStatsCheck: the optimistic-execution identities, accepted and
// violated.
func TestSTMStatsCheck(t *testing.T) {
	good := STMStats{
		Txs: 8, Incarnations: 10, Aborts: 2, EstimateAborts: 1, ValidationFails: 1,
		ExecCycles: 300, ValidateCycles: 80, IdleCycles: 20, WastedCycles: 40,
	}
	if err := good.Check(4, 100); err != nil {
		t.Fatalf("consistent stats rejected: %v", err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*STMStats)
	}{
		{"commit identity", func(s *STMStats) { s.Incarnations++ }},
		{"abort causes", func(s *STMStats) { s.EstimateAborts++; s.Incarnations++ }},
		{"cycle attribution", func(s *STMStats) { s.IdleCycles++ }},
		{"wasted subset", func(s *STMStats) { s.WastedCycles = s.ExecCycles + 1 }},
	} {
		s := good
		tc.mutate(&s)
		if err := s.Check(4, 100); err == nil {
			t.Errorf("%s: corruption not caught", tc.name)
		}
	}

	// CheckInvariants reaches the STM section and relaxes the per-span
	// uniqueness (incarnation spans repeat transaction indices).
	r := validReport()
	r.Sched.Window = 0
	r.Sched.Picks[0] = 0
	r.Sched.Occupancy = nil
	r.Spans = append(r.Spans, Span{PU: 1, Tx: 0, Start: 60, End: 90})
	bad := good
	bad.IdleCycles++
	r.STM = &bad
	if err := r.CheckInvariants(); err == nil {
		t.Error("STM corruption not caught through CheckInvariants")
	}
	good2 := good
	good2.ExecCycles, good2.ValidateCycles, good2.IdleCycles = 150, 30, 20
	r.STM = &good2
	if err := r.CheckInvariants(); err != nil {
		t.Errorf("consistent STM report rejected: %v", err)
	}
}
