// Package keccak implements the legacy Keccak-256 hash used by Ethereum
// (pre-FIPS 202 padding byte 0x01, not the standardized SHA3-256 0x06).
// It backs the EVM SHA3 opcode, function-selector derivation, storage-map
// key computation and code hashing throughout the repository.
package keccak

import "math/bits"

// roundConstants are the 24 iota-step round constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// keccakF1600 applies the 24-round Keccak permutation to the state in place.
// The state is indexed a[x + 5*y]. The 5x5 step structure is unrolled over
// named locals so every lane lives in a register across the round: the
// rolled form spends most of its time on modulo index arithmetic,
// rotation-offset table loads and bounds checks, and this permutation is
// the single hottest function of the whole simulator (digests, storage-map
// keys, selectors, SHA3 opcodes).
func keccakF1600(a *[25]uint64) {
	v0, v1, v2, v3, v4 := a[0], a[1], a[2], a[3], a[4]
	v5, v6, v7, v8, v9 := a[5], a[6], a[7], a[8], a[9]
	v10, v11, v12, v13, v14 := a[10], a[11], a[12], a[13], a[14]
	v15, v16, v17, v18, v19 := a[15], a[16], a[17], a[18], a[19]
	v20, v21, v22, v23, v24 := a[20], a[21], a[22], a[23], a[24]

	for round := 0; round < 24; round++ {
		// Theta.
		c0 := v0 ^ v5 ^ v10 ^ v15 ^ v20
		c1 := v1 ^ v6 ^ v11 ^ v16 ^ v21
		c2 := v2 ^ v7 ^ v12 ^ v17 ^ v22
		c3 := v3 ^ v8 ^ v13 ^ v18 ^ v23
		c4 := v4 ^ v9 ^ v14 ^ v19 ^ v24
		d0 := c4 ^ bits.RotateLeft64(c1, 1)
		d1 := c0 ^ bits.RotateLeft64(c2, 1)
		d2 := c1 ^ bits.RotateLeft64(c3, 1)
		d3 := c2 ^ bits.RotateLeft64(c4, 1)
		d4 := c3 ^ bits.RotateLeft64(c0, 1)
		v0 ^= d0
		v5 ^= d0
		v10 ^= d0
		v15 ^= d0
		v20 ^= d0
		v1 ^= d1
		v6 ^= d1
		v11 ^= d1
		v16 ^= d1
		v21 ^= d1
		v2 ^= d2
		v7 ^= d2
		v12 ^= d2
		v17 ^= d2
		v22 ^= d2
		v3 ^= d3
		v8 ^= d3
		v13 ^= d3
		v18 ^= d3
		v23 ^= d3
		v4 ^= d4
		v9 ^= d4
		v14 ^= d4
		v19 ^= d4
		v24 ^= d4

		// Rho and Pi: b[y + 5*((2x+3y)%5)] = rotl(a[x+5y], offset[x][y]).
		b0 := v0
		b16 := bits.RotateLeft64(v5, 36)
		b7 := bits.RotateLeft64(v10, 3)
		b23 := bits.RotateLeft64(v15, 41)
		b14 := bits.RotateLeft64(v20, 18)
		b10 := bits.RotateLeft64(v1, 1)
		b1 := bits.RotateLeft64(v6, 44)
		b17 := bits.RotateLeft64(v11, 10)
		b8 := bits.RotateLeft64(v16, 45)
		b24 := bits.RotateLeft64(v21, 2)
		b20 := bits.RotateLeft64(v2, 62)
		b11 := bits.RotateLeft64(v7, 6)
		b2 := bits.RotateLeft64(v12, 43)
		b18 := bits.RotateLeft64(v17, 15)
		b9 := bits.RotateLeft64(v22, 61)
		b5 := bits.RotateLeft64(v3, 28)
		b21 := bits.RotateLeft64(v8, 55)
		b12 := bits.RotateLeft64(v13, 25)
		b3 := bits.RotateLeft64(v18, 21)
		b19 := bits.RotateLeft64(v23, 56)
		b15 := bits.RotateLeft64(v4, 27)
		b6 := bits.RotateLeft64(v9, 20)
		b22 := bits.RotateLeft64(v14, 39)
		b13 := bits.RotateLeft64(v19, 8)
		b4 := bits.RotateLeft64(v24, 14)

		// Chi, with Iota folded into lane 0.
		v0 = b0 ^ (^b1 & b2) ^ roundConstants[round]
		v1 = b1 ^ (^b2 & b3)
		v2 = b2 ^ (^b3 & b4)
		v3 = b3 ^ (^b4 & b0)
		v4 = b4 ^ (^b0 & b1)
		v5 = b5 ^ (^b6 & b7)
		v6 = b6 ^ (^b7 & b8)
		v7 = b7 ^ (^b8 & b9)
		v8 = b8 ^ (^b9 & b5)
		v9 = b9 ^ (^b5 & b6)
		v10 = b10 ^ (^b11 & b12)
		v11 = b11 ^ (^b12 & b13)
		v12 = b12 ^ (^b13 & b14)
		v13 = b13 ^ (^b14 & b10)
		v14 = b14 ^ (^b10 & b11)
		v15 = b15 ^ (^b16 & b17)
		v16 = b16 ^ (^b17 & b18)
		v17 = b17 ^ (^b18 & b19)
		v18 = b18 ^ (^b19 & b15)
		v19 = b19 ^ (^b15 & b16)
		v20 = b20 ^ (^b21 & b22)
		v21 = b21 ^ (^b22 & b23)
		v22 = b22 ^ (^b23 & b24)
		v23 = b23 ^ (^b24 & b20)
		v24 = b24 ^ (^b20 & b21)
	}

	a[0], a[1], a[2], a[3], a[4] = v0, v1, v2, v3, v4
	a[5], a[6], a[7], a[8], a[9] = v5, v6, v7, v8, v9
	a[10], a[11], a[12], a[13], a[14] = v10, v11, v12, v13, v14
	a[15], a[16], a[17], a[18], a[19] = v15, v16, v17, v18, v19
	a[20], a[21], a[22], a[23], a[24] = v20, v21, v22, v23, v24
}

// rate is the sponge rate in bytes for Keccak-256 (1600 - 2*256 bits).
const rate = 136

// Hasher is an incremental Keccak-256 hasher. The zero value is ready to
// use. It implements the write/sum pattern of hash.Hash without the
// interface dependency.
type Hasher struct {
	state  [25]uint64
	buf    [rate]byte
	bufLen int
}

// Reset returns the hasher to its initial state.
func (h *Hasher) Reset() {
	h.state = [25]uint64{}
	h.bufLen = 0
}

// Write absorbs p into the sponge. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		space := rate - h.bufLen
		if space > len(p) {
			space = len(p)
		}
		copy(h.buf[h.bufLen:], p[:space])
		h.bufLen += space
		p = p[space:]
		if h.bufLen == rate {
			h.absorb()
		}
	}
	return n, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		h.state[i] ^= leUint64(h.buf[i*8:])
	}
	keccakF1600(&h.state)
	h.bufLen = 0
}

// Sum256 returns the 32-byte digest of everything written so far. It does
// not modify the hasher state, so more data may be written afterwards.
func (h *Hasher) Sum256() [32]byte {
	// Work on copies so the caller can continue writing.
	state := h.state
	var block [rate]byte
	copy(block[:], h.buf[:h.bufLen])
	block[h.bufLen] = 0x01 // legacy Keccak domain/padding byte
	block[rate-1] |= 0x80
	for i := 0; i < rate/8; i++ {
		state[i] ^= leUint64(block[i*8:])
	}
	keccakF1600(&state)

	var out [32]byte
	for i := 0; i < 4; i++ {
		putLeUint64(out[i*8:], state[i])
	}
	return out
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [32]byte {
	var h Hasher
	h.Write(data)
	return h.Sum256()
}

// Selector returns the 4-byte Solidity function selector for a signature
// such as "transfer(address,uint256)".
func Selector(signature string) [4]byte {
	d := Sum256([]byte(signature))
	var s [4]byte
	copy(s[:], d[:4])
	return s
}
