// Package keccak implements the legacy Keccak-256 hash used by Ethereum
// (pre-FIPS 202 padding byte 0x01, not the standardized SHA3-256 0x06).
// It backs the EVM SHA3 opcode, function-selector derivation, storage-map
// key computation and code hashing throughout the repository.
package keccak

// roundConstants are the 24 iota-step round constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets are the rho-step rotation offsets, indexed [x][y].
var rotationOffsets = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

func rotl(v uint64, n uint) uint64 {
	return v<<n | v>>(64-n)
}

// keccakF1600 applies the 24-round Keccak permutation to the state in place.
// The state is indexed a[x + 5*y].
func keccakF1600(a *[25]uint64) {
	var c [5]uint64
	var d [5]uint64
	var b [25]uint64

	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}

		// Rho and Pi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = rotl(a[x+5*y], rotationOffsets[x][y])
			}
		}

		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}

		// Iota.
		a[0] ^= roundConstants[round]
	}
}

// rate is the sponge rate in bytes for Keccak-256 (1600 - 2*256 bits).
const rate = 136

// Hasher is an incremental Keccak-256 hasher. The zero value is ready to
// use. It implements the write/sum pattern of hash.Hash without the
// interface dependency.
type Hasher struct {
	state  [25]uint64
	buf    [rate]byte
	bufLen int
}

// Reset returns the hasher to its initial state.
func (h *Hasher) Reset() {
	h.state = [25]uint64{}
	h.bufLen = 0
}

// Write absorbs p into the sponge. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		space := rate - h.bufLen
		if space > len(p) {
			space = len(p)
		}
		copy(h.buf[h.bufLen:], p[:space])
		h.bufLen += space
		p = p[space:]
		if h.bufLen == rate {
			h.absorb()
		}
	}
	return n, nil
}

func (h *Hasher) absorb() {
	for i := 0; i < rate/8; i++ {
		h.state[i] ^= leUint64(h.buf[i*8:])
	}
	keccakF1600(&h.state)
	h.bufLen = 0
}

// Sum256 returns the 32-byte digest of everything written so far. It does
// not modify the hasher state, so more data may be written afterwards.
func (h *Hasher) Sum256() [32]byte {
	// Work on copies so the caller can continue writing.
	state := h.state
	var block [rate]byte
	copy(block[:], h.buf[:h.bufLen])
	block[h.bufLen] = 0x01 // legacy Keccak domain/padding byte
	block[rate-1] |= 0x80
	for i := 0; i < rate/8; i++ {
		state[i] ^= leUint64(block[i*8:])
	}
	keccakF1600(&state)

	var out [32]byte
	for i := 0; i < 4; i++ {
		putLeUint64(out[i*8:], state[i])
	}
	return out
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeUint64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Sum256 returns the Keccak-256 digest of data.
func Sum256(data []byte) [32]byte {
	var h Hasher
	h.Write(data)
	return h.Sum256()
}

// Selector returns the 4-byte Solidity function selector for a signature
// such as "transfer(address,uint256)".
func Selector(signature string) [4]byte {
	d := Sum256([]byte(signature))
	var s [4]byte
	copy(s[:], d[:4])
	return s
}
