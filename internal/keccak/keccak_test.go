package keccak

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Known Keccak-256 (legacy padding) vectors.
var vectors = []struct {
	in   string
	want string
}{
	{"", "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"},
	{"abc", "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"},
	{"The quick brown fox jumps over the lazy dog",
		"4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15"},
}

func TestVectors(t *testing.T) {
	for _, v := range vectors {
		got := Sum256([]byte(v.in))
		if !bytes.Equal(got[:], mustHex(v.want)) {
			t.Errorf("Sum256(%q) = %x, want %s", v.in, got, v.want)
		}
	}
}

func TestSelectors(t *testing.T) {
	// Canonical Solidity selectors — strong end-to-end checks of the
	// permutation, absorb and padding logic.
	cases := []struct {
		sig  string
		want string
	}{
		{"transfer(address,uint256)", "a9059cbb"},
		{"balanceOf(address)", "70a08231"},
		{"approve(address,uint256)", "095ea7b3"},
		{"transferFrom(address,address,uint256)", "23b872dd"},
		{"totalSupply()", "18160ddd"},
		{"deposit()", "d0e30db0"},
		{"withdraw(uint256)", "2e1a7d4d"},
	}
	for _, c := range cases {
		got := Selector(c.sig)
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Selector(%q) = %x, want %s", c.sig, got, c.want)
		}
	}
}

func TestIncrementalMatchesOneShot(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	want := Sum256(data)

	// Write in awkward chunk sizes crossing the 136-byte rate boundary.
	for _, chunk := range []int{1, 7, 135, 136, 137, 300} {
		var h Hasher
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			h.Write(data[off:end])
		}
		if got := h.Sum256(); got != want {
			t.Errorf("chunk %d: digest mismatch", chunk)
		}
	}
}

func TestSumDoesNotConsumeState(t *testing.T) {
	var h Hasher
	h.Write([]byte("hello "))
	first := h.Sum256()
	second := h.Sum256()
	if first != second {
		t.Fatal("Sum256 mutated the hasher")
	}
	h.Write([]byte("world"))
	if h.Sum256() != Sum256([]byte("hello world")) {
		t.Fatal("writes after Sum256 diverge from one-shot")
	}
}

func TestReset(t *testing.T) {
	var h Hasher
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if h.Sum256() != want {
		t.Fatal("Reset did not clear state")
	}
}

func TestExactRateBlock(t *testing.T) {
	// Exactly one rate block exercises the absorb-then-pad-empty path.
	data := bytes.Repeat([]byte{0x61}, 136)
	var h Hasher
	h.Write(data)
	if h.Sum256() != Sum256(data) {
		t.Fatal("rate-sized write mismatch")
	}
	// 136 'a' bytes hashed both ways must agree with incremental halves.
	var h2 Hasher
	h2.Write(data[:68])
	h2.Write(data[68:])
	if h2.Sum256() != Sum256(data) {
		t.Fatal("split rate-sized write mismatch")
	}
}

func BenchmarkSum256_32(b *testing.B) {
	data := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkSum256_1K(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}
