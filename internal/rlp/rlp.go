// Package rlp implements Recursive Length Prefix encoding, the
// serialization used by Ethereum-style blockchains for transactions and
// blocks (Fig. 3(a) of the MTPU paper). An RLP value is either a byte
// string or a list of RLP values.
package rlp

import (
	"errors"
	"fmt"
)

// Kind distinguishes the two RLP value categories.
type Kind int

const (
	// String is a byte-string item.
	String Kind = iota
	// List is a sequence of nested items.
	List
)

// Value is a decoded RLP item: either a byte string (Kind == String, Str
// holds the bytes) or a list (Kind == List, Elems holds the children).
type Value struct {
	Kind  Kind
	Str   []byte
	Elems []Value
}

// StringValue wraps bytes as an RLP string item.
func StringValue(b []byte) Value {
	return Value{Kind: String, Str: b}
}

// Uint64Value encodes v as a minimal big-endian RLP string item.
func Uint64Value(v uint64) Value {
	return Value{Kind: String, Str: AppendUint64(nil, v)}
}

// ListValue wraps items as an RLP list.
func ListValue(elems ...Value) Value {
	if elems == nil {
		elems = []Value{}
	}
	return Value{Kind: List, Elems: elems}
}

// Uint64 interprets a string item as a big-endian unsigned integer.
func (v Value) Uint64() (uint64, error) {
	if v.Kind != String {
		return 0, errors.New("rlp: value is a list, not an integer")
	}
	if len(v.Str) > 8 {
		return 0, errors.New("rlp: integer larger than 64 bits")
	}
	if len(v.Str) > 0 && v.Str[0] == 0 {
		return 0, errors.New("rlp: integer has leading zero byte")
	}
	var out uint64
	for _, b := range v.Str {
		out = out<<8 | uint64(b)
	}
	return out, nil
}

// AppendUint64 appends the minimal big-endian representation of v to dst.
// Zero encodes as the empty string.
func AppendUint64(dst []byte, v uint64) []byte {
	switch {
	case v == 0:
		return dst
	case v < 1<<8:
		return append(dst, byte(v))
	case v < 1<<16:
		return append(dst, byte(v>>8), byte(v))
	case v < 1<<24:
		return append(dst, byte(v>>16), byte(v>>8), byte(v))
	case v < 1<<32:
		return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case v < 1<<40:
		return append(dst, byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case v < 1<<48:
		return append(dst, byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	case v < 1<<56:
		return append(dst, byte(v>>48), byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

// Encode returns the canonical RLP encoding of v.
func Encode(v Value) []byte {
	return appendValue(nil, v)
}

func appendValue(dst []byte, v Value) []byte {
	if v.Kind == String {
		return appendString(dst, v.Str)
	}
	var payload []byte
	for _, e := range v.Elems {
		payload = appendValue(payload, e)
	}
	dst = appendHeader(dst, 0xc0, len(payload))
	return append(dst, payload...)
}

// EncodeBytes returns the RLP encoding of a single byte string.
func EncodeBytes(b []byte) []byte {
	return appendString(nil, b)
}

func appendString(dst, b []byte) []byte {
	if len(b) == 1 && b[0] < 0x80 {
		return append(dst, b[0])
	}
	dst = appendHeader(dst, 0x80, len(b))
	return append(dst, b...)
}

func appendHeader(dst []byte, base byte, length int) []byte {
	if length < 56 {
		return append(dst, base+byte(length))
	}
	lenBytes := AppendUint64(nil, uint64(length))
	dst = append(dst, base+55+byte(len(lenBytes)))
	return append(dst, lenBytes...)
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("rlp: input truncated")
	ErrTrailing    = errors.New("rlp: trailing bytes after value")
	ErrNonCanon    = errors.New("rlp: non-canonical encoding")
	errLengthRange = errors.New("rlp: length exceeds input size")
)

// Decode parses exactly one RLP value from data, rejecting trailing bytes.
func Decode(data []byte) (Value, error) {
	v, rest, err := DecodePrefix(data)
	if err != nil {
		return Value{}, err
	}
	if len(rest) != 0 {
		return Value{}, ErrTrailing
	}
	return v, nil
}

// DecodePrefix parses one RLP value from the front of data and returns the
// remaining bytes.
func DecodePrefix(data []byte) (Value, []byte, error) {
	if len(data) == 0 {
		return Value{}, nil, ErrTruncated
	}
	b := data[0]
	switch {
	case b < 0x80:
		// Single byte, its own encoding.
		return Value{Kind: String, Str: data[:1]}, data[1:], nil

	case b < 0xb8:
		// Short string.
		n := int(b - 0x80)
		if len(data) < 1+n {
			return Value{}, nil, ErrTruncated
		}
		s := data[1 : 1+n]
		if n == 1 && s[0] < 0x80 {
			return Value{}, nil, ErrNonCanon
		}
		return Value{Kind: String, Str: s}, data[1+n:], nil

	case b < 0xc0:
		// Long string.
		n, content, err := readLongLength(data, b-0xb7)
		if err != nil {
			return Value{}, nil, err
		}
		return Value{Kind: String, Str: content[:n]}, content[n:], nil

	case b < 0xf8:
		// Short list.
		n := int(b - 0xc0)
		if len(data) < 1+n {
			return Value{}, nil, ErrTruncated
		}
		elems, err := decodeListPayload(data[1 : 1+n])
		if err != nil {
			return Value{}, nil, err
		}
		return Value{Kind: List, Elems: elems}, data[1+n:], nil

	default:
		// Long list.
		n, content, err := readLongLength(data, b-0xf7)
		if err != nil {
			return Value{}, nil, err
		}
		elems, err := decodeListPayload(content[:n])
		if err != nil {
			return Value{}, nil, err
		}
		return Value{Kind: List, Elems: elems}, content[n:], nil
	}
}

func readLongLength(data []byte, lenOfLen byte) (int, []byte, error) {
	ll := int(lenOfLen)
	if len(data) < 1+ll {
		return 0, nil, ErrTruncated
	}
	lenBytes := data[1 : 1+ll]
	if lenBytes[0] == 0 {
		return 0, nil, ErrNonCanon
	}
	var n uint64
	for _, lb := range lenBytes {
		n = n<<8 | uint64(lb)
	}
	if n < 56 {
		return 0, nil, ErrNonCanon
	}
	if n > uint64(len(data)-1-ll) {
		return 0, nil, errLengthRange
	}
	return int(n), data[1+ll:], nil
}

func decodeListPayload(payload []byte) ([]Value, error) {
	elems := []Value{}
	for len(payload) > 0 {
		v, rest, err := DecodePrefix(payload)
		if err != nil {
			return nil, fmt.Errorf("rlp: bad list element %d: %w", len(elems), err)
		}
		elems = append(elems, v)
		payload = rest
	}
	return elems, nil
}
