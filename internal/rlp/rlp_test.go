package rlp

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"strings"
	"testing"
)

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Canonical vectors from the Ethereum wiki RLP test set.
func TestEncodeVectors(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{StringValue([]byte("dog")), "83646f67"},
		{ListValue(StringValue([]byte("cat")), StringValue([]byte("dog"))), "c88363617483646f67"},
		{StringValue(nil), "80"},
		{ListValue(), "c0"},
		{Uint64Value(0), "80"},
		{Uint64Value(15), "0f"},
		{Uint64Value(1024), "820400"},
		{StringValue([]byte{0x00}), "00"},
		{StringValue([]byte{0x7f}), "7f"},
		{StringValue([]byte{0x80}), "8180"},
		// Nested: [ [], [[]], [ [], [[]] ] ].
		{ListValue(
			ListValue(),
			ListValue(ListValue()),
			ListValue(ListValue(), ListValue(ListValue())),
		), "c7c0c1c0c3c0c1c0"},
		{StringValue([]byte("Lorem ipsum dolor sit amet, consectetur adipisicing elit")),
			"b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974"},
	}
	for i, c := range cases {
		got := Encode(c.v)
		if !bytes.Equal(got, mustHex(c.want)) {
			t.Errorf("case %d: got %x, want %s", i, got, c.want)
		}
	}
}

func TestDecodeVectors(t *testing.T) {
	v, err := Decode(mustHex("c88363617483646f67"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != List || len(v.Elems) != 2 ||
		string(v.Elems[0].Str) != "cat" || string(v.Elems[1].Str) != "dog" {
		t.Fatalf("decoded %+v", v)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		in   string
		name string
	}{
		{"", "empty"},
		{"83646f", "truncated short string"},
		{"b838", "truncated long string header"},
		{"8100", "non-canonical single byte"},
		{"b800", "zero-length long string"}, // length < 56 must use short form
		{"b90000", "leading zero length"},
		{"c88363617483646f6700", "trailing bytes"},
		{"bfffffffffffffffff01", "length exceeds input"},
	}
	for _, c := range cases {
		if _, err := Decode(mustHex(c.in)); err == nil {
			t.Errorf("%s (%s): expected error", c.name, c.in)
		}
	}
}

func TestUint64RoundTrip(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 255, 256, 1 << 16, 1<<24 - 1, 1 << 32, 1<<56 + 5, ^uint64(0)}
	for _, v := range values {
		enc := Encode(Uint64Value(v))
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		got, err := dec.Uint64()
		if err != nil {
			t.Fatalf("uint64 %d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round-trip %d -> %d", v, got)
		}
	}
}

func TestUint64Errors(t *testing.T) {
	if _, err := ListValue().Uint64(); err == nil {
		t.Error("list as integer accepted")
	}
	if _, err := StringValue(make([]byte, 9)).Uint64(); err == nil {
		t.Error("9-byte integer accepted")
	}
	if _, err := (Value{Kind: String, Str: []byte{0, 1}}).Uint64(); err == nil {
		t.Error("leading-zero integer accepted")
	}
}

// randValue builds a random RLP tree.
func randValue(r *rand.Rand, depth int) Value {
	if depth == 0 || r.Intn(3) > 0 {
		n := r.Intn(100)
		if r.Intn(10) == 0 {
			n = 56 + r.Intn(300) // exercise long-string headers
		}
		b := make([]byte, n)
		r.Read(b)
		return StringValue(b)
	}
	n := r.Intn(5)
	elems := make([]Value, n)
	for i := range elems {
		elems[i] = randValue(r, depth-1)
	}
	return ListValue(elems...)
}

func valueEqual(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == String {
		return bytes.Equal(a.Str, b.Str)
	}
	if len(a.Elems) != len(b.Elems) {
		return false
	}
	for i := range a.Elems {
		if !valueEqual(a.Elems[i], b.Elems[i]) {
			return false
		}
	}
	return true
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		v := randValue(r, 4)
		enc := Encode(v)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if !valueEqual(v, dec) {
			t.Fatalf("iteration %d: round-trip mismatch", i)
		}
		// Re-encoding must be canonical (byte-identical).
		if !bytes.Equal(Encode(dec), enc) {
			t.Fatalf("iteration %d: non-canonical re-encode", i)
		}
	}
}

func TestLongList(t *testing.T) {
	// A list whose payload exceeds 55 bytes must use the long-list header.
	var elems []Value
	for i := 0; i < 30; i++ {
		elems = append(elems, StringValue([]byte("xy")))
	}
	enc := Encode(ListValue(elems...))
	if enc[0] < 0xf8 {
		t.Fatalf("expected long-list header, got 0x%02x", enc[0])
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Elems) != 30 {
		t.Fatalf("got %d elements", len(dec.Elems))
	}
}

func TestVeryLongString(t *testing.T) {
	s := strings.Repeat("z", 70000) // needs a 3-byte length
	enc := EncodeBytes([]byte(s))
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(dec.Str) != s {
		t.Fatal("long string mismatch")
	}
}
