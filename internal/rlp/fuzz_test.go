package rlp

import (
	"bytes"
	"testing"
)

// FuzzDecode asserts the decoder never panics and that anything it
// accepts re-encodes canonically to the same bytes.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add([]byte{0xc0})
	f.Add([]byte("\x83dog"))
	f.Add([]byte("\xc8\x83cat\x83dog"))
	f.Add([]byte{0xb8, 0x38})
	f.Add([]byte{0xf8, 0x00})
	f.Add(Encode(ListValue(Uint64Value(1), StringValue(make([]byte, 100)))))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		enc := Encode(v)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted non-canonical input %x, re-encodes to %x", data, enc)
		}
	})
}
