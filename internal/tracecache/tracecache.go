// Package tracecache memoizes the expensive, deterministic inputs the
// experiment sweeps share: the generated block (with its conflict DAG),
// the golden sequential traces, receipts and state digest from
// core.CollectTraces, and the per-transaction plain execution plans.
//
// Every entry is keyed by the workload spec alone and built from a fresh
// workload.Generator seeded with the cache's seed, so a spec maps to the
// same block no matter which experiment asks first or how many ask
// concurrently — the property that lets Fig. 14/15/16 (which all sweep
// the same TokenBlock grid) share one functional-EVM pass, and lets the
// parallel sweep runner produce output byte-identical to the serial one.
//
// A Cache is safe for concurrent use. Entries are immutable after
// construction; callers must treat the returned blocks, traces and plans
// as read-only.
package tracecache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pu"
	"mtpu/internal/core"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// Spec identifies one deterministic workload: the generator method, its
// size and its sweep parameter. Two equal specs always yield the same
// block.
type Spec struct {
	// Kind selects the workload.Generator method: "token", "erc20",
	// "mixed", "sct" or "batch".
	Kind string
	// Contract names the batched contract ("batch" kind only).
	Contract string
	// N is the transaction count.
	N int
	// Param is the sweep knob: dependent ratio, ERC-20 share or SCT share.
	Param float64
}

// Token specifies a TokenBlock with the given dependent-transaction ratio.
func Token(n int, depRatio float64) Spec { return Spec{Kind: "token", N: n, Param: depRatio} }

// ERC20 specifies an ERC20Block with the given Tether-transfer share.
func ERC20(n int, share float64) Spec { return Spec{Kind: "erc20", N: n, Param: share} }

// Mixed specifies a MixedBlock with the given dependent-transaction ratio.
func Mixed(n int, depRatio float64) Spec { return Spec{Kind: "mixed", N: n, Param: depRatio} }

// SCT specifies an SCTBlock with the given smart-contract-transaction share.
func SCT(n int, share float64) Spec { return Spec{Kind: "sct", N: n, Param: share} }

// Batch specifies a same-contract batch cycling through entry functions.
func Batch(contract string, n int) Spec { return Spec{Kind: "batch", Contract: contract, N: n} }

// hasDAG reports whether the spec's block carries a conflict DAG (the
// scheduling workloads do; batches and SCT mixes are replayed
// sequentially and skip the extra sequential pass DAG building costs).
func (s Spec) hasDAG() bool {
	switch s.Kind {
	case "token", "erc20", "mixed":
		return true
	}
	return false
}

// Entry is one memoized workload: the block and everything the timing
// model needs to replay it. All fields are read-only after Get returns.
type Entry struct {
	Spec     Spec
	Block    *types.Block
	Traces   []*arch.TxTrace
	Receipts []*types.Receipt
	Digest   types.Hash

	plansOnce sync.Once
	plans     []*pu.Plan
}

// PlainPlans returns the unoptimized execution plan of every trace,
// built once per entry (instead of once per mode replayed) and shared by
// every caller — plans are read-only during replay. The plans carry a
// shared fill-segmentation memo: cached entries are replayed across
// many modes and repetitions, so the canonical segmentation is computed
// once here instead of once per pipeline.
func (e *Entry) PlainPlans() []*pu.Plan {
	e.plansOnce.Do(func() {
		e.plans = pu.PlainPlans(e.Traces)
		pu.AttachFillMemo(arch.DefaultConfig(), e.plans)
	})
	return e.plans
}

// Cache memoizes entries per spec. The zero value is not usable; use New.
type Cache struct {
	seed     int64
	accounts int
	genesis  *state.StateDB

	mu      sync.Mutex
	entries map[Spec]*cacheSlot

	hits, misses atomic.Int64
}

// cacheSlot decouples the map lock from entry construction: concurrent
// Gets of the same spec block on the slot's once while different specs
// build in parallel.
type cacheSlot struct {
	once  sync.Once
	entry *Entry
}

// New returns a cache generating workloads from seed over accounts funded
// accounts. genesis must be the state a generator with these parameters
// produces (pass nil to have the cache build it); the cache only ever
// copies it.
func New(seed int64, accounts int, genesis *state.StateDB) *Cache {
	if genesis == nil {
		genesis = workload.NewGenerator(seed, accounts).Genesis()
	}
	return &Cache{
		seed:     seed,
		accounts: accounts,
		genesis:  genesis,
		entries:  make(map[Spec]*cacheSlot),
	}
}

// Seed returns the generator seed entries are derived from.
func (c *Cache) Seed() int64 { return c.seed }

// Genesis returns the shared genesis state (read-only; copy before use).
func (c *Cache) Genesis() *state.StateDB { return c.genesis }

// Len returns the number of built entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns how many Gets were served from memory vs built.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Get returns the entry for spec, building it on first use. Concurrent
// calls for the same spec share one build.
func (c *Cache) Get(spec Spec) *Entry {
	c.mu.Lock()
	s := c.entries[spec]
	if s == nil {
		s = &cacheSlot{}
		c.entries[spec] = s
	}
	c.mu.Unlock()

	built := false
	s.once.Do(func() {
		s.entry = c.build(spec)
		built = true
	})
	if built {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return s.entry
}

// build generates the spec's block from a fresh generator (so the result
// is independent of every other spec) and runs the golden sequential
// execution once.
func (c *Cache) build(spec Spec) *Entry {
	g := workload.NewGenerator(c.seed, c.accounts)
	var block *types.Block
	switch spec.Kind {
	case "token":
		block = g.TokenBlock(spec.N, spec.Param)
	case "erc20":
		block = g.ERC20Block(spec.N, spec.Param)
	case "mixed":
		block = g.MixedBlock(spec.N, spec.Param)
	case "sct":
		block = g.SCTBlock(spec.N, spec.Param)
	case "batch":
		block = g.Batch(g.Contract(spec.Contract), spec.N)
	default:
		panic("tracecache: unknown workload kind " + spec.Kind)
	}
	if spec.hasDAG() {
		if _, err := workload.BuildDAG(c.genesis, block); err != nil {
			panic(fmt.Sprintf("tracecache: DAG for %s n=%d param=%.2f: %v",
				spec.Kind, spec.N, spec.Param, err))
		}
	}
	traces, receipts, digest, err := core.CollectTraces(c.genesis, block)
	if err != nil {
		panic(fmt.Sprintf("tracecache: traces for %s n=%d param=%.2f: %v",
			spec.Kind, spec.N, spec.Param, err))
	}
	return &Entry{
		Spec:     spec,
		Block:    block,
		Traces:   traces,
		Receipts: receipts,
		Digest:   digest,
	}
}
