package tracecache

import (
	"sync"
	"testing"
)

func TestGetMemoizes(t *testing.T) {
	c := New(7, 512, nil)
	spec := Token(32, 0.5)
	a := c.Get(spec)
	b := c.Get(spec)
	if a != b {
		t.Fatal("repeat Get returned a different entry")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if len(a.Traces) != len(a.Block.Transactions) {
		t.Fatalf("%d traces for %d transactions", len(a.Traces), len(a.Block.Transactions))
	}
	if a.Block.DAG == nil {
		t.Fatal("token entry is missing its DAG")
	}
}

func TestGetConcurrent(t *testing.T) {
	c := New(7, 512, nil)
	specs := []Spec{Token(24, 0.3), ERC20(24, 0.5), Mixed(24, 0.4), SCT(24, 0.6), Batch("TetherUSD", 12)}
	const goroutines = 8
	entries := make([][]*Entry, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := make([]*Entry, len(specs))
			for i, s := range specs {
				got[i] = c.Get(s)
			}
			entries[g] = got
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range specs {
			if entries[g][i] != entries[0][i] {
				t.Fatalf("goroutine %d got a different entry for %+v", g, specs[i])
			}
		}
	}
	if c.Len() != len(specs) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(specs))
	}
	if _, misses := c.Stats(); misses != int64(len(specs)) {
		t.Fatalf("misses = %d, want %d (each spec built once)", misses, len(specs))
	}
}

func TestSpecIndependentOfCallOrder(t *testing.T) {
	// Each spec builds from a fresh generator, so the same spec yields
	// the same workload no matter what was requested before it.
	a := New(7, 512, nil)
	first := a.Get(Token(32, 0.5))

	b := New(7, 512, nil)
	b.Get(ERC20(24, 0.5))
	b.Get(Batch("Dai", 8))
	second := b.Get(Token(32, 0.5))

	if first.Digest != second.Digest {
		t.Fatalf("digest depends on call order: %x vs %x", first.Digest, second.Digest)
	}
	if len(first.Traces) != len(second.Traces) {
		t.Fatalf("trace counts differ: %d vs %d", len(first.Traces), len(second.Traces))
	}
}

func TestPlainPlans(t *testing.T) {
	c := New(7, 512, nil)
	e := c.Get(Batch("TetherUSD", 8))
	p1 := e.PlainPlans()
	p2 := e.PlainPlans()
	if len(p1) != len(e.Traces) {
		t.Fatalf("%d plans for %d traces", len(p1), len(e.Traces))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("PlainPlans rebuilt plans on second call")
		}
		if p1[i].Trace != e.Traces[i] {
			t.Fatalf("plan %d does not wrap trace %d", i, i)
		}
	}
}
