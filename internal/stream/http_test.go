package stream

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"mtpu/internal/engine"
	"mtpu/internal/workload"
)

func startIngest(t *testing.T, cfg Config, spec workload.StreamSpec) (*Service, *Ingest, *workload.Stream) {
	t.Helper()
	src, err := spec.Open()
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	cfg.Genesis = src.Genesis()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	sock := filepath.Join(t.TempDir(), "mtpu.sock")
	in, err := svc.ListenAndServe("127.0.0.1:0", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { in.Close() })
	return svc, in, src
}

// TestHTTPIngest drives the full protocol surface over TCP: raw-RLP and
// JSON-envelope submission, bad input, health, and the post-drain 503s.
func TestHTTPIngest(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 6, Txs: 8, Dep: 0.3, Seed: 21}
	svc, in, src := startIngest(t, Config{Mode: engine.ModeSTHotspot, ShadowSample: 1}, spec)
	base := "http://" + in.Addr

	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}

	// Raw RLP body.
	b1, _ := src.Next()
	resp, err := http.Post(base+"/blocks", "application/octet-stream", bytes.NewReader(b1.EncodeRLP()))
	if err != nil {
		t.Fatalf("posting raw block: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("raw block: %s", resp.Status)
	}

	// JSON hex envelope.
	b2, _ := src.Next()
	env, _ := json.Marshal(map[string]string{"rlp": "0x" + hex.EncodeToString(b2.EncodeRLP())})
	resp, err = http.Post(base+"/blocks", "application/json", bytes.NewReader(env))
	if err != nil {
		t.Fatalf("posting JSON block: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("JSON block: %s", resp.Status)
	}

	// Garbage is a 400, not an accepted block.
	resp, _ = http.Post(base+"/blocks", "application/octet-stream", bytes.NewReader([]byte("not rlp")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage block: %s, want 400", resp.Status)
	}
	resp, _ = http.Get(base + "/blocks")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /blocks: %s, want 405", resp.Status)
	}

	svc.Close()
	if resp, _ = http.Get(base + "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %s, want 503", resp.Status)
	}
	b3, _ := src.Next()
	resp, _ = http.Post(base+"/blocks", "application/octet-stream", bytes.NewReader(b3.EncodeRLP()))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post while draining: %s, want 503", resp.Status)
	}

	rep, err := svc.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if rep.Committed != 2 || rep.ShadowFails != 0 {
		t.Fatalf("committed=%d shadowFails=%d, want 2/0", rep.Committed, rep.ShadowFails)
	}
}

// TestHTTPEnvelopeStrict pins the JSON-envelope hardening: unknown
// envelope keys and empty/missing rlp payloads are 400s with pointed
// messages, not accepted blocks or misleading block-decode errors.
func TestHTTPEnvelopeStrict(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 4, Txs: 4, Seed: 55}
	svc, in, src := startIngest(t, Config{Mode: engine.ModeScalar}, spec)
	base := "http://" + in.Addr

	b, _ := src.Next()
	hexRLP := "0x" + hex.EncodeToString(b.EncodeRLP())
	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(base+"/blocks", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("post %q: %v", body, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	// A misspelled key must not be silently dropped.
	code, msg := post(`{"rpl":"` + hexRLP + `"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown envelope key: %d %q, want 400", code, msg)
	}
	if !bytes.Contains([]byte(msg), []byte("envelope")) {
		t.Fatalf("unknown-key error %q does not name the envelope", msg)
	}

	// Empty and missing rlp payloads are envelope errors, not block ones.
	for _, body := range []string{`{}`, `{"rlp":""}`} {
		code, msg = post(body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: %d %q, want 400", body, code, msg)
		}
		if !bytes.Contains([]byte(msg), []byte("missing rlp")) {
			t.Fatalf("%s error %q does not say missing rlp", body, msg)
		}
	}

	// The well-formed envelope still works after the rejections.
	code, msg = post(`{"rlp":"` + hexRLP + `"}`)
	if code != http.StatusAccepted {
		t.Fatalf("valid envelope: %d %q, want 202", code, msg)
	}
	rep, err := svc.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep.Committed != 1 {
		t.Fatalf("committed %d, want 1", rep.Committed)
	}
}

// TestUnixIngest submits a block over the unix socket listener.
func TestUnixIngest(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 2, Txs: 6, Seed: 33}
	svc, in, src := startIngest(t, Config{Mode: engine.ModeScalar}, spec)

	sock := in.unixPath
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", sock)
		},
	}}
	b, _ := src.Next()
	resp, err := client.Post("http://unix/blocks", "application/octet-stream", bytes.NewReader(b.EncodeRLP()))
	if err != nil {
		t.Fatalf("posting over unix socket: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("unix block: %s", resp.Status)
	}
	rep, err := svc.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep.Committed != 1 {
		t.Fatalf("committed %d, want 1", rep.Committed)
	}
}

// TestHTTPQueueFull stalls the executor behind a depth-1 queue and
// floods ingest until the server answers 429 with a Retry-After hint.
func TestHTTPQueueFull(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 32, Txs: 2, Seed: 44}
	src, err := spec.Open()
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	svc, err := New(Config{Mode: engine.ModeScalar, Genesis: src.Genesis(), Queue: 1})
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	release := make(chan struct{})
	svc.execHook = func() {
		select {
		case <-release:
		case <-time.After(5 * time.Second):
		}
	}
	in, err := svc.ListenAndServe("127.0.0.1:0", "")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer in.Close()

	saw429 := false
	for i := 0; i < spec.Blocks; i++ {
		b, ok := src.Next()
		if !ok {
			break
		}
		resp, err := http.Post("http://"+in.Addr+"/blocks", "application/octet-stream", bytes.NewReader(b.EncodeRLP()))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("block %d: %s", i, resp.Status)
		}
	}
	if !saw429 {
		t.Fatal(fmt.Sprintf("no 429 across %d posts against a stalled depth-1 pipeline", spec.Blocks))
	}
	close(release)
	if _, err := svc.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
