package stream

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"mtpu/internal/types"
)

// maxBlockBytes bounds one submitted block's wire size — backpressure
// is pointless if a single request can balloon memory instead.
const maxBlockBytes = 8 << 20

// Handler returns the service's ingest HTTP handler:
//
//	POST /blocks  — submit one block; raw RLP (application/octet-stream)
//	                or JSON {"rlp":"<hex>"}. 202 accepted, 400 invalid,
//	                413 oversized, 429 queue full (Retry-After: 1),
//	                503 draining.
//	GET  /healthz — 200 with the engine name, committed height and
//	                head-state digest while accepting blocks, 503 once
//	                draining.
//
// The same handler serves the TCP and unix-socket listeners.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/blocks", s.handleBlocks)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Service) handleBlocks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBlockBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxBlockBytes {
		http.Error(w, "block exceeds size limit", http.StatusRequestEntityTooLarge)
		return
	}
	raw := body
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req struct {
			RLP string `json:"rlp"`
		}
		// Strict decode, like every other spec/envelope format in the
		// repo: a misspelled key must not silently submit garbage.
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, "decoding JSON envelope: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.RLP == "" {
			// Without this, an empty envelope decodes to zero bytes and
			// falls through to a misleading block-decode error.
			http.Error(w, "JSON envelope missing rlp payload", http.StatusBadRequest)
			return
		}
		raw, err = hex.DecodeString(strings.TrimPrefix(req.RLP, "0x"))
		if err != nil {
			http.Error(w, "decoding rlp hex: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	block, err := types.DecodeBlockRLP(raw)
	if err != nil {
		http.Error(w, "decoding block: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Hash before TrySubmit: once accepted the block belongs to the
	// pipeline, whose prefetch stage rewrites the DAG concurrently.
	hash := block.Hash()
	switch err := s.TrySubmit(block); err {
	case nil:
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "%s\n", hash)
	case ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case ErrClosed:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	select {
	case <-s.quit:
		closed = true
	default:
	}
	if closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintf(w, "ok %s height=%d head=%s\n", s.eng.Name(), s.Height(), s.HeadDigest())
}

// Ingest is the network face of one Service: an HTTP server listening
// on a TCP address, a unix socket path, or both, all serving Handler.
type Ingest struct {
	srv       *http.Server
	listeners []net.Listener
	unixPath  string
	wg        sync.WaitGroup

	// Addr is the bound TCP address (useful when the config asked for
	// port 0), empty if only the unix socket is listening.
	Addr string
}

// ListenAndServe starts the ingest server for s. Either addr (TCP,
// e.g. ":8573") or unixPath (a socket file, created fresh) may be
// empty, but not both. Serve errors after Close are swallowed; any
// other serve error halts the pipeline via the service's fail path.
func (s *Service) ListenAndServe(addr, unixPath string) (*Ingest, error) {
	if addr == "" && unixPath == "" {
		return nil, fmt.Errorf("stream: ingest needs a TCP address or a unix socket path")
	}
	in := &Ingest{srv: &http.Server{Handler: s.Handler()}, unixPath: unixPath}
	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("stream: listening on %s: %w", addr, err)
		}
		in.Addr = ln.Addr().String()
		in.listeners = append(in.listeners, ln)
	}
	if unixPath != "" {
		// A stale socket file from a previous run would fail the bind.
		_ = os.Remove(unixPath)
		ln, err := net.Listen("unix", unixPath)
		if err != nil {
			in.close()
			return nil, fmt.Errorf("stream: listening on unix %s: %w", unixPath, err)
		}
		in.listeners = append(in.listeners, ln)
	}
	for _, ln := range in.listeners {
		ln := ln
		in.wg.Add(1)
		go func() {
			defer in.wg.Done()
			if err := in.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				s.fail(fmt.Errorf("stream: ingest server: %w", err))
			}
		}()
	}
	return in, nil
}

// Close stops the listeners, waits briefly for in-flight requests and
// removes the unix socket file.
func (in *Ingest) Close() error {
	err := in.close()
	done := make(chan struct{})
	go func() { in.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	return err
}

func (in *Ingest) close() error {
	err := in.srv.Close()
	if in.unixPath != "" {
		_ = os.Remove(in.unixPath)
	}
	return err
}
