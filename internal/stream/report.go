package stream

import (
	"fmt"
	"strings"
	"time"

	"mtpu/internal/telemetry"
)

// Report is the final service summary Wait returns: admission and
// commit totals, sustained throughput over the accepted-to-committed
// wall-clock window, per-block end-to-end latency percentiles from the
// telemetry histogram, and the per-stage busy time plus overlap count
// that evidence the cross-block pipeline actually overlapped.
type Report struct {
	Engine string `json:"engine"`

	Accepted     uint64 `json:"accepted"`
	Rejected     uint64 `json:"rejected"`
	Invalid      uint64 `json:"invalid,omitempty"`
	Committed    uint64 `json:"committed"`
	CommittedTxs uint64 `json:"committed_txs"`

	ShadowChecks uint64 `json:"shadow_checks"`
	ShadowFails  uint64 `json:"shadow_fails"`

	// Height is the number of blocks folded into the canonical head;
	// HeadDigest is the head state's digest after the final fold.
	Height     uint64 `json:"height"`
	HeadDigest string `json:"head_digest"`

	WallMS       float64 `json:"wall_ms"`
	BlocksPerSec float64 `json:"blocks_per_sec"`
	TxsPerSec    float64 `json:"txs_per_sec"`

	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP95MS float64 `json:"latency_p95_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`

	StageBusyMS map[string]float64 `json:"stage_busy_ms"`
	Overlap     uint64             `json:"overlap"`
}

// report assembles the Report from the service's counters and the
// telemetry latency histogram.
func (s *Service) report() *Report {
	r := &Report{
		Engine:       s.eng.Name(),
		Accepted:     s.accepted.Load(),
		Rejected:     s.rejected.Load(),
		Invalid:      s.invalid.Load(),
		Committed:    s.committed.Load(),
		CommittedTxs: s.committedTxs.Load(),
		ShadowChecks: s.shadowChecks.Load(),
		ShadowFails:  s.shadowFails.Load(),
		Height:       s.store.Height(),
		HeadDigest:   s.store.HeadDigest().String(),
		StageBusyMS:  make(map[string]float64, telemetry.NumStreamStages),
	}
	for i := telemetry.StreamStage(0); i < telemetry.NumStreamStages; i++ {
		r.StageBusyMS[i.String()] = float64(s.stageBusyNS[i].Load()) / 1e6
	}
	r.Overlap = s.overlap.Load()

	if first, last := s.firstAccept.Load(), s.lastCommit.Load(); first > 0 && last > first {
		wall := time.Duration(last - first)
		r.WallMS = float64(wall.Nanoseconds()) / 1e6
		r.BlocksPerSec = float64(r.Committed) / wall.Seconds()
		r.TxsPerSec = float64(r.CommittedTxs) / wall.Seconds()
	}

	h := s.tel.Latency(s.label)
	if h.Count() > 0 {
		r.LatencyP50MS = float64(h.Quantile(0.50)) / 1e6
		r.LatencyP95MS = float64(h.Quantile(0.95)) / 1e6
		r.LatencyP99MS = float64(h.Quantile(0.99)) / 1e6
		r.LatencyMaxMS = float64(h.Max()) / 1e6
	}
	return r
}

// Render writes the report as the aligned human-readable block the
// service prints on drain.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream report (%s)\n", r.Engine)
	fmt.Fprintf(&b, "  blocks     accepted=%d rejected=%d invalid=%d committed=%d\n",
		r.Accepted, r.Rejected, r.Invalid, r.Committed)
	fmt.Fprintf(&b, "  shadow     checks=%d fails=%d\n", r.ShadowChecks, r.ShadowFails)
	fmt.Fprintf(&b, "  head       height=%d digest=%s\n", r.Height, r.HeadDigest)
	fmt.Fprintf(&b, "  throughput %.1f blocks/s  %.0f tx/s  (%d txs over %.0f ms)\n",
		r.BlocksPerSec, r.TxsPerSec, r.CommittedTxs, r.WallMS)
	fmt.Fprintf(&b, "  latency    p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		r.LatencyP50MS, r.LatencyP95MS, r.LatencyP99MS, r.LatencyMaxMS)
	fmt.Fprintf(&b, "  stages     prefetch=%.0fms execute=%.0fms commit=%.0fms overlap=%d\n",
		r.StageBusyMS[telemetry.StagePrefetch.String()],
		r.StageBusyMS[telemetry.StageExecute.String()],
		r.StageBusyMS[telemetry.StageCommit.String()],
		r.Overlap)
	return b.String()
}
