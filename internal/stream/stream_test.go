package stream

import (
	"errors"
	"testing"
	"time"

	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// drive opens the spec's stream and pushes every block through a fresh
// service, returning the drained report and the telemetry registry.
func drive(t *testing.T, cfg Config, spec workload.StreamSpec) (*Report, *telemetry.Metrics) {
	t.Helper()
	src, err := spec.Open()
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	cfg.Genesis = src.Genesis()
	svc, err := New(cfg)
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		if err := svc.Submit(b); err != nil {
			t.Fatalf("submitting block: %v", err)
		}
	}
	rep, err := svc.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rep, svc.Tel()
}

// TestStreamAllEngines drains a block stream through every registered
// engine with full shadow validation: all accepted blocks commit, every
// shadow check passes, and the snapshot invariants hold after drain.
func TestStreamAllEngines(t *testing.T) {
	for _, mode := range engine.Modes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			spec := workload.StreamSpec{Blocks: 12, Txs: 12, Dep: 0.4, Seed: 7 + int64(mode)}
			rep, tel := drive(t, Config{Mode: mode, ShadowSample: 1, HotspotTopN: 4, VerifyChain: true}, spec)

			if rep.Committed != uint64(spec.Blocks) || rep.Accepted != uint64(spec.Blocks) {
				t.Fatalf("committed %d / accepted %d of %d blocks", rep.Committed, rep.Accepted, spec.Blocks)
			}
			if want := uint64(spec.Blocks * spec.Txs); rep.CommittedTxs != want {
				t.Fatalf("committed %d txs, want %d", rep.CommittedTxs, want)
			}
			if rep.ShadowChecks != uint64(spec.Blocks) || rep.ShadowFails != 0 {
				t.Fatalf("shadow checks=%d fails=%d, want %d/0", rep.ShadowChecks, rep.ShadowFails, spec.Blocks)
			}
			if rep.LatencyP50MS <= 0 || rep.LatencyP99MS < rep.LatencyP50MS {
				t.Fatalf("implausible latency percentiles: p50=%v p99=%v", rep.LatencyP50MS, rep.LatencyP99MS)
			}
			snap := tel.Snapshot()
			if snap.Stream == nil {
				t.Fatal("snapshot has no stream section after a drained stream")
			}
			if err := snap.Stream.Check(true); err != nil {
				t.Fatalf("drained snapshot invariants: %v", err)
			}
		})
	}
}

// TestStreamChainedDigest is the cross-block state-chaining contract:
// after draining a chained stream, the service's head digest must be
// byte-identical to one sequential whole-stream replay of the same
// blocks over one evolving StateDB — block N+1 really ran against
// post-N state, with every fold digest-checked along the way
// (VerifyChain) and every block shadow-validated against its chained
// pre-state.
func TestStreamChainedDigest(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 10, Txs: 16, Dep: 0.5, Seed: 21}
	src, err := spec.Open()
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	genesis := src.Genesis()
	var blocks []*types.Block
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		blocks = append(blocks, b)
	}

	// The oracle: one sequential replay of the whole stream.
	seq := genesis.Copy()
	var want types.Hash
	for i, b := range blocks {
		if _, _, d, err := core.CollectTracesOn(seq, b); err != nil {
			t.Fatalf("sequential oracle block %d: %v", i, err)
		} else {
			want = d
		}
	}

	svc, err := New(Config{Mode: engine.ModeSTRedundancy, Genesis: genesis,
		ShadowSample: 1, VerifyChain: true})
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	for _, b := range blocks {
		if err := svc.Submit(b); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	rep, err := svc.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep.Committed != uint64(len(blocks)) {
		t.Fatalf("committed %d of %d blocks", rep.Committed, len(blocks))
	}
	if rep.Height != uint64(len(blocks)) {
		t.Fatalf("report height %d, want %d", rep.Height, len(blocks))
	}
	if rep.HeadDigest != want.String() {
		t.Fatalf("service head digest %s != whole-stream sequential digest %s", rep.HeadDigest, want)
	}
	if rep.ShadowChecks != uint64(len(blocks)) || rep.ShadowFails != 0 {
		t.Fatalf("shadow checks=%d fails=%d, want %d/0", rep.ShadowChecks, rep.ShadowFails, len(blocks))
	}
	// The chained run must have exercised the mvstate layer.
	snap := svc.Tel().Snapshot()
	if snap.MVState == nil {
		t.Fatal("chained stream left no mvstate telemetry")
	}
	if snap.MVState.Commits != uint64(len(blocks)) {
		t.Fatalf("mvstate commits %d, want %d", snap.MVState.Commits, len(blocks))
	}
	if err := snap.MVState.Check(); err != nil {
		t.Fatalf("mvstate snapshot invariants: %v", err)
	}
}

// TestStreamOverlap proves the pipeline stages actually overlap across
// blocks: with a stream long enough to fill the queues, prefetch of
// block N+1 must have been busy while execute of block N was.
func TestStreamOverlap(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 32, Txs: 24, Dep: 0.3, Seed: 11}
	rep, tel := drive(t, Config{Mode: engine.ModeSTHotspot, ShadowSample: 0.25}, spec)
	if rep.Overlap == 0 {
		t.Fatalf("no stage overlap recorded across %d blocks — pipeline ran sequentially", spec.Blocks)
	}
	snap := tel.Snapshot()
	if snap.Stream.Overlap != rep.Overlap {
		t.Fatalf("report overlap %d != telemetry overlap %d", rep.Overlap, snap.Stream.Overlap)
	}
	for _, stage := range []telemetry.StreamStage{telemetry.StagePrefetch, telemetry.StageExecute} {
		if rep.StageBusyMS[stage.String()] <= 0 {
			t.Fatalf("stage %s recorded no busy time", stage)
		}
	}
}

// TestStreamBackpressure drives a service whose executor is artificially
// slow: TrySubmit must start returning ErrQueueFull once the bounded
// queues fill (bounded memory), and the graceful drain must still
// commit every block that was accepted.
func TestStreamBackpressure(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 64, Txs: 4, Dep: 0, Seed: 3}
	src, err := spec.Open()
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	svc, err := New(Config{Mode: engine.ModeScalar, Genesis: src.Genesis(), Queue: 2})
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	release := make(chan struct{})
	svc.execHook = func() {
		select {
		case <-release:
		case <-time.After(5 * time.Second):
		}
	}

	var accepted, rejected int
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		switch err := svc.TrySubmit(b); {
		case err == nil:
			accepted++
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatalf("TrySubmit: %v", err)
		}
	}
	if rejected == 0 {
		t.Fatalf("no blocks rejected: a stalled executor must surface as queue-full, accepted=%d", accepted)
	}
	// With three bounded stages of depth 2 the pipeline can hold only a
	// handful of blocks while the executor stalls.
	if max := 3*2 + 3; accepted > max {
		t.Fatalf("accepted %d blocks with a stalled executor; bounded queues should cap near %d", accepted, max)
	}

	close(release)
	rep, err := svc.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep.Committed != uint64(accepted) {
		t.Fatalf("drain committed %d of %d accepted blocks", rep.Committed, accepted)
	}
	if rep.Rejected != uint64(rejected) {
		t.Fatalf("report rejected %d, ingest saw %d", rep.Rejected, rejected)
	}
	if err := svc.Tel().Snapshot().Stream.Check(true); err != nil {
		t.Fatalf("drained snapshot invariants: %v", err)
	}
}

// TestStreamInvalidBlock submits an undecodable (empty) block between
// valid ones: the service counts it invalid, keeps running, and commits
// the rest.
func TestStreamInvalidBlock(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 4, Txs: 8, Dep: 0.2, Seed: 5}
	src, err := spec.Open()
	if err != nil {
		t.Fatalf("opening stream: %v", err)
	}
	svc, err := New(Config{Mode: engine.ModeSpatialTemporal, Genesis: src.Genesis(), ShadowSample: 1})
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	b1, _ := src.Next()
	if err := svc.Submit(b1); err != nil {
		t.Fatalf("submit: %v", err)
	}
	empty := types.NewBlock(b1.Header, nil)
	if err := svc.Submit(empty); err != nil {
		t.Fatalf("submit empty: %v", err)
	}
	b2, _ := src.Next()
	if err := svc.Submit(b2); err != nil {
		t.Fatalf("submit: %v", err)
	}
	rep, err := svc.Drain()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if rep.Invalid != 1 || rep.Committed != 2 {
		t.Fatalf("invalid=%d committed=%d, want 1/2", rep.Invalid, rep.Committed)
	}
	if err := svc.Tel().Snapshot().Stream.Check(true); err != nil {
		t.Fatalf("drained snapshot invariants: %v", err)
	}
}

// TestSubmitAfterClose verifies both submit paths refuse new blocks
// once the drain begins.
func TestSubmitAfterClose(t *testing.T) {
	spec := workload.StreamSpec{Blocks: 2, Txs: 4, Seed: 9}
	src, _ := spec.Open()
	svc, err := New(Config{Mode: engine.ModeScalar, Genesis: src.Genesis()})
	if err != nil {
		t.Fatalf("starting service: %v", err)
	}
	svc.Close()
	b, _ := src.Next()
	if err := svc.Submit(b); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if err := svc.TrySubmit(b); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close: %v, want ErrClosed", err)
	}
	if _, err := svc.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

func TestShadowStride(t *testing.T) {
	cases := []struct {
		sample float64
		want   uint64
	}{
		{0, 0}, {1, 1}, {0.5, 2}, {0.25, 4}, {0.1, 10}, {0.003, 333},
	}
	for _, c := range cases {
		if got := shadowStride(c.sample); got != c.want {
			t.Errorf("shadowStride(%v) = %d, want %d", c.sample, got, c.want)
		}
	}
}
