package stream

import (
	"fmt"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pu"
	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
)

// prefetched is the prefetch/decode stage's output for one block:
// everything the execute and commit stages need, built while the
// previous block was still executing.
type prefetched struct {
	block    *types.Block
	traces   []*arch.TxTrace
	receipts []*types.Receipt
	digest   types.Hash
	plans    []*pu.Plan
	accepted time.Time
	seq      uint64
}

// prefetch decodes one block a stage ahead of execution: a single
// sequential EVM pass that simultaneously records per-transaction
// access sets (for the conflict DAG) and collects instruction traces,
// receipts and the golden state digest; then prebuilds the plain
// per-transaction plans with their pipeline fill memos. One pass does
// the work BuildDAG + CollectTraces would need two for.
//
// The incoming DAG, if any, is discarded and rebuilt from the observed
// access sets: the service treats block input as untrusted, so every
// engine downstream schedules against conflicts the sequential replay
// actually proved.
func prefetch(genesis *state.StateDB, block *types.Block, cfg arch.Config) (*prefetched, error) {
	st := genesis.Copy()
	e := evm.New(evm.NewBlockContext(block.Header), st)
	col := arch.NewCollector()
	e.Tracer = col

	n := len(block.Transactions)
	if n == 0 {
		return nil, fmt.Errorf("empty block")
	}
	traces := make([]*arch.TxTrace, n)
	receipts := make([]*types.Receipt, n)
	reads := make([]state.AccessSet, n)
	writes := make([]state.AccessSet, n)

	// The coinbase balance is touched by every transaction's gas payment;
	// treating it as a conflict would serialize the whole block, so the
	// DAG excludes it — matching workload.BuildDAG and the commutative-
	// reward treatment every engine applies.
	coinbaseKey := state.AccessKey{Kind: state.AccessBalance, Addr: block.Header.Coinbase}
	for i, tx := range block.Transactions {
		col.Begin(tx)
		st.BeginAccessRecord()
		r, err := evm.ApplyTransaction(e, tx, i)
		rd, wr := st.EndAccessRecord()
		if err != nil {
			return nil, fmt.Errorf("tx %d invalid: %w", i, err)
		}
		delete(rd, coinbaseKey)
		delete(wr, coinbaseKey)
		reads[i], writes[i] = rd, wr
		receipts[i] = r
		traces[i] = col.Finish(r.GasUsed)
	}

	block.DAG = types.NewDAG(n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if writes[i].Overlaps(reads[j]) || writes[i].Overlaps(writes[j]) ||
				reads[i].Overlaps(writes[j]) {
				block.DAG.AddEdge(i, j)
			}
		}
	}

	plans := pu.PlainPlans(traces)
	pu.AttachFillMemo(cfg, plans)

	return &prefetched{
		block:    block,
		traces:   traces,
		receipts: receipts,
		digest:   st.Digest(),
		plans:    plans,
	}, nil
}
