package stream

import (
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pu"
	"mtpu/internal/core"
	"mtpu/internal/mvstate"
	"mtpu/internal/types"
)

// prefetched is the prefetch/decode stage's output for one block:
// everything the execute and commit stages need, built while the
// previous block was still executing. The decode is speculative — it
// ran against a pinned snapshot of the head that earlier in-flight
// blocks may since have advanced — so it carries the snapshot height
// and the decode error (if any) instead of deciding validity itself;
// the execute stage revalidates against the exact pre-state and
// re-decodes when the speculation was stale.
type prefetched struct {
	block *types.Block
	// prep is the decode product (traces, receipts, write-set, base
	// read-set, rebuilt DAG); nil when err is set.
	prep *core.Prepared
	// err is the decode failure at the pinned snapshot. It is not final:
	// the execute stage retries at the true pre-state before counting
	// the block invalid.
	err   error
	plans []*pu.Plan
	// digest is the post-block state digest at the exact chained
	// pre-state — filled by the execute stage, not here.
	digest   types.Hash
	accepted time.Time
	seq      uint64
}

// prefetch decodes one block a stage ahead of execution against a
// pinned snapshot of the current head: a single sequential EVM pass
// over a versioned overlay (no state copy) that records per-transaction
// access sets, rebuilds the conflict DAG, and collects instruction
// traces, receipts and the block's net write-set; then prebuilds the
// plain per-transaction plans with their pipeline fill memos.
//
// prefetch never rejects a block: validity is a property of the true
// chained pre-state, which may still be several folds away while this
// stage runs ahead.
func prefetch(store *mvstate.Store, block *types.Block, cfg arch.Config) *prefetched {
	snap := store.Pin()
	defer snap.Close()
	pre := &prefetched{block: block}
	pre.prep, pre.err = core.PrepareBlock(snap, block)
	if pre.err == nil {
		pre.plans = pu.PlainPlans(pre.prep.Traces)
		pu.AttachFillMemo(cfg, pre.plans)
	}
	return pre
}
