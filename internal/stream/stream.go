// Package stream is the block-stream execution service: a long-running
// staged pipeline across consecutive blocks, turning the one-shot
// replay machinery into a daemon the way the paper's accelerator
// pipelines instructions. While block N executes on the configured
// engine, the prefetch/decode stage is already building block N+1's
// DAG, traces, symbol tables and plans, and the commit stage is
// verifying and publishing block N−1 — the Block-STM / BSE observation
// that schedule construction for the next block can overlap execution
// of the current one, made first-class.
//
// State is chained across blocks through an mvstate.Store: the commit
// stage folds each block's write-set into the canonical head, so block
// N+1 executes against post-N state, not genesis. Prefetch decodes
// speculatively against a pinned snapshot of the head; the execute
// stage revalidates the decode's base read-set against the folds that
// landed since and re-decodes at the exact pre-state when stale.
//
// Stages are connected by bounded channels; ingest applies explicit
// backpressure (TrySubmit returns ErrQueueFull, the HTTP face answers
// 429) so a slow executor surfaces as rejected blocks, never as
// unbounded memory. Close drains gracefully: every accepted block is
// committed before Wait returns. An optional shadow validator
// re-executes a sampled fraction of committed blocks through the
// sequential oracle (difftest.OracleCheck) and either halts the
// pipeline or logs, per configuration. All signals — admission
// counters, per-stage queue depths and busy time, per-block end-to-end
// latency histograms — flow through internal/telemetry.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pu"
	"mtpu/internal/core"
	"mtpu/internal/difftest"
	"mtpu/internal/engine"
	"mtpu/internal/mvstate"
	"mtpu/internal/state"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
)

// Sentinel admission errors the ingest faces translate to protocol
// signals (HTTP 429 / 503).
var (
	// ErrQueueFull reports that the ingest queue is at capacity — the
	// backpressure signal. The block was not accepted; retry later.
	ErrQueueFull = errors.New("stream: ingest queue full")
	// ErrClosed reports that the service is draining or halted and
	// accepts no further blocks.
	ErrClosed = errors.New("stream: service closed")
)

// DefaultQueueDepth bounds each inter-stage channel when Config.Queue
// is zero: deep enough to keep every stage busy, shallow enough that a
// stalled executor rejects ingest within a handful of blocks.
const DefaultQueueDepth = 8

// Config parameterizes one Service.
type Config struct {
	// Mode is the execution engine every block runs on.
	Mode engine.Mode
	// Genesis seeds the canonical head state: block 1 of the stream
	// executes against it, and every committed block's write-set folds
	// into the head, so later blocks see true chained state. Required.
	Genesis *state.StateDB
	// VerifyChain recomputes the head-state digest after every fold and
	// asserts it matches the digest the block was verified against — the
	// digest-continuity check. Full-state hashing per block; meant for
	// CI and debugging, not peak-throughput serving.
	VerifyChain bool
	// NumPUs overrides the architectural PU count when > 0.
	NumPUs int
	// Queue bounds each inter-stage channel (0 = DefaultQueueDepth).
	Queue int
	// HotspotTopN is how many hot contracts the Contract Table learns
	// from each committed block's traces, warming the next block's
	// replay (0 disables learning).
	HotspotTopN int
	// ShadowSample is the fraction of committed blocks re-executed
	// through the sequential oracle (difftest.OracleCheck): 0 disables
	// shadow validation, 1 checks every block, intermediate values
	// check every round(1/ShadowSample)-th block deterministically.
	ShadowSample float64
	// ShadowLogOnly keeps the pipeline running on a shadow-validation
	// mismatch, only logging it; the default halts the service and
	// surfaces the divergence from Wait.
	ShadowLogOnly bool
	// Tel receives every pipeline signal; nil constructs a private
	// registry (the Report still needs the histograms).
	Tel *telemetry.Metrics
	// Logf, when non-nil, receives service log lines (drain progress,
	// shadow mismatches in log-only mode, rejected blocks).
	Logf func(format string, args ...any)
}

// ingested is one accepted block with its admission timestamp, the
// start of the end-to-end latency the commit stage records.
type ingested struct {
	block *types.Block
	at    time.Time
}

// executed is the execute stage's output for one block.
type executed struct {
	pre *prefetched
	res *core.Result
}

// Service is one running block-stream pipeline. Construct with New;
// every Service owns three stage goroutines until Wait returns.
type Service struct {
	cfg   Config
	eng   engine.Engine
	label string
	acc   *core.Accelerator
	tel   *telemetry.Metrics
	store *mvstate.Store

	ingestQ chan ingested
	execQ   chan *prefetched
	commitQ chan *executed

	mu     sync.Mutex
	closed bool

	quit     chan struct{} // closed on halt: unblocks every stage send/recv
	done     chan struct{} // closed when the commit stage exits
	failOnce sync.Once
	err      error

	// stage-overlap evidence: busyStages counts the stages currently
	// inside processing work (not channel waits).
	busyStages atomic.Int32

	// drain/report bookkeeping.
	accepted     atomic.Uint64
	committed    atomic.Uint64
	committedTxs atomic.Uint64
	invalid      atomic.Uint64
	rejected     atomic.Uint64
	shadowChecks atomic.Uint64
	shadowFails  atomic.Uint64
	overlap      atomic.Uint64
	stageBusyNS  [telemetry.NumStreamStages]atomic.Uint64
	firstAccept  atomic.Int64 // unix nanos of the first accepted block
	lastCommit   atomic.Int64 // unix nanos of the latest commit

	// execHook, when non-nil, runs inside the execute stage's work
	// section before each replay — the test seam for a slow executor.
	execHook func()
}

// New validates the configuration and starts the pipeline stages.
func New(cfg Config) (*Service, error) {
	eng, err := engine.Get(cfg.Mode)
	if err != nil {
		return nil, err
	}
	if cfg.Genesis == nil {
		return nil, fmt.Errorf("stream: config needs a genesis state")
	}
	if cfg.ShadowSample < 0 || cfg.ShadowSample > 1 {
		return nil, fmt.Errorf("stream: shadow sample %v outside [0,1]", cfg.ShadowSample)
	}
	if cfg.Queue < 0 {
		return nil, fmt.Errorf("stream: negative queue depth %d", cfg.Queue)
	}
	queue := cfg.Queue
	if queue == 0 {
		queue = DefaultQueueDepth
	}
	tel := cfg.Tel
	if tel == nil {
		tel = telemetry.New()
	}
	acfg := arch.DefaultConfig()
	if cfg.NumPUs > 0 {
		acfg.NumPUs = cfg.NumPUs
	}
	s := &Service{
		cfg:     cfg,
		eng:     eng,
		label:   "serve/" + eng.Name(),
		acc:     core.New(acfg),
		tel:     tel,
		store:   mvstate.NewStore(cfg.Genesis, tel),
		ingestQ: make(chan ingested, queue),
		execQ:   make(chan *prefetched, queue),
		commitQ: make(chan *executed, queue),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.prefetchLoop()
	go s.executeLoop()
	go s.commitLoop()
	return s, nil
}

// Tel returns the telemetry registry the pipeline reports into.
func (s *Service) Tel() *telemetry.Metrics { return s.tel }

// Engine returns the name of the engine the service executes on.
func (s *Service) Engine() string { return s.eng.Name() }

// Height returns the number of blocks folded into the canonical head.
func (s *Service) Height() uint64 { return s.store.Height() }

// HeadDigest returns the digest of the canonical head state — genesis's
// digest at height 0, then the post-block digest after each fold.
func (s *Service) HeadDigest() types.Hash { return s.store.HeadDigest() }

// logf forwards to the configured logger, if any.
func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// fail records the first pipeline error and halts every stage.
func (s *Service) fail(err error) {
	s.failOnce.Do(func() {
		s.err = err
		close(s.quit)
		// Wake the execute stage if it is waiting for a fold that will
		// never come.
		s.store.Interrupt()
	})
}

// Submit hands one block to the pipeline, blocking while the ingest
// queue is full (in-process sources get natural backpressure). It
// returns ErrClosed once the service is draining or halted.
func (s *Service) Submit(b *types.Block) error {
	return s.submit(b, true)
}

// TrySubmit is the non-blocking Submit the network faces use: a full
// ingest queue returns ErrQueueFull immediately (and counts one
// rejection) instead of buffering — bounded memory by construction.
func (s *Service) TrySubmit(b *types.Block) error {
	return s.submit(b, false)
}

func (s *Service) submit(b *types.Block, wait bool) error {
	// The lock pairs the closed check with the channel send so Close
	// cannot close ingestQ between them; the consumer (or quit) always
	// drains pending sends, so the critical section cannot deadlock.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	select {
	case <-s.quit:
		return ErrClosed
	default:
	}
	item := ingested{block: b, at: time.Now()}
	if !wait {
		select {
		case s.ingestQ <- item:
		default:
			s.rejected.Add(1)
			s.tel.StreamRejected.Inc()
			return ErrQueueFull
		}
	} else {
		select {
		case s.ingestQ <- item:
		case <-s.quit:
			return ErrClosed
		}
	}
	s.accepted.Add(1)
	s.tel.StreamAccepted.Inc()
	s.tel.StreamQueueDepth[telemetry.StagePrefetch].Add(1)
	s.firstAccept.CompareAndSwap(0, time.Now().UnixNano())
	return nil
}

// Close stops accepting blocks and begins the graceful drain: every
// already-accepted block still flows through prefetch, execute and
// commit. Close is idempotent and returns immediately; Wait blocks
// until the drain completes.
func (s *Service) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ingestQ)
}

// Wait blocks until the pipeline has fully drained (or halted) and
// returns the final service report. The error is the first pipeline
// failure — an invalid replay, or a shadow-validation mismatch unless
// ShadowLogOnly is set.
func (s *Service) Wait() (*Report, error) {
	<-s.done
	return s.report(), s.err
}

// Drain is Close followed by Wait.
func (s *Service) Drain() (*Report, error) {
	s.Close()
	return s.Wait()
}

// beginWork marks a stage as busy processing (not channel-waiting) and
// records pipeline overlap when at least one other stage already is.
func (s *Service) beginWork() time.Time {
	if s.busyStages.Add(1) >= 2 {
		s.overlap.Add(1)
		s.tel.StreamOverlap.Inc()
	}
	return time.Now()
}

// endWork closes the busy window beginWork opened.
func (s *Service) endWork(stage telemetry.StreamStage, start time.Time) {
	s.busyStages.Add(-1)
	ns := uint64(time.Since(start).Nanoseconds())
	s.stageBusyNS[stage].Add(ns)
	s.tel.StreamStageBusyNS[stage].Add(ns)
}

// prefetchLoop decodes each accepted block — conflict DAG, golden
// sequential traces/receipts, symbol tables and plain plans — one block
// ahead of execution, speculatively against a pinned snapshot of the
// head. It never rejects: validity is judged by the execute stage
// against the true chained pre-state.
func (s *Service) prefetchLoop() {
	defer close(s.execQ)
	for item := range s.ingestQ {
		s.tel.StreamQueueDepth[telemetry.StagePrefetch].Add(-1)
		start := s.beginWork()
		pre := prefetch(s.store, item.block, s.acc.Cfg)
		s.endWork(telemetry.StagePrefetch, start)
		pre.accepted = item.at
		select {
		case s.execQ <- pre:
			s.tel.StreamQueueDepth[telemetry.StageExecute].Add(1)
		case <-s.quit:
			return
		}
	}
}

// executeLoop replays each prepared block on the configured engine at
// the exact chained pre-state and learns its hotspots for the next
// block — the paper's block-interval Contract Table warm-up, now
// pipelined. Before each block it waits for every previously executed
// block to fold into the head, then revalidates the speculative decode
// against the folds that landed since the prefetch snapshot; a stale or
// failed decode is retried once at the true pre-state, and only a
// failure there counts the block invalid (counted, logged, skipped: a
// service drops a bad block, it does not die with it).
func (s *Service) executeLoop() {
	defer close(s.commitQ)
	var folds uint64 // blocks this loop has sent downstream to fold
	for pre := range s.execQ {
		s.tel.StreamQueueDepth[telemetry.StageExecute].Add(-1)
		if !s.store.WaitHeight(folds) {
			return // halted while waiting
		}
		start := s.beginWork()
		if s.execHook != nil {
			s.execHook()
		}
		head := s.store.Head()
		if pre.err != nil || s.store.Invalidated(pre.prep.BaseReads, pre.prep.Height) {
			prep, err := core.PrepareBlock(head, pre.block)
			if err != nil {
				s.endWork(telemetry.StageExecute, start)
				s.invalid.Add(1)
				s.tel.StreamInvalid.Inc()
				s.logf("stream: block %s rejected: %v", pre.block.Hash(), err)
				continue
			}
			pre.prep = prep
			pre.plans = pu.PlainPlans(prep.Traces)
			pu.AttachFillMemo(s.acc.Cfg, pre.plans)
		}
		pre.digest = pre.prep.DigestAt(head, pre.block.Header.Coinbase)
		pre.seq = folds
		res, err := s.acc.ReplayWith(pre.block, pre.prep.Traces, pre.prep.Receipts, pre.digest, s.cfg.Mode,
			core.ReplayOpts{Genesis: head.DB(), Head: head, Plans: pre.plans, Tel: s.tel})
		if err == nil && s.cfg.HotspotTopN > 0 {
			s.acc.LearnHotspots(pre.prep.Traces, s.cfg.HotspotTopN)
		}
		s.endWork(telemetry.StageExecute, start)
		if err != nil {
			s.fail(fmt.Errorf("stream: executing block %s: %w", pre.block.Hash(), err))
			return
		}
		folds++
		select {
		case s.commitQ <- &executed{pre: pre, res: res}:
			s.tel.StreamQueueDepth[telemetry.StageCommit].Add(1)
		case <-s.quit:
			return
		}
	}
}

// commitLoop publishes results in stream order: it folds each block's
// write-set into the canonical head first — unblocking the execute
// stage, which waits for the fold before running the next block — then
// shadow-validates the sampled blocks against a snapshot of the chained
// pre-state pinned before the fold (not genesis), concurrently with the
// next block's execution. A shadow mismatch halts the pipeline (unless
// ShadowLogOnly), so the optimistically folded head of a bad block is
// never served beyond the failure. Per-block end-to-end latency lands
// in the telemetry histogram.
func (s *Service) commitLoop() {
	defer close(s.done)
	stride := shadowStride(s.cfg.ShadowSample)
	for ex := range s.commitQ {
		s.tel.StreamQueueDepth[telemetry.StageCommit].Add(-1)
		start := s.beginWork()
		prep := ex.pre.prep
		shadow := stride > 0 && ex.pre.seq%stride == 0
		var pre *mvstate.Snapshot
		if shadow {
			pre = s.store.Pin()
		}
		s.store.Commit(prep.WriteKeys, prep.WriteVals, ex.pre.block.Header.Coinbase, &prep.Fees)
		if s.cfg.VerifyChain {
			if got := s.store.HeadDigest(); got != ex.pre.digest {
				if pre != nil {
					pre.Close()
				}
				s.endWork(telemetry.StageCommit, start)
				s.fail(fmt.Errorf("stream: head digest %s after folding block %s != verified digest %s",
					got, ex.pre.block.Hash(), ex.pre.digest))
				return
			}
		}
		if shadow {
			s.shadowChecks.Add(1)
			s.tel.StreamShadowChecks.Inc()
			err := difftest.OracleCheckAt(pre, ex.pre.block, prep.Receipts, ex.pre.digest, ex.res)
			pre.Close()
			if err != nil {
				s.shadowFails.Add(1)
				s.tel.StreamShadowFails.Inc()
				if s.cfg.ShadowLogOnly {
					s.logf("stream: shadow validation of block %s FAILED: %v", ex.pre.block.Hash(), err)
				} else {
					s.endWork(telemetry.StageCommit, start)
					s.fail(fmt.Errorf("stream: shadow validation of block %s: %w", ex.pre.block.Hash(), err))
					return
				}
			}
		}
		s.committed.Add(1)
		s.committedTxs.Add(uint64(len(ex.pre.block.Transactions)))
		s.tel.StreamCommitted.Inc()
		s.tel.StreamCommittedTxs.Add(uint64(len(ex.pre.block.Transactions)))
		s.tel.Latency(s.label).Record(uint64(time.Since(ex.pre.accepted).Nanoseconds()))
		s.lastCommit.Store(time.Now().UnixNano())
		s.endWork(telemetry.StageCommit, start)
	}
}

// shadowStride converts a sample fraction to a deterministic stride:
// every stride-th prepared block is shadow-checked (0 = off).
func shadowStride(sample float64) uint64 {
	if sample <= 0 {
		return 0
	}
	stride := uint64(1/sample + 0.5)
	if stride < 1 {
		stride = 1
	}
	return stride
}
