package baseline

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

func blockAndTraces(t *testing.T, share float64) (*workload.Generator, []*arch.TxTrace, *types.Block) {
	t.Helper()
	g := workload.NewGenerator(55, 2048)
	genesis := g.Genesis()
	block := g.ERC20Block(60, share)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	return g, traces, block
}

func flags(g *workload.Generator, block *types.Block) []bool {
	tether := g.Contract("TetherUSD")
	addrs := map[types.Address]bool{tether.Address: true}
	sels := map[[4]byte]bool{tether.Function("transfer").Selector: true}
	return ERC20Flags(block.Transactions, addrs, sels)
}

func TestERC20FlagsSelectivity(t *testing.T) {
	g, _, block := blockAndTraces(t, 0.5)
	fs := flags(g, block)
	count := 0
	tether := g.Contract("TetherUSD").Address
	for i, tx := range block.Transactions {
		isTransfer := tx.To != nil && *tx.To == tether
		if fs[i] != isTransfer {
			t.Fatalf("tx %d flag %v, to=%s", i, fs[i], tx.To)
		}
		if fs[i] {
			count++
		}
	}
	if count != 30 {
		t.Fatalf("%d flagged, want 30", count)
	}
}

func TestAppEngineAcceleratesFlagged(t *testing.T) {
	g, traces, block := blockAndTraces(t, 1.0)
	fs := flags(g, block)

	all := New(1, traces, fs)
	resFast := all.RunSequential(len(traces))

	none := New(1, traces, make([]bool, len(traces)))
	resSlow := none.RunSequential(len(traces))

	ratio := float64(resSlow.Makespan) / float64(resFast.Makespan)
	// All transactions flagged → ratio approaches AppEngineSpeedup
	// (diluted only by the fixed per-tx context-load time).
	if ratio < AppEngineSpeedup*0.5 || ratio > AppEngineSpeedup*1.05 {
		t.Fatalf("app-engine ratio %.2f, expected near %.2f", ratio, AppEngineSpeedup)
	}
}

func TestBPUSynchronousParallelism(t *testing.T) {
	g, traces, block := blockAndTraces(t, 0.0)
	fs := flags(g, block)
	single := New(1, traces, fs).RunSequential(len(traces))
	quadEngine := New(4, traces, fs)
	quad := quadEngine.RunSynchronous(block.DAG)
	sp := float64(single.Makespan) / float64(quad.Makespan)
	if sp < 1.5 {
		t.Fatalf("quad BPU speedup %.2f", sp)
	}
	if quad.Makespan == 0 {
		t.Fatal("zero makespan")
	}
}

func TestDispatchCostNeverZero(t *testing.T) {
	// Even a maximally accelerated transaction costs at least one cycle.
	g := workload.NewGenerator(77, 256)
	genesis := g.Genesis()
	block := g.ERC20Block(4, 1.0)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	fs := make([]bool, len(traces))
	for i := range fs {
		fs[i] = true
	}
	b := New(1, traces, fs)
	for i := range traces {
		if c := b.Dispatch(0, i); c == 0 {
			t.Fatalf("tx %d cost 0", i)
		}
	}
}
