// Package baseline implements the comparison points of §4.4: an
// analytical model of BPU (Lu & Peng, DAC'20), the first dedicated
// smart-contract accelerator. BPU couples a GSC engine that executes
// general contracts at roughly scalar-EVM speed with an App engine whose
// dedicated ERC-20 dataflow achieves a large fixed speedup — published as
// 12.82× on pure-ERC-20 blocks (Table 8) — and parallelizes across
// engines with block-level (barrier) scheduling only.
package baseline

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/sched"
	"mtpu/internal/types"
)

// AppEngineSpeedup is BPU's published acceleration for ERC-20 transfers
// over its own GSC engine (Table 8, 100% column).
const AppEngineSpeedup = 12.82

// BPU models the accelerator: per-transaction cost is the scalar GSC cost,
// divided by AppEngineSpeedup when the App engine handles it.
type BPU struct {
	cfg    arch.Config
	engine []*pu.PU
	plans  []*pu.Plan
	// appEligible marks transactions routed to the App engine.
	appEligible []bool
}

// New builds a BPU with numEngines GSC engines over the given traces.
// isERC20 flags the transactions the App engine accelerates.
func New(numEngines int, traces []*arch.TxTrace, isERC20 []bool) *BPU {
	cfg := arch.ScalarConfig()
	cfg.NumPUs = numEngines
	b := &BPU{cfg: cfg, appEligible: isERC20}
	for i := 0; i < numEngines; i++ {
		b.engine = append(b.engine, pu.New(i, cfg))
	}
	for _, t := range traces {
		b.plans = append(b.plans, pu.PlainPlan(t))
	}
	return b
}

// Dispatch implements sched.Engine.
func (b *BPU) Dispatch(p, tx int) uint64 {
	cost := b.engine[p].Run(b.plans[tx], pipeline.FlatMem{Cfg: b.cfg}).Total
	if b.appEligible[tx] {
		cost = uint64(float64(cost)/AppEngineSpeedup + 0.5)
		if cost == 0 {
			cost = 1
		}
	}
	return cost
}

// RunSequential executes all transactions on one engine.
func (b *BPU) RunSequential(n int) sched.Result {
	return sched.Sequential(n, b)
}

// RunSynchronous executes the block with BPU's coarse block-level
// parallelism: barrier rounds across the engines.
func (b *BPU) RunSynchronous(dag *types.DAG) sched.Result {
	return sched.Synchronous(dag, b.cfg.NumPUs, 0, b)
}

// ERC20Flags marks transactions whose callee and selector the App engine
// handles (the ERC-20 transfer/approve/transferFrom dataflow).
func ERC20Flags(txs []*types.Transaction, erc20 map[types.Address]bool, selectors map[[4]byte]bool) []bool {
	out := make([]bool, len(txs))
	for i, tx := range txs {
		if tx.To == nil || !erc20[*tx.To] {
			continue
		}
		sel, ok := tx.Selector()
		if !ok {
			continue
		}
		out[i] = selectors[sel]
	}
	return out
}
