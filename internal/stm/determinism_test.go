package stm

import (
	"reflect"
	"sync"
	"testing"

	"mtpu/internal/mvstate"
	"mtpu/internal/obs"
	"mtpu/internal/workload"
)

// TestConcurrentExecutionsDeterministic runs the same block through many
// concurrent executors sharing one frozen genesis — the pattern the
// experiment engine uses — and asserts byte-identical state digests,
// receipts and counters. Under `go test -race` this also proves the
// executor takes only read paths through the shared base state.
func TestConcurrentExecutionsDeterministic(t *testing.T) {
	g := workload.NewGenerator(13, 1024)
	genesis := g.Genesis()
	block := g.TokenBlock(96, 0.6)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	cfg := Config{NumPUs: 4, ScheduleOverhead: 4, ValidateBase: 8, ValidatePerKey: 2}

	const runs = 16
	results := make([]*Result, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Execute(block, mvstate.SnapshotOf(genesis), cfg, fixedCost{100})
		}(i)
	}
	wg.Wait()

	ref := results[0]
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	for i := 1; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		r := results[i]
		if r.Digest != ref.Digest {
			t.Fatalf("run %d: digest %s != %s", i, r.Digest, ref.Digest)
		}
		if r.Makespan != ref.Makespan {
			t.Fatalf("run %d: makespan %d != %d", i, r.Makespan, ref.Makespan)
		}
		if r.Stats != ref.Stats {
			t.Fatalf("run %d: stats %+v != %+v", i, r.Stats, ref.Stats)
		}
		if !reflect.DeepEqual(r.Conflicts, ref.Conflicts) {
			t.Fatalf("run %d: conflicts %v != %v", i, r.Conflicts, ref.Conflicts)
		}
		if !reflect.DeepEqual(r.Dispatches, ref.Dispatches) {
			t.Fatalf("run %d: dispatch timeline diverged", i)
		}
		for j, rc := range r.Receipts {
			if rc.GasUsed != ref.Receipts[j].GasUsed || rc.Status != ref.Receipts[j].Status {
				t.Fatalf("run %d: receipt %d diverged", i, j)
			}
		}
	}

	// Counters merge commutatively: summing the per-run stats equals
	// runs × the single-run stats.
	var merged obs.STMStats
	for _, r := range results {
		merged.Add(r.Stats)
	}
	var want obs.STMStats
	for i := 0; i < runs; i++ {
		want.Add(ref.Stats)
	}
	if merged != want {
		t.Fatalf("merged stats %+v != %d× single run %+v", merged, runs, want)
	}
}
