package stm

import (
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/mvstate"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// fixedCost charges a constant per execution, keeping timing tests
// independent of the PU model.
type fixedCost struct{ c uint64 }

func (f fixedCost) Dispatch(pu, tx int) uint64 { return f.c }

// testBlock builds a workload block with its DAG and sequential golden
// results.
func testBlock(t *testing.T, build func(g *workload.Generator) *types.Block) (*state.StateDB, *types.Block, []*types.Receipt, types.Hash) {
	t.Helper()
	g := workload.NewGenerator(7, 1024)
	genesis := g.Genesis()
	block := build(g)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	st := genesis.Copy()
	receipts, err := evm.ExecuteBlockSequential(st, block, nil)
	if err != nil {
		t.Fatal(err)
	}
	return genesis, block, receipts, st.Digest()
}

func matrix(t *testing.T) map[string]func(g *workload.Generator) *types.Block {
	t.Helper()
	return map[string]func(g *workload.Generator) *types.Block{
		"token-dep0":   func(g *workload.Generator) *types.Block { return g.TokenBlock(96, 0) },
		"token-dep0.5": func(g *workload.Generator) *types.Block { return g.TokenBlock(96, 0.5) },
		"token-dep1.0": func(g *workload.Generator) *types.Block { return g.TokenBlock(96, 1.0) },
		"mixed-dep0.3": func(g *workload.Generator) *types.Block { return g.MixedBlock(96, 0.3) },
		"erc20-0.8":    func(g *workload.Generator) *types.Block { return g.ERC20Block(96, 0.8) },
		// Hotspot-skewed: every transaction hits one contract.
		"batch-hotspot": func(g *workload.Generator) *types.Block { return g.Batch(g.Contract("TetherUSD"), 64) },
	}
}

func TestExecuteMatchesSequential(t *testing.T) {
	for name, build := range matrix(t) {
		t.Run(name, func(t *testing.T) {
			genesis, block, receipts, digest := testBlock(t, build)
			for _, pus := range []int{1, 2, 4, 8} {
				cfg := Config{NumPUs: pus, ScheduleOverhead: 4, ValidateBase: 8, ValidatePerKey: 2}
				res, err := Execute(block, mvstate.SnapshotOf(genesis), cfg, fixedCost{100})
				if err != nil {
					t.Fatalf("pus=%d: %v", pus, err)
				}
				if res.Digest != digest {
					t.Fatalf("pus=%d: digest %s != sequential %s", pus, res.Digest, digest)
				}
				for i, r := range res.Receipts {
					if r.GasUsed != receipts[i].GasUsed || r.Status != receipts[i].Status {
						t.Fatalf("pus=%d: receipt %d diverged (gas %d vs %d, status %d vs %d)",
							pus, i, r.GasUsed, receipts[i].GasUsed, r.Status, receipts[i].Status)
					}
				}
				checkInvariants(t, block, res, pus)
			}
		})
	}
}

func checkInvariants(t *testing.T, block *types.Block, res *Result, pus int) {
	t.Helper()
	s := res.Stats
	n := len(block.Transactions)
	if s.Txs != n {
		t.Errorf("pus=%d: stats txs %d != %d", pus, s.Txs, n)
	}
	if s.Incarnations-s.Aborts != n {
		t.Errorf("pus=%d: incarnations %d - aborts %d != txs %d", pus, s.Incarnations, s.Aborts, n)
	}
	if s.Aborts != s.EstimateAborts+s.ValidationFails {
		t.Errorf("pus=%d: aborts %d != estimate %d + validation %d", pus, s.Aborts, s.EstimateAborts, s.ValidationFails)
	}
	if got := s.ExecCycles + s.ValidateCycles + s.IdleCycles; got != uint64(pus)*res.Makespan {
		t.Errorf("pus=%d: cycle terms %d != pus×makespan %d", pus, got, uint64(pus)*res.Makespan)
	}
	if s.WastedCycles > s.ExecCycles {
		t.Errorf("pus=%d: wasted %d > exec %d", pus, s.WastedCycles, s.ExecCycles)
	}
	var busy uint64
	for _, b := range res.BusyCycles {
		busy += b
	}
	if busy != s.ExecCycles+s.ValidateCycles {
		t.Errorf("pus=%d: busy %d != exec+validate %d", pus, busy, s.ExecCycles+s.ValidateCycles)
	}
	// Every runtime-detected conflict must lie inside the consensus DAG's
	// transitive closure.
	for _, c := range res.Conflicts {
		if !block.DAG.HasPath(c.From, c.To) {
			t.Errorf("pus=%d: conflict %d→%d outside DAG closure", pus, c.From, c.To)
		}
	}
}

// TestIndependentBlockNoAborts: with dependency ratio 0 every transaction
// commits its first incarnation.
func TestIndependentBlockNoAborts(t *testing.T) {
	genesis, block, _, digest := testBlock(t, func(g *workload.Generator) *types.Block {
		return g.TokenBlock(64, 0)
	})
	res, err := Execute(block, mvstate.SnapshotOf(genesis), Config{NumPUs: 4, ScheduleOverhead: 4, ValidateBase: 8, ValidatePerKey: 2}, fixedCost{100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != digest {
		t.Fatalf("digest mismatch")
	}
	if res.Stats.Aborts != 0 {
		t.Errorf("independent block aborted %d times (conflicts %v)", res.Stats.Aborts, res.Conflicts)
	}
	if res.Stats.Incarnations != len(block.Transactions) {
		t.Errorf("incarnations %d != txs %d", res.Stats.Incarnations, len(block.Transactions))
	}
}

// TestDependentChainAborts: a fully chained block on several PUs must
// discover conflicts at run time (that is the cost the consensus DAG
// avoids).
func TestDependentChainAborts(t *testing.T) {
	genesis, block, _, digest := testBlock(t, func(g *workload.Generator) *types.Block {
		return g.TokenBlock(64, 1.0)
	})
	res, err := Execute(block, mvstate.SnapshotOf(genesis), Config{NumPUs: 4, ScheduleOverhead: 4, ValidateBase: 8, ValidatePerKey: 2}, fixedCost{100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != digest {
		t.Fatalf("digest mismatch")
	}
	if res.Stats.Aborts == 0 {
		t.Error("fully dependent block on 4 PUs executed without a single abort")
	}
	if len(res.Conflicts) == 0 {
		t.Error("no runtime conflicts detected on a dep-ratio-1.0 block")
	}
}

func TestExecuteEmptyBlock(t *testing.T) {
	genesis := state.New()
	block := types.NewBlock(types.BlockHeader{}, nil)
	res, err := Execute(block, mvstate.SnapshotOf(genesis), Config{NumPUs: 2}, fixedCost{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.Digest != genesis.Digest() {
		t.Errorf("empty block: makespan %d digest %s", res.Makespan, res.Digest)
	}
}

func TestExecuteRejectsZeroPUs(t *testing.T) {
	genesis := state.New()
	block := types.NewBlock(types.BlockHeader{}, nil)
	if _, err := Execute(block, mvstate.SnapshotOf(genesis), Config{NumPUs: 0}, fixedCost{1}); err == nil {
		t.Fatal("expected error for NumPUs=0")
	}
}
