// Package stm implements an optimistic software execution baseline in
// the style of Block-STM (Gelashvili et al.): transactions run
// speculatively against a multi-version view of the world state,
// conflicts are discovered at run time by validating recorded read sets,
// and aborted transactions re-execute until the block commits a state
// identical to sequential execution. It is the software counterpart to
// the paper's consensus-time dependency DAG — the scheduler here learns
// the same conflicts the hard way, paying wasted incarnations and
// validation cycles instead of a pre-computed graph.
//
// The multi-version memory and the per-incarnation view live in
// internal/mvstate (shared with the cross-block store); this package
// owns only the collaborative scheduler driving them. The executor is
// a deterministic discrete-event simulation on a single goroutine,
// like the sched package: PU timing comes from the same cycle model,
// so Block-STM lands on the same axes as the paper's Figs. 14-16.
package stm

import (
	"fmt"
	"sort"

	"mtpu/internal/evm"
	"mtpu/internal/mvstate"
	"mtpu/internal/obs"
	"mtpu/internal/state"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// Engine is the PU timing model: Dispatch replays tx's instruction trace
// on pu and returns the cycle cost. It matches sched.Engine, so core
// drives both schedulers through one adapter — every incarnation pays a
// full replay, which is exactly how wasted speculative work shows up in
// the cycle accounting.
type Engine interface {
	Dispatch(pu, tx int) uint64
}

// Config parameterizes one optimistic block execution.
type Config struct {
	// NumPUs is the number of processing units running tasks.
	NumPUs int
	// ScheduleOverhead is the per-task dispatch cost in cycles (the same
	// charge the DAG-driven schedulers pay per selection).
	ScheduleOverhead uint64
	// ValidateBase + ValidatePerKey×|read set| is the cost of one
	// validation task (arch.Config.StmValidateBase/PerKey).
	ValidateBase   uint64
	ValidatePerKey uint64
	// Tel, when non-nil, receives incarnation/abort/validation events
	// live as the executor applies them — the host-side view of the
	// optimistic run (Result.Stats stays the authoritative per-block
	// record either way).
	Tel *telemetry.Metrics
}

// Conflict is one runtime-detected dependency: transaction To aborted or
// failed validation because of transaction From's writes (From < To).
// Every conflict must lie inside the transitive closure of the consensus
// DAG — the check behind mtpu-run -verify-dag.
type Conflict struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Dispatch is one task interval on one PU (execution incarnation or
// validation), the STM counterpart of sched.Dispatch.
type Dispatch struct {
	Tx          int
	Incarnation int
	PU          int
	Start, End  uint64
	Validation  bool
}

// Result is the outcome of one optimistic block execution.
type Result struct {
	// Receipts of the committed incarnations, in transaction order.
	Receipts []*types.Receipt
	// Digest of the committed final state; the caller asserts it equals
	// the sequential digest.
	Digest types.Hash
	// Makespan is the simulated completion time of the whole block.
	Makespan uint64
	// BusyCycles per PU: execution + validation + dispatch overhead.
	BusyCycles []uint64
	// Dispatches is the full task timeline (aborted incarnations and
	// validations included).
	Dispatches []Dispatch
	// Conflicts are the deduplicated runtime-detected dependency edges,
	// sorted by (From, To).
	Conflicts []Conflict
	// Stats are the optimistic-execution counters.
	Stats obs.STMStats
}

// ExecDispatches returns only the execution-incarnation intervals (the
// shape sched.Result.Dispatches has, for timeline consumers).
func (r *Result) ExecDispatches() []Dispatch {
	out := make([]Dispatch, 0, len(r.Dispatches))
	for _, d := range r.Dispatches {
		if !d.Validation {
			out = append(out, d)
		}
	}
	return out
}

// txStatus is the per-transaction scheduler state.
type txStatus uint8

const (
	statusReady txStatus = iota
	statusExecuting
	statusExecuted
	statusBlocked
)

// txState is the scheduler's bookkeeping for one transaction.
type txState struct {
	status txStatus
	// incarnation numbers the next (or currently running) attempt;
	// execInc is the attempt whose results are currently published.
	incarnation  int
	execInc      int
	lastExecCost uint64

	reads     []mvstate.ReadObs
	writeKeys []state.AccessKey
	writeVals []mvstate.Value
	feeDelta  uint256.Int
	receipt   *types.Receipt
	// execErr holds a protocol error (nonce mismatch, insufficient funds)
	// from the last incarnation; validation decides whether it was caused
	// by stale reads or is genuine.
	execErr error

	blockedOn    int
	blockedSince uint64
	dependents   []int
}

// outcomeKind classifies what a task determined at its start time; the
// effect is applied when the task's cycles complete.
type outcomeKind uint8

const (
	outExecOK outcomeKind = iota
	outExecEstimate
	outExecFailed
	outValPass
	outValFail
)

// pendingOutcome carries a task's functional result from start to
// completion time.
type pendingOutcome struct {
	kind         outcomeKind
	dep          int // outExecEstimate: the aborted writer blocking us
	err          error
	reads        []mvstate.ReadObs
	writeKeys    []state.AccessKey
	writeVals    []mvstate.Value
	feeDelta     uint256.Int
	receipt      *types.Receipt
	conflictFrom int // outValFail: the writer whose publish invalidated us
}

// puTask is the task occupying one PU.
type puTask struct {
	active     bool
	validation bool
	tx         int
	inc        int
	start, end uint64
	outcome    pendingOutcome
}

// executor runs the collaborative scheduler: a single-goroutine
// discrete-event loop (the sched package's style) over NumPUs workers
// pulling execution and validation tasks. Determinism: PUs are assigned
// and completed in PU order, functional execution happens at a task's
// start time against the memory state of that instant, and effects are
// published at its completion time.
type executor struct {
	cfg   Config
	eng   Engine
	block *types.Block
	base  *mvstate.Snapshot
	mv    *mvstate.MVMemory

	txs   []txState
	tasks []puTask

	// execIdx / valIdx are the collaborative scheduler's two counters:
	// the next transaction to (re-)execute and to (re-)validate. Aborts
	// and publishes pull them back.
	execIdx, valIdx int

	conflicts    []Conflict
	conflictSeen map[Conflict]bool

	res *Result
}

// Execute runs the block optimistically against the (read-only) base
// snapshot — a frozen genesis (mvstate.SnapshotOf) in one-shot replays
// or the chained head (Store.Head) in server mode. The base is never
// mutated: the final state is priced as a sparse override set over the
// base, and its digest returned for the identical-to-sequential check.
func Execute(block *types.Block, base *mvstate.Snapshot, cfg Config, eng Engine) (*Result, error) {
	if cfg.NumPUs < 1 {
		return nil, fmt.Errorf("stm: NumPUs must be >= 1, got %d", cfg.NumPUs)
	}
	n := len(block.Transactions)
	res := &Result{BusyCycles: make([]uint64, cfg.NumPUs)}
	res.Stats.Txs = n
	if n == 0 {
		res.Digest = base.Digest()
		return res, nil
	}

	ex := &executor{
		cfg:          cfg,
		eng:          eng,
		block:        block,
		base:         base,
		mv:           mvstate.NewMVMemory(),
		txs:          make([]txState, n),
		tasks:        make([]puTask, cfg.NumPUs),
		conflictSeen: make(map[Conflict]bool),
		res:          res,
	}
	for i := range ex.txs {
		ex.txs[i].execInc = -1
		ex.txs[i].blockedOn = -1
	}

	var now uint64
	for {
		// Give work to every idle PU, in PU order (deterministic).
		for p := 0; p < cfg.NumPUs; p++ {
			if ex.tasks[p].active {
				continue
			}
			tx, validation, ok := ex.nextTask()
			if !ok {
				break
			}
			ex.start(p, tx, validation, now)
		}

		// Advance to the earliest completion; drain when no PU is busy.
		next := ^uint64(0)
		anyBusy := false
		for p := 0; p < cfg.NumPUs; p++ {
			if ex.tasks[p].active {
				anyBusy = true
				if ex.tasks[p].end < next {
					next = ex.tasks[p].end
				}
			}
		}
		if !anyBusy {
			break
		}
		now = next
		for p := 0; p < cfg.NumPUs; p++ {
			if ex.tasks[p].active && ex.tasks[p].end == now {
				ex.finish(p, now)
			}
		}
	}

	for i := range ex.txs {
		if ex.txs[i].status != statusExecuted {
			return nil, fmt.Errorf("stm: scheduler drained with tx %d not executed (status %d)", i, ex.txs[i].status)
		}
	}
	for i := range ex.txs {
		if err := ex.txs[i].execErr; err != nil {
			// The final incarnation's reads survived validation, so the
			// failure is genuine under sequential order, not speculation.
			return nil, fmt.Errorf("stm: tx %d: %w", i, err)
		}
	}

	ex.commit()
	res.Makespan = now
	var busy uint64
	for _, b := range res.BusyCycles {
		busy += b
	}
	res.Stats.IdleCycles = uint64(cfg.NumPUs)*now - busy
	sort.Slice(ex.conflicts, func(i, j int) bool {
		if ex.conflicts[i].From != ex.conflicts[j].From {
			return ex.conflicts[i].From < ex.conflicts[j].From
		}
		return ex.conflicts[i].To < ex.conflicts[j].To
	})
	res.Conflicts = ex.conflicts
	return res, nil
}

// nextTask implements the collaborative scheduler's task selection:
// validation is preferred whenever the validation counter trails the
// execution counter; counters skip transactions not in the matching
// state (they are revisited when a publish or abort pulls the counter
// back).
func (ex *executor) nextTask() (tx int, validation, ok bool) {
	n := len(ex.txs)
	for {
		if ex.valIdx < ex.execIdx && ex.valIdx < n {
			tx := ex.valIdx
			ex.valIdx++
			if ex.txs[tx].status == statusExecuted {
				return tx, true, true
			}
			continue
		}
		if ex.execIdx < n {
			tx := ex.execIdx
			ex.execIdx++
			if ex.txs[tx].status == statusReady {
				return tx, false, true
			}
			continue
		}
		return 0, false, false
	}
}

func (ex *executor) pullExec(tx int) {
	if tx < ex.execIdx {
		ex.execIdx = tx
	}
}

func (ex *executor) pullVal(tx int) {
	if tx < ex.valIdx {
		ex.valIdx = tx
	}
}

// start runs the task's functional part at the current instant and books
// the PU until the task's cycle cost elapses.
func (ex *executor) start(p, tx int, validation bool, now uint64) {
	st := &ex.txs[tx]
	t := puTask{active: true, validation: validation, tx: tx, start: now}
	if validation {
		t.inc = st.execInc
		pass, from := ex.validate(tx)
		if pass {
			t.outcome.kind = outValPass
		} else {
			t.outcome.kind = outValFail
			t.outcome.conflictFrom = from
		}
		t.end = now + ex.cfg.ValidateBase + ex.cfg.ValidatePerKey*uint64(len(st.reads)) + ex.cfg.ScheduleOverhead
	} else {
		st.status = statusExecuting
		t.inc = st.incarnation
		t.outcome = ex.runIncarnation(tx)
		t.end = now + ex.eng.Dispatch(p, tx) + ex.cfg.ScheduleOverhead
	}
	ex.tasks[p] = t
}

// validate re-reads tx's recorded read set against the current
// multi-version memory. A mismatch or an ESTIMATE means the observed
// writer changed since execution; the second return is the conflicting
// writer (BaseVersion when neither side names one).
func (ex *executor) validate(tx int) (bool, int) {
	for _, o := range ex.txs[tx].reads {
		cur := ex.mv.Read(o.Key, tx)
		if cur.Status == mvstate.ReadEstimate {
			return false, cur.Ver.Tx
		}
		if cur.Ver != o.Ver {
			from := cur.Ver.Tx
			if from == mvstate.BaseVersion {
				from = o.Ver.Tx
			}
			return false, from
		}
	}
	return true, mvstate.BaseVersion
}

// runIncarnation executes one speculative attempt of tx against a fresh
// view, capturing its read/write sets. An ESTIMATE read unwinds here via
// panic and becomes an outExecEstimate outcome.
func (ex *executor) runIncarnation(tx int) (out pendingOutcome) {
	view := mvstate.NewView(ex.base, ex.mv, tx, ex.block.Header.Coinbase)
	defer func() {
		if r := recover(); r != nil {
			ab, isAbort := r.(mvstate.EstimateAbort)
			if !isAbort {
				panic(r)
			}
			out = pendingOutcome{kind: outExecEstimate, dep: ab.Dep}
		}
	}()
	e := evm.New(evm.NewBlockContext(ex.block.Header), view)
	r, err := evm.ApplyTransaction(e, ex.block.Transactions[tx], tx)
	out.reads = view.ReadSet()
	if err != nil {
		out.kind = outExecFailed
		out.err = err
		return out
	}
	out.kind = outExecOK
	out.receipt = r
	out.writeKeys, out.writeVals = view.WriteSet()
	out.feeDelta = view.FeeDelta()
	return out
}

// finish applies a completed task's outcome at the current instant.
// Validation outcomes are dropped when the incarnation they judged has
// been superseded meanwhile (a fresher execution re-enters validation on
// its own).
func (ex *executor) finish(p int, now uint64) {
	t := ex.tasks[p]
	ex.tasks[p].active = false
	st := &ex.txs[t.tx]
	cost := t.end - t.start
	ex.res.BusyCycles[p] += cost
	ex.res.Dispatches = append(ex.res.Dispatches, Dispatch{
		Tx: t.tx, Incarnation: t.inc, PU: p, Start: t.start, End: t.end, Validation: t.validation,
	})

	if t.validation {
		ex.res.Stats.ValidateCycles += cost
		if st.status != statusExecuted || st.execInc != t.inc {
			return // stale outcome
		}
		switch t.outcome.kind {
		case outValPass:
			ex.res.Stats.ValidationPasses++
			if ex.cfg.Tel != nil {
				ex.cfg.Tel.STMValidationPasses.Inc()
			}
		case outValFail:
			ex.res.Stats.ValidationFails++
			ex.res.Stats.Aborts++
			ex.res.Stats.WastedCycles += st.lastExecCost
			if ex.cfg.Tel != nil {
				ex.cfg.Tel.STMValidationFails.Inc()
				ex.cfg.Tel.STMAborts.Inc()
			}
			ex.addConflict(t.outcome.conflictFrom, t.tx)
			// The aborted writer's entries become ESTIMATEs: readers of
			// these locations block on the re-execution instead of
			// speculating through values about to change.
			for _, k := range st.writeKeys {
				ex.mv.MarkEstimate(k, t.tx)
			}
			st.status = statusReady
			st.incarnation++
			ex.pullExec(t.tx)
			ex.pullVal(t.tx + 1)
		}
		return
	}

	// Execution completion.
	ex.res.Stats.Incarnations++
	ex.res.Stats.ExecCycles += cost
	if ex.cfg.Tel != nil {
		ex.cfg.Tel.STMIncarnations.Inc()
	}
	switch t.outcome.kind {
	case outExecEstimate:
		ex.res.Stats.EstimateAborts++
		ex.res.Stats.Aborts++
		ex.res.Stats.WastedCycles += cost
		if ex.cfg.Tel != nil {
			ex.cfg.Tel.STMEstimateAborts.Inc()
			ex.cfg.Tel.STMAborts.Inc()
		}
		ex.addConflict(t.outcome.dep, t.tx)
		st.incarnation++
		dep := t.outcome.dep
		if dep >= 0 && ex.txs[dep].status != statusExecuted {
			st.status = statusBlocked
			st.blockedOn = dep
			st.blockedSince = now
			ex.res.Stats.EstimateWaits++
			ex.txs[dep].dependents = append(ex.txs[dep].dependents, t.tx)
		} else {
			// The writer already re-published while we were charged for
			// the aborted cycles — retry immediately.
			st.status = statusReady
			ex.pullExec(t.tx)
		}

	case outExecFailed:
		// A protocol error (nonce mismatch, insufficient funds) under
		// speculation: withdraw any previously published writes so later
		// readers read around us, keep the read set, and let validation
		// decide whether the error came from stale reads (then we abort
		// and re-execute) or is genuine (then the whole run errors out).
		for _, k := range st.writeKeys {
			ex.mv.Remove(k, t.tx)
		}
		st.writeKeys, st.writeVals = nil, nil
		st.reads = t.outcome.reads
		st.receipt = nil
		st.execErr = t.outcome.err
		st.feeDelta = uint256.Int{}
		st.execInc = t.inc
		st.lastExecCost = cost
		st.status = statusExecuted
		ex.pullVal(t.tx)
		ex.resumeDependents(t.tx, now)

	case outExecOK:
		newKeys := make(map[state.AccessKey]bool, len(t.outcome.writeKeys))
		for i, k := range t.outcome.writeKeys {
			newKeys[k] = true
			ex.mv.Write(k, t.tx, t.inc, t.outcome.writeVals[i])
		}
		for _, k := range st.writeKeys {
			if !newKeys[k] {
				ex.mv.Remove(k, t.tx)
			}
		}
		st.writeKeys, st.writeVals = t.outcome.writeKeys, t.outcome.writeVals
		st.reads = t.outcome.reads
		st.receipt = t.outcome.receipt
		st.execErr = nil
		st.feeDelta = t.outcome.feeDelta
		st.execInc = t.inc
		st.lastExecCost = cost
		st.status = statusExecuted
		ex.pullVal(t.tx)
		ex.resumeDependents(t.tx, now)
	}
}

// resumeDependents unblocks every transaction waiting on tx's
// re-execution, charging the wait to the ESTIMATE-stall counter.
func (ex *executor) resumeDependents(tx int, now uint64) {
	st := &ex.txs[tx]
	for _, d := range st.dependents {
		ds := &ex.txs[d]
		if ds.status == statusBlocked && ds.blockedOn == tx {
			ds.status = statusReady
			ds.blockedOn = -1
			ex.res.Stats.EstimateWaitCycles += now - ds.blockedSince
			ex.pullExec(d)
		}
	}
	st.dependents = st.dependents[:0]
}

// addConflict records a deduplicated runtime conflict edge from → to.
func (ex *executor) addConflict(from, to int) {
	if from < 0 || from == to {
		return
	}
	c := Conflict{From: from, To: to}
	if ex.conflictSeen[c] {
		return
	}
	ex.conflictSeen[c] = true
	ex.conflicts = append(ex.conflicts, c)
}

// commit folds every transaction's committed write set, in transaction
// order, into a sparse override set over the base (later writers
// overwrite earlier ones, exactly as the multi-version memory resolves
// reads), credits the accumulated fees to the coinbase, and digests the
// merged view — no copy of the base state is ever made.
func (ex *executor) commit() {
	o := state.NewOverrides()
	var fees uint256.Int
	receipts := make([]*types.Receipt, len(ex.txs))
	for i := range ex.txs {
		st := &ex.txs[i]
		receipts[i] = st.receipt
		for j, k := range st.writeKeys {
			val := st.writeVals[j]
			switch k.Kind {
			case state.AccessBalance:
				o.SetBalance(k.Addr, &val.Word)
			case state.AccessNonce:
				o.SetNonce(k.Addr, val.U64)
			case state.AccessCode:
				o.SetCode(k.Addr, val.Code, val.Hash)
			case state.AccessStorage:
				o.SetState(k.Addr, k.Slot, val.Word)
			}
		}
		fees.Add(&fees, &st.feeDelta)
	}
	if !fees.IsZero() {
		coinbase := ex.block.Header.Coinbase
		var bal uint256.Int
		bal.Add(ex.base.GetBalance(coinbase), &fees)
		o.SetBalance(coinbase, &bal)
	}
	ex.res.Receipts = receipts
	ex.res.Digest = ex.base.DigestWith(o)
}
