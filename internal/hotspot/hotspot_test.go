package hotspot_test

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/contracts"
	"mtpu/internal/core"
	"mtpu/internal/evm"
	"mtpu/internal/hotspot"
	"mtpu/internal/state"
	"mtpu/internal/workload"
)

// fixture collects traces for a same-contract batch.
func fixture(t *testing.T, name string, n int) (*workload.Generator, *state.StateDB, []*arch.TxTrace) {
	t.Helper()
	g := workload.NewGenerator(321, 1024)
	genesis := g.Genesis()
	block := g.Batch(g.Contract(name), n)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	return g, genesis, traces
}

func TestLearnBuildsEntries(t *testing.T) {
	_, _, traces := fixture(t, "TetherUSD", 30)
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	if table.Len() < 5 {
		t.Fatalf("only %d entries for a 6-function batch", table.Len())
	}
	keys := table.Keys()
	for i := 1; i < len(keys); i++ {
		if string(keys[i-1].Selector[:]) >= string(keys[i].Selector[:]) &&
			keys[i-1].Addr == keys[i].Addr {
			t.Fatal("keys not deterministic/sorted")
		}
	}
}

func TestLearnIgnoresTransfersAndEmpty(t *testing.T) {
	table := hotspot.NewContractTable()
	if table.Learn(&arch.TxTrace{IsTransfer: true}) != nil {
		t.Fatal("transfer learned")
	}
	if table.Learn(&arch.TxTrace{HasSelector: true}) != nil {
		t.Fatal("empty trace learned")
	}
	if table.Len() != 0 {
		t.Fatal("table not empty")
	}
}

func TestPreExecCoversCompareAndCheck(t *testing.T) {
	g, _, traces := fixture(t, "TetherUSD", 30)
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	tether := g.Contract("TetherUSD")
	info := table.Lookup(tether.Address, tether.Function("transfer").Selector)
	if info == nil {
		t.Fatal("no transfer entry")
	}
	if info.PreExecLen < 10 {
		t.Fatalf("pre-exec covers only %d steps", info.PreExecLen)
	}
	// The pre-executed prefix must contain no storage or context work.
	for _, tr := range traces {
		if !tr.HasSelector || tr.Selector != tether.Function("transfer").Selector {
			continue
		}
		for i := 0; i < info.PreExecLen && i < len(tr.Steps); i++ {
			u := tr.Steps[i].Op.Unit()
			if u == evm.FUStorage || u == evm.FUContext {
				t.Fatalf("pre-executed step %d is %s", i, tr.Steps[i].Op)
			}
		}
		break
	}
}

func TestPlanNeverSkipsEffectfulInstructions(t *testing.T) {
	for _, name := range []string{"TetherUSD", "UniswapV2Router02", "OpenSea",
		"MainchainGatewayProxy", "LinkToken"} {
		_, _, traces := fixture(t, name, 24)
		table := hotspot.NewContractTable()
		for _, tr := range traces {
			table.Learn(tr)
		}
		for _, tr := range traces {
			plan := table.Plan(tr)
			// Build the kept-step multiset and check what was dropped.
			kept := map[int]bool{}
			j := 0
			for i := range tr.Steps {
				if j < len(plan.Steps) && plan.Steps[j].Step == tr.Steps[i] {
					kept[i] = true
					j++
				}
			}
			info := table.Lookup(tr.Contract, tr.Selector)
			if info == nil {
				continue
			}
			for i, s := range tr.Steps {
				if kept[i] || i < info.PreExecLen {
					continue
				}
				switch s.Op.Unit() {
				case evm.FUStorage, evm.FUContext, evm.FUControl, evm.FUBranch:
					if s.Op != evm.JUMPDEST {
						t.Fatalf("%s: skipped effectful %s at step %d", name, s.Op, i)
					}
				}
			}
		}
	}
}

func TestPlanUnknownContractPassesThrough(t *testing.T) {
	_, _, traces := fixture(t, "TetherUSD", 6)
	table := hotspot.NewContractTable() // empty: nothing learned
	for _, tr := range traces {
		plan := table.Plan(tr)
		if plan.SkippedInstructions != 0 || len(plan.Steps) != len(tr.Steps) {
			t.Fatal("unlearned trace was modified")
		}
	}
}

func TestLoadFractionBounds(t *testing.T) {
	_, _, traces := fixture(t, "TetherUSD", 30)
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	for _, key := range table.Keys() {
		info := table.Lookup(key.Addr, key.Selector)
		f := info.LoadFractionOf(key.Addr)
		if f <= 0 || f > 1 {
			t.Fatalf("load fraction %f out of range", f)
		}
		// The hotspot headline: far less than the full bytecode loads.
		if f > 0.6 {
			t.Errorf("load fraction %.2f suspiciously high for %x", f, key.Selector)
		}
	}
	// Unknown address defaults to full load.
	info := table.Lookup(contracts.TetherAddr, contracts.NewTether().Function("transfer").Selector)
	if info.LoadFractionOf(contracts.WETHAddr) != 1 {
		t.Fatal("unknown address load fraction != 1")
	}
}

func TestPrefetchMarksOnlyStateReads(t *testing.T) {
	_, _, traces := fixture(t, "TetherUSD", 30)
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	for _, tr := range traces {
		plan := table.Plan(tr)
		for _, s := range plan.Steps {
			if !s.Annotation.Prefetched {
				continue
			}
			u := s.Step.Op.Unit()
			if s.Step.Op != evm.SLOAD && u != evm.FUStateQuery {
				t.Fatalf("prefetch annotation on %s", s.Step.Op)
			}
		}
	}
}

func TestMergeIntersectsAcrossPaths(t *testing.T) {
	// Learning transfer traces with different branch behaviour (different
	// balances) must keep only universally valid annotations; Samples
	// counts the merges.
	g, _, traces := fixture(t, "TetherUSD", 40)
	table := hotspot.NewContractTable()
	count := 0
	sel := g.Contract("TetherUSD").Function("transfer").Selector
	for _, tr := range traces {
		if tr.HasSelector && tr.Selector == sel {
			table.Learn(tr)
			count++
		}
	}
	info := table.Lookup(g.Contract("TetherUSD").Address, sel)
	if info.Samples != count {
		t.Fatalf("samples %d, want %d", info.Samples, count)
	}
}

func TestProxyGetsNoPreExec(t *testing.T) {
	// The proxy's top frame delegatecalls before any dispatch; its
	// Compare chunk cannot be pre-executed.
	g, _, traces := fixture(t, "FiatTokenProxy", 12)
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	proxy := g.Contract("FiatTokenProxy")
	for _, f := range proxy.Functions {
		if info := table.Lookup(proxy.Address, f.Selector); info != nil {
			if info.PreExecLen != 0 {
				t.Fatalf("%s: proxy pre-exec %d", f.Name, info.PreExecLen)
			}
		}
	}
}

func TestOptimizedPlanIsSmallerButNotEmpty(t *testing.T) {
	_, _, traces := fixture(t, "Dai", 24)
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	for _, tr := range traces {
		if !tr.HasSelector {
			continue
		}
		plan := table.Plan(tr)
		if len(plan.Steps) >= len(tr.Steps) {
			t.Fatalf("no reduction: %d vs %d", len(plan.Steps), len(tr.Steps))
		}
		if len(plan.Steps) == 0 {
			t.Fatal("plan emptied the transaction")
		}
		if plan.SkippedInstructions+len(plan.Steps) != len(tr.Steps) {
			t.Fatalf("step accounting: %d + %d != %d",
				plan.SkippedInstructions, len(plan.Steps), len(tr.Steps))
		}
	}
}
