package hotspot

import (
	"sort"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/types"
)

// Key identifies one Contract Table row: transactions with the same
// contract address and entry-function identifier have almost completely
// overlapping execution paths (§3.4.1).
type Key struct {
	Addr     types.Address
	Selector [4]byte
}

// PathInfo is one Contract Table entry: the learned execution-path facts
// used to rewrite future transactions of this (contract, function).
type PathInfo struct {
	Key Key
	// PreExecLen is the number of leading top-frame steps covered by the
	// pre-executed Compare+Check chunks.
	PreExecLen int
	// Skip marks instructions eliminated by constant backtracking.
	Skip map[apc]bool
	// ConstOps marks instructions reading operands from the Constants
	// Table (their stack dependencies disappear).
	ConstOps map[apc]bool
	// Prefetch marks storage/state reads with deterministic keys.
	Prefetch map[apc]bool
	// LoadFrac scales each contract's bytecode-loading cost to the
	// on-path chunks.
	LoadFrac map[types.Address]float64
	// Samples counts traces merged into this entry.
	Samples int
}

// ContractTable persists hotspot execution information across blocks
// (§3.4.1); it is built offline during the block interval.
type ContractTable struct {
	entries map[Key]*PathInfo
}

// NewContractTable returns an empty table.
func NewContractTable() *ContractTable {
	return &ContractTable{entries: make(map[Key]*PathInfo)}
}

// Len returns the number of (contract, function) entries.
func (t *ContractTable) Len() int { return len(t.entries) }

// Keys returns the table's keys in deterministic order.
func (t *ContractTable) Keys() []Key {
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Addr != keys[j].Addr {
			return string(keys[i].Addr[:]) < string(keys[j].Addr[:])
		}
		return string(keys[i].Selector[:]) < string(keys[j].Selector[:])
	})
	return keys
}

// Lookup returns the entry for a (contract, selector), nil if absent.
func (t *ContractTable) Lookup(addr types.Address, sel [4]byte) *PathInfo {
	return t.entries[Key{addr, sel}]
}

// Learn analyzes a profiled trace and merges it into the table. Repeated
// learning on diverging traces intersects the annotation sets (only facts
// that held on every sample survive).
func (t *ContractTable) Learn(trace *arch.TxTrace) *PathInfo {
	if !trace.HasSelector || len(trace.Steps) == 0 {
		return nil
	}
	key := Key{trace.Contract, trace.Selector}
	a := analyzeTrace(trace)

	info := t.entries[key]
	if info == nil {
		info = &PathInfo{
			Key:        key,
			PreExecLen: a.preExecLen,
			Skip:       a.skip,
			ConstOps:   a.constOps,
			Prefetch:   a.prefetch,
			LoadFrac:   a.loadFrac,
			Samples:    1,
		}
		t.entries[key] = info
		return info
	}
	// Merge conservatively.
	if a.preExecLen < info.PreExecLen {
		info.PreExecLen = a.preExecLen
	}
	intersect(info.Skip, a.skip)
	intersect(info.ConstOps, a.constOps)
	intersect(info.Prefetch, a.prefetch)
	for addr, f := range a.loadFrac {
		if old, ok := info.LoadFrac[addr]; !ok || f > old {
			info.LoadFrac[addr] = f // keep the largest observed footprint
		}
	}
	info.Samples++
	return info
}

func intersect(dst, src map[apc]bool) {
	for k := range dst {
		if !src[k] {
			delete(dst, k)
		}
	}
}

// Plan rewrites a transaction trace into an execution plan: pre-executed
// and eliminated instructions dropped, constant-operand and prefetch
// annotations attached, bytecode loading scaled to the on-path chunks.
// Unknown (non-hotspot) transactions pass through unoptimized.
func (t *ContractTable) Plan(trace *arch.TxTrace) *pu.Plan {
	if !trace.HasSelector {
		return pu.PlainPlan(trace)
	}
	info := t.Lookup(trace.Contract, trace.Selector)
	if info == nil {
		return pu.PlainPlan(trace)
	}
	addrs := stepAddrs(trace)
	steps := make([]pipeline.AnnotatedStep, 0, len(trace.Steps))
	skipped := 0
	for i := range trace.Steps {
		if i < info.PreExecLen {
			skipped++
			continue
		}
		k := apc{addrs[i], trace.Steps[i].PC}
		if info.Skip[k] {
			skipped++
			continue
		}
		steps = append(steps, pipeline.AnnotatedStep{
			Step: trace.Steps[i],
			Annotation: pipeline.Annotation{
				Prefetched:    info.Prefetch[k],
				ConstOperands: info.ConstOps[k],
			},
		})
	}
	return &pu.Plan{
		Trace:               trace,
		Steps:               steps,
		LoadScale:           info.LoadFrac,
		SkippedInstructions: skipped,
	}
}

// LoadFractionOf reports the bytecode fraction loaded for the contract
// itself under this entry — the §3.4.2 metric (TetherToken transfer loads
// 8.2% of its bytecode in the paper).
func (info *PathInfo) LoadFractionOf(addr types.Address) float64 {
	if f, ok := info.LoadFrac[addr]; ok {
		return f
	}
	return 1
}
