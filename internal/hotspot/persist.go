package hotspot

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"mtpu/internal/types"
)

// Contract Table persistence (§3.4.1: "the execution path of hotspot
// contracts is persisted to the Contract Table"). Optimization results
// stay valid for the lifetime of a contract — deployed bytecode is
// immutable — so a node carries the table across block intervals and
// restarts. The format is stable JSON with hex-encoded keys.

type persistedEntry struct {
	Addr       string             `json:"addr"`
	Selector   string             `json:"selector"`
	PreExecLen int                `json:"preExecLen"`
	Samples    int                `json:"samples"`
	Skip       []persistedPC      `json:"skip,omitempty"`
	ConstOps   []persistedPC      `json:"constOps,omitempty"`
	Prefetch   []persistedPC      `json:"prefetch,omitempty"`
	LoadFrac   map[string]float64 `json:"loadFrac,omitempty"`
}

type persistedPC struct {
	Addr string `json:"addr"`
	PC   uint64 `json:"pc"`
}

func pcSetOut(m map[apc]bool) []persistedPC {
	out := make([]persistedPC, 0, len(m))
	for k := range m {
		out = append(out, persistedPC{Addr: hex.EncodeToString(k.addr[:]), PC: k.pc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].PC < out[j].PC
	})
	return out
}

func pcSetIn(list []persistedPC) (map[apc]bool, error) {
	m := make(map[apc]bool, len(list))
	for _, p := range list {
		raw, err := hex.DecodeString(p.Addr)
		if err != nil || len(raw) != types.AddressLength {
			return nil, fmt.Errorf("hotspot: bad persisted address %q", p.Addr)
		}
		m[apc{types.BytesToAddress(raw), p.PC}] = true
	}
	return m, nil
}

// MarshalJSON serializes the table deterministically.
func (t *ContractTable) MarshalJSON() ([]byte, error) {
	entries := make([]persistedEntry, 0, len(t.entries))
	for _, key := range t.Keys() {
		info := t.entries[key]
		e := persistedEntry{
			Addr:       hex.EncodeToString(key.Addr[:]),
			Selector:   hex.EncodeToString(key.Selector[:]),
			PreExecLen: info.PreExecLen,
			Samples:    info.Samples,
			Skip:       pcSetOut(info.Skip),
			ConstOps:   pcSetOut(info.ConstOps),
			Prefetch:   pcSetOut(info.Prefetch),
			LoadFrac:   map[string]float64{},
		}
		for addr, f := range info.LoadFrac {
			e.LoadFrac[hex.EncodeToString(addr[:])] = f
		}
		entries = append(entries, e)
	}
	return json.Marshal(entries)
}

// UnmarshalJSON restores a table serialized by MarshalJSON.
func (t *ContractTable) UnmarshalJSON(data []byte) error {
	var entries []persistedEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("hotspot: %w", err)
	}
	t.entries = make(map[Key]*PathInfo, len(entries))
	for _, e := range entries {
		rawAddr, err := hex.DecodeString(e.Addr)
		if err != nil || len(rawAddr) != types.AddressLength {
			return fmt.Errorf("hotspot: bad entry address %q", e.Addr)
		}
		rawSel, err := hex.DecodeString(e.Selector)
		if err != nil || len(rawSel) != 4 {
			return fmt.Errorf("hotspot: bad selector %q", e.Selector)
		}
		key := Key{Addr: types.BytesToAddress(rawAddr)}
		copy(key.Selector[:], rawSel)

		info := &PathInfo{
			Key:        key,
			PreExecLen: e.PreExecLen,
			Samples:    e.Samples,
			LoadFrac:   make(map[types.Address]float64, len(e.LoadFrac)),
		}
		if info.Skip, err = pcSetIn(e.Skip); err != nil {
			return err
		}
		if info.ConstOps, err = pcSetIn(e.ConstOps); err != nil {
			return err
		}
		if info.Prefetch, err = pcSetIn(e.Prefetch); err != nil {
			return err
		}
		for addrHex, f := range e.LoadFrac {
			raw, err := hex.DecodeString(addrHex)
			if err != nil || len(raw) != types.AddressLength {
				return fmt.Errorf("hotspot: bad loadFrac address %q", addrHex)
			}
			if f <= 0 || f > 1 {
				return fmt.Errorf("hotspot: loadFrac %f out of range", f)
			}
			info.LoadFrac[types.BytesToAddress(raw)] = f
		}
		t.entries[key] = info
	}
	return nil
}
