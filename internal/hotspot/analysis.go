// Package hotspot implements the §3.4 optimization of frequently invoked
// contracts, performed offline in the block-generation interval:
//
//   - execution-path collection per (contract, entry function) into a
//     Contract Table (§3.4.1);
//   - bytecode chunking into Compare / Check / Execute / End and
//     pre-execution of the Compare+Check chunks, which depend only on
//     transaction attributes known before the execution stage (§3.4.2);
//   - constant-instruction elimination and merging via operand
//     backtracking into a Constants Table (§3.4.3);
//   - data prefetching for fixed-access instructions and for dynamic
//     accesses whose keys derive from constants and transaction
//     attributes (§3.4.4).
//
// The analyzer is an abstract interpreter over an execution trace: each
// stack slot and memory word carries a tag (constant / transaction
// attribute / dynamic) and a def-use chain, from which the per-pc
// annotation sets are derived.
package hotspot

import (
	"mtpu/internal/arch"
	"mtpu/internal/evm"
	"mtpu/internal/types"
)

// tag is the abstract value lattice: Const < Attr < Dyn.
type tag uint8

const (
	tagConst tag = iota // compile-time constant (push immediates and pure functions of them)
	tagAttr             // transaction/block attribute, known before the execution stage
	tagDyn              // runtime-dependent
)

func maxTag(a, b tag) tag {
	if a > b {
		return a
	}
	return b
}

// slotInfo is one abstract stack slot.
type slotInfo struct {
	t tag
	// producer is the step index that pushed this value, -1 if it
	// pre-existed the analyzed window.
	producer int
}

// apc keys per-pc annotation maps by code address and pc, so identical
// pcs in different contracts (or the proxy and its implementation) never
// collide.
type apc struct {
	addr types.Address
	pc   uint64
}

// analysis is the result of one trace analysis.
type analysis struct {
	preExecLen  int
	skip        map[apc]bool
	constOps    map[apc]bool
	prefetch    map[apc]bool
	loadFrac    map[types.Address]float64
	elimCount   int
	prefetchCnt int
}

// stepAddrs returns the code address executing each step.
func stepAddrs(t *arch.TxTrace) []types.Address {
	out := make([]types.Address, len(t.Steps))
	for i := range t.Steps {
		out[i] = t.Steps[i].CodeAddr
	}
	return out
}

// preExecLen finds the boundary of the Compare (+Check) chunks: the
// leading top-frame steps through the dispatcher's taken JUMPI and, if
// present, the CallValue check ending at its landing JUMPDEST. These
// depend only on the To/Input/CallValue fields, all known in the
// dissemination stage, so they are pre-executed in the block interval.
func preExecLen(steps []evm.Step) int {
	if len(steps) == 0 {
		return 0
	}
	d0 := steps[0].Depth
	taken := -1
	for i := 0; i < len(steps); i++ {
		if steps[i].Depth != d0 {
			return 0 // a call before dispatch — not a standard dispatcher
		}
		op := steps[i].Op
		if op == evm.JUMPI {
			if steps[i].BranchTaken {
				taken = i
				break
			}
			continue // a failed selector compare; keep scanning the chain
		}
		if op.Unit() == evm.FUStorage || op.Unit() == evm.FUContext {
			return 0 // body work before any dispatch
		}
	}
	if taken < 0 {
		return 0
	}
	end := taken + 1
	// Optional Check chunk: JUMPDEST, POP, CALLVALUE, ISZERO, PUSH, JUMPI.
	sawCallValue := false
	for j := taken + 1; j < len(steps) && j <= taken+8; j++ {
		if steps[j].Depth != d0 {
			break
		}
		op := steps[j].Op
		switch {
		case op == evm.CALLVALUE:
			sawCallValue = true
		case op == evm.JUMPI:
			if sawCallValue && steps[j].BranchTaken {
				end = j + 1
				if j+1 < len(steps) && steps[j+1].Op == evm.JUMPDEST {
					end = j + 2
				}
			}
			return end
		case op.Unit() == evm.FUStorage || op.Unit() == evm.FUContext ||
			op.Unit() == evm.FUMemory || op.Unit() == evm.FUSHA:
			return end // function body started
		}
	}
	return end
}

// envTag classifies zero-operand environment reads.
func envTag(op evm.Opcode) (tag, bool) {
	switch op {
	case evm.ADDRESS, evm.ORIGIN, evm.CALLER, evm.CALLVALUE, evm.CALLDATASIZE,
		evm.GASPRICE, evm.CODESIZE, evm.COINBASE, evm.TIMESTAMP, evm.NUMBER,
		evm.DIFFICULTY, evm.GASLIMIT:
		return tagAttr, true
	case evm.GAS, evm.PC, evm.MSIZE, evm.RETURNDATASIZE:
		return tagDyn, true
	}
	return tagDyn, false
}

// pureCompute reports opcodes whose result is a pure function of their
// operands (candidates for constant folding/elimination).
func pureCompute(op evm.Opcode) bool {
	switch op.Unit() {
	case evm.FUArithmetic, evm.FULogic:
		return true
	}
	return false
}

// analyzeTrace runs the abstract interpretation and derives the
// annotation sets.
func analyzeTrace(t *arch.TxTrace) *analysis {
	steps := t.Steps
	addrs := stepAddrs(t)
	n := len(steps)

	a := &analysis{
		skip:     make(map[apc]bool),
		constOps: make(map[apc]bool),
		prefetch: make(map[apc]bool),
		loadFrac: make(map[types.Address]float64),
	}
	a.preExecLen = preExecLen(steps)

	// Per-depth abstract stacks and memory word tags.
	stacks := make(map[int][]slotInfo)
	memTags := make(map[int]map[uint64]tag)

	operandAllConst := make([]bool, n)
	hasOperands := make([]bool, n)
	outAllConst := make([]bool, n)
	consumers := make(map[int][]int)
	prefetchable := make([]bool, n)

	for i := 0; i < n; i++ {
		s := &steps[i]
		op := s.Op
		d := s.Depth
		st := stacks[d]
		mem := memTags[d]
		if mem == nil {
			mem = make(map[uint64]tag)
			memTags[d] = mem
		}

		popSlot := func() slotInfo {
			if len(st) == 0 {
				return slotInfo{t: tagDyn, producer: -1}
			}
			v := st[len(st)-1]
			st = st[:len(st)-1]
			if v.producer >= 0 {
				consumers[v.producer] = append(consumers[v.producer], i)
			}
			return v
		}
		peekSlot := func(k int) slotInfo {
			if k >= len(st) {
				return slotInfo{t: tagDyn, producer: -1}
			}
			return st[len(st)-1-k]
		}
		push := func(t tag) {
			st = append(st, slotInfo{t: t, producer: i})
		}

		var opnds []tag
		switch {
		case op.IsPush():
			push(tagConst)

		case op.IsDup():
			k := int(op - evm.DUP1)
			src := peekSlot(k)
			opnds = []tag{src.t}
			if src.producer >= 0 {
				consumers[src.producer] = append(consumers[src.producer], i)
			}
			push(src.t)

		case op.IsSwap():
			k := int(op-evm.SWAP1) + 1
			if k < len(st) {
				top := len(st) - 1
				opnds = []tag{st[top].t, st[top-k].t}
				st[top], st[top-k] = st[top-k], st[top]
			} else {
				opnds = []tag{tagDyn}
			}

		case op == evm.POP:
			v := popSlot()
			opnds = []tag{v.t}

		case op == evm.SHA3:
			off := popSlot()
			size := popSlot()
			opnds = []tag{off.t, size.t}
			result := maxTag(off.t, size.t)
			if result <= tagAttr {
				// Scan the hashed words' tags.
				for w := s.MemOffset; w < s.MemOffset+s.MemBytes; w += 32 {
					wt, ok := mem[w]
					if !ok {
						wt = tagDyn
					}
					result = maxTag(result, wt)
				}
			} else {
				result = tagDyn
			}
			push(result)

		case op == evm.CALLDATALOAD:
			offT := popSlot().t
			opnds = []tag{offT}
			if offT <= tagAttr {
				push(tagAttr)
			} else {
				push(tagDyn)
			}

		case op == evm.MLOAD:
			offT := popSlot().t
			opnds = []tag{offT}
			if offT == tagConst {
				wt, ok := mem[s.MemOffset]
				if !ok {
					wt = tagDyn
				}
				push(wt)
			} else {
				push(tagDyn)
			}

		case op == evm.MSTORE:
			offT := popSlot().t
			val := popSlot()
			opnds = []tag{offT, val.t}
			if offT == tagConst {
				mem[s.MemOffset] = val.t
			}
			// Unknown destination: conservatively poison nothing specific
			// (the model only uses tags for SHA3/MLOAD ranges we track).

		case op == evm.MSTORE8:
			offT := popSlot().t
			val := popSlot()
			opnds = []tag{offT, val.t}
			mem[s.MemOffset-s.MemOffset%32] = tagDyn

		case op == evm.CALLDATACOPY:
			mo := popSlot()
			do := popSlot()
			sz := popSlot()
			opnds = []tag{mo.t, do.t, sz.t}
			if mo.t == tagConst {
				for w := s.MemOffset; w < s.MemOffset+s.MemBytes; w += 32 {
					mem[w] = tagAttr
				}
			}

		case op == evm.CODECOPY:
			mo := popSlot()
			co := popSlot()
			sz := popSlot()
			opnds = []tag{mo.t, co.t, sz.t}
			if mo.t == tagConst {
				for w := s.MemOffset; w < s.MemOffset+s.MemBytes; w += 32 {
					mem[w] = tagAttr
				}
			}

		case op == evm.SLOAD:
			key := popSlot()
			opnds = []tag{key.t}
			prefetchable[i] = key.t <= tagAttr
			push(tagDyn)

		case op == evm.BALANCE || op == evm.EXTCODESIZE || op == evm.EXTCODEHASH:
			key := popSlot()
			opnds = []tag{key.t}
			prefetchable[i] = key.t <= tagAttr
			push(tagDyn)

		case op == evm.BLOCKHASH:
			key := popSlot()
			opnds = []tag{key.t}
			if key.t <= tagAttr {
				push(tagAttr)
			} else {
				push(tagDyn)
			}

		default:
			// Generic transfer: pop per table, push Dyn unless pure.
			pops := op.Pops()
			result := tagConst
			for k := 0; k < pops; k++ {
				v := popSlot()
				opnds = append(opnds, v.t)
				result = maxTag(result, v.t)
			}
			if et, ok := envTag(op); ok && pops == 0 {
				result = et
			} else if !pureCompute(op) {
				result = tagDyn
			}
			for k := 0; k < op.Pushes(); k++ {
				push(result)
			}
		}

		stacks[d] = st

		hasOperands[i] = len(opnds) > 0
		operandAllConst[i] = len(opnds) > 0
		for _, t := range opnds {
			if t != tagConst {
				operandAllConst[i] = false
			}
		}
		// Output constness for the elimination pass.
		outAllConst[i] = false
		switch {
		case op.IsPush():
			outAllConst[i] = true
		case op.IsDup():
			outAllConst[i] = len(opnds) == 1 && opnds[0] == tagConst
		case op.IsSwap():
			outAllConst[i] = len(opnds) == 2 && opnds[0] == tagConst && opnds[1] == tagConst
		case pureCompute(op):
			outAllConst[i] = operandAllConst[i]
		}
	}

	// Elimination (reverse pass): a pure/stack instruction whose outputs
	// are constants and whose every consumer either is eliminated too or
	// reads its operands from the Constants Table can be removed from
	// the issued stream (§3.4.3).
	skip := make([]bool, n)
	constOp := make([]bool, n)
	for i := range steps {
		op := steps[i].Op
		if operandAllConst[i] && !op.IsPush() {
			constOp[i] = true
		}
	}
	for i := n - 1; i >= 0; i-- {
		op := steps[i].Op
		base := op.IsPush() || op.IsDup() || op.IsSwap() || op == evm.POP || pureCompute(op)
		if !base || !outAllConst[i] {
			continue
		}
		if op == evm.POP || op.IsSwap() {
			// No def-use successors: removable when operands are constant.
			skip[i] = operandAllConst[i] || op.IsSwap() && outAllConst[i]
			continue
		}
		cons := consumers[i]
		if len(cons) == 0 {
			continue // value still live at frame end
		}
		ok := true
		for _, c := range cons {
			if !skip[c] && !constOp[c] {
				ok = false
				break
			}
		}
		skip[i] = ok
	}

	// Project to per-(addr,pc) sets; a pc is annotated only if every
	// dynamic occurrence agreed (conservative intersection).
	skipVotes := make(map[apc][2]int) // [yes, total]
	constVotes := make(map[apc][2]int)
	prefVotes := make(map[apc][2]int)
	vote := func(m map[apc][2]int, k apc, yes bool) {
		v := m[k]
		if yes {
			v[0]++
		}
		v[1]++
		m[k] = v
	}
	for i := range steps {
		k := apc{addrs[i], steps[i].PC}
		vote(skipVotes, k, skip[i])
		vote(constVotes, k, constOp[i])
		vote(prefVotes, k, prefetchable[i])
	}
	unanimous := func(m map[apc][2]int, out map[apc]bool) int {
		count := 0
		for k, v := range m {
			if v[0] == v[1] && v[0] > 0 {
				out[k] = true
				count++
			}
		}
		return count
	}
	a.elimCount = unanimous(skipVotes, a.skip)
	unanimous(constVotes, a.constOps)
	a.prefetchCnt = unanimous(prefVotes, a.prefetch)

	// Chunk-based bytecode loading (§3.4.2): only executed bytes of each
	// contract, excluding the pre-executed prefix, are loaded.
	executedBytes := make(map[types.Address]map[uint64]int)
	for i := a.preExecLen; i < n; i++ {
		m := executedBytes[addrs[i]]
		if m == nil {
			m = make(map[uint64]int)
			executedBytes[addrs[i]] = m
		}
		m[steps[i].PC] = 1 + steps[i].Op.PushSize()
	}
	codeSize := make(map[types.Address]int)
	for _, cl := range t.CodeLoads {
		if cl.CodeBytes > codeSize[cl.Addr] {
			codeSize[cl.Addr] = cl.CodeBytes
		}
	}
	for addr, size := range codeSize {
		if size == 0 {
			continue
		}
		bytes := 0
		for _, b := range executedBytes[addr] {
			bytes += b
		}
		f := float64(bytes) / float64(size)
		if f > 1 {
			f = 1
		}
		a.loadFrac[addr] = f
	}
	return a
}
