package hotspot_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"mtpu/internal/hotspot"
)

func TestContractTablePersistRoundTrip(t *testing.T) {
	_, _, traces := fixture(t, "TetherUSD", 30)
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}

	blob, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	restored := hotspot.NewContractTable()
	if err := json.Unmarshal(blob, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != table.Len() {
		t.Fatalf("entry count %d vs %d", restored.Len(), table.Len())
	}

	// Restored plans must be byte-identical in effect.
	for _, tr := range traces {
		p1 := table.Plan(tr)
		p2 := restored.Plan(tr)
		if p1.SkippedInstructions != p2.SkippedInstructions ||
			len(p1.Steps) != len(p2.Steps) {
			t.Fatalf("plans diverge after restore: %d/%d vs %d/%d",
				p1.SkippedInstructions, len(p1.Steps),
				p2.SkippedInstructions, len(p2.Steps))
		}
		for i := range p1.Steps {
			if p1.Steps[i] != p2.Steps[i] {
				t.Fatalf("step %d differs after restore", i)
			}
		}
	}

	// Serialization is deterministic.
	blob2, err := json.Marshal(table)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("non-deterministic serialization")
	}
	blob3, err := json.Marshal(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob3) {
		t.Fatal("round-trip changed the encoding")
	}
}

func TestContractTablePersistErrors(t *testing.T) {
	cases := []string{
		`{"not":"a list"}`,
		`[{"addr":"zz","selector":"a9059cbb"}]`,
		`[{"addr":"0000000000000000000000000000000000001001","selector":"a9"}]`,
		`[{"addr":"0000000000000000000000000000000000001001","selector":"a9059cbb","skip":[{"addr":"xx","pc":1}]}]`,
		`[{"addr":"0000000000000000000000000000000000001001","selector":"a9059cbb","loadFrac":{"0000000000000000000000000000000000001001":7.5}}]`,
	}
	for i, c := range cases {
		table := hotspot.NewContractTable()
		if err := json.Unmarshal([]byte(c), table); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmptyTablePersist(t *testing.T) {
	blob, err := json.Marshal(hotspot.NewContractTable())
	if err != nil {
		t.Fatal(err)
	}
	restored := hotspot.NewContractTable()
	if err := json.Unmarshal(blob, restored); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Fatal("phantom entries")
	}
}
