package hotspot_test

import (
	"bytes"
	"reflect"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/hotspot"
)

// determinismTraces returns a trace set spanning several (contract,
// selector) keys so the table's sorted views have real work to do.
func determinismTraces(t *testing.T) []*arch.TxTrace {
	t.Helper()
	var traces []*arch.TxTrace
	for _, name := range []string{"TetherUSD", "Dai"} {
		_, _, batch := fixture(t, name, 20)
		traces = append(traces, batch...)
	}
	return traces
}

func learn(traces []*arch.TxTrace) *hotspot.ContractTable {
	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	return table
}

// TestKeysDeterministic pins the sort.Slice in ContractTable.Keys: the
// comparator must impose a total order, so repeated calls — and tables
// built from permuted learn orders — agree exactly.
func TestKeysDeterministic(t *testing.T) {
	traces := determinismTraces(t)
	forward := learn(traces)

	reversed := make([]*arch.TxTrace, len(traces))
	for i, tr := range traces {
		reversed[len(traces)-1-i] = tr
	}
	backward := learn(reversed)

	if forward.Len() < 5 {
		t.Fatalf("only %d entries; fixture too small to exercise ordering", forward.Len())
	}
	for run := 0; run < 2; run++ {
		if !reflect.DeepEqual(forward.Keys(), backward.Keys()) {
			t.Fatalf("run %d: key order depends on learn order", run)
		}
	}
}

// TestMarshalJSONDeterministic pins the pcSetOut sort in persist.go:
// serializing the same table twice, or tables learned in opposite
// orders, must produce byte-identical JSON. Learn's merge operations
// (min PreExecLen, set intersection, max LoadFrac) are all commutative,
// so any divergence here is an ordering bug, not a data difference.
func TestMarshalJSONDeterministic(t *testing.T) {
	traces := determinismTraces(t)
	forward := learn(traces)

	reversed := make([]*arch.TxTrace, len(traces))
	for i, tr := range traces {
		reversed[len(traces)-1-i] = tr
	}
	backward := learn(reversed)

	a1, err := forward.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := forward.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatal("repeated MarshalJSON on one table differs")
	}
	b1, err := backward.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, b1) {
		t.Fatal("MarshalJSON depends on learn order")
	}

	// Round-trip stability: a restored table serializes identically.
	restored := hotspot.NewContractTable()
	if err := restored.UnmarshalJSON(a1); err != nil {
		t.Fatal(err)
	}
	r1, err := restored.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, r1) {
		t.Fatal("round-tripped table serializes differently")
	}
}
