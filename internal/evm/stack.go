package evm

import (
	"mtpu/internal/uint256"
)

// StackLimit is the maximum operand stack depth (1024 × 256-bit elements,
// matching both the EVM specification and the 32 KB Stack of Table 5).
const StackLimit = 1024

// Stack is the EVM operand stack. The zero value is ready to use.
type Stack struct {
	data []uint256.Int
}

// NewStack returns an empty stack with preallocated backing storage.
func NewStack() *Stack {
	return &Stack{data: make([]uint256.Int, 0, 64)}
}

// Len returns the current depth.
func (s *Stack) Len() int { return len(s.data) }

// Push appends v to the top of the stack. Depth checking is done by the
// interpreter before dispatch.
func (s *Stack) Push(v *uint256.Int) {
	s.data = append(s.data, *v)
}

// Pop removes and returns the top element.
func (s *Stack) Pop() uint256.Int {
	v := s.data[len(s.data)-1]
	s.data = s.data[:len(s.data)-1]
	return v
}

// Peek returns a pointer to the top element without removing it.
func (s *Stack) Peek() *uint256.Int {
	return &s.data[len(s.data)-1]
}

// Back returns a pointer to the n-th element from the top (0 = top).
func (s *Stack) Back(n int) *uint256.Int {
	return &s.data[len(s.data)-1-n]
}

// Dup pushes a copy of the n-th element from the top (1-based, DUPn).
func (s *Stack) Dup(n int) {
	s.data = append(s.data, s.data[len(s.data)-n])
}

// Swap exchanges the top element with the n-th below it (1-based, SWAPn).
func (s *Stack) Swap(n int) {
	top := len(s.data) - 1
	s.data[top], s.data[top-n] = s.data[top-n], s.data[top]
}

// Reset empties the stack for reuse.
func (s *Stack) Reset() { s.data = s.data[:0] }
