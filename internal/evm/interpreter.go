package evm

import (
	"mtpu/internal/keccak"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// StateDB is the world-state interface the interpreter executes against.
// *state.StateDB satisfies it.
type StateDB interface {
	CreateAccount(types.Address)
	Exist(types.Address) bool

	GetBalance(types.Address) *uint256.Int
	AddBalance(types.Address, *uint256.Int)
	SubBalance(types.Address, *uint256.Int)

	GetNonce(types.Address) uint64
	SetNonce(types.Address, uint64)

	GetCode(types.Address) []byte
	GetCodeSize(types.Address) int
	GetCodeHash(types.Address) types.Hash
	SetCode(types.Address, []byte)

	GetState(types.Address, types.Hash) uint256.Int
	SetState(types.Address, types.Hash, uint256.Int)

	AddLog(*types.Log)
	TakeLogs() []*types.Log
	AddRefund(uint64)
	GetRefund() uint64
	ResetRefund()

	Snapshot() int
	RevertToSnapshot(int)
}

// BlockContext provides the per-block environment (Block Header of Table 4).
type BlockContext struct {
	Coinbase   types.Address
	Number     uint64
	Timestamp  uint64
	Difficulty uint64
	GasLimit   uint64
	// BlockHash resolves BLOCKHASH queries; nil yields zero hashes.
	BlockHash func(uint64) types.Hash
}

// TxContext provides the per-transaction environment.
type TxContext struct {
	Origin   types.Address
	GasPrice uint64
}

// CallDepthLimit is the maximum nesting of the Call_Contract stack (§3.3.6).
const CallDepthLimit = 1024

// MaxCodeSize bounds deployed contract code (EIP-170).
const MaxCodeSize = 24576

// EVM executes contract code against a StateDB. One EVM instance handles
// one transaction at a time; parallelism across transactions is the
// scheduler's job, with one EVM per processing unit.
type EVM struct {
	Block  BlockContext
	TxCtx  TxContext
	State  StateDB
	Tracer Tracer

	depth    int
	readOnly bool
}

// New returns an EVM bound to the given block context and state.
func New(block BlockContext, statedb StateDB) *EVM {
	return &EVM{Block: block, State: statedb, Tracer: NopTracer{}}
}

// frame is one entry of the Call_Contract stack: everything needed to
// execute one contract invocation.
type frame struct {
	caller   types.Address
	address  types.Address // storage & self address
	codeAddr types.Address
	code     []byte
	input    []byte
	value    uint256.Int
	gas      uint64

	jumpdests bitvec
}

// useGas deducts amount, reporting false when the gas margin is exhausted.
func (f *frame) useGas(amount uint64) bool {
	if f.gas < amount {
		return false
	}
	f.gas -= amount
	return true
}

// bitvec marks valid JUMPDEST positions (push immediates excluded).
type bitvec []byte

func analyzeJumpdests(code []byte) bitvec {
	bits := make(bitvec, (len(code)+7)/8)
	for i := 0; i < len(code); {
		op := Opcode(code[i])
		if op == JUMPDEST {
			bits[i/8] |= 1 << (i % 8)
		}
		i += 1 + op.PushSize()
	}
	return bits
}

func (b bitvec) isJumpdest(pos uint64) bool {
	i := int(pos)
	return i/8 < len(b) && b[i/8]&(1<<(i%8)) != 0
}

// Call executes the code at addr with the given input, transferring value
// from caller. It returns the output, the leftover gas and an error
// (ErrExecutionReverted preserves leftover gas; other errors consume it).
func (e *EVM) Call(caller, addr types.Address, input []byte, gas uint64, value *uint256.Int) ([]byte, uint64, error) {
	if e.depth > CallDepthLimit {
		return nil, gas, ErrCallDepth
	}
	if !value.IsZero() && e.State.GetBalance(caller).Lt(value) {
		return nil, gas, ErrInsufficientBalance
	}
	snapshot := e.State.Snapshot()
	if !e.State.Exist(addr) {
		e.State.CreateAccount(addr)
	}
	if !value.IsZero() {
		e.State.SubBalance(caller, value)
		e.State.AddBalance(addr, value)
	}
	f := &frame{
		caller:   caller,
		address:  addr,
		codeAddr: addr,
		code:     e.State.GetCode(addr),
		input:    input,
		gas:      gas,
	}
	f.value.Set(value)
	ret, err := e.run(f)
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			f.gas = 0
		}
	}
	return ret, f.gas, err
}

// StaticCall executes addr with state mutation forbidden.
func (e *EVM) StaticCall(caller, addr types.Address, input []byte, gas uint64) ([]byte, uint64, error) {
	if e.depth > CallDepthLimit {
		return nil, gas, ErrCallDepth
	}
	snapshot := e.State.Snapshot()
	f := &frame{
		caller:   caller,
		address:  addr,
		codeAddr: addr,
		code:     e.State.GetCode(addr),
		input:    input,
		gas:      gas,
	}
	wasReadOnly := e.readOnly
	e.readOnly = true
	ret, err := e.run(f)
	e.readOnly = wasReadOnly
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			f.gas = 0
		}
	}
	return ret, f.gas, err
}

// callCode executes addr's code in caller's storage context (CALLCODE).
func (e *EVM) callCode(caller, addr types.Address, input []byte, gas uint64, value *uint256.Int) ([]byte, uint64, error) {
	if e.depth > CallDepthLimit {
		return nil, gas, ErrCallDepth
	}
	if !value.IsZero() && e.State.GetBalance(caller).Lt(value) {
		return nil, gas, ErrInsufficientBalance
	}
	snapshot := e.State.Snapshot()
	f := &frame{
		caller:   caller,
		address:  caller,
		codeAddr: addr,
		code:     e.State.GetCode(addr),
		input:    input,
		gas:      gas,
	}
	f.value.Set(value)
	ret, err := e.run(f)
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			f.gas = 0
		}
	}
	return ret, f.gas, err
}

// delegateCall executes addr's code with the parent frame's caller, value
// and storage context (DELEGATECALL).
func (e *EVM) delegateCall(parent *frame, addr types.Address, input []byte, gas uint64) ([]byte, uint64, error) {
	if e.depth > CallDepthLimit {
		return nil, gas, ErrCallDepth
	}
	snapshot := e.State.Snapshot()
	f := &frame{
		caller:   parent.caller,
		address:  parent.address,
		codeAddr: addr,
		code:     e.State.GetCode(addr),
		input:    input,
		gas:      gas,
	}
	f.value.Set(&parent.value)
	ret, err := e.run(f)
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			f.gas = 0
		}
	}
	return ret, f.gas, err
}

// Create deploys the contract defined by initCode, funded with value.
func (e *EVM) Create(caller types.Address, initCode []byte, gas uint64, value *uint256.Int) ([]byte, types.Address, uint64, error) {
	addr := types.CreateAddress(caller, e.State.GetNonce(caller))
	return e.create(caller, initCode, gas, value, addr)
}

// Create2 deploys at the salt-derived deterministic address.
func (e *EVM) Create2(caller types.Address, initCode []byte, gas uint64, value *uint256.Int, salt *uint256.Int) ([]byte, types.Address, uint64, error) {
	var buf []byte
	buf = append(buf, 0xff)
	buf = append(buf, caller.Bytes()...)
	sb := salt.Bytes32()
	buf = append(buf, sb[:]...)
	ch := keccak.Sum256(initCode)
	buf = append(buf, ch[:]...)
	h := keccak.Sum256(buf)
	return e.create(caller, initCode, gas, value, types.BytesToAddress(h[12:]))
}

func (e *EVM) create(caller types.Address, initCode []byte, gas uint64, value *uint256.Int, addr types.Address) ([]byte, types.Address, uint64, error) {
	if e.depth > CallDepthLimit {
		return nil, types.Address{}, gas, ErrCallDepth
	}
	if !value.IsZero() && e.State.GetBalance(caller).Lt(value) {
		return nil, types.Address{}, gas, ErrInsufficientBalance
	}
	e.State.SetNonce(caller, e.State.GetNonce(caller)+1)

	snapshot := e.State.Snapshot()
	e.State.CreateAccount(addr)
	e.State.SetNonce(addr, 1)
	if !value.IsZero() {
		e.State.SubBalance(caller, value)
		e.State.AddBalance(addr, value)
	}
	f := &frame{
		caller:   caller,
		address:  addr,
		codeAddr: addr,
		code:     initCode,
		input:    nil,
		gas:      gas,
	}
	f.value.Set(value)
	ret, err := e.run(f)

	if err == nil {
		if len(ret) > MaxCodeSize {
			err = ErrInvalidOpcode
		} else if depositGas := uint64(len(ret)) * GasCodeDeposit; !f.useGas(depositGas) {
			err = ErrOutOfGas
		} else {
			e.State.SetCode(addr, ret)
		}
	}
	if err != nil {
		e.State.RevertToSnapshot(snapshot)
		if err != ErrExecutionReverted {
			f.gas = 0
		}
		return ret, types.Address{}, f.gas, err
	}
	return ret, addr, f.gas, nil
}

// run executes one frame to completion. It implements the six conceptual
// pipeline stages in program order: fetch, decode, gas check, operand
// fetch, execute, write back.
func (e *EVM) run(f *frame) (ret []byte, err error) {
	e.depth++
	defer func() { e.depth-- }()

	e.Tracer.OnEnter(e.depth, f.codeAddr, len(f.code), len(f.input))
	defer func() { e.Tracer.OnExit(e.depth, err) }()

	if len(f.code) == 0 {
		return nil, nil
	}
	f.jumpdests = analyzeJumpdests(f.code)

	var (
		pc         uint64
		stack      = NewStack()
		mem        = NewMemory()
		returnData []byte
		step       Step
		v1, v2, v3 uint256.Int
	)

	for {
		if pc >= uint64(len(f.code)) {
			// Implicit STOP falling off the end of code.
			return nil, nil
		}
		op := Opcode(f.code[pc])
		info := &opTable[op]
		if !info.valid || op == INVALID {
			return nil, ErrInvalidOpcode
		}
		if stack.Len() < info.pops {
			return nil, ErrStackUnderflow
		}
		if stack.Len()+info.pushes-info.pops > StackLimit {
			return nil, ErrStackOverflow
		}

		// Gas stage: constant + dynamic cost, charged before execution.
		gasCost := info.gas
		step = Step{PC: pc, Op: op, Depth: e.depth, StackLen: stack.Len(), CodeAddr: f.codeAddr}

		switch op {
		case EXP:
			exponent := stack.Back(1)
			gasCost += GasExpByte * uint64(exponent.ByteLen())

		case SHA3:
			offset, size := stack.Back(0), stack.Back(1)
			newSize, overflow := memRange(offset, size)
			if overflow {
				return nil, ErrGasUintOverflow
			}
			gasCost += GasSha3Word * toWordSize(size.Uint64())
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemOffset = offset.Uint64()
			step.MemBytes = size.Uint64()

		case CALLDATACOPY, CODECOPY, RETURNDATACOPY:
			memOffset, size := stack.Back(0), stack.Back(2)
			newSize, overflow := memRange(memOffset, size)
			if overflow {
				return nil, ErrGasUintOverflow
			}
			gasCost += GasCopyWord * toWordSize(size.Uint64())
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemOffset = memOffset.Uint64()
			step.MemBytes = size.Uint64()

		case EXTCODECOPY:
			memOffset, size := stack.Back(1), stack.Back(3)
			newSize, overflow := memRange(memOffset, size)
			if overflow {
				return nil, ErrGasUintOverflow
			}
			gasCost += GasCopyWord * toWordSize(size.Uint64())
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemBytes = size.Uint64()
			step.TouchAddr = types.WordToAddress(stack.Back(0))

		case MLOAD, MSTORE:
			newSize, overflow := memRange(stack.Back(0), uint256.NewInt(32))
			if overflow {
				return nil, ErrGasUintOverflow
			}
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemOffset = stack.Back(0).Uint64()
			step.MemBytes = 32

		case MSTORE8:
			newSize, overflow := memRange(stack.Back(0), uint256.NewInt(1))
			if overflow {
				return nil, ErrGasUintOverflow
			}
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemOffset = stack.Back(0).Uint64()
			step.MemBytes = 1

		case JUMP:
			if stack.Back(0).IsUint64() {
				step.JumpTarget = stack.Back(0).Uint64()
			}
			step.BranchTaken = true

		case JUMPI:
			if !stack.Back(1).IsZero() {
				if stack.Back(0).IsUint64() {
					step.JumpTarget = stack.Back(0).Uint64()
				}
				step.BranchTaken = true
			}

		case SLOAD:
			step.TouchAddr = f.address
			step.TouchSlot = types.Hash(stack.Back(0).Bytes32())

		case SSTORE:
			if e.readOnly {
				return nil, ErrWriteProtection
			}
			slot := types.Hash(stack.Back(0).Bytes32())
			newVal := stack.Back(1)
			current := e.State.GetState(f.address, slot)
			switch {
			case current.IsZero() && !newVal.IsZero():
				gasCost += GasSstoreSet
				step.SstoreSet = true
			default:
				gasCost += GasSstoreReset
				if !current.IsZero() && newVal.IsZero() {
					e.State.AddRefund(GasSstoreRefund)
				}
			}
			step.TouchAddr = f.address
			step.TouchSlot = slot

		case BALANCE, EXTCODESIZE, EXTCODEHASH:
			step.TouchAddr = types.WordToAddress(stack.Back(0))

		case LOG0, LOG1, LOG2, LOG3, LOG4:
			if e.readOnly {
				return nil, ErrWriteProtection
			}
			offset, size := stack.Back(0), stack.Back(1)
			newSize, overflow := memRange(offset, size)
			if overflow {
				return nil, ErrGasUintOverflow
			}
			topics := uint64(op - LOG0)
			gasCost += GasLogTopic*topics + GasLogByte*size.Uint64()
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemOffset = offset.Uint64()
			step.MemBytes = size.Uint64()

		case RETURN, REVERT:
			newSize, overflow := memRange(stack.Back(0), stack.Back(1))
			if overflow {
				return nil, ErrGasUintOverflow
			}
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemBytes = stack.Back(1).Uint64()

		case CALL, CALLCODE:
			if e.readOnly && op == CALL && !stack.Back(2).IsZero() {
				return nil, ErrWriteProtection
			}
			newSize, overflow := callMemRange(stack, 3)
			if overflow {
				return nil, ErrGasUintOverflow
			}
			if !stack.Back(2).IsZero() {
				gasCost += GasCallValue
				if op == CALL && !e.State.Exist(types.WordToAddress(stack.Back(1))) {
					gasCost += GasNewAccount
				}
			}
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.TouchAddr = types.WordToAddress(stack.Back(1))

		case DELEGATECALL, STATICCALL:
			newSize, overflow := callMemRange(stack, 2)
			if overflow {
				return nil, ErrGasUintOverflow
			}
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.TouchAddr = types.WordToAddress(stack.Back(1))

		case CREATE, CREATE2:
			if e.readOnly {
				return nil, ErrWriteProtection
			}
			offset, size := stack.Back(1), stack.Back(2)
			newSize, overflow := memRange(offset, size)
			if overflow {
				return nil, ErrGasUintOverflow
			}
			if op == CREATE2 {
				gasCost += GasSha3Word * toWordSize(size.Uint64())
			}
			gasCost += memoryExpansionGas(mem.Len(), newSize)
			step.MemBytes = size.Uint64()
		}

		if !f.useGas(gasCost) {
			return nil, ErrOutOfGas
		}
		step.GasCost = gasCost
		e.Tracer.OnStep(&step)

		// Execute stage.
		switch op {
		case STOP:
			return nil, nil

		case ADD:
			x, y := stack.Pop(), stack.Peek()
			y.Add(&x, y)
		case MUL:
			x, y := stack.Pop(), stack.Peek()
			y.Mul(&x, y)
		case SUB:
			x, y := stack.Pop(), stack.Peek()
			y.Sub(&x, y)
		case DIV:
			x, y := stack.Pop(), stack.Peek()
			y.Div(&x, y)
		case SDIV:
			x, y := stack.Pop(), stack.Peek()
			y.SDiv(&x, y)
		case MOD:
			x, y := stack.Pop(), stack.Peek()
			y.Mod(&x, y)
		case SMOD:
			x, y := stack.Pop(), stack.Peek()
			y.SMod(&x, y)
		case ADDMOD:
			x, y, m := stack.Pop(), stack.Pop(), stack.Peek()
			m.AddMod(&x, &y, m)
		case MULMOD:
			x, y, m := stack.Pop(), stack.Pop(), stack.Peek()
			m.MulMod(&x, &y, m)
		case EXP:
			base, exp := stack.Pop(), stack.Peek()
			exp.Exp(&base, exp)
		case SIGNEXTEND:
			b, x := stack.Pop(), stack.Peek()
			x.SignExtend(&b, x)

		case LT:
			x, y := stack.Pop(), stack.Peek()
			setBool(y, x.Lt(y))
		case GT:
			x, y := stack.Pop(), stack.Peek()
			setBool(y, x.Gt(y))
		case SLT:
			x, y := stack.Pop(), stack.Peek()
			setBool(y, x.Slt(y))
		case SGT:
			x, y := stack.Pop(), stack.Peek()
			setBool(y, x.Sgt(y))
		case EQ:
			x, y := stack.Pop(), stack.Peek()
			setBool(y, x.Eq(y))
		case ISZERO:
			y := stack.Peek()
			setBool(y, y.IsZero())
		case AND:
			x, y := stack.Pop(), stack.Peek()
			y.And(&x, y)
		case OR:
			x, y := stack.Pop(), stack.Peek()
			y.Or(&x, y)
		case XOR:
			x, y := stack.Pop(), stack.Peek()
			y.Xor(&x, y)
		case NOT:
			y := stack.Peek()
			y.Not(y)
		case BYTE:
			n, x := stack.Pop(), stack.Peek()
			x.Byte(&n, x)
		case SHL:
			n, x := stack.Pop(), stack.Peek()
			if n.IsUint64() && n.Uint64() < 256 {
				x.Lsh(x, uint(n.Uint64()))
			} else {
				x.Clear()
			}
		case SHR:
			n, x := stack.Pop(), stack.Peek()
			if n.IsUint64() && n.Uint64() < 256 {
				x.Rsh(x, uint(n.Uint64()))
			} else {
				x.Clear()
			}
		case SAR:
			n, x := stack.Pop(), stack.Peek()
			if n.IsUint64() && n.Uint64() < 256 {
				x.SRsh(x, uint(n.Uint64()))
			} else if x.Sign() < 0 {
				x.SetAllOne()
			} else {
				x.Clear()
			}

		case SHA3:
			offset, size := stack.Pop(), stack.Peek()
			data := mem.View(offset.Uint64(), size.Uint64())
			h := keccak.Sum256(data)
			size.SetBytes(h[:])

		case ADDRESS:
			v1 = f.address.Word()
			stack.Push(&v1)
		case BALANCE:
			addr := types.WordToAddress(stack.Peek())
			stack.Peek().Set(e.State.GetBalance(addr))
		case ORIGIN:
			v1 = e.TxCtx.Origin.Word()
			stack.Push(&v1)
		case CALLER:
			v1 = f.caller.Word()
			stack.Push(&v1)
		case CALLVALUE:
			stack.Push(&f.value)
		case CALLDATALOAD:
			x := stack.Peek()
			dataLoad(f.input, x.Uint64(), !x.IsUint64(), x)
		case CALLDATASIZE:
			v1.SetUint64(uint64(len(f.input)))
			stack.Push(&v1)
		case CALLDATACOPY:
			memOffset, dataOffset, size := stack.Pop(), stack.Pop(), stack.Pop()
			copyIn(mem, f.input, memOffset.Uint64(), dataOffset.Uint64(), size.Uint64(), !dataOffset.IsUint64())
		case CODESIZE:
			v1.SetUint64(uint64(len(f.code)))
			stack.Push(&v1)
		case CODECOPY:
			memOffset, codeOffset, size := stack.Pop(), stack.Pop(), stack.Pop()
			copyIn(mem, f.code, memOffset.Uint64(), codeOffset.Uint64(), size.Uint64(), !codeOffset.IsUint64())
		case GASPRICE:
			v1.SetUint64(e.TxCtx.GasPrice)
			stack.Push(&v1)
		case EXTCODESIZE:
			addr := types.WordToAddress(stack.Peek())
			stack.Peek().SetUint64(uint64(e.State.GetCodeSize(addr)))
		case EXTCODECOPY:
			addrW, memOffset, codeOffset, size := stack.Pop(), stack.Pop(), stack.Pop(), stack.Pop()
			code := e.State.GetCode(types.WordToAddress(&addrW))
			copyIn(mem, code, memOffset.Uint64(), codeOffset.Uint64(), size.Uint64(), !codeOffset.IsUint64())
		case RETURNDATASIZE:
			v1.SetUint64(uint64(len(returnData)))
			stack.Push(&v1)
		case RETURNDATACOPY:
			memOffset, dataOffset, size := stack.Pop(), stack.Pop(), stack.Pop()
			end, overflow := dataOffset.Uint64WithOverflow()
			_ = end
			if overflow {
				return nil, ErrReturnDataOutOfBounds
			}
			if dataOffset.Uint64()+size.Uint64() < dataOffset.Uint64() ||
				dataOffset.Uint64()+size.Uint64() > uint64(len(returnData)) {
				return nil, ErrReturnDataOutOfBounds
			}
			mem.Set(memOffset.Uint64(), returnData[dataOffset.Uint64():dataOffset.Uint64()+size.Uint64()])
		case EXTCODEHASH:
			addr := types.WordToAddress(stack.Peek())
			h := e.State.GetCodeHash(addr)
			stack.Peek().SetBytes(h[:])
		case BLOCKHASH:
			x := stack.Peek()
			if e.Block.BlockHash != nil && x.IsUint64() {
				h := e.Block.BlockHash(x.Uint64())
				x.SetBytes(h[:])
			} else {
				x.Clear()
			}
		case COINBASE:
			v1 = e.Block.Coinbase.Word()
			stack.Push(&v1)
		case TIMESTAMP:
			v1.SetUint64(e.Block.Timestamp)
			stack.Push(&v1)
		case NUMBER:
			v1.SetUint64(e.Block.Number)
			stack.Push(&v1)
		case DIFFICULTY:
			v1.SetUint64(e.Block.Difficulty)
			stack.Push(&v1)
		case GASLIMIT:
			v1.SetUint64(e.Block.GasLimit)
			stack.Push(&v1)

		case POP:
			stack.Pop()
		case MLOAD:
			offset := stack.Peek()
			mem.GetWord(offset.Uint64(), offset)
		case MSTORE:
			offset, val := stack.Pop(), stack.Pop()
			mem.SetWord(offset.Uint64(), &val)
		case MSTORE8:
			offset, val := stack.Pop(), stack.Pop()
			mem.SetByte(offset.Uint64(), &val)
		case SLOAD:
			slotW := stack.Peek()
			val := e.State.GetState(f.address, types.Hash(slotW.Bytes32()))
			slotW.Set(&val)
		case SSTORE:
			slotW, val := stack.Pop(), stack.Pop()
			e.State.SetState(f.address, types.Hash(slotW.Bytes32()), val)
		case JUMP:
			dest := stack.Pop()
			if !dest.IsUint64() || !f.jumpdests.isJumpdest(dest.Uint64()) {
				return nil, ErrInvalidJump
			}
			pc = dest.Uint64()
			continue
		case JUMPI:
			dest, cond := stack.Pop(), stack.Pop()
			if !cond.IsZero() {
				if !dest.IsUint64() || !f.jumpdests.isJumpdest(dest.Uint64()) {
					return nil, ErrInvalidJump
				}
				pc = dest.Uint64()
				continue
			}
		case PC:
			v1.SetUint64(pc)
			stack.Push(&v1)
		case MSIZE:
			v1.SetUint64(mem.Len())
			stack.Push(&v1)
		case GAS:
			v1.SetUint64(f.gas)
			stack.Push(&v1)
		case JUMPDEST:
			// No effect.

		case LOG0, LOG1, LOG2, LOG3, LOG4:
			topicCount := int(op - LOG0)
			offset, size := stack.Pop(), stack.Pop()
			topics := make([]types.Hash, topicCount)
			for i := 0; i < topicCount; i++ {
				t := stack.Pop()
				topics[i] = types.Hash(t.Bytes32())
			}
			e.State.AddLog(&types.Log{
				Address: f.address,
				Topics:  topics,
				Data:    mem.GetCopy(offset.Uint64(), size.Uint64()),
			})

		case CREATE, CREATE2:
			var salt uint256.Int
			value := stack.Pop()
			offset, size := stack.Pop(), stack.Pop()
			if op == CREATE2 {
				salt = stack.Pop()
			}
			initCode := mem.GetCopy(offset.Uint64(), size.Uint64())
			// EIP-150: forward all but 1/64th.
			childGas := f.gas - f.gas/64
			f.gas -= childGas
			var (
				addr types.Address
				left uint64
				cerr error
			)
			if op == CREATE {
				_, addr, left, cerr = e.Create(f.address, initCode, childGas, &value)
			} else {
				_, addr, left, cerr = e.Create2(f.address, initCode, childGas, &value, &salt)
			}
			f.gas += left
			if cerr != nil {
				v1.Clear()
			} else {
				v1 = addr.Word()
			}
			stack.Push(&v1)
			returnData = nil

		case CALL, CALLCODE:
			reqGas := stack.Pop()
			addrW := stack.Pop()
			value := stack.Pop()
			inOffset, inSize := stack.Pop(), stack.Pop()
			outOffset, outSize := stack.Pop(), stack.Pop()
			input := mem.GetCopy(inOffset.Uint64(), inSize.Uint64())
			childGas := availableCallGas(f.gas, &reqGas)
			f.gas -= childGas
			if !value.IsZero() {
				childGas += GasCallStipend
			}
			target := types.WordToAddress(&addrW)
			var (
				out  []byte
				left uint64
				cerr error
			)
			if op == CALL {
				out, left, cerr = e.Call(f.address, target, input, childGas, &value)
			} else {
				out, left, cerr = e.callCode(f.address, target, input, childGas, &value)
			}
			f.gas += left
			writeCallResult(mem, stack, &v2, out, cerr, outOffset.Uint64(), outSize.Uint64())
			returnData = out

		case DELEGATECALL, STATICCALL:
			reqGas := stack.Pop()
			addrW := stack.Pop()
			inOffset, inSize := stack.Pop(), stack.Pop()
			outOffset, outSize := stack.Pop(), stack.Pop()
			input := mem.GetCopy(inOffset.Uint64(), inSize.Uint64())
			childGas := availableCallGas(f.gas, &reqGas)
			f.gas -= childGas
			target := types.WordToAddress(&addrW)
			var (
				out  []byte
				left uint64
				cerr error
			)
			if op == DELEGATECALL {
				out, left, cerr = e.delegateCall(f, target, input, childGas)
			} else {
				out, left, cerr = e.StaticCall(f.address, target, input, childGas)
			}
			f.gas += left
			writeCallResult(mem, stack, &v2, out, cerr, outOffset.Uint64(), outSize.Uint64())
			returnData = out

		case RETURN:
			offset, size := stack.Pop(), stack.Pop()
			return mem.GetCopy(offset.Uint64(), size.Uint64()), nil
		case REVERT:
			offset, size := stack.Pop(), stack.Pop()
			return mem.GetCopy(offset.Uint64(), size.Uint64()), ErrExecutionReverted

		default:
			if op.IsPush() {
				n := op.PushSize()
				start := pc + 1
				end := start + uint64(n)
				if end > uint64(len(f.code)) {
					end = uint64(len(f.code))
				}
				v3.SetBytes(f.code[start:end])
				if end < start+uint64(n) {
					// Right-pad implicit zeros past end of code.
					v3.Lsh(&v3, uint(8*(start+uint64(n)-end)))
				}
				stack.Push(&v3)
				pc += 1 + uint64(n)
				continue
			}
			if op.IsDup() {
				stack.Dup(int(op-DUP1) + 1)
			} else if op.IsSwap() {
				stack.Swap(int(op-SWAP1) + 1)
			} else {
				return nil, ErrInvalidOpcode
			}
		}
		pc++
	}
}

// setBool writes 1 or 0 into z.
func setBool(z *uint256.Int, b bool) {
	if b {
		z.SetOne()
	} else {
		z.Clear()
	}
}

// memRange computes offset+size, reporting uint64 overflow. A zero size
// never expands memory.
func memRange(offset, size *uint256.Int) (uint64, bool) {
	if size.IsZero() {
		return 0, false
	}
	if !offset.IsUint64() || !size.IsUint64() {
		return 0, true
	}
	end := offset.Uint64() + size.Uint64()
	if end < offset.Uint64() {
		return 0, true
	}
	return end, false
}

// callMemRange returns the memory size needed by a call's input and output
// ranges, whose offsets start at stack position base (input) and base+2
// (output).
func callMemRange(stack *Stack, base int) (uint64, bool) {
	inEnd, over1 := memRange(stack.Back(base), stack.Back(base+1))
	outEnd, over2 := memRange(stack.Back(base+2), stack.Back(base+3))
	if over1 || over2 {
		return 0, true
	}
	if outEnd > inEnd {
		return outEnd, false
	}
	return inEnd, false
}

// availableCallGas caps the requested child gas to all-but-one-64th of the
// remaining frame gas (EIP-150).
func availableCallGas(frameGas uint64, requested *uint256.Int) uint64 {
	max := frameGas - frameGas/64
	if requested.IsUint64() && requested.Uint64() < max {
		return requested.Uint64()
	}
	return max
}

// writeCallResult pushes the success flag and copies bounded output.
func writeCallResult(mem *Memory, stack *Stack, scratch *uint256.Int, out []byte, cerr error, outOffset, outSize uint64) {
	if cerr == nil {
		scratch.SetOne()
	} else {
		scratch.Clear()
	}
	stack.Push(scratch)
	if n := uint64(len(out)); n > 0 && outSize > 0 {
		if n > outSize {
			n = outSize
		}
		mem.Set(outOffset, out[:n])
	}
}

// dataLoad reads a 32-byte word at offset from data (zero-padded past the
// end); oob forces a zero result for offsets beyond uint64.
func dataLoad(data []byte, offset uint64, oob bool, out *uint256.Int) {
	if oob || offset >= uint64(len(data)) {
		out.Clear()
		return
	}
	var word [32]byte
	copy(word[:], data[offset:])
	out.SetBytes(word[:])
}

// copyIn copies size bytes from src[srcOffset:] into memory at memOffset,
// zero-padding reads past the end of src. A huge srcOffset reads zeros.
func copyIn(mem *Memory, src []byte, memOffset, srcOffset, size uint64, srcOOB bool) {
	if size == 0 {
		return
	}
	buf := make([]byte, size)
	if !srcOOB && srcOffset < uint64(len(src)) {
		copy(buf, src[srcOffset:])
	}
	mem.Set(memOffset, buf)
}
