package evm

import (
	"fmt"

	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// ApplyTransaction executes one transaction against the EVM's state,
// implementing the full lifecycle: nonce check, fee purchase, intrinsic
// gas, execution, refund and miner payment. It returns the receipt. A nil
// error with Status == ReceiptFailed means the transaction executed and
// reverted (state changes undone, fee still charged); a non-nil error
// means the transaction is invalid and must not be included at all.
func ApplyTransaction(e *EVM, tx *types.Transaction, txIndex int) (*types.Receipt, error) {
	st := e.State

	if have := st.GetNonce(tx.From); have != tx.Nonce {
		return nil, fmt.Errorf("%w: account %s has nonce %d, tx has %d",
			ErrNonceMismatch, tx.From, have, tx.Nonce)
	}

	// Up-front cost: gasLimit*gasPrice + value.
	var feeWei, cost uint256.Int
	feeWei.SetUint64(tx.GasLimit)
	feeWei.Mul(&feeWei, uint256.NewInt(tx.GasPrice))
	cost.Add(&feeWei, &tx.Value)
	if st.GetBalance(tx.From).Lt(&cost) {
		return nil, fmt.Errorf("%w: address %s", ErrInsufficientFunds, tx.From)
	}

	intrinsic := IntrinsicGas(tx.Data, tx.IsContractCreation())
	if tx.GasLimit < intrinsic {
		return nil, fmt.Errorf("%w: limit %d < intrinsic %d", ErrIntrinsicGas, tx.GasLimit, intrinsic)
	}

	st.SubBalance(tx.From, &feeWei)
	st.ResetRefund()

	e.TxCtx = TxContext{Origin: tx.From, GasPrice: tx.GasPrice}
	gas := tx.GasLimit - intrinsic

	var (
		ret     []byte
		left    uint64
		vmErr   error
		created types.Address
	)
	if tx.IsContractCreation() {
		ret, created, left, vmErr = e.Create(tx.From, tx.Data, gas, &tx.Value)
	} else {
		st.SetNonce(tx.From, tx.Nonce+1)
		ret, left, vmErr = e.Call(tx.From, *tx.To, tx.Data, gas, &tx.Value)
	}

	gasUsed := tx.GasLimit - left
	// EIP-3529-style refund cap: at most half the used gas.
	if refund := st.GetRefund(); vmErr == nil && refund > 0 {
		if refund > gasUsed/2 {
			refund = gasUsed / 2
		}
		gasUsed -= refund
		left += refund
	}

	// Return unused fee to sender, pay the miner.
	var leftWei, usedWei uint256.Int
	leftWei.SetUint64(left)
	leftWei.Mul(&leftWei, uint256.NewInt(tx.GasPrice))
	st.AddBalance(tx.From, &leftWei)
	usedWei.SetUint64(gasUsed)
	usedWei.Mul(&usedWei, uint256.NewInt(tx.GasPrice))
	st.AddBalance(e.Block.Coinbase, &usedWei)

	receipt := &types.Receipt{
		TxIndex:    txIndex,
		GasUsed:    gasUsed,
		ReturnData: ret,
	}
	if vmErr == nil {
		receipt.Status = types.ReceiptSuccess
		receipt.Logs = st.TakeLogs()
		receipt.ContractAddress = created
	} else {
		receipt.Status = types.ReceiptFailed
		st.TakeLogs() // discard logs from the reverted execution
	}
	return receipt, nil
}

// NewBlockContext derives the EVM block environment from a block header.
func NewBlockContext(h types.BlockHeader) BlockContext {
	return BlockContext{
		Coinbase:   h.Coinbase,
		Number:     h.Height,
		Timestamp:  h.Timestamp,
		Difficulty: h.Difficulty,
		GasLimit:   h.GasLimit,
	}
}

// ExecuteBlockSequential runs every transaction of the block in order on a
// single EVM — the golden reference all parallel modes are validated
// against. It returns the receipts in transaction order.
func ExecuteBlockSequential(statedb StateDB, block *types.Block, tracer Tracer) ([]*types.Receipt, error) {
	e := New(NewBlockContext(block.Header), statedb)
	if tracer != nil {
		e.Tracer = tracer
	}
	receipts := make([]*types.Receipt, len(block.Transactions))
	for i, tx := range block.Transactions {
		r, err := ApplyTransaction(e, tx, i)
		if err != nil {
			return nil, fmt.Errorf("evm: tx %d: %w", i, err)
		}
		receipts[i] = r
	}
	return receipts, nil
}
