package evm_test

import (
	"errors"
	"testing"

	"mtpu/internal/asm"
	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

var (
	contractAddr = types.HexToAddress("0xc000000000000000000000000000000000000001")
	callerAddr   = types.HexToAddress("0xca11000000000000000000000000000000000002")
	otherAddr    = types.HexToAddress("0x0123000000000000000000000000000000000003")
)

// runCode deploys code at contractAddr and calls it, returning output and error.
func runCode(t *testing.T, code []byte, input []byte, value uint64) ([]byte, *state.StateDB, error) {
	t.Helper()
	st := state.New()
	st.SetCode(contractAddr, code)
	st.SetBalance(callerAddr, uint256.MustFromDecimal("1000000000000000000"))
	st.DiscardJournal()
	e := evm.New(evm.BlockContext{
		Number: 42, Timestamp: 1700000099, Difficulty: 7, GasLimit: 30_000_000,
		Coinbase: otherAddr,
	}, st)
	e.TxCtx = evm.TxContext{Origin: callerAddr, GasPrice: 1}
	v := uint256.NewInt(value)
	ret, _, err := e.Call(callerAddr, contractAddr, input, 10_000_000, v)
	return ret, st, err
}

// mustAsm assembles or fails the test.
func mustAsm(t *testing.T, src string) []byte {
	t.Helper()
	code, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return code
}

// retWord is "take top of stack, return it as one word".
const retWord = `
PUSH1 0
MSTORE
PUSH1 32
PUSH1 0
RETURN
`

func evalTop(t *testing.T, body string) *uint256.Int {
	t.Helper()
	ret, _, err := runCode(t, mustAsm(t, body+retWord), nil, 0)
	if err != nil {
		t.Fatalf("eval %q: %v", body, err)
	}
	if len(ret) != 32 {
		t.Fatalf("eval %q: returned %d bytes", body, len(ret))
	}
	z := new(uint256.Int)
	z.SetBytes(ret)
	return z
}

func wantTop(t *testing.T, body string, want uint64) {
	t.Helper()
	got := evalTop(t, body)
	if !got.Eq(uint256.NewInt(want)) {
		t.Errorf("%q = %s, want %d", body, got, want)
	}
}

func TestArithmeticOpcodes(t *testing.T) {
	wantTop(t, "PUSH1 3\nPUSH1 5\nADD", 8)
	wantTop(t, "PUSH1 3\nPUSH1 5\nSUB", 2) // 5 - 3
	wantTop(t, "PUSH1 3\nPUSH1 5\nMUL", 15)
	wantTop(t, "PUSH1 3\nPUSH1 15\nDIV", 5)
	wantTop(t, "PUSH1 0\nPUSH1 15\nDIV", 0) // div by zero
	wantTop(t, "PUSH1 4\nPUSH1 15\nMOD", 3)
	wantTop(t, "PUSH1 0\nPUSH1 15\nMOD", 0)
	wantTop(t, "PUSH1 7\nPUSH1 5\nPUSH1 9\nADDMOD", 0) // (9+5)%7
	wantTop(t, "PUSH1 7\nPUSH1 5\nPUSH1 9\nMULMOD", 3) // (9*5)%7
	wantTop(t, "PUSH1 3\nPUSH1 2\nEXP", 8)             // 2^3
	wantTop(t, "PUSH1 10\nPUSH1 2\nEXP", 1024)
}

func TestSignedArithmetic(t *testing.T) {
	// -4 / 2 = -2: SDIV(neg4, 2).
	got := evalTop(t, `
PUSH1 2
PUSH1 4
PUSH1 0
SUB
SDIV`)
	want := new(uint256.Int).Neg(uint256.NewInt(2))
	if !got.Eq(want) {
		t.Errorf("SDIV(-4,2) = %s", got.Hex())
	}
	// SMOD(-5, 3) = -2.
	got = evalTop(t, `
PUSH1 3
PUSH1 5
PUSH1 0
SUB
SMOD`)
	want = new(uint256.Int).Neg(uint256.NewInt(2))
	if !got.Eq(want) {
		t.Errorf("SMOD(-5,3) = %s", got.Hex())
	}
	// SIGNEXTEND from byte 0 of 0xff = -1.
	got = evalTop(t, "PUSH1 0xff\nPUSH1 0\nSIGNEXTEND")
	if !got.Eq(new(uint256.Int).SetAllOne()) {
		t.Errorf("SIGNEXTEND(0, 0xff) = %s", got.Hex())
	}
}

func TestComparisonAndLogicOpcodes(t *testing.T) {
	wantTop(t, "PUSH1 5\nPUSH1 3\nLT", 1) // 3 < 5
	wantTop(t, "PUSH1 3\nPUSH1 5\nLT", 0) // 5 < 3 is false
	wantTop(t, "PUSH1 3\nPUSH1 5\nGT", 1) // 5 > 3
	wantTop(t, "PUSH1 5\nPUSH1 5\nEQ", 1)
	wantTop(t, "PUSH1 0\nISZERO", 1)
	wantTop(t, "PUSH1 7\nISZERO", 0)
	wantTop(t, "PUSH1 0x0f\nPUSH1 0x3c\nAND", 0x0c)
	wantTop(t, "PUSH1 0x0f\nPUSH1 0x30\nOR", 0x3f)
	wantTop(t, "PUSH1 0x0f\nPUSH1 0x3c\nXOR", 0x33)
	// Shift amount is the TOP operand: SHL(shift=1, value=4) = 8.
	wantTop(t, "PUSH1 4\nPUSH1 1\nSHL", 8)
	wantTop(t, "PUSH1 16\nPUSH1 4\nSHR", 1)
	// SLT: -1 < 1.
	wantTop(t, "PUSH1 1\nPUSH1 0\nNOT\nSLT", 1)
	// SGT: 1 > -1.
	wantTop(t, "PUSH1 0\nNOT\nPUSH1 1\nSGT", 1)
	// BYTE 31 of 0xff is 0xff (least significant).
	wantTop(t, "PUSH1 0xff\nPUSH1 31\nBYTE", 0xff)
	// SAR on -16 by 2 = -4.
	got := evalTop(t, "PUSH1 16\nPUSH1 0\nSUB\nPUSH1 2\nSAR")
	if !got.Eq(new(uint256.Int).Neg(uint256.NewInt(4))) {
		t.Errorf("SAR(-16,2) = %s", got.Hex())
	}
}

func TestNotOpcode(t *testing.T) {
	got := evalTop(t, "PUSH1 0\nNOT")
	if !got.Eq(new(uint256.Int).SetAllOne()) {
		t.Errorf("NOT 0 = %s", got.Hex())
	}
}

func TestSHA3MatchesKeccak(t *testing.T) {
	// keccak256 of 32 zero bytes.
	got := evalTop(t, "PUSH1 32\nPUSH1 0\nSHA3")
	want := uint256.MustFromHex("0x290decd9548b62a8d60345a988386fc84ba6bc95484008f6362f93160ef3e563")
	if !got.Eq(want) {
		t.Errorf("SHA3(32 zeros) = %s", got.Hex())
	}
	// Empty input.
	got = evalTop(t, "PUSH1 0\nPUSH1 0\nSHA3")
	want = uint256.MustFromHex("0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470")
	if !got.Eq(want) {
		t.Errorf("SHA3(empty) = %s", got.Hex())
	}
}

func TestEnvironmentOpcodes(t *testing.T) {
	cases := []struct {
		body string
		want *uint256.Int
	}{
		{"ADDRESS", ptr(contractAddr.Word())},
		{"CALLER", ptr(callerAddr.Word())},
		{"ORIGIN", ptr(callerAddr.Word())},
		{"NUMBER", uint256.NewInt(42)},
		{"TIMESTAMP", uint256.NewInt(1700000099)},
		{"DIFFICULTY", uint256.NewInt(7)},
		{"GASLIMIT", uint256.NewInt(30_000_000)},
		{"COINBASE", ptr(otherAddr.Word())},
		{"CALLDATASIZE", uint256.NewInt(0)},
		{"CODESIZE", uint256.NewInt(uint64(len(mustAsmBody())))},
		{"MSIZE", uint256.NewInt(0)},
	}
	for _, c := range cases {
		got := evalTop(t, c.body)
		if !got.Eq(c.want) {
			t.Errorf("%s = %s, want %s", c.body, got.Hex(), c.want.Hex())
		}
	}
}

func ptr(v uint256.Int) *uint256.Int { return &v }

// mustAsmBody returns the assembled length of "CODESIZE" + retWord for
// the CODESIZE expectation.
func mustAsmBody() []byte {
	code, err := asm.Assemble("CODESIZE" + retWord)
	if err != nil {
		panic(err)
	}
	return code
}

func TestCallValueAndCalldata(t *testing.T) {
	code := mustAsm(t, "CALLVALUE"+retWord)
	ret, _, err := runCode(t, code, nil, 777)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 777 {
		t.Errorf("CALLVALUE = %s", got)
	}

	code = mustAsm(t, "PUSH1 0\nCALLDATALOAD"+retWord)
	input := make([]byte, 32)
	input[31] = 0xab
	ret, _, err = runCode(t, code, input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 0xab {
		t.Errorf("CALLDATALOAD = %s", got)
	}

	// Past-the-end reads are zero-padded.
	code = mustAsm(t, "PUSH1 100\nCALLDATALOAD"+retWord)
	ret, _, err = runCode(t, code, input, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Errorf("OOB CALLDATALOAD = %s", got)
	}
}

func TestMemoryOpcodes(t *testing.T) {
	// MSTORE8 writes a single byte.
	wantTop(t, "PUSH1 0xAB\nPUSH1 31\nMSTORE8\nPUSH1 0\nMLOAD", 0xAB)
	// MSIZE grows in words.
	wantTop(t, "PUSH1 1\nPUSH1 63\nMSTORE8\nMSIZE", 64)
}

func TestStorageOpcodes(t *testing.T) {
	code := mustAsm(t, `
PUSH1 0x2a
PUSH1 0x07
SSTORE
PUSH1 0x07
SLOAD`+retWord)
	ret, st, err := runCode(t, code, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 0x2a {
		t.Errorf("SLOAD = %s", got)
	}
	slot := types.BytesToHash([]byte{0x07})
	if v := st.GetState(contractAddr, slot); v.Uint64() != 0x2a {
		t.Errorf("persisted state = %s", v.String())
	}
}

func TestJumps(t *testing.T) {
	wantTop(t, `
PUSH @over
JUMP
PUSH2 0x0bad
over:
PUSH1 0x11`, 0x11)

	// Conditional taken and not taken.
	wantTop(t, `
PUSH1 1
PUSH @yes
JUMPI
PUSH1 0
PUSH @done
JUMP
yes:
PUSH1 1
done:
JUMPDEST`, 1)
}

func TestInvalidJumpDestination(t *testing.T) {
	// Jump into the middle of a PUSH immediate must fail.
	code := []byte{
		byte(evm.PUSH1), 0x01, // 0: PUSH1 0x01 — byte 1 is immediate
		byte(evm.JUMP), // jump to 1
	}
	_, _, err := runCode(t, code, nil, 0)
	if !errors.Is(err, evm.ErrInvalidJump) {
		t.Fatalf("got %v, want ErrInvalidJump", err)
	}
}

func TestStackErrors(t *testing.T) {
	_, _, err := runCode(t, []byte{byte(evm.ADD)}, nil, 0)
	if !errors.Is(err, evm.ErrStackUnderflow) {
		t.Fatalf("underflow: %v", err)
	}
	// Overflow: push 1025 values via a loop.
	var b []byte
	// JUMPDEST; PUSH1 1; PUSH @0; JUMP — infinite push loop.
	b = append(b, byte(evm.JUMPDEST), byte(evm.PUSH1), 1, byte(evm.PUSH1), 0, byte(evm.JUMP))
	_, _, err = runCode(t, b, nil, 0)
	if !errors.Is(err, evm.ErrStackOverflow) {
		t.Fatalf("overflow: %v", err)
	}
}

func TestInvalidOpcode(t *testing.T) {
	_, _, err := runCode(t, []byte{0xef}, nil, 0)
	if !errors.Is(err, evm.ErrInvalidOpcode) {
		t.Fatalf("got %v", err)
	}
	_, _, err = runCode(t, []byte{byte(evm.INVALID)}, nil, 0)
	if !errors.Is(err, evm.ErrInvalidOpcode) {
		t.Fatalf("INVALID: got %v", err)
	}
}

func TestOutOfGas(t *testing.T) {
	// Infinite loop must exhaust gas.
	code := mustAsm(t, "loop:\nPUSH @loop\nJUMP")
	st := state.New()
	st.SetCode(contractAddr, code)
	e := evm.New(evm.BlockContext{GasLimit: 1000}, st)
	_, left, err := e.Call(callerAddr, contractAddr, nil, 10_000, new(uint256.Int))
	if !errors.Is(err, evm.ErrOutOfGas) {
		t.Fatalf("got %v", err)
	}
	if left != 0 {
		t.Fatalf("OOG left %d gas", left)
	}
}

func TestRevertReturnsDataAndRestoresState(t *testing.T) {
	code := mustAsm(t, `
PUSH1 0x55
PUSH1 0x01
SSTORE
PUSH1 0xEE
PUSH1 0
MSTORE
PUSH1 32
PUSH1 0
REVERT`)
	ret, st, err := runCode(t, code, nil, 0)
	if !errors.Is(err, evm.ErrExecutionReverted) {
		t.Fatalf("got %v", err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 0xEE {
		t.Errorf("revert data = %x", ret)
	}
	slot := types.BytesToHash([]byte{0x01})
	if v := st.GetState(contractAddr, slot); !v.IsZero() {
		t.Errorf("state not reverted: %s", v.String())
	}
}

func TestRevertKeepsGas(t *testing.T) {
	code := mustAsm(t, "PUSH1 0\nPUSH1 0\nREVERT")
	st := state.New()
	st.SetCode(contractAddr, code)
	e := evm.New(evm.BlockContext{}, st)
	_, left, err := e.Call(callerAddr, contractAddr, nil, 100_000, new(uint256.Int))
	if !errors.Is(err, evm.ErrExecutionReverted) {
		t.Fatalf("got %v", err)
	}
	if left < 99_000 {
		t.Fatalf("revert consumed too much gas: %d left", left)
	}
}

func TestValueTransferViaCall(t *testing.T) {
	_, st, err := runCode(t, mustAsm(t, "STOP"), nil, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.GetBalance(contractAddr); got.Uint64() != 12345 {
		t.Errorf("contract balance = %s", got)
	}
}

func TestInsufficientBalanceTransfer(t *testing.T) {
	st := state.New()
	st.SetCode(contractAddr, mustAsm(t, "STOP"))
	e := evm.New(evm.BlockContext{}, st)
	_, _, err := e.Call(callerAddr, contractAddr, nil, 100_000, uint256.NewInt(1))
	if !errors.Is(err, evm.ErrInsufficientBalance) {
		t.Fatalf("got %v", err)
	}
}

func TestInnerCallAndReturndata(t *testing.T) {
	// Callee returns 0x42; caller forwards it via RETURNDATACOPY.
	callee := mustAsm(t, "PUSH1 0x42"+retWord)
	caller := mustAsm(t, `
PUSH1 0        ; outSize
PUSH1 0        ; outOffset
PUSH1 0        ; inSize
PUSH1 0        ; inOffset
PUSH1 0        ; value
PUSH20 0x0123000000000000000000000000000000000003
PUSH3 0xFFFFFF ; gas
CALL
POP
RETURNDATASIZE
PUSH1 0
PUSH1 0
RETURNDATACOPY
RETURNDATASIZE
PUSH1 0
RETURN`)
	st := state.New()
	st.SetCode(contractAddr, caller)
	st.SetCode(otherAddr, callee)
	e := evm.New(evm.BlockContext{}, st)
	ret, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 0x42 {
		t.Errorf("forwarded return = %x", ret)
	}
}

func TestReturndataCopyOutOfBounds(t *testing.T) {
	code := mustAsm(t, `
PUSH1 1
PUSH1 0
PUSH1 0
RETURNDATACOPY`)
	_, _, err := runCode(t, code, nil, 0)
	if !errors.Is(err, evm.ErrReturnDataOutOfBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestStaticCallBlocksWrites(t *testing.T) {
	// Callee tries SSTORE; caller STATICCALLs it and returns the flag.
	callee := mustAsm(t, "PUSH1 1\nPUSH1 0\nSSTORE\nSTOP")
	caller := mustAsm(t, `
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
PUSH20 0x0123000000000000000000000000000000000003
PUSH3 0xFFFFFF
STATICCALL`+retWord)
	st := state.New()
	st.SetCode(contractAddr, caller)
	st.SetCode(otherAddr, callee)
	e := evm.New(evm.BlockContext{}, st)
	ret, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Errorf("STATICCALL to writing callee succeeded: %x", ret)
	}
	if v := st.GetState(otherAddr, types.Hash{}); !v.IsZero() {
		t.Error("write escaped STATICCALL")
	}
}

func TestDelegateCallUsesCallerStorage(t *testing.T) {
	// Callee writes 7 to slot 0; delegatecall keeps the write in caller.
	callee := mustAsm(t, "PUSH1 7\nPUSH1 0\nSSTORE\nSTOP")
	caller := mustAsm(t, `
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
PUSH20 0x0123000000000000000000000000000000000003
PUSH3 0xFFFFFF
DELEGATECALL
POP
STOP`)
	st := state.New()
	st.SetCode(contractAddr, caller)
	st.SetCode(otherAddr, callee)
	e := evm.New(evm.BlockContext{}, st)
	if _, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int)); err != nil {
		t.Fatal(err)
	}
	if v := st.GetState(contractAddr, types.Hash{}); v.Uint64() != 7 {
		t.Errorf("caller slot 0 = %s, want 7", v.String())
	}
	if v := st.GetState(otherAddr, types.Hash{}); !v.IsZero() {
		t.Error("callee storage was written")
	}
}

func TestCreateDeploysCode(t *testing.T) {
	// Init code that returns a 1-byte runtime (STOP):
	// PUSH1 0x00(STOP) PUSH1 0 MSTORE8 PUSH1 1 PUSH1 0 RETURN
	creator := mustAsm(t, `
PUSH1 0x00
PUSH1 0
MSTORE8
PUSH1 1
PUSH1 0
RETURN`)
	// Outer contract CREATEs with that init code loaded via CODECOPY.
	outer := mustAsm(t, `
; copy own trailing init code? simpler: build init code in memory by hand
; init: 6000 6000 53 6001 6000 f3  (returns single 0x00 byte)
PUSH32 0x600060005360016000f300000000000000000000000000000000000000000000
PUSH1 0
MSTORE
PUSH1 10   ; init code length
PUSH1 0    ; offset
PUSH1 0    ; value
CREATE`+retWord)
	_ = creator
	ret, st, err := runCode(t, outer, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	created := types.WordToAddress(new(uint256.Int).SetBytes(ret))
	if created.IsZero() {
		t.Fatal("CREATE returned zero address")
	}
	if got := st.GetCodeSize(created); got != 1 {
		t.Errorf("deployed code size %d, want 1", got)
	}
	want := types.CreateAddress(contractAddr, 1) // creator nonce was 0→set to 1 before compute? see below
	_ = want
}

func TestCallDepthLimit(t *testing.T) {
	// A contract that calls itself forever; depth limit must stop it
	// without an error at the top level (inner calls fail, outer returns).
	code := mustAsm(t, `
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
ADDRESS
GAS
CALL`+retWord)
	ret, _, err := runCode(t, code, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = ret // the recursion bottoms out via gas or depth; no panic is the point
}

func TestGasOpcodeDecreases(t *testing.T) {
	code := mustAsm(t, "GAS\nGAS\nSWAP1\nSUB"+retWord) // first GAS - second GAS > 0
	ret, _, err := runCode(t, code, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff := new(uint256.Int).SetBytes(ret)
	if diff.IsZero() || diff.Sign() < 0 {
		t.Errorf("gas did not decrease: %s", diff)
	}
}

func TestPCOpcode(t *testing.T) {
	wantTop(t, "PC", 0)
	wantTop(t, "PUSH1 0\nPOP\nPC", 3)
}

func TestImplicitStopAtCodeEnd(t *testing.T) {
	_, _, err := runCode(t, mustAsm(t, "PUSH1 1\nPOP"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogOpcodes(t *testing.T) {
	code := mustAsm(t, `
PUSH1 0x99
PUSH1 0
MSTORE
PUSH1 0x42  ; topic1
PUSH1 32    ; size
PUSH1 0     ; offset
LOG1
STOP`)
	_, st, err := runCode(t, code, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	logs := st.TakeLogs()
	if len(logs) != 1 {
		t.Fatalf("%d logs", len(logs))
	}
	if len(logs[0].Topics) != 1 || logs[0].Topics[0] != types.BytesToHash([]byte{0x42}) {
		t.Errorf("topics %v", logs[0].Topics)
	}
	if len(logs[0].Data) != 32 || logs[0].Data[31] != 0x99 {
		t.Errorf("data %x", logs[0].Data)
	}
}

func TestExtcodeOpcodes(t *testing.T) {
	calleeCode := mustAsm(t, "STOP")
	st := state.New()
	st.SetCode(contractAddr, mustAsm(t, `
PUSH20 0x0123000000000000000000000000000000000003
EXTCODESIZE`+retWord))
	st.SetCode(otherAddr, calleeCode)
	e := evm.New(evm.BlockContext{}, st)
	ret, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != uint64(len(calleeCode)) {
		t.Errorf("EXTCODESIZE = %s, want %d", got, len(calleeCode))
	}
}

func TestBalanceOpcode(t *testing.T) {
	st := state.New()
	st.SetCode(contractAddr, mustAsm(t, "CALLER\nBALANCE"+retWord))
	st.SetBalance(callerAddr, uint256.NewInt(998877))
	e := evm.New(evm.BlockContext{}, st)
	ret, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 998877 {
		t.Errorf("BALANCE = %s", got)
	}
}

func TestCallCodeRunsCalleeInCallerContext(t *testing.T) {
	// CALLCODE executes the callee's code with the caller's storage, like
	// DELEGATECALL but with its own value argument.
	callee := mustAsm(t, "PUSH1 9\nPUSH1 0\nSSTORE\nSTOP")
	caller := mustAsm(t, `
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
PUSH20 0x0123000000000000000000000000000000000003
PUSH3 0xFFFFFF
CALLCODE
POP
STOP`)
	st := state.New()
	st.SetCode(contractAddr, caller)
	st.SetCode(otherAddr, callee)
	e := evm.New(evm.BlockContext{}, st)
	if _, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int)); err != nil {
		t.Fatal(err)
	}
	if v := st.GetState(contractAddr, types.Hash{}); v.Uint64() != 9 {
		t.Fatalf("caller slot = %s, want 9", v.String())
	}
	if v := st.GetState(otherAddr, types.Hash{}); !v.IsZero() {
		t.Fatal("callee storage written by CALLCODE")
	}
}

func TestCreate2DeterministicAddress(t *testing.T) {
	st := state.New()
	st.SetBalance(callerAddr, uint256.NewInt(1_000_000))
	e := evm.New(evm.BlockContext{}, st)
	init := []byte{byte(evm.STOP)} // deploys empty code
	salt := uint256.NewInt(42)
	_, a1, _, err := e.Create2(callerAddr, init, 500_000, new(uint256.Int), salt)
	if err != nil {
		t.Fatal(err)
	}
	// Same inputs from a fresh state give the same address (nonce-free).
	st2 := state.New()
	st2.SetBalance(callerAddr, uint256.NewInt(1_000_000))
	e2 := evm.New(evm.BlockContext{}, st2)
	_, a2, _, err := e2.Create2(callerAddr, init, 500_000, new(uint256.Int), salt)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("CREATE2 addresses differ: %s vs %s", a1, a2)
	}
	// Different salt, different address.
	st3 := state.New()
	st3.SetBalance(callerAddr, uint256.NewInt(1_000_000))
	e3 := evm.New(evm.BlockContext{}, st3)
	_, a3, _, err := e3.Create2(callerAddr, init, 500_000, new(uint256.Int), uint256.NewInt(43))
	if err != nil {
		t.Fatal(err)
	}
	if a3 == a1 {
		t.Fatal("salt ignored by CREATE2")
	}
}

func TestMemoryExpansionGasCharged(t *testing.T) {
	// Writing far into memory must cost noticeably more than writing at 0.
	near := mustAsm(t, "PUSH1 1\nPUSH1 0\nMSTORE\nSTOP")
	far := mustAsm(t, "PUSH1 1\nPUSH3 0x010000\nMSTORE\nSTOP")
	gasOf := func(code []byte) uint64 {
		st := state.New()
		st.SetCode(contractAddr, code)
		e := evm.New(evm.BlockContext{}, st)
		_, left, err := e.Call(callerAddr, contractAddr, nil, 10_000_000, new(uint256.Int))
		if err != nil {
			t.Fatal(err)
		}
		return 10_000_000 - left
	}
	gNear, gFar := gasOf(near), gasOf(far)
	if gFar < gNear+1000 {
		t.Fatalf("memory expansion underpriced: %d vs %d", gNear, gFar)
	}
}
