// Package evm implements the smart-contract execution substrate: the
// instruction set of Table 3, a gas-metered stack-machine interpreter with
// the call family and contract creation, and tracing hooks that feed the
// architectural timing model. The interpreter is the functional golden
// model; internal/arch replays its traces through the MTPU pipeline.
package evm

import "fmt"

// Opcode is a single EVM bytecode.
type Opcode byte

// Instruction set (Table 3 of the paper, following the Ethereum yellow
// paper numbering).
const (
	STOP Opcode = 0x00

	// Arithmetic: 0x01-0x0b.
	ADD        Opcode = 0x01
	MUL        Opcode = 0x02
	SUB        Opcode = 0x03
	DIV        Opcode = 0x04
	SDIV       Opcode = 0x05
	MOD        Opcode = 0x06
	SMOD       Opcode = 0x07
	ADDMOD     Opcode = 0x08
	MULMOD     Opcode = 0x09
	EXP        Opcode = 0x0a
	SIGNEXTEND Opcode = 0x0b

	// Logic: 0x10-0x1d.
	LT     Opcode = 0x10
	GT     Opcode = 0x11
	SLT    Opcode = 0x12
	SGT    Opcode = 0x13
	EQ     Opcode = 0x14
	ISZERO Opcode = 0x15
	AND    Opcode = 0x16
	OR     Opcode = 0x17
	XOR    Opcode = 0x18
	NOT    Opcode = 0x19
	BYTE   Opcode = 0x1a
	SHL    Opcode = 0x1b
	SHR    Opcode = 0x1c
	SAR    Opcode = 0x1d

	// SHA.
	SHA3 Opcode = 0x20

	// Fixed access + state query: 0x30-0x45.
	ADDRESS        Opcode = 0x30
	BALANCE        Opcode = 0x31
	ORIGIN         Opcode = 0x32
	CALLER         Opcode = 0x33
	CALLVALUE      Opcode = 0x34
	CALLDATALOAD   Opcode = 0x35
	CALLDATASIZE   Opcode = 0x36
	CALLDATACOPY   Opcode = 0x37
	CODESIZE       Opcode = 0x38
	CODECOPY       Opcode = 0x39
	GASPRICE       Opcode = 0x3a
	EXTCODESIZE    Opcode = 0x3b
	EXTCODECOPY    Opcode = 0x3c
	RETURNDATASIZE Opcode = 0x3d
	RETURNDATACOPY Opcode = 0x3e
	EXTCODEHASH    Opcode = 0x3f
	BLOCKHASH      Opcode = 0x40
	COINBASE       Opcode = 0x41
	TIMESTAMP      Opcode = 0x42
	NUMBER         Opcode = 0x43
	DIFFICULTY     Opcode = 0x44
	GASLIMIT       Opcode = 0x45

	// Stack, memory, storage, branch: 0x50-0x5b.
	POP      Opcode = 0x50
	MLOAD    Opcode = 0x51
	MSTORE   Opcode = 0x52
	MSTORE8  Opcode = 0x53
	SLOAD    Opcode = 0x54
	SSTORE   Opcode = 0x55
	JUMP     Opcode = 0x56
	JUMPI    Opcode = 0x57
	PC       Opcode = 0x58
	MSIZE    Opcode = 0x59
	GAS      Opcode = 0x5a
	JUMPDEST Opcode = 0x5b

	// Push family: 0x60-0x7f.
	PUSH1  Opcode = 0x60
	PUSH2  Opcode = 0x61
	PUSH3  Opcode = 0x62
	PUSH4  Opcode = 0x63
	PUSH5  Opcode = 0x64
	PUSH6  Opcode = 0x65
	PUSH7  Opcode = 0x66
	PUSH8  Opcode = 0x67
	PUSH9  Opcode = 0x68
	PUSH10 Opcode = 0x69
	PUSH11 Opcode = 0x6a
	PUSH12 Opcode = 0x6b
	PUSH13 Opcode = 0x6c
	PUSH14 Opcode = 0x6d
	PUSH15 Opcode = 0x6e
	PUSH16 Opcode = 0x6f
	PUSH17 Opcode = 0x70
	PUSH18 Opcode = 0x71
	PUSH19 Opcode = 0x72
	PUSH20 Opcode = 0x73
	PUSH21 Opcode = 0x74
	PUSH22 Opcode = 0x75
	PUSH23 Opcode = 0x76
	PUSH24 Opcode = 0x77
	PUSH25 Opcode = 0x78
	PUSH26 Opcode = 0x79
	PUSH27 Opcode = 0x7a
	PUSH28 Opcode = 0x7b
	PUSH29 Opcode = 0x7c
	PUSH30 Opcode = 0x7d
	PUSH31 Opcode = 0x7e
	PUSH32 Opcode = 0x7f

	// Dup family: 0x80-0x8f.
	DUP1  Opcode = 0x80
	DUP2  Opcode = 0x81
	DUP3  Opcode = 0x82
	DUP4  Opcode = 0x83
	DUP5  Opcode = 0x84
	DUP6  Opcode = 0x85
	DUP7  Opcode = 0x86
	DUP8  Opcode = 0x87
	DUP9  Opcode = 0x88
	DUP10 Opcode = 0x89
	DUP11 Opcode = 0x8a
	DUP12 Opcode = 0x8b
	DUP13 Opcode = 0x8c
	DUP14 Opcode = 0x8d
	DUP15 Opcode = 0x8e
	DUP16 Opcode = 0x8f

	// Swap family: 0x90-0x9f.
	SWAP1  Opcode = 0x90
	SWAP2  Opcode = 0x91
	SWAP3  Opcode = 0x92
	SWAP4  Opcode = 0x93
	SWAP5  Opcode = 0x94
	SWAP6  Opcode = 0x95
	SWAP7  Opcode = 0x96
	SWAP8  Opcode = 0x97
	SWAP9  Opcode = 0x98
	SWAP10 Opcode = 0x99
	SWAP11 Opcode = 0x9a
	SWAP12 Opcode = 0x9b
	SWAP13 Opcode = 0x9c
	SWAP14 Opcode = 0x9d
	SWAP15 Opcode = 0x9e
	SWAP16 Opcode = 0x9f

	// Logging: 0xa0-0xa4.
	LOG0 Opcode = 0xa0
	LOG1 Opcode = 0xa1
	LOG2 Opcode = 0xa2
	LOG3 Opcode = 0xa3
	LOG4 Opcode = 0xa4

	// Context switching: 0xf0-0xfa.
	CREATE       Opcode = 0xf0
	CALL         Opcode = 0xf1
	CALLCODE     Opcode = 0xf2
	RETURN       Opcode = 0xf3
	DELEGATECALL Opcode = 0xf4
	CREATE2      Opcode = 0xf5
	STATICCALL   Opcode = 0xfa

	REVERT  Opcode = 0xfd
	INVALID Opcode = 0xfe
)

// IsPush reports whether op is in the PUSH1..PUSH32 family.
func (op Opcode) IsPush() bool { return op >= PUSH1 && op <= PUSH32 }

// PushSize returns the immediate size in bytes for PUSH opcodes, 0 otherwise.
func (op Opcode) PushSize() int {
	if op.IsPush() {
		return int(op-PUSH1) + 1
	}
	return 0
}

// IsDup reports whether op is DUP1..DUP16.
func (op Opcode) IsDup() bool { return op >= DUP1 && op <= DUP16 }

// IsSwap reports whether op is SWAP1..SWAP16.
func (op Opcode) IsSwap() bool { return op >= SWAP1 && op <= SWAP16 }

// FuncUnit is the functional-unit class an opcode executes on — the
// modular decomposition of Table 3 that sizes DB-cache line fields.
type FuncUnit uint8

// Functional units, in Table 3 order.
const (
	FUArithmetic FuncUnit = iota
	FULogic
	FUSHA
	FUFixedAccess
	FUStateQuery
	FUMemory
	FUStorage
	FUBranch
	FUStack
	FUControl
	FUContext
	// FUInvalid marks undefined opcodes.
	FUInvalid
	// NumFuncUnits is the count of real functional units.
	NumFuncUnits = int(FUInvalid)
)

var funcUnitNames = [...]string{
	FUArithmetic:  "Arithmetic",
	FULogic:       "Logic",
	FUSHA:         "SHA",
	FUFixedAccess: "Fixed access",
	FUStateQuery:  "State query",
	FUMemory:      "Memory",
	FUStorage:     "Storage",
	FUBranch:      "Branch",
	FUStack:       "Stack",
	FUControl:     "Control",
	FUContext:     "Context switching",
	FUInvalid:     "Invalid",
}

// String returns the Table 3 name of the functional unit.
func (f FuncUnit) String() string {
	if int(f) < len(funcUnitNames) {
		return funcUnitNames[f]
	}
	return fmt.Sprintf("FuncUnit(%d)", uint8(f))
}

// opInfo is the static metadata for one opcode.
type opInfo struct {
	name   string
	pops   int // operands taken from the stack
	pushes int // results pushed to the stack
	unit   FuncUnit
	gas    uint64 // constant gas component
	valid  bool
}

var opTable [256]opInfo

func def(op Opcode, name string, pops, pushes int, unit FuncUnit, gas uint64) {
	opTable[op] = opInfo{name: name, pops: pops, pushes: pushes, unit: unit, gas: gas, valid: true}
}

func init() {
	def(STOP, "STOP", 0, 0, FUControl, GasZero)

	def(ADD, "ADD", 2, 1, FUArithmetic, GasVeryLow)
	def(MUL, "MUL", 2, 1, FUArithmetic, GasLow)
	def(SUB, "SUB", 2, 1, FUArithmetic, GasVeryLow)
	def(DIV, "DIV", 2, 1, FUArithmetic, GasLow)
	def(SDIV, "SDIV", 2, 1, FUArithmetic, GasLow)
	def(MOD, "MOD", 2, 1, FUArithmetic, GasLow)
	def(SMOD, "SMOD", 2, 1, FUArithmetic, GasLow)
	def(ADDMOD, "ADDMOD", 3, 1, FUArithmetic, GasMid)
	def(MULMOD, "MULMOD", 3, 1, FUArithmetic, GasMid)
	def(EXP, "EXP", 2, 1, FUArithmetic, GasExp)
	def(SIGNEXTEND, "SIGNEXTEND", 2, 1, FUArithmetic, GasLow)

	def(LT, "LT", 2, 1, FULogic, GasVeryLow)
	def(GT, "GT", 2, 1, FULogic, GasVeryLow)
	def(SLT, "SLT", 2, 1, FULogic, GasVeryLow)
	def(SGT, "SGT", 2, 1, FULogic, GasVeryLow)
	def(EQ, "EQ", 2, 1, FULogic, GasVeryLow)
	def(ISZERO, "ISZERO", 1, 1, FULogic, GasVeryLow)
	def(AND, "AND", 2, 1, FULogic, GasVeryLow)
	def(OR, "OR", 2, 1, FULogic, GasVeryLow)
	def(XOR, "XOR", 2, 1, FULogic, GasVeryLow)
	def(NOT, "NOT", 1, 1, FULogic, GasVeryLow)
	def(BYTE, "BYTE", 2, 1, FULogic, GasVeryLow)
	def(SHL, "SHL", 2, 1, FULogic, GasVeryLow)
	def(SHR, "SHR", 2, 1, FULogic, GasVeryLow)
	def(SAR, "SAR", 2, 1, FULogic, GasVeryLow)

	def(SHA3, "SHA3", 2, 1, FUSHA, GasSha3)

	def(ADDRESS, "ADDRESS", 0, 1, FUFixedAccess, GasQuick)
	def(BALANCE, "BALANCE", 1, 1, FUStateQuery, GasBalance)
	def(ORIGIN, "ORIGIN", 0, 1, FUFixedAccess, GasQuick)
	def(CALLER, "CALLER", 0, 1, FUFixedAccess, GasQuick)
	def(CALLVALUE, "CALLVALUE", 0, 1, FUFixedAccess, GasQuick)
	def(CALLDATALOAD, "CALLDATALOAD", 1, 1, FUFixedAccess, GasVeryLow)
	def(CALLDATASIZE, "CALLDATASIZE", 0, 1, FUFixedAccess, GasQuick)
	def(CALLDATACOPY, "CALLDATACOPY", 3, 0, FUFixedAccess, GasVeryLow)
	def(CODESIZE, "CODESIZE", 0, 1, FUFixedAccess, GasQuick)
	def(CODECOPY, "CODECOPY", 3, 0, FUFixedAccess, GasVeryLow)
	def(GASPRICE, "GASPRICE", 0, 1, FUFixedAccess, GasQuick)
	def(EXTCODESIZE, "EXTCODESIZE", 1, 1, FUStateQuery, GasExtCode)
	def(EXTCODECOPY, "EXTCODECOPY", 4, 0, FUStateQuery, GasExtCode)
	def(RETURNDATASIZE, "RETURNDATASIZE", 0, 1, FUFixedAccess, GasQuick)
	def(RETURNDATACOPY, "RETURNDATACOPY", 3, 0, FUFixedAccess, GasVeryLow)
	def(EXTCODEHASH, "EXTCODEHASH", 1, 1, FUStateQuery, GasBalance)
	def(BLOCKHASH, "BLOCKHASH", 1, 1, FUFixedAccess, GasBlockhash)
	def(COINBASE, "COINBASE", 0, 1, FUFixedAccess, GasQuick)
	def(TIMESTAMP, "TIMESTAMP", 0, 1, FUFixedAccess, GasQuick)
	def(NUMBER, "NUMBER", 0, 1, FUFixedAccess, GasQuick)
	def(DIFFICULTY, "DIFFICULTY", 0, 1, FUFixedAccess, GasQuick)
	def(GASLIMIT, "GASLIMIT", 0, 1, FUFixedAccess, GasQuick)

	def(POP, "POP", 1, 0, FUStack, GasQuick)
	def(MLOAD, "MLOAD", 1, 1, FUMemory, GasVeryLow)
	def(MSTORE, "MSTORE", 2, 0, FUMemory, GasVeryLow)
	def(MSTORE8, "MSTORE8", 2, 0, FUMemory, GasVeryLow)
	def(SLOAD, "SLOAD", 1, 1, FUStorage, GasSload)
	def(SSTORE, "SSTORE", 2, 0, FUStorage, GasZero) // fully dynamic
	def(JUMP, "JUMP", 1, 0, FUBranch, GasMid)
	def(JUMPI, "JUMPI", 2, 0, FUBranch, GasHigh)
	def(PC, "PC", 0, 1, FUFixedAccess, GasQuick)
	def(MSIZE, "MSIZE", 0, 1, FUMemory, GasQuick)
	def(GAS, "GAS", 0, 1, FUFixedAccess, GasQuick)
	def(JUMPDEST, "JUMPDEST", 0, 0, FUBranch, GasJumpdest)

	for i := 0; i < 32; i++ {
		def(PUSH1+Opcode(i), fmt.Sprintf("PUSH%d", i+1), 0, 1, FUStack, GasVeryLow)
	}
	for i := 0; i < 16; i++ {
		def(DUP1+Opcode(i), fmt.Sprintf("DUP%d", i+1), i+1, i+2, FUStack, GasVeryLow)
	}
	for i := 0; i < 16; i++ {
		def(SWAP1+Opcode(i), fmt.Sprintf("SWAP%d", i+1), i+2, i+2, FUStack, GasVeryLow)
	}
	for i := 0; i <= 4; i++ {
		def(LOG0+Opcode(i), fmt.Sprintf("LOG%d", i), i+2, 0, FUMemory, GasLog)
	}

	def(CREATE, "CREATE", 3, 1, FUContext, GasCreate)
	def(CALL, "CALL", 7, 1, FUContext, GasCall)
	def(CALLCODE, "CALLCODE", 7, 1, FUContext, GasCall)
	def(RETURN, "RETURN", 2, 0, FUControl, GasZero)
	def(DELEGATECALL, "DELEGATECALL", 6, 1, FUContext, GasCall)
	def(CREATE2, "CREATE2", 4, 1, FUContext, GasCreate)
	def(STATICCALL, "STATICCALL", 6, 1, FUContext, GasCall)
	def(REVERT, "REVERT", 2, 0, FUControl, GasZero)
	def(INVALID, "INVALID", 0, 0, FUInvalid, GasZero)
}

// Valid reports whether op is a defined instruction.
func (op Opcode) Valid() bool { return opTable[op].valid }

// String returns the mnemonic (or a hex form for undefined opcodes).
func (op Opcode) String() string {
	if opTable[op].valid {
		return opTable[op].name
	}
	return fmt.Sprintf("opcode(0x%02x)", byte(op))
}

// Pops returns the number of stack operands consumed by op.
func (op Opcode) Pops() int { return opTable[op].pops }

// Pushes returns the number of stack results produced by op.
func (op Opcode) Pushes() int { return opTable[op].pushes }

// Unit returns the functional unit class of op.
func (op Opcode) Unit() FuncUnit {
	if !opTable[op].valid {
		return FUInvalid
	}
	return opTable[op].unit
}

// ConstGas returns the static gas component of op.
func (op Opcode) ConstGas() uint64 { return opTable[op].gas }

// OpcodeByName resolves a mnemonic ("ADD", "PUSH4", ...) to its opcode.
func OpcodeByName(name string) (Opcode, bool) {
	op, ok := nameToOp[name]
	return op, ok
}

// nameToOp is filled by init() after the def() calls populate opTable —
// a package-level composite initializer would run too early.
var nameToOp = make(map[string]Opcode, 160)

func init() {
	for i := 0; i < 256; i++ {
		if opTable[i].valid {
			nameToOp[opTable[i].name] = Opcode(i)
		}
	}
}
