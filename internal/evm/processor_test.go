package evm_test

import (
	"errors"
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

func newTxEnv(t *testing.T, code []byte) (*state.StateDB, *evm.EVM) {
	t.Helper()
	st := state.New()
	if code != nil {
		st.SetCode(contractAddr, code)
	}
	st.SetBalance(callerAddr, uint256.MustFromDecimal("10000000000000000000"))
	st.DiscardJournal()
	e := evm.New(evm.BlockContext{Coinbase: otherAddr, GasLimit: 30_000_000}, st)
	return st, e
}

func basicTx(data []byte, value, gasLimit, gasPrice uint64) *types.Transaction {
	to := contractAddr
	tx := &types.Transaction{
		Nonce:    0,
		GasPrice: gasPrice,
		GasLimit: gasLimit,
		From:     callerAddr,
		To:       &to,
		Data:     data,
	}
	tx.Value.SetUint64(value)
	return tx
}

func TestApplyTransactionAccounting(t *testing.T) {
	st, e := newTxEnv(t, mustAsm(t, "STOP"))
	before := st.GetBalance(callerAddr)

	tx := basicTx(nil, 1000, 100_000, 3)
	r, err := evm.ApplyTransaction(e, tx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != types.ReceiptSuccess || r.TxIndex != 5 {
		t.Fatalf("receipt %+v", r)
	}
	if r.GasUsed != evm.GasTxBase {
		t.Fatalf("gas used %d, want %d", r.GasUsed, evm.GasTxBase)
	}
	// Sender pays value + gasUsed*price exactly.
	after := st.GetBalance(callerAddr)
	var spent uint256.Int
	spent.Sub(before, after)
	want := 1000 + r.GasUsed*3
	if spent.Uint64() != want {
		t.Fatalf("sender spent %s, want %d", spent.String(), want)
	}
	// Miner receives the fee.
	if fee := st.GetBalance(otherAddr); fee.Uint64() != r.GasUsed*3 {
		t.Fatalf("coinbase got %s", fee)
	}
	// Contract received the value.
	if bal := st.GetBalance(contractAddr); bal.Uint64() != 1000 {
		t.Fatalf("contract balance %s", bal)
	}
	// Nonce advanced.
	if st.GetNonce(callerAddr) != 1 {
		t.Fatal("nonce not bumped")
	}
}

func TestApplyTransactionNonceMismatch(t *testing.T) {
	_, e := newTxEnv(t, mustAsm(t, "STOP"))
	tx := basicTx(nil, 0, 100_000, 1)
	tx.Nonce = 3
	if _, err := evm.ApplyTransaction(e, tx, 0); !errors.Is(err, evm.ErrNonceMismatch) {
		t.Fatalf("got %v", err)
	}
}

func TestApplyTransactionInsufficientFunds(t *testing.T) {
	st, e := newTxEnv(t, mustAsm(t, "STOP"))
	st.SetBalance(callerAddr, uint256.NewInt(100))
	tx := basicTx(nil, 0, 100_000, 1) // needs 100k wei for gas
	if _, err := evm.ApplyTransaction(e, tx, 0); !errors.Is(err, evm.ErrInsufficientFunds) {
		t.Fatalf("got %v", err)
	}
}

func TestApplyTransactionIntrinsicGasTooLow(t *testing.T) {
	_, e := newTxEnv(t, mustAsm(t, "STOP"))
	tx := basicTx([]byte{1, 2, 3, 4}, 0, evm.GasTxBase, 1)
	if _, err := evm.ApplyTransaction(e, tx, 0); !errors.Is(err, evm.ErrIntrinsicGas) {
		t.Fatalf("got %v", err)
	}
}

func TestRevertedTransactionChargesGasKeepsValue(t *testing.T) {
	st, e := newTxEnv(t, mustAsm(t, "PUSH1 0\nDUP1\nREVERT"))
	before := st.GetBalance(callerAddr)
	tx := basicTx(nil, 500, 100_000, 2)
	r, err := evm.ApplyTransaction(e, tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != types.ReceiptFailed {
		t.Fatal("revert not reflected in receipt")
	}
	// Value returned; only gas charged.
	after := st.GetBalance(callerAddr)
	var spent uint256.Int
	spent.Sub(before, after)
	if spent.Uint64() != r.GasUsed*2 {
		t.Fatalf("spent %s, gas-only would be %d", spent.String(), r.GasUsed*2)
	}
	if bal := st.GetBalance(contractAddr); !bal.IsZero() {
		t.Fatal("value kept by reverted callee")
	}
	// Nonce still advances for included transactions.
	if st.GetNonce(callerAddr) != 1 {
		t.Fatal("nonce not bumped on revert")
	}
	// Logs discarded.
	if len(r.Logs) != 0 {
		t.Fatal("reverted tx kept logs")
	}
}

func TestSstoreRefundCapped(t *testing.T) {
	// Clear a pre-existing slot: refund 15000, capped at gasUsed/2.
	st, e := newTxEnv(t, mustAsm(t, "PUSH1 0\nPUSH1 1\nSSTORE\nSTOP"))
	st.SetState(contractAddr, types.BytesToHash([]byte{1}), *uint256.NewInt(9))
	st.DiscardJournal()

	tx := basicTx(nil, 0, 100_000, 1)
	r, err := evm.ApplyTransaction(e, tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Without refund: base + 2 pushes + sstore-reset(5000).
	noRefund := evm.GasTxBase + 2*evm.GasVeryLow + evm.GasSstoreReset
	if r.GasUsed >= noRefund {
		t.Fatalf("no refund applied: used %d", r.GasUsed)
	}
	if r.GasUsed != noRefund-noRefund/2 {
		t.Fatalf("refund cap: used %d, want %d", r.GasUsed, noRefund-noRefund/2)
	}
}

func TestContractCreationTransaction(t *testing.T) {
	st, e := newTxEnv(t, nil)
	// Init code returning one STOP byte.
	init := []byte{
		byte(evm.PUSH1), 0x00, byte(evm.PUSH1), 0x00, byte(evm.MSTORE8),
		byte(evm.PUSH1), 0x01, byte(evm.PUSH1), 0x00, byte(evm.RETURN),
	}
	tx := &types.Transaction{
		Nonce: 0, GasPrice: 1, GasLimit: 200_000,
		From: callerAddr, To: nil, Data: init,
	}
	r, err := evm.ApplyTransaction(e, tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != types.ReceiptSuccess {
		t.Fatal("creation failed")
	}
	if r.ContractAddress.IsZero() {
		t.Fatal("no contract address in receipt")
	}
	if st.GetCodeSize(r.ContractAddress) != 1 {
		t.Fatalf("deployed size %d", st.GetCodeSize(r.ContractAddress))
	}
	want := types.CreateAddress(callerAddr, 0)
	if r.ContractAddress != want {
		t.Fatalf("address %s, want %s", r.ContractAddress, want)
	}
}

func TestExecuteBlockSequential(t *testing.T) {
	st, _ := newTxEnv(t, mustAsm(t, "STOP"))
	txs := []*types.Transaction{basicTx(nil, 1, 50_000, 1), basicTx(nil, 2, 50_000, 1)}
	txs[1].Nonce = 1
	block := types.NewBlock(types.BlockHeader{Coinbase: otherAddr, GasLimit: 30_000_000}, txs)
	receipts, err := evm.ExecuteBlockSequential(st, block, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(receipts) != 2 || receipts[1].TxIndex != 1 {
		t.Fatalf("receipts %+v", receipts)
	}
	if st.GetBalance(contractAddr).Uint64() != 3 {
		t.Fatal("values not applied in order")
	}
	// A stale nonce aborts the whole block.
	bad := types.NewBlock(block.Header, []*types.Transaction{basicTx(nil, 0, 50_000, 1)})
	bad.Transactions[0].Nonce = 99
	if _, err := evm.ExecuteBlockSequential(st, bad, nil); err == nil {
		t.Fatal("stale nonce accepted")
	}
}

func TestLogsAttachedToReceipt(t *testing.T) {
	_, e := newTxEnv(t, mustAsm(t, `
PUSH1 0
PUSH1 0
LOG0
STOP`))
	r, err := evm.ApplyTransaction(e, basicTx(nil, 0, 100_000, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Logs) != 1 {
		t.Fatalf("%d logs on receipt", len(r.Logs))
	}
}

func TestGasPrecisionPerOpcode(t *testing.T) {
	// Exact end-to-end gas for handcrafted programs, verifying the gas
	// unit charges precisely what the schedule says.
	cases := []struct {
		name string
		src  string
		want uint64
	}{
		{"stop", "STOP", 0},
		{"push-pop", "PUSH1 1\nPOP", evm.GasVeryLow + evm.GasQuick},
		{"add", "PUSH1 1\nPUSH1 2\nADD\nPOP",
			3*evm.GasVeryLow + evm.GasQuick},
		{"mstore-first-word", "PUSH1 1\nPUSH1 0\nMSTORE",
			// two pushes + mstore + 1 word of fresh memory
			3*evm.GasVeryLow + evm.GasMemoryWord},
		{"sha3-one-word", "PUSH1 32\nPUSH1 0\nSHA3\nPOP",
			2*evm.GasVeryLow + evm.GasSha3 + evm.GasSha3Word + evm.GasMemoryWord + evm.GasQuick},
		{"sload-cold", "PUSH1 5\nSLOAD\nPOP",
			evm.GasVeryLow + evm.GasSload + evm.GasQuick},
		{"jumpdest", "JUMPDEST", evm.GasJumpdest},
		{"exp-one-byte", "PUSH1 3\nPUSH1 2\nEXP\nPOP",
			2*evm.GasVeryLow + evm.GasExp + evm.GasExpByte + evm.GasQuick},
		{"log0-empty", "PUSH1 0\nPUSH1 0\nLOG0",
			2*evm.GasVeryLow + evm.GasLog},
	}
	for _, c := range cases {
		st := state.New()
		st.SetCode(contractAddr, mustAsm(t, c.src))
		e := evm.New(evm.BlockContext{}, st)
		_, left, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := 1_000_000 - left; got != c.want {
			t.Errorf("%s: gas %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCallToNewAccountWithValueSurcharge(t *testing.T) {
	// CALL with value to a non-existent account costs GasNewAccount extra.
	codeTo := func(addr string) []byte {
		return mustAsm(t, `
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 1
PUSH20 `+addr+`
PUSH3 0xFFFFFF
CALL
POP
STOP`)
	}
	gasOf := func(code []byte, pre func(*state.StateDB)) uint64 {
		st := state.New()
		st.SetCode(contractAddr, code)
		st.SetBalance(contractAddr, uint256.NewInt(1000))
		if pre != nil {
			pre(st)
		}
		st.DiscardJournal()
		e := evm.New(evm.BlockContext{}, st)
		_, left, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
		if err != nil {
			t.Fatal(err)
		}
		return 1_000_000 - left
	}
	fresh := "0x00000000000000000000000000000000000000e1"
	gNew := gasOf(codeTo(fresh), nil)
	gOld := gasOf(codeTo(fresh), func(st *state.StateDB) {
		st.SetBalance(types.HexToAddress(fresh), uint256.NewInt(1))
	})
	if gNew != gOld+evm.GasNewAccount {
		t.Fatalf("new-account surcharge: %d vs %d (+%d expected)",
			gNew, gOld, evm.GasNewAccount)
	}
}
