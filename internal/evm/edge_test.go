package evm_test

import (
	"bytes"
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

func TestCalldatacopyPadding(t *testing.T) {
	// Copy 64 bytes from a 4-byte calldata: tail must be zeros.
	code := mustAsm(t, `
PUSH1 64
PUSH1 0
PUSH1 0
CALLDATACOPY
PUSH1 64
PUSH1 0
RETURN`)
	ret, _, err := runCode(t, code, []byte{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64)
	copy(want, []byte{1, 2, 3, 4})
	if !bytes.Equal(ret, want) {
		t.Fatalf("got %x", ret)
	}
}

func TestCalldatacopyHugeSourceOffsetReadsZeros(t *testing.T) {
	code := mustAsm(t, `
PUSH1 32
PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
PUSH1 0
CALLDATACOPY
PUSH1 32
PUSH1 0
RETURN`)
	ret, _, err := runCode(t, code, []byte{0xAA, 0xBB}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ret, make([]byte, 32)) {
		t.Fatalf("huge offset read data: %x", ret)
	}
}

func TestCodecopyReadsOwnCode(t *testing.T) {
	code := mustAsm(t, `
PUSH1 4
PUSH1 0
PUSH1 0
CODECOPY
PUSH1 4
PUSH1 0
RETURN`)
	ret, _, err := runCode(t, code, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ret, code[:4]) {
		t.Fatalf("CODECOPY %x, want %x", ret, code[:4])
	}
}

func TestExtcodecopyEmptyAccount(t *testing.T) {
	code := mustAsm(t, `
PUSH1 8
PUSH1 0
PUSH1 0
PUSH20 0x00000000000000000000000000000000000000ee
EXTCODECOPY
PUSH1 8
PUSH1 0
RETURN`)
	ret, _, err := runCode(t, code, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ret, make([]byte, 8)) {
		t.Fatalf("empty-account EXTCODECOPY %x", ret)
	}
}

func TestBlockhashResolver(t *testing.T) {
	st := state.New()
	st.SetCode(contractAddr, mustAsm(t, "PUSH1 41\nBLOCKHASH"+retWord))
	e := evm.New(evm.BlockContext{
		Number: 42,
		BlockHash: func(n uint64) types.Hash {
			return types.BytesToHash([]byte{byte(n)})
		},
	}, st)
	ret, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 41 {
		t.Fatalf("BLOCKHASH = %s", got)
	}
	// Without a resolver: zero.
	ret, _, err = runCode(t, mustAsm(t, "PUSH1 41\nBLOCKHASH"+retWord), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("BLOCKHASH without resolver = %s", got)
	}
}

func TestGasPriceVisible(t *testing.T) {
	st := state.New()
	st.SetCode(contractAddr, mustAsm(t, "GASPRICE"+retWord))
	e := evm.New(evm.BlockContext{}, st)
	e.TxCtx = evm.TxContext{GasPrice: 17}
	ret, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.Uint64() != 17 {
		t.Fatalf("GASPRICE = %s", got)
	}
}

func TestDupSwapDepths(t *testing.T) {
	// DUP16 and SWAP16 at exact depths.
	var src string
	for i := 1; i <= 17; i++ {
		src += "PUSH1 " + itoa(i) + "\n"
	}
	// Stack top-first: 17,16,...,1. DUP16 copies depth 16 (= value 2).
	got := evalTop(t, src+"DUP16")
	if got.Uint64() != 2 {
		t.Fatalf("DUP16 = %s", got)
	}
	// SWAP16 exchanges top (17) with depth 17 (= value 1).
	got = evalTop(t, src+"SWAP16")
	if got.Uint64() != 1 {
		t.Fatalf("SWAP16 top = %s", got)
	}
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

func TestZeroSizeOpsCostNoMemory(t *testing.T) {
	// SHA3 / RETURN with size 0 at a huge offset must not expand memory.
	code := mustAsm(t, `
PUSH1 0
PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff0000
SHA3
POP
MSIZE`+retWord)
	ret, _, err := runCode(t, code, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); !got.IsZero() {
		t.Fatalf("MSIZE after zero-size SHA3 = %s", got)
	}
}

func TestMemoryGasOverflowRejected(t *testing.T) {
	// MSTORE at an offset beyond uint64 must fail with gas overflow, not
	// allocate.
	code := mustAsm(t, `
PUSH1 1
PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff
MSTORE`)
	_, _, err := runCode(t, code, nil, 0)
	if err == nil {
		t.Fatal("huge MSTORE accepted")
	}
}

func TestCallStipendAllowsReceiverLogging(t *testing.T) {
	// A value CALL with 0 requested gas still hands the callee the 2300
	// stipend — enough for a LOG0 (375+...) — verify stipend exists by
	// having the callee execute a few cheap ops.
	callee := mustAsm(t, "PUSH1 1\nPOP\nSTOP")
	caller := mustAsm(t, `
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 0
PUSH1 5   ; value
PUSH20 0x0123000000000000000000000000000000000003
PUSH1 0   ; request zero gas — stipend only
CALL`+retWord)
	st := state.New()
	st.SetCode(contractAddr, caller)
	st.SetCode(otherAddr, callee)
	st.SetBalance(contractAddr, uint256.NewInt(100))
	st.DiscardJournal()
	e := evm.New(evm.BlockContext{}, st)
	ret, _, err := e.Call(callerAddr, contractAddr, nil, 1_000_000, new(uint256.Int))
	if err != nil {
		t.Fatal(err)
	}
	if got := new(uint256.Int).SetBytes(ret); got.IsZero() {
		t.Fatal("stipend call failed")
	}
	if st.GetBalance(otherAddr).Uint64() != 5 {
		t.Fatal("value not transferred")
	}
}
