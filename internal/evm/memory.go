package evm

import (
	"mtpu/internal/uint256"
)

// Memory is the byte-addressed volatile memory of one call frame (the MEM
// unit of the in-core cache, Table 5). It grows in 32-byte words and its
// expansion is charged quadratically by the gas unit.
type Memory struct {
	data []byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// Len returns the current size in bytes (always a multiple of 32).
func (m *Memory) Len() uint64 { return uint64(len(m.data)) }

// Resize grows memory to cover at least size bytes, word-aligned.
func (m *Memory) Resize(size uint64) {
	if size == 0 {
		return
	}
	aligned := toWordSize(size) * 32
	if uint64(len(m.data)) < aligned {
		m.data = append(m.data, make([]byte, aligned-uint64(len(m.data)))...)
	}
}

// GetWord reads the 32-byte word at offset into w.
func (m *Memory) GetWord(offset uint64, w *uint256.Int) {
	m.Resize(offset + 32)
	w.SetBytes(m.data[offset : offset+32])
}

// SetWord writes w as a 32-byte big-endian word at offset.
func (m *Memory) SetWord(offset uint64, w *uint256.Int) {
	m.Resize(offset + 32)
	w.PutBytes32(m.data[offset : offset+32])
}

// SetByte writes the low byte of w at offset.
func (m *Memory) SetByte(offset uint64, w *uint256.Int) {
	m.Resize(offset + 1)
	m.data[offset] = byte(w.Uint64())
}

// Set copies b into memory at offset.
func (m *Memory) Set(offset uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	m.Resize(offset + uint64(len(b)))
	copy(m.data[offset:], b)
}

// GetCopy returns a fresh copy of size bytes at offset (zero-extended).
func (m *Memory) GetCopy(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	m.Resize(offset + size)
	out := make([]byte, size)
	copy(out, m.data[offset:offset+size])
	return out
}

// View returns a read-only view of size bytes at offset; the slice is only
// valid until the next Resize.
func (m *Memory) View(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	m.Resize(offset + size)
	return m.data[offset : offset+size]
}
