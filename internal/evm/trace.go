package evm

import (
	"mtpu/internal/types"
)

// Step describes one executed instruction. The architectural simulator
// replays streams of Steps through the MTPU pipeline model, so each Step
// carries exactly the information the hardware would see: address,
// operation, charged gas, and the externally visible accesses.
type Step struct {
	PC      uint64
	Op      Opcode
	GasCost uint64
	Depth   int
	// CodeAddr is the contract whose code is executing (the Call_Contract
	// stack entry); DB-cache lines are tagged with it.
	CodeAddr types.Address

	// StackLen is the stack depth before the instruction executes.
	StackLen int

	// Storage/state-query target (SLOAD, SSTORE, BALANCE, EXTCODE*).
	TouchAddr types.Address
	TouchSlot types.Hash
	// SstoreSet marks an SSTORE that wrote a fresh (zero → non-zero) slot.
	SstoreSet bool

	// Memory footprint of the instruction: offset and bytes touched, for
	// copy/hash cost modelling and for the hotspot analyzer's abstract
	// memory tracking.
	MemOffset uint64
	MemBytes  uint64

	// Branch outcome for JUMP/JUMPI.
	JumpTarget  uint64
	BranchTaken bool

	// CodeID and TouchID are dense interned ids assigned at trace-build
	// time by the per-block symbol table (arch.SymbolTable): CodeID names
	// CodeAddr, TouchID names the state-buffer key this step touches (the
	// storage slot for SLOAD/SSTORE, the account for state queries). Both
	// are 1-based; 0 means "not interned" and sends consumers down a
	// compatible slow path, so hand-built steps stay valid.
	CodeID  uint32
	TouchID uint32
}

// Tracer observes execution. Implementations must not retain the Step
// pointer past the call.
type Tracer interface {
	// OnEnter fires when a new call frame begins executing code.
	// codeLen is the size of the loaded contract bytecode — the dominant
	// part of the execution context (Table 2).
	OnEnter(depth int, codeAddr types.Address, codeLen int, inputLen int)
	// OnStep fires before each instruction, after gas has been charged.
	OnStep(step *Step)
	// OnExit fires when the frame finishes (err nil for normal return).
	OnExit(depth int, err error)
}

// NopTracer is a Tracer that records nothing.
type NopTracer struct{}

// OnEnter implements Tracer.
func (NopTracer) OnEnter(int, types.Address, int, int) {}

// OnStep implements Tracer.
func (NopTracer) OnStep(*Step) {}

// OnExit implements Tracer.
func (NopTracer) OnExit(int, error) {}
