package evm

import "errors"

// Execution errors. All of them (except ErrExecutionReverted) consume the
// remaining gas of the failing frame, mirroring Ethereum semantics.
var (
	// ErrOutOfGas is returned when the gas unit rejects an instruction
	// (§3.3.2: "the Gas unit subtracts the gas overhead of this
	// instruction; if it is insufficient, an exception is returned and the
	// transaction is aborted").
	ErrOutOfGas = errors.New("evm: out of gas")
	// ErrStackUnderflow is returned when an opcode pops more operands than
	// the stack holds.
	ErrStackUnderflow = errors.New("evm: stack underflow")
	// ErrStackOverflow is returned when the 1024-element limit is exceeded.
	ErrStackOverflow = errors.New("evm: stack overflow")
	// ErrInvalidJump is returned for a jump to a non-JUMPDEST position.
	ErrInvalidJump = errors.New("evm: invalid jump destination")
	// ErrInvalidOpcode is returned for undefined bytecodes.
	ErrInvalidOpcode = errors.New("evm: invalid opcode")
	// ErrWriteProtection is returned for state mutation inside STATICCALL.
	ErrWriteProtection = errors.New("evm: write protection")
	// ErrCallDepth is returned when the 1024-frame call depth is exceeded.
	ErrCallDepth = errors.New("evm: max call depth exceeded")
	// ErrInsufficientBalance is returned when a value transfer cannot be funded.
	ErrInsufficientBalance = errors.New("evm: insufficient balance for transfer")
	// ErrReturnDataOutOfBounds is returned by RETURNDATACOPY past the buffer.
	ErrReturnDataOutOfBounds = errors.New("evm: return data out of bounds")
	// ErrExecutionReverted is returned by REVERT; remaining gas is refunded.
	ErrExecutionReverted = errors.New("evm: execution reverted")
	// ErrGasUintOverflow is returned when a gas computation overflows uint64.
	ErrGasUintOverflow = errors.New("evm: gas uint64 overflow")
	// ErrNonceMismatch is returned by ApplyTransaction for a stale nonce.
	ErrNonceMismatch = errors.New("evm: transaction nonce mismatch")
	// ErrInsufficientFunds is returned when the sender cannot pay gas*price+value.
	ErrInsufficientFunds = errors.New("evm: insufficient funds for gas * price + value")
	// ErrIntrinsicGas is returned when the gas limit is below the intrinsic cost.
	ErrIntrinsicGas = errors.New("evm: intrinsic gas exceeds gas limit")
)
