package evm_test

import (
	"fmt"
	"testing"

	"mtpu/internal/evm"
)

func TestPushFamilyMetadata(t *testing.T) {
	for i := 0; i < 32; i++ {
		op := evm.PUSH1 + evm.Opcode(i)
		if !op.IsPush() {
			t.Errorf("%s not recognized as push", op)
		}
		if got := op.PushSize(); got != i+1 {
			t.Errorf("%s push size %d, want %d", op, got, i+1)
		}
		if op.Pops() != 0 || op.Pushes() != 1 {
			t.Errorf("%s pops/pushes wrong", op)
		}
		if op.String() != fmt.Sprintf("PUSH%d", i+1) {
			t.Errorf("%s name wrong", op)
		}
	}
	if evm.ADD.IsPush() || evm.ADD.PushSize() != 0 {
		t.Error("ADD misclassified as push")
	}
}

func TestDupSwapMetadata(t *testing.T) {
	for i := 0; i < 16; i++ {
		dup := evm.DUP1 + evm.Opcode(i)
		if !dup.IsDup() {
			t.Errorf("%s not dup", dup)
		}
		if dup.Pops() != i+1 || dup.Pushes() != i+2 {
			t.Errorf("%s pops=%d pushes=%d", dup, dup.Pops(), dup.Pushes())
		}
		swap := evm.SWAP1 + evm.Opcode(i)
		if !swap.IsSwap() {
			t.Errorf("%s not swap", swap)
		}
		if swap.Pops() != i+2 || swap.Pushes() != i+2 {
			t.Errorf("%s pops=%d pushes=%d", swap, swap.Pops(), swap.Pushes())
		}
	}
}

func TestFunctionalUnitAssignment(t *testing.T) {
	// Spot checks against Table 3.
	cases := map[evm.Opcode]evm.FuncUnit{
		evm.ADD:          evm.FUArithmetic,
		evm.EXP:          evm.FUArithmetic,
		evm.LT:           evm.FULogic,
		evm.SAR:          evm.FULogic,
		evm.SHA3:         evm.FUSHA,
		evm.CALLER:       evm.FUFixedAccess,
		evm.CALLDATALOAD: evm.FUFixedAccess,
		evm.BLOCKHASH:    evm.FUFixedAccess,
		evm.BALANCE:      evm.FUStateQuery,
		evm.EXTCODEHASH:  evm.FUStateQuery,
		evm.MLOAD:        evm.FUMemory,
		evm.LOG4:         evm.FUMemory,
		evm.SLOAD:        evm.FUStorage,
		evm.SSTORE:       evm.FUStorage,
		evm.JUMP:         evm.FUBranch,
		evm.JUMPDEST:     evm.FUBranch,
		evm.POP:          evm.FUStack,
		evm.PUSH32:       evm.FUStack,
		evm.SWAP16:       evm.FUStack,
		evm.STOP:         evm.FUControl,
		evm.RETURN:       evm.FUControl,
		evm.REVERT:       evm.FUControl,
		evm.CALL:         evm.FUContext,
		evm.CREATE2:      evm.FUContext,
		evm.STATICCALL:   evm.FUContext,
	}
	for op, want := range cases {
		if got := op.Unit(); got != want {
			t.Errorf("%s unit = %s, want %s", op, got, want)
		}
	}
	if evm.Opcode(0xef).Unit() != evm.FUInvalid {
		t.Error("undefined opcode should map to FUInvalid")
	}
}

func TestOpcodeByNameRoundTrip(t *testing.T) {
	count := 0
	for i := 0; i < 256; i++ {
		op := evm.Opcode(i)
		if !op.Valid() {
			continue
		}
		count++
		back, ok := evm.OpcodeByName(op.String())
		if !ok {
			t.Errorf("OpcodeByName(%s) missing", op)
			continue
		}
		if back != op {
			t.Errorf("OpcodeByName(%s) = %s", op, back)
		}
	}
	if count < 130 {
		t.Errorf("only %d valid opcodes defined", count)
	}
	if _, ok := evm.OpcodeByName("FROBNICATE"); ok {
		t.Error("unknown mnemonic resolved")
	}
}

func TestTable3Coverage(t *testing.T) {
	// Every opcode named in Table 3 must be implemented.
	names := []string{
		"ADD", "MUL", "SUB", "DIV", "SDIV", "MOD", "SMOD", "ADDMOD",
		"MULMOD", "EXP", "SIGNEXTEND",
		"LT", "GT", "SLT", "SGT", "EQ", "ISZERO", "AND", "OR", "XOR", "NOT",
		"SHA3",
		"ADDRESS", "ORIGIN", "CALLER", "CALLVALUE", "GASPRICE",
		"CALLDATALOAD", "CALLDATASIZE", "CALLDATACOPY", "CODESIZE",
		"BLOCKHASH", "GASLIMIT", "PC", "GAS",
		"BALANCE", "EXTCODESIZE", "EXTCODECOPY", "EXTCODEHASH",
		"MLOAD", "MSTORE", "MSTORE8", "MSIZE", "LOG0", "LOG4",
		"SLOAD", "SSTORE",
		"JUMP", "JUMPI", "JUMPDEST",
		"POP", "PUSH1", "PUSH32", "DUP1", "DUP16", "SWAP1", "SWAP16",
		"STOP", "RETURN", "REVERT",
		"CREATE", "CALL", "CALLCODE", "DELEGATECALL", "CREATE2", "STATICCALL",
	}
	for _, n := range names {
		if _, ok := evm.OpcodeByName(n); !ok {
			t.Errorf("Table 3 opcode %s not implemented", n)
		}
	}
}

func TestGasTiers(t *testing.T) {
	if evm.ADD.ConstGas() != evm.GasVeryLow {
		t.Error("ADD gas tier")
	}
	if evm.MUL.ConstGas() != evm.GasLow {
		t.Error("MUL gas tier")
	}
	if evm.JUMPI.ConstGas() != evm.GasHigh {
		t.Error("JUMPI gas tier")
	}
	if evm.SLOAD.ConstGas() != evm.GasSload {
		t.Error("SLOAD gas tier")
	}
	if evm.STOP.ConstGas() != 0 || evm.RETURN.ConstGas() != 0 {
		t.Error("zero-tier opcodes")
	}
}

func TestIntrinsicGas(t *testing.T) {
	if got := evm.IntrinsicGas(nil, false); got != evm.GasTxBase {
		t.Errorf("empty tx intrinsic = %d", got)
	}
	data := []byte{0, 0, 1, 2} // 2 zero + 2 non-zero
	want := evm.GasTxBase + 2*evm.GasTxDataZero + 2*evm.GasTxDataNonZero
	if got := evm.IntrinsicGas(data, false); got != want {
		t.Errorf("data intrinsic = %d, want %d", got, want)
	}
	if got := evm.IntrinsicGas(nil, true); got != evm.GasTxBase+evm.GasCreate {
		t.Errorf("creation intrinsic = %d", got)
	}
}

func TestFuncUnitString(t *testing.T) {
	if evm.FUArithmetic.String() != "Arithmetic" {
		t.Error("FUArithmetic name")
	}
	if evm.FUContext.String() != "Context switching" {
		t.Error("FUContext name")
	}
	if evm.FuncUnit(200).String() == "" {
		t.Error("out-of-range FuncUnit should still format")
	}
}
