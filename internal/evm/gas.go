package evm

// Gas schedule. Every instruction carries a deterministic gas cost
// (§2.1): consistency requires the amount of gas consumed by a transaction
// to be uniquely determined, which is why the MTPU's ILP must be
// conservative. The constants follow the Ethereum yellow-paper fee tiers.
const (
	GasZero     uint64 = 0
	GasQuick    uint64 = 2
	GasVeryLow  uint64 = 3
	GasLow      uint64 = 5
	GasMid      uint64 = 8
	GasHigh     uint64 = 10
	GasExp      uint64 = 10
	GasExpByte  uint64 = 50
	GasSha3     uint64 = 30
	GasSha3Word uint64 = 6
	GasCopyWord uint64 = 3
	GasJumpdest uint64 = 1

	GasBalance   uint64 = 400
	GasExtCode   uint64 = 700
	GasBlockhash uint64 = 20
	GasSload     uint64 = 200

	// SSTORE: set a zero slot to non-zero / modify a non-zero slot /
	// refund for clearing a slot.
	GasSstoreSet    uint64 = 20000
	GasSstoreReset  uint64 = 5000
	GasSstoreRefund uint64 = 15000

	GasLog      uint64 = 375
	GasLogTopic uint64 = 375
	GasLogByte  uint64 = 8

	GasCreate        uint64 = 32000
	GasCall          uint64 = 700
	GasCallValue     uint64 = 9000
	GasCallStipend   uint64 = 2300
	GasNewAccount    uint64 = 25000
	GasCodeDeposit   uint64 = 200 // per byte of deployed code
	GasMemoryWord    uint64 = 3
	GasQuadCoeffDiv  uint64 = 512
	GasTxBase        uint64 = 21000
	GasTxDataZero    uint64 = 4
	GasTxDataNonZero uint64 = 16
)

// IntrinsicGas returns the up-front transaction cost: the base fee plus
// per-byte calldata fees (and the creation surcharge).
func IntrinsicGas(data []byte, isCreation bool) uint64 {
	gas := GasTxBase
	if isCreation {
		gas += GasCreate
	}
	for _, b := range data {
		if b == 0 {
			gas += GasTxDataZero
		} else {
			gas += GasTxDataNonZero
		}
	}
	return gas
}

// toWordSize returns ceil(size/32).
func toWordSize(size uint64) uint64 {
	return (size + 31) / 32
}

// memoryGas returns the total gas attributable to a memory of the given
// byte size: Gmem*words + words²/Gquadcoeffdiv.
func memoryGas(size uint64) uint64 {
	words := toWordSize(size)
	return GasMemoryWord*words + words*words/GasQuadCoeffDiv
}

// memoryExpansionGas returns the incremental cost of growing memory from
// oldSize to newSize bytes (0 if no growth).
func memoryExpansionGas(oldSize, newSize uint64) uint64 {
	if newSize <= oldSize {
		return 0
	}
	return memoryGas(newSize) - memoryGas(oldSize)
}
