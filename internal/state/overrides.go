package state

import (
	"sort"

	"mtpu/internal/keccak"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// accountOverride is a sparse per-account patch: only the fields that
// were explicitly set participate; everything else falls through to the
// base account.
type accountOverride struct {
	nonce    *uint64
	balance  *uint256.Int
	code     []byte
	codeHash types.Hash
	hasCode  bool
	// storage maps slot -> value; a zero value means "slot deleted",
	// matching SetState's delete-on-zero convention.
	storage map[types.Hash]uint256.Int
}

// Overrides is a sparse state patch that can be layered over a StateDB
// for digest computation without copying the base. It is how the
// multi-version state layer prices a block's write-set: DigestWith
// walks base ∪ overrides and hashes the merged view byte-identically
// to folding the writes in and calling Digest on the result.
type Overrides struct {
	accounts map[types.Address]*accountOverride
}

// NewOverrides returns an empty override set.
func NewOverrides() *Overrides {
	return &Overrides{accounts: make(map[types.Address]*accountOverride)}
}

// Len returns the number of overridden accounts.
func (o *Overrides) Len() int { return len(o.accounts) }

func (o *Overrides) acct(addr types.Address) *accountOverride {
	ov := o.accounts[addr]
	if ov == nil {
		ov = &accountOverride{}
		o.accounts[addr] = ov
	}
	return ov
}

// SetBalance overrides addr's balance.
func (o *Overrides) SetBalance(addr types.Address, v *uint256.Int) {
	o.acct(addr).balance = new(uint256.Int).Set(v)
}

// SetNonce overrides addr's nonce.
func (o *Overrides) SetNonce(addr types.Address, n uint64) {
	ov := o.acct(addr)
	ov.nonce = new(uint64)
	*ov.nonce = n
}

// SetCode overrides addr's code. The caller may pass the known keccak
// hash to avoid recomputation; a zero hash with non-empty code is
// recomputed here.
func (o *Overrides) SetCode(addr types.Address, code []byte, hash types.Hash) {
	ov := o.acct(addr)
	ov.code = code
	if hash == (types.Hash{}) && len(code) > 0 {
		hash = types.Hash(keccak.Sum256(code))
	}
	ov.codeHash = hash
	ov.hasCode = true
}

// SetState overrides one storage slot (zero value deletes the slot,
// matching StateDB.SetState).
func (o *Overrides) SetState(addr types.Address, slot types.Hash, v uint256.Int) {
	ov := o.acct(addr)
	if ov.storage == nil {
		ov.storage = make(map[types.Hash]uint256.Int)
	}
	ov.storage[slot] = v
}

// DigestWith computes the digest of the state that would result from
// applying o on top of s, without mutating or copying s. The byte
// layout, account ordering and the skip-empty rule are identical to
// Digest, so DigestWith(o) == apply(o).Digest() for every override set.
// A nil o degenerates to Digest. The receiver is only read.
func (s *StateDB) DigestWith(o *Overrides) types.Hash {
	if o == nil || len(o.accounts) == 0 {
		return s.Digest()
	}

	// merged scalar view of one account (storage handled separately).
	type merged struct {
		nonce    uint64
		balance  uint256.Int
		codeLen  int
		codeHash types.Hash
	}
	resolve := func(addr types.Address) (merged, []types.Hash, func(types.Hash) uint256.Int) {
		acc := s.accounts[addr]
		ov := o.accounts[addr]
		var m merged
		if acc != nil {
			m.nonce = acc.Nonce
			m.balance = acc.Balance
			m.codeLen = len(acc.Code)
			m.codeHash = acc.CodeHash
		}
		if ov != nil {
			if ov.nonce != nil {
				m.nonce = *ov.nonce
			}
			if ov.balance != nil {
				m.balance = *ov.balance
			}
			if ov.hasCode {
				m.codeLen = len(ov.code)
				m.codeHash = ov.codeHash
			}
		}
		// Merged live slots: base slots not overridden, plus overridden
		// slots with non-zero values (zero override deletes the slot).
		var slots []types.Hash
		if acc != nil {
			for slot := range acc.Storage {
				if ov != nil && ov.storage != nil {
					if _, over := ov.storage[slot]; over {
						continue
					}
				}
				slots = append(slots, slot)
			}
		}
		if ov != nil {
			for slot, v := range ov.storage {
				if !v.IsZero() {
					slots = append(slots, slot)
				}
			}
		}
		value := func(slot types.Hash) uint256.Int {
			if ov != nil && ov.storage != nil {
				if v, over := ov.storage[slot]; over {
					return v
				}
			}
			return acc.Storage[slot]
		}
		return m, slots, value
	}

	addrs := make([]types.Address, 0, len(s.accounts)+len(o.accounts))
	type entry struct {
		m     merged
		slots []types.Hash
		value func(types.Hash) uint256.Int
	}
	entries := make(map[types.Address]*entry, len(s.accounts)+len(o.accounts))
	consider := func(addr types.Address) {
		if _, seen := entries[addr]; seen {
			return
		}
		m, slots, value := resolve(addr)
		// Same skip-empty rule as Digest, evaluated on merged values.
		if m.nonce == 0 && m.balance.IsZero() && m.codeLen == 0 && len(slots) == 0 {
			return
		}
		entries[addr] = &entry{m: m, slots: slots, value: value}
		addrs = append(addrs, addr)
	}
	for addr := range s.accounts {
		consider(addr)
	}
	for addr := range o.accounts {
		consider(addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return string(addrs[i][:]) < string(addrs[j][:])
	})

	var h keccak.Hasher
	var u64buf [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			u64buf[i] = byte(v >> (56 - 8*i))
		}
		h.Write(u64buf[:])
	}
	for _, addr := range addrs {
		e := entries[addr]
		h.Write(addr[:])
		writeU64(e.m.nonce)
		b := e.m.balance.Bytes32()
		h.Write(b[:])
		h.Write(e.m.codeHash[:])

		sort.Slice(e.slots, func(i, j int) bool {
			return string(e.slots[i][:]) < string(e.slots[j][:])
		})
		for _, slot := range e.slots {
			v := e.value(slot)
			h.Write(slot[:])
			vb := v.Bytes32()
			h.Write(vb[:])
		}
	}
	return types.Hash(h.Sum256())
}
