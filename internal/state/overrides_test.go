package state

import (
	"testing"

	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// applyOverrides mirrors what the mvstate fold does: the same writes
// expressed as StateDB mutations on a copy.
func applyOverrides(st *StateDB, mutate func(*StateDB)) types.Hash {
	cp := st.Copy()
	mutate(cp)
	return cp.Digest()
}

// TestDigestWithMatchesAppliedDigest is the override-layer contract:
// for every kind of patch, DigestWith(o) must be byte-identical to
// folding the same writes into a copy and calling Digest. The stream
// pipeline prices each block's digest this way before committing, so
// any divergence here would make chained digest continuity impossible.
func TestDigestWithMatchesAppliedDigest(t *testing.T) {
	base := New()
	base.SetBalance(addrA, uint256.NewInt(100))
	base.SetNonce(addrA, 3)
	base.SetState(addrA, slot1, *uint256.NewInt(7))
	base.SetState(addrA, slot2, *uint256.NewInt(8))
	base.SetBalance(addrB, uint256.NewInt(50))
	base.SetCode(addrB, []byte{0x60, 0x01})
	base.DiscardJournal()

	addrC := types.HexToAddress("0xcccc000000000000000000000000000000000003")

	cases := []struct {
		name     string
		override func(*Overrides)
		apply    func(*StateDB)
	}{
		{
			"scalar fields",
			func(o *Overrides) {
				o.SetBalance(addrA, uint256.NewInt(42))
				o.SetNonce(addrA, 9)
			},
			func(st *StateDB) {
				st.SetBalance(addrA, uint256.NewInt(42))
				st.SetNonce(addrA, 9)
			},
		},
		{
			"storage set and delete",
			func(o *Overrides) {
				o.SetState(addrA, slot1, *uint256.NewInt(99))
				o.SetState(addrA, slot2, uint256.Int{}) // zero deletes
			},
			func(st *StateDB) {
				st.SetState(addrA, slot1, *uint256.NewInt(99))
				st.SetState(addrA, slot2, uint256.Int{})
			},
		},
		{
			"code replacement",
			func(o *Overrides) { o.SetCode(addrB, []byte{0x61, 0x02, 0x03}, types.Hash{}) },
			func(st *StateDB) { st.SetCode(addrB, []byte{0x61, 0x02, 0x03}) },
		},
		{
			"new account",
			func(o *Overrides) {
				o.SetBalance(addrC, uint256.NewInt(5))
				o.SetState(addrC, slot1, *uint256.NewInt(1))
			},
			func(st *StateDB) {
				st.SetBalance(addrC, uint256.NewInt(5))
				st.SetState(addrC, slot1, *uint256.NewInt(1))
			},
		},
		{
			"account emptied by override",
			func(o *Overrides) {
				o.SetBalance(addrB, new(uint256.Int))
				o.SetCode(addrB, nil, types.Hash{})
			},
			func(st *StateDB) {
				st.SetBalance(addrB, new(uint256.Int))
				st.SetCode(addrB, nil)
			},
		},
		{
			"override equal to base value",
			func(o *Overrides) { o.SetBalance(addrA, uint256.NewInt(100)) },
			func(st *StateDB) { st.SetBalance(addrA, uint256.NewInt(100)) },
		},
	}
	for _, c := range cases {
		o := NewOverrides()
		c.override(o)
		got := base.DigestWith(o)
		want := applyOverrides(base, c.apply)
		if got != want {
			t.Errorf("%s: DigestWith %s != applied digest %s", c.name, got, want)
		}
	}

	// DigestWith must not mutate the receiver.
	clean := base.Digest()
	o := NewOverrides()
	o.SetBalance(addrA, uint256.NewInt(1))
	base.DigestWith(o)
	if base.Digest() != clean {
		t.Fatal("DigestWith mutated the base state")
	}
	if base.GetBalance(addrA).Uint64() != 100 {
		t.Fatal("DigestWith wrote the override into the base")
	}
}

// TestDigestWithNilAndEmpty pins the degenerate forms to plain Digest.
func TestDigestWithNilAndEmpty(t *testing.T) {
	st := New()
	st.SetBalance(addrA, uint256.NewInt(12))
	if st.DigestWith(nil) != st.Digest() {
		t.Error("nil overrides diverged from Digest")
	}
	if st.DigestWith(NewOverrides()) != st.Digest() {
		t.Error("empty overrides diverged from Digest")
	}
}

// TestDigestWithSkipEmptyRule checks the merged skip-empty rule: an
// account that is empty in the base but given substance only by the
// override must appear, and overriding every field of a base account to
// zero must drop it — exactly as if the writes had been applied.
func TestDigestWithSkipEmptyRule(t *testing.T) {
	st := New()
	st.SetBalance(addrA, uint256.NewInt(1))
	st.DiscardJournal()

	// Substance from the override alone.
	o := NewOverrides()
	o.SetNonce(addrB, 1)
	if st.DigestWith(o) == st.Digest() {
		t.Error("override-only account invisible in DigestWith")
	}

	// Zeroing the only non-empty field must drop the account, matching
	// what applying the write then digesting would produce.
	o2 := NewOverrides()
	o2.SetBalance(addrA, new(uint256.Int))
	if got, want := st.DigestWith(o2), New().Digest(); got != want {
		t.Errorf("emptied account still digests: %s != empty-state %s", got, want)
	}
}
