// Package state implements the world state substrate: accounts with
// balances, nonces, code and contract storage (the State rows of Table 4),
// with snapshot/revert journaling for transaction aborts, access-set
// recording for dependency-DAG construction, and deterministic digests for
// serializability checks across execution modes.
package state

import (
	"fmt"
	"sort"

	"mtpu/internal/keccak"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// Account is the in-memory representation of one address.
type Account struct {
	Nonce   uint64
	Balance uint256.Int
	Code    []byte
	// CodeHash caches keccak(Code); zero hash for empty code.
	CodeHash types.Hash
	Storage  map[types.Hash]uint256.Int
}

func newAccount() *Account {
	return &Account{Storage: make(map[types.Hash]uint256.Int)}
}

func (a *Account) copy() *Account {
	c := &Account{
		Nonce:    a.Nonce,
		Balance:  a.Balance,
		CodeHash: a.CodeHash,
		Storage:  make(map[types.Hash]uint256.Int, len(a.Storage)),
	}
	c.Code = append([]byte(nil), a.Code...)
	for k, v := range a.Storage {
		c.Storage[k] = v
	}
	return c
}

// AccessKind classifies recorded state accesses.
type AccessKind uint8

// Access kinds recorded when access recording is enabled.
const (
	AccessBalance AccessKind = iota
	AccessNonce
	AccessCode
	AccessStorage
)

// AccessKey identifies one piece of state touched by a transaction.
type AccessKey struct {
	Kind AccessKind
	Addr types.Address
	Slot types.Hash // meaningful only for AccessStorage
}

// AccessSet is a set of touched state locations.
type AccessSet map[AccessKey]struct{}

// Overlaps reports whether a shares any key with b.
func (a AccessSet) Overlaps(b AccessSet) bool {
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	for k := range small {
		if _, ok := large[k]; ok {
			return true
		}
	}
	return false
}

// StateDB is a journaled in-memory world state. It is not safe for
// concurrent mutation; the simulator serializes access through the State
// Buffer model.
type StateDB struct {
	accounts map[types.Address]*Account

	journal []journalEntry
	logs    []*types.Log
	refund  uint64

	recording bool
	reads     AccessSet
	writes    AccessSet
}

// New returns an empty world state.
func New() *StateDB {
	return &StateDB{accounts: make(map[types.Address]*Account)}
}

// Copy returns a deep copy of the state. Journals, logs and access
// recordings are not carried over.
func (s *StateDB) Copy() *StateDB {
	c := New()
	for addr, acc := range s.accounts {
		c.accounts[addr] = acc.copy()
	}
	return c
}

type journalEntry interface {
	revert(*StateDB)
}

type (
	createEntry  struct{ addr types.Address }
	balanceEntry struct {
		addr types.Address
		prev uint256.Int
	}
	nonceEntry struct {
		addr types.Address
		prev uint64
	}
	codeEntry struct {
		addr     types.Address
		prevCode []byte
		prevHash types.Hash
	}
	storageEntry struct {
		addr    types.Address
		slot    types.Hash
		prev    uint256.Int
		existed bool
	}
	logEntry    struct{}
	refundEntry struct{ prev uint64 }
)

func (e createEntry) revert(s *StateDB) { delete(s.accounts, e.addr) }
func (e balanceEntry) revert(s *StateDB) {
	if acc := s.accounts[e.addr]; acc != nil {
		acc.Balance = e.prev
	}
}
func (e nonceEntry) revert(s *StateDB) {
	if acc := s.accounts[e.addr]; acc != nil {
		acc.Nonce = e.prev
	}
}
func (e codeEntry) revert(s *StateDB) {
	if acc := s.accounts[e.addr]; acc != nil {
		acc.Code = e.prevCode
		acc.CodeHash = e.prevHash
	}
}
func (e storageEntry) revert(s *StateDB) {
	if acc := s.accounts[e.addr]; acc != nil {
		if e.existed {
			acc.Storage[e.slot] = e.prev
		} else {
			delete(acc.Storage, e.slot)
		}
	}
}
func (e logEntry) revert(s *StateDB)    { s.logs = s.logs[:len(s.logs)-1] }
func (e refundEntry) revert(s *StateDB) { s.refund = e.prev }

// Snapshot returns an identifier for the current journal position.
func (s *StateDB) Snapshot() int { return len(s.journal) }

// RevertToSnapshot undoes every change journaled after the snapshot.
func (s *StateDB) RevertToSnapshot(id int) {
	if id < 0 || id > len(s.journal) {
		panic(fmt.Sprintf("state: invalid snapshot id %d (journal length %d)", id, len(s.journal)))
	}
	for i := len(s.journal) - 1; i >= id; i-- {
		s.journal[i].revert(s)
	}
	s.journal = s.journal[:id]
}

// DiscardJournal forgets undo history (e.g. after a committed transaction)
// without touching current values.
func (s *StateDB) DiscardJournal() {
	s.journal = s.journal[:0]
}

func (s *StateDB) getOrCreate(addr types.Address) *Account {
	acc := s.accounts[addr]
	if acc == nil {
		acc = newAccount()
		s.accounts[addr] = acc
		s.journal = append(s.journal, createEntry{addr})
	}
	return acc
}

// Exist reports whether the account has ever been touched.
func (s *StateDB) Exist(addr types.Address) bool {
	_, ok := s.accounts[addr]
	return ok
}

// CreateAccount ensures an account exists at addr.
func (s *StateDB) CreateAccount(addr types.Address) {
	s.getOrCreate(addr)
}

// GetBalance returns the balance of addr (zero for missing accounts).
func (s *StateDB) GetBalance(addr types.Address) *uint256.Int {
	s.record(&s.reads, AccessKey{Kind: AccessBalance, Addr: addr})
	if acc := s.accounts[addr]; acc != nil {
		return acc.Balance.Clone()
	}
	return new(uint256.Int)
}

// SetBalance overwrites the balance of addr.
func (s *StateDB) SetBalance(addr types.Address, v *uint256.Int) {
	s.record(&s.writes, AccessKey{Kind: AccessBalance, Addr: addr})
	acc := s.getOrCreate(addr)
	s.journal = append(s.journal, balanceEntry{addr, acc.Balance})
	acc.Balance.Set(v)
}

// AddBalance credits addr by v.
func (s *StateDB) AddBalance(addr types.Address, v *uint256.Int) {
	s.record(&s.writes, AccessKey{Kind: AccessBalance, Addr: addr})
	acc := s.getOrCreate(addr)
	s.journal = append(s.journal, balanceEntry{addr, acc.Balance})
	acc.Balance.Add(&acc.Balance, v)
}

// SubBalance debits addr by v (wraps on underflow; callers check first).
func (s *StateDB) SubBalance(addr types.Address, v *uint256.Int) {
	s.record(&s.writes, AccessKey{Kind: AccessBalance, Addr: addr})
	acc := s.getOrCreate(addr)
	s.journal = append(s.journal, balanceEntry{addr, acc.Balance})
	acc.Balance.Sub(&acc.Balance, v)
}

// GetNonce returns the nonce of addr.
func (s *StateDB) GetNonce(addr types.Address) uint64 {
	s.record(&s.reads, AccessKey{Kind: AccessNonce, Addr: addr})
	if acc := s.accounts[addr]; acc != nil {
		return acc.Nonce
	}
	return 0
}

// SetNonce overwrites the nonce of addr.
func (s *StateDB) SetNonce(addr types.Address, n uint64) {
	s.record(&s.writes, AccessKey{Kind: AccessNonce, Addr: addr})
	acc := s.getOrCreate(addr)
	s.journal = append(s.journal, nonceEntry{addr, acc.Nonce})
	acc.Nonce = n
}

// GetCode returns the contract code at addr (nil if none).
func (s *StateDB) GetCode(addr types.Address) []byte {
	s.record(&s.reads, AccessKey{Kind: AccessCode, Addr: addr})
	if acc := s.accounts[addr]; acc != nil {
		return acc.Code
	}
	return nil
}

// GetCodeSize returns len(code) at addr.
func (s *StateDB) GetCodeSize(addr types.Address) int {
	return len(s.GetCode(addr))
}

// GetCodeHash returns keccak(code) or the zero hash for empty accounts.
func (s *StateDB) GetCodeHash(addr types.Address) types.Hash {
	s.record(&s.reads, AccessKey{Kind: AccessCode, Addr: addr})
	if acc := s.accounts[addr]; acc != nil {
		return acc.CodeHash
	}
	return types.Hash{}
}

// SetCode installs contract code at addr.
func (s *StateDB) SetCode(addr types.Address, code []byte) {
	s.record(&s.writes, AccessKey{Kind: AccessCode, Addr: addr})
	acc := s.getOrCreate(addr)
	s.journal = append(s.journal, codeEntry{addr, acc.Code, acc.CodeHash})
	acc.Code = append([]byte(nil), code...)
	if len(code) == 0 {
		acc.CodeHash = types.Hash{}
	} else {
		acc.CodeHash = types.Hash(keccak.Sum256(code))
	}
}

// GetState reads a storage slot.
func (s *StateDB) GetState(addr types.Address, slot types.Hash) uint256.Int {
	s.record(&s.reads, AccessKey{Kind: AccessStorage, Addr: addr, Slot: slot})
	if acc := s.accounts[addr]; acc != nil {
		return acc.Storage[slot]
	}
	return uint256.Int{}
}

// SetState writes a storage slot.
func (s *StateDB) SetState(addr types.Address, slot types.Hash, v uint256.Int) {
	s.record(&s.writes, AccessKey{Kind: AccessStorage, Addr: addr, Slot: slot})
	acc := s.getOrCreate(addr)
	prev, existed := acc.Storage[slot]
	s.journal = append(s.journal, storageEntry{addr, slot, prev, existed})
	if v.IsZero() {
		delete(acc.Storage, slot)
	} else {
		acc.Storage[slot] = v
	}
}

// AddLog journals an emitted event.
func (s *StateDB) AddLog(l *types.Log) {
	s.journal = append(s.journal, logEntry{})
	s.logs = append(s.logs, l)
}

// TakeLogs returns and clears accumulated logs (per transaction).
func (s *StateDB) TakeLogs() []*types.Log {
	out := s.logs
	s.logs = nil
	return out
}

// AddRefund accumulates an SSTORE refund.
func (s *StateDB) AddRefund(v uint64) {
	s.journal = append(s.journal, refundEntry{s.refund})
	s.refund += v
}

// GetRefund returns the accumulated refund counter.
func (s *StateDB) GetRefund() uint64 { return s.refund }

// ResetRefund clears the refund counter (per transaction).
func (s *StateDB) ResetRefund() { s.refund = 0 }

// BeginAccessRecord starts collecting read/write sets.
func (s *StateDB) BeginAccessRecord() {
	s.recording = true
	s.reads = make(AccessSet)
	s.writes = make(AccessSet)
}

// EndAccessRecord stops recording and returns the collected sets.
func (s *StateDB) EndAccessRecord() (reads, writes AccessSet) {
	s.recording = false
	reads, writes = s.reads, s.writes
	s.reads, s.writes = nil, nil
	return reads, writes
}

func (s *StateDB) record(set *AccessSet, key AccessKey) {
	if s.recording {
		(*set)[key] = struct{}{}
	}
}

// Digest computes a deterministic Keccak-256 digest over the entire state,
// used by tests and the core library to assert that every execution mode
// commits to an identical final state.
func (s *StateDB) Digest() types.Hash {
	addrs := make([]types.Address, 0, len(s.accounts))
	for addr, acc := range s.accounts {
		// Skip completely empty accounts so that "touched but unchanged"
		// accounts do not perturb the digest.
		if acc.Nonce == 0 && acc.Balance.IsZero() && len(acc.Code) == 0 && len(acc.Storage) == 0 {
			continue
		}
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return string(addrs[i][:]) < string(addrs[j][:])
	})

	var h keccak.Hasher
	var u64buf [8]byte
	writeU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			u64buf[i] = byte(v >> (56 - 8*i))
		}
		h.Write(u64buf[:])
	}
	for _, addr := range addrs {
		acc := s.accounts[addr]
		h.Write(addr[:])
		writeU64(acc.Nonce)
		b := acc.Balance.Bytes32()
		h.Write(b[:])
		h.Write(acc.CodeHash[:])

		slots := make([]types.Hash, 0, len(acc.Storage))
		for slot := range acc.Storage {
			slots = append(slots, slot)
		}
		sort.Slice(slots, func(i, j int) bool {
			return string(slots[i][:]) < string(slots[j][:])
		})
		for _, slot := range slots {
			v := acc.Storage[slot]
			h.Write(slot[:])
			vb := v.Bytes32()
			h.Write(vb[:])
		}
	}
	return types.Hash(h.Sum256())
}

// AccountCount returns the number of non-empty accounts (for tests/stats).
func (s *StateDB) AccountCount() int {
	n := 0
	for _, acc := range s.accounts {
		if acc.Nonce != 0 || !acc.Balance.IsZero() || len(acc.Code) != 0 || len(acc.Storage) != 0 {
			n++
		}
	}
	return n
}

// StorageSize returns the number of occupied slots at addr (for tests).
func (s *StateDB) StorageSize(addr types.Address) int {
	if acc := s.accounts[addr]; acc != nil {
		return len(acc.Storage)
	}
	return 0
}

// Footprint summarizes the state's size: live accounts, occupied
// storage slots and deployed code bytes. It is a read-only walk meant
// for once-per-invocation reporting (run-ledger entries, diagnostics),
// not for hot paths — shared read-only states are walked concurrently
// by design, so nothing here may write.
type Footprint struct {
	Accounts     int `json:"accounts"`
	StorageSlots int `json:"storage_slots"`
	CodeBytes    int `json:"code_bytes"`
}

// Footprint walks the state and returns its size summary.
func (s *StateDB) Footprint() Footprint {
	var f Footprint
	for _, acc := range s.accounts {
		if acc.Nonce == 0 && acc.Balance.IsZero() && len(acc.Code) == 0 && len(acc.Storage) == 0 {
			continue
		}
		f.Accounts++
		f.StorageSlots += len(acc.Storage)
		f.CodeBytes += len(acc.Code)
	}
	return f
}
