package state

import (
	"testing"

	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// benchKeys builds a working set of n (addr, slot) pairs over a small
// account pool, the shape contract storage traffic has in the token
// workloads.
func benchKeys(n int) ([]types.Address, []types.Hash) {
	addrs := make([]types.Address, n)
	slots := make([]types.Hash, n)
	for i := range addrs {
		addrs[i] = types.BytesToAddress([]byte{byte(i % 16), 0xaa})
		slots[i] = types.BytesToHash([]byte{byte(i), byte(i >> 8)})
	}
	return addrs, slots
}

// BenchmarkStateDBWrite measures SetState over a warm working set:
// steady-state slot overwrites plus the journal append each write pays.
func BenchmarkStateDBWrite(b *testing.B) {
	const n = 1024
	addrs, slots := benchKeys(n)
	s := New()
	v := uint256.NewInt(7)
	for i := 0; i < n; i++ {
		s.SetState(addrs[i], slots[i], *v)
	}
	s.DiscardJournal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetState(addrs[i%n], slots[i%n], *v)
		if i%n == n-1 {
			// Keep the journal from growing without bound; its append is
			// still measured, its memory is not the benchmark's subject.
			b.StopTimer()
			s.DiscardJournal()
			b.StartTimer()
		}
	}
}

// BenchmarkStateDBRead measures GetState over a resident working set —
// the storage-read path every simulated SLOAD resolves through.
func BenchmarkStateDBRead(b *testing.B) {
	const n = 1024
	addrs, slots := benchKeys(n)
	s := New()
	v := uint256.NewInt(7)
	for i := 0; i < n; i++ {
		s.SetState(addrs[i], slots[i], *v)
	}
	s.DiscardJournal()
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint256.Int
	for i := 0; i < b.N; i++ {
		sink = s.GetState(addrs[i%n], slots[i%n])
	}
	_ = sink
}

// BenchmarkStateDBBalance measures the account-level read/modify pair
// (GetBalance + AddBalance) the transfer fast path executes per
// transaction.
func BenchmarkStateDBBalance(b *testing.B) {
	addrs, _ := benchKeys(64)
	s := New()
	one := uint256.NewInt(1)
	for _, a := range addrs {
		s.AddBalance(a, uint256.NewInt(1000))
	}
	s.DiscardJournal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		_ = s.GetBalance(a)
		s.AddBalance(a, one)
		if i%4096 == 4095 {
			b.StopTimer()
			s.DiscardJournal()
			b.StartTimer()
		}
	}
}
