package state

import (
	"testing"
	"testing/quick"

	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

var (
	addrA = types.HexToAddress("0xaaaa000000000000000000000000000000000001")
	addrB = types.HexToAddress("0xbbbb000000000000000000000000000000000002")
	slot1 = types.BytesToHash([]byte{1})
	slot2 = types.BytesToHash([]byte{2})
)

func TestBalancesAndNonces(t *testing.T) {
	st := New()
	if !st.GetBalance(addrA).IsZero() {
		t.Fatal("fresh balance not zero")
	}
	st.AddBalance(addrA, uint256.NewInt(100))
	st.SubBalance(addrA, uint256.NewInt(40))
	if got := st.GetBalance(addrA); got.Uint64() != 60 {
		t.Fatalf("balance %s", got)
	}
	st.SetNonce(addrA, 5)
	if st.GetNonce(addrA) != 5 {
		t.Fatal("nonce")
	}
	if st.GetNonce(addrB) != 0 {
		t.Fatal("missing account nonce")
	}
}

func TestCodeAndHash(t *testing.T) {
	st := New()
	if st.GetCode(addrA) != nil || st.GetCodeSize(addrA) != 0 {
		t.Fatal("fresh code")
	}
	if st.GetCodeHash(addrA) != (types.Hash{}) {
		t.Fatal("fresh code hash")
	}
	code := []byte{1, 2, 3}
	st.SetCode(addrA, code)
	if st.GetCodeSize(addrA) != 3 {
		t.Fatal("code size")
	}
	if st.GetCodeHash(addrA) == (types.Hash{}) {
		t.Fatal("code hash not set")
	}
	// Code is copied, not aliased.
	code[0] = 99
	if st.GetCode(addrA)[0] == 99 {
		t.Fatal("code aliased to caller slice")
	}
}

func TestStorageZeroDeletes(t *testing.T) {
	st := New()
	st.SetState(addrA, slot1, *uint256.NewInt(7))
	if st.StorageSize(addrA) != 1 {
		t.Fatal("slot not stored")
	}
	st.SetState(addrA, slot1, uint256.Int{})
	if st.StorageSize(addrA) != 0 {
		t.Fatal("zero write should delete the slot")
	}
}

func TestSnapshotRevertsEverything(t *testing.T) {
	st := New()
	st.AddBalance(addrA, uint256.NewInt(10))
	st.DiscardJournal()

	snap := st.Snapshot()
	st.AddBalance(addrA, uint256.NewInt(5))
	st.SetNonce(addrA, 3)
	st.SetCode(addrB, []byte{0xFE})
	st.SetState(addrA, slot1, *uint256.NewInt(11))
	st.AddLog(&types.Log{Address: addrA})
	st.AddRefund(100)

	st.RevertToSnapshot(snap)

	if got := st.GetBalance(addrA); got.Uint64() != 10 {
		t.Errorf("balance %s", got)
	}
	if st.GetNonce(addrA) != 0 {
		t.Error("nonce not reverted")
	}
	if st.Exist(addrB) {
		t.Error("created account survived revert")
	}
	if v := st.GetState(addrA, slot1); !v.IsZero() {
		t.Error("storage not reverted")
	}
	if len(st.TakeLogs()) != 0 {
		t.Error("log not reverted")
	}
	if st.GetRefund() != 0 {
		t.Error("refund not reverted")
	}
}

func TestNestedSnapshots(t *testing.T) {
	st := New()
	st.SetState(addrA, slot1, *uint256.NewInt(1))
	s1 := st.Snapshot()
	st.SetState(addrA, slot1, *uint256.NewInt(2))
	s2 := st.Snapshot()
	st.SetState(addrA, slot1, *uint256.NewInt(3))

	st.RevertToSnapshot(s2)
	if v := st.GetState(addrA, slot1); v.Uint64() != 2 {
		t.Fatalf("after inner revert: %s", v.String())
	}
	st.RevertToSnapshot(s1)
	if v := st.GetState(addrA, slot1); v.Uint64() != 1 {
		t.Fatalf("after outer revert: %s", v.String())
	}
}

func TestRevertRestoresPriorStorageValue(t *testing.T) {
	st := New()
	st.SetState(addrA, slot1, *uint256.NewInt(42))
	st.DiscardJournal()
	snap := st.Snapshot()
	st.SetState(addrA, slot1, *uint256.NewInt(43))
	st.SetState(addrA, slot1, uint256.Int{}) // delete
	st.RevertToSnapshot(snap)
	if v := st.GetState(addrA, slot1); v.Uint64() != 42 {
		t.Fatalf("got %s, want 42", v.String())
	}
}

func TestInvalidSnapshotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad snapshot id")
		}
	}()
	New().RevertToSnapshot(5)
}

func TestCopyIsDeep(t *testing.T) {
	st := New()
	st.SetBalance(addrA, uint256.NewInt(9))
	st.SetState(addrA, slot1, *uint256.NewInt(1))
	st.SetCode(addrA, []byte{0x60})

	cp := st.Copy()
	cp.SetBalance(addrA, uint256.NewInt(100))
	cp.SetState(addrA, slot1, *uint256.NewInt(2))
	cp.SetCode(addrA, []byte{0x61, 0x62})

	if st.GetBalance(addrA).Uint64() != 9 {
		t.Error("balance leaked through copy")
	}
	if v := st.GetState(addrA, slot1); v.Uint64() != 1 {
		t.Error("storage leaked through copy")
	}
	if st.GetCodeSize(addrA) != 1 {
		t.Error("code leaked through copy")
	}
}

func TestDigestDeterministicAndSensitive(t *testing.T) {
	build := func() *StateDB {
		st := New()
		st.SetBalance(addrA, uint256.NewInt(5))
		st.SetState(addrA, slot1, *uint256.NewInt(1))
		st.SetState(addrB, slot2, *uint256.NewInt(2))
		st.SetCode(addrB, []byte{0x00})
		return st
	}
	d1 := build().Digest()
	d2 := build().Digest()
	if d1 != d2 {
		t.Fatal("digest not deterministic")
	}
	st := build()
	st.SetState(addrA, slot1, *uint256.NewInt(99))
	if st.Digest() == d1 {
		t.Fatal("digest insensitive to storage change")
	}
	st2 := build()
	st2.AddBalance(addrB, uint256.NewInt(1))
	if st2.Digest() == d1 {
		t.Fatal("digest insensitive to balance change")
	}
}

func TestDigestIgnoresEmptyTouchedAccounts(t *testing.T) {
	st := New()
	st.SetBalance(addrA, uint256.NewInt(5))
	d1 := st.Digest()
	// Touch (create) an account without giving it any substance.
	st.CreateAccount(addrB)
	if st.Digest() != d1 {
		t.Fatal("empty account changed the digest")
	}
}

func TestAccessRecording(t *testing.T) {
	st := New()
	st.SetBalance(addrA, uint256.NewInt(5))
	st.DiscardJournal()

	st.BeginAccessRecord()
	st.GetBalance(addrA)
	st.GetState(addrA, slot1)
	st.SetState(addrB, slot2, *uint256.NewInt(1))
	st.GetNonce(addrB)
	reads, writes := st.EndAccessRecord()

	wantRead := []AccessKey{
		{Kind: AccessBalance, Addr: addrA},
		{Kind: AccessStorage, Addr: addrA, Slot: slot1},
		{Kind: AccessNonce, Addr: addrB},
	}
	for _, k := range wantRead {
		if _, ok := reads[k]; !ok {
			t.Errorf("missing read %+v", k)
		}
	}
	if _, ok := writes[AccessKey{Kind: AccessStorage, Addr: addrB, Slot: slot2}]; !ok {
		t.Error("missing storage write")
	}
	// Recording must stop after End.
	st.GetBalance(addrB)
	if len(reads) != 3 {
		t.Errorf("reads mutated after EndAccessRecord: %d", len(reads))
	}
}

func TestAccessSetOverlaps(t *testing.T) {
	a := AccessSet{{Kind: AccessBalance, Addr: addrA}: {}}
	b := AccessSet{{Kind: AccessBalance, Addr: addrA}: {}}
	c := AccessSet{{Kind: AccessBalance, Addr: addrB}: {}}
	if !a.Overlaps(b) {
		t.Error("identical sets should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint sets should not overlap")
	}
	if a.Overlaps(AccessSet{}) {
		t.Error("empty set overlap")
	}
}

func TestRefundCounter(t *testing.T) {
	st := New()
	st.AddRefund(10)
	st.AddRefund(5)
	if st.GetRefund() != 15 {
		t.Fatal("refund accumulation")
	}
	st.ResetRefund()
	if st.GetRefund() != 0 {
		t.Fatal("refund reset")
	}
}

func TestAccountCount(t *testing.T) {
	st := New()
	if st.AccountCount() != 0 {
		t.Fatal("fresh count")
	}
	st.SetBalance(addrA, uint256.NewInt(1))
	st.CreateAccount(addrB) // empty, not counted
	if st.AccountCount() != 1 {
		t.Fatalf("count %d", st.AccountCount())
	}
}

// TestDigestOrderIndependence: writing the same accounts in different
// orders must give the same digest.
func TestDigestOrderIndependence(t *testing.T) {
	f := func(seed uint8) bool {
		st1, st2 := New(), New()
		addrs := []types.Address{addrA, addrB}
		for i := 0; i < 4; i++ {
			a := addrs[(int(seed)+i)%2]
			st1.SetState(a, slot1, *uint256.NewInt(uint64(i + 1)))
		}
		for i := 3; i >= 0; i-- {
			a := addrs[(int(seed)+i)%2]
			st2.SetState(a, slot1, *uint256.NewInt(uint64(i + 1)))
		}
		// Final values differ between orders unless we overwrite with the
		// same last value; set explicitly to align.
		st1.SetState(addrA, slot1, *uint256.NewInt(7))
		st2.SetState(addrA, slot1, *uint256.NewInt(7))
		st1.SetState(addrB, slot1, *uint256.NewInt(8))
		st2.SetState(addrB, slot1, *uint256.NewInt(8))
		return st1.Digest() == st2.Digest()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFootprint(t *testing.T) {
	st := New()
	if fp := st.Footprint(); fp != (Footprint{}) {
		t.Fatalf("empty state footprint = %+v", fp)
	}
	st.AddBalance(addrA, uint256.NewInt(100))
	st.SetCode(addrB, []byte{0x60, 0x00, 0x60, 0x00})
	st.SetState(addrB, slot1, *uint256.NewInt(7))
	st.SetState(addrB, slot2, *uint256.NewInt(9))
	fp := st.Footprint()
	want := Footprint{Accounts: 2, StorageSlots: 2, CodeBytes: 4}
	if fp != want {
		t.Errorf("footprint = %+v, want %+v", fp, want)
	}
	// Zeroing a slot deletes it; an emptied account drops out entirely.
	st.SetState(addrB, slot2, uint256.Int{})
	st.SubBalance(addrA, uint256.NewInt(100))
	fp = st.Footprint()
	want = Footprint{Accounts: 1, StorageSlots: 1, CodeBytes: 4}
	if fp != want {
		t.Errorf("after clearing: footprint = %+v, want %+v", fp, want)
	}
	// AccountCount and Footprint must agree on liveness.
	if fp.Accounts != st.AccountCount() {
		t.Errorf("Footprint.Accounts %d != AccountCount %d", fp.Accounts, st.AccountCount())
	}
}
