// Package engine is the pluggable execution-engine layer: every way of
// running a block through the MTPU timing model — the paper's mode
// ladder (scalar → ILP → synchronous → spatio-temporal ± redundancy /
// hotspot), the optimistic Block-STM baseline, and any future strategy —
// is one Engine implementation behind one registry. core.ReplayWith
// looks the engine up by Mode and delegates; cmd/mtpu-run, cmd/mtpu-bench
// and internal/experiments enumerate the registry instead of hardcoding
// mode lists. Adding an execution strategy is a change to this package
// alone: implement Engine, call Register, done.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"mtpu/internal/arch"
	"mtpu/internal/arch/mtpu"
	"mtpu/internal/arch/pu"
	"mtpu/internal/hotspot"
	"mtpu/internal/mvstate"
	"mtpu/internal/obs"
	"mtpu/internal/sched"
	"mtpu/internal/state"
	"mtpu/internal/stm"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
)

// Mode identifies a registered engine by its registration ordinal. The
// zero value is the scalar baseline; ordinals are stable across runs
// because registration order is fixed at init time.
type Mode int

// The built-in engines, in registration (capability-ladder) order. The
// constants exist so call sites can name a mode without a registry
// lookup; init() asserts each engine registers at its declared ordinal.
const (
	// ModeScalar is a single PU with no parallel features — the §4.2
	// baseline ("single PU without any parallelism") and the Table 8/9
	// reference point (≈ BPU's GSC engine).
	ModeScalar Mode = iota
	// ModeSequentialILP is a single ILP-enabled PU, caches flushed
	// between transactions — the Fig. 14 speedup-1.0 baseline.
	ModeSequentialILP
	// ModeSynchronous is barrier-round parallelism across NumPUs.
	ModeSynchronous
	// ModeSpatialTemporal is the §3.2 asynchronous scheduler without
	// cross-transaction reuse.
	ModeSpatialTemporal
	// ModeSTRedundancy adds the §3.3.5 redundancy optimization: DB cache
	// and contract contexts persist per PU, and the shared State Buffer
	// serves recently touched state.
	ModeSTRedundancy
	// ModeSTHotspot adds the §3.4 hotspot contract optimization.
	ModeSTHotspot
	// ModeBlockSTM is the optimistic software baseline: Block-STM-style
	// multi-version execution with run-time validation, abort and
	// re-execution. It uses no consensus DAG — conflicts are discovered
	// the hard way, and every aborted incarnation's PU cycles are charged
	// as wasted work. Replays in this mode require the pre-block genesis
	// state (the functional re-execution needs it).
	ModeBlockSTM
	// ModeBSE is Batch-Schedule-Execute (Hay & Friedman, 2024): the
	// consensus DAG is greedily partitioned into conflict-free batches
	// ahead of execution, and each batch runs barrier-synchronized
	// across the PUs — a deterministic pre-scheduled baseline between
	// ModeSynchronous (dynamic barrier rounds) and ModeSpatialTemporal
	// (asynchronous selection).
	ModeBSE
)

// String returns the engine's registered name, or "mode(N)" for a Mode
// that names no registered engine.
func (m Mode) String() string {
	if int(m) >= 0 && int(m) < len(registry) {
		return registry[m].Name()
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Verification declares how a mode's result is held to the
// serializability bar.
type Verification int

const (
	// VerifyDAGOrder: the schedule is checked externally by
	// core.VerifySchedule — replaying the dispatch order against genesis
	// must reproduce the sequential state digest, and no transaction may
	// start before its DAG predecessors end.
	VerifyDAGOrder Verification = iota
	// VerifyInternalDigest: the engine asserts digest/receipt identity
	// with sequential execution inside Run (its schedule deliberately
	// overlaps conflicting transactions, so DAG-order replay does not
	// apply). Such engines are cross-checked by result-specific
	// invariants instead (e.g. core.VerifySTMConflicts).
	VerifyInternalDigest
)

// String names the verification strategy (diagnostics and diff-failure
// reports).
func (v Verification) String() string {
	switch v {
	case VerifyDAGOrder:
		return "dag-order"
	case VerifyInternalDigest:
		return "internal-digest"
	}
	return fmt.Sprintf("verification(%d)", int(v))
}

// Env carries the shared machinery one Run call works with. It is built
// fresh per replay by core.ReplayWith; engines must not retain it.
type Env struct {
	// Cfg is the post-Configure architectural configuration.
	Cfg arch.Config
	// Proc is the MTPU processor the replay charges cycles on.
	Proc *mtpu.Processor
	// Plans are the per-transaction execution plans (from Engine.Plans),
	// aligned with the traces.
	Plans []*pu.Plan
	// Sink receives scheduler events when instrumentation is on; nil
	// keeps every hot path on its uninstrumented route.
	Sink obs.Sink
	// Tel is the host-telemetry registry; nil keeps telemetry off.
	// Engines that run sub-executors with their own live counters (e.g.
	// Block-STM) forward it; everything latency/throughput-shaped is
	// recorded by core around the Run call.
	Tel *telemetry.Metrics
	// Genesis is the pre-block state, nil unless the caller supplied
	// one. Engines that need it (NeedsGenesis) must error cleanly when
	// it is absent. It is only read, never mutated.
	Genesis *state.StateDB
	// Head is the pre-block state as an mvstate snapshot. In server
	// mode it is the chained head (post block N-1); in one-shot replays
	// core derives it from Genesis. Engines that re-execute
	// transactions functionally (Block-STM) read through it.
	Head *mvstate.Snapshot
	// Receipts and Digest are the golden sequential results every
	// engine must reproduce.
	Receipts []*types.Receipt
	Digest   types.Hash
}

// Dispatch replays tx's plan on PU p and returns the cycle cost — the
// sched.Engine / stm.Engine contract, so one Env drives every scheduler.
func (e *Env) Dispatch(p, tx int) uint64 {
	return e.Proc.PUs[p].Run(e.Plans[tx], e.Proc.Mem()).Total
}

// Result is what one engine Run produces; core assembles the public
// core.Result from it plus the shared pipeline/obs state.
type Result struct {
	// Sched is the dispatch timeline and makespan.
	Sched sched.Result
	// STM carries the full optimistic-execution result for engines that
	// run one; nil otherwise.
	STM *stm.Result
	// SchedWindow is the candidate-window size the engine consulted
	// (obs reporting); 0 for engines that never touch the window.
	SchedWindow int
}

// Engine is one block-execution strategy. Implementations must be
// stateless values: Configure/Plans/Run may run concurrently from many
// replays, so all per-run state lives in Env and locals.
type Engine interface {
	// Name is the stable registry key and evaluation label.
	Name() string
	// Configure derives the architectural flags the mode requires from
	// the caller's base configuration (e.g. single-PU modes force
	// NumPUs=1, reuse modes set ReuseContext).
	Configure(cfg arch.Config) arch.Config
	// Plans builds the per-transaction execution plans: prebuilt plans
	// (when non-nil and applicable) or plain plans from the traces, or —
	// for the hotspot engine — optimized plans from the Contract Table.
	// skipped is the number of instructions removed by optimization.
	Plans(table *hotspot.ContractTable, traces []*arch.TxTrace, prebuilt []*pu.Plan) (plans []*pu.Plan, skipped int)
	// Run executes the block's timing replay and returns the schedule.
	Run(block *types.Block, traces []*arch.TxTrace, env *Env) (Result, error)
	// Verify declares how the result is checked for serializability.
	Verify() Verification
	// NeedsGenesis reports whether Run requires Env.Genesis (engines
	// that re-execute functionally rather than replaying traces).
	NeedsGenesis() bool
}

var (
	registry []Engine
	byName   = map[string]Mode{}
)

// Register adds an engine to the registry and returns its Mode. Names
// must be unique and non-empty; registration order defines enumeration
// order, so register from a single init path only.
func Register(e Engine) Mode {
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("engine: duplicate registration of %q", name))
	}
	m := Mode(len(registry))
	registry = append(registry, e)
	byName[name] = m
	return m
}

// Get returns the engine registered for m.
func Get(m Mode) (Engine, error) {
	if int(m) < 0 || int(m) >= len(registry) {
		return nil, fmt.Errorf("engine: unknown mode %s (registered: %s)", m, strings.Join(Names(), ", "))
	}
	return registry[m], nil
}

// Modes enumerates every registered mode in registration order.
func Modes() []Mode {
	out := make([]Mode, len(registry))
	for i := range registry {
		out[i] = Mode(i)
	}
	return out
}

// Engines enumerates every registered engine in registration order.
func Engines() []Engine {
	out := make([]Engine, len(registry))
	copy(out, registry)
	return out
}

// Names lists the registered engine names in registration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.Name()
	}
	return out
}

// Parse resolves an engine name to its Mode. Unknown names are rejected
// with the sorted list of valid ones, so -mode flag errors are
// self-documenting.
func Parse(name string) (Mode, error) {
	if m, ok := byName[name]; ok {
		return m, nil
	}
	valid := Names()
	sort.Strings(valid)
	return 0, fmt.Errorf("engine: unknown mode %q (valid: %s)", name, strings.Join(valid, ", "))
}
