package engine_test

import (
	"reflect"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/contracts"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// TestBSEBatchesProperties: no batch contains a DAG edge, every
// transaction appears exactly once, batch count equals the critical
// path length, and the partition is deterministic.
func TestBSEBatchesProperties(t *testing.T) {
	for _, dep := range []float64{0, 0.3, 0.6, 1.0} {
		_, block := buildBlock(t, 71, 96, dep)
		batches := engine.BSEBatches(block.DAG)

		if got, want := len(batches), block.DAG.CriticalPathLen(); got != want {
			t.Errorf("dep=%.1f: %d batches, critical path %d", dep, got, want)
		}

		seen := make(map[int]int) // tx -> batch level
		total := 0
		for l, batch := range batches {
			if len(batch) == 0 {
				t.Errorf("dep=%.1f: empty batch %d", dep, l)
			}
			for _, tx := range batch {
				if prev, dup := seen[tx]; dup {
					t.Fatalf("dep=%.1f: tx %d in batches %d and %d", dep, tx, prev, l)
				}
				seen[tx] = l
				total++
			}
		}
		if total != block.DAG.Len() {
			t.Errorf("dep=%.1f: partition covers %d of %d txs", dep, total, block.DAG.Len())
		}
		// Every DAG edge crosses batch levels in the right direction.
		for tx, deps := range block.DAG.Deps {
			for _, d := range deps {
				if seen[d] >= seen[tx] {
					t.Errorf("dep=%.1f: edge %d→%d within/against batches (%d vs %d)",
						dep, d, tx, seen[d], seen[tx])
				}
			}
		}

		if again := engine.BSEBatches(block.DAG); !reflect.DeepEqual(batches, again) {
			t.Errorf("dep=%.1f: partition not deterministic", dep)
		}
	}
}

func TestBSEBatchesEmptyDAG(t *testing.T) {
	if got := engine.BSEBatches(types.NewDAG(0)); got != nil {
		t.Errorf("empty DAG produced batches %v", got)
	}
}

// replayBSE runs one block under BSE and fails the test unless the
// schedule passes the DAG-order verifier.
func replayBSE(t *testing.T, genesis *state.StateDB, block *types.Block) *core.Result {
	t.Helper()
	acc := core.New(arch.DefaultConfig())
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	res, err := acc.Replay(block, traces, receipts, digest, engine.ModeBSE)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifySchedule(genesis, block, res); err != nil {
		t.Fatalf("BSE schedule rejected: %v", err)
	}
	return res
}

// TestBSEVerifiesOnHotspotSkew: every transaction hammers the same
// contract — the worst case for any batch partition that confused
// contract contention with DAG dependence.
func TestBSEVerifiesOnHotspotSkew(t *testing.T) {
	g := workload.NewGenerator(73, 512)
	genesis := g.Genesis()
	block := g.Batch(g.Contract("TetherUSD"), 64)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	res := replayBSE(t, genesis, block)
	if res.GasUsed == 0 {
		t.Fatal("no gas consumed")
	}
	t.Logf("hotspot-skewed: %d batches, %d cycles, util %.2f",
		len(engine.BSEBatches(block.DAG)), res.Cycles, res.Utilization)
}

// TestBSEVerifiesOnDepOne: a dep-1.0 token block — every transaction
// depends on some earlier one — still partitions into exactly
// critical-path-many batches and verifies.
func TestBSEVerifiesOnDepOne(t *testing.T) {
	genesis, block := buildBlock(t, 79, 48, 1.0)
	batches := engine.BSEBatches(block.DAG)
	if got, want := len(batches), block.DAG.CriticalPathLen(); got != want {
		t.Fatalf("dep=1.0 block split into %d batches, critical path %d", got, want)
	}
	replayBSE(t, genesis, block)
}

// TestBSEVerifiesOnFullChain: a pure dependency chain (every transfer
// spends the previous one's output) degenerates to one transaction per
// batch — the barrier must still produce a valid, fully sequential
// schedule.
func TestBSEVerifiesOnFullChain(t *testing.T) {
	g := workload.NewGenerator(81, 8)
	genesis := g.Genesis()
	// Consecutive transfers from one sender conflict on its nonce and
	// balance, so the DAG is a single 32-long chain.
	sink := types.BytesToAddress([]byte{0xbe, 0xef})
	var txs []*types.Transaction
	for i := 0; i < 32; i++ {
		txs = append(txs, g.PlainTransfer(contracts.TokenOwner, sink, 1))
	}
	block := types.NewBlock(g.Header(), txs)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	batches := engine.BSEBatches(block.DAG)
	if len(batches) != len(txs) {
		t.Fatalf("chain split into %d batches for %d txs", len(batches), len(txs))
	}
	res := replayBSE(t, genesis, block)
	// Sequential execution: dispatches must not overlap in time.
	for i := 1; i < len(res.Sched.Dispatches); i++ {
		prev, cur := res.Sched.Dispatches[i-1], res.Sched.Dispatches[i]
		if cur.Start < prev.End {
			t.Fatalf("chain dispatches overlap: %+v then %+v", prev, cur)
		}
	}
}

// TestBSERespectsBarriers: in the replayed schedule no transaction of
// batch k+1 starts before every transaction of batch k has ended.
func TestBSERespectsBarriers(t *testing.T) {
	genesis, block := buildBlock(t, 83, 120, 0.5)
	res := replayBSE(t, genesis, block)
	batchOf := make(map[int]int)
	batches := engine.BSEBatches(block.DAG)
	for l, batch := range batches {
		for _, tx := range batch {
			batchOf[tx] = l
		}
	}
	batchEnd := make([]uint64, len(batches))
	for _, d := range res.Sched.Dispatches {
		if d.End > batchEnd[batchOf[d.Tx]] {
			batchEnd[batchOf[d.Tx]] = d.End
		}
	}
	for _, d := range res.Sched.Dispatches {
		if l := batchOf[d.Tx]; l > 0 && d.Start < batchEnd[l-1] {
			t.Errorf("tx %d (batch %d) started at %d before barrier %d",
				d.Tx, l, d.Start, batchEnd[l-1])
		}
	}
}
