// The built-in engines: the paper's mode ladder plus the optimistic
// Block-STM baseline, extracted verbatim from the per-mode arms that
// used to live in core.ReplayWith. Timing, dispatch order and config
// derivation are byte-identical to the pre-registry dispatch.
package engine

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pu"
	"mtpu/internal/hotspot"
	"mtpu/internal/mvstate"
	"mtpu/internal/sched"
	"mtpu/internal/stm"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

func init() {
	// Registration order IS the Mode ordinal; the asserts pin each
	// engine to its declared constant so the two can never drift.
	for _, r := range []struct {
		want Mode
		e    Engine
	}{
		{ModeScalar, scalarEngine{}},
		{ModeSequentialILP, ilpEngine{}},
		{ModeSynchronous, synchronousEngine{}},
		{ModeSpatialTemporal, stEngine{name: "spatial-temporal", reuse: false}},
		{ModeSTRedundancy, stEngine{name: "spatial-temporal+redundancy", reuse: true}},
		{ModeSTHotspot, hotspotEngine{}},
		{ModeBlockSTM, blockSTMEngine{}},
		{ModeBSE, bseEngine{}},
	} {
		if got := Register(r.e); got != r.want {
			panic(fmt.Sprintf("engine: %q registered as %d, want %d", r.e.Name(), got, r.want))
		}
	}
}

// plainPlans is the shared Plans implementation of every engine whose
// plans do not depend on the Contract Table: prebuilt plans when the
// caller supplied them, plain per-trace plans otherwise.
func plainPlans(traces []*arch.TxTrace, prebuilt []*pu.Plan) ([]*pu.Plan, int) {
	if prebuilt != nil {
		return prebuilt, 0
	}
	return pu.PlainPlans(traces), 0
}

// scalarEngine: one PU, no parallel features of any kind.
type scalarEngine struct{}

func (scalarEngine) Name() string { return "scalar" }

func (scalarEngine) Configure(cfg arch.Config) arch.Config {
	cfg.EnableDBCache = false
	cfg.EnableForwarding = false
	cfg.EnableFolding = false
	cfg.ReuseContext = false
	cfg.NumPUs = 1
	return cfg
}

func (scalarEngine) Plans(_ *hotspot.ContractTable, traces []*arch.TxTrace, prebuilt []*pu.Plan) ([]*pu.Plan, int) {
	return plainPlans(traces, prebuilt)
}

func (scalarEngine) Run(_ *types.Block, traces []*arch.TxTrace, env *Env) (Result, error) {
	return Result{Sched: sched.Sequential(len(traces), env)}, nil
}

func (scalarEngine) Verify() Verification { return VerifyDAGOrder }
func (scalarEngine) NeedsGenesis() bool   { return false }

// ilpEngine: one ILP-enabled PU, caches flushed between transactions.
type ilpEngine struct{}

func (ilpEngine) Name() string { return "sequential+ILP" }

func (ilpEngine) Configure(cfg arch.Config) arch.Config {
	cfg.ReuseContext = false
	cfg.NumPUs = 1
	return cfg
}

func (ilpEngine) Plans(_ *hotspot.ContractTable, traces []*arch.TxTrace, prebuilt []*pu.Plan) ([]*pu.Plan, int) {
	return plainPlans(traces, prebuilt)
}

func (ilpEngine) Run(_ *types.Block, traces []*arch.TxTrace, env *Env) (Result, error) {
	return Result{Sched: sched.Sequential(len(traces), env)}, nil
}

func (ilpEngine) Verify() Verification { return VerifyDAGOrder }
func (ilpEngine) NeedsGenesis() bool   { return false }

// synchronousEngine: barrier-round parallelism across NumPUs.
type synchronousEngine struct{}

func (synchronousEngine) Name() string { return "synchronous" }

func (synchronousEngine) Configure(cfg arch.Config) arch.Config {
	cfg.ReuseContext = false
	return cfg
}

func (synchronousEngine) Plans(_ *hotspot.ContractTable, traces []*arch.TxTrace, prebuilt []*pu.Plan) ([]*pu.Plan, int) {
	return plainPlans(traces, prebuilt)
}

func (synchronousEngine) Run(block *types.Block, _ []*arch.TxTrace, env *Env) (Result, error) {
	return Result{Sched: sched.Synchronous(block.DAG, env.Cfg.NumPUs, env.Cfg.ScheduleOverhead, env)}, nil
}

func (synchronousEngine) Verify() Verification { return VerifyDAGOrder }
func (synchronousEngine) NeedsGenesis() bool   { return false }

// stEngine: the §3.2 spatio-temporal scheduler, with or without the
// §3.3.5 redundancy (reuse) optimization.
type stEngine struct {
	name  string
	reuse bool
}

func (e stEngine) Name() string { return e.name }

func (e stEngine) Configure(cfg arch.Config) arch.Config {
	cfg.ReuseContext = e.reuse
	return cfg
}

func (stEngine) Plans(_ *hotspot.ContractTable, traces []*arch.TxTrace, prebuilt []*pu.Plan) ([]*pu.Plan, int) {
	return plainPlans(traces, prebuilt)
}

func (stEngine) Run(block *types.Block, _ []*arch.TxTrace, env *Env) (Result, error) {
	contracts := workload.ContractOf(block)
	return Result{
		Sched: sched.SpatialTemporalObs(block.DAG, contracts, env.Cfg.NumPUs,
			env.Cfg.CandidateWindow, env.Cfg.ScheduleOverhead, env, env.Sink),
		SchedWindow: env.Cfg.CandidateWindow,
	}, nil
}

func (stEngine) Verify() Verification { return VerifyDAGOrder }
func (stEngine) NeedsGenesis() bool   { return false }

// hotspotEngine: spatio-temporal + redundancy + the §3.4 hotspot
// optimization. Its plans come from the Contract Table, so prebuilt
// plain plans are deliberately ignored.
type hotspotEngine struct{}

func (hotspotEngine) Name() string { return "spatial-temporal+redundancy+hotspot" }

func (hotspotEngine) Configure(cfg arch.Config) arch.Config {
	cfg.ReuseContext = true
	return cfg
}

func (hotspotEngine) Plans(table *hotspot.ContractTable, traces []*arch.TxTrace, _ []*pu.Plan) ([]*pu.Plan, int) {
	plans := make([]*pu.Plan, len(traces))
	skipped := 0
	for i, t := range traces {
		plans[i] = table.Plan(t)
		skipped += plans[i].SkippedInstructions
	}
	return plans, skipped
}

func (hotspotEngine) Run(block *types.Block, _ []*arch.TxTrace, env *Env) (Result, error) {
	contracts := workload.ContractOf(block)
	return Result{
		Sched: sched.SpatialTemporalObs(block.DAG, contracts, env.Cfg.NumPUs,
			env.Cfg.CandidateWindow, env.Cfg.ScheduleOverhead, env, env.Sink),
		SchedWindow: env.Cfg.CandidateWindow,
	}, nil
}

func (hotspotEngine) Verify() Verification { return VerifyDAGOrder }
func (hotspotEngine) NeedsGenesis() bool   { return false }

// blockSTMEngine: the optimistic software baseline — multi-version
// execution with run-time validation, abort and re-execution.
type blockSTMEngine struct{}

func (blockSTMEngine) Name() string { return "block-stm" }

func (blockSTMEngine) Configure(cfg arch.Config) arch.Config {
	cfg.ReuseContext = false
	return cfg
}

func (blockSTMEngine) Plans(_ *hotspot.ContractTable, traces []*arch.TxTrace, prebuilt []*pu.Plan) ([]*pu.Plan, int) {
	return plainPlans(traces, prebuilt)
}

func (e blockSTMEngine) Run(block *types.Block, _ []*arch.TxTrace, env *Env) (Result, error) {
	base := env.Head
	if base == nil && env.Genesis != nil {
		base = mvstate.SnapshotOf(env.Genesis)
	}
	if base == nil {
		return Result{}, fmt.Errorf("engine: mode %s requires the pre-block genesis state (ReplayOpts.Head or Genesis)", e.Name())
	}
	stmRes, err := stm.Execute(block, base, stm.Config{
		NumPUs:           env.Cfg.NumPUs,
		ScheduleOverhead: env.Cfg.ScheduleOverhead,
		ValidateBase:     env.Cfg.StmValidateBase,
		ValidatePerKey:   env.Cfg.StmValidatePerKey,
		Tel:              env.Tel,
	}, env)
	if err != nil {
		return Result{}, err
	}
	// The identical-state-to-sequential assertion is built into the
	// mode: an optimistic schedule that commits anything else is a
	// correctness bug, not a measurement.
	if stmRes.Digest != env.Digest {
		return Result{}, fmt.Errorf("engine: block-stm state digest %s != sequential %s", stmRes.Digest, env.Digest)
	}
	for i, r := range stmRes.Receipts {
		if r.GasUsed != env.Receipts[i].GasUsed || r.Status != env.Receipts[i].Status {
			return Result{}, fmt.Errorf("engine: block-stm receipt %d (gas %d, status %d) != sequential (gas %d, status %d)",
				i, r.GasUsed, r.Status, env.Receipts[i].GasUsed, env.Receipts[i].Status)
		}
	}
	sres := sched.Result{Makespan: stmRes.Makespan, BusyCycles: stmRes.BusyCycles}
	for _, d := range stmRes.ExecDispatches() {
		sres.Dispatches = append(sres.Dispatches, sched.Dispatch{Tx: d.Tx, PU: d.PU, Start: d.Start, End: d.End})
	}
	return Result{Sched: sres, STM: stmRes}, nil
}

func (blockSTMEngine) Verify() Verification { return VerifyInternalDigest }
func (blockSTMEngine) NeedsGenesis() bool   { return true }
