package engine_test

import (
	"reflect"
	"strings"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

func buildBlock(t *testing.T, seed int64, n int, depRatio float64) (*state.StateDB, *types.Block) {
	t.Helper()
	g := workload.NewGenerator(seed, 4*n+64)
	genesis := g.Genesis()
	block := g.TokenBlock(n, depRatio)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	return genesis, block
}

// TestRegistryEnumerationDeterministic: two enumerations agree, the
// order covers the declared constants at their ordinals, and every
// registered engine round-trips through Parse(e.Name()).
func TestRegistryEnumerationDeterministic(t *testing.T) {
	first, second := engine.Modes(), engine.Modes()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("enumeration not stable: %v vs %v", first, second)
	}
	if len(first) == 0 {
		t.Fatal("empty registry")
	}
	names := engine.Names()
	if len(names) != len(first) {
		t.Fatalf("%d names for %d modes", len(names), len(first))
	}
	for i, m := range first {
		if int(m) != i {
			t.Errorf("mode %v at position %d", m, i)
		}
		if m.String() != names[i] {
			t.Errorf("Modes()[%d].String() = %q, Names()[%d] = %q", i, m.String(), i, names[i])
		}
	}
	// Declared constants sit at their registration ordinals.
	want := []engine.Mode{
		engine.ModeScalar, engine.ModeSequentialILP, engine.ModeSynchronous,
		engine.ModeSpatialTemporal, engine.ModeSTRedundancy, engine.ModeSTHotspot,
		engine.ModeBlockSTM, engine.ModeBSE,
	}
	for i, m := range want {
		if first[i] != m {
			t.Errorf("ordinal %d is %v, want %v", i, first[i], m)
		}
	}
}

func TestParseRoundTripsEveryEngine(t *testing.T) {
	for _, m := range engine.Modes() {
		e, err := engine.Get(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got, err := engine.Parse(e.Name())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.Name(), err)
		}
		if got != m {
			t.Errorf("Parse(%q) = %v, want %v", e.Name(), got, m)
		}
	}
}

func TestParseRejectsUnknownWithValidList(t *testing.T) {
	_, err := engine.Parse("warp-drive")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "warp-drive") {
		t.Errorf("error does not echo the bad name: %v", err)
	}
	for _, name := range engine.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("error does not list valid engine %q: %v", name, err)
		}
	}
}

func TestUnknownModeString(t *testing.T) {
	if got := engine.Mode(999).String(); got != "mode(999)" {
		t.Errorf("unknown mode String() = %q, want %q", got, "mode(999)")
	}
	if got := engine.Mode(-1).String(); got != "mode(-1)" {
		t.Errorf("negative mode String() = %q, want %q", got, "mode(-1)")
	}
	if _, err := engine.Get(engine.Mode(999)); err == nil {
		t.Error("Get accepted an unregistered mode")
	}
	for _, m := range engine.Modes() {
		if strings.HasPrefix(m.String(), "mode(") {
			t.Errorf("registered mode %d has fallback name %q", int(m), m)
		}
	}
}

// TestConfigureInvariants pins the per-mode configuration contract:
// single-PU engines force one PU even from a multi-PU base config,
// reuse engines set ReuseContext, the others clear it.
func TestConfigureInvariants(t *testing.T) {
	base := arch.DefaultConfig()
	base.NumPUs = 8 // simulate a ReplayOpts.NumPUs override
	singlePU := map[engine.Mode]bool{engine.ModeScalar: true, engine.ModeSequentialILP: true}
	reuse := map[engine.Mode]bool{engine.ModeSTRedundancy: true, engine.ModeSTHotspot: true}
	for _, m := range engine.Modes() {
		e, err := engine.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		cfg := e.Configure(base)
		if singlePU[m] && cfg.NumPUs != 1 {
			t.Errorf("%v: NumPUs = %d despite single-PU contract", m, cfg.NumPUs)
		}
		if !singlePU[m] && cfg.NumPUs != base.NumPUs {
			t.Errorf("%v: NumPUs = %d, want the base %d", m, cfg.NumPUs, base.NumPUs)
		}
		if cfg.ReuseContext != reuse[m] {
			t.Errorf("%v: ReuseContext = %v, want %v", m, cfg.ReuseContext, reuse[m])
		}
	}
	scalar, _ := engine.Get(engine.ModeScalar)
	if cfg := scalar.Configure(base); cfg.EnableDBCache || cfg.EnableForwarding || cfg.EnableFolding {
		t.Errorf("scalar left ILP features on: %+v", cfg)
	}
}

// TestScalarForcesOnePUUnderOverride: the ReplayOpts.NumPUs override
// must not defeat the single-PU contract end to end — the replay's
// schedule uses exactly one PU.
func TestScalarForcesOnePUUnderOverride(t *testing.T) {
	genesis, block := buildBlock(t, 51, 48, 0.3)
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc := core.New(arch.DefaultConfig())
	for _, m := range []engine.Mode{engine.ModeScalar, engine.ModeSequentialILP} {
		res, err := acc.ReplayWith(block, traces, receipts, digest, m,
			core.ReplayOpts{NumPUs: 4})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := len(res.Sched.BusyCycles); got != 1 {
			t.Errorf("%v: schedule ran on %d PUs despite NumPUs override", m, got)
		}
		for _, d := range res.Sched.Dispatches {
			if d.PU != 0 {
				t.Fatalf("%v: dispatch on PU %d", m, d.PU)
			}
		}
	}
}

// TestGenesisRequirementErrorsCleanly: every engine that declares
// NeedsGenesis must reject a replay without one (with a useful message),
// and every engine that doesn't must run without it.
func TestGenesisRequirementErrorsCleanly(t *testing.T) {
	genesis, block := buildBlock(t, 53, 32, 0.3)
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc := core.New(arch.DefaultConfig())
	acc.LearnHotspots(traces, 8)
	for _, m := range engine.Modes() {
		e, err := engine.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		res, replayErr := acc.Replay(block, traces, receipts, digest, m)
		if e.NeedsGenesis() {
			if replayErr == nil {
				t.Errorf("%v: ran without the genesis it declares it needs", m)
			} else if !strings.Contains(replayErr.Error(), "genesis") {
				t.Errorf("%v: unhelpful genesis error: %v", m, replayErr)
			}
			// And with genesis supplied it must succeed.
			if _, err := acc.ReplayWith(block, traces, receipts, digest, m,
				core.ReplayOpts{Genesis: genesis}); err != nil {
				t.Errorf("%v: failed with genesis: %v", m, err)
			}
			continue
		}
		if replayErr != nil {
			t.Errorf("%v: %v", m, replayErr)
		} else if res.Cycles == 0 {
			t.Errorf("%v: empty result", m)
		}
	}
}

// TestVerifyContractCoversEveryEngine: each engine declares exactly one
// verification path, and the DAG-order ones genuinely pass
// core.VerifySchedule on a contended workload.
func TestVerifyContractCoversEveryEngine(t *testing.T) {
	genesis, block := buildBlock(t, 57, 96, 0.6)
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc := core.New(arch.DefaultConfig())
	acc.LearnHotspots(traces, 8)
	for _, m := range engine.Modes() {
		e, err := engine.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := acc.ReplayWith(block, traces, receipts, digest, m,
			core.ReplayOpts{Genesis: genesis})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		switch e.Verify() {
		case engine.VerifyDAGOrder:
			if err := core.VerifySchedule(genesis, block, res); err != nil {
				t.Errorf("%v: %v", m, err)
			}
		case engine.VerifyInternalDigest:
			// The engine asserted digest identity inside Run; its runtime
			// conflicts must stay inside the DAG's transitive closure.
			if err := core.VerifySTMConflicts(block.DAG, res.STMConflicts); err != nil {
				t.Errorf("%v: %v", m, err)
			}
		default:
			t.Errorf("%v: unknown verification contract %v", m, e.Verify())
		}
	}
}
