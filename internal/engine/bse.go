// Batch-Schedule-Execute (Hay & Friedman, 2024): consensus pre-schedules
// the block by greedily partitioning the dependency DAG into
// conflict-free batches; execution then runs each batch
// barrier-synchronized across the PUs with no run-time scheduling
// decisions at all. It is the deterministic counterpart to both
// ModeSynchronous (which forms rounds dynamically from completions) and
// ModeBlockSTM (which discovers conflicts at run time) — the whole
// schedule is a pure function of the DAG.
package engine

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/pu"
	"mtpu/internal/hotspot"
	"mtpu/internal/sched"
	"mtpu/internal/types"
)

// BSEBatches greedily partitions the DAG into conflict-free batches:
// batch(tx) = 1 + max over dependencies batch(dep), i.e. transactions
// are grouped by longest dependency-path depth. No batch contains a DAG
// edge (an edge always crosses batch levels), so every batch may run
// fully in parallel; the number of batches equals the DAG's critical
// path length. Within a batch, transactions keep block order. Exported
// so experiments can report measured batch counts.
func BSEBatches(dag *types.DAG) [][]int {
	n := dag.Len()
	if n == 0 {
		return nil
	}
	level := make([]int, n)
	maxLevel := 0
	// DAG edges are strictly forward (types.DAG.AddEdge enforces
	// from < to), so one block-order pass settles every level.
	for tx := 0; tx < n; tx++ {
		l := 0
		for _, d := range dag.Deps[tx] {
			if level[d]+1 > l {
				l = level[d] + 1
			}
		}
		level[tx] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	batches := make([][]int, maxLevel+1)
	for tx, l := range level {
		batches[l] = append(batches[l], tx)
	}
	return batches
}

// bseEngine executes the precomputed batches: within a batch each
// transaction is dispatched (in block order) to the PU that frees up
// earliest, PUs run their share back-to-back, and the next batch starts
// only after the slowest PU of the current one finishes — the barrier.
type bseEngine struct{}

func (bseEngine) Name() string { return "batch-schedule-execute" }

func (bseEngine) Configure(cfg arch.Config) arch.Config {
	cfg.ReuseContext = false
	return cfg
}

func (bseEngine) Plans(_ *hotspot.ContractTable, traces []*arch.TxTrace, prebuilt []*pu.Plan) ([]*pu.Plan, int) {
	return plainPlans(traces, prebuilt)
}

func (bseEngine) Run(block *types.Block, _ []*arch.TxTrace, env *Env) (Result, error) {
	numPUs := env.Cfg.NumPUs
	overhead := env.Cfg.ScheduleOverhead
	res := sched.Result{BusyCycles: make([]uint64, numPUs)}
	busyUntil := make([]uint64, numPUs)
	var now uint64
	for _, batch := range BSEBatches(block.DAG) {
		for p := range busyUntil {
			busyUntil[p] = now
		}
		batchEnd := now
		for _, tx := range batch {
			// Earliest-available PU, lowest index on ties — deterministic,
			// and dispatch order (hence PU microarchitectural state) is
			// fixed by block order within the batch.
			p := 0
			for q := 1; q < numPUs; q++ {
				if busyUntil[q] < busyUntil[p] {
					p = q
				}
			}
			cost := env.Dispatch(p, tx) + overhead
			start := busyUntil[p]
			end := start + cost
			res.Dispatches = append(res.Dispatches, sched.Dispatch{Tx: tx, PU: p, Start: start, End: end})
			res.BusyCycles[p] += cost
			busyUntil[p] = end
			if end > batchEnd {
				batchEnd = end
			}
		}
		now = batchEnd
	}
	res.Makespan = now
	return Result{Sched: res}, nil
}

func (bseEngine) Verify() Verification { return VerifyDAGOrder }
func (bseEngine) NeedsGenesis() bool   { return false }
