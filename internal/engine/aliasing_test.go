package engine_test

import (
	"reflect"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/obs"
)

// referenceKinds walks a type and reports the path of the first field
// with reference semantics (pointer, map, slice, chan, func, interface).
func referenceKinds(t reflect.Type, path string) string {
	switch t.Kind() {
	case reflect.Ptr, reflect.Map, reflect.Slice, reflect.Chan,
		reflect.Func, reflect.Interface, reflect.UnsafePointer:
		return path
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if bad := referenceKinds(f.Type, path+"."+f.Name); bad != "" {
				return bad
			}
		}
	case reflect.Array:
		return referenceKinds(t.Elem(), path+"[]")
	}
	return ""
}

// TestConfigHasNoReferenceFields guards the Configure contract: engines
// receive and return arch.Config by value, which only isolates callers
// while the struct stays free of reference-typed fields. Anyone adding a
// slice or map to Config must also make Configure deep-copy it.
func TestConfigHasNoReferenceFields(t *testing.T) {
	if bad := referenceKinds(reflect.TypeOf(arch.Config{}), "Config"); bad != "" {
		t.Fatalf("%s has reference semantics; Configure's by-value isolation is broken — add a deep copy", bad)
	}
}

// TestConfigureDoesNotMutateCaller: every engine's Configure must leave
// the caller's config untouched and return an independent value.
func TestConfigureDoesNotMutateCaller(t *testing.T) {
	for _, m := range engine.Modes() {
		e, err := engine.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		base := arch.DefaultConfig()
		base.NumPUs = 8
		snapshot := base
		got := e.Configure(base)
		if !reflect.DeepEqual(base, snapshot) {
			t.Errorf("%v: Configure mutated the caller's config", m)
		}
		// Writing to the returned copy must not reach the caller either.
		got.NumPUs = 999
		if base.NumPUs != 8 {
			t.Errorf("%v: returned config aliases the caller's", m)
		}
	}
}

// TestReplayLadderConfigIsolation runs a single-PU engine and a multi-PU
// engine back to back on one shared Accelerator: the scalar run's forced
// NumPUs=1 must not leak into the accelerator or the next mode's replay.
func TestReplayLadderConfigIsolation(t *testing.T) {
	genesis, block := buildBlock(t, 61, 48, 0.3)
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.DefaultConfig()
	cfg.NumPUs = 4
	acc := core.New(cfg)
	before := acc.Cfg

	for _, round := range []struct {
		mode engine.Mode
		pus  int
	}{
		{engine.ModeScalar, 1},
		{engine.ModeSpatialTemporal, 4},
		{engine.ModeScalar, 1}, // and the multi-PU run must not leak back
	} {
		res, err := acc.ReplayWith(block, traces, receipts, digest, round.mode,
			core.ReplayOpts{Obs: obs.NewCollector()})
		if err != nil {
			t.Fatalf("%v: %v", round.mode, err)
		}
		if res.Obs == nil {
			t.Fatalf("%v: no report", round.mode)
		}
		if res.Obs.NumPUs != round.pus {
			t.Errorf("%v: ran on %d PUs, want %d — a prior mode's config leaked",
				round.mode, res.Obs.NumPUs, round.pus)
		}
		if acc.Cfg != before {
			t.Fatalf("%v: replay mutated the shared accelerator config: %+v", round.mode, acc.Cfg)
		}
	}
}

// TestParseRejectsFallbackStrings: the "mode(N)" fallback that String()
// prints for unregistered ordinals is diagnostic output, not a name —
// Parse must refuse to round-trip it.
func TestParseRejectsFallbackStrings(t *testing.T) {
	for _, s := range []string{"mode(99)", engine.Mode(999).String(), "mode(-1)"} {
		if m, err := engine.Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted as %v", s, m)
		}
	}
}

// TestVerificationString covers both named contracts and the fallback.
func TestVerificationString(t *testing.T) {
	if got := engine.VerifyDAGOrder.String(); got != "dag-order" {
		t.Errorf("VerifyDAGOrder = %q", got)
	}
	if got := engine.VerifyInternalDigest.String(); got != "internal-digest" {
		t.Errorf("VerifyInternalDigest = %q", got)
	}
	if got := engine.Verification(9).String(); got != "verification(9)" {
		t.Errorf("fallback = %q", got)
	}
}
