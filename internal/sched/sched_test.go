package sched

import (
	"testing"

	"mtpu/internal/types"
)

// fakeEngine assigns fixed per-transaction costs and tracks the dispatch
// order and PU assignment.
type fakeEngine struct {
	costs     []uint64
	contracts []types.Address
	last      []types.Address
	order     []int
	puOf      map[int]int
}

func newFake(costs []uint64, contracts []types.Address, pus int) *fakeEngine {
	return &fakeEngine{
		costs:     costs,
		contracts: contracts,
		last:      make([]types.Address, pus),
		puOf:      make(map[int]int),
	}
}

func (f *fakeEngine) Dispatch(pu, tx int) uint64 {
	f.order = append(f.order, tx)
	f.puOf[tx] = pu
	if f.contracts != nil {
		f.last[pu] = f.contracts[tx]
	}
	return f.costs[tx]
}

func uniform(n int, c uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = c
	}
	return out
}

func addrs(ids ...byte) []types.Address {
	out := make([]types.Address, len(ids))
	for i, id := range ids {
		out[i] = types.BytesToAddress([]byte{id})
	}
	return out
}

func TestSequentialSumsCosts(t *testing.T) {
	e := newFake([]uint64{5, 7, 11}, nil, 1)
	res := Sequential(3, e)
	if res.Makespan != 23 {
		t.Fatalf("makespan %d", res.Makespan)
	}
	if res.Utilization() != 1.0 {
		t.Fatalf("utilization %f", res.Utilization())
	}
	if len(res.Dispatches) != 3 || res.Dispatches[2].Start != 12 {
		t.Fatalf("dispatches %+v", res.Dispatches)
	}
}

func TestSynchronousBarriers(t *testing.T) {
	// 4 independent txs, 2 PUs, costs 10,1,10,1: rounds (10,1) and (10,1)
	// → each round takes 10 → makespan 20. Async would finish in ~11.
	dag := types.NewDAG(4)
	e := newFake([]uint64{10, 1, 10, 1}, nil, 2)
	res := Synchronous(dag, 2, 0, e)
	if res.Makespan != 20 {
		t.Fatalf("makespan %d, want 20", res.Makespan)
	}
}

func TestSynchronousRespectsDAG(t *testing.T) {
	dag := types.NewDAG(3)
	dag.AddEdge(0, 1)
	dag.AddEdge(1, 2)
	e := newFake(uniform(3, 5), nil, 4)
	res := Synchronous(dag, 4, 0, e)
	if res.Makespan != 15 { // pure chain: three rounds
		t.Fatalf("chain makespan %d", res.Makespan)
	}
	if e.order[0] != 0 || e.order[1] != 1 || e.order[2] != 2 {
		t.Fatalf("order %v", e.order)
	}
}

func TestSynchronousCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on cyclic DAG")
		}
	}()
	dag := types.NewDAG(2)
	dag.Deps[0] = []int{1} // manufactured cycle 0↔1
	dag.Deps[1] = []int{0}
	Synchronous(dag, 2, 0, newFake(uniform(2, 1), nil, 2))
}

func stRun(t *testing.T, dag *types.DAG, costs []uint64, contracts []types.Address, pus int) (*fakeEngine, Result) {
	t.Helper()
	if contracts == nil {
		contracts = make([]types.Address, len(costs))
	}
	e := newFake(costs, contracts, pus)
	res := SpatialTemporal(dag, contracts, pus, 8, 0, e)
	// Global invariants.
	seen := map[int]bool{}
	for _, d := range res.Dispatches {
		if seen[d.Tx] {
			t.Fatalf("tx %d dispatched twice", d.Tx)
		}
		seen[d.Tx] = true
	}
	if len(seen) != len(costs) {
		t.Fatalf("%d of %d txs dispatched", len(seen), len(costs))
	}
	// DAG order: a tx starts only after its deps ended.
	endOf := map[int]uint64{}
	for _, d := range res.Dispatches {
		endOf[d.Tx] = d.End
	}
	for _, d := range res.Dispatches {
		for _, dep := range dag.Deps[d.Tx] {
			if endOf[dep] > d.Start {
				t.Fatalf("tx %d started at %d before dep %d ended at %d",
					d.Tx, d.Start, dep, endOf[dep])
			}
		}
	}
	return e, res
}

func TestSpatialTemporalIndependentSaturates(t *testing.T) {
	dag := types.NewDAG(8)
	_, res := stRun(t, dag, uniform(8, 10), nil, 4)
	if res.Makespan != 20 { // 8 txs / 4 PUs × 10
		t.Fatalf("makespan %d", res.Makespan)
	}
	if res.Utilization() != 1.0 {
		t.Fatalf("utilization %f", res.Utilization())
	}
}

func TestSpatialTemporalChainSerializes(t *testing.T) {
	dag := types.NewDAG(4)
	dag.AddEdge(0, 1)
	dag.AddEdge(1, 2)
	dag.AddEdge(2, 3)
	_, res := stRun(t, dag, uniform(4, 10), nil, 4)
	if res.Makespan != 40 {
		t.Fatalf("chain makespan %d", res.Makespan)
	}
}

func TestSpatialTemporalBeatsSynchronousOnSkew(t *testing.T) {
	// One long tx plus many short: async backfills the other PU.
	costs := []uint64{100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	dag := types.NewDAG(len(costs))
	eSync := newFake(costs, nil, 2)
	sync := Synchronous(dag, 2, 0, eSync)
	_, st := stRun(t, dag, costs, nil, 2)
	if st.Makespan > sync.Makespan {
		t.Fatalf("ST %d worse than sync %d", st.Makespan, sync.Makespan)
	}
	if st.Makespan != 100 { // 100 on one PU; 10×10=100 on the other
		t.Fatalf("ST makespan %d", st.Makespan)
	}
}

func TestRedundancySteering(t *testing.T) {
	// Contracts A,B alternating; 2 PUs. With steering, each PU should
	// stick to one contract.
	n := 12
	cs := make([]types.Address, n)
	a, b := types.BytesToAddress([]byte{1}), types.BytesToAddress([]byte{2})
	for i := range cs {
		if i%2 == 0 {
			cs[i] = a
		} else {
			cs[i] = b
		}
	}
	dag := types.NewDAG(n)
	e, res := stRun(t, dag, uniform(n, 10), cs, 2)
	if res.RedundantSteers < n-4 {
		t.Fatalf("only %d redundant steers", res.RedundantSteers)
	}
	// Check affinity: each PU saw only one contract after warmup.
	seen := map[int]map[types.Address]bool{}
	for tx, pu := range e.puOf {
		if seen[pu] == nil {
			seen[pu] = map[types.Address]bool{}
		}
		seen[pu][cs[tx]] = true
	}
	for pu, set := range seen {
		if len(set) > 1 {
			t.Fatalf("PU %d executed %d contracts (steering failed)", pu, len(set))
		}
	}
}

func TestVValuePriority(t *testing.T) {
	// Window sees a tx whose contract has many future invocations; it
	// should be preferred over a one-off when no redundancy applies.
	n := 6
	hot := types.BytesToAddress([]byte{9})
	cold := types.BytesToAddress([]byte{1})
	cs := []types.Address{cold, hot, hot, hot, hot, hot}
	dag := types.NewDAG(n)
	e := newFake(uniform(n, 10), cs, 1)
	SpatialTemporal(dag, cs, 1, 8, 0, e)
	// First pick: the hot contract (V=4) over the cold one (V=0).
	if cs[e.order[0]] != hot {
		t.Fatalf("first dispatch was %v", e.order)
	}
}

func TestWindowLimitsCandidates(t *testing.T) {
	// With window=1 the scheduler is forced into block order.
	n := 6
	cs := make([]types.Address, n)
	dag := types.NewDAG(n)
	e := newFake(uniform(n, 10), cs, 1)
	SpatialTemporal(dag, cs, 1, 1, 0, e)
	for i, tx := range e.order {
		if tx != i {
			t.Fatalf("window=1 order %v", e.order)
		}
	}
}

func TestScheduleOverheadCharged(t *testing.T) {
	dag := types.NewDAG(2)
	e := newFake(uniform(2, 10), nil, 1)
	res := SpatialTemporal(dag, make([]types.Address, 2), 1, 4, 5, e)
	if res.Makespan != 30 { // 2 × (10+5)
		t.Fatalf("makespan %d with overhead", res.Makespan)
	}
}

func TestSpatialTemporalDeterminism(t *testing.T) {
	dag := types.NewDAG(20)
	for i := 2; i < 20; i += 3 {
		dag.AddEdge(i-2, i)
	}
	cs := make([]types.Address, 20)
	for i := range cs {
		cs[i] = types.BytesToAddress([]byte{byte(i % 3)})
	}
	run := func() []int {
		e := newFake(uniform(20, 7), cs, 4)
		SpatialTemporal(dag, cs, 4, 8, 0, e)
		return e.order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a, b)
		}
	}
}

func TestEmptyBlock(t *testing.T) {
	res := SpatialTemporal(types.NewDAG(0), nil, 4, 8, 0, newFake(nil, nil, 4))
	if res.Makespan != 0 || len(res.Dispatches) != 0 {
		t.Fatalf("%+v", res)
	}
	if Sequential(0, newFake(nil, nil, 1)).Makespan != 0 {
		t.Fatal("sequential empty")
	}
}

func TestContractsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	SpatialTemporal(types.NewDAG(3), make([]types.Address, 2), 1, 4, 0, newFake(uniform(3, 1), nil, 1))
}

func TestUtilizationZeroCases(t *testing.T) {
	if (Result{}).Utilization() != 0 {
		t.Fatal("empty result utilization")
	}
}

func TestDependentTxWaitsForRunningDep(t *testing.T) {
	// T1 depends on T0 (long). A second PU must not grab T1 early; it
	// takes independent T2 instead.
	dag := types.NewDAG(3)
	dag.AddEdge(0, 1)
	costs := []uint64{50, 10, 10}
	e, res := stRun(t, dag, costs, nil, 2)
	_ = e
	var d1 Dispatch
	for _, d := range res.Dispatches {
		if d.Tx == 1 {
			d1 = d
		}
	}
	if d1.Start < 50 {
		t.Fatalf("T1 started at %d while T0 still running", d1.Start)
	}
	if res.Makespan != 60 {
		t.Fatalf("makespan %d", res.Makespan)
	}
}

func TestDeterminismUnderShuffledDispatchTies(t *testing.T) {
	// A workload built to maximize tie-breaking pressure: every cost is
	// equal (all PUs free simultaneously at every barrier instant), the
	// contract pool repeats (many equal V values per pick) and chains
	// force refills mid-flight. Any map-iteration order leaking into the
	// candidate scan or the refill set shows up here: Go randomizes map
	// range order per iteration, so repeated in-process runs would
	// disagree. The full dispatch tuples must match exactly.
	const n, pus, runs = 96, 8, 16
	dag := types.NewDAG(n)
	for i := 5; i < n; i += 5 {
		dag.AddEdge(i-5, i)
	}
	cs := make([]types.Address, n)
	for i := range cs {
		cs[i] = types.BytesToAddress([]byte{byte(i % 4)})
	}
	run := func() []Dispatch {
		res := SpatialTemporal(dag, cs, pus, 8, 0, newFake(uniform(n, 10), cs, pus))
		return res.Dispatches
	}
	want := run()
	for r := 1; r < runs; r++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d dispatches, want %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d: dispatch %d = %+v, want %+v", r, i, got[i], want[i])
			}
		}
	}
}
