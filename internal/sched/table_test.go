package sched

import "testing"

// TestFig6Walkthrough reproduces the paper's Fig. 6 example on the raw
// tables: three PUs run T0/T1/Ta; candidates are [T2 T3 T4 Tb Tc] with
// T2,T3,T4 depending on T0 (De of PU0 = 11100) and T4 also on T1 (De of
// PU1 = 00100); T0's contract SC1 is also called by T2 and T4 (Re of PU0
// = 10100). When PU0 finishes T0, availability from the other PUs' De is
// 11011 → {T2,T3,Tb,Tc}, and the Re bit picks T2.
func TestFig6Walkthrough(t *testing.T) {
	const (
		T0, T1, Ta = 0, 1, 10
		T2, T3, T4 = 2, 3, 4
		Tb, Tc     = 11, 12
	)
	deps := map[int][]int{
		T2: {T0}, T3: {T0}, T4: {T0, T1},
	}
	contract := map[int]int{ // SC ids
		T0: 1, T2: 1, T4: 1, // SC1
		T1: 2, T3: 3, Ta: 4, Tb: 5, Tc: 6,
	}

	tb := NewTables(3, 5)
	running := map[int]int{0: T0, 1: T1, 2: Ta}
	setRow := func(pu int) {
		tb.SetRunning(pu,
			func(cand int) bool {
				for _, d := range deps[cand] {
					if d == running[pu] {
						return true
					}
				}
				return false
			},
			func(cand int) bool { return contract[cand] == contract[running[pu]] })
	}
	setRow(0)
	setRow(1)
	setRow(2)

	for i, tx := range []int{T2, T3, T4, Tb, Tc} {
		tx := tx
		tb.Write(i, tx, 0,
			func(pu int) bool {
				for _, d := range deps[tx] {
					if d == running[pu] {
						return true
					}
				}
				return false
			},
			func(pu int) bool { return contract[tx] == contract[running[pu]] })
	}

	// De of PU0 over [T2 T3 T4 Tb Tc] = 11100; Re of PU0 = 10100.
	for i, want := range []bool{true, true, true, false, false} {
		if tb.de[0].get(i) != want {
			t.Fatalf("De[PU0] bit %d = %v", i, tb.de[0].get(i))
		}
	}
	for i, want := range []bool{true, false, true, false, false} {
		if tb.re[0].get(i) != want {
			t.Fatalf("Re[PU0] bit %d = %v", i, tb.re[0].get(i))
		}
	}
	// De of PU1 = 00100 (only T4 depends on T1).
	for i, want := range []bool{false, false, true, false, false} {
		if tb.de[1].get(i) != want {
			t.Fatalf("De[PU1] bit %d = %v", i, tb.de[1].get(i))
		}
	}

	// PU0 finishes T0 and selects: T4 is blocked by PU1's De; T2 wins on Re.
	tb.ClearRunning(0)
	got, redundant := tb.Select(0)
	if got != T2 {
		t.Fatalf("PU0 selected T%d, want T2", got)
	}
	if !redundant {
		t.Fatal("T2 selection not flagged redundant")
	}
	if tb.Contains(T2) {
		t.Fatal("selected slot not freed")
	}
}

func TestTablesSelectBlockedByRunningDep(t *testing.T) {
	tb := NewTables(2, 4)
	// PU1 runs tx 9; candidate 5 depends on it.
	tb.SetRunning(1, func(int) bool { return false }, func(int) bool { return false })
	tb.Write(0, 5, 0,
		func(pu int) bool { return pu == 1 },
		func(int) bool { return false })
	if tx, _ := tb.Select(0); tx != -1 {
		t.Fatalf("selected %d despite running dependency", tx)
	}
	// Completion unblocks it.
	tb.ClearRunning(1)
	if tx, _ := tb.Select(0); tx != 5 {
		t.Fatalf("selected %d after dep completion", tx)
	}
}

func TestTablesVPriority(t *testing.T) {
	tb := NewTables(1, 4)
	noDep := func(int) bool { return false }
	tb.Write(0, 7, 1, noDep, noDep2)
	tb.Write(1, 8, 5, noDep, noDep2)
	tb.Write(2, 9, 3, noDep, noDep2)
	if tx, _ := tb.Select(0); tx != 8 {
		t.Fatalf("selected %d, want the largest V (8)", tx)
	}
}

func noDep2(int) bool { return false }

func TestTablesFreeSlotAndOccupied(t *testing.T) {
	tb := NewTables(1, 2)
	if tb.FreeSlot() != 0 {
		t.Fatal("fresh free slot")
	}
	f := func(int) bool { return false }
	tb.Write(0, 3, 0, f, f)
	tb.Write(1, 4, 0, f, f)
	if tb.FreeSlot() != -1 {
		t.Fatal("full window has a free slot")
	}
	occ := tb.Occupied()
	if len(occ) != 2 || occ[0] != 3 || occ[1] != 4 {
		t.Fatalf("occupied %v", occ)
	}
	tb.Select(0)
	if tb.FreeSlot() < 0 {
		t.Fatal("select did not free the slot")
	}
}

func TestBitmapWideWindow(t *testing.T) {
	// Windows wider than 64 slots span multiple words.
	b := newBitmap(130)
	b.set(0, true)
	b.set(64, true)
	b.set(129, true)
	if !b.get(0) || !b.get(64) || !b.get(129) || b.get(1) || b.get(128) {
		t.Fatal("multi-word bitmap broken")
	}
	dst := newBitmap(130)
	b.orInto(dst)
	if !dst.get(64) {
		t.Fatal("orInto lost bits")
	}
	b.set(64, false)
	if b.get(64) {
		t.Fatal("clear bit failed")
	}
	b.clear()
	if b.get(0) || b.get(129) {
		t.Fatal("clear failed")
	}
}
