// Package sched implements the transaction scheduling algorithms of the
// paper: the spatio-temporal scheduling of §3.2 (asynchronous PU-driven
// selection over a candidate window, steered by the Scheduling Table's
// dependency and redundancy bitmaps and the Transaction Table's locks and
// redundancy values), plus the synchronous (barrier) and sequential
// baselines it is evaluated against in Figs. 14-16.
package sched

import (
	"fmt"
	"math"

	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// Engine abstracts the hardware the scheduler drives: Dispatch simulates
// the transaction on the PU (mutating its microarchitectural state, so
// redundant transactions landing on the same PU naturally reuse its DB
// cache and contexts) and returns the cycle cost. Redundancy steering is
// handled by the Scheduling Table itself (table.go).
type Engine interface {
	Dispatch(pu, tx int) uint64
}

// Dispatch records one scheduled execution.
type Dispatch struct {
	Tx, PU     int
	Start, End uint64
}

// Result summarizes one scheduled block execution.
type Result struct {
	Makespan   uint64
	Dispatches []Dispatch
	// BusyCycles per PU, for the utilization of Fig. 15.
	BusyCycles []uint64
	// RedundantSteers counts selections that matched the PU's last
	// contract (the Re-bit fast path of §3.2.2).
	RedundantSteers int
	// RefillScans counts candidate evaluations in the window-refill
	// loop — the host-side cost of the linear scan (O(window × txs)
	// worst case), the number a future tree-structured scheduler
	// would have to beat. Zero for the sequential and synchronous
	// baselines, which have no candidate window.
	RefillScans uint64
}

// Utilization returns busy/(PUs × makespan), the Fig. 15 metric.
func (r Result) Utilization() float64 {
	if r.Makespan == 0 || len(r.BusyCycles) == 0 {
		return 0
	}
	var busy uint64
	for _, b := range r.BusyCycles {
		busy += b
	}
	return float64(busy) / (float64(r.Makespan) * float64(len(r.BusyCycles)))
}

// Sequential executes every transaction in block order on PU 0.
func Sequential(n int, e Engine) Result {
	res := Result{BusyCycles: make([]uint64, 1)}
	var now uint64
	for tx := 0; tx < n; tx++ {
		cost := e.Dispatch(0, tx)
		res.Dispatches = append(res.Dispatches, Dispatch{Tx: tx, PU: 0, Start: now, End: now + cost})
		now += cost
	}
	res.Makespan = now
	res.BusyCycles[0] = now
	return res
}

// Synchronous executes the block in barrier rounds: each round takes up
// to numPUs transactions whose dependencies have all completed, runs them
// in parallel, and waits for the slowest before starting the next round —
// the conventional software approach of §4.3's first comparison point.
func Synchronous(dag *types.DAG, numPUs int, overhead uint64, e Engine) Result {
	n := dag.Len()
	res := Result{BusyCycles: make([]uint64, numPUs)}
	completed := make([]bool, n)
	done := 0
	var now uint64

	for done < n {
		// Collect this round's ready set in block order.
		var round []int
		for tx := 0; tx < n && len(round) < numPUs; tx++ {
			if completed[tx] {
				continue
			}
			ready := true
			for _, d := range dag.Deps[tx] {
				if !completed[d] {
					ready = false
					break
				}
			}
			if ready {
				round = append(round, tx)
			}
		}
		if len(round) == 0 {
			panic("sched: no ready transactions — cyclic DAG")
		}
		var roundEnd uint64
		for i, tx := range round {
			cost := e.Dispatch(i, tx) + overhead
			end := now + cost
			res.Dispatches = append(res.Dispatches, Dispatch{Tx: tx, PU: i, Start: now, End: end})
			res.BusyCycles[i] += cost
			if end > roundEnd {
				roundEnd = end
			}
		}
		for _, tx := range round {
			completed[tx] = true
		}
		done += len(round)
		now = roundEnd
	}
	res.Makespan = now
	return res
}

// stState is the CPU-side bookkeeping around the Fig. 6 hardware tables:
// which transactions have completed or are running (and on which PU),
// plus the per-contract remaining-invocation counts behind the V values.
// Contracts are interned once at construction into dense ids (cid 0 is
// reserved for the zero address, which never matches redundancy), so
// the per-pick hot loops index arrays instead of hashing addresses.
type stState struct {
	dag       *types.DAG
	contracts []types.Address

	// cids holds each transaction's dense contract id; remaining counts
	// pending+running transactions per cid (a transaction's V value is
	// remaining[cid]-1).
	cids      []uint32
	remaining []int32

	completed []bool
	running   []bool
	admitted  []bool
	runningTx []int // per PU; -1 when idle

	tables *Tables

	// lastCid is the contract each PU ran last (0 = none/zero address).
	lastCid []uint32

	// runningMark is refill's scratch set of running contracts: cid c is
	// a member iff runningMark[c] == runningEpoch. Bumping the epoch
	// empties the set without clearing — the fix for the map that was
	// rebuilt on every pick.
	runningMark  []uint32
	runningEpoch uint32

	// scans accumulates refill's candidate evaluations (Result.RefillScans).
	scans uint64
}

func newSTState(dag *types.DAG, contracts []types.Address, numPUs, m int) *stState {
	n := dag.Len()
	s := &stState{
		dag:       dag,
		contracts: contracts,
		cids:      make([]uint32, n),
		completed: make([]bool, n),
		running:   make([]bool, n),
		admitted:  make([]bool, n),
		runningTx: make([]int, numPUs),
		tables:    NewTables(numPUs, m),
		lastCid:   make([]uint32, numPUs),
	}
	for i := range s.runningTx {
		s.runningTx[i] = -1
	}
	// Intern contracts in first-appearance order; the one map here is
	// the only address hashing the scheduler ever does.
	ids := make(map[types.Address]uint32, len(contracts))
	var zero types.Address
	ids[zero] = 0
	for tx, c := range contracts {
		id, ok := ids[c]
		if !ok {
			id = uint32(len(ids))
			ids[c] = id
		}
		s.cids[tx] = id
	}
	s.remaining = make([]int32, len(ids))
	for _, id := range s.cids {
		s.remaining[id]++
	}
	s.runningMark = make([]uint32, len(ids))
	s.refill()
	return s
}

// value is the Transaction Table V entry: how many more times the
// transaction's contract will be executed.
func (s *stState) value(tx int) int {
	return int(s.remaining[s.cids[tx]]) - 1
}

// eligible reports whether every dependency is completed or running —
// the §3.2.1 admission rule ("the indegree of these transactions is 0",
// counting only unscheduled transactions).
func (s *stState) eligible(tx int) bool {
	for _, d := range s.dag.Deps[tx] {
		if !s.completed[d] && !s.running[d] {
			return false
		}
	}
	return true
}

// dependsOn reports a DAG edge from the tx running on PU p to tx.
func (s *stState) dependsOnPU(p, tx int) bool {
	r := s.runningTx[p]
	if r < 0 {
		return false
	}
	for _, d := range s.dag.Deps[tx] {
		if d == r {
			return true
		}
	}
	return false
}

// redundantWithPU reports whether tx calls the contract PU p ran last
// (cid 0 — idle or the zero address — never matches).
func (s *stState) redundantWithPU(p, tx int) bool {
	c := s.lastCid[p]
	return c != 0 && s.cids[tx] == c
}

// refill tops the candidate window up (step 4 of Fig. 6): transactions
// calling the same contract as one currently being executed are
// prioritized, then larger V (§3.2.1).
func (s *stState) refill() {
	s.runningEpoch++
	for _, tx := range s.runningTx {
		if tx >= 0 {
			s.runningMark[s.cids[tx]] = s.runningEpoch
		}
	}
	for {
		slot := s.tables.FreeSlot()
		if slot < 0 {
			return
		}
		best := -1
		bestKey := math.MinInt
		for tx := 0; tx < s.dag.Len(); tx++ {
			if s.admitted[tx] || s.completed[tx] || s.running[tx] || !s.eligible(tx) {
				continue
			}
			key := s.value(tx) * 2
			if s.runningMark[s.cids[tx]] == s.runningEpoch {
				key += s.dag.Len() * 4 // same-contract priority dominates
			}
			// Ascending iteration keeps the earliest index on ties.
			if key > bestKey {
				best, bestKey = tx, key
			}
		}
		// The scan always walks the full index range; one add outside the
		// loop keeps the count exact without touching the hot body.
		s.scans += uint64(s.dag.Len())
		if best < 0 {
			return
		}
		s.admitted[best] = true
		tx := best
		s.tables.Write(slot, tx, s.value(tx),
			func(p int) bool { return s.dependsOnPU(p, tx) },
			func(p int) bool { return s.redundantWithPU(p, tx) })
	}
}

// dispatch selects a transaction for PU p through the tables and updates
// the Scheduling Table for the new running set.
func (s *stState) dispatch(p int) Pick {
	pk := s.tables.SelectPick(p)
	tx := pk.Tx
	if tx < 0 {
		return pk
	}
	s.running[tx] = true
	s.runningTx[p] = tx
	s.lastCid[p] = s.cids[tx]
	s.tables.SetRunning(p,
		func(cand int) bool {
			for _, d := range s.dag.Deps[cand] {
				if d == tx {
					return true
				}
			}
			return false
		},
		func(cand int) bool { return s.cids[cand] == s.cids[tx] })
	return pk
}

// complete retires PU p's transaction.
func (s *stState) complete(p int) {
	tx := s.runningTx[p]
	s.runningTx[p] = -1
	s.running[tx] = false
	s.completed[tx] = true
	s.remaining[s.cids[tx]]--
	s.tables.ClearRunning(p)
}

// SpatialTemporal runs the spatio-temporal scheduling algorithm of §3.2
// as a discrete-event simulation: PUs asynchronously pull the best
// candidate when they free up; the CPU refills the window off the
// critical path.
func SpatialTemporal(dag *types.DAG, contracts []types.Address, numPUs, window int, overhead uint64, e Engine) Result {
	return SpatialTemporalObs(dag, contracts, numPUs, window, overhead, e, nil)
}

// SpatialTemporalObs is SpatialTemporal emitting scheduler events —
// pick classification and window occupancy at each selection — to sink
// when it is non-nil. The schedule itself is identical either way.
func SpatialTemporalObs(dag *types.DAG, contracts []types.Address, numPUs, window int, overhead uint64, e Engine, sink obs.Sink) Result {
	n := dag.Len()
	if len(contracts) != n {
		panic(fmt.Sprintf("sched: %d contracts for %d transactions", len(contracts), n))
	}
	res := Result{BusyCycles: make([]uint64, numPUs)}
	if n == 0 {
		return res
	}
	s := newSTState(dag, contracts, numPUs, window)

	puBusyUntil := make([]uint64, numPUs)
	var now uint64
	done := 0

	for done < n {
		// Give work to every idle PU, in PU order (deterministic).
		for p := 0; p < numPUs; p++ {
			if s.runningTx[p] >= 0 {
				continue
			}
			pk := s.dispatch(p)
			tx := pk.Tx
			if tx < 0 {
				continue
			}
			if pk.Redundant {
				res.RedundantSteers++
			}
			if sink != nil {
				sink.SchedPick(p, now, pk.Kind(), pk.Occupied)
			}
			cost := e.Dispatch(p, tx) + overhead
			puBusyUntil[p] = now + cost
			res.Dispatches = append(res.Dispatches, Dispatch{Tx: tx, PU: p, Start: now, End: now + cost})
			res.BusyCycles[p] += cost
			// CPU writes replacement candidates into the freed slot.
			s.refill()
		}

		// Advance to the next completion.
		next := uint64(math.MaxUint64)
		for p := 0; p < numPUs; p++ {
			if s.runningTx[p] >= 0 && puBusyUntil[p] < next {
				next = puBusyUntil[p]
			}
		}
		if next == math.MaxUint64 {
			panic("sched: deadlock — idle PUs with pending transactions (cyclic DAG?)")
		}
		now = next
		for p := 0; p < numPUs; p++ {
			if s.runningTx[p] >= 0 && puBusyUntil[p] == now {
				s.complete(p)
				done++
			}
		}
		// Completions may make new transactions eligible.
		s.refill()
	}
	res.Makespan = now
	res.RefillScans = s.scans
	return res
}
