package sched

import "mtpu/internal/obs"

// This file implements the hardware data structures of Fig. 6 bit for
// bit: the candidate window in main memory, the per-PU Scheduling Table
// rows (dependency bitmap De, redundancy bitmap Re, validity bit) and the
// Transaction Table (lock bit L, redundancy value V). The discrete-event
// scheduler drives them exactly as the paper's selection flow describes;
// transaction selection costs O(m) bit operations (§3.2.3).

// bitmap is a fixed-width bit vector over the m candidate slots.
type bitmap []uint64

func newBitmap(m int) bitmap {
	return make(bitmap, (m+63)/64)
}

func (b bitmap) set(i int, v bool) {
	if v {
		b[i/64] |= 1 << (i % 64)
	} else {
		b[i/64] &^= 1 << (i % 64)
	}
}

func (b bitmap) get(i int) bool {
	return b[i/64]&(1<<(i%64)) != 0
}

func (b bitmap) clear() {
	for i := range b {
		b[i] = 0
	}
}

// orInto accumulates b into dst.
func (b bitmap) orInto(dst bitmap) {
	for i := range b {
		dst[i] |= b[i]
	}
}

// Tables bundles the candidate window with the Scheduling Table and
// Transaction Table state for numPUs processing units and m slots.
type Tables struct {
	m int

	// Candidate window (main memory): transaction index per slot, -1 free.
	slot []int

	// Transaction Table.
	locked []bool // L: slot is being read by a PU
	value  []int  // V: remaining redundancy degree of the slot's contract

	// Scheduling Table: one row per PU.
	de    []bitmap // De: slot depends on the tx running on this PU
	re    []bitmap // Re: slot is redundant with the tx running on this PU
	valid []bool   // validity bit guarding asynchronous updates
}

// NewTables builds empty tables.
func NewTables(numPUs, m int) *Tables {
	t := &Tables{
		m:      m,
		slot:   make([]int, m),
		locked: make([]bool, m),
		value:  make([]int, m),
		de:     make([]bitmap, numPUs),
		re:     make([]bitmap, numPUs),
		valid:  make([]bool, numPUs),
	}
	for i := range t.slot {
		t.slot[i] = -1
	}
	for p := range t.de {
		t.de[p] = newBitmap(m)
		t.re[p] = newBitmap(m)
	}
	return t
}

// FreeSlot returns an unoccupied slot index, or -1 if the window is full.
func (t *Tables) FreeSlot() int {
	for i, tx := range t.slot {
		if tx < 0 {
			return i
		}
	}
	return -1
}

// Write places tx into a free slot with redundancy value v and fills the
// per-PU De/Re bits from the supplied predicates (step 4-5 of Fig. 6).
// De bits are meaningful only while the PU's row is valid (a running
// transaction); Re bits track redundancy with the PU's current or most
// recent transaction, which is what steers the next pick.
func (t *Tables) Write(slotIdx, tx, v int, dependsOnPU, redundantWithPU func(pu int) bool) {
	t.slot[slotIdx] = tx
	t.locked[slotIdx] = false
	t.value[slotIdx] = v
	for p := range t.de {
		t.de[p].set(slotIdx, t.valid[p] && dependsOnPU(p))
		t.re[p].set(slotIdx, redundantWithPU(p))
	}
}

// SetRunning refreshes PU p's Scheduling-Table row after it starts a new
// transaction: its De/Re bits are recomputed for every occupied slot and
// the row becomes valid.
func (t *Tables) SetRunning(p int, dependsOn, redundantWith func(tx int) bool) {
	t.de[p].clear()
	t.re[p].clear()
	for i, tx := range t.slot {
		if tx < 0 {
			continue
		}
		t.de[p].set(i, dependsOn(tx))
		t.re[p].set(i, redundantWith(tx))
	}
	t.valid[p] = true
}

// ClearRunning invalidates PU p's dependency row when its transaction
// completes. Invalid dependencies are treated as all zeros (§3.2.2): the
// completed transaction no longer blocks others. The Re row survives —
// redundancy with the just-finished transaction is exactly what the next
// selection exploits for DB-cache and context reuse.
func (t *Tables) ClearRunning(p int) {
	t.de[p].clear()
	t.valid[p] = false
}

// Pick describes one Select outcome with the detail the observability
// layer attributes: how many window slots were occupied and how many of
// them actually passed the availability mask (Selectable == 1 means the
// pick was forced — the scheduler had no freedom).
type Pick struct {
	Tx         int
	Redundant  bool
	Occupied   int
	Selectable int
}

// Kind classifies the pick for instrumentation.
func (p Pick) Kind() obs.PickKind {
	switch {
	case p.Redundant:
		return obs.PickRedundant
	case p.Selectable == 1:
		return obs.PickForced
	}
	return obs.PickLargestV
}

// Select implements the PU-side flow for PU p (steps 1-2 of Fig. 6):
// compute the availability mask from the OTHER PUs' dependency bitmaps,
// prefer an available slot whose Re bit is set for p, otherwise take the
// largest V. It locks and frees the chosen slot, returning the
// transaction index (or -1 when nothing is selectable).
func (t *Tables) Select(p int) (tx int, redundant bool) {
	pk := t.SelectPick(p)
	return pk.Tx, pk.Redundant
}

// SelectPick is Select also reporting window occupancy and how
// constrained the choice was.
func (t *Tables) SelectPick(p int) Pick {
	// Step 1: blocked = OR of valid De rows of all PUs except p.
	blocked := newBitmap(t.m)
	for q := range t.de {
		if q == p || !t.valid[q] {
			continue
		}
		t.de[q].orInto(blocked)
	}

	best, bestV := -1, -1
	bestRe := false
	occupied, selectable := 0, 0
	for i, candidate := range t.slot {
		if candidate < 0 {
			continue
		}
		occupied++
		if t.locked[i] || blocked.get(i) {
			continue
		}
		selectable++
		isRe := t.re[p].get(i)
		better := false
		switch {
		case best < 0:
			better = true
		case isRe != bestRe:
			better = isRe // step 2: redundancy takes priority
		case t.value[i] != bestV:
			better = t.value[i] > bestV
		default:
			better = t.slot[i] < t.slot[best]
		}
		if better {
			best, bestV, bestRe = i, t.value[i], isRe
		}
	}
	if best < 0 {
		return Pick{Tx: -1, Occupied: occupied}
	}
	// Lock until the read completes, then the CPU reclaims the slot.
	t.locked[best] = true
	tx := t.slot[best]
	t.slot[best] = -1
	t.locked[best] = false
	return Pick{Tx: tx, Redundant: bestRe, Occupied: occupied, Selectable: selectable}
}

// Occupied returns the transactions currently in the window.
func (t *Tables) Occupied() []int {
	var out []int
	for _, tx := range t.slot {
		if tx >= 0 {
			out = append(out, tx)
		}
	}
	return out
}

// Contains reports whether tx sits in some slot.
func (t *Tables) Contains(tx int) bool {
	for _, s := range t.slot {
		if s == tx {
			return true
		}
	}
	return false
}
