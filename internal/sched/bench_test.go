package sched

import (
	"testing"

	"mtpu/internal/types"
)

// benchEngine is the cheapest possible Engine: fixed cost, no tracking,
// so the benchmark isolates the scheduler's own pick/refill loop.
type benchEngine struct{ costs []uint64 }

func (e benchEngine) Dispatch(pu, tx int) uint64 { return e.costs[tx] }

// benchWorkload builds an n-transaction block mixing chain dependencies
// (every third transaction depends on its predecessor) with a small
// contract pool, the shape the spatio-temporal tables see in the token
// sweeps.
func benchWorkload(n int) (*types.DAG, []types.Address, []uint64) {
	dag := types.NewDAG(n)
	for i := 2; i < n; i += 3 {
		dag.AddEdge(i-2, i)
	}
	contracts := make([]types.Address, n)
	costs := make([]uint64, n)
	for i := range contracts {
		contracts[i] = types.BytesToAddress([]byte{byte(i % 7)})
		costs[i] = uint64(50 + i%13)
	}
	return dag, contracts, costs
}

// BenchmarkSpatialTemporalPick measures the scheduler pick loop end to
// end: one iteration schedules a full block, so allocs/op is the total
// scheduling-side allocation per block (the per-pick runningContracts
// map this PR removed used to dominate it).
func BenchmarkSpatialTemporalPick(b *testing.B) {
	const n = 512
	dag, contracts, costs := benchWorkload(n)
	e := benchEngine{costs: costs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpatialTemporal(dag, contracts, 8, 8, 0, e)
	}
	b.ReportMetric(float64(n), "picks/op")
}

// BenchmarkSynchronousSchedule is the barrier scheduler over the same
// workload, the baseline the spatio-temporal pick loop is compared to.
func BenchmarkSynchronousSchedule(b *testing.B) {
	const n = 512
	dag, _, costs := benchWorkload(n)
	e := benchEngine{costs: costs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synchronous(dag, 8, 0, e)
	}
	b.ReportMetric(float64(n), "picks/op")
}
