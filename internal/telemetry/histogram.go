package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// histSubBits is the log-linear subdivision of the histogram: every
// power-of-two octave is split into 2^histSubBits linear sub-buckets,
// bounding the relative quantile error at 1/2^histSubBits (6.25%).
const histSubBits = 4

// histBuckets covers the full uint64 range: values below 2^histSubBits
// map to themselves, every later octave contributes 2^histSubBits
// buckets.
const histBuckets = (64 - histSubBits + 1) << histSubBits

// Histogram is an HDR-style log-linear histogram of uint64 samples
// (latencies in nanoseconds, sizes in bytes — any non-negative scalar).
// Recording is one atomic add per sample plus min/max maintenance —
// zero allocations, safe for concurrent use. Quantile queries walk the
// bucket array and are meant for snapshot/exposition time, not hot
// paths.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stores ^value so zero means "unset"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a sample to its bucket. Small values map to
// themselves; larger values land in (octave, sub-bucket) cells that
// tile the range contiguously.
func bucketIndex(v uint64) int {
	if v < 1<<histSubBits {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	offset := msb - histSubBits + 1
	return offset<<histSubBits + int((v>>(msb-histSubBits))&(1<<histSubBits-1))
}

// bucketLow returns the smallest sample value mapping to bucket idx —
// the inverse of bucketIndex on bucket boundaries.
func bucketLow(idx int) uint64 {
	offset := idx >> histSubBits
	if offset == 0 {
		return uint64(idx)
	}
	msb := offset + histSubBits - 1
	sub := uint64(idx & (1<<histSubBits - 1))
	return 1<<msb + sub<<(msb-histSubBits)
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if cur != 0 && ^cur <= v {
			break
		}
		if h.min.CompareAndSwap(cur, ^v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if m := h.min.Load(); m != 0 {
		return ^m
	}
	return 0
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return math.NaN()
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) with
// relative error bounded by the sub-bucket width. Returns 0 when empty.
// Concurrent recording during the walk can skew the estimate by the
// in-flight samples; snapshots tolerate that.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen >= target {
			// Midpoint of the bucket, clamped into the observed range.
			low := bucketLow(i)
			high := low
			if i+1 < histBuckets {
				high = bucketLow(i+1) - 1
			}
			mid := low + (high-low)/2
			if mx := h.Max(); mid > mx {
				mid = mx
			}
			if mn := h.Min(); mid < mn {
				mid = mn
			}
			return mid
		}
	}
	return h.Max()
}

// Reset zeroes the histogram. Not linearizable against concurrent
// Record calls; callers quiesce recording first.
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
