// Package telemetry is the host-side metrics layer of the MTPU
// simulator — the wall-clock complement of the simulated-cycle
// accounting in internal/obs. Where obs answers "where did the
// simulated cycles go inside one replay", telemetry answers "how is
// this process doing over time": replays and simulated transactions
// per wall-second, block replay latency percentiles, DB-cache and
// State-Buffer warm/cold splits, scheduler pick rates, and Block-STM
// incarnation/abort rates — the run-time signals a long-running
// execution service reports and a batch CLI stamps into its run
// ledger.
//
// Recording is off by default: every integration point holds a nil
// *Metrics and pays one branch to skip it. When enabled, counters are
// single atomic adds and latency samples are one histogram add — zero
// allocations either way, safe for concurrent replays. Exposition has
// three faces: a Prometheus text endpoint plus expvar and pprof on an
// optional HTTP listener (Serve), a point-in-time Snapshot for JSON
// artifacts, and a JSONL run ledger (ledger.go) with a regression
// comparator (regress.go) shared by cmd/mtpu-report and the `make
// perf` gate.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Metrics is the typed registry of every host-side signal the
// simulator reports. One Metrics instance serves a whole process
// (concurrent sweep workers share it; everything inside is atomic).
// The zero value is not usable — construct with New so the start time
// and the obs bridge are initialized.
type Metrics struct {
	start time.Time

	// Replay volume: completed block replays, their simulated
	// transactions, instructions and makespan cycles. Sustained
	// replays/s and simulated-tx/s derive from these over uptime.
	Replays            Counter
	ReplayTxs          Counter
	ReplayInstructions Counter
	ReplayCycles       Counter

	// DB-cache warm/cold split, fed by the obs bridge at commit
	// boundaries (DBHits+DBMisses == lookups).
	DBHits   Counter
	DBMisses Counter

	// State Buffer warm/cold split, recorded per replay from the
	// processor's counters.
	SBufHits   Counter
	SBufMisses Counter

	// Scheduler behaviour: picks by class (via the obs bridge) and
	// candidate-window refill scans (the O(window × txs) loop the
	// tree-scheduler roadmap item wants measured).
	SchedPicks       [obs.NumPickKinds]Counter
	SchedRefillScans Counter

	// Optimistic-execution rates, streamed live by the Block-STM
	// executor as incarnations complete — the signals invisible in a
	// consensus DAG and only observable at run time.
	STMIncarnations     Counter
	STMAborts           Counter
	STMEstimateAborts   Counter
	STMValidationPasses Counter
	STMValidationFails  Counter

	// Block-stream pipeline signals (internal/stream, cmd/mtpu-serve):
	// ingest admission counters, per-stage queue-depth gauges and busy
	// time, and the shadow-validation outcome counters. All zero for
	// batch runs, in which case the snapshot omits the stream section.
	StreamAccepted     Counter
	StreamRejected     Counter // queue-full rejections at ingest
	StreamInvalid      Counter // blocks the prefetch stage rejected
	StreamCommitted    Counter
	StreamCommittedTxs Counter
	StreamShadowChecks Counter
	StreamShadowFails  Counter
	// StreamOverlap counts the times a pipeline stage began work while
	// another stage was already busy — direct evidence the cross-block
	// pipeline actually overlapped (prefetching block N+1 while block N
	// executed), not just queued.
	StreamOverlap Counter
	// StreamQueueDepth[s] is the instantaneous depth of the bounded
	// queue feeding stage s; StreamStageBusyNS[s] accumulates the
	// wall-clock nanoseconds stage s spent processing (not waiting).
	StreamQueueDepth  [NumStreamStages]Gauge
	StreamStageBusyNS [NumStreamStages]Counter

	// Multi-version state layer (internal/mvstate): cross-block fold
	// and snapshot activity for the chained stream service. Commits
	// counts block folds into the canonical head; VersionsFolded and
	// VersionsGCd count chain entries appended and pruned; SnapshotReads
	// counts pinned-snapshot resolutions through the version chains;
	// Revalidations/Invalidations count prefetch read-set checks and the
	// subset that found stale reads. ChainEntries and MaxChainLen gauge
	// the live version-chain footprint. All zero outside server mode, in
	// which case the snapshot omits the mvstate section.
	MVStateCommits        Counter
	MVStateVersionsFolded Counter
	MVStateVersionsGCd    Counter
	MVStateSnapshotReads  Counter
	MVStateRevalidations  Counter
	MVStateInvalidations  Counter
	MVStateChainEntries   Gauge
	MVStateMaxChainLen    Gauge

	// latencies holds one wall-clock block-latency histogram per
	// engine label. The map is append-only under mu; the read path
	// (one lookup per replay) takes the read lock only.
	mu        sync.RWMutex
	latencies map[string]*Histogram

	bridge bridge
}

// New returns an empty Metrics anchored at the current time.
func New() *Metrics {
	m := &Metrics{start: time.Now(), latencies: make(map[string]*Histogram)}
	m.bridge.m = m
	return m
}

// Start returns the construction time (the uptime anchor).
func (m *Metrics) Start() time.Time { return m.start }

// Uptime returns the wall-clock time since construction.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// Sink returns the obs.Sink face of the metrics: attach it (alone, or
// Tee'd with a cycle-obs Collector) at the one sink attachment point a
// replay has, and DB-cache flushes and scheduler picks stream into the
// counters. The bridge is concurrency-safe, so one instance serves
// every replay of the process.
func (m *Metrics) Sink() obs.Sink { return &m.bridge }

// Latency returns the block-latency histogram for an engine label,
// creating it on first use. Steady-state calls allocate nothing (one
// read-locked map lookup).
func (m *Metrics) Latency(label string) *Histogram {
	m.mu.RLock()
	h := m.latencies[label]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.latencies[label]; h == nil {
		h = &Histogram{}
		m.latencies[label] = h
	}
	return h
}

// ObserveReplay records one completed block replay: its engine label,
// simulated volume, and wall-clock duration.
func (m *Metrics) ObserveReplay(label string, txs int, instructions, cycles uint64, wall time.Duration) {
	m.Replays.Inc()
	m.ReplayTxs.Add(uint64(txs))
	m.ReplayInstructions.Add(instructions)
	m.ReplayCycles.Add(cycles)
	m.Latency(label).Record(uint64(wall.Nanoseconds()))
}

// bridge adapts Metrics to obs.Sink. Unlike obs.Collector it is safe
// for concurrent use, so one bridge serves every replay goroutine.
type bridge struct{ m *Metrics }

// DBFlush implements obs.Sink: fold one batched DB-cache delta into
// the warm/cold counters.
func (b *bridge) DBFlush(_ int, _ types.Address, d *obs.DBDelta) {
	b.m.DBHits.Add(d.Hits)
	b.m.DBMisses.Add(d.Misses)
}

// SchedPick implements obs.Sink.
func (b *bridge) SchedPick(pu int, now uint64, kind obs.PickKind, occupied int) {
	_, _, _ = pu, now, occupied
	if int(kind) < len(b.m.SchedPicks) {
		b.m.SchedPicks[kind].Inc()
	}
}

// LatencySnapshot is the exported percentile summary of one engine's
// block-latency histogram (milliseconds).
type LatencySnapshot struct {
	Label  string  `json:"label"`
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// StreamStage identifies one stage of the block-stream pipeline; each
// stage is fed by one bounded queue (ingest is the producer, not a
// stage — its admission outcomes are the Accepted/Rejected counters).
type StreamStage int

const (
	// StagePrefetch decodes block N+1 — DAG, traces, symbol tables,
	// plans — while StageExecute replays block N and StageCommit
	// verifies and publishes block N−1.
	StagePrefetch StreamStage = iota
	StageExecute
	StageCommit
	NumStreamStages
)

// String names the stage for snapshots and Prometheus labels.
func (s StreamStage) String() string {
	switch s {
	case StagePrefetch:
		return "prefetch"
	case StageExecute:
		return "execute"
	case StageCommit:
		return "commit"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// StreamSnapshot is the exported block-stream pipeline section.
type StreamSnapshot struct {
	Accepted     uint64 `json:"accepted"`
	Rejected     uint64 `json:"rejected"`
	Invalid      uint64 `json:"invalid"`
	Committed    uint64 `json:"committed"`
	CommittedTxs uint64 `json:"committed_txs"`
	ShadowChecks uint64 `json:"shadow_checks"`
	ShadowFails  uint64 `json:"shadow_fails"`
	Overlap      uint64 `json:"overlap"`

	// QueueDepth and StageBusyMS are keyed by stage name, one entry
	// per pipeline stage.
	QueueDepth  map[string]int64   `json:"queue_depth"`
	StageBusyMS map[string]float64 `json:"stage_busy_ms"`
}

// Check validates the stream section's counter identities. With
// drained true (the pipeline has been closed and fully drained) it
// additionally requires every accepted block to be accounted for and
// every queue to be empty — the graceful-drain contract.
func (s *StreamSnapshot) Check(drained bool) error {
	if s.Committed+s.Invalid > s.Accepted {
		return fmt.Errorf("telemetry: stream committed %d + invalid %d exceed accepted %d",
			s.Committed, s.Invalid, s.Accepted)
	}
	if s.ShadowChecks > s.Committed {
		return fmt.Errorf("telemetry: stream shadow checks %d exceed committed %d",
			s.ShadowChecks, s.Committed)
	}
	if s.ShadowFails > s.ShadowChecks {
		return fmt.Errorf("telemetry: stream shadow fails %d exceed checks %d",
			s.ShadowFails, s.ShadowChecks)
	}
	for stage, d := range s.QueueDepth {
		if d < 0 {
			return fmt.Errorf("telemetry: stream %s queue depth %d negative", stage, d)
		}
		if drained && d != 0 {
			return fmt.Errorf("telemetry: stream %s queue depth %d after drain", stage, d)
		}
	}
	if drained && s.Committed+s.Invalid != s.Accepted {
		return fmt.Errorf("telemetry: drained stream committed %d + invalid %d != accepted %d",
			s.Committed, s.Invalid, s.Accepted)
	}
	return nil
}

// MVStateSnapshot is the exported multi-version state layer section.
type MVStateSnapshot struct {
	Commits        uint64 `json:"commits"`
	VersionsFolded uint64 `json:"versions_folded"`
	VersionsGCd    uint64 `json:"versions_gcd"`
	SnapshotReads  uint64 `json:"snapshot_reads"`
	Revalidations  uint64 `json:"revalidations"`
	Invalidations  uint64 `json:"invalidations"`
	ChainEntries   int64  `json:"chain_entries"`
	MaxChainLen    int64  `json:"max_chain_len"`
}

// Check validates the mvstate section's counter identities.
func (s *MVStateSnapshot) Check() error {
	if s.VersionsGCd > s.VersionsFolded {
		return fmt.Errorf("telemetry: mvstate versions gcd %d exceed folded %d",
			s.VersionsGCd, s.VersionsFolded)
	}
	if s.Invalidations > s.Revalidations {
		return fmt.Errorf("telemetry: mvstate invalidations %d exceed revalidations %d",
			s.Invalidations, s.Revalidations)
	}
	if s.ChainEntries < 0 || s.MaxChainLen < 0 {
		return fmt.Errorf("telemetry: mvstate negative gauge (entries %d, max chain %d)",
			s.ChainEntries, s.MaxChainLen)
	}
	return nil
}

// STMSnapshot is the exported optimistic-execution section.
type STMSnapshot struct {
	Incarnations     uint64  `json:"incarnations"`
	Aborts           uint64  `json:"aborts"`
	EstimateAborts   uint64  `json:"estimate_aborts"`
	ValidationPasses uint64  `json:"validation_passes"`
	ValidationFails  uint64  `json:"validation_fails"`
	AbortRate        float64 `json:"abort_rate"` // aborts / incarnations
}

// Snapshot is a point-in-time JSON-able export of every metric plus
// the derived sustained rates — the block every run-ledger entry
// embeds.
type Snapshot struct {
	UptimeMS float64 `json:"uptime_ms"`

	Replays            uint64 `json:"replays"`
	ReplayTxs          uint64 `json:"replay_txs"`
	ReplayInstructions uint64 `json:"replay_instructions"`
	ReplayCycles       uint64 `json:"replay_cycles"`

	// Sustained host rates over uptime.
	ReplaysPerSec float64 `json:"replays_per_sec"`
	TxsPerSec     float64 `json:"txs_per_sec"`

	DBHits     uint64 `json:"db_hits"`
	DBMisses   uint64 `json:"db_misses"`
	SBufHits   uint64 `json:"sbuf_hits"`
	SBufMisses uint64 `json:"sbuf_misses"`

	SchedPicks       map[string]uint64 `json:"sched_picks,omitempty"`
	SchedRefillScans uint64            `json:"sched_refill_scans"`

	STM STMSnapshot `json:"stm"`

	// Stream is present only when the block-stream pipeline ran (any
	// ingest admission recorded), so batch-CLI snapshots are unchanged.
	Stream *StreamSnapshot `json:"stream,omitempty"`

	// MVState is present only when the multi-version state layer saw
	// activity (any commit, snapshot read or revalidation).
	MVState *MVStateSnapshot `json:"mvstate,omitempty"`

	Latency []LatencySnapshot `json:"latency,omitempty"`
}

// Snapshot exports the current state. Latency sections are sorted by
// label so snapshots are deterministic given deterministic recording.
func (m *Metrics) Snapshot() Snapshot {
	up := m.Uptime()
	upSec := up.Seconds()
	s := Snapshot{
		UptimeMS:           float64(up.Microseconds()) / 1000,
		Replays:            m.Replays.Load(),
		ReplayTxs:          m.ReplayTxs.Load(),
		ReplayInstructions: m.ReplayInstructions.Load(),
		ReplayCycles:       m.ReplayCycles.Load(),
		DBHits:             m.DBHits.Load(),
		DBMisses:           m.DBMisses.Load(),
		SBufHits:           m.SBufHits.Load(),
		SBufMisses:         m.SBufMisses.Load(),
		SchedRefillScans:   m.SchedRefillScans.Load(),
		STM: STMSnapshot{
			Incarnations:     m.STMIncarnations.Load(),
			Aborts:           m.STMAborts.Load(),
			EstimateAborts:   m.STMEstimateAborts.Load(),
			ValidationPasses: m.STMValidationPasses.Load(),
			ValidationFails:  m.STMValidationFails.Load(),
		},
	}
	if upSec > 0 {
		s.ReplaysPerSec = float64(s.Replays) / upSec
		s.TxsPerSec = float64(s.ReplayTxs) / upSec
	}
	if s.STM.Incarnations > 0 {
		s.STM.AbortRate = float64(s.STM.Aborts) / float64(s.STM.Incarnations)
	}
	if acc, rej, inv := m.StreamAccepted.Load(), m.StreamRejected.Load(), m.StreamInvalid.Load(); acc+rej+inv > 0 {
		st := &StreamSnapshot{
			Accepted:     acc,
			Rejected:     rej,
			Invalid:      inv,
			Committed:    m.StreamCommitted.Load(),
			CommittedTxs: m.StreamCommittedTxs.Load(),
			ShadowChecks: m.StreamShadowChecks.Load(),
			ShadowFails:  m.StreamShadowFails.Load(),
			Overlap:      m.StreamOverlap.Load(),
			QueueDepth:   make(map[string]int64, NumStreamStages),
			StageBusyMS:  make(map[string]float64, NumStreamStages),
		}
		for i := StreamStage(0); i < NumStreamStages; i++ {
			st.QueueDepth[i.String()] = m.StreamQueueDepth[i].Load()
			st.StageBusyMS[i.String()] = float64(m.StreamStageBusyNS[i].Load()) / 1e6
		}
		s.Stream = st
	}
	if commits, reads, revals := m.MVStateCommits.Load(), m.MVStateSnapshotReads.Load(), m.MVStateRevalidations.Load(); commits+reads+revals > 0 {
		s.MVState = &MVStateSnapshot{
			Commits:        commits,
			VersionsFolded: m.MVStateVersionsFolded.Load(),
			VersionsGCd:    m.MVStateVersionsGCd.Load(),
			SnapshotReads:  reads,
			Revalidations:  revals,
			Invalidations:  m.MVStateInvalidations.Load(),
			ChainEntries:   m.MVStateChainEntries.Load(),
			MaxChainLen:    m.MVStateMaxChainLen.Load(),
		}
	}
	s.SchedPicks = make(map[string]uint64, len(m.SchedPicks))
	for k := range m.SchedPicks {
		s.SchedPicks[obs.PickKind(k).String()] = m.SchedPicks[k].Load()
	}
	m.mu.RLock()
	labels := make([]string, 0, len(m.latencies))
	for l := range m.latencies {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		h := m.latencies[l]
		if h.Count() == 0 {
			continue
		}
		s.Latency = append(s.Latency, LatencySnapshot{
			Label:  l,
			Count:  h.Count(),
			MeanMS: h.Mean() / 1e6,
			P50MS:  float64(h.Quantile(0.50)) / 1e6,
			P95MS:  float64(h.Quantile(0.95)) / 1e6,
			P99MS:  float64(h.Quantile(0.99)) / 1e6,
			MaxMS:  float64(h.Max()) / 1e6,
		})
	}
	m.mu.RUnlock()
	return s
}
