package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// LedgerSchema versions the JSONL run-ledger entry layout.
const LedgerSchema = 1

// BuildInfo is the binary fingerprint stamped into -version output,
// JSON artifacts, and ledger entries: which toolchain and which
// commit produced the numbers. Populated from debug.ReadBuildInfo, so
// VCS fields are empty for `go run`/`go test` builds (no embedded VCS
// stamp) and filled for `go build` from a git checkout.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// Build returns the running binary's build fingerprint.
func Build() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Module = info.Main.Path
	b.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.VCSRevision = s.Value
		case "vcs.time":
			b.VCSTime = s.Value
		case "vcs.modified":
			b.VCSModified = s.Value == "true"
		}
	}
	return b
}

// String renders the fingerprint for -version output.
func (b BuildInfo) String() string {
	var sb strings.Builder
	mod := b.Module
	if mod == "" {
		mod = "mtpu"
	}
	ver := b.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	fmt.Fprintf(&sb, "%s %s (%s", mod, ver, b.GoVersion)
	if b.VCSRevision != "" {
		rev := b.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&sb, ", rev %s", rev)
		if b.VCSModified {
			sb.WriteString("+dirty")
		}
		if b.VCSTime != "" {
			fmt.Fprintf(&sb, ", %s", b.VCSTime)
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// HostInfo fingerprints the machine a measurement ran on — the
// context without which host-side throughput numbers cannot be
// compared across ledger entries.
type HostInfo struct {
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// Host returns the current machine's fingerprint.
func Host() HostInfo {
	return HostInfo{
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the CPU model string from /proc/cpuinfo (empty on
// platforms without it — it is a label, not a dependency).
func cpuModel() string {
	buf, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(buf), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok &&
			strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// ConfigHash derives a short stable fingerprint of any JSON-able
// configuration value: two entries with equal hashes measured the
// same knobs. Marshaling a config must not fail; on error the hash is
// "invalid".
func ConfigHash(cfg any) string {
	buf, err := json.Marshal(cfg)
	if err != nil {
		return "invalid"
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:6])
}

// Workload is one measured throughput sample, the comparison unit of
// the regression tooling. Keys are hierarchical ("perf/fig13-small",
// "run/spatial-temporal/txs192-dep0.3-pus8") so reports from
// different tools align only where they measured the same thing.
type Workload struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Entry is one JSONL run-ledger record: who ran what, where, and what
// came out. Every mtpu-run/mtpu-bench invocation with -ledger appends
// exactly one.
type Entry struct {
	Schema     int        `json:"ledger_schema"`
	Time       time.Time  `json:"time"`
	Cmd        string     `json:"cmd"`
	Args       []string   `json:"args,omitempty"`
	Build      BuildInfo  `json:"build"`
	Host       HostInfo   `json:"host"`
	ConfigHash string     `json:"config_hash,omitempty"`
	Profiles   []string   `json:"profiles,omitempty"`
	Workloads  []Workload `json:"workloads,omitempty"`
	Telemetry  *Snapshot  `json:"telemetry,omitempty"`
}

// NewEntry stamps an entry with the current time, build, and host.
func NewEntry(cmd string, args []string) Entry {
	return Entry{
		Schema: LedgerSchema,
		Time:   time.Now().UTC(),
		Cmd:    cmd,
		Args:   args,
		Build:  Build(),
		Host:   Host(),
	}
}

// Append writes the entry as one JSON line at the end of path,
// creating the file if needed. Ledgers are append-only by design:
// history accumulates across invocations and mtpu-report diffs any
// two points of it.
func Append(path string, e Entry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("encoding ledger entry: %w", err)
	}
	buf = append(buf, '\n')
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("appending to %s: %w", path, err)
	}
	return f.Close()
}

// Artifact is one loaded measurement file flattened to comparable
// workloads — either a JSONL run ledger (all entries folded, last
// value per key wins) or an mtpu-bench -json report (perf rows become
// perf/<name> workloads).
type Artifact struct {
	Path      string
	Kind      string // "ledger" or "bench"
	Entries   int    // JSON documents consumed
	Workloads []Workload
}

// Lookup returns the workload with the given key, if present.
func (a *Artifact) Lookup(key string) (Workload, bool) {
	for _, w := range a.Workloads {
		if w.Key == key {
			return w, true
		}
	}
	return Workload{}, false
}

// benchDoc is the loose shape LoadArtifact needs from an mtpu-bench
// -json report: just the perf rows. Loose decoding (no
// DisallowUnknownFields) keeps mtpu-report working across schema
// bumps — regression analysis needs the throughput numbers, not the
// full invariant surface `mtpu-bench -validate` checks.
type benchDoc struct {
	Schema      int `json:"schema"`
	Experiments []struct {
		Name string `json:"name"`
	} `json:"experiments"`
	Perf []struct {
		Name     string  `json:"name"`
		TxPerSec float64 `json:"tx_per_sec"`
	} `json:"perf"`
}

// LoadArtifact reads a measurement file and flattens it to
// workloads. The format is auto-detected per JSON document: a
// document with a ledger_schema field is a ledger entry; one with an
// experiments list is an mtpu-bench report. JSONL ledgers hold many
// documents; bench reports hold one.
func LoadArtifact(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	a := &Artifact{Path: path}
	byKey := map[string]int{} // key -> index in a.Workloads (last wins)
	add := func(w Workload) {
		if i, ok := byKey[w.Key]; ok {
			a.Workloads[i] = w
			return
		}
		byKey[w.Key] = len(a.Workloads)
		a.Workloads = append(a.Workloads, w)
	}

	dec := json.NewDecoder(f)
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("%s: document %d: %w", path, a.Entries+1, err)
		}
		a.Entries++

		var probe struct {
			LedgerSchema *int `json:"ledger_schema"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("%s: document %d: %w", path, a.Entries, err)
		}
		if probe.LedgerSchema != nil {
			var e Entry
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("%s: ledger entry %d: %w", path, a.Entries, err)
			}
			if e.Schema != LedgerSchema {
				return nil, fmt.Errorf("%s: ledger entry %d: schema %d, want %d",
					path, a.Entries, e.Schema, LedgerSchema)
			}
			a.Kind = "ledger"
			for _, w := range e.Workloads {
				add(w)
			}
			continue
		}

		var b benchDoc
		if err := json.Unmarshal(raw, &b); err != nil {
			return nil, fmt.Errorf("%s: document %d: decoding bench report: %w", path, a.Entries, err)
		}
		if b.Schema == 0 && len(b.Experiments) == 0 {
			return nil, fmt.Errorf("%s: document %d is neither a ledger entry nor a bench report", path, a.Entries)
		}
		a.Kind = "bench"
		for _, p := range b.Perf {
			add(Workload{Key: "perf/" + p.Name, Value: p.TxPerSec, Unit: "tx/s"})
		}
	}
	if a.Entries == 0 {
		return nil, fmt.Errorf("%s: no JSON documents", path)
	}
	return a, nil
}

// PerfWorkloads converts mtpu-bench perf rows (name, tx/s pairs) to
// the shared workload form, keyed perf/<name> like LoadArtifact does,
// so the in-process `make perf` gate and the file-loading mtpu-report
// compare identical keys.
func PerfWorkloads(names []string, txPerSec []float64) []Workload {
	ws := make([]Workload, 0, len(names))
	for i, n := range names {
		ws = append(ws, Workload{Key: "perf/" + n, Value: txPerSec[i], Unit: "tx/s"})
	}
	return ws
}
