package telemetry

import (
	"testing"
	"time"

	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// TestRecordingPathsAllocateNothing pins the package contract: once a
// latency label exists, every recording operation — counter adds,
// histogram samples, the obs bridge events, a full ObserveReplay — is
// allocation-free, so telemetry can stay attached to the replay hot
// loop without disturbing what it measures.
func TestRecordingPathsAllocateNothing(t *testing.T) {
	m := New()
	m.Latency("scalar") // steady state: label histograms exist
	sink := m.Sink()
	delta := &obs.DBDelta{Lookups: 13, Hits: 10, Misses: 3}

	for name, fn := range map[string]func(){
		"Counter.Inc":      func() { m.Replays.Inc() },
		"Counter.Add":      func() { m.ReplayTxs.Add(7) },
		"Gauge.Set":        func() { new(Gauge).Set(3) },
		"MVState.Commit":   func() { m.MVStateCommits.Inc(); m.MVStateVersionsFolded.Add(5) },
		"MVState.Reads":    func() { m.MVStateSnapshotReads.Inc(); m.MVStateRevalidations.Inc() },
		"MVState.Gauges":   func() { m.MVStateChainEntries.Set(42); m.MVStateMaxChainLen.Set(3) },
		"Histogram.Record": func() { m.Latency("scalar").Record(12345) },
		"bridge.DBFlush":   func() { sink.DBFlush(0, types.Address{}, delta) },
		"bridge.SchedPick": func() { sink.SchedPick(0, 99, obs.PickKind(0), 2) },
		"ObserveReplay": func() {
			m.ObserveReplay("scalar", 128, 4096, 8192, 3*time.Millisecond)
		},
	} {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", name, allocs)
		}
	}
}

// BenchmarkObserveReplay is the hot-path cost ceiling: a handful of
// atomic adds plus one read-locked map lookup.
func BenchmarkObserveReplay(b *testing.B) {
	m := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.ObserveReplay("scalar", 128, 4096, 8192, 3*time.Millisecond)
	}
}

// BenchmarkHistogramRecord measures the raw sample cost.
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
}
