package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mtpu/internal/metrics"
)

// CompareRow is one workload key aligned across the compared
// artifacts. The ratio is newest/oldest (the first artifact is the
// baseline, the last the candidate); workloads missing from either
// side are reported but never gate.
type CompareRow struct {
	Key    string    `json:"key"`
	Unit   string    `json:"unit"`
	Values []float64 `json:"values"` // one per artifact, NaN when absent
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Ratio  float64   `json:"ratio"` // last/first, NaN when either absent
}

// Comparison is the aligned diff of two or more artifacts plus the
// regression verdict at a threshold — the one code path behind both
// `mtpu-report` and the `make perf` gate's failure table.
type Comparison struct {
	Paths    []string     `json:"paths"`
	MinRatio float64      `json:"min_ratio"`
	Rows     []CompareRow `json:"rows"`
}

// Compare aligns artifacts by workload key. The first artifact is the
// baseline; ratios are computed against it from the last (newest)
// artifact. Rows are sorted by key for stable output.
func Compare(artifacts []*Artifact, minRatio float64) *Comparison {
	c := &Comparison{MinRatio: minRatio}
	index := make([]map[string]Workload, len(artifacts))
	keys := map[string]string{} // key -> unit
	var order []string
	for i, a := range artifacts {
		c.Paths = append(c.Paths, a.Path)
		index[i] = make(map[string]Workload, len(a.Workloads))
		for _, w := range a.Workloads {
			index[i][w.Key] = w
			if _, seen := keys[w.Key]; !seen {
				keys[w.Key] = w.Unit
				order = append(order, w.Key)
			}
		}
	}
	sort.Strings(order)
	for _, key := range order {
		nan := math.NaN()
		row := CompareRow{Key: key, Unit: keys[key], Min: nan, Max: nan, Ratio: nan}
		present := 0
		for _, idx := range index {
			w, ok := idx[key]
			if !ok {
				row.Values = append(row.Values, nan)
				continue
			}
			row.Values = append(row.Values, w.Value)
			if present == 0 || w.Value < row.Min {
				row.Min = w.Value
			}
			if present == 0 || w.Value > row.Max {
				row.Max = w.Value
			}
			present++
		}
		first, last := row.Values[0], row.Values[len(row.Values)-1]
		if !math.IsNaN(first) && !math.IsNaN(last) && first > 0 {
			row.Ratio = last / first
		}
		c.Rows = append(c.Rows, row)
	}
	return c
}

// Regressions returns the rows whose newest/baseline ratio fell below
// the threshold. Rows missing from either side never count: a renamed
// or added workload is reported in the table but is not a regression.
func (c *Comparison) Regressions() []CompareRow {
	var out []CompareRow
	for _, r := range c.Rows {
		if !math.IsNaN(r.Ratio) && r.Ratio < c.MinRatio {
			out = append(out, r)
		}
	}
	return out
}

// Regressed reports whether any aligned workload regressed below the
// threshold.
func (c *Comparison) Regressed() bool { return len(c.Regressions()) > 0 }

// Render prints the per-workload table: one value column per
// artifact, min/max across them, the newest/baseline ratio, and a
// verdict column. Absent values render as "-" (metrics.Float maps NaN
// there).
func (c *Comparison) Render() string {
	headers := []string{"workload", "unit"}
	for i := range c.Paths {
		switch i {
		case 0:
			headers = append(headers, "baseline")
		case len(c.Paths) - 1:
			headers = append(headers, "newest")
		default:
			headers = append(headers, fmt.Sprintf("run%d", i))
		}
	}
	headers = append(headers, "min", "max", "ratio", "verdict")
	title := fmt.Sprintf("Regression report — %s (threshold %.2fx)",
		strings.Join(c.Paths, " vs "), c.MinRatio)
	t := metrics.NewTable(title, headers...)
	for _, r := range c.Rows {
		cells := []any{r.Key, r.Unit}
		for _, v := range r.Values {
			cells = append(cells, v)
		}
		verdict := "ok"
		switch {
		case math.IsNaN(r.Ratio):
			verdict = "unaligned"
		case r.Ratio < c.MinRatio:
			verdict = "REGRESSED"
		}
		cells = append(cells, r.Min, r.Max, r.Ratio, verdict)
		t.Row(cells...)
	}
	return t.String()
}
