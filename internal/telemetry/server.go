package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Serve starts the optional observability HTTP listener on addr
// (e.g. "127.0.0.1:9090", or ":0" for an ephemeral port) and returns
// the bound address plus a shutdown func. Endpoints:
//
//	/metrics      Prometheus text exposition
//	/snapshot     the JSON Snapshot
//	/debug/vars   expvar (Go runtime memstats + a live mtpu snapshot)
//	/debug/pprof  net/http/pprof profiles
//
// The server runs until stop is called; handler errors never affect
// the simulation. Long-running invocations (sweeps, the future block
// stream server) point a scraper at it; batch runs simply never
// enable it.
func (m *Metrics) Serve(addr string) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	publishExpvar(m)

	srv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	stop = func() error {
		err := srv.Close()
		<-done // Serve always returns once Close succeeds
		return err
	}
	return ln.Addr().String(), stop, nil
}

var expvarOnce sync.Once

// publishExpvar registers the live snapshot under the "mtpu" expvar
// key. expvar panics on duplicate names, so registration is
// process-global and pinned to the first Metrics that serves.
func publishExpvar(m *Metrics) {
	expvarOnce.Do(func() {
		expvar.Publish("mtpu", expvar.Func(func() any { return m.Snapshot() }))
	})
}
