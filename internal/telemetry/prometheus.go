package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the metrics in Prometheus text exposition
// format (version 0.0.4). Metric families are emitted in a fixed
// order and label sets are sorted, so two snapshots of the same state
// serialize identically.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.Snapshot()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	gaugeF("mtpu_uptime_seconds", "Wall-clock seconds since telemetry start.", s.UptimeMS/1000)

	counter("mtpu_replays_total", "Completed block replays.", s.Replays)
	counter("mtpu_replay_txs_total", "Simulated transactions replayed.", s.ReplayTxs)
	counter("mtpu_replay_instructions_total", "Simulated instructions replayed.", s.ReplayInstructions)
	counter("mtpu_replay_cycles_total", "Simulated makespan cycles accumulated.", s.ReplayCycles)

	gaugeF("mtpu_replays_per_second", "Sustained replays per wall-clock second.", s.ReplaysPerSec)
	gaugeF("mtpu_txs_per_second", "Sustained simulated transactions per wall-clock second.", s.TxsPerSec)

	counter("mtpu_db_cache_hits_total", "DB-cache hits (warm lookups).", s.DBHits)
	counter("mtpu_db_cache_misses_total", "DB-cache misses (cold lookups).", s.DBMisses)
	counter("mtpu_sbuf_hits_total", "State Buffer hits (warm touches).", s.SBufHits)
	counter("mtpu_sbuf_misses_total", "State Buffer misses (cold touches).", s.SBufMisses)

	fmt.Fprintf(&b, "# HELP mtpu_sched_picks_total Scheduler selections by pick class.\n# TYPE mtpu_sched_picks_total counter\n")
	for _, kind := range []string{"forced", "largest-V", "redundant"} {
		fmt.Fprintf(&b, "mtpu_sched_picks_total{kind=%q} %d\n", kind, s.SchedPicks[kind])
	}
	counter("mtpu_sched_refill_scans_total", "Candidate evaluations in scheduling-window refills.", s.SchedRefillScans)

	counter("mtpu_stm_incarnations_total", "Block-STM transaction incarnations executed.", s.STM.Incarnations)
	counter("mtpu_stm_aborts_total", "Block-STM incarnations aborted by validation.", s.STM.Aborts)
	counter("mtpu_stm_estimate_aborts_total", "Block-STM incarnations aborted on ESTIMATE reads.", s.STM.EstimateAborts)
	counter("mtpu_stm_validation_passes_total", "Block-STM validations that passed.", s.STM.ValidationPasses)
	counter("mtpu_stm_validation_fails_total", "Block-STM validations that failed.", s.STM.ValidationFails)

	if st := s.Stream; st != nil {
		counter("mtpu_stream_accepted_total", "Blocks accepted into the stream pipeline.", st.Accepted)
		counter("mtpu_stream_rejected_total", "Blocks rejected at ingest (queue full).", st.Rejected)
		counter("mtpu_stream_invalid_total", "Blocks the prefetch stage rejected as invalid.", st.Invalid)
		counter("mtpu_stream_committed_total", "Blocks committed by the stream pipeline.", st.Committed)
		counter("mtpu_stream_committed_txs_total", "Transactions committed by the stream pipeline.", st.CommittedTxs)
		counter("mtpu_stream_shadow_checks_total", "Blocks re-executed by the shadow validator.", st.ShadowChecks)
		counter("mtpu_stream_shadow_fails_total", "Shadow validations that diverged from the engine result.", st.ShadowFails)
		counter("mtpu_stream_overlap_total", "Stage work beginnings while another stage was busy.", st.Overlap)
		fmt.Fprintf(&b, "# HELP mtpu_stream_queue_depth Bounded-queue depth feeding each pipeline stage.\n# TYPE mtpu_stream_queue_depth gauge\n")
		for i := StreamStage(0); i < NumStreamStages; i++ {
			fmt.Fprintf(&b, "mtpu_stream_queue_depth{stage=%q} %d\n", i.String(), st.QueueDepth[i.String()])
		}
		fmt.Fprintf(&b, "# HELP mtpu_stream_stage_busy_seconds Wall-clock seconds each stage spent processing.\n# TYPE mtpu_stream_stage_busy_seconds counter\n")
		for i := StreamStage(0); i < NumStreamStages; i++ {
			fmt.Fprintf(&b, "mtpu_stream_stage_busy_seconds{stage=%q} %g\n", i.String(), st.StageBusyMS[i.String()]/1000)
		}
	}

	if mv := s.MVState; mv != nil {
		counter("mtpu_mvstate_commits_total", "Blocks folded into the multi-version head state.", mv.Commits)
		counter("mtpu_mvstate_versions_folded_total", "Key versions folded into the head across commits.", mv.VersionsFolded)
		counter("mtpu_mvstate_versions_gcd_total", "Key versions pruned once no pinned snapshot could read them.", mv.VersionsGCd)
		counter("mtpu_mvstate_snapshot_reads_total", "Reads served through pinned version-chain snapshots.", mv.SnapshotReads)
		counter("mtpu_mvstate_revalidations_total", "Speculative read-sets revalidated against newer folds.", mv.Revalidations)
		counter("mtpu_mvstate_invalidations_total", "Revalidations that found a stale read (re-decode forced).", mv.Invalidations)
		fmt.Fprintf(&b, "# HELP mtpu_mvstate_chain_entries Live version-chain entries across all keys.\n# TYPE mtpu_mvstate_chain_entries gauge\nmtpu_mvstate_chain_entries %d\n", mv.ChainEntries)
		fmt.Fprintf(&b, "# HELP mtpu_mvstate_max_chain_len Longest per-key version chain observed.\n# TYPE mtpu_mvstate_max_chain_len gauge\nmtpu_mvstate_max_chain_len %d\n", mv.MaxChainLen)
	}

	fmt.Fprintf(&b, "# HELP mtpu_block_latency_seconds Wall-clock block replay latency percentiles by engine.\n# TYPE mtpu_block_latency_seconds summary\n")
	for _, l := range s.Latency {
		fmt.Fprintf(&b, "mtpu_block_latency_seconds{mode=%q,quantile=\"0.5\"} %g\n", l.Label, l.P50MS/1000)
		fmt.Fprintf(&b, "mtpu_block_latency_seconds{mode=%q,quantile=\"0.95\"} %g\n", l.Label, l.P95MS/1000)
		fmt.Fprintf(&b, "mtpu_block_latency_seconds{mode=%q,quantile=\"0.99\"} %g\n", l.Label, l.P99MS/1000)
		fmt.Fprintf(&b, "mtpu_block_latency_seconds_sum{mode=%q} %g\n", l.Label, l.MeanMS/1000*float64(l.Count))
		fmt.Fprintf(&b, "mtpu_block_latency_seconds_count{mode=%q} %d\n", l.Label, l.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
