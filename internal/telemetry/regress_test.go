package telemetry

import (
	"math"
	"strings"
	"testing"
)

func art(path string, ws ...Workload) *Artifact {
	return &Artifact{Path: path, Kind: "ledger", Entries: 1, Workloads: ws}
}

func TestCompareDetectsRegression(t *testing.T) {
	base := art("old.jsonl",
		Workload{Key: "perf/a", Value: 1000, Unit: "tx/s"},
		Workload{Key: "perf/b", Value: 2000, Unit: "tx/s"})
	// perf/a dropped 25% — past the 0.8 threshold; perf/b improved.
	cand := art("new.jsonl",
		Workload{Key: "perf/a", Value: 750, Unit: "tx/s"},
		Workload{Key: "perf/b", Value: 2500, Unit: "tx/s"})

	c := Compare([]*Artifact{base, cand}, 0.8)
	if !c.Regressed() {
		t.Fatal("25% drop below a 0.8 threshold not flagged")
	}
	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Key != "perf/a" {
		t.Fatalf("Regressions() = %+v, want exactly perf/a", regs)
	}
	if regs[0].Ratio != 0.75 {
		t.Errorf("ratio = %v, want 0.75", regs[0].Ratio)
	}
	out := c.Render()
	for _, want := range []string{"perf/a", "REGRESSED", "perf/b", "ok", "0.80x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCompareIdenticalArtifactsPass(t *testing.T) {
	a := art("a.jsonl", Workload{Key: "perf/a", Value: 1234.5, Unit: "tx/s"})
	b := art("b.jsonl", Workload{Key: "perf/a", Value: 1234.5, Unit: "tx/s"})
	c := Compare([]*Artifact{a, b}, 0.999)
	if c.Regressed() {
		t.Fatal("identical artifacts flagged as regressed")
	}
	if r := c.Rows[0].Ratio; r != 1 {
		t.Errorf("ratio = %v, want 1", r)
	}
}

func TestCompareUnalignedNeverGates(t *testing.T) {
	base := art("old.jsonl", Workload{Key: "perf/only-old", Value: 100, Unit: "tx/s"})
	cand := art("new.jsonl", Workload{Key: "perf/only-new", Value: 1, Unit: "tx/s"})
	c := Compare([]*Artifact{base, cand}, 0.8)
	if c.Regressed() {
		t.Fatal("disjoint workloads must never gate")
	}
	if len(c.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(c.Rows))
	}
	for _, r := range c.Rows {
		if !math.IsNaN(r.Ratio) {
			t.Errorf("%s: ratio = %v, want NaN", r.Key, r.Ratio)
		}
	}
	if out := c.Render(); !strings.Contains(out, "unaligned") {
		t.Error("table does not mark unaligned rows")
	}
}

func TestCompareMiddleRunsAddColumnsOnly(t *testing.T) {
	base := art("a", Workload{Key: "k", Value: 100, Unit: "tx/s"})
	mid := art("b", Workload{Key: "k", Value: 10, Unit: "tx/s"}) // dip in the middle
	cand := art("c", Workload{Key: "k", Value: 99, Unit: "tx/s"})
	c := Compare([]*Artifact{base, mid, cand}, 0.8)
	if c.Regressed() {
		t.Fatal("middle-run dip gated; only newest/baseline may")
	}
	row := c.Rows[0]
	if row.Min != 10 || row.Max != 100 {
		t.Errorf("min/max = %v/%v, want 10/100", row.Min, row.Max)
	}
	if row.Ratio != 0.99 {
		t.Errorf("ratio = %v, want 0.99", row.Ratio)
	}
}

func TestCompareZeroBaselineUnaligned(t *testing.T) {
	base := art("a", Workload{Key: "k", Value: 0, Unit: "tx/s"})
	cand := art("b", Workload{Key: "k", Value: 50, Unit: "tx/s"})
	c := Compare([]*Artifact{base, cand}, 0.8)
	if !math.IsNaN(c.Rows[0].Ratio) {
		t.Errorf("zero baseline must yield NaN ratio, got %v", c.Rows[0].Ratio)
	}
	if c.Regressed() {
		t.Error("zero baseline gated")
	}
}
