package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServeEndpoints(t *testing.T) {
	m := New()
	m.ObserveReplay("scalar", 100, 4000, 8000, 3*time.Millisecond)
	m.STMIncarnations.Add(10)
	m.STMAborts.Add(2)

	addr, stop, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	base := "http://" + addr

	prom := get(t, base+"/metrics")
	for _, want := range []string{
		"mtpu_replays_total 1",
		"mtpu_replay_txs_total 100",
		"mtpu_stm_incarnations_total 10",
		`mtpu_block_latency_seconds{mode="scalar",quantile="0.5"}`,
		`mtpu_block_latency_seconds_count{mode="scalar"} 1`,
		"# TYPE mtpu_replays_total counter",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get(t, base+"/snapshot")), &snap); err != nil {
		t.Fatalf("/snapshot is not valid JSON: %v", err)
	}
	if snap.Replays != 1 || snap.ReplayTxs != 100 {
		t.Errorf("/snapshot = %+v, want 1 replay of 100 txs", snap)
	}

	vars := get(t, base+"/debug/vars")
	if !strings.Contains(vars, `"mtpu"`) {
		t.Error("/debug/vars does not publish the mtpu snapshot")
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(vars), &doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}

	idx := get(t, base+"/debug/pprof/")
	if !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
}

func TestServeRejectsBadAddr(t *testing.T) {
	m := New()
	if _, _, err := m.Serve("256.256.256.256:1"); err == nil {
		t.Fatal("nonsense address accepted")
	}
}
