package telemetry

import (
	"strings"
	"testing"
)

func mvstateMetrics() *Metrics {
	m := New()
	m.MVStateCommits.Add(9)
	m.MVStateVersionsFolded.Add(120)
	m.MVStateVersionsGCd.Add(80)
	m.MVStateSnapshotReads.Add(400)
	m.MVStateRevalidations.Add(9)
	m.MVStateInvalidations.Add(2)
	m.MVStateChainEntries.Set(40)
	m.MVStateMaxChainLen.Set(3)
	return m
}

// TestSnapshotMVStateSection checks the mvstate section appears only
// once the state layer actually moved, so one-shot CLI snapshots keep
// their old shape.
func TestSnapshotMVStateSection(t *testing.T) {
	if s := New().Snapshot(); s.MVState != nil {
		t.Fatal("fresh metrics snapshot has an mvstate section")
	}
	s := mvstateMetrics().Snapshot()
	if s.MVState == nil {
		t.Fatal("mvstate counters moved but snapshot has no mvstate section")
	}
	if s.MVState.Commits != 9 || s.MVState.VersionsFolded != 120 || s.MVState.MaxChainLen != 3 {
		t.Fatalf("mvstate section mismatch: %+v", s.MVState)
	}
	if err := s.MVState.Check(); err != nil {
		t.Fatalf("consistent snapshot rejected: %v", err)
	}
}

func TestMVStateSnapshotCheck(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*MVStateSnapshot)
	}{
		{"gcd exceeds folded", func(s *MVStateSnapshot) { s.VersionsGCd = s.VersionsFolded + 1 }},
		{"invalidations exceed revalidations", func(s *MVStateSnapshot) { s.Invalidations = s.Revalidations + 1 }},
		{"negative chain entries", func(s *MVStateSnapshot) { s.ChainEntries = -1 }},
		{"negative max chain", func(s *MVStateSnapshot) { s.MaxChainLen = -4 }},
	}
	for _, c := range cases {
		s := mvstateMetrics().Snapshot().MVState
		c.mutate(s)
		if err := s.Check(); err == nil {
			t.Errorf("%s: Check accepted inconsistent snapshot", c.name)
		}
	}
}

func TestPrometheusMVStateFamilies(t *testing.T) {
	var plain strings.Builder
	if err := New().WritePrometheus(&plain); err != nil {
		t.Fatalf("write: %v", err)
	}
	if strings.Contains(plain.String(), "mtpu_mvstate_") {
		t.Fatal("mvstate families exposed with no state-layer activity")
	}

	var b strings.Builder
	if err := mvstateMetrics().WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"mtpu_mvstate_commits_total 9",
		"mtpu_mvstate_versions_folded_total 120",
		"mtpu_mvstate_versions_gcd_total 80",
		"mtpu_mvstate_snapshot_reads_total 400",
		"mtpu_mvstate_revalidations_total 9",
		"mtpu_mvstate_invalidations_total 2",
		"mtpu_mvstate_chain_entries 40",
		"mtpu_mvstate_max_chain_len 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}
