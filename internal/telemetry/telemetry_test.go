package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"mtpu/internal/obs"
	"mtpu/internal/types"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("Counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Errorf("Gauge = %d, want 7", got)
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// bucketLow must invert bucketIndex on every bucket boundary, and
	// bucketIndex must be monotone over a dense sample of the range.
	for idx := 0; idx < histBuckets; idx++ {
		low := bucketLow(idx)
		if got := bucketIndex(low); got != idx {
			t.Fatalf("bucketIndex(bucketLow(%d)) = %d", idx, got)
		}
	}
	prev := -1
	for v := uint64(0); v < 1<<12; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	for _, v := range []uint64{1 << 20, 1 << 40, 1<<63 + 12345, math.MaxUint64} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0, %d)", v, idx, histBuckets)
		}
		if low := bucketLow(idx); low > v {
			t.Fatalf("bucketLow(bucketIndex(%d)) = %d > sample", v, low)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	if !math.IsNaN(h.Mean()) {
		t.Fatal("empty histogram mean must be NaN")
	}
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d, want 1000", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("Min/Max = %d/%d, want 1/1000", h.Min(), h.Max())
	}
	if mean := h.Mean(); mean != 500.5 {
		t.Errorf("Mean = %v, want 500.5", mean)
	}
	// Log-linear error bound: every quantile within 1/2^histSubBits
	// relative error of the exact order statistic.
	for _, tc := range []struct {
		q     float64
		exact float64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}} {
		got := float64(h.Quantile(tc.q))
		if err := math.Abs(got-tc.exact) / tc.exact; err > 1.0/(1<<histSubBits) {
			t.Errorf("Quantile(%v) = %v, want %v ± %.2f%%", tc.q, got, tc.exact, 100.0/(1<<histSubBits))
		}
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Error("Reset did not zero the histogram")
	}
	// Min tracking survives reset (the ^value encoding re-arms).
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Errorf("post-reset Min/Max = %d/%d, want 7/7", h.Min(), h.Max())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(uint64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("Count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 1 || h.Max() != workers*per {
		t.Errorf("Min/Max = %d/%d, want 1/%d", h.Min(), h.Max(), workers*per)
	}
	want := uint64(workers * per * (workers*per + 1) / 2)
	if h.Sum() != want {
		t.Errorf("Sum = %d, want %d", h.Sum(), want)
	}
}

func TestObserveReplayAndSnapshot(t *testing.T) {
	m := New()
	m.ObserveReplay("scalar", 128, 5000, 9000, 2*time.Millisecond)
	m.ObserveReplay("scalar", 128, 5000, 9000, 4*time.Millisecond)
	m.ObserveReplay("block-stm", 64, 2500, 3000, time.Millisecond)
	m.STMIncarnations.Add(80)
	m.STMAborts.Add(16)

	s := m.Snapshot()
	if s.Replays != 3 || s.ReplayTxs != 320 {
		t.Errorf("Replays/ReplayTxs = %d/%d, want 3/320", s.Replays, s.ReplayTxs)
	}
	if s.ReplayInstructions != 12500 || s.ReplayCycles != 21000 {
		t.Errorf("instructions/cycles = %d/%d", s.ReplayInstructions, s.ReplayCycles)
	}
	if s.ReplaysPerSec <= 0 || s.TxsPerSec <= 0 {
		t.Error("sustained rates must be positive after replays")
	}
	if got := s.STM.AbortRate; got != 0.2 {
		t.Errorf("AbortRate = %v, want 0.2", got)
	}
	if len(s.Latency) != 2 {
		t.Fatalf("latency sections = %d, want 2", len(s.Latency))
	}
	// Sorted by label: block-stm before scalar.
	if s.Latency[0].Label != "block-stm" || s.Latency[1].Label != "scalar" {
		t.Errorf("latency labels = %q, %q", s.Latency[0].Label, s.Latency[1].Label)
	}
	sc := s.Latency[1]
	if sc.Count != 2 || sc.MeanMS != 3 || sc.MaxMS != 4 {
		t.Errorf("scalar latency = %+v, want count 2 mean 3ms max 4ms", sc)
	}
	if sc.P99MS < sc.P50MS {
		t.Errorf("p99 %v < p50 %v", sc.P99MS, sc.P50MS)
	}
}

func TestBridgeFeedsCounters(t *testing.T) {
	m := New()
	sink := m.Sink()
	if sink == nil {
		t.Fatal("Sink() returned nil")
	}
	sink.DBFlush(0, types.Address{}, &obs.DBDelta{Hits: 10, Misses: 3})
	sink.DBFlush(1, types.Address{}, &obs.DBDelta{Hits: 5, Misses: 1})
	if m.DBHits.Load() != 15 || m.DBMisses.Load() != 4 {
		t.Errorf("DB hits/misses = %d/%d, want 15/4", m.DBHits.Load(), m.DBMisses.Load())
	}
	for k := 0; k < int(obs.NumPickKinds); k++ {
		sink.SchedPick(0, 0, obs.PickKind(k), k+1)
	}
	for k := 0; k < int(obs.NumPickKinds); k++ {
		if got := m.SchedPicks[k].Load(); got != 1 {
			t.Errorf("SchedPicks[%d] = %d, want 1", k, got)
		}
	}
	snap := m.Snapshot()
	if len(snap.SchedPicks) != int(obs.NumPickKinds) {
		t.Errorf("snapshot pick kinds = %d, want %d", len(snap.SchedPicks), int(obs.NumPickKinds))
	}
}

func TestTeeFansOut(t *testing.T) {
	if obs.Tee() != nil || obs.Tee(nil, nil) != nil {
		t.Error("Tee of no sinks must be nil")
	}
	m := New()
	single := obs.Tee(nil, m.Sink())
	if single != m.Sink() {
		t.Error("Tee of one sink must unwrap to it")
	}
	m2 := New()
	both := obs.Tee(m.Sink(), m2.Sink())
	both.DBFlush(0, types.Address{}, &obs.DBDelta{Hits: 2})
	if m.DBHits.Load() != 2 || m2.DBHits.Load() != 2 {
		t.Errorf("tee fan-out: %d/%d, want 2/2", m.DBHits.Load(), m2.DBHits.Load())
	}
}
