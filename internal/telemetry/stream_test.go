package telemetry

import (
	"strings"
	"testing"
)

func streamMetrics() *Metrics {
	m := New()
	m.StreamAccepted.Add(10)
	m.StreamRejected.Add(2)
	m.StreamInvalid.Add(1)
	m.StreamCommitted.Add(9)
	m.StreamCommittedTxs.Add(9 * 64)
	m.StreamShadowChecks.Add(3)
	m.StreamOverlap.Add(5)
	m.StreamStageBusyNS[StageExecute].Add(2_000_000)
	return m
}

func TestStreamStageString(t *testing.T) {
	want := []string{"prefetch", "execute", "commit"}
	for i := StreamStage(0); i < NumStreamStages; i++ {
		if i.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, i.String(), want[i])
		}
	}
}

// TestSnapshotStreamSection checks the stream section appears only once
// stream counters move, so batch CLI snapshots keep their old shape.
func TestSnapshotStreamSection(t *testing.T) {
	if s := New().Snapshot(); s.Stream != nil {
		t.Fatal("fresh metrics snapshot has a stream section")
	}
	s := streamMetrics().Snapshot()
	if s.Stream == nil {
		t.Fatal("stream counters moved but snapshot has no stream section")
	}
	if s.Stream.Accepted != 10 || s.Stream.Committed != 9 || s.Stream.Overlap != 5 {
		t.Fatalf("stream section mismatch: %+v", s.Stream)
	}
	if ms := s.Stream.StageBusyMS["execute"]; ms != 2 {
		t.Fatalf("execute busy %v ms, want 2", ms)
	}
}

func TestStreamSnapshotCheck(t *testing.T) {
	good := streamMetrics().Snapshot().Stream
	if err := good.Check(true); err != nil {
		t.Fatalf("consistent drained snapshot rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*StreamSnapshot)
		drained bool
	}{
		{"committed exceeds accepted", func(s *StreamSnapshot) { s.Committed = s.Accepted + 1 }, false},
		{"undrained blocks unaccounted", func(s *StreamSnapshot) { s.Committed = 3 }, true},
		{"shadow checks exceed committed", func(s *StreamSnapshot) { s.ShadowChecks = s.Committed + 1 }, false},
		{"shadow fails exceed checks", func(s *StreamSnapshot) { s.ShadowFails = s.ShadowChecks + 1 }, false},
		{"negative queue depth", func(s *StreamSnapshot) { s.QueueDepth["execute"] = -1 }, false},
		{"drained with queued blocks", func(s *StreamSnapshot) { s.QueueDepth["commit"] = 2 }, true},
	}
	for _, c := range cases {
		s := streamMetrics().Snapshot().Stream
		c.mutate(s)
		if err := s.Check(c.drained); err == nil {
			t.Errorf("%s: Check(drained=%v) accepted inconsistent snapshot", c.name, c.drained)
		}
	}
}

func TestPrometheusStreamFamilies(t *testing.T) {
	var plain strings.Builder
	if err := New().WritePrometheus(&plain); err != nil {
		t.Fatalf("write: %v", err)
	}
	if strings.Contains(plain.String(), "mtpu_stream_") {
		t.Fatal("stream families exposed with no stream activity")
	}

	var b strings.Builder
	if err := streamMetrics().WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"mtpu_stream_accepted_total 10",
		"mtpu_stream_committed_total 9",
		"mtpu_stream_overlap_total 5",
		`mtpu_stream_queue_depth{stage="prefetch"} 0`,
		`mtpu_stream_stage_busy_seconds{stage="execute"} 0.002`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}
