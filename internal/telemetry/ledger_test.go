package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildInfoString(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("Build() must carry the toolchain version")
	}
	s := b.String()
	if !strings.Contains(s, b.GoVersion) {
		t.Errorf("String() = %q does not mention %q", s, b.GoVersion)
	}
	full := BuildInfo{
		GoVersion: "go1.24.0", Module: "mtpu", Version: "v1.2.3",
		VCSRevision: "0123456789abcdef0123", VCSTime: "2026-08-08T00:00:00Z", VCSModified: true,
	}
	got := full.String()
	want := "mtpu v1.2.3 (go1.24.0, rev 0123456789ab+dirty, 2026-08-08T00:00:00Z)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestHostInfo(t *testing.T) {
	h := Host()
	if h.OS == "" || h.Arch == "" || h.NumCPU < 1 || h.GOMAXPROCS < 1 {
		t.Errorf("Host() = %+v is incomplete", h)
	}
}

func TestConfigHash(t *testing.T) {
	type cfg struct{ PUs, Window int }
	a := ConfigHash(cfg{4, 16})
	if len(a) != 12 {
		t.Errorf("hash %q is not 12 hex chars", a)
	}
	if b := ConfigHash(cfg{4, 16}); b != a {
		t.Errorf("equal configs hash differently: %q vs %q", a, b)
	}
	if c := ConfigHash(cfg{8, 16}); c == a {
		t.Error("different configs share a hash")
	}
	if got := ConfigHash(func() {}); got != "invalid" {
		t.Errorf("unmarshalable config hashed to %q, want \"invalid\"", got)
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")

	e1 := NewEntry("mtpu-run", []string{"-txs", "64"})
	e1.Workloads = []Workload{
		{Key: "run/scalar/txs64", Value: 1000, Unit: "tx/s"},
		{Key: "run/block-stm/txs64", Value: 4000, Unit: "tx/s"},
	}
	m := New()
	m.ObserveReplay("scalar", 64, 100, 200, 1e6)
	snap := m.Snapshot()
	e1.Telemetry = &snap
	if err := Append(path, e1); err != nil {
		t.Fatal(err)
	}

	// Second append: same file, one overlapping key (last wins) and one
	// new key.
	e2 := NewEntry("mtpu-run", nil)
	e2.Workloads = []Workload{
		{Key: "run/scalar/txs64", Value: 1100, Unit: "tx/s"},
		{Key: "run/bse/txs64", Value: 3000, Unit: "tx/s"},
	}
	if err := Append(path, e2); err != nil {
		t.Fatal(err)
	}

	a, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != "ledger" || a.Entries != 2 {
		t.Errorf("kind/entries = %s/%d, want ledger/2", a.Kind, a.Entries)
	}
	if len(a.Workloads) != 3 {
		t.Fatalf("workloads = %d, want 3 (deduped)", len(a.Workloads))
	}
	w, ok := a.Lookup("run/scalar/txs64")
	if !ok || w.Value != 1100 {
		t.Errorf("last-wins dedup broken: %+v ok=%v, want value 1100", w, ok)
	}
	if _, ok := a.Lookup("run/bse/txs64"); !ok {
		t.Error("second entry's new key missing")
	}
}

func TestLoadArtifactBenchReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	doc := `{"schema": 6, "experiments": [{"name": "perf"}],
		"perf": [{"name": "fig13-small", "tx_per_sec": 50000},
		         {"name": "fig13-large", "tx_per_sec": 20000}],
		"future_field": true}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != "bench" || len(a.Workloads) != 2 {
		t.Fatalf("kind/workloads = %s/%d, want bench/2", a.Kind, len(a.Workloads))
	}
	w, ok := a.Lookup("perf/fig13-small")
	if !ok || w.Value != 50000 || w.Unit != "tx/s" {
		t.Errorf("perf workload = %+v ok=%v", w, ok)
	}
}

func TestLoadArtifactRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, doc := range map[string]string{
		"empty.json":        ``,
		"not-artifact.json": `{"hello": "world"}`,
		"bad-schema.jsonl":  `{"ledger_schema": 99, "cmd": "x"}`,
		"truncated.json":    `{"ledger_schema": 1,`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadArtifact(path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := LoadArtifact(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPerfWorkloads(t *testing.T) {
	ws := PerfWorkloads([]string{"a", "b"}, []float64{1, 2})
	if len(ws) != 2 || ws[0].Key != "perf/a" || ws[1].Value != 2 || ws[0].Unit != "tx/s" {
		t.Errorf("PerfWorkloads = %+v", ws)
	}
}
