// Package contracts provides the workload substrate: eight hand-assembled
// EVM contracts mirroring the TOP-8 Ethereum contracts of Table 6 (token,
// wrapped ether, proxy, marketplace, ERC-677 token, AMM routers, stablecoin
// and gateway), plus the Ballot and auction contracts of Table 2. The
// bytecode follows the standard Solidity shape — selector-dispatch Compare
// chunk, CallValue Check chunk, Execute body and End chunk — which is the
// structure the hotspot optimizer (§3.4) chunks and pre-executes.
package contracts

import (
	"fmt"

	"mtpu/internal/asm"
	"mtpu/internal/evm"
	"mtpu/internal/keccak"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// Function describes one externally callable entry point.
type Function struct {
	Name      string
	Signature string
	Selector  [4]byte
	// Payable functions skip the CallValue Check chunk.
	Payable bool
}

// Contract is a deployable workload contract.
type Contract struct {
	Name      string
	Address   types.Address
	Code      []byte
	Functions []Function
	// Setup installs the code and genesis storage into a state.
	Setup func(st *state.StateDB)
}

// FunctionBySelector finds a function by its 4-byte identifier.
func (c *Contract) FunctionBySelector(sel [4]byte) (Function, bool) {
	for _, f := range c.Functions {
		if f.Selector == sel {
			return f, true
		}
	}
	return Function{}, false
}

// Function finds a function by name.
func (c *Contract) Function(name string) Function {
	for _, f := range c.Functions {
		if f.Name == name {
			return f
		}
	}
	panic(fmt.Sprintf("contracts: %s has no function %q", c.Name, name))
}

// fn builds a Function from a Solidity signature.
func fn(name, signature string, payable bool) Function {
	return Function{
		Name:      name,
		Signature: signature,
		Selector:  keccak.Selector(signature),
		Payable:   payable,
	}
}

// CodeBuilder layers Solidity-style code generation over the assembler:
// function dispatch, calldata access, storage mappings, require checks and
// ABI returns. It produces bytecode with the same idioms (and roughly the
// same stack-instruction density) as compiler output.
type CodeBuilder struct {
	*asm.Builder
	uniq int
}

// NewCode returns a builder with the Solidity memory preamble (free-memory
// pointer at 0x40) already emitted.
func NewCode() *CodeBuilder {
	c := &CodeBuilder{Builder: asm.NewBuilder()}
	c.PushInt(0x80).PushInt(0x40).Op(evm.MSTORE)
	return c
}

// label generates a unique internal label.
func (c *CodeBuilder) label(hint string) string {
	c.uniq++
	return fmt.Sprintf("__%s_%d", hint, c.uniq)
}

// Dispatcher emits the Compare chunk: load the 4-byte selector from
// calldata and jump to each function label; unmatched selectors revert.
func (c *CodeBuilder) Dispatcher(fns []Function) {
	// selector = calldata[0:4] >> 224
	c.PushInt(0).Op(evm.CALLDATALOAD)
	c.PushInt(0xe0).Op(evm.SHR)
	for _, f := range fns {
		c.Op(evm.DUP1)
		c.PushBytes(f.Selector[:])
		c.Op(evm.EQ)
		c.PushLabel("fn_" + f.Name)
		c.Op(evm.JUMPI)
	}
	c.Revert()
}

// Begin opens a function body: defines its label and, for non-payable
// functions, emits the Check chunk rejecting attached value.
func (c *CodeBuilder) Begin(f Function) {
	c.Label("fn_" + f.Name)
	c.Op(evm.POP) // drop the duplicated selector
	if !f.Payable {
		c.Op(evm.CALLVALUE, evm.ISZERO)
		c.Require()
	}
}

// Arg pushes the 32-byte word of argument i (0-based) from calldata.
func (c *CodeBuilder) Arg(i int) {
	c.PushInt(uint64(4 + 32*i)).Op(evm.CALLDATALOAD)
}

// ArgAddr pushes argument i masked to 160 bits.
func (c *CodeBuilder) ArgAddr(i int) {
	c.Arg(i)
	mask := make([]byte, 20)
	for j := range mask {
		mask[j] = 0xff
	}
	c.PushBytes(mask)
	c.Op(evm.AND)
}

// MapSlot consumes a key from the stack and pushes the storage slot of
// mapping(key => ...) rooted at baseSlot: keccak256(key . baseSlot).
func (c *CodeBuilder) MapSlot(baseSlot uint64) {
	c.PushInt(0).Op(evm.MSTORE)                      // mem[0:32] = key
	c.PushInt(baseSlot).PushInt(0x20).Op(evm.MSTORE) // mem[32:64] = base
	c.PushInt(0x40).PushInt(0).Op(evm.SHA3)
}

// MapSlotDyn is MapSlot with the base slot taken from the stack
// (stack: [key, base] with key on top).
func (c *CodeBuilder) MapSlotDyn() {
	c.PushInt(0).Op(evm.MSTORE)    // key
	c.PushInt(0x20).Op(evm.MSTORE) // base
	c.PushInt(0x40).PushInt(0).Op(evm.SHA3)
}

// Require consumes a condition; zero reverts the transaction.
func (c *CodeBuilder) Require() {
	ok := c.label("ok")
	c.PushLabel(ok)
	c.Op(evm.JUMPI)
	c.Revert()
	c.Label(ok)
}

// Revert emits a zero-data REVERT.
func (c *CodeBuilder) Revert() {
	c.PushInt(0).Op(evm.DUP1, evm.REVERT)
}

// ReturnWord returns the top-of-stack word as the call result (End chunk).
func (c *CodeBuilder) ReturnWord() {
	c.PushInt(0).Op(evm.MSTORE)
	c.PushInt(0x20).PushInt(0).Op(evm.RETURN)
}

// ReturnTrue returns ABI true.
func (c *CodeBuilder) ReturnTrue() {
	c.PushInt(1)
	c.ReturnWord()
}

// Stop emits STOP (End chunk for void functions).
func (c *CodeBuilder) Stop() {
	c.Op(evm.STOP)
}

// Log3 emits an event with one data word and two indexed topics. The
// caller arranges the stack top-first as [dataWord, topic1, topic2]; for a
// Transfer event that is [amount, from, to].
func (c *CodeBuilder) Log3(event types.Hash) {
	c.PushInt(0).Op(evm.MSTORE) // mem[0:32] = dataWord; stack: topic1, topic2
	c.PushBytes(event[:])       // t0; LOG3 pops offset,size,t0,t1,t2
	c.PushInt(0x20)             // size
	c.PushInt(0)                // offset
	c.Op(evm.LOG3)
}

// EventTopic computes the topic-0 hash for an event signature.
func EventTopic(signature string) types.Hash {
	return types.Hash(keccak.Sum256([]byte(signature)))
}

// Shared deterministic contract addresses (one per TOP-8 archetype, plus
// the Table 2 extras). Spread across the address space so mapping slots
// do not collide in tests.
var (
	TetherAddr     = types.HexToAddress("0x0000000000000000000000000000000000001001")
	WETHAddr       = types.HexToAddress("0x0000000000000000000000000000000000002002")
	FiatProxyAddr  = types.HexToAddress("0x0000000000000000000000000000000000003003")
	FiatImplAddr   = types.HexToAddress("0x0000000000000000000000000000000000003103")
	OpenSeaAddr    = types.HexToAddress("0x0000000000000000000000000000000000004004")
	LinkAddr       = types.HexToAddress("0x0000000000000000000000000000000000005005")
	RouterAddr     = types.HexToAddress("0x0000000000000000000000000000000000006006")
	SwapRouterAddr = types.HexToAddress("0x0000000000000000000000000000000000007007")
	DaiAddr        = types.HexToAddress("0x0000000000000000000000000000000000008008")
	GatewayAddr    = types.HexToAddress("0x0000000000000000000000000000000000009009")
	BallotAddr     = types.HexToAddress("0x000000000000000000000000000000000000a00a")
	AuctionAddr    = types.HexToAddress("0x000000000000000000000000000000000000b00b")
	ReceiverAddr   = types.HexToAddress("0x000000000000000000000000000000000000c00c")
	OracleAddr     = types.HexToAddress("0x000000000000000000000000000000000000d00d")
)

// slotHash converts a small integer to a 32-byte storage slot key.
func slotHash(n uint64) types.Hash {
	v := uint256.NewInt(n)
	return types.Hash(v.Bytes32())
}

// MapKeySlot computes keccak256(key . base), the storage slot of
// mapping[key] at base — the Go-side mirror of CodeBuilder.MapSlot used to
// seed genesis storage and verify results.
func MapKeySlot(key types.Hash, base uint64) types.Hash {
	var buf [64]byte
	copy(buf[:32], key[:])
	b := uint256.NewInt(base).Bytes32()
	copy(buf[32:], b[:])
	return types.Hash(keccak.Sum256(buf[:]))
}

// AddrKeySlot is MapKeySlot for an address key (left-padded).
func AddrKeySlot(key types.Address, base uint64) types.Hash {
	w := key.Word()
	return MapKeySlot(types.Hash(w.Bytes32()), base)
}

// NestedSlot computes the slot of mapping[k1][k2] at base:
// keccak256(k2 . keccak256(k1 . base)).
func NestedSlot(k1, k2 types.Address, base uint64) types.Hash {
	inner := AddrKeySlot(k1, base)
	var buf [64]byte
	w := k2.Word()
	b := w.Bytes32()
	copy(buf[:32], b[:])
	copy(buf[32:], inner[:])
	return types.Hash(keccak.Sum256(buf[:]))
}
