package contracts

import (
	"fmt"

	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
)

// AMM router storage layout (a self-contained constant-product pair):
//
//	slot 1: reserve0
//	slot 2: reserve1
//	slot 3: total LP supply
//	slot 4: mapping(address => uint256) LP balances
//	slot 5: mapping(address => uint256) internal token0 balances
//	slot 6: mapping(address => uint256) internal token1 balances
const (
	slotReserve0 = 1
	slotReserve1 = 2
	slotLPTotal  = 3
	slotLPBal    = 4
	slotBal0     = 5
	slotBal1     = 6
)

// newRouter builds a constant-product AMM with the given fee numerator
// (out = in*fee*reserveOut / (reserveIn*1000 + in*fee)). The two router
// archetypes differ only in fee and address, giving distinct bytecode the
// DB cache must track separately.
func newRouter(name string, addr types.Address, feeNumerator uint64) *Contract {
	faucet := fn("faucet", "faucet(uint256,uint256)", false)
	addLiq := fn("addLiquidity", "addLiquidity(uint256,uint256)", false)
	swap01 := fn("swap0For1", "swap0For1(uint256)", false)
	swap10 := fn("swap1For0", "swap1For0(uint256)", false)
	reserve0 := fn("reserve0", "reserve0()", false)
	reserve1 := fn("reserve1", "reserve1()", false)
	bal0Of := fn("balance0Of", "balance0Of(address)", false)
	bal1Of := fn("balance1Of", "balance1Of(address)", false)
	lpOf := fn("lpBalanceOf", "lpBalanceOf(address)", false)
	fns := []Function{faucet, addLiq, swap01, swap10, reserve0, reserve1, bal0Of, bal1Of, lpOf}

	c := NewCode()
	c.Dispatcher(fns)

	// faucet(uint256 a0, uint256 a1): credit internal balances.
	c.Begin(faucet)
	c.Arg(0) // [a0]
	c.Op(evm.CALLER)
	c.MapSlot(slotBal0)       // [slot, a0]
	c.Op(evm.DUP1, evm.SLOAD) // [cur, slot, a0]
	c.Op(evm.DUP3, evm.ADD)
	c.Op(evm.SWAP1, evm.SSTORE, evm.POP) // []
	c.Arg(1)
	c.Op(evm.CALLER)
	c.MapSlot(slotBal1)
	c.Op(evm.DUP1, evm.SLOAD)
	c.Op(evm.DUP3, evm.ADD)
	c.Op(evm.SWAP1, evm.SSTORE, evm.POP)
	c.Stop()

	// deductBalance emits: balances[caller][slotBase] -= amount-on-stack,
	// with a bounds check. Stack in: [amt, ...]; out: [amt, ...].
	deduct := func(base uint64) {
		c.Op(evm.CALLER)
		c.MapSlot(base)           // [slot, amt, ...]
		c.Op(evm.DUP1, evm.SLOAD) // [bal, slot, amt, ...]
		c.Op(evm.DUP1, evm.DUP4)  // [amt, bal, bal, slot, amt, ...]
		c.Op(evm.GT, evm.ISZERO)
		c.Require()                        // [bal, slot, amt, ...]
		c.Op(evm.DUP3, evm.SWAP1, evm.SUB) // [bal-amt, slot, amt, ...]
		c.Op(evm.SWAP1, evm.SSTORE)        // [amt, ...]
	}
	// credit emits: balances[caller][base] += amount-on-stack (kept).
	credit := func(base uint64) {
		c.Op(evm.DUP1) // [amt, amt, ...]
		c.Op(evm.CALLER)
		c.MapSlot(base)           // [slot, amt, amt, ...]
		c.Op(evm.DUP1, evm.SLOAD) // [cur, slot, amt, amt, ...]
		c.Op(evm.DUP3, evm.ADD)
		c.Op(evm.SWAP1, evm.SSTORE, evm.POP) // [amt, ...]
	}

	// addLiquidity(uint256 a0, uint256 a1) → minted LP.
	c.Begin(addLiq)
	c.Arg(0) // [a0]
	deduct(slotBal0)
	c.Arg(1) // [a1, a0]
	deduct(slotBal1)
	// reserve0 += a0.
	c.PushInt(slotReserve0).Op(evm.SLOAD) // [r0, a1, a0]
	c.Op(evm.DUP3, evm.ADD)               // [r0+a0, a1, a0]
	c.PushInt(slotReserve0).Op(evm.SSTORE)
	// reserve1 += a1.
	c.PushInt(slotReserve1).Op(evm.SLOAD) // [r1, a1, a0]
	c.Op(evm.DUP2, evm.ADD)
	c.PushInt(slotReserve1).Op(evm.SSTORE) // [a1, a0]
	// minted = a0 + a1 (simplified LP math).
	c.Op(evm.ADD) // [minted]
	// lpTotal += minted.
	c.PushInt(slotLPTotal).Op(evm.SLOAD)
	c.Op(evm.DUP2, evm.ADD)
	c.PushInt(slotLPTotal).Op(evm.SSTORE) // [minted]
	// lpBal[caller] += minted.
	c.Op(evm.CALLER)
	c.MapSlot(slotLPBal)
	c.Op(evm.DUP1, evm.SLOAD)
	c.Op(evm.DUP3, evm.ADD)
	c.Op(evm.SWAP1, evm.SSTORE) // [minted]
	c.ReturnWord()

	// swap body shared between directions.
	emitSwap := func(f Function, balIn, balOut, resIn, resOut uint64) {
		c.Begin(f)
		c.Arg(0) // [in]
		deduct(balIn)
		// out = in*fee*resOut / (resIn*1000 + in*fee).
		c.Op(evm.DUP1)                  // [in, in]
		c.PushInt(feeNumerator)         // [fee, in, in]
		c.Op(evm.MUL)                   // [k=in*fee, in]
		c.Op(evm.DUP1)                  // [k, k, in]
		c.PushInt(resOut).Op(evm.SLOAD) // [rOut, k, k, in]
		c.Op(evm.MUL)                   // [numer, k, in]
		c.Op(evm.SWAP1)                 // [k, numer, in]
		c.PushInt(resIn).Op(evm.SLOAD)  // [rIn, k, numer, in]
		c.PushInt(1000).Op(evm.MUL)     // [rIn*1000, k, numer, in]
		c.Op(evm.ADD)                   // [denom, numer, in]
		c.Op(evm.SWAP1, evm.DIV)        // [out, in]
		// require 0 < out < reserveOut.
		c.Op(evm.DUP1, evm.ISZERO, evm.ISZERO)
		c.Require()
		c.Op(evm.DUP1)
		c.PushInt(resOut).Op(evm.SLOAD) // [rOut, out, out, in]
		c.Op(evm.GT)                    // rOut > out
		c.Require()                     // [out, in]
		credit(balOut)
		// reserveIn += in.
		c.PushInt(resIn).Op(evm.SLOAD) // [rIn, out, in]
		c.Op(evm.DUP3, evm.ADD)
		c.PushInt(resIn).Op(evm.SSTORE) // [out, in]
		// reserveOut -= out.
		c.PushInt(resOut).Op(evm.SLOAD)  // [rOut, out, in]
		c.Op(evm.DUP2)                   // [out, rOut, out, in]
		c.Op(evm.SWAP1, evm.SUB)         // [rOut-out, out, in]
		c.PushInt(resOut).Op(evm.SSTORE) // [out, in]
		c.Op(evm.SWAP1, evm.POP)         // [out]
		c.ReturnWord()
	}
	emitSwap(swap01, slotBal0, slotBal1, slotReserve0, slotReserve1)
	emitSwap(swap10, slotBal1, slotBal0, slotReserve1, slotReserve0)

	view := func(f Function, slot uint64) {
		c.Begin(f)
		c.PushInt(slot).Op(evm.SLOAD)
		c.ReturnWord()
	}
	view(reserve0, slotReserve0)
	view(reserve1, slotReserve1)

	mapView := func(f Function, base uint64) {
		c.Begin(f)
		c.ArgAddr(0)
		c.MapSlot(base)
		c.Op(evm.SLOAD)
		c.ReturnWord()
	}
	mapView(bal0Of, slotBal0)
	mapView(bal1Of, slotBal1)
	mapView(lpOf, slotLPBal)

	code := c.MustBuild()
	return &Contract{
		Name:      name,
		Address:   addr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(addr, code)
			st.DiscardJournal()
		},
	}
}

// NewUniswapRouter builds the UniswapV2Router02 archetype (0.3% fee).
func NewUniswapRouter() *Contract {
	return newRouter("UniswapV2Router02", RouterAddr, 997)
}

// NewSwapRouter builds the SwapRouter archetype (0.5% fee tier).
func NewSwapRouter() *Contract {
	return newRouter("SwapRouter", SwapRouterAddr, 995)
}

// NewDEXPair builds the i-th extra AMM pair of the dex scenario — same
// constant-product bytecode as the Uniswap archetype, at its own
// address, so Zipf-hot pair traffic contends on per-pair reserves.
func NewDEXPair(i int) *Contract {
	var b [20]byte
	b[18] = 0x71
	b[19] = byte(i)
	return newRouter(fmt.Sprintf("DEXPair%02d", i), types.Address(b), 997)
}
