package contracts

import (
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// This file provides genesis-state seeding for workload generation: the
// block generator writes contract storage directly (as if earlier blocks
// had populated it) so every generated transaction finds the balances,
// listings, reserves and deposits it needs to succeed.

// SeedRouter installs reserves and per-user internal token balances into
// an AMM router so swaps and addLiquidity succeed immediately.
func SeedRouter(st *state.StateDB, router *Contract, users []types.Address, userBal, reserve uint64) {
	r := uint256.NewInt(reserve)
	st.SetState(router.Address, slotHash(slotReserve0), *r)
	st.SetState(router.Address, slotHash(slotReserve1), *r)
	lp := uint256.NewInt(2 * reserve)
	st.SetState(router.Address, slotHash(slotLPTotal), *lp)
	b := uint256.NewInt(userBal)
	for _, u := range users {
		st.SetState(router.Address, AddrKeySlot(u, slotBal0), *b)
		st.SetState(router.Address, AddrKeySlot(u, slotBal1), *b)
	}
	st.DiscardJournal()
}

// SeedMarketListings mints tokenIds to owner and lists them at price, so
// buy transactions succeed without a mint/list prelude.
func SeedMarketListings(st *state.StateDB, market *Contract, tokenIDs []uint64, owner types.Address, price uint64) {
	ow := owner.Word()
	p := uint256.NewInt(price)
	for _, id := range tokenIDs {
		idKey := types.Hash(uint256.NewInt(id).Bytes32())
		st.SetState(market.Address, MapKeySlot(idKey, slotMarketOwners), ow)
		st.SetState(market.Address, MapKeySlot(idKey, slotMarketPrices), *p)
	}
	st.DiscardJournal()
}

// SeedGatewayDeposits credits each user's bridge deposit and funds the
// contract with matching ether so withdrawals can pay out.
func SeedGatewayDeposits(st *state.StateDB, gateway *Contract, users []types.Address, amount uint64) {
	a := uint256.NewInt(amount)
	var total uint256.Int
	for _, u := range users {
		st.SetState(gateway.Address, AddrKeySlot(u, slotGatewayDeposits), *a)
		total.Add(&total, a)
	}
	bal := st.GetBalance(gateway.Address)
	bal.Add(bal, &total)
	st.SetBalance(gateway.Address, bal)
	st.DiscardJournal()
}

// SeedAuctions creates live auctions for the given ids with a reserve
// price and a far-future end block.
func SeedAuctions(st *state.StateDB, auction *Contract, ids []uint64, seller types.Address, reserve, endBlock uint64) {
	sw := seller.Word()
	rp := uint256.NewInt(reserve)
	eb := uint256.NewInt(endBlock)
	for _, id := range ids {
		idKey := types.Hash(uint256.NewInt(id).Bytes32())
		st.SetState(auction.Address, MapKeySlot(idKey, slotAucSeller), sw)
		st.SetState(auction.Address, MapKeySlot(idKey, slotAucBid), *rp)
		st.SetState(auction.Address, MapKeySlot(idKey, slotAucEnd), *eb)
	}
	st.DiscardJournal()
}

// SeedWETH credits wrapped balances and the matching contract ether so
// withdraw and transfer succeed without a deposit prelude.
func SeedWETH(st *state.StateDB, weth *Contract, users []types.Address, amount uint64) {
	a := uint256.NewInt(amount)
	var total uint256.Int
	for _, u := range users {
		st.SetState(weth.Address, AddrKeySlot(u, SlotBalances), *a)
		total.Add(&total, a)
	}
	bal := st.GetBalance(weth.Address)
	bal.Add(bal, &total)
	st.SetBalance(weth.Address, bal)
	st.DiscardJournal()
}
