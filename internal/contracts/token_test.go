package contracts

import (
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

var (
	alice = types.HexToAddress("0x1000000000000000000000000000000000000001")
	bob   = types.HexToAddress("0x2000000000000000000000000000000000000002")
	carol = types.HexToAddress("0x3000000000000000000000000000000000000003")
)

// testEnv wires a deployed contract to an EVM for direct calls.
type testEnv struct {
	t  *testing.T
	st *state.StateDB
	ev *evm.EVM
}

func newEnv(t *testing.T, cs ...*Contract) *testEnv {
	t.Helper()
	st := state.New()
	for _, c := range cs {
		c.Setup(st)
	}
	fund := uint256.MustFromDecimal("1000000000000000000000")
	for _, a := range []types.Address{alice, bob, carol, TokenOwner} {
		st.SetBalance(a, fund)
	}
	st.DiscardJournal()
	ev := evm.New(evm.BlockContext{Number: 100, Timestamp: 1700000000, GasLimit: 30_000_000}, st)
	return &testEnv{t: t, st: st, ev: ev}
}

// call invokes fn on contract as caller, failing the test on EVM errors.
func (e *testEnv) call(caller types.Address, c *Contract, name string, args ...any) []byte {
	e.t.Helper()
	ret, err := e.tryCall(caller, c, name, args...)
	if err != nil {
		e.t.Fatalf("%s.%s: %v (ret=%x)", c.Name, name, err, ret)
	}
	return ret
}

func (e *testEnv) tryCall(caller types.Address, c *Contract, name string, args ...any) ([]byte, error) {
	input := EncodeCall(c.Function(name), args...)
	ret, _, err := e.ev.Call(caller, c.Address, input, 10_000_000, new(uint256.Int))
	return ret, err
}

// callValue is call with attached wei.
func (e *testEnv) callValue(caller types.Address, c *Contract, name string, value *uint256.Int, args ...any) ([]byte, error) {
	input := EncodeCall(c.Function(name), args...)
	ret, _, err := e.ev.Call(caller, c.Address, input, 10_000_000, value)
	return ret, err
}

func (e *testEnv) wantUint(ret []byte, want uint64) {
	e.t.Helper()
	got := DecodeWord(ret, 0)
	if !got.Eq(uint256.NewInt(want)) {
		e.t.Fatalf("returned %s, want %d", got, want)
	}
}

func TestTetherIssueAndTransfer(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)

	env.call(TokenOwner, tether, "issue", uint64(1_000_000))
	env.wantUint(env.call(alice, tether, "totalSupply"), 1_000_000)
	env.wantUint(env.call(alice, tether, "balanceOf", TokenOwner), 1_000_000)

	env.call(TokenOwner, tether, "transfer", alice, uint64(400))
	env.wantUint(env.call(bob, tether, "balanceOf", alice), 400)
	env.wantUint(env.call(bob, tether, "balanceOf", TokenOwner), 999_600)

	env.call(alice, tether, "transfer", bob, uint64(150))
	env.wantUint(env.call(bob, tether, "balanceOf", bob), 150)
	env.wantUint(env.call(bob, tether, "balanceOf", alice), 250)
}

func TestTransferInsufficientBalanceReverts(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	if _, err := env.tryCall(alice, tether, "transfer", bob, uint64(1)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert, got %v", err)
	}
	// State must be unchanged.
	env.wantUint(env.call(bob, tether, "balanceOf", bob), 0)
}

func TestNonPayableRejectsValue(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	env.call(TokenOwner, tether, "issue", uint64(100))
	if _, err := env.callValue(TokenOwner, tether, "transfer", uint256.NewInt(5), alice, uint64(1)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert on value to non-payable, got %v", err)
	}
}

func TestUnknownSelectorReverts(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	_, _, err := env.ev.Call(alice, tether.Address, []byte{0xde, 0xad, 0xbe, 0xef}, 1_000_000, new(uint256.Int))
	if err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert on unknown selector, got %v", err)
	}
}

func TestIssueOnlyOwner(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	if _, err := env.tryCall(alice, tether, "issue", uint64(100)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert for non-owner issue, got %v", err)
	}
}

func TestApproveTransferFrom(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	env.call(TokenOwner, tether, "issue", uint64(1000))
	env.call(TokenOwner, tether, "transfer", alice, uint64(500))

	env.call(alice, tether, "approve", bob, uint64(200))
	env.wantUint(env.call(carol, tether, "allowance", alice, bob), 200)

	env.call(bob, tether, "transferFrom", alice, carol, uint64(150))
	env.wantUint(env.call(bob, tether, "balanceOf", carol), 150)
	env.wantUint(env.call(bob, tether, "balanceOf", alice), 350)
	env.wantUint(env.call(bob, tether, "allowance", alice, bob), 50)

	// Exceeding the remaining allowance reverts.
	if _, err := env.tryCall(bob, tether, "transferFrom", alice, carol, uint64(51)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected allowance revert, got %v", err)
	}
}

func TestSeedBalances(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	SeedBalances(env.st, tether, []types.Address{alice, bob}, uint256.NewInt(777))
	env.wantUint(env.call(carol, tether, "balanceOf", alice), 777)
	env.wantUint(env.call(carol, tether, "balanceOf", bob), 777)
	env.wantUint(env.call(carol, tether, "totalSupply"), 1554)
}

func TestTransferEmitsLog(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	env.call(TokenOwner, tether, "issue", uint64(100))
	env.st.TakeLogs() // drop logs from issue (none) and earlier calls
	env.call(TokenOwner, tether, "transfer", alice, uint64(42))
	logs := env.st.TakeLogs()
	if len(logs) != 1 {
		t.Fatalf("got %d logs, want 1", len(logs))
	}
	l := logs[0]
	if l.Address != tether.Address {
		t.Fatalf("log address %s", l.Address)
	}
	if len(l.Topics) != 3 || l.Topics[0] != TransferTopic {
		t.Fatalf("topics %v", l.Topics)
	}
	if types.WordToAddress(ptr(l.Topics[1].Word())) != TokenOwner {
		t.Fatalf("from topic %s", l.Topics[1])
	}
	if types.WordToAddress(ptr(l.Topics[2].Word())) != alice {
		t.Fatalf("to topic %s", l.Topics[2])
	}
	if DecodeWord(l.Data, 0).Uint64() != 42 {
		t.Fatalf("data %x", l.Data)
	}
}

func ptr(v uint256.Int) *uint256.Int { return &v }

func TestDaiMintBurn(t *testing.T) {
	dai := NewDai()
	env := newEnv(t, dai)
	env.call(TokenOwner, dai, "mint", alice, uint64(900))
	env.wantUint(env.call(bob, dai, "balanceOf", alice), 900)
	env.wantUint(env.call(bob, dai, "totalSupply"), 900)

	env.call(alice, dai, "burn", alice, uint64(300))
	env.wantUint(env.call(bob, dai, "balanceOf", alice), 600)
	env.wantUint(env.call(bob, dai, "totalSupply"), 600)

	// Burning someone else's tokens reverts.
	if _, err := env.tryCall(bob, dai, "burn", alice, uint64(1)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert, got %v", err)
	}
}

func TestLinkTransferAndCall(t *testing.T) {
	link := NewLinkToken()
	recv := NewTokenReceiver()
	env := newEnv(t, link, recv)
	SeedBalances(env.st, link, []types.Address{alice}, uint256.NewInt(1000))

	env.call(alice, link, "transferAndCall", recv.Address, uint64(250))
	env.wantUint(env.call(bob, link, "balanceOf", recv.Address), 250)
	env.wantUint(env.call(bob, link, "balanceOf", alice), 750)

	// The receiver's callback must have recorded the credit.
	env.wantUint(env.call(bob, recv, "onTokenTransfer", alice, uint64(0)), 1)
	got := env.st.GetState(recv.Address, AddrKeySlot(alice, 1))
	if got.Uint64() != 250 {
		t.Fatalf("receiver tally = %s, want 250", got.String())
	}
}
