package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// PriceOracle storage layout (a Chainlink-style multi-feed aggregator):
//
//	slot 1: mapping(uint256 feed => uint256 price)
//	slot 2: mapping(uint256 feed => uint256 round)
//	slot 3: mapping(address reader => uint256 lastRoundSeen)
const (
	slotOraclePrices = 1
	slotOracleRounds = 2
	slotOracleSeen   = 3
)

// NewPriceOracle builds the oracle-scenario contract: posters submit
// prices to feeds (bumping the feed's round), consumers read the latest
// answer and record the round they saw. Every submit writes the feed's
// price and round slots every consume reads, so traffic concentrated on
// a Zipf-hot feed forms read-write conflict chains.
func NewPriceOracle() *Contract {
	submit := fn("submit", "submit(uint256,uint256)", false)
	consume := fn("consume", "consume(uint256)", false)
	latestAnswer := fn("latestAnswer", "latestAnswer(uint256)", false)
	latestRound := fn("latestRound", "latestRound(uint256)", false)
	lastSeen := fn("lastSeen", "lastSeen(address)", false)
	fns := []Function{submit, consume, latestAnswer, latestRound, lastSeen}

	c := NewCode()
	c.Dispatcher(fns)

	// submit(uint256 feed, uint256 price): prices[feed] = price,
	// rounds[feed] += 1. Zero prices are rejected so consume's liveness
	// check (price != 0) is an invariant, not a convention.
	c.Begin(submit)
	c.Arg(1) // [price]
	c.Op(evm.ISZERO, evm.ISZERO)
	c.Require()
	c.Arg(1)                     // [price]
	c.Arg(0)                     // [feed, price]
	c.MapSlot(slotOraclePrices)  // [slot, price]
	c.Op(evm.SSTORE)             // []
	c.Arg(0)                     // [feed]
	c.MapSlot(slotOracleRounds)  // [slot]
	c.Op(evm.DUP1, evm.SLOAD)    // [round, slot]
	c.PushInt(1).Op(evm.ADD)     // [round+1, slot]
	c.Op(evm.SWAP1, evm.SSTORE)  // []
	c.Stop()

	// consume(uint256 feed) → price: requires a live feed (price != 0),
	// reads the feed's round and records it under the caller.
	c.Begin(consume)
	c.Arg(0)                    // [feed]
	c.MapSlot(slotOraclePrices) // [slot]
	c.Op(evm.SLOAD)             // [price]
	c.Op(evm.DUP1, evm.ISZERO, evm.ISZERO)
	c.Require()                 // [price]
	c.Arg(0)                    // [feed, price]
	c.MapSlot(slotOracleRounds) // [slot, price]
	c.Op(evm.SLOAD)             // [round, price]
	c.Op(evm.CALLER)            // [caller, round, price]
	c.MapSlot(slotOracleSeen)   // [slot, round, price]
	c.Op(evm.SSTORE)            // [price]
	c.ReturnWord()

	mapView := func(f Function, base uint64, addrKey bool) {
		c.Begin(f)
		if addrKey {
			c.ArgAddr(0)
		} else {
			c.Arg(0)
		}
		c.MapSlot(base)
		c.Op(evm.SLOAD)
		c.ReturnWord()
	}
	mapView(latestAnswer, slotOraclePrices, false)
	mapView(latestRound, slotOracleRounds, false)
	mapView(lastSeen, slotOracleSeen, true)

	code := c.MustBuild()
	return &Contract{
		Name:      "PriceOracle",
		Address:   OracleAddr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(OracleAddr, code)
			st.DiscardJournal()
		},
	}
}

// SeedOracleFeeds initializes feeds 0..numFeeds-1 with a starting price
// and round 1, so consume transactions succeed from the first block.
func SeedOracleFeeds(st *state.StateDB, oracle *Contract, numFeeds int, price uint64) {
	p := uint256.NewInt(price)
	one := uint256.NewInt(1)
	for id := 0; id < numFeeds; id++ {
		idKey := types.Hash(uint256.NewInt(uint64(id)).Bytes32())
		st.SetState(oracle.Address, MapKeySlot(idKey, slotOraclePrices), *p)
		st.SetState(oracle.Address, MapKeySlot(idKey, slotOracleRounds), *one)
	}
	st.DiscardJournal()
}
