package contracts

import (
	"mtpu/internal/state"
	"mtpu/internal/types"
)

// Top8 returns fresh instances of the eight archetype contracts in the
// Table 6 order: Tether USD, UniswapV2Router02, FiatTokenProxy, OpenSea,
// LinkToken, SwapRouter, Dai, MainchainGatewayProxy.
func Top8() []*Contract {
	return []*Contract{
		NewTether(),
		NewUniswapRouter(),
		NewFiatTokenProxy(),
		NewOpenSea(),
		NewLinkToken(),
		NewSwapRouter(),
		NewDai(),
		NewGateway(),
	}
}

// All returns the Top8 plus the auxiliary contracts (WETH9, Ballot,
// CryptoAuction and the ERC-677 token receiver).
func All() []*Contract {
	return append(Top8(),
		NewWETH(),
		NewBallot(),
		NewAuction(),
		NewTokenReceiver(),
	)
}

// DeployAll installs every contract in cs into the state.
func DeployAll(st *state.StateDB, cs []*Contract) {
	for _, c := range cs {
		c.Setup(st)
	}
}

// ByAddress indexes contracts by their deployment address.
func ByAddress(cs []*Contract) map[types.Address]*Contract {
	m := make(map[types.Address]*Contract, len(cs))
	for _, c := range cs {
		m[c.Address] = c
	}
	return m
}
