package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
)

// MainchainGatewayProxy-archetype storage layout:
//
//	slot 1: mapping(address => uint256) deposited
//	slot 2: mapping(uint256 nonce => bool) processed withdrawals
//	slot 3: owner
//	slot 4: paused flag
const (
	slotGatewayDeposits = 1
	slotGatewayNonces   = 2
	slotGatewayOwner    = 3
	slotGatewayPaused   = 4
)

// NewGateway builds the bridge-gateway archetype: value deposits, replay-
// protected withdrawals, and owner-controlled pausing — the logic- and
// branch-heavy mix of the real MainchainGatewayProxy (Table 6).
func NewGateway() *Contract {
	deposit := fn("deposit", "deposit()", true)
	reqW := fn("requestWithdrawal", "requestWithdrawal(uint256,uint256)", false)
	pause := fn("pause", "pause()", false)
	unpause := fn("unpause", "unpause()", false)
	depositOf := fn("depositOf", "depositOf(address)", false)
	isProcessed := fn("isProcessed", "isProcessed(uint256)", false)
	fns := []Function{deposit, reqW, pause, unpause, depositOf, isProcessed}

	c := NewCode()
	c.Dispatcher(fns)

	requireNotPaused := func() {
		c.PushInt(slotGatewayPaused).Op(evm.SLOAD, evm.ISZERO)
		c.Require()
	}
	requireOwner := func() {
		c.PushInt(slotGatewayOwner).Op(evm.SLOAD)
		c.Op(evm.CALLER, evm.EQ)
		c.Require()
	}

	// deposit() payable.
	c.Begin(deposit)
	requireNotPaused()
	c.Op(evm.CALLVALUE)                    // [val]
	c.Op(evm.DUP1, evm.ISZERO, evm.ISZERO) // val > 0
	c.Require()
	c.Op(evm.CALLER)
	c.MapSlot(slotGatewayDeposits) // [slot, val]
	c.Op(evm.DUP1, evm.SLOAD)      // [cur, slot, val]
	c.Op(evm.DUP3, evm.ADD)
	c.Op(evm.SWAP1, evm.SSTORE, evm.POP)
	c.Stop()

	// requestWithdrawal(uint256 amount, uint256 nonce).
	c.Begin(reqW)
	requireNotPaused()
	// Replay protection: processed[nonce] must be unset, then set.
	c.Arg(1)
	c.MapSlot(slotGatewayNonces) // [nSlot]
	c.Op(evm.DUP1, evm.SLOAD, evm.ISZERO)
	c.Require()                 // [nSlot]
	c.PushInt(1)                // [1, nSlot]
	c.Op(evm.SWAP1, evm.SSTORE) // []
	// deposited[caller] -= amount (checked).
	c.Arg(0) // [amt]
	c.Op(evm.CALLER)
	c.MapSlot(slotGatewayDeposits) // [slot, amt]
	c.Op(evm.DUP1, evm.SLOAD)      // [dep, slot, amt]
	c.Op(evm.DUP1, evm.DUP4)       // [amt, dep, dep, slot, amt]
	c.Op(evm.GT, evm.ISZERO)
	c.Require()
	c.Op(evm.DUP3, evm.SWAP1, evm.SUB)
	c.Op(evm.SWAP1, evm.SSTORE) // [amt]
	// Pay out via CALL(gas, caller, amt, 0, 0, 0, 0).
	c.PushInt(0)
	c.PushInt(0)
	c.PushInt(0)
	c.PushInt(0)
	c.Op(evm.DUP5)
	c.Op(evm.CALLER)
	c.PushInt(30000)
	c.Op(evm.CALL)
	c.Require()
	c.Stop()

	// pause() / unpause(): owner only.
	c.Begin(pause)
	requireOwner()
	c.PushInt(1)
	c.PushInt(slotGatewayPaused)
	c.Op(evm.SSTORE)
	c.Stop()

	c.Begin(unpause)
	requireOwner()
	c.PushInt(0)
	c.PushInt(slotGatewayPaused)
	c.Op(evm.SSTORE)
	c.Stop()

	// depositOf(address).
	c.Begin(depositOf)
	c.ArgAddr(0)
	c.MapSlot(slotGatewayDeposits)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	// isProcessed(uint256).
	c.Begin(isProcessed)
	c.Arg(0)
	c.MapSlot(slotGatewayNonces)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	code := c.MustBuild()
	return &Contract{
		Name:      "MainchainGatewayProxy",
		Address:   GatewayAddr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(GatewayAddr, code)
			w := TokenOwner.Word()
			st.SetState(GatewayAddr, slotHash(slotGatewayOwner), w)
			st.DiscardJournal()
		},
	}
}

// GatewaySlotPaused exposes the paused slot for tests.
func GatewaySlotPaused() types.Hash { return slotHash(slotGatewayPaused) }

// GatewayDepositSlot exposes the deposit slot of an account for tests.
func GatewayDepositSlot(a types.Address) types.Hash {
	return AddrKeySlot(a, slotGatewayDeposits)
}
