package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/keccak"
	"mtpu/internal/state"
	"mtpu/internal/types"
)

// ImplementationSlot is the storage slot holding the implementation
// address behind a proxy (an EIP-1967-style out-of-band slot so it cannot
// collide with the implementation's own layout).
var ImplementationSlot = types.Hash(keccak.Sum256([]byte("mtpu.proxy.implementation")))

// NewFiatTokenProxy builds the FiatTokenProxy archetype: a transparent
// proxy that forwards every call to an ERC-20 implementation via
// DELEGATECALL and bubbles up the return or revert data. The token state
// lives in the proxy's storage, as with the real USDC proxy.
func NewFiatTokenProxy() *Contract {
	implCode, fns := buildToken(nil, nil)

	c := NewCode()
	// Copy the full calldata to memory 0.
	c.Op(evm.CALLDATASIZE) // [size]
	c.PushInt(0)           // [0, size]
	c.PushInt(0)           // [0, 0, size] → CALLDATACOPY(mem=0, data=0, size)
	c.Op(evm.CALLDATACOPY)
	// DELEGATECALL(gas, impl, 0, calldatasize, 0, 0).
	c.PushInt(0)           // outSize
	c.PushInt(0)           // outOffset
	c.Op(evm.CALLDATASIZE) // inSize
	c.PushInt(0)           // inOffset
	c.PushBytes(ImplementationSlot[:])
	c.Op(evm.SLOAD) // impl address
	c.Op(evm.GAS)
	c.Op(evm.DELEGATECALL) // [success]
	// Copy the full return data to memory 0.
	c.Op(evm.RETURNDATASIZE)
	c.PushInt(0)
	c.PushInt(0)
	c.Op(evm.RETURNDATACOPY) // [success]
	c.PushLabel("proxy_ok")
	c.Op(evm.JUMPI)
	c.Op(evm.RETURNDATASIZE)
	c.PushInt(0)
	c.Op(evm.REVERT)
	c.Label("proxy_ok")
	c.Op(evm.RETURNDATASIZE)
	c.PushInt(0)
	c.Op(evm.RETURN)
	proxyCode := c.MustBuild()

	return &Contract{
		Name:      "FiatTokenProxy",
		Address:   FiatProxyAddr,
		Code:      proxyCode,
		Functions: fns, // callable through the proxy
		Setup: func(st *state.StateDB) {
			st.SetCode(FiatProxyAddr, proxyCode)
			st.SetCode(FiatImplAddr, implCode)
			implWord := FiatImplAddr.Word()
			st.SetState(FiatProxyAddr, ImplementationSlot, implWord)
			ownerWord := TokenOwner.Word()
			st.SetState(FiatProxyAddr, slotHash(SlotOwner), ownerWord)
			st.DiscardJournal()
		},
	}
}
