package contracts

import (
	"mtpu/internal/evm"
)

// Extended ERC-20 surface shared by the token archetypes: the allowance
// helpers, ownership management and metadata getters found on the real
// TOP-8 token contracts. Besides realism, these widen the dispatcher and
// bytecode (mainnet Tether is 5.7 KB) so the DB-cache capacity sweep of
// Fig. 13 exercises a meaningful working set.

// TokenDecimals is the constant the decimals() getter returns.
const TokenDecimals = 6

// extendedTokenFunctions returns the additional entry points.
func extendedTokenFunctions() []Function {
	return []Function{
		fn("increaseAllowance", "increaseAllowance(address,uint256)", false),
		fn("decreaseAllowance", "decreaseAllowance(address,uint256)", false),
		fn("decimals", "decimals()", false),
		fn("getOwner", "getOwner()", false),
		fn("transferOwnership", "transferOwnership(address)", false),
		fn("batchTransfer3", "batchTransfer3(address,address,address,uint256)", false),
	}
}

// emitExtendedTokenBodies writes the bodies for extendedTokenFunctions.
func emitExtendedTokenBodies(c *CodeBuilder, fns []Function) {
	byName := func(n string) Function {
		for _, f := range fns {
			if f.Name == n {
				return f
			}
		}
		panic("contracts: missing extended function " + n)
	}

	// increaseAllowance(address spender, uint256 delta).
	c.Begin(byName("increaseAllowance"))
	c.Op(evm.CALLER)
	c.MapSlot(SlotAllowances) // [inner]
	c.ArgAddr(0)
	c.MapSlotDyn()            // [slot]
	c.Op(evm.DUP1, evm.SLOAD) // [cur, slot]
	c.Arg(1)                  // [delta, cur, slot]
	c.Op(evm.ADD)             // [cur+delta, slot]
	c.Op(evm.SWAP1, evm.SSTORE)
	c.ArgAddr(0)
	c.Op(evm.CALLER)
	c.Arg(1)
	c.Log3(ApprovalTopic)
	c.ReturnTrue()

	// decreaseAllowance(address spender, uint256 delta): floors at the
	// current allowance (reverts on underflow, like OpenZeppelin).
	c.Begin(byName("decreaseAllowance"))
	c.Op(evm.CALLER)
	c.MapSlot(SlotAllowances)
	c.ArgAddr(0)
	c.MapSlotDyn()            // [slot]
	c.Op(evm.DUP1, evm.SLOAD) // [cur, slot]
	c.Op(evm.DUP1)            // [cur, cur, slot]
	c.Arg(1)                  // [delta, cur, cur, slot]
	c.Op(evm.GT, evm.ISZERO)  // delta <= cur
	c.Require()               // [cur, slot]
	c.Arg(1)                  // [delta, cur, slot]
	c.Op(evm.SWAP1, evm.SUB)  // [cur-delta, slot]
	c.Op(evm.SWAP1, evm.SSTORE)
	c.ReturnTrue()

	// decimals() → constant.
	c.Begin(byName("decimals"))
	c.PushInt(TokenDecimals)
	c.ReturnWord()

	// getOwner() → slot 3.
	c.Begin(byName("getOwner"))
	c.PushInt(SlotOwner).Op(evm.SLOAD)
	c.ReturnWord()

	// transferOwnership(address newOwner): owner only, non-zero target.
	c.Begin(byName("transferOwnership"))
	c.PushInt(SlotOwner).Op(evm.SLOAD)
	c.Op(evm.CALLER, evm.EQ)
	c.Require()
	c.ArgAddr(0)                           // [new]
	c.Op(evm.DUP1, evm.ISZERO, evm.ISZERO) // non-zero
	c.Require()
	c.PushInt(SlotOwner) // [slot, new]
	c.Op(evm.SSTORE)
	c.Stop()

	// batchTransfer3(a, b, c, amount): three equal transfers in one call
	// (the airdrop pattern; stresses repeated map hashing and storage).
	c.Begin(byName("batchTransfer3"))
	// total = 3*amount; require balance.
	c.Arg(3)
	c.PushInt(3).Op(evm.MUL) // [total]
	c.Op(evm.CALLER)
	c.MapSlot(SlotBalances)   // [fromSlot, total]
	c.Op(evm.DUP1, evm.SLOAD) // [bal, fromSlot, total]
	c.Op(evm.DUP1, evm.DUP4)  // [total, bal, bal, fromSlot, total]
	c.Op(evm.GT, evm.ISZERO)
	c.Require()                          // [bal, fromSlot, total]
	c.Op(evm.DUP3, evm.SWAP1, evm.SUB)   // [bal-total, fromSlot, total]
	c.Op(evm.SWAP1, evm.SSTORE, evm.POP) // []
	for arg := 0; arg < 3; arg++ {
		c.Arg(3)                  // [amt]
		c.ArgAddr(arg)            // [to, amt]
		c.MapSlot(SlotBalances)   // [slot, amt]
		c.Op(evm.DUP1, evm.SLOAD) // [cur, slot, amt]
		c.Op(evm.DUP3, evm.ADD)
		c.Op(evm.SWAP1, evm.SSTORE, evm.POP) // []
	}
	c.ReturnTrue()
}
