package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/state"
)

// OpenSea-archetype marketplace storage layout:
//
//	slot 1: mapping(uint256 tokenId => address) owners
//	slot 2: mapping(uint256 tokenId => uint256) prices (0 = unlisted)
//	slot 3: mapping(address => uint256) proceeds (pull payments)
const (
	slotMarketOwners   = 1
	slotMarketPrices   = 2
	slotMarketProceeds = 3
)

// NewOpenSea builds the marketplace archetype: mint, list, buy with
// attached value, cancel, and pull-based proceeds withdrawal.
func NewOpenSea() *Contract {
	mintItem := fn("mintItem", "mintItem(uint256)", false)
	createSale := fn("createSaleAuction", "createSaleAuction(uint256,uint256)", false)
	buy := fn("buy", "buy(uint256)", true)
	cancel := fn("cancelSale", "cancelSale(uint256)", false)
	withdrawP := fn("withdrawProceeds", "withdrawProceeds()", false)
	ownerOf := fn("ownerOf", "ownerOf(uint256)", false)
	priceOf := fn("priceOf", "priceOf(uint256)", false)
	proceedsOf := fn("proceedsOf", "proceedsOf(address)", false)
	fns := []Function{mintItem, createSale, buy, cancel, withdrawP, ownerOf, priceOf, proceedsOf}

	c := NewCode()
	c.Dispatcher(fns)

	// mintItem(uint256 tokenId): claim an unowned id.
	c.Begin(mintItem)
	c.Arg(0)
	c.MapSlot(slotMarketOwners) // [slot]
	c.Op(evm.DUP1, evm.SLOAD)   // [cur, slot]
	c.Op(evm.ISZERO)
	c.Require()                 // [slot]
	c.Op(evm.CALLER)            // [caller, slot]
	c.Op(evm.SWAP1, evm.SSTORE) // []
	c.Stop()

	// createSaleAuction(uint256 tokenId, uint256 price).
	c.Begin(createSale)
	c.Arg(0)
	c.MapSlot(slotMarketOwners)
	c.Op(evm.SLOAD)          // [owner]
	c.Op(evm.CALLER, evm.EQ) // caller owns the item
	c.Require()
	c.Arg(1)                               // [price]
	c.Op(evm.DUP1, evm.ISZERO, evm.ISZERO) // price > 0
	c.Require()                            // [price]
	c.Arg(0)
	c.MapSlot(slotMarketPrices) // [slot, price]
	c.Op(evm.SSTORE)            // []
	c.Stop()

	// buy(uint256 tokenId) payable.
	c.Begin(buy)
	c.Arg(0)
	c.MapSlot(slotMarketPrices)            // [pSlot]
	c.Op(evm.DUP1, evm.SLOAD)              // [price, pSlot]
	c.Op(evm.DUP1, evm.ISZERO, evm.ISZERO) // listed
	c.Require()                            // [price, pSlot]
	c.Op(evm.DUP1, evm.CALLVALUE, evm.EQ)  // msg.value == price
	c.Require()                            // [price, pSlot]
	// proceeds[seller] += price.
	c.Arg(0)
	c.MapSlot(slotMarketOwners)
	c.Op(evm.SLOAD)               // [seller, price, pSlot]
	c.MapSlot(slotMarketProceeds) // [prSlot, price, pSlot]
	c.Op(evm.DUP1, evm.SLOAD)     // [cur, prSlot, price, pSlot]
	c.Op(evm.DUP3, evm.ADD)       // [cur+price, prSlot, price, pSlot]
	c.Op(evm.SWAP1, evm.SSTORE)   // [price, pSlot]
	c.Op(evm.POP)                 // [pSlot]
	// owners[tokenId] = caller.
	c.Op(evm.CALLER) // [caller, pSlot]
	c.Arg(0)
	c.MapSlot(slotMarketOwners) // [oSlot, caller, pSlot]
	c.Op(evm.SSTORE)            // [pSlot]
	// prices[tokenId] = 0 (delist).
	c.PushInt(0)                // [0, pSlot]
	c.Op(evm.SWAP1, evm.SSTORE) // []
	c.Stop()

	// cancelSale(uint256 tokenId).
	c.Begin(cancel)
	c.Arg(0)
	c.MapSlot(slotMarketOwners)
	c.Op(evm.SLOAD)
	c.Op(evm.CALLER, evm.EQ)
	c.Require()
	c.PushInt(0)
	c.Arg(0)
	c.MapSlot(slotMarketPrices) // [slot, 0]
	c.Op(evm.SSTORE)
	c.Stop()

	// withdrawProceeds(): pull pattern, pays out via CALL.
	c.Begin(withdrawP)
	c.Op(evm.CALLER)
	c.MapSlot(slotMarketProceeds)          // [slot]
	c.Op(evm.DUP1, evm.SLOAD)              // [amt, slot]
	c.Op(evm.DUP1, evm.ISZERO, evm.ISZERO) // amt > 0
	c.Require()                            // [amt, slot]
	// proceeds[caller] = 0 before the external call (checks-effects).
	c.PushInt(0)               // [0, amt, slot]
	c.Op(evm.DUP3, evm.SSTORE) // [amt, slot]  (slot copied to top, stores 0)
	// CALL(gas, caller, amt, 0, 0, 0, 0).
	c.PushInt(0)     // outSize
	c.PushInt(0)     // outOffset
	c.PushInt(0)     // inSize
	c.PushInt(0)     // inOffset
	c.Op(evm.DUP5)   // value = amt
	c.Op(evm.CALLER) // to
	c.PushInt(30000) // gas
	c.Op(evm.CALL)
	c.Require()
	c.Stop()

	// ownerOf(uint256).
	c.Begin(ownerOf)
	c.Arg(0)
	c.MapSlot(slotMarketOwners)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	// priceOf(uint256).
	c.Begin(priceOf)
	c.Arg(0)
	c.MapSlot(slotMarketPrices)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	// proceedsOf(address).
	c.Begin(proceedsOf)
	c.ArgAddr(0)
	c.MapSlot(slotMarketProceeds)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	code := c.MustBuild()
	return &Contract{
		Name:      "OpenSea",
		Address:   OpenSeaAddr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(OpenSeaAddr, code)
			st.DiscardJournal()
		},
	}
}
