package contracts

import (
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

func TestWETHDepositWithdraw(t *testing.T) {
	weth := NewWETH()
	env := newEnv(t, weth)

	before := env.st.GetBalance(alice)
	if _, err := env.callValue(alice, weth, "deposit", uint256.NewInt(5000)); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	env.wantUint(env.call(bob, weth, "balanceOf", alice), 5000)
	env.wantUint(env.call(bob, weth, "totalSupply"), 5000)
	if got := env.st.GetBalance(weth.Address); got.Uint64() != 5000 {
		t.Fatalf("contract ether balance %s", got)
	}

	env.call(alice, weth, "withdraw", uint64(2000))
	env.wantUint(env.call(bob, weth, "balanceOf", alice), 3000)
	env.wantUint(env.call(bob, weth, "totalSupply"), 3000)
	after := env.st.GetBalance(alice)
	var diff uint256.Int
	diff.Sub(before, after)
	if diff.Uint64() != 3000 {
		t.Fatalf("alice net outflow %s, want 3000", diff.String())
	}

	// Over-withdraw reverts.
	if _, err := env.tryCall(alice, weth, "withdraw", uint64(9999)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert, got %v", err)
	}

	// ERC-20 transfer of wrapped balance works.
	env.call(alice, weth, "transfer", bob, uint64(1000))
	env.wantUint(env.call(alice, weth, "balanceOf", bob), 1000)
}

func TestFiatTokenProxyDelegatesToImplementation(t *testing.T) {
	proxy := NewFiatTokenProxy()
	env := newEnv(t, proxy)
	SeedBalances(env.st, &Contract{Address: proxy.Address}, []types.Address{alice}, uint256.NewInt(600))

	// Calls go to the proxy address; state lives in the proxy.
	env.wantUint(env.call(bob, proxy, "balanceOf", alice), 600)
	env.call(alice, proxy, "transfer", bob, uint64(250))
	env.wantUint(env.call(bob, proxy, "balanceOf", bob), 250)
	env.wantUint(env.call(bob, proxy, "balanceOf", alice), 350)

	// The implementation's own storage must be untouched.
	implBal := env.st.GetState(FiatImplAddr, AddrKeySlot(bob, SlotBalances))
	if !implBal.IsZero() {
		t.Fatalf("implementation storage written: %s", implBal.String())
	}

	// Reverts bubble through the proxy.
	if _, err := env.tryCall(carol, proxy, "transfer", bob, uint64(1)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert through proxy, got %v", err)
	}
}

func TestOpenSeaLifecycle(t *testing.T) {
	sea := NewOpenSea()
	env := newEnv(t, sea)

	env.call(alice, sea, "mintItem", uint64(7))
	ret := env.call(bob, sea, "ownerOf", uint64(7))
	if types.WordToAddress(DecodeWord(ret, 0)) != alice {
		t.Fatalf("owner %x", ret)
	}
	// Re-minting the same id reverts.
	if _, err := env.tryCall(bob, sea, "mintItem", uint64(7)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert, got %v", err)
	}

	env.call(alice, sea, "createSaleAuction", uint64(7), uint64(1000))
	env.wantUint(env.call(bob, sea, "priceOf", uint64(7)), 1000)

	// Wrong payment amount reverts.
	if _, err := env.callValue(bob, sea, "buy", uint256.NewInt(999), uint64(7)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected underpayment revert, got %v", err)
	}
	if _, err := env.callValue(bob, sea, "buy", uint256.NewInt(1000), uint64(7)); err != nil {
		t.Fatalf("buy: %v", err)
	}
	ret = env.call(bob, sea, "ownerOf", uint64(7))
	if types.WordToAddress(DecodeWord(ret, 0)) != bob {
		t.Fatalf("owner after buy %x", ret)
	}
	env.wantUint(env.call(bob, sea, "priceOf", uint64(7)), 0) // delisted
	env.wantUint(env.call(bob, sea, "proceedsOf", alice), 1000)

	before := env.st.GetBalance(alice)
	env.call(alice, sea, "withdrawProceeds")
	after := env.st.GetBalance(alice)
	var diff uint256.Int
	diff.Sub(after, before)
	if diff.Uint64() != 1000 {
		t.Fatalf("proceeds payout %s", diff.String())
	}
	env.wantUint(env.call(bob, sea, "proceedsOf", alice), 0)

	// cancelSale by the new owner.
	env.call(bob, sea, "createSaleAuction", uint64(7), uint64(500))
	env.call(bob, sea, "cancelSale", uint64(7))
	env.wantUint(env.call(bob, sea, "priceOf", uint64(7)), 0)
}

func TestRouterSwapShape(t *testing.T) {
	router := NewUniswapRouter()
	env := newEnv(t, router)

	env.call(alice, router, "faucet", uint64(100000), uint64(100000))
	env.wantUint(env.call(bob, router, "balance0Of", alice), 100000)
	env.call(alice, router, "addLiquidity", uint64(50000), uint64(50000))
	env.wantUint(env.call(bob, router, "reserve0"), 50000)
	env.wantUint(env.call(bob, router, "reserve1"), 50000)
	env.wantUint(env.call(bob, router, "lpBalanceOf", alice), 100000)

	// Constant-product with 0.3% fee: out = 1000*997*50000/(50000*1000+1000*997).
	ret := env.call(alice, router, "swap0For1", uint64(1000))
	out := DecodeWord(ret, 0).Uint64()
	want := uint64(1000 * 997 * 50000 / (50000*1000 + 1000*997))
	if out != want {
		t.Fatalf("swap out %d, want %d", out, want)
	}
	env.wantUint(env.call(bob, router, "reserve0"), 51000)
	env.wantUint(env.call(bob, router, "reserve1"), 50000-want)
	env.wantUint(env.call(bob, router, "balance1Of", alice), 50000+want)

	// Reverse direction.
	ret = env.call(alice, router, "swap1For0", uint64(500))
	if DecodeWord(ret, 0).IsZero() {
		t.Fatal("reverse swap returned zero")
	}

	// Swapping more than deposited reverts.
	if _, err := env.tryCall(bob, router, "swap0For1", uint64(10)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert, got %v", err)
	}
}

func TestSwapRouterFeeDiffers(t *testing.T) {
	r1, r2 := NewUniswapRouter(), NewSwapRouter()
	env := newEnv(t, r1, r2)
	for _, r := range []*Contract{r1, r2} {
		env.call(alice, r, "faucet", uint64(100000), uint64(100000))
		env.call(alice, r, "addLiquidity", uint64(50000), uint64(50000))
	}
	o1 := DecodeWord(env.call(alice, r1, "swap0For1", uint64(10000)), 0).Uint64()
	o2 := DecodeWord(env.call(alice, r2, "swap0For1", uint64(10000)), 0).Uint64()
	if o1 <= o2 {
		t.Fatalf("997-fee router out %d should exceed 995-fee out %d", o1, o2)
	}
}

func TestGatewayFlow(t *testing.T) {
	gw := NewGateway()
	env := newEnv(t, gw)

	if _, err := env.callValue(alice, gw, "deposit", uint256.NewInt(4000)); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	env.wantUint(env.call(bob, gw, "depositOf", alice), 4000)

	env.call(alice, gw, "requestWithdrawal", uint64(1500), uint64(1))
	env.wantUint(env.call(bob, gw, "depositOf", alice), 2500)
	env.wantUint(env.call(bob, gw, "isProcessed", uint64(1)), 1)

	// Nonce replay rejected.
	if _, err := env.tryCall(alice, gw, "requestWithdrawal", uint64(100), uint64(1)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected replay revert, got %v", err)
	}
	// Over-withdraw rejected.
	if _, err := env.tryCall(alice, gw, "requestWithdrawal", uint64(99999), uint64(2)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected balance revert, got %v", err)
	}

	// Pause gates both deposit and withdrawal; owner only.
	if _, err := env.tryCall(alice, gw, "pause"); err != evm.ErrExecutionReverted {
		t.Fatalf("non-owner pause: %v", err)
	}
	env.call(TokenOwner, gw, "pause")
	if _, err := env.callValue(alice, gw, "deposit", uint256.NewInt(1)); err != evm.ErrExecutionReverted {
		t.Fatalf("paused deposit: %v", err)
	}
	if _, err := env.tryCall(alice, gw, "requestWithdrawal", uint64(1), uint64(3)); err != evm.ErrExecutionReverted {
		t.Fatalf("paused withdrawal: %v", err)
	}
	env.call(TokenOwner, gw, "unpause")
	if _, err := env.callValue(alice, gw, "deposit", uint256.NewInt(1)); err != nil {
		t.Fatalf("deposit after unpause: %v", err)
	}
}

func TestBallot(t *testing.T) {
	ballot := NewBallot()
	env := newEnv(t, ballot)

	env.call(alice, ballot, "vote", uint64(2))
	env.call(bob, ballot, "vote", uint64(2))
	env.call(carol, ballot, "vote", uint64(1))
	env.wantUint(env.call(alice, ballot, "voteCount", uint64(2)), 2)
	env.wantUint(env.call(alice, ballot, "hasVoted", alice), 1)
	env.wantUint(env.call(alice, ballot, "winningProposal"), 2)

	// Double vote reverts.
	if _, err := env.tryCall(alice, ballot, "vote", uint64(0)); err != evm.ErrExecutionReverted {
		t.Fatalf("double vote: %v", err)
	}
	// Out-of-range proposal reverts.
	if _, err := env.tryCall(TokenOwner, ballot, "vote", uint64(BallotProposals)); err != evm.ErrExecutionReverted {
		t.Fatalf("range check: %v", err)
	}
}

func TestBallotWinningTieAndEmpty(t *testing.T) {
	ballot := NewBallot()
	env := newEnv(t, ballot)
	// No votes: proposal 0 wins by default.
	env.wantUint(env.call(alice, ballot, "winningProposal"), 0)
	// Tie: first proposal with the max wins.
	env.call(alice, ballot, "vote", uint64(3))
	env.call(bob, ballot, "vote", uint64(1))
	env.wantUint(env.call(alice, ballot, "winningProposal"), 1)
}

func TestAuctionLifecycle(t *testing.T) {
	auc := NewAuction()
	env := newEnv(t, auc)

	env.call(alice, auc, "createSaleAuction", uint64(9), uint64(100))
	env.wantUint(env.call(bob, auc, "highestBid", uint64(9)), 100)

	// Bid must exceed the reserve.
	if _, err := env.callValue(bob, auc, "bid", uint256.NewInt(100), uint64(9)); err != evm.ErrExecutionReverted {
		t.Fatalf("low bid accepted: %v", err)
	}
	if _, err := env.callValue(bob, auc, "bid", uint256.NewInt(150), uint64(9)); err != nil {
		t.Fatalf("bid: %v", err)
	}
	env.wantUint(env.call(alice, auc, "highestBid", uint64(9)), 150)

	// Carol outbids; bob is refunded.
	bobBefore := env.st.GetBalance(bob)
	if _, err := env.callValue(carol, auc, "bid", uint256.NewInt(200), uint64(9)); err != nil {
		t.Fatalf("outbid: %v", err)
	}
	bobAfter := env.st.GetBalance(bob)
	var refund uint256.Int
	refund.Sub(bobAfter, bobBefore)
	if refund.Uint64() != 150 {
		t.Fatalf("refund %s, want 150", refund.String())
	}

	// Only the seller settles; seller receives the winning bid.
	if _, err := env.tryCall(bob, auc, "settle", uint64(9)); err != evm.ErrExecutionReverted {
		t.Fatalf("non-seller settle: %v", err)
	}
	aliceBefore := env.st.GetBalance(alice)
	env.call(alice, auc, "settle", uint64(9))
	aliceAfter := env.st.GetBalance(alice)
	var gain uint256.Int
	gain.Sub(aliceAfter, aliceBefore)
	if gain.Uint64() != 200 {
		t.Fatalf("settlement %s, want 200", gain.String())
	}
	// Cleared.
	env.wantUint(env.call(bob, auc, "highestBid", uint64(9)), 0)
	ret := env.call(bob, auc, "sellerOf", uint64(9))
	if !DecodeWord(ret, 0).IsZero() {
		t.Fatalf("seller not cleared: %x", ret)
	}
}

func TestAllContractsDeployAndDisassemble(t *testing.T) {
	cs := All()
	if len(cs) != 12 {
		t.Fatalf("All() returned %d contracts", len(cs))
	}
	seen := make(map[types.Address]bool)
	for _, c := range cs {
		if c.Address.IsZero() {
			t.Errorf("%s: zero address", c.Name)
		}
		if seen[c.Address] {
			t.Errorf("%s: duplicate address %s", c.Name, c.Address)
		}
		seen[c.Address] = true
		if len(c.Code) == 0 {
			t.Errorf("%s: empty code", c.Name)
		}
		if len(c.Functions) == 0 {
			t.Errorf("%s: no functions", c.Name)
		}
		for _, f := range c.Functions {
			if _, ok := c.FunctionBySelector(f.Selector); !ok {
				t.Errorf("%s: selector lookup failed for %s", c.Name, f.Name)
			}
		}
	}
}

func TestExtendedAllowanceHelpers(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	env.call(alice, tether, "increaseAllowance", bob, uint64(100))
	env.call(alice, tether, "increaseAllowance", bob, uint64(50))
	env.wantUint(env.call(carol, tether, "allowance", alice, bob), 150)
	env.call(alice, tether, "decreaseAllowance", bob, uint64(60))
	env.wantUint(env.call(carol, tether, "allowance", alice, bob), 90)
	// Underflow reverts.
	if _, err := env.tryCall(alice, tether, "decreaseAllowance", bob, uint64(91)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert, got %v", err)
	}
}

func TestExtendedMetadataAndOwnership(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	env.wantUint(env.call(alice, tether, "decimals"), TokenDecimals)
	ret := env.call(alice, tether, "getOwner")
	if types.WordToAddress(DecodeWord(ret, 0)) != TokenOwner {
		t.Fatalf("owner %x", ret)
	}
	// Only the owner may transfer ownership, and not to zero.
	if _, err := env.tryCall(alice, tether, "transferOwnership", bob); err != evm.ErrExecutionReverted {
		t.Fatalf("non-owner transferOwnership: %v", err)
	}
	if _, err := env.tryCall(TokenOwner, tether, "transferOwnership", types.Address{}); err != evm.ErrExecutionReverted {
		t.Fatalf("zero-owner accepted: %v", err)
	}
	env.call(TokenOwner, tether, "transferOwnership", alice)
	ret = env.call(bob, tether, "getOwner")
	if types.WordToAddress(DecodeWord(ret, 0)) != alice {
		t.Fatalf("ownership not transferred: %x", ret)
	}
	// New owner can issue; old owner cannot.
	env.call(alice, tether, "issue", uint64(7))
	if _, err := env.tryCall(TokenOwner, tether, "issue", uint64(7)); err != evm.ErrExecutionReverted {
		t.Fatalf("old owner still mints: %v", err)
	}
}

func TestBatchTransfer3(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	SeedBalances(env.st, tether, []types.Address{alice}, uint256.NewInt(1000))
	env.call(alice, tether, "batchTransfer3", bob, carol, TokenOwner, uint64(30))
	env.wantUint(env.call(alice, tether, "balanceOf", alice), 910)
	env.wantUint(env.call(alice, tether, "balanceOf", bob), 30)
	env.wantUint(env.call(alice, tether, "balanceOf", carol), 30)
	env.wantUint(env.call(alice, tether, "balanceOf", TokenOwner), 30)
	// Insufficient for 3× reverts atomically.
	if _, err := env.tryCall(alice, tether, "batchTransfer3", bob, carol, TokenOwner, uint64(400)); err != evm.ErrExecutionReverted {
		t.Fatalf("expected revert, got %v", err)
	}
	env.wantUint(env.call(alice, tether, "balanceOf", alice), 910)
}

func TestBatchTransferSameRecipientAccumulates(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)
	SeedBalances(env.st, tether, []types.Address{alice}, uint256.NewInt(1000))
	env.call(alice, tether, "batchTransfer3", bob, bob, bob, uint64(10))
	env.wantUint(env.call(alice, tether, "balanceOf", bob), 30)
}
