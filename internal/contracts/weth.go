package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/state"
)

// WETH event topics.
var (
	DepositTopic    = EventTopic("Deposit(address,uint256)")
	WithdrawalTopic = EventTopic("Withdrawal(address,uint256)")
)

// NewWETH builds the WETH9 archetype: wrapped ether with payable deposit,
// withdraw that sends real value back via CALL, and the ERC-20 surface.
// totalSupply() returns the contract's ether balance (ADDRESS + BALANCE),
// exactly like the canonical WETH9.
func NewWETH() *Contract {
	deposit := fn("deposit", "deposit()", true)
	withdraw := fn("withdraw", "withdraw(uint256)", false)
	fns := append(erc20Functions(), deposit, withdraw)

	c := NewCode()
	c.Dispatcher(fns)
	emitERC20Bodies(c, fns, "totalSupply")

	// totalSupply() = address(this).balance.
	for _, f := range fns {
		if f.Name == "totalSupply" {
			c.Begin(f)
			c.Op(evm.ADDRESS, evm.BALANCE)
			c.ReturnWord()
		}
	}

	// deposit() payable: balances[caller] += msg.value.
	c.Begin(deposit)
	c.Op(evm.CALLVALUE)       // [val]
	c.Op(evm.CALLER)          // [caller, val]
	c.MapSlot(SlotBalances)   // [slot, val]
	c.Op(evm.DUP1, evm.SLOAD) // [bal, slot, val]
	c.Op(evm.DUP3, evm.ADD)   // [bal+val, slot, val]
	c.Op(evm.SWAP1, evm.SSTORE)
	// emit Deposit(caller, value): Log2 shape — reuse Log3 layout with
	// two topics via LOG2: stack [data, topic1].
	c.Op(evm.POP)                // []
	c.Op(evm.CALLER)             // [caller]
	c.Op(evm.CALLVALUE)          // [val, caller]
	c.PushInt(0).Op(evm.MSTORE)  // mem[0]=val; [caller]
	c.PushBytes(DepositTopic[:]) // [t0, caller]; LOG2 pops off,size,t0,t1
	c.PushInt(0x20)              // size
	c.PushInt(0)                 // offset
	c.Op(evm.LOG2)
	c.Stop()

	// withdraw(uint256 amount): burn balance, send ether via CALL.
	c.Begin(withdraw)
	c.Arg(0)                  // [amt]
	c.Op(evm.CALLER)          // [caller, amt]
	c.MapSlot(SlotBalances)   // [slot, amt]
	c.Op(evm.DUP1, evm.SLOAD) // [bal, slot, amt]
	c.Op(evm.DUP1, evm.DUP4)  // [amt, bal, bal, slot, amt]
	c.Op(evm.GT, evm.ISZERO)
	c.Require()                        // [bal, slot, amt]
	c.Op(evm.DUP3, evm.SWAP1, evm.SUB) // [bal-amt, slot, amt]
	c.Op(evm.SWAP1, evm.SSTORE)        // [amt]
	// CALL(gas, caller, amt, 0, 0, 0, 0).
	c.PushInt(0)     // outSize; [0, amt]
	c.PushInt(0)     // outOffset
	c.PushInt(0)     // inSize
	c.PushInt(0)     // inOffset
	c.Op(evm.DUP5)   // value = amt
	c.Op(evm.CALLER) // to
	c.PushInt(30000) // gas
	c.Op(evm.CALL)
	c.Require() // [amt]
	// emit Withdrawal(caller, amt).
	c.Op(evm.CALLER)                // [caller, amt]
	c.Op(evm.SWAP1)                 // [amt, caller]
	c.PushInt(0).Op(evm.MSTORE)     // mem[0]=amt; [caller]
	c.PushBytes(WithdrawalTopic[:]) // [t0, caller]
	c.PushInt(0x20)
	c.PushInt(0)
	c.Op(evm.LOG2)
	c.Stop()

	code := c.MustBuild()
	return &Contract{
		Name:      "WETH9",
		Address:   WETHAddr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(WETHAddr, code)
			st.DiscardJournal()
		},
	}
}
