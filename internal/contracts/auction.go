package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/state"
)

// CryptoCat-style auction storage layout (Table 2):
//
//	slot 1: mapping(uint256 id => address) seller
//	slot 2: mapping(uint256 id => uint256) highest bid
//	slot 3: mapping(uint256 id => address) highest bidder
//	slot 4: mapping(uint256 id => uint256) end block
const (
	slotAucSeller = 1
	slotAucBid    = 2
	slotAucBidder = 3
	slotAucEnd    = 4
)

// AuctionDuration is the bidding window in blocks.
const AuctionDuration = 100

// NewAuction builds the auction-house archetype: create, competitive
// bidding with refunds of the outbid party (inner CALL), and settlement
// paying the seller.
func NewAuction() *Contract {
	create := fn("createSaleAuction", "createSaleAuction(uint256,uint256)", false)
	bid := fn("bid", "bid(uint256)", true)
	settle := fn("settle", "settle(uint256)", false)
	highBid := fn("highestBid", "highestBid(uint256)", false)
	sellerOf := fn("sellerOf", "sellerOf(uint256)", false)
	fns := []Function{create, bid, settle, highBid, sellerOf}

	c := NewCode()
	c.Dispatcher(fns)

	// createSaleAuction(uint256 id, uint256 startPrice).
	c.Begin(create)
	// require(seller[id] == 0): id unused.
	c.Arg(0)
	c.MapSlot(slotAucSeller)
	c.Op(evm.DUP1, evm.SLOAD, evm.ISZERO)
	c.Require()      // [sSlot]
	c.Op(evm.CALLER) // [caller, sSlot]
	c.Op(evm.SWAP1, evm.SSTORE)
	// bid[id] = startPrice (reserve).
	c.Arg(1)
	c.Arg(0)
	c.MapSlot(slotAucBid) // [bSlot, price]
	c.Op(evm.SSTORE)
	// end[id] = block.number + duration.
	c.PushInt(AuctionDuration)
	c.Op(evm.NUMBER, evm.ADD) // [end]
	c.Arg(0)
	c.MapSlot(slotAucEnd) // [eSlot, end]
	c.Op(evm.SSTORE)
	c.Stop()

	// bid(uint256 id) payable.
	c.Begin(bid)
	// require(seller[id] != 0): live auction.
	c.Arg(0)
	c.MapSlot(slotAucSeller)
	c.Op(evm.SLOAD, evm.ISZERO, evm.ISZERO)
	c.Require()
	// require(block.number <= end[id]).
	c.Arg(0)
	c.MapSlot(slotAucEnd)
	c.Op(evm.SLOAD)          // [end]
	c.Op(evm.NUMBER, evm.GT) // NUMBER > end ?
	c.Op(evm.ISZERO)
	c.Require()
	// require(msg.value > bid[id]).
	c.Arg(0)
	c.MapSlot(slotAucBid)
	c.Op(evm.DUP1, evm.SLOAD)     // [old, bSlot]
	c.Op(evm.DUP1, evm.CALLVALUE) // [val, old, old, bSlot]
	c.Op(evm.GT)                  // val > old
	c.Require()                   // [old, bSlot]
	// Refund the previous bidder, if any.
	c.Arg(0)
	c.MapSlot(slotAucBidder)
	c.Op(evm.SLOAD) // [oldBidder, old, bSlot]
	c.Op(evm.DUP1, evm.ISZERO)
	c.PushLabel("no_refund")
	c.Op(evm.JUMPI) // [oldBidder, old, bSlot]
	// CALL(gas, oldBidder, old, 0, 0, 0, 0).
	c.PushInt(0)   // outSize
	c.PushInt(0)   // outOffset
	c.PushInt(0)   // inSize
	c.PushInt(0)   // inOffset
	c.Op(evm.DUP6) // value = old
	c.Op(evm.DUP6) // to = oldBidder
	c.PushInt(30000)
	c.Op(evm.CALL)
	c.Require() // [oldBidder, old, bSlot]
	c.Label("no_refund")
	c.Op(evm.POP, evm.POP) // [bSlot]
	// bid[id] = msg.value.
	c.Op(evm.CALLVALUE)
	c.Op(evm.SWAP1, evm.SSTORE) // []
	// bidder[id] = caller.
	c.Op(evm.CALLER)
	c.Arg(0)
	c.MapSlot(slotAucBidder) // [slot, caller]
	c.Op(evm.SSTORE)
	c.Stop()

	// settle(uint256 id): seller collects the winning bid.
	c.Begin(settle)
	c.Arg(0)
	c.MapSlot(slotAucSeller)
	c.Op(evm.DUP1, evm.SLOAD) // [seller, sSlot]
	c.Op(evm.DUP1, evm.CALLER, evm.EQ)
	c.Require() // [seller, sSlot]
	// Pay only if someone bid.
	c.Arg(0)
	c.MapSlot(slotAucBidder)
	c.Op(evm.SLOAD, evm.ISZERO) // no bidder?
	c.PushLabel("no_payout")
	c.Op(evm.JUMPI) // [seller, sSlot]
	// CALL(gas, seller, bid[id], 0, 0, 0, 0).
	c.Arg(0)
	c.MapSlot(slotAucBid)
	c.Op(evm.SLOAD)  // [amt, seller, sSlot]
	c.PushInt(0)     // outSize
	c.PushInt(0)     // outOffset
	c.PushInt(0)     // inSize
	c.PushInt(0)     // inOffset
	c.Op(evm.DUP5)   // value = amt
	c.Op(evm.DUP7)   // to = seller
	c.PushInt(30000) // gas
	c.Op(evm.CALL)
	c.Require()   // [amt, seller, sSlot]
	c.Op(evm.POP) // [seller, sSlot]
	c.Label("no_payout")
	c.Op(evm.POP) // [sSlot]
	// Clear the auction: seller, bid, bidder.
	c.PushInt(0)
	c.Op(evm.SWAP1, evm.SSTORE) // seller[id] = 0
	c.PushInt(0)
	c.Arg(0)
	c.MapSlot(slotAucBid)
	c.Op(evm.SSTORE) // bid[id] = 0
	c.PushInt(0)
	c.Arg(0)
	c.MapSlot(slotAucBidder)
	c.Op(evm.SSTORE) // bidder[id] = 0
	c.Stop()

	// highestBid(uint256).
	c.Begin(highBid)
	c.Arg(0)
	c.MapSlot(slotAucBid)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	// sellerOf(uint256).
	c.Begin(sellerOf)
	c.Arg(0)
	c.MapSlot(slotAucSeller)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	code := c.MustBuild()
	return &Contract{
		Name:      "CryptoAuction",
		Address:   AuctionAddr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(AuctionAddr, code)
			st.DiscardJournal()
		},
	}
}
