package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/keccak"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// ERC-20 storage layout shared by every token archetype:
//
//	slot 0: totalSupply
//	slot 1: mapping(address => uint256) balances
//	slot 2: mapping(address => mapping(address => uint256)) allowances
//	slot 3: owner
const (
	SlotTotalSupply = 0
	SlotBalances    = 1
	SlotAllowances  = 2
	SlotOwner       = 3
)

// Standard ERC-20 event topics.
var (
	TransferTopic = EventTopic("Transfer(address,address,uint256)")
	ApprovalTopic = EventTopic("Approval(address,address,uint256)")
)

// erc20Functions is the standard external interface.
func erc20Functions() []Function {
	return []Function{
		fn("totalSupply", "totalSupply()", false),
		fn("balanceOf", "balanceOf(address)", false),
		fn("transfer", "transfer(address,uint256)", false),
		fn("approve", "approve(address,uint256)", false),
		fn("allowance", "allowance(address,address)", false),
		fn("transferFrom", "transferFrom(address,address,uint256)", false),
	}
}

// emitERC20Bodies writes the standard function bodies, skipping any name
// present in the skip set (WETH9 overrides totalSupply, for example).
func emitERC20Bodies(c *CodeBuilder, fns []Function, skip ...string) {
	skipped := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipped[s] = true
	}
	byName := func(n string) (Function, bool) {
		if skipped[n] {
			return Function{}, false
		}
		for _, f := range fns {
			if f.Name == n {
				return f, true
			}
		}
		panic("contracts: missing standard function " + n)
	}

	// totalSupply() → slot 0.
	if f, ok := byName("totalSupply"); ok {
		c.Begin(f)
		c.PushInt(SlotTotalSupply).Op(evm.SLOAD)
		c.ReturnWord()
	}

	// balanceOf(address).
	fbalanceOf, ok := byName("balanceOf")
	_ = ok
	c.Begin(fbalanceOf)
	c.ArgAddr(0)
	c.MapSlot(SlotBalances)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	// transfer(address to, uint256 amount).
	ftransfer, ok := byName("transfer")
	_ = ok
	c.Begin(ftransfer)
	c.Arg(1)                           // [amt]
	c.Op(evm.CALLER)                   // [caller, amt]
	c.MapSlot(SlotBalances)            // [fromSlot, amt]
	c.Op(evm.DUP1, evm.SLOAD)          // [bal, fromSlot, amt]
	c.Op(evm.DUP1, evm.DUP4)           // [amt, bal, bal, fromSlot, amt]
	c.Op(evm.GT, evm.ISZERO)           // [amt<=bal, bal, fromSlot, amt]
	c.Require()                        // [bal, fromSlot, amt]
	c.Op(evm.DUP3, evm.SWAP1, evm.SUB) // [bal-amt, fromSlot, amt]
	c.Op(evm.SWAP1, evm.SSTORE)        // [amt]
	c.ArgAddr(0)                       // [to, amt]
	c.MapSlot(SlotBalances)            // [toSlot, amt]
	c.Op(evm.DUP1, evm.SLOAD)          // [toBal, toSlot, amt]
	c.Op(evm.DUP3, evm.ADD)            // [toBal+amt, toSlot, amt]
	c.Op(evm.SWAP1, evm.SSTORE)        // [amt]
	c.Op(evm.POP)                      // []
	c.ArgAddr(0)                       // [to]
	c.Op(evm.CALLER)                   // [from, to]
	c.Arg(1)                           // [amt, from, to]
	c.Log3(TransferTopic)
	c.ReturnTrue()

	// approve(address spender, uint256 amount).
	fapprove, ok := byName("approve")
	_ = ok
	c.Begin(fapprove)
	c.Op(evm.CALLER)          // [caller]
	c.MapSlot(SlotAllowances) // [inner]
	c.ArgAddr(0)              // [spender, inner]
	c.MapSlotDyn()            // [slot]
	c.Arg(1)                  // [amt, slot]
	c.Op(evm.SWAP1, evm.SSTORE)
	c.ArgAddr(0)     // [spender]
	c.Op(evm.CALLER) // [owner, spender]
	c.Arg(1)         // [amt, owner, spender]
	c.Log3(ApprovalTopic)
	c.ReturnTrue()

	// allowance(address owner, address spender).
	fallowance, ok := byName("allowance")
	_ = ok
	c.Begin(fallowance)
	c.ArgAddr(0)
	c.MapSlot(SlotAllowances)
	c.ArgAddr(1)
	c.MapSlotDyn()
	c.Op(evm.SLOAD)
	c.ReturnWord()

	// transferFrom(address from, address to, uint256 amount).
	ftransferFrom, ok := byName("transferFrom")
	_ = ok
	c.Begin(ftransferFrom)
	// allowance[from][caller] -= amount, with bounds check.
	c.ArgAddr(0)              // [from]
	c.MapSlot(SlotAllowances) // [inner]
	c.Op(evm.CALLER)          // [caller, inner]
	c.MapSlotDyn()            // [aSlot]
	c.Op(evm.DUP1, evm.SLOAD) // [allow, aSlot]
	c.Op(evm.DUP1)            // [allow, allow, aSlot]
	c.Arg(2)                  // [amt, allow, allow, aSlot]
	c.Op(evm.GT, evm.ISZERO)
	c.Require()                 // [allow, aSlot]
	c.Arg(2)                    // [amt, allow, aSlot]
	c.Op(evm.SWAP1, evm.SUB)    // [allow-amt, aSlot]
	c.Op(evm.SWAP1, evm.SSTORE) // []
	// balances[from] -= amount.
	c.ArgAddr(0)
	c.MapSlot(SlotBalances)   // [fSlot]
	c.Op(evm.DUP1, evm.SLOAD) // [bal, fSlot]
	c.Op(evm.DUP1)            // [bal, bal, fSlot]
	c.Arg(2)                  // [amt, bal, bal, fSlot]
	c.Op(evm.GT, evm.ISZERO)
	c.Require()                 // [bal, fSlot]
	c.Arg(2)                    // [amt, bal, fSlot]
	c.Op(evm.SWAP1, evm.SUB)    // [bal-amt, fSlot]
	c.Op(evm.SWAP1, evm.SSTORE) // []
	// balances[to] += amount.
	c.ArgAddr(1)
	c.MapSlot(SlotBalances)
	c.Op(evm.DUP1, evm.SLOAD) // [toBal, tSlot]
	c.Arg(2)                  // [amt, toBal, tSlot]
	c.Op(evm.ADD)             // [sum, tSlot]
	c.Op(evm.SWAP1, evm.SSTORE)
	// emit Transfer(from, to, amount).
	c.ArgAddr(1) // [to]
	c.ArgAddr(0) // [from, to]
	c.Arg(2)     // [amt, from, to]
	c.Log3(TransferTopic)
	c.ReturnTrue()
}

// buildToken assembles an ERC-20 with the extended standard surface
// (allowance helpers, ownership, metadata, batch transfer) plus optional
// archetype-specific extras.
func buildToken(extras []Function, emitExtras func(c *CodeBuilder)) ([]byte, []Function) {
	fns := append(erc20Functions(), extendedTokenFunctions()...)
	fns = append(fns, extras...)
	c := NewCode()
	c.Dispatcher(fns)
	emitERC20Bodies(c, fns)
	emitExtendedTokenBodies(c, fns)
	if emitExtras != nil {
		emitExtras(c)
	}
	return c.MustBuild(), fns
}

// emitIssueBody writes a Tether-style owner-only mint:
// issue(uint256 amount) adds to totalSupply and the owner balance.
func emitIssueBody(c *CodeBuilder, f Function) {
	c.Begin(f)
	// require(caller == owner)
	c.PushInt(SlotOwner).Op(evm.SLOAD) // [owner]
	c.Op(evm.CALLER, evm.EQ)
	c.Require()
	c.Arg(0)                                  // [amt]
	c.PushInt(SlotTotalSupply).Op(evm.SLOAD)  // [ts, amt]
	c.Op(evm.DUP2, evm.ADD)                   // [ts+amt, amt]
	c.PushInt(SlotTotalSupply).Op(evm.SSTORE) // [amt]
	c.PushInt(SlotOwner).Op(evm.SLOAD)        // [owner, amt]
	c.MapSlot(SlotBalances)                   // [oSlot, amt]
	c.Op(evm.DUP1, evm.SLOAD)                 // [bal, oSlot, amt]
	c.Op(evm.DUP3, evm.ADD)                   // [bal+amt, oSlot, amt]
	c.Op(evm.SWAP1, evm.SSTORE, evm.POP)      // []
	c.Stop()
}

// emitRedeemBody writes the owner-only burn counterpart.
func emitRedeemBody(c *CodeBuilder, f Function) {
	c.Begin(f)
	c.PushInt(SlotOwner).Op(evm.SLOAD)
	c.Op(evm.CALLER, evm.EQ)
	c.Require()
	c.Arg(0) // [amt]
	// balances[owner] -= amt (checked).
	c.PushInt(SlotOwner).Op(evm.SLOAD) // [owner, amt]
	c.MapSlot(SlotBalances)            // [oSlot, amt]
	c.Op(evm.DUP1, evm.SLOAD)          // [bal, oSlot, amt]
	c.Op(evm.DUP1, evm.DUP4)           // [amt, bal, bal, oSlot, amt]
	c.Op(evm.GT, evm.ISZERO)
	c.Require()                        // [bal, oSlot, amt]
	c.Op(evm.DUP3, evm.SWAP1, evm.SUB) // [bal-amt, oSlot, amt]
	c.Op(evm.SWAP1, evm.SSTORE)        // [amt]
	// totalSupply -= amt.
	c.PushInt(SlotTotalSupply).Op(evm.SLOAD)  // [ts, amt]
	c.Op(evm.SUB)                             // [ts-amt]
	c.PushInt(SlotTotalSupply).Op(evm.SSTORE) // []
	c.Stop()
}

// ownerSetup returns a Setup installing code and the owner slot.
func ownerSetup(addr types.Address, code []byte, owner types.Address) func(*state.StateDB) {
	return func(st *state.StateDB) {
		st.SetCode(addr, code)
		w := owner.Word()
		st.SetState(addr, slotHash(SlotOwner), w)
		st.DiscardJournal()
	}
}

// TokenOwner is the deployer/owner account used for all genesis contracts.
var TokenOwner = types.HexToAddress("0x00000000000000000000000000000000000000aa")

// NewTether builds the Tether USD archetype: ERC-20 plus owner-only
// issue/redeem, the most-invoked hotspot contract of the evaluation.
func NewTether() *Contract {
	issue := fn("issue", "issue(uint256)", false)
	redeem := fn("redeem", "redeem(uint256)", false)
	code, fns := buildToken([]Function{issue, redeem}, func(c *CodeBuilder) {
		emitIssueBody(c, issue)
		emitRedeemBody(c, redeem)
	})
	return &Contract{
		Name:      "TetherUSD",
		Address:   TetherAddr,
		Code:      code,
		Functions: fns,
		Setup:     ownerSetup(TetherAddr, code, TokenOwner),
	}
}

// NewDai builds the Dai archetype: ERC-20 with open mint/burn-to-self
// (standing in for the wards/auth logic of the real contract).
func NewDai() *Contract {
	mint := fn("mint", "mint(address,uint256)", false)
	burn := fn("burn", "burn(address,uint256)", false)
	code, fns := buildToken([]Function{mint, burn}, func(c *CodeBuilder) {
		// mint(address to, uint256 amount): owner only.
		c.Begin(mint)
		c.PushInt(SlotOwner).Op(evm.SLOAD)
		c.Op(evm.CALLER, evm.EQ)
		c.Require()
		c.Arg(1)                                  // [amt]
		c.ArgAddr(0)                              // [to, amt]
		c.MapSlot(SlotBalances)                   // [slot, amt]
		c.Op(evm.DUP1, evm.SLOAD)                 // [bal, slot, amt]
		c.Op(evm.DUP3, evm.ADD)                   // [bal+amt, slot, amt]
		c.Op(evm.SWAP1, evm.SSTORE)               // [amt]
		c.PushInt(SlotTotalSupply).Op(evm.SLOAD)  // [ts, amt]
		c.Op(evm.ADD)                             // [ts+amt]
		c.PushInt(SlotTotalSupply).Op(evm.SSTORE) // []
		c.Stop()

		// burn(address from, uint256 amount): holder burns own tokens.
		c.Begin(burn)
		c.ArgAddr(0)
		c.Op(evm.CALLER, evm.EQ)
		c.Require()
		c.Arg(1)                  // [amt]
		c.Op(evm.CALLER)          // [from, amt]
		c.MapSlot(SlotBalances)   // [slot, amt]
		c.Op(evm.DUP1, evm.SLOAD) // [bal, slot, amt]
		c.Op(evm.DUP1, evm.DUP4)  // [amt, bal, bal, slot, amt]
		c.Op(evm.GT, evm.ISZERO)
		c.Require()                               // [bal, slot, amt]
		c.Op(evm.DUP3, evm.SWAP1, evm.SUB)        // [bal-amt, slot, amt]
		c.Op(evm.SWAP1, evm.SSTORE)               // [amt]
		c.PushInt(SlotTotalSupply).Op(evm.SLOAD)  // [ts, amt]
		c.Op(evm.SUB)                             // [ts-amt]
		c.PushInt(SlotTotalSupply).Op(evm.SSTORE) // []
		c.Stop()
	})
	return &Contract{
		Name:      "Dai",
		Address:   DaiAddr,
		Code:      code,
		Functions: fns,
		Setup:     ownerSetup(DaiAddr, code, TokenOwner),
	}
}

// onTokenTransferSelector is the callback invoked by transferAndCall.
var onTokenTransferSelector = keccak.Selector("onTokenTransfer(address,uint256)")

// NewLinkToken builds the LinkToken archetype: ERC-20 plus the ERC-677
// transferAndCall entry point, which performs an inner CALL to the
// receiving contract (exercising the Context switching unit).
func NewLinkToken() *Contract {
	tac := fn("transferAndCall", "transferAndCall(address,uint256)", false)
	code, fns := buildToken([]Function{tac}, func(c *CodeBuilder) {
		c.Begin(tac)
		// Move balances caller → to, as in transfer.
		c.Arg(1)                // [amt]
		c.Op(evm.CALLER)        // [caller, amt]
		c.MapSlot(SlotBalances) // [fromSlot, amt]
		c.Op(evm.DUP1, evm.SLOAD)
		c.Op(evm.DUP1, evm.DUP4)
		c.Op(evm.GT, evm.ISZERO)
		c.Require()
		c.Op(evm.DUP3, evm.SWAP1, evm.SUB)
		c.Op(evm.SWAP1, evm.SSTORE) // [amt]
		c.ArgAddr(0)
		c.MapSlot(SlotBalances)
		c.Op(evm.DUP1, evm.SLOAD)
		c.Op(evm.DUP3, evm.ADD)
		c.Op(evm.SWAP1, evm.SSTORE)
		c.Op(evm.POP) // []
		// Build calldata for onTokenTransfer(caller, amount) at mem[0:68].
		c.PushBytes(onTokenTransferSelector[:])
		c.PushInt(0xe0).Op(evm.SHL)
		c.PushInt(0).Op(evm.MSTORE) // selector word at 0
		c.Op(evm.CALLER)
		c.PushInt(4).Op(evm.MSTORE)
		c.Arg(1)
		c.PushInt(36).Op(evm.MSTORE)
		// CALL(gas, to, 0, 0, 68, 0, 0); push in reverse pop order.
		c.PushInt(0)  // outSize
		c.PushInt(0)  // outOffset
		c.PushInt(68) // inSize
		c.PushInt(0)  // inOffset
		c.PushInt(0)  // value
		c.ArgAddr(0)  // to
		c.PushInt(100000)
		c.Op(evm.CALL)
		c.Require() // require callback success
		// emit Transfer and return.
		c.ArgAddr(0)
		c.Op(evm.CALLER)
		c.Arg(1)
		c.Log3(TransferTopic)
		c.ReturnTrue()
	})
	return &Contract{
		Name:      "LinkToken",
		Address:   LinkAddr,
		Code:      code,
		Functions: fns,
		Setup:     ownerSetup(LinkAddr, code, TokenOwner),
	}
}

// NewTokenReceiver builds the contract targeted by transferAndCall: its
// onTokenTransfer(address,uint256) tallies received amounts per sender.
func NewTokenReceiver() *Contract {
	cb := fn("onTokenTransfer", "onTokenTransfer(address,uint256)", false)
	fns := []Function{cb}
	c := NewCode()
	c.Dispatcher(fns)
	c.Begin(cb)
	// received[origin sender arg] += amount; slot base 1.
	c.Arg(1)                  // [amt]
	c.ArgAddr(0)              // [sender, amt]
	c.MapSlot(1)              // [slot, amt]
	c.Op(evm.DUP1, evm.SLOAD) // [cur, slot, amt]
	c.Op(evm.DUP3, evm.ADD)   // [cur+amt, slot, amt]
	c.Op(evm.SWAP1, evm.SSTORE, evm.POP)
	c.ReturnTrue()
	code := c.MustBuild()
	return &Contract{
		Name:      "TokenReceiver",
		Address:   ReceiverAddr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(ReceiverAddr, code)
			st.DiscardJournal()
		},
	}
}

// SeedBalances credits amount of token balance to each holder by writing
// genesis storage directly, updating totalSupply to match.
func SeedBalances(st *state.StateDB, token *Contract, holders []types.Address, amount *uint256.Int) {
	var total uint256.Int
	total = st.GetState(token.Address, slotHash(SlotTotalSupply))
	for _, h := range holders {
		slot := AddrKeySlot(h, SlotBalances)
		cur := st.GetState(token.Address, slot)
		cur.Add(&cur, amount)
		st.SetState(token.Address, slot, cur)
		total.Add(&total, amount)
	}
	st.SetState(token.Address, slotHash(SlotTotalSupply), total)
	st.DiscardJournal()
}
