package contracts

import (
	"fmt"

	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// EncodeCall builds transaction input data (the Input field of Fig. 3(a)):
// the 4-byte function identifier followed by each argument as a 32-byte
// ABI word. Supported argument types: types.Address, *uint256.Int, uint64,
// bool and types.Hash.
func EncodeCall(f Function, args ...any) []byte {
	out := make([]byte, 4, 4+32*len(args))
	copy(out, f.Selector[:])
	for i, a := range args {
		var word [32]byte
		switch v := a.(type) {
		case types.Address:
			copy(word[12:], v.Bytes())
		case *uint256.Int:
			word = v.Bytes32()
		case uint256.Int:
			word = v.Bytes32()
		case uint64:
			word = uint256.NewInt(v).Bytes32()
		case int:
			if v < 0 {
				panic(fmt.Sprintf("contracts: negative int argument %d", v))
			}
			word = uint256.NewInt(uint64(v)).Bytes32()
		case bool:
			if v {
				word[31] = 1
			}
		case types.Hash:
			word = v
		default:
			panic(fmt.Sprintf("contracts: unsupported ABI argument %d of type %T", i, a))
		}
		out = append(out, word[:]...)
	}
	return out
}

// DecodeWord extracts the i-th 32-byte return word as a uint256.
func DecodeWord(ret []byte, i int) *uint256.Int {
	z := new(uint256.Int)
	start := 32 * i
	if start+32 <= len(ret) {
		z.SetBytes(ret[start : start+32])
	}
	return z
}
