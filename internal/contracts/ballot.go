package contracts

import (
	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/uint256"
)

// Ballot storage layout (the Table 2 voting contract):
//
//	slot 0: number of proposals
//	slot 1: mapping(address => bool) voted
//	slot 2: mapping(uint256 proposal => uint256) vote counts
const (
	slotBallotProposals = 0
	slotBallotVoted     = 1
	slotBallotVotes     = 2
)

// BallotProposals is the genesis proposal count.
const BallotProposals = 4

// NewBallot builds the voting contract. winningProposal() contains a real
// loop over the proposals — the rare looping control flow that raises the
// DB-cache hit rate even within a single transaction.
func NewBallot() *Contract {
	vote := fn("vote", "vote(uint256)", false)
	winning := fn("winningProposal", "winningProposal()", false)
	hasVoted := fn("hasVoted", "hasVoted(address)", false)
	voteCount := fn("voteCount", "voteCount(uint256)", false)
	fns := []Function{vote, winning, hasVoted, voteCount}

	c := NewCode()
	c.Dispatcher(fns)

	// vote(uint256 proposal).
	c.Begin(vote)
	// require(proposal < numProposals)
	c.PushInt(slotBallotProposals).Op(evm.SLOAD) // [n]
	c.Arg(0)                                     // [p, n]
	c.Op(evm.LT)                                 // p < n
	c.Require()
	// require(!voted[caller]); voted[caller] = true.
	c.Op(evm.CALLER)
	c.MapSlot(slotBallotVoted) // [slot]
	c.Op(evm.DUP1, evm.SLOAD, evm.ISZERO)
	c.Require()                 // [slot]
	c.PushInt(1)                // [1, slot]
	c.Op(evm.SWAP1, evm.SSTORE) // []
	// votes[proposal] += 1.
	c.Arg(0)
	c.MapSlot(slotBallotVotes) // [vSlot]
	c.Op(evm.DUP1, evm.SLOAD)  // [cnt, vSlot]
	c.PushInt(1).Op(evm.ADD)   // [cnt+1, vSlot]
	c.Op(evm.SWAP1, evm.SSTORE)
	c.Stop()

	// winningProposal() → index with the most votes (first on ties).
	c.Begin(winning)
	// Stack discipline (top first): [i, best, bestVotes].
	c.PushInt(0) // bestVotes
	c.PushInt(0) // best
	c.PushInt(0) // i
	c.Label("bloop")
	// while (i < numProposals)
	c.PushInt(slotBallotProposals).Op(evm.SLOAD) // [n, i, best, bv]
	c.Op(evm.DUP2)                               // [i, n, i, best, bv]
	c.Op(evm.LT, evm.ISZERO)                     // [i>=n, i, best, bv]
	c.PushLabel("bdone")
	c.Op(evm.JUMPI) // [i, best, bv]
	// v = votes[i]
	c.Op(evm.DUP1)
	c.MapSlot(slotBallotVotes)
	c.Op(evm.SLOAD) // [v, i, best, bv]
	// if (bestVotes < v) { best = i; bestVotes = v }
	c.Op(evm.DUP1, evm.DUP5) // [bv, v, v, i, best, bv]
	c.Op(evm.LT)             // [bv<v, v, i, best, bv]
	c.PushLabel("bupd")
	c.Op(evm.JUMPI)
	c.Op(evm.POP) // [i, best, bv]
	c.Jump("bnext")
	c.Label("bupd")                    // [v, i, best, bv]
	c.Op(evm.SWAP3, evm.POP)           // bv = v → [i, best, v]
	c.Op(evm.DUP1, evm.SWAP2, evm.POP) // best = i → [i, i, v]
	c.Label("bnext")
	c.PushInt(1).Op(evm.ADD) // i++
	c.Jump("bloop")
	c.Label("bdone") // [i, best, bv]
	c.Op(evm.POP)    // [best, bv]
	c.ReturnWord()

	// hasVoted(address).
	c.Begin(hasVoted)
	c.ArgAddr(0)
	c.MapSlot(slotBallotVoted)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	// voteCount(uint256).
	c.Begin(voteCount)
	c.Arg(0)
	c.MapSlot(slotBallotVotes)
	c.Op(evm.SLOAD)
	c.ReturnWord()

	code := c.MustBuild()
	return &Contract{
		Name:      "Ballot",
		Address:   BallotAddr,
		Code:      code,
		Functions: fns,
		Setup: func(st *state.StateDB) {
			st.SetCode(BallotAddr, code)
			n := uint256.NewInt(BallotProposals)
			st.SetState(BallotAddr, slotHash(slotBallotProposals), *n)
			st.DiscardJournal()
		},
	}
}
