package contracts

import (
	"math/rand"
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// refToken is a pure-Go reference model of the ERC-20 semantics our
// bytecode implements; random operation sequences must keep the contract
// and the model in lockstep (including which operations revert).
type refToken struct {
	balances    map[types.Address]uint64
	allowances  map[[2]types.Address]uint64
	totalSupply uint64
}

func newRefToken() *refToken {
	return &refToken{
		balances:   map[types.Address]uint64{},
		allowances: map[[2]types.Address]uint64{},
	}
}

func (r *refToken) transfer(from, to types.Address, amt uint64) bool {
	if r.balances[from] < amt {
		return false
	}
	r.balances[from] -= amt
	r.balances[to] += amt
	return true
}

func (r *refToken) approve(owner, spender types.Address, amt uint64) bool {
	r.allowances[[2]types.Address{owner, spender}] = amt
	return true
}

func (r *refToken) transferFrom(spender, from, to types.Address, amt uint64) bool {
	key := [2]types.Address{from, spender}
	if r.allowances[key] < amt || r.balances[from] < amt {
		return false
	}
	r.allowances[key] -= amt
	r.balances[from] -= amt
	r.balances[to] += amt
	return true
}

func TestERC20MatchesReferenceModel(t *testing.T) {
	tether := NewTether()
	env := newEnv(t, tether)

	actors := []types.Address{alice, bob, carol, TokenOwner}
	ref := newRefToken()

	// Seed: owner issues and distributes.
	env.call(TokenOwner, tether, "issue", uint64(10_000))
	ref.balances[TokenOwner] += 10_000
	ref.totalSupply += 10_000
	for _, a := range []types.Address{alice, bob, carol} {
		env.call(TokenOwner, tether, "transfer", a, uint64(2000))
		ref.transfer(TokenOwner, a, 2000)
	}

	rng := rand.New(rand.NewSource(2023))
	for step := 0; step < 400; step++ {
		op := rng.Intn(3)
		from := actors[rng.Intn(len(actors))]
		to := actors[rng.Intn(len(actors))]
		amt := uint64(rng.Intn(1500)) // sometimes exceeds balances

		var gotOK, wantOK bool
		switch op {
		case 0:
			_, err := env.tryCall(from, tether, "transfer", to, amt)
			gotOK = err == nil
			wantOK = ref.transfer(from, to, amt)
		case 1:
			_, err := env.tryCall(from, tether, "approve", to, amt)
			gotOK = err == nil
			wantOK = ref.approve(from, to, amt)
		case 2:
			third := actors[rng.Intn(len(actors))]
			_, err := env.tryCall(from, tether, "transferFrom", to, third, amt)
			gotOK = err == nil
			wantOK = ref.transferFrom(from, to, third, amt)
		}
		if gotOK != wantOK {
			t.Fatalf("step %d op %d: contract ok=%v, model ok=%v", step, op, gotOK, wantOK)
		}

		// Periodic deep comparison.
		if step%25 == 0 {
			for _, a := range actors {
				got := DecodeWord(env.call(a, tether, "balanceOf", a), 0).Uint64()
				if got != ref.balances[a] {
					t.Fatalf("step %d: balance(%s) = %d, model %d", step, a, got, ref.balances[a])
				}
			}
			got := DecodeWord(env.call(alice, tether, "totalSupply"), 0).Uint64()
			if got != ref.totalSupply {
				t.Fatalf("step %d: totalSupply %d, model %d", step, got, ref.totalSupply)
			}
			for _, o := range actors {
				for _, s := range actors {
					got := DecodeWord(env.call(o, tether, "allowance", o, s), 0).Uint64()
					if got != ref.allowances[[2]types.Address{o, s}] {
						t.Fatalf("step %d: allowance(%s,%s) = %d, model %d",
							step, o, s, got, ref.allowances[[2]types.Address{o, s}])
					}
				}
			}
		}
	}
}

func TestRouterConservesValue(t *testing.T) {
	// Property: internal balances plus reserves are conserved by swaps
	// (the AMM never mints token units).
	router := NewUniswapRouter()
	env := newEnv(t, router)
	env.call(alice, router, "faucet", uint64(1_000_000), uint64(1_000_000))
	env.call(alice, router, "addLiquidity", uint64(400_000), uint64(400_000))

	total0 := func() uint64 {
		r := DecodeWord(env.call(bob, router, "reserve0"), 0).Uint64()
		b := DecodeWord(env.call(bob, router, "balance0Of", alice), 0).Uint64()
		return r + b
	}
	total1 := func() uint64 {
		r := DecodeWord(env.call(bob, router, "reserve1"), 0).Uint64()
		b := DecodeWord(env.call(bob, router, "balance1Of", alice), 0).Uint64()
		return r + b
	}
	w0, w1 := total0(), total1()

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		amt := uint64(1 + rng.Intn(5000))
		fn := "swap0For1"
		if i%2 == 1 {
			fn = "swap1For0"
		}
		if _, err := env.tryCall(alice, router, fn, amt); err != nil &&
			err != evm.ErrExecutionReverted {
			t.Fatalf("swap %d: %v", i, err)
		}
		if total0() != w0 || total1() != w1 {
			t.Fatalf("swap %d: token units not conserved: %d/%d vs %d/%d",
				i, total0(), total1(), w0, w1)
		}
	}

	// Constant-product: k must never decrease (fees accrue to reserves).
	r0 := DecodeWord(env.call(bob, router, "reserve0"), 0).Uint64()
	r1 := DecodeWord(env.call(bob, router, "reserve1"), 0).Uint64()
	if r0*r1 < 400_000*400_000 {
		t.Fatalf("k decreased: %d", r0*r1)
	}
}

func TestGatewayNonceSpaceIsolated(t *testing.T) {
	// Property: distinct nonces never interfere; same nonce always replays.
	gw := NewGateway()
	env := newEnv(t, gw)
	if _, err := env.callValue(alice, gw, "deposit", uint256.NewInt(100_000)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	used := map[uint64]bool{}
	for i := 0; i < 80; i++ {
		nonce := uint64(rng.Intn(40))
		_, err := env.tryCall(alice, gw, "requestWithdrawal", uint64(10), nonce)
		if used[nonce] {
			if err != evm.ErrExecutionReverted {
				t.Fatalf("replayed nonce %d accepted", nonce)
			}
		} else {
			if err != nil {
				t.Fatalf("fresh nonce %d rejected: %v", nonce, err)
			}
			used[nonce] = true
		}
	}
}
