package mvstate

import (
	"sync"
	"testing"
	"time"

	"mtpu/internal/state"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

func storeGenesis() *state.StateDB {
	g := state.New()
	for i := byte(1); i <= 4; i++ {
		addr := types.Address{19: i}
		g.SetBalance(addr, uint256.NewInt(100*uint64(i)))
		g.SetNonce(addr, uint64(i))
	}
	g.DiscardJournal()
	return g
}

// TestStoreCommitFoldsHead checks the core fold invariant: after
// Commit, a bare head snapshot (and HeadDigest) reflect the write-set
// plus the coinbase fee, and the result is byte-identical to applying
// the same writes to a plain copy of the pre-state.
func TestStoreCommitFoldsHead(t *testing.T) {
	genesis := storeGenesis()
	st := NewStore(genesis, nil)
	a := types.Address{19: 1}
	coinbase := types.Address{19: 0xfe}

	keys := []state.AccessKey{balKey(a), nonceKey(a), storageKey(a, types.Hash{31: 7})}
	vals := []Value{word(55), {U64: 9}, word(77)}
	fee := uint256.NewInt(3)

	// Pricing the write-set over the head must predict the post-fold
	// digest exactly — this is what the stream's execute stage relies on.
	head := st.Head()
	want := head.DigestWith(BuildOverrides(head, keys, vals, coinbase, fee))

	if h := st.Commit(keys, vals, coinbase, fee); h != 1 {
		t.Fatalf("first commit returned height %d, want 1", h)
	}
	if st.Height() != 1 {
		t.Fatalf("Height() = %d after one commit", st.Height())
	}
	if got := st.HeadDigest(); got != want {
		t.Fatalf("post-fold digest %s != priced pre-fold digest %s", got, want)
	}

	// And it must match a plain sequential application of the same writes.
	seq := genesis.Copy()
	seq.SetBalance(a, uint256.NewInt(55))
	seq.SetNonce(a, 9)
	seq.SetState(a, types.Hash{31: 7}, *uint256.NewInt(77))
	var cb uint256.Int
	cb.Add(seq.GetBalance(coinbase), fee)
	seq.SetBalance(coinbase, &cb)
	if got := st.HeadDigest(); got != seq.Digest() {
		t.Fatalf("folded head %s != sequential oracle %s", got, seq.Digest())
	}

	hd := st.Head()
	if hd.GetBalance(a).Uint64() != 55 || hd.GetNonce(a) != 9 {
		t.Fatal("bare head snapshot does not see the folded values")
	}
	if v := hd.GetState(a, types.Hash{31: 7}); v.Uint64() != 77 {
		t.Fatalf("head storage = %v, want 77", v.Uint64())
	}
	if hd.GetBalance(coinbase).Uint64() != 3 {
		t.Fatalf("coinbase fee not folded: %v", hd.GetBalance(coinbase))
	}
}

// TestPinnedSnapshotIsolation pins a snapshot, folds two more blocks,
// and requires the pin to keep reading its height while bare head
// snapshots see each fold.
func TestPinnedSnapshotIsolation(t *testing.T) {
	st := NewStore(storeGenesis(), nil)
	a := types.Address{19: 2}
	slot := types.Hash{31: 3}

	st.Commit([]state.AccessKey{balKey(a), storageKey(a, slot)},
		[]Value{word(10), word(1)}, types.Address{}, nil)

	pin := st.Pin()
	defer pin.Close()
	if pin.Height() != 1 {
		t.Fatalf("pin height %d, want 1", pin.Height())
	}

	st.Commit([]state.AccessKey{balKey(a), nonceKey(a)}, []Value{word(20), {U64: 8}}, types.Address{}, nil)
	st.Commit([]state.AccessKey{storageKey(a, slot)}, []Value{word(3)}, types.Address{}, nil)

	if got := pin.GetBalance(a).Uint64(); got != 10 {
		t.Errorf("pinned balance = %d, want pre-fold 10", got)
	}
	if got := pin.GetState(a, slot); got.Uint64() != 1 {
		t.Errorf("pinned storage = %d, want pre-fold 1", got.Uint64())
	}
	// Nonce was never written at or before the pin height for a chain
	// seed, but its chain carries a height-0 pre-image; the genesis value
	// must come back, not the folded 8.
	if got := pin.GetNonce(a); got != 2 {
		t.Errorf("pinned nonce = %d, want genesis 2", got)
	}
	// Keys never folded fall through to the base.
	other := types.Address{19: 4}
	if got := pin.GetBalance(other).Uint64(); got != 400 {
		t.Errorf("untouched key through pin = %d, want 400", got)
	}

	head := st.Head()
	if head.GetBalance(a).Uint64() != 20 || head.GetNonce(a) != 8 {
		t.Error("bare head does not see the later folds")
	}
	if got := head.GetState(a, slot); got.Uint64() != 3 {
		t.Errorf("head storage = %d, want 3", got.Uint64())
	}
}

// TestChainPruningRespectsPins folds the same key repeatedly and
// checks chains prune to the lowest live pin, not further, and shrink
// once the pin releases.
func TestChainPruningRespectsPins(t *testing.T) {
	tel := telemetry.New()
	st := NewStore(storeGenesis(), tel)
	a := types.Address{19: 1}

	st.Commit([]state.AccessKey{balKey(a)}, []Value{word(1)}, types.Address{}, nil)
	pin := st.Pin() // height 1
	for v := uint64(2); v <= 5; v++ {
		st.Commit([]state.AccessKey{balKey(a)}, []Value{word(v)}, types.Address{}, nil)
	}

	id := st.intern[balKey(a)]
	st.mu.RLock()
	chainLen := len(st.chains[id])
	first := st.chains[id][0].height
	st.mu.RUnlock()
	// Entries below the pin prune, but the entry visible AT the pin
	// (height 1) must survive: chain = {1, 2, 3, 4, 5}.
	if first != 1 {
		t.Fatalf("oldest surviving entry at height %d, want 1 (pin floor)", first)
	}
	if chainLen != 5 {
		t.Fatalf("chain length %d with live pin, want 5", chainLen)
	}
	if got := pin.GetBalance(a).Uint64(); got != 1 {
		t.Fatalf("pinned read = %d after pruning, want 1", got)
	}

	// Release the pin; the next fold prunes everything the new floor
	// (current height, no pins) cannot reach.
	pin.Close()
	st.Commit([]state.AccessKey{balKey(a)}, []Value{word(6)}, types.Address{}, nil)
	st.mu.RLock()
	chainLen = len(st.chains[id])
	st.mu.RUnlock()
	if chainLen != 1 {
		t.Fatalf("chain length %d after pin release, want 1", chainLen)
	}

	snap := tel.Snapshot()
	if snap.MVState == nil {
		t.Fatal("store activity produced no mvstate telemetry section")
	}
	if err := snap.MVState.Check(); err != nil {
		t.Fatalf("telemetry invariants: %v", err)
	}
	if snap.MVState.Commits != 6 {
		t.Fatalf("commits = %d, want 6", snap.MVState.Commits)
	}
	if snap.MVState.VersionsGCd == 0 {
		t.Fatal("pruning happened but VersionsGCd is zero")
	}
}

// TestDoubleCloseAndMultiPin covers pin refcounting: two pins at one
// height hold the floor until both close, and Close is idempotent.
func TestDoubleCloseAndMultiPin(t *testing.T) {
	st := NewStore(storeGenesis(), nil)
	a := types.Address{19: 3}
	st.Commit([]state.AccessKey{balKey(a)}, []Value{word(1)}, types.Address{}, nil)

	p1, p2 := st.Pin(), st.Pin()
	p1.Close()
	p1.Close() // idempotent; must not disturb p2's pin
	st.Commit([]state.AccessKey{balKey(a)}, []Value{word(2)}, types.Address{}, nil)
	if got := p2.GetBalance(a).Uint64(); got != 1 {
		t.Fatalf("second pin read %d after sibling double-close, want 1", got)
	}
	p2.Close()
	if len(st.pins) != 0 {
		t.Fatalf("pins map not empty after all closes: %v", st.pins)
	}
}

// TestInvalidated checks the prefetch revalidation predicate both ways
// and its telemetry accounting.
func TestInvalidated(t *testing.T) {
	tel := telemetry.New()
	st := NewStore(storeGenesis(), tel)
	a, b := types.Address{19: 1}, types.Address{19: 2}

	st.Commit([]state.AccessKey{balKey(a)}, []Value{word(7)}, types.Address{}, nil)

	if st.Invalidated([]state.AccessKey{balKey(a)}, 1) {
		t.Error("read at the fold height reported stale")
	}
	if !st.Invalidated([]state.AccessKey{balKey(a)}, 0) {
		t.Error("read below the fold height reported clean")
	}
	if st.Invalidated([]state.AccessKey{balKey(b)}, 0) {
		t.Error("never-folded key reported stale")
	}
	if st.Invalidated(nil, 0) {
		t.Error("empty read-set reported stale")
	}

	snap := tel.Snapshot().MVState
	if snap.Revalidations != 4 || snap.Invalidations != 1 {
		t.Fatalf("revalidations/invalidations = %d/%d, want 4/1", snap.Revalidations, snap.Invalidations)
	}
}

// TestWaitHeightAndInterrupt covers the cross-stage handshake: waiters
// wake on the fold that reaches their height, and Interrupt fails all
// present and future waits fast.
func TestWaitHeightAndInterrupt(t *testing.T) {
	st := NewStore(storeGenesis(), nil)
	if !st.WaitHeight(0) {
		t.Fatal("WaitHeight(0) on a fresh store did not return immediately")
	}

	done := make(chan bool, 1)
	go func() { done <- st.WaitHeight(1) }()
	time.Sleep(5 * time.Millisecond) // let the waiter block
	st.Commit([]state.AccessKey{balKey(types.Address{19: 1})}, []Value{word(1)}, types.Address{}, nil)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waiter woken by Commit reported interruption")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitHeight(1) did not wake on the fold")
	}

	var wg sync.WaitGroup
	results := make(chan bool, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- st.WaitHeight(100)
		}()
	}
	time.Sleep(5 * time.Millisecond)
	st.Interrupt()
	wg.Wait()
	close(results)
	for ok := range results {
		if ok {
			t.Fatal("interrupted waiter reported the height as reached")
		}
	}
	if st.WaitHeight(100) {
		t.Fatal("WaitHeight after Interrupt did not fail fast")
	}
	// Already-reached heights still succeed post-interrupt.
	if !st.WaitHeight(1) {
		t.Fatal("WaitHeight(reached) failed after Interrupt")
	}
}

// TestConcurrentPinnedReadsDuringCommits is the lock-discipline smoke:
// pinned snapshots read concurrently with a committer and must keep
// observing their pinned height (run with -race).
func TestConcurrentPinnedReadsDuringCommits(t *testing.T) {
	st := NewStore(storeGenesis(), nil)
	a := types.Address{19: 1}
	slot := types.Hash{31: 5}
	st.Commit([]state.AccessKey{storageKey(a, slot)}, []Value{word(42)}, types.Address{}, nil)

	pin := st.Pin()
	defer pin.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := pin.GetState(a, slot); v.Uint64() != 42 {
					t.Errorf("pinned read saw %d, want 42", v.Uint64())
					return
				}
			}
		}()
	}
	for v := uint64(0); v < 200; v++ {
		st.Commit([]state.AccessKey{storageKey(a, slot)}, []Value{word(v)}, types.Address{}, nil)
	}
	close(stop)
	wg.Wait()
}

// TestHotPathsAllocateNothing pins the revalidation predicate and bare
// head reads as allocation-free: both run once per block in the stream
// pipeline's execute stage.
func TestHotPathsAllocateNothing(t *testing.T) {
	st := NewStore(storeGenesis(), nil)
	a := types.Address{19: 1}
	slot := types.Hash{31: 1}
	st.Commit([]state.AccessKey{balKey(a), storageKey(a, slot)},
		[]Value{word(5), word(6)}, types.Address{}, nil)

	reads := []state.AccessKey{balKey(a), storageKey(a, slot), nonceKey(types.Address{19: 2})}
	if allocs := testing.AllocsPerRun(200, func() {
		if st.Invalidated(reads, 1) {
			t.Fatal("clean read-set reported stale")
		}
	}); allocs != 0 {
		t.Errorf("Invalidated allocates %.1f times per call, want 0", allocs)
	}

	head := st.Head()
	if allocs := testing.AllocsPerRun(200, func() {
		_ = head.GetNonce(a)
		_ = head.GetState(a, slot)
	}); allocs != 0 {
		t.Errorf("bare snapshot reads allocate %.1f times per call, want 0", allocs)
	}
}
