// Package mvstate is the unified multi-version state layer shared by
// every execution engine. It generalizes Block-STM's multi-version
// memory (the intra-block version lists in MVMemory/View, which the
// stm executor drives) to the cross-block axis: a Store owns the
// canonical head StateDB and keeps, per interned state key, a short
// version chain of the values committed at each block height. Pinned
// Snapshots read the state as of their height even while later blocks
// fold in, which is what lets the stream pipeline prefetch and decode
// block N+1 while block N is still executing — the versioned analogue
// of the State Buffer holding hot state across blocks in the paper's
// architecture.
//
// The layering mirrors PArSEC's split between the execution layer and
// a versioned key-value backend: engines execute against Reader
// snapshots (DAG engines through an Overlay, the STM executor through
// View/MVMemory), and the commit stage folds each block's winning
// write-set into the head with Commit. Version chains are pruned as
// pins release, so the steady-state memory cost is the head plus a few
// entries per recently-written key.
package mvstate

import (
	"sync"

	"mtpu/internal/state"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// Reader is the read-only state surface engines execute against: both
// *state.StateDB and *Snapshot satisfy it, so the same View/Overlay
// code runs in one-shot replays (bare genesis) and in the chained
// stream service (store snapshots).
type Reader interface {
	Exist(types.Address) bool
	GetBalance(types.Address) *uint256.Int
	GetNonce(types.Address) uint64
	GetCode(types.Address) []byte
	GetCodeHash(types.Address) types.Hash
	GetState(types.Address, types.Hash) uint256.Int
}

var _ Reader = (*state.StateDB)(nil)
var _ Reader = (*Snapshot)(nil)

// KeyID is the dense interned id of one state.AccessKey, assigned in
// first-fold order (the cross-block analogue of the simulator's
// TouchID interning).
type KeyID uint32

// centry is one committed version of a key: the value the key holds
// from block `height` onward (height 0 is the pre-image the key had
// before its first fold).
type centry struct {
	height uint64
	val    Value
}

// Store owns the canonical head state and the per-key version chains
// that let pinned snapshots read past heights. All mutation happens in
// Commit under the write lock; pinned snapshot reads take the read
// lock. The commit stage may additionally read the head StateDB
// lock-free through Head()/HeadDB() — see those methods for the
// sequencing contract.
type Store struct {
	mu      sync.RWMutex
	heightC *sync.Cond // signaled on every Commit and on Interrupt

	base        *state.StateDB // canonical head; mutated only by Commit
	height      uint64         // number of blocks folded in
	interrupted bool

	intern    map[state.AccessKey]KeyID
	keys      []state.AccessKey
	chains    [][]centry
	lastWrite []uint64 // height of the most recent fold per key

	pins map[uint64]int // snapshot height -> refcount

	tel      *telemetry.Metrics
	entries  int // live chain entries across all keys
	maxChain int
}

// NewStore copies genesis into a private head and returns a store at
// height 0. tel may be nil.
func NewStore(genesis *state.StateDB, tel *telemetry.Metrics) *Store {
	s := &Store{
		base:   genesis.Copy(),
		intern: make(map[state.AccessKey]KeyID),
		pins:   make(map[uint64]int),
		tel:    tel,
	}
	s.heightC = sync.NewCond(s.mu.RLocker())
	return s
}

// Height returns the number of blocks folded into the head.
func (s *Store) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.height
}

// WaitHeight blocks until the head reaches height h (or returns
// immediately if it already has). It returns false when the store was
// interrupted before the height was reached — the caller is shutting
// down and must not touch the head.
func (s *Store) WaitHeight(h uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for s.height < h && !s.interrupted {
		s.heightC.Wait()
	}
	return s.height >= h
}

// Interrupt wakes every WaitHeight waiter and makes all future waits
// fail fast. Used on pipeline halt so a stage blocked on a fold that
// will never happen can exit.
func (s *Store) Interrupt() {
	s.mu.Lock()
	s.interrupted = true
	s.mu.Unlock()
	s.heightC.Broadcast()
}

// HeadDigest digests the canonical head under the read lock.
func (s *Store) HeadDigest() types.Hash {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base.Digest()
}

// Head returns a bare snapshot of the canonical head: reads go straight
// to the head StateDB with no locking. It is only safe on the sequenced
// execute/commit path, where the caller has established (via WaitHeight
// or channel ordering) that no Commit runs concurrently with its reads.
func (s *Store) Head() *Snapshot {
	s.mu.RLock()
	h := s.height
	s.mu.RUnlock()
	return &Snapshot{db: s.base, height: h}
}

// HeadDB exposes the head StateDB under the same sequencing contract
// as Head — for shadow validation, which replays sequentially against
// the chained pre-state before the block is folded in.
func (s *Store) HeadDB() *state.StateDB { return s.base }

// Pin returns a snapshot pinned at the current height: reads resolve
// through the version chains under the read lock, so they keep
// observing the pinned height even while later blocks fold into the
// head concurrently. Callers must Close the snapshot to release the
// pin and let the chains prune.
func (s *Store) Pin() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[s.height]++
	return &Snapshot{store: s, db: s.base, height: s.height, pinned: true}
}

func (s *Store) unpin(h uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.pins[h]; n > 1 {
		s.pins[h] = n - 1
	} else {
		delete(s.pins, h)
	}
}

// Invalidated reports whether any of keys was folded after height
// since: a prefetch that resolved those keys from a snapshot at that
// height read stale values and must be redone. Keys never interned
// were never folded and are trivially clean.
func (s *Store) Invalidated(keys []state.AccessKey, since uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	stale := false
	for _, k := range keys {
		if id, ok := s.intern[k]; ok && s.lastWrite[id] > since {
			stale = true
			break
		}
	}
	if s.tel != nil {
		s.tel.MVStateRevalidations.Inc()
		if stale {
			s.tel.MVStateInvalidations.Inc()
		}
	}
	return stale
}

// Commit folds one block's write-set into the head: each key gets a
// new chain version at the next height and the head StateDB is updated
// in place. The block's aggregate fee is folded as one more chained
// coinbase-balance write (the carve-out keeps it out of write-sets, so
// it is re-attached here). Chains are pruned against the lowest live
// pin. Returns the new height.
func (s *Store) Commit(keys []state.AccessKey, vals []Value, coinbase types.Address, fee *uint256.Int) uint64 {
	s.mu.Lock()
	h := s.height + 1

	floor := h
	for ph := range s.pins {
		if ph < floor {
			floor = ph
		}
	}

	folded, pruned := 0, 0
	apply := func(k state.AccessKey, val Value) {
		id, ok := s.intern[k]
		if !ok {
			id = KeyID(len(s.keys))
			s.intern[k] = id
			s.keys = append(s.keys, k)
			s.chains = append(s.chains, nil)
			s.lastWrite = append(s.lastWrite, 0)
		}
		ch := s.chains[id]
		if len(ch) == 0 {
			// Seed the chain with the pre-image so snapshots pinned below
			// h keep reading the pre-fold value after the head mutates.
			ch = append(ch, centry{height: 0, val: s.baseValue(k)})
			s.entries++
		}
		ch = append(ch, centry{height: h, val: val})
		s.entries++
		folded++
		// Prune entries no live pin can reach: ch[0] is dead once ch[1]
		// is visible at the floor height.
		for len(ch) >= 2 && ch[1].height <= floor {
			ch = ch[1:]
			pruned++
			s.entries--
		}
		s.chains[id] = ch
		s.lastWrite[id] = h
		if len(ch) > s.maxChain {
			s.maxChain = len(ch)
		}

		switch k.Kind {
		case state.AccessBalance:
			s.base.SetBalance(k.Addr, &val.Word)
		case state.AccessNonce:
			s.base.SetNonce(k.Addr, val.U64)
		case state.AccessCode:
			s.base.SetCode(k.Addr, val.Code)
		case state.AccessStorage:
			s.base.SetState(k.Addr, k.Slot, val.Word)
		}
	}

	for i := range keys {
		apply(keys[i], vals[i])
	}
	if fee != nil && !fee.IsZero() {
		var v Value
		v.Word.Add(s.base.GetBalance(coinbase), fee)
		apply(balKey(coinbase), v)
	}
	// The head's setters journal; the fold is final, so drop the undo log
	// instead of letting it grow with every block.
	s.base.DiscardJournal()
	s.height = h

	if s.tel != nil {
		s.tel.MVStateCommits.Inc()
		s.tel.MVStateVersionsFolded.Add(uint64(folded))
		s.tel.MVStateVersionsGCd.Add(uint64(pruned))
		s.tel.MVStateChainEntries.Set(int64(s.entries))
		s.tel.MVStateMaxChainLen.Set(int64(s.maxChain))
	}
	s.mu.Unlock()
	s.heightC.Broadcast()
	return h
}

// baseValue reads k's current head value (pre-fold) as a Value.
func (s *Store) baseValue(k state.AccessKey) Value {
	var v Value
	switch k.Kind {
	case state.AccessBalance:
		v.Word.Set(s.base.GetBalance(k.Addr))
	case state.AccessNonce:
		v.U64 = s.base.GetNonce(k.Addr)
	case state.AccessCode:
		v.Code = s.base.GetCode(k.Addr)
		v.Hash = s.base.GetCodeHash(k.Addr)
	case state.AccessStorage:
		v.Word = s.base.GetState(k.Addr, k.Slot)
	}
	return v
}

// Snapshot is a read-only view of the store at one height. A bare
// snapshot (SnapshotOf, Store.Head) reads its StateDB directly with no
// locking; a pinned snapshot (Store.Pin) resolves reads through the
// version chains under the store's read lock so it stays consistent
// while later blocks fold in concurrently.
type Snapshot struct {
	store  *Store // nil for bare snapshots
	db     *state.StateDB
	height uint64
	pinned bool
}

// SnapshotOf wraps a plain StateDB as a bare snapshot — the adapter
// one-shot replay paths use to run engines against a frozen genesis
// with zero locking overhead.
func SnapshotOf(db *state.StateDB) *Snapshot { return &Snapshot{db: db} }

// Height returns the store height the snapshot was taken at (0 for
// bare snapshots of a genesis).
func (sn *Snapshot) Height() uint64 { return sn.height }

// DB returns the underlying StateDB. For pinned snapshots this is the
// live head and must not be read directly while commits run; use the
// Reader methods instead.
func (sn *Snapshot) DB() *state.StateDB { return sn.db }

// Close releases a pinned snapshot's pin. Bare snapshots are a no-op.
func (sn *Snapshot) Close() {
	if sn.pinned && sn.store != nil {
		sn.store.unpin(sn.height)
		sn.pinned = false
	}
}

// Digest digests the snapshot's state. Only valid when the snapshot is
// at the head (always true for bare snapshots).
func (sn *Snapshot) Digest() types.Hash {
	if sn.store == nil {
		return sn.db.Digest()
	}
	return sn.store.HeadDigest()
}

// DigestWith prices a write-set on top of the snapshot without copying
// it. Only valid at the head (the sequenced execute stage).
func (sn *Snapshot) DigestWith(o *state.Overrides) types.Hash {
	return sn.db.DigestWith(o)
}

// resolve looks k up in the pinned snapshot's version chains; ok is
// false when the key has no chain (never folded — read the base).
func (sn *Snapshot) resolve(k state.AccessKey) (Value, bool) {
	st := sn.store
	id, ok := st.intern[k]
	if !ok {
		return Value{}, false
	}
	ch := st.chains[id]
	// Newest entry at or below the pinned height. Chains are short (they
	// prune to the pin floor), so scan from the tail.
	for i := len(ch) - 1; i >= 0; i-- {
		if ch[i].height <= sn.height {
			return ch[i].val, true
		}
	}
	return Value{}, false
}

// rlock takes the store read lock for a pinned read and bumps the
// snapshot-read counter.
func (sn *Snapshot) rlock() { sn.store.mu.RLock() }

func (sn *Snapshot) runlock() {
	if tel := sn.store.tel; tel != nil {
		tel.MVStateSnapshotReads.Inc()
	}
	sn.store.mu.RUnlock()
}

// Exist implements Reader. Like View, existence is not version-tracked:
// the head answer stands in (every workload account pre-exists in
// genesis, and account creation folds scalar keys that pinned reads do
// resolve exactly).
func (sn *Snapshot) Exist(addr types.Address) bool {
	if sn.store == nil {
		return sn.db.Exist(addr)
	}
	sn.rlock()
	defer sn.runlock()
	return sn.db.Exist(addr)
}

// GetBalance implements Reader.
func (sn *Snapshot) GetBalance(addr types.Address) *uint256.Int {
	if sn.store == nil {
		return sn.db.GetBalance(addr)
	}
	sn.rlock()
	defer sn.runlock()
	if v, ok := sn.resolve(balKey(addr)); ok {
		return v.Word.Clone()
	}
	return sn.db.GetBalance(addr)
}

// GetNonce implements Reader.
func (sn *Snapshot) GetNonce(addr types.Address) uint64 {
	if sn.store == nil {
		return sn.db.GetNonce(addr)
	}
	sn.rlock()
	defer sn.runlock()
	if v, ok := sn.resolve(nonceKey(addr)); ok {
		return v.U64
	}
	return sn.db.GetNonce(addr)
}

// GetCode implements Reader.
func (sn *Snapshot) GetCode(addr types.Address) []byte {
	if sn.store == nil {
		return sn.db.GetCode(addr)
	}
	sn.rlock()
	defer sn.runlock()
	if v, ok := sn.resolve(codeKey(addr)); ok {
		return v.Code
	}
	return sn.db.GetCode(addr)
}

// GetCodeHash implements Reader.
func (sn *Snapshot) GetCodeHash(addr types.Address) types.Hash {
	if sn.store == nil {
		return sn.db.GetCodeHash(addr)
	}
	sn.rlock()
	defer sn.runlock()
	if v, ok := sn.resolve(codeKey(addr)); ok {
		return v.Hash
	}
	return sn.db.GetCodeHash(addr)
}

// GetState implements Reader.
func (sn *Snapshot) GetState(addr types.Address, slot types.Hash) uint256.Int {
	if sn.store == nil {
		return sn.db.GetState(addr, slot)
	}
	sn.rlock()
	defer sn.runlock()
	if v, ok := sn.resolve(storageKey(addr, slot)); ok {
		return v.Word
	}
	return sn.db.GetState(addr, slot)
}

// BuildOverrides converts a block's write-set (plus its aggregate fee)
// into a sparse state.Overrides over head, for digest pricing without
// copying the head. The coinbase balance is read from head and bumped
// by fee — write-sets never contain it (the carve-out), so the merge
// is well-defined.
func BuildOverrides(head *Snapshot, keys []state.AccessKey, vals []Value, coinbase types.Address, fee *uint256.Int) *state.Overrides {
	o := state.NewOverrides()
	for i, k := range keys {
		val := vals[i]
		switch k.Kind {
		case state.AccessBalance:
			o.SetBalance(k.Addr, &val.Word)
		case state.AccessNonce:
			o.SetNonce(k.Addr, val.U64)
		case state.AccessCode:
			o.SetCode(k.Addr, val.Code, val.Hash)
		case state.AccessStorage:
			o.SetState(k.Addr, k.Slot, val.Word)
		}
	}
	if fee != nil && !fee.IsZero() {
		var bal uint256.Int
		bal.Add(head.GetBalance(coinbase), fee)
		o.SetBalance(coinbase, &bal)
	}
	return o
}
