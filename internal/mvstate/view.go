package mvstate

import (
	"fmt"

	"mtpu/internal/keccak"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// EstimateAbort is thrown (as a panic) when a read lands on an ESTIMATE
// entry: the speculative execution cannot proceed until transaction Dep
// re-executes. The executor recovers it at the incarnation boundary —
// the standard way to surface an abort through the error-free StateDB
// interface.
type EstimateAbort struct{ Dep int }

// ReadObs is one entry of an incarnation's read set: the key and the
// writer version observed. Validation re-reads the key and fails when the
// observed writer changed.
type ReadObs struct {
	Key state.AccessKey
	Ver Version
}

// View is the per-incarnation state a speculative transaction executes
// against: reads resolve through its own write buffer, then the
// multi-version memory, then the immutable pre-block state, recording
// the observed version of every first read; writes are buffered locally
// and published by the executor only when the incarnation completes.
//
// The coinbase balance is carved out, mirroring workload.BuildDAG: fee
// crediting is commutative, so coinbase balance operations go to a local
// delta (applied at commit) and are excluded from conflict detection.
type View struct {
	base     Reader
	mv       *MVMemory
	tx       int
	coinbase types.Address

	reads   []ReadObs
	readIdx map[state.AccessKey]int

	writes     map[state.AccessKey]Value
	writeOrder []state.AccessKey

	created map[types.Address]bool

	logs     []*types.Log
	refund   uint64
	feeDelta uint256.Int

	journal []vEntry
}

// NewView returns a view for one incarnation of transaction tx.
func NewView(base Reader, mv *MVMemory, tx int, coinbase types.Address) *View {
	return &View{
		base:     base,
		mv:       mv,
		tx:       tx,
		coinbase: coinbase,
		readIdx:  make(map[state.AccessKey]int),
		writes:   make(map[state.AccessKey]Value),
		created:  make(map[types.Address]bool),
	}
}

// vEntry is one undo record of the view's local journal (the same
// journaling discipline as state.StateDB, scoped to the buffers).
type vEntry struct {
	kind    vKind
	key     state.AccessKey
	addr    types.Address
	prev    Value
	existed bool
	prevU64 uint64
	prevFee uint256.Int
}

type vKind uint8

const (
	vWrite vKind = iota
	vCreate
	vLog
	vRefund
	vFee
)

// ReadSet returns the recorded read observations in first-read order.
func (v *View) ReadSet() []ReadObs { return v.reads }

// WriteSet returns the buffered writes in first-write order (keys revert-
// deleted by an inner rollback are skipped).
func (v *View) WriteSet() ([]state.AccessKey, []Value) {
	keys := make([]state.AccessKey, 0, len(v.writes))
	vals := make([]Value, 0, len(v.writes))
	seen := make(map[state.AccessKey]bool, len(v.writes))
	for _, k := range v.writeOrder {
		if seen[k] {
			continue
		}
		seen[k] = true
		if val, ok := v.writes[k]; ok {
			keys = append(keys, k)
			vals = append(vals, val)
		}
	}
	return keys, vals
}

// FeeDelta returns the coinbase balance credit accumulated by this
// incarnation.
func (v *View) FeeDelta() uint256.Int { return v.feeDelta }

// read resolves key through write buffer → multi-version memory → base,
// recording the observed version on the first non-local read of each key.
// It panics with EstimateAbort when the resolving writer is an ESTIMATE.
func (v *View) read(key state.AccessKey) (Value, bool) {
	if val, ok := v.writes[key]; ok {
		return val, true
	}
	res := v.mv.Read(key, v.tx)
	if res.Status == ReadEstimate {
		panic(EstimateAbort{Dep: res.Ver.Tx})
	}
	if _, ok := v.readIdx[key]; !ok {
		v.readIdx[key] = len(v.reads)
		v.reads = append(v.reads, ReadObs{Key: key, Ver: res.Ver})
	}
	if res.Status == ReadValue {
		return res.Val, true
	}
	return Value{}, false // ReadBase: caller consults the base state
}

// write buffers a value for key, journaling the previous buffer content.
func (v *View) write(key state.AccessKey, val Value) {
	prev, existed := v.writes[key]
	v.journal = append(v.journal, vEntry{kind: vWrite, key: key, prev: prev, existed: existed})
	if !existed {
		v.writeOrder = append(v.writeOrder, key)
	}
	v.writes[key] = val
}

func balKey(addr types.Address) state.AccessKey {
	return state.AccessKey{Kind: state.AccessBalance, Addr: addr}
}
func nonceKey(addr types.Address) state.AccessKey {
	return state.AccessKey{Kind: state.AccessNonce, Addr: addr}
}
func codeKey(addr types.Address) state.AccessKey {
	return state.AccessKey{Kind: state.AccessCode, Addr: addr}
}
func storageKey(addr types.Address, slot types.Hash) state.AccessKey {
	return state.AccessKey{Kind: state.AccessStorage, Addr: addr, Slot: slot}
}

// CreateAccount implements evm.StateDB. Existence is not conflict-tracked
// (state.StateDB records no access for it either, so the consensus DAG
// has the same blind spot; every workload account pre-exists in genesis).
func (v *View) CreateAccount(addr types.Address) {
	if v.Exist(addr) {
		return
	}
	v.journal = append(v.journal, vEntry{kind: vCreate, addr: addr})
	v.created[addr] = true
}

// Exist implements evm.StateDB: the account exists in the base state, was
// created locally, or has a speculative write to any of its scalar keys
// below this transaction (ESTIMATE entries count — the aborted writer
// touched the account and re-creation is monotonic).
func (v *View) Exist(addr types.Address) bool {
	if v.created[addr] || v.base.Exist(addr) {
		return true
	}
	for _, key := range [3]state.AccessKey{balKey(addr), nonceKey(addr), codeKey(addr)} {
		if _, ok := v.writes[key]; ok {
			return true
		}
		if res := v.mv.Read(key, v.tx); res.Status != ReadBase {
			return true
		}
	}
	return false
}

// GetBalance implements evm.StateDB.
func (v *View) GetBalance(addr types.Address) *uint256.Int {
	if addr == v.coinbase {
		bal := v.baseBalance(addr)
		bal.Add(bal, &v.feeDelta)
		return bal
	}
	return v.loadBalance(addr)
}

// baseBalance reads the pre-block balance without recording.
func (v *View) baseBalance(addr types.Address) *uint256.Int {
	return v.base.GetBalance(addr)
}

// loadBalance is the recorded read used by both GetBalance and the
// read-modify-write Add/SubBalance paths.
func (v *View) loadBalance(addr types.Address) *uint256.Int {
	if val, ok := v.read(balKey(addr)); ok {
		return val.Word.Clone()
	}
	return v.baseBalance(addr)
}

// SetBalance overwrites the balance of addr (a pure write).
func (v *View) SetBalance(addr types.Address, x *uint256.Int) {
	if addr == v.coinbase {
		var delta uint256.Int
		delta.Sub(x, v.baseBalance(addr))
		v.journal = append(v.journal, vEntry{kind: vFee, prevFee: v.feeDelta})
		v.feeDelta = delta
		return
	}
	var val Value
	val.Word.Set(x)
	v.write(balKey(addr), val)
}

// AddBalance credits addr: a read-modify-write, so the current balance
// lands in the read set (unlike state.StateDB, which only records the
// write — here a stale read must fail validation, while the DAG builder
// already gets the edge from the write-write overlap).
func (v *View) AddBalance(addr types.Address, x *uint256.Int) {
	if addr == v.coinbase {
		v.journal = append(v.journal, vEntry{kind: vFee, prevFee: v.feeDelta})
		v.feeDelta.Add(&v.feeDelta, x)
		return
	}
	cur := v.loadBalance(addr)
	var val Value
	val.Word.Add(cur, x)
	v.write(balKey(addr), val)
}

// SubBalance debits addr (wraps on underflow, like state.StateDB).
func (v *View) SubBalance(addr types.Address, x *uint256.Int) {
	if addr == v.coinbase {
		v.journal = append(v.journal, vEntry{kind: vFee, prevFee: v.feeDelta})
		v.feeDelta.Sub(&v.feeDelta, x)
		return
	}
	cur := v.loadBalance(addr)
	var val Value
	val.Word.Sub(cur, x)
	v.write(balKey(addr), val)
}

// GetNonce implements evm.StateDB.
func (v *View) GetNonce(addr types.Address) uint64 {
	if val, ok := v.read(nonceKey(addr)); ok {
		return val.U64
	}
	return v.base.GetNonce(addr)
}

// SetNonce implements evm.StateDB.
func (v *View) SetNonce(addr types.Address, n uint64) {
	v.write(nonceKey(addr), Value{U64: n})
}

// GetCode implements evm.StateDB.
func (v *View) GetCode(addr types.Address) []byte {
	if val, ok := v.read(codeKey(addr)); ok {
		return val.Code
	}
	return v.base.GetCode(addr)
}

// GetCodeSize implements evm.StateDB.
func (v *View) GetCodeSize(addr types.Address) int {
	return len(v.GetCode(addr))
}

// GetCodeHash implements evm.StateDB.
func (v *View) GetCodeHash(addr types.Address) types.Hash {
	if val, ok := v.read(codeKey(addr)); ok {
		return val.Hash
	}
	return v.base.GetCodeHash(addr)
}

// SetCode implements evm.StateDB.
func (v *View) SetCode(addr types.Address, code []byte) {
	val := Value{Code: append([]byte(nil), code...)}
	if len(code) > 0 {
		val.Hash = types.Hash(keccak.Sum256(code))
	}
	v.write(codeKey(addr), val)
}

// GetState implements evm.StateDB.
func (v *View) GetState(addr types.Address, slot types.Hash) uint256.Int {
	if val, ok := v.read(storageKey(addr, slot)); ok {
		return val.Word
	}
	return v.base.GetState(addr, slot)
}

// SetState implements evm.StateDB.
func (v *View) SetState(addr types.Address, slot types.Hash, x uint256.Int) {
	v.write(storageKey(addr, slot), Value{Word: x})
}

// AddLog implements evm.StateDB.
func (v *View) AddLog(l *types.Log) {
	v.journal = append(v.journal, vEntry{kind: vLog})
	v.logs = append(v.logs, l)
}

// TakeLogs implements evm.StateDB.
func (v *View) TakeLogs() []*types.Log {
	out := v.logs
	v.logs = nil
	return out
}

// AddRefund implements evm.StateDB.
func (v *View) AddRefund(x uint64) {
	v.journal = append(v.journal, vEntry{kind: vRefund, prevU64: v.refund})
	v.refund += x
}

// GetRefund implements evm.StateDB.
func (v *View) GetRefund() uint64 { return v.refund }

// ResetRefund implements evm.StateDB (per-transaction, not journaled —
// matching state.StateDB).
func (v *View) ResetRefund() { v.refund = 0 }

// Snapshot implements evm.StateDB.
func (v *View) Snapshot() int { return len(v.journal) }

// RevertToSnapshot implements evm.StateDB. Reads recorded inside the
// reverted span stay in the read set: the speculation still observed
// them, so validation must still cover them (state.StateDB's access
// recording behaves the same way for the DAG builder).
func (v *View) RevertToSnapshot(id int) {
	if id < 0 || id > len(v.journal) {
		panic(fmt.Sprintf("mvstate: invalid snapshot id %d (journal length %d)", id, len(v.journal)))
	}
	for i := len(v.journal) - 1; i >= id; i-- {
		e := v.journal[i]
		switch e.kind {
		case vWrite:
			if e.existed {
				v.writes[e.key] = e.prev
			} else {
				delete(v.writes, e.key)
			}
		case vCreate:
			delete(v.created, e.addr)
		case vLog:
			v.logs = v.logs[:len(v.logs)-1]
		case vRefund:
			v.refund = e.prevU64
		case vFee:
			v.feeDelta = e.prevFee
		}
	}
	v.journal = v.journal[:id]
}
