package mvstate

import (
	"testing"

	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// benchMV populates a multi-version memory the way a mid-block snapshot
// looks: nKeys storage slots, each written by every writers'th
// transaction of an nTxs-transaction block.
func benchMV(nTxs, nKeys, writers int) (*MVMemory, []state.AccessKey) {
	mv := NewMVMemory()
	keys := make([]state.AccessKey, nKeys)
	for k := range keys {
		keys[k] = state.AccessKey{
			Kind: state.AccessStorage,
			Addr: types.BytesToAddress([]byte{byte(k % 8)}),
			Slot: types.BytesToHash([]byte{byte(k), byte(k >> 8)}),
		}
		for w := 0; w < writers; w++ {
			tx := (w*nTxs/writers + k) % nTxs
			mv.Write(keys[k], tx, 0, Value{Word: *uint256.NewInt(uint64(tx))})
		}
	}
	return mv, keys
}

// BenchmarkMVMemoryRead measures the versioned-read resolution every
// speculative SLOAD pays: binary search of the key's version list for
// the highest writer below the reader.
func BenchmarkMVMemoryRead(b *testing.B) {
	const nTxs, nKeys, writers = 192, 512, 8
	mv, keys := benchMV(nTxs, nKeys, writers)
	b.ReportAllocs()
	b.ResetTimer()
	var sink ReadResult
	for i := 0; i < b.N; i++ {
		sink = mv.Read(keys[i%nKeys], i%nTxs)
	}
	_ = sink
}

// BenchmarkMVMemoryWrite measures publishing an incarnation's write:
// steady-state it replaces the transaction's existing entry in place.
func BenchmarkMVMemoryWrite(b *testing.B) {
	const nTxs, nKeys, writers = 192, 512, 8
	mv, keys := benchMV(nTxs, nKeys, writers)
	v := Value{Word: *uint256.NewInt(3)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Same (key, tx) pairs benchMV seeded, so every write is an
		// in-place incarnation replacement, not list growth.
		tx := ((i%writers)*nTxs/writers + i%nKeys) % nTxs
		mv.Write(keys[i%nKeys], tx, 1, v)
	}
}
