package mvstate

import (
	"testing"

	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

func key(addr byte) state.AccessKey {
	return state.AccessKey{Kind: state.AccessStorage, Addr: types.Address{19: addr}, Slot: types.Hash{31: 1}}
}

func word(v uint64) Value {
	var val Value
	val.Word.SetUint64(v)
	return val
}

func TestMVMemoryVersionResolution(t *testing.T) {
	mv := NewMVMemory()
	k := key(1)

	if r := mv.Read(k, 5); r.Status != ReadBase || r.Ver.Tx != BaseVersion {
		t.Fatalf("empty memory: got %+v, want base", r)
	}

	mv.Write(k, 3, 0, word(30))
	mv.Write(k, 7, 0, word(70))
	mv.Write(k, 1, 2, word(10))

	cases := []struct {
		reader  int
		status  ReadStatus
		writer  int
		wantVal uint64
	}{
		{0, ReadBase, BaseVersion, 0},
		{1, ReadBase, BaseVersion, 0}, // own index excluded
		{2, ReadValue, 1, 10},
		{3, ReadValue, 1, 10},
		{4, ReadValue, 3, 30},
		{7, ReadValue, 3, 30},
		{8, ReadValue, 7, 70},
		{100, ReadValue, 7, 70},
	}
	for _, c := range cases {
		r := mv.Read(k, c.reader)
		if r.Status != c.status || r.Ver.Tx != c.writer {
			t.Errorf("reader %d: got status %d writer %d, want %d/%d", c.reader, r.Status, r.Ver.Tx, c.status, c.writer)
		}
		if c.status == ReadValue && r.Val.Word.Uint64() != c.wantVal {
			t.Errorf("reader %d: got value %d, want %d", c.reader, r.Val.Word.Uint64(), c.wantVal)
		}
	}

	// A re-published incarnation replaces the entry and clears ESTIMATE.
	mv.MarkEstimate(k, 3)
	if r := mv.Read(k, 5); r.Status != ReadEstimate || r.Ver.Tx != 3 {
		t.Fatalf("after mark: got %+v, want estimate from 3", r)
	}
	mv.Write(k, 3, 1, word(31))
	if r := mv.Read(k, 5); r.Status != ReadValue || r.Val.Word.Uint64() != 31 || r.Ver.Incarnation != 1 {
		t.Fatalf("after republish: got %+v, want value 31 inc 1", r)
	}

	mv.Remove(k, 3)
	if r := mv.Read(k, 5); r.Status != ReadValue || r.Ver.Tx != 1 {
		t.Fatalf("after remove: got %+v, want writer 1", r)
	}
	mv.Remove(k, 1)
	mv.Remove(k, 7)
	if r := mv.Read(k, 100); r.Status != ReadBase {
		t.Fatalf("after removing all: got %+v, want base", r)
	}

	// Marking or removing a missing entry is a no-op.
	mv.MarkEstimate(k, 42)
	mv.Remove(k, 42)
	if r := mv.Read(k, 100); r.Status != ReadBase {
		t.Fatalf("no-op mutation changed state: %+v", r)
	}
}

func TestViewJournalRevert(t *testing.T) {
	base := state.New()
	addr := types.Address{19: 9}
	base.SetBalance(addr, uint256.NewInt(100))
	coinbase := types.Address{19: 0xfe}

	v := NewView(base, NewMVMemory(), 0, coinbase)
	snap := v.Snapshot()
	v.SetState(addr, types.Hash{31: 1}, *uint256.NewInt(7))
	v.AddBalance(addr, uint256.NewInt(5))
	v.AddLog(&types.Log{Address: addr})
	v.AddRefund(10)
	v.AddBalance(coinbase, uint256.NewInt(3))
	v.RevertToSnapshot(snap)

	if got := v.GetState(addr, types.Hash{31: 1}); !got.IsZero() {
		t.Errorf("storage write survived revert: %v", got)
	}
	if got := v.GetBalance(addr); got.Uint64() != 100 {
		t.Errorf("balance write survived revert: %v", got)
	}
	if logs := v.TakeLogs(); len(logs) != 0 {
		t.Errorf("log survived revert: %d", len(logs))
	}
	if v.GetRefund() != 0 {
		t.Errorf("refund survived revert: %d", v.GetRefund())
	}
	if d := v.FeeDelta(); !d.IsZero() {
		t.Errorf("fee delta survived revert: %v", d)
	}
	keys, _ := v.WriteSet()
	if len(keys) != 0 {
		t.Errorf("write set not empty after revert: %v", keys)
	}
	// Reads made inside the reverted span must stay recorded (the
	// speculation observed them; validation has to cover them).
	if len(v.ReadSet()) == 0 {
		t.Error("read set empty — reverted reads must stay recorded")
	}
}
