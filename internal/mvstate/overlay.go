package mvstate

import (
	"fmt"

	"mtpu/internal/keccak"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// Overlay is the sequential sibling of View: an evm.StateDB that
// buffers a whole block's writes over a read-only Snapshot instead of
// mutating a journaled StateDB copy. The decode/prefetch and verify
// paths run blocks through it to get, without copying the base state:
//
//   - per-transaction read/write access sets (for DAG construction),
//     recorded with exactly state.StateDB's semantics so the resulting
//     DAGs are identical;
//   - the block's net write-set in first-write order plus the
//     aggregate coinbase fee (the inputs to Store.Commit and
//     BuildOverrides);
//   - the set of keys resolved from the base snapshot (BaseReads), the
//     read-set a speculative prefetch revalidates against later folds.
//
// The coinbase balance carve-out matches View and workload.BuildDAG:
// fee credits accumulate in a local delta, never entering access sets
// or the write-set.
type Overlay struct {
	snap     *Snapshot
	coinbase types.Address

	writes     map[state.AccessKey]Value
	writeOrder []state.AccessKey
	created    map[types.Address]bool

	baseSeen  map[state.AccessKey]bool
	baseReads []state.AccessKey

	logs     []*types.Log
	refund   uint64
	feeDelta uint256.Int

	journal []vEntry

	recording bool
	txReads   state.AccessSet
	txWrites  state.AccessSet
}

// NewOverlay returns an empty overlay over snap.
func NewOverlay(snap *Snapshot, coinbase types.Address) *Overlay {
	return &Overlay{
		snap:     snap,
		coinbase: coinbase,
		writes:   make(map[state.AccessKey]Value),
		created:  make(map[types.Address]bool),
		baseSeen: make(map[state.AccessKey]bool),
	}
}

// BeginTxRecord starts per-transaction access recording (the analogue
// of StateDB.BeginAccessRecord).
func (o *Overlay) BeginTxRecord() {
	o.recording = true
	o.txReads = make(state.AccessSet)
	o.txWrites = make(state.AccessSet)
}

// EndTxRecord stops recording and returns the transaction's access sets.
func (o *Overlay) EndTxRecord() (reads, writes state.AccessSet) {
	o.recording = false
	reads, writes = o.txReads, o.txWrites
	o.txReads, o.txWrites = nil, nil
	return reads, writes
}

// WriteSet returns the block's buffered writes in first-write order.
func (o *Overlay) WriteSet() ([]state.AccessKey, []Value) {
	keys := make([]state.AccessKey, 0, len(o.writes))
	vals := make([]Value, 0, len(o.writes))
	seen := make(map[state.AccessKey]bool, len(o.writes))
	for _, k := range o.writeOrder {
		if seen[k] {
			continue
		}
		seen[k] = true
		if val, ok := o.writes[k]; ok {
			keys = append(keys, k)
			vals = append(vals, val)
		}
	}
	return keys, vals
}

// FeeTotal returns the accumulated coinbase fee credit.
func (o *Overlay) FeeTotal() uint256.Int { return o.feeDelta }

// BaseReads returns every key that resolved from the base snapshot, in
// first-read order — the overlay's cross-block read-set.
func (o *Overlay) BaseReads() []state.AccessKey { return o.baseReads }

func (o *Overlay) recordRead(key state.AccessKey) {
	if o.recording {
		o.txReads[key] = struct{}{}
	}
}

func (o *Overlay) recordWrite(key state.AccessKey) {
	if o.recording {
		o.txWrites[key] = struct{}{}
	}
}

// lookup resolves key from the write buffer; a miss marks the key as a
// base read (the caller reads the snapshot next).
func (o *Overlay) lookup(key state.AccessKey) (Value, bool) {
	if val, ok := o.writes[key]; ok {
		return val, true
	}
	if !o.baseSeen[key] {
		o.baseSeen[key] = true
		o.baseReads = append(o.baseReads, key)
	}
	return Value{}, false
}

// write buffers a value for key, journaling the previous buffer content.
func (o *Overlay) write(key state.AccessKey, val Value) {
	prev, existed := o.writes[key]
	o.journal = append(o.journal, vEntry{kind: vWrite, key: key, prev: prev, existed: existed})
	if !existed {
		o.writeOrder = append(o.writeOrder, key)
	}
	o.writes[key] = val
}

// CreateAccount implements evm.StateDB (existence is not tracked in
// access sets, matching state.StateDB).
func (o *Overlay) CreateAccount(addr types.Address) {
	if o.Exist(addr) {
		return
	}
	o.journal = append(o.journal, vEntry{kind: vCreate, addr: addr})
	o.created[addr] = true
}

// Exist implements evm.StateDB.
func (o *Overlay) Exist(addr types.Address) bool {
	if o.created[addr] || o.snap.Exist(addr) {
		return true
	}
	for _, key := range [3]state.AccessKey{balKey(addr), nonceKey(addr), codeKey(addr)} {
		if _, ok := o.writes[key]; ok {
			return true
		}
	}
	return false
}

// GetBalance implements evm.StateDB.
func (o *Overlay) GetBalance(addr types.Address) *uint256.Int {
	if addr == o.coinbase {
		bal := o.snap.GetBalance(addr)
		bal.Add(bal, &o.feeDelta)
		return bal
	}
	o.recordRead(balKey(addr))
	return o.loadBalance(addr)
}

// loadBalance is the unrecorded read shared by GetBalance and the
// read-modify-write Add/SubBalance paths (matching StateDB, whose
// Add/SubBalance record only the write).
func (o *Overlay) loadBalance(addr types.Address) *uint256.Int {
	if val, ok := o.lookup(balKey(addr)); ok {
		return val.Word.Clone()
	}
	return o.snap.GetBalance(addr)
}

// SetBalance implements evm.StateDB.
func (o *Overlay) SetBalance(addr types.Address, x *uint256.Int) {
	if addr == o.coinbase {
		var delta uint256.Int
		delta.Sub(x, o.snap.GetBalance(addr))
		o.journal = append(o.journal, vEntry{kind: vFee, prevFee: o.feeDelta})
		o.feeDelta = delta
		return
	}
	o.recordWrite(balKey(addr))
	var val Value
	val.Word.Set(x)
	o.write(balKey(addr), val)
}

// AddBalance implements evm.StateDB.
func (o *Overlay) AddBalance(addr types.Address, x *uint256.Int) {
	if addr == o.coinbase {
		o.journal = append(o.journal, vEntry{kind: vFee, prevFee: o.feeDelta})
		o.feeDelta.Add(&o.feeDelta, x)
		return
	}
	o.recordWrite(balKey(addr))
	cur := o.loadBalance(addr)
	var val Value
	val.Word.Add(cur, x)
	o.write(balKey(addr), val)
}

// SubBalance implements evm.StateDB (wraps on underflow, like
// state.StateDB).
func (o *Overlay) SubBalance(addr types.Address, x *uint256.Int) {
	if addr == o.coinbase {
		o.journal = append(o.journal, vEntry{kind: vFee, prevFee: o.feeDelta})
		o.feeDelta.Sub(&o.feeDelta, x)
		return
	}
	o.recordWrite(balKey(addr))
	cur := o.loadBalance(addr)
	var val Value
	val.Word.Sub(cur, x)
	o.write(balKey(addr), val)
}

// GetNonce implements evm.StateDB.
func (o *Overlay) GetNonce(addr types.Address) uint64 {
	o.recordRead(nonceKey(addr))
	if val, ok := o.lookup(nonceKey(addr)); ok {
		return val.U64
	}
	return o.snap.GetNonce(addr)
}

// SetNonce implements evm.StateDB.
func (o *Overlay) SetNonce(addr types.Address, n uint64) {
	o.recordWrite(nonceKey(addr))
	o.write(nonceKey(addr), Value{U64: n})
}

// GetCode implements evm.StateDB.
func (o *Overlay) GetCode(addr types.Address) []byte {
	o.recordRead(codeKey(addr))
	if val, ok := o.lookup(codeKey(addr)); ok {
		return val.Code
	}
	return o.snap.GetCode(addr)
}

// GetCodeSize implements evm.StateDB.
func (o *Overlay) GetCodeSize(addr types.Address) int {
	return len(o.GetCode(addr))
}

// GetCodeHash implements evm.StateDB.
func (o *Overlay) GetCodeHash(addr types.Address) types.Hash {
	o.recordRead(codeKey(addr))
	if val, ok := o.lookup(codeKey(addr)); ok {
		return val.Hash
	}
	return o.snap.GetCodeHash(addr)
}

// SetCode implements evm.StateDB.
func (o *Overlay) SetCode(addr types.Address, code []byte) {
	o.recordWrite(codeKey(addr))
	val := Value{Code: append([]byte(nil), code...)}
	if len(code) > 0 {
		val.Hash = types.Hash(keccak.Sum256(code))
	}
	o.write(codeKey(addr), val)
}

// GetState implements evm.StateDB.
func (o *Overlay) GetState(addr types.Address, slot types.Hash) uint256.Int {
	o.recordRead(storageKey(addr, slot))
	if val, ok := o.lookup(storageKey(addr, slot)); ok {
		return val.Word
	}
	return o.snap.GetState(addr, slot)
}

// SetState implements evm.StateDB.
func (o *Overlay) SetState(addr types.Address, slot types.Hash, x uint256.Int) {
	o.recordWrite(storageKey(addr, slot))
	o.write(storageKey(addr, slot), Value{Word: x})
}

// AddLog implements evm.StateDB.
func (o *Overlay) AddLog(l *types.Log) {
	o.journal = append(o.journal, vEntry{kind: vLog})
	o.logs = append(o.logs, l)
}

// TakeLogs implements evm.StateDB.
func (o *Overlay) TakeLogs() []*types.Log {
	out := o.logs
	o.logs = nil
	return out
}

// AddRefund implements evm.StateDB.
func (o *Overlay) AddRefund(x uint64) {
	o.journal = append(o.journal, vEntry{kind: vRefund, prevU64: o.refund})
	o.refund += x
}

// GetRefund implements evm.StateDB.
func (o *Overlay) GetRefund() uint64 { return o.refund }

// ResetRefund implements evm.StateDB.
func (o *Overlay) ResetRefund() { o.refund = 0 }

// Snapshot implements evm.StateDB.
func (o *Overlay) Snapshot() int { return len(o.journal) }

// RevertToSnapshot implements evm.StateDB. Base reads observed inside
// the reverted span stay in BaseReads — the speculation still observed
// them, so revalidation must still cover them.
func (o *Overlay) RevertToSnapshot(id int) {
	if id < 0 || id > len(o.journal) {
		panic(fmt.Sprintf("mvstate: invalid snapshot id %d (journal length %d)", id, len(o.journal)))
	}
	for i := len(o.journal) - 1; i >= id; i-- {
		e := o.journal[i]
		switch e.kind {
		case vWrite:
			if e.existed {
				o.writes[e.key] = e.prev
			} else {
				delete(o.writes, e.key)
			}
		case vCreate:
			delete(o.created, e.addr)
		case vLog:
			o.logs = o.logs[:len(o.logs)-1]
		case vRefund:
			o.refund = e.prevU64
		case vFee:
			o.feeDelta = e.prevFee
		}
	}
	o.journal = o.journal[:id]
}
