package mvstate

import (
	"testing"

	"mtpu/internal/state"
	"mtpu/internal/types"
)

// oracleEntry mirrors one multi-version write in the naive reference
// implementation.
type oracleEntry struct {
	tx          int
	incarnation int
	estimate    bool
	val         uint64
}

// oracle is a linear-scan reference for MVMemory: an unsorted list of
// writes per key, resolved by max-scan.
type oracle map[state.AccessKey][]oracleEntry

func (o oracle) read(k state.AccessKey, tx int) ReadResult {
	best := -1
	var bestE oracleEntry
	for _, e := range o[k] {
		if e.tx < tx && e.tx > best {
			best = e.tx
			bestE = e
		}
	}
	if best < 0 {
		return ReadResult{Status: ReadBase, Ver: Version{Tx: BaseVersion}}
	}
	r := ReadResult{Ver: Version{Tx: bestE.tx, Incarnation: bestE.incarnation}}
	if bestE.estimate {
		r.Status = ReadEstimate
	} else {
		r.Status = ReadValue
		r.Val.Word.SetUint64(bestE.val)
	}
	return r
}

func (o oracle) write(k state.AccessKey, tx, inc int, val uint64) {
	for i, e := range o[k] {
		if e.tx == tx {
			o[k][i] = oracleEntry{tx: tx, incarnation: inc, val: val}
			return
		}
	}
	o[k] = append(o[k], oracleEntry{tx: tx, incarnation: inc, val: val})
}

func (o oracle) markEstimate(k state.AccessKey, tx int) {
	for i, e := range o[k] {
		if e.tx == tx {
			o[k][i].estimate = true
		}
	}
}

func (o oracle) remove(k state.AccessKey, tx int) {
	es := o[k]
	for i, e := range es {
		if e.tx == tx {
			o[k] = append(es[:i], es[i+1:]...)
			return
		}
	}
}

// FuzzMVMemory drives random read/write/mark-estimate/remove
// interleavings against the sequential oracle. Each operation consumes 4
// fuzz bytes: opcode, key selector, transaction index, value.
func FuzzMVMemory(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{1, 0, 5, 9, 0, 0, 6, 0, 2, 0, 5, 0})
	f.Add([]byte{1, 2, 3, 4, 2, 2, 3, 0, 0, 2, 7, 0, 3, 2, 3, 0, 0, 2, 7, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		mv := NewMVMemory()
		o := make(oracle)
		keys := [4]state.AccessKey{
			{Kind: state.AccessBalance, Addr: types.Address{19: 1}},
			{Kind: state.AccessNonce, Addr: types.Address{19: 1}},
			{Kind: state.AccessStorage, Addr: types.Address{19: 2}, Slot: types.Hash{31: 1}},
			{Kind: state.AccessStorage, Addr: types.Address{19: 2}, Slot: types.Hash{31: 2}},
		}
		for i := 0; i+4 <= len(data) && i < 4*256; i += 4 {
			op, k, tx, v := data[i]%4, keys[data[i+1]%4], int(data[i+2]%32), uint64(data[i+3])
			switch op {
			case 0:
				got := mv.Read(k, tx)
				want := o.read(k, tx)
				if got.Status != want.Status || got.Ver != want.Ver || !got.Val.Word.Eq(&want.Val.Word) {
					t.Fatalf("op %d: Read(%v, %d) = %+v, oracle %+v", i/4, k, tx, got, want)
				}
			case 1:
				inc := int(v % 4)
				var val Value
				val.Word.SetUint64(v)
				mv.Write(k, tx, inc, val)
				o.write(k, tx, inc, v)
			case 2:
				mv.MarkEstimate(k, tx)
				o.markEstimate(k, tx)
			case 3:
				mv.Remove(k, tx)
				o.remove(k, tx)
			}
		}
		// Sweep every (key, reader) pair for a final full comparison.
		for _, k := range keys {
			for tx := 0; tx <= 32; tx++ {
				got, want := mv.Read(k, tx), o.read(k, tx)
				if got.Status != want.Status || got.Ver != want.Ver || !got.Val.Word.Eq(&want.Val.Word) {
					t.Fatalf("final sweep: Read(%v, %d) = %+v, oracle %+v", k, tx, got, want)
				}
			}
		}
	})
}
