package mvstate

import (
	"sort"

	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// Version identifies one incarnation of one transaction as a writer.
// Tx == BaseVersion means the pre-block state wrote the value.
type Version struct {
	Tx          int
	Incarnation int
}

// BaseVersion is the pseudo transaction index of the pre-block state.
const BaseVersion = -1

// Value is one versioned datum. The AccessKind of the owning key selects
// which fields are meaningful: Word for balances and storage slots, U64
// for nonces, Code/Hash for contract code.
type Value struct {
	Word uint256.Int
	U64  uint64
	Code []byte
	Hash types.Hash
}

// ReadStatus classifies the outcome of a versioned read.
type ReadStatus uint8

// Read outcomes.
const (
	// ReadBase: no speculative writer below the reader — the value comes
	// from the pre-block state.
	ReadBase ReadStatus = iota
	// ReadValue: the highest writer below the reader has a published value.
	ReadValue
	// ReadEstimate: the highest writer below the reader aborted and will
	// re-execute; the reader should block on it rather than read around.
	ReadEstimate
)

// ReadResult is the outcome of MVMemory.Read.
type ReadResult struct {
	Status ReadStatus
	// Ver is the observed writer ({BaseVersion, 0} for ReadBase).
	Ver Version
	// Val is the observed value (meaningful only for ReadValue).
	Val Value
}

// entry is one write in a per-key version list.
type entry struct {
	tx          int
	incarnation int
	estimate    bool
	val         Value
}

// MVMemory is the multi-version memory: a per-key list of speculative
// writes ordered by transaction index, with ESTIMATE markers standing in
// for the pending re-execution of aborted writers. It is not safe for
// concurrent use; the executor serializes access on its event loop.
type MVMemory struct {
	m map[state.AccessKey][]entry
}

// NewMVMemory returns an empty multi-version memory.
func NewMVMemory() *MVMemory {
	return &MVMemory{m: make(map[state.AccessKey][]entry)}
}

// search returns the position of tx in the key's version list (or the
// insertion point) and whether an entry for tx exists.
func search(es []entry, tx int) (int, bool) {
	i := sort.Search(len(es), func(i int) bool { return es[i].tx >= tx })
	return i, i < len(es) && es[i].tx == tx
}

// Read resolves key for a reader at transaction index tx: the write of
// the highest-indexed transaction strictly below tx, or ReadBase when no
// such write exists.
func (m *MVMemory) Read(key state.AccessKey, tx int) ReadResult {
	es := m.m[key]
	i, _ := search(es, tx)
	// es[:i] are writers with index < tx (an entry at exactly tx is the
	// reader's own write, which the view resolves before consulting us).
	if i == 0 {
		return ReadResult{Status: ReadBase, Ver: Version{Tx: BaseVersion}}
	}
	e := es[i-1]
	res := ReadResult{Ver: Version{Tx: e.tx, Incarnation: e.incarnation}}
	if e.estimate {
		res.Status = ReadEstimate
	} else {
		res.Status = ReadValue
		res.Val = e.val
	}
	return res
}

// Write publishes tx's value for key (replacing any earlier incarnation's
// entry, clearing its ESTIMATE marker).
func (m *MVMemory) Write(key state.AccessKey, tx, incarnation int, val Value) {
	es := m.m[key]
	i, ok := search(es, tx)
	if ok {
		es[i] = entry{tx: tx, incarnation: incarnation, val: val}
		return
	}
	es = append(es, entry{})
	copy(es[i+1:], es[i:])
	es[i] = entry{tx: tx, incarnation: incarnation, val: val}
	m.m[key] = es
}

// MarkEstimate flags tx's write of key as an ESTIMATE: the writer's last
// incarnation aborted, and readers landing on the entry should wait for
// the re-execution instead of speculating past it. Missing entries are
// ignored.
func (m *MVMemory) MarkEstimate(key state.AccessKey, tx int) {
	es := m.m[key]
	if i, ok := search(es, tx); ok {
		es[i].estimate = true
	}
}

// Remove deletes tx's write of key (the re-executed incarnation no longer
// writes the location). Missing entries are ignored.
func (m *MVMemory) Remove(key state.AccessKey, tx int) {
	es := m.m[key]
	i, ok := search(es, tx)
	if !ok {
		return
	}
	copy(es[i:], es[i+1:])
	es = es[:len(es)-1]
	if len(es) == 0 {
		delete(m.m, key)
	} else {
		m.m[key] = es
	}
}
