package core

import (
	"strings"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/engine"
	"mtpu/internal/sched"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

func TestVerifyScheduleDetectsTampering(t *testing.T) {
	genesis, block := buildBlock(t, 41, 60, 0.6)
	acc := New(arch.DefaultConfig())
	res, err := acc.Execute(genesis, block, ModeSpatialTemporal)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySchedule(genesis, block, res); err != nil {
		t.Fatalf("honest schedule rejected: %v", err)
	}

	// Duplicate a dispatch.
	tampered := *res
	tampered.Sched.Dispatches = append([]sched.Dispatch{}, res.Sched.Dispatches...)
	tampered.Sched.Dispatches = append(tampered.Sched.Dispatches, res.Sched.Dispatches[0])
	if err := VerifySchedule(genesis, block, &tampered); err == nil {
		t.Error("duplicate dispatch accepted")
	}

	// Drop a dispatch.
	tampered.Sched.Dispatches = res.Sched.Dispatches[:len(res.Sched.Dispatches)-1]
	if err := VerifySchedule(genesis, block, &tampered); err == nil {
		t.Error("missing dispatch accepted")
	}

	// Reorder a dependent pair: find an edge and swap start times so the
	// dependent commits first.
	var dep, pre = -1, -1
	for j, deps := range block.DAG.Deps {
		if len(deps) > 0 {
			dep, pre = j, deps[0]
			break
		}
	}
	if dep < 0 {
		t.Skip("no dependent transaction in block")
	}
	bad := make([]sched.Dispatch, len(res.Sched.Dispatches))
	copy(bad, res.Sched.Dispatches)
	for i := range bad {
		if bad[i].Tx == dep {
			bad[i].Start = 0
		}
		if bad[i].Tx == pre {
			bad[i].Start = 1 << 40
		}
	}
	tampered.Sched.Dispatches = bad
	if err := VerifySchedule(genesis, block, &tampered); err == nil {
		t.Error("dependency-violating order accepted")
	} else if !strings.Contains(err.Error(), "tx") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range allModes {
		if m.String() == "" {
			t.Errorf("mode %d has no name", m)
		}
	}
}

func TestConfigForModeLadder(t *testing.T) {
	cfg := arch.DefaultConfig()
	configFor := func(m Mode) arch.Config {
		e, err := engine.Get(m)
		if err != nil {
			t.Fatal(err)
		}
		return e.Configure(cfg)
	}
	scalar := configFor(ModeScalar)
	if scalar.EnableDBCache || scalar.ReuseContext || scalar.NumPUs != 1 {
		t.Errorf("scalar config %+v", scalar)
	}
	seq := configFor(ModeSequentialILP)
	if !seq.EnableDBCache || seq.ReuseContext || seq.NumPUs != 1 {
		t.Errorf("sequential config %+v", seq)
	}
	st := configFor(ModeSpatialTemporal)
	if st.ReuseContext || st.NumPUs != cfg.NumPUs {
		t.Errorf("ST config %+v", st)
	}
	red := configFor(ModeSTRedundancy)
	if !red.ReuseContext {
		t.Errorf("redundancy config %+v", red)
	}
}

func TestTopAddresses(t *testing.T) {
	a := types.BytesToAddress([]byte{1})
	b := types.BytesToAddress([]byte{2})
	c := types.BytesToAddress([]byte{3})
	counts := map[types.Address]int{a: 5, b: 9, c: 5}
	top := topAddresses(counts, 2)
	if len(top) != 2 || top[0] != b {
		t.Fatalf("top %v", top)
	}
	// Tie between a and c broken by address for determinism.
	if top[1] != a {
		t.Fatalf("tie break %v", top)
	}
	if got := topAddresses(counts, 10); len(got) != 3 {
		t.Fatalf("clamp %v", got)
	}
	if got := topAddresses(nil, 3); len(got) != 0 {
		t.Fatalf("empty %v", got)
	}
}

func TestLearnHotspotsHonorsTopN(t *testing.T) {
	genesis, block := buildBlock(t, 47, 80, 0.2)
	traces, _, _, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc := New(arch.DefaultConfig())
	hot := acc.LearnHotspots(traces, 2)
	if len(hot) != 2 {
		t.Fatalf("%d hotspots with topN=2", len(hot))
	}
	// Table entries only for those two contracts.
	for _, key := range acc.Table.Keys() {
		if key.Addr != hot[0] && key.Addr != hot[1] {
			t.Fatalf("entry for non-hotspot contract %s", key.Addr)
		}
	}
}

func TestHotspotModeNeverSlower(t *testing.T) {
	// Across several seeds the hotspot mode must never lose to plain
	// redundancy mode (optimizations are strictly subtractive in cycles).
	for seed := int64(60); seed < 64; seed++ {
		genesis, block := buildBlock(t, seed, 80, 0.4)
		acc := New(arch.DefaultConfig())
		traces, receipts, digest, err := CollectTraces(genesis, block)
		if err != nil {
			t.Fatal(err)
		}
		acc.LearnHotspots(traces, 8)
		red, err := acc.Replay(block, traces, receipts, digest, ModeSTRedundancy)
		if err != nil {
			t.Fatal(err)
		}
		hot, err := acc.Replay(block, traces, receipts, digest, ModeSTHotspot)
		if err != nil {
			t.Fatal(err)
		}
		if hot.Cycles > red.Cycles {
			t.Errorf("seed %d: hotspot %d > redundancy %d cycles", seed, hot.Cycles, red.Cycles)
		}
		if hot.SkippedInstructions == 0 {
			t.Errorf("seed %d: nothing skipped", seed)
		}
	}
}

func TestHotspotTableGeneralizesAcrossBlocks(t *testing.T) {
	// Learn the Contract Table from one block, then apply it to a second
	// block with different transactions over the same contracts — the
	// §3.4 premise that optimization results stay valid for the lifetime
	// of a contract.
	g := workload.NewGenerator(91, 2048)
	genesis := g.Genesis()

	trainBlock := g.TokenBlock(120, 0.3)
	if _, err := workload.BuildDAG(genesis, trainBlock); err != nil {
		t.Fatal(err)
	}
	trainTraces, _, _, err := CollectTraces(genesis, trainBlock)
	if err != nil {
		t.Fatal(err)
	}
	acc := New(arch.DefaultConfig())
	acc.LearnHotspots(trainTraces, 8)

	testBlock := g.TokenBlock(120, 0.3)
	if _, err := workload.BuildDAG(genesis, testBlock); err != nil {
		t.Fatal(err)
	}
	traces, receipts, digest, err := CollectTraces(genesis, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	red, err := acc.Replay(testBlock, traces, receipts, digest, ModeSTRedundancy)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := acc.Replay(testBlock, traces, receipts, digest, ModeSTHotspot)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Cycles >= red.Cycles {
		t.Fatalf("learned table did not transfer: hotspot %d >= redundancy %d",
			hot.Cycles, red.Cycles)
	}
	if hot.SkippedInstructions == 0 {
		t.Fatal("no instructions skipped on the unseen block")
	}
	if err := VerifySchedule(genesis, testBlock, hot); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteChainLearnsAcrossBlocks(t *testing.T) {
	g := workload.NewGenerator(101, 8192)
	genesis := g.Genesis()
	blocks := g.ChainBlocks(4, 96, 0.3)
	if err := workload.BuildChainDAG(genesis, blocks); err != nil {
		t.Fatal(err)
	}

	acc := New(arch.DefaultConfig())
	results, err := acc.ExecuteChain(genesis, blocks, ModeSTHotspot, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	// Block 0 runs cold (nothing learned yet); later blocks must skip
	// instructions and run faster than the cold block.
	if results[0].SkippedInstructions != 0 {
		t.Fatalf("cold block skipped %d instructions", results[0].SkippedInstructions)
	}
	for i := 1; i < len(results); i++ {
		if results[i].SkippedInstructions == 0 {
			t.Errorf("block %d: warm table skipped nothing", i)
		}
		if results[i].Cycles >= results[0].Cycles {
			t.Errorf("block %d: %d cycles not below cold %d",
				i, results[i].Cycles, results[0].Cycles)
		}
	}
	// Each block's digest must differ (the chain is advancing state).
	for i := 1; i < len(results); i++ {
		if results[i].StateDigest == results[i-1].StateDigest {
			t.Errorf("blocks %d and %d share a digest", i-1, i)
		}
	}
}

func TestExecuteChainRejectsOutOfOrderBlocks(t *testing.T) {
	// A small account pool forces sender reuse across the two blocks, so
	// block 2 carries nonces that only exist after block 1 commits.
	g := workload.NewGenerator(103, 50)
	genesis := g.Genesis()
	blocks := g.ChainBlocks(2, 40, 0)
	if err := workload.BuildChainDAG(genesis, blocks); err != nil {
		t.Fatal(err)
	}
	acc := New(arch.DefaultConfig())
	// Executing block 2 before block 1 must fail on nonces.
	if _, err := acc.ExecuteChain(genesis, []*types.Block{blocks[1], blocks[0]}, ModeScalar, 0); err == nil {
		t.Fatal("out-of-order chain accepted")
	}
}

func TestTPS(t *testing.T) {
	if got := TPS(100, 300_000_000, PrototypeClockHz); got != 100 {
		t.Fatalf("TPS = %f", got)
	}
	if TPS(100, 0, PrototypeClockHz) != 0 {
		t.Fatal("zero cycles")
	}
}
