package core

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/obs"
)

func TestObsCycleAccountingInvariant(t *testing.T) {
	for _, dep := range []float64{0, 0.5, 1.0} {
		genesis, block := buildBlock(t, 7, 96, dep)
		acc := New(arch.DefaultConfig())
		traces, receipts, digest, err := CollectTraces(genesis, block)
		if err != nil {
			t.Fatal(err)
		}
		acc.LearnHotspots(traces, 8)

		for _, mode := range allModes {
			for _, pus := range []int{1, 4} {
				res, err := acc.ReplayWith(block, traces, receipts, digest, mode,
					ReplayOpts{NumPUs: pus, Obs: obs.NewCollector()})
				if err != nil {
					t.Fatalf("%v/%dpu: %v", mode, pus, err)
				}
				r := res.Obs
				if r == nil {
					t.Fatalf("%v/%dpu: Result.Obs is nil", mode, pus)
				}
				checkReport(t, r, res, dep)
			}
		}
	}
}

// checkReport enforces the report invariants against the replay result.
func checkReport(t *testing.T, r *obs.Report, res *Result, dep float64) {
	t.Helper()
	label := func(s string) string {
		return r.Mode + "/" + itoa(r.NumPUs) + "pu/dep=" + ftoa(dep) + ": " + s
	}

	if r.Schema != obs.SchemaVersion {
		t.Errorf("%s = %d, want %d", label("schema"), r.Schema, obs.SchemaVersion)
	}
	if r.Makespan != res.Cycles {
		t.Errorf("%s = %d, want result cycles %d", label("makespan"), r.Makespan, res.Cycles)
	}
	if len(r.PUs) != r.NumPUs {
		t.Fatalf("%s: %d rows for %d PUs", label("cycle rows"), len(r.PUs), r.NumPUs)
	}

	// The tentpole invariant: every PU's stall breakdown sums to the
	// block makespan, with each term sourced from a different layer
	// (pipeline counters, PU load accumulator, dispatch timeline).
	var txs int
	for _, c := range r.PUs {
		if c.Total != r.Makespan {
			t.Errorf("%s: pu %d total %d != makespan %d", label("total"), c.PU, c.Total, r.Makespan)
		}
		if got := c.Accounted(); got != c.Total {
			t.Errorf("%s: pu %d busy+stalls+idle = %d, want %d (%+v)",
				label("accounting"), c.PU, got, c.Total, c)
		}
		if c.MissIssue > c.Busy {
			t.Errorf("%s: pu %d miss-issue %d exceeds busy %d", label("miss-issue"), c.PU, c.MissIssue, c.Busy)
		}
		txs += c.Txs
	}
	if nTx := len(r.Spans); txs != nTx {
		t.Errorf("%s: per-PU tx counts sum to %d, spans %d", label("txs"), txs, nTx)
	}

	// DB cache: hits + misses == lookups, and the collector's event
	// stream must agree with the pipeline's own aggregate counters.
	tot := r.DB.Totals
	if tot.Hits+tot.Misses != tot.Lookups {
		t.Errorf("%s: hits %d + misses %d != lookups %d", label("db"), tot.Hits, tot.Misses, tot.Lookups)
	}
	ps := res.Pipeline
	if tot.Hits != ps.LineHits || tot.Misses != ps.LineMisses {
		t.Errorf("%s: collector hits/misses %d/%d, pipeline %d/%d",
			label("db-xcheck"), tot.Hits, tot.Misses, ps.LineHits, ps.LineMisses)
	}
	if tot.Fills != ps.LinesCached || tot.Evictions != ps.LineEvictions {
		t.Errorf("%s: collector fills/evicts %d/%d, pipeline %d/%d",
			label("db-xcheck"), tot.Fills, tot.Evictions, ps.LinesCached, ps.LineEvictions)
	}
	var fills uint64
	for _, n := range r.DB.LineSizeHist {
		fills += n
	}
	if fills != tot.Fills {
		t.Errorf("%s: histogram sums to %d fills, counters say %d", label("hist"), fills, tot.Fills)
	}
	var contractLookups uint64
	for _, c := range r.DB.PerContract {
		contractLookups += c.Lookups
	}
	if contractLookups != tot.Lookups {
		t.Errorf("%s: per-contract lookups %d != total %d", label("contracts"), contractLookups, tot.Lookups)
	}

	// Scheduler: under the spatio-temporal modes every transaction is
	// picked from the candidate window exactly once; the other modes
	// never consult the window, so they record no picks at all.
	var picks uint64
	for _, n := range r.Sched.Picks {
		picks += n
	}
	want := uint64(0)
	if r.Sched.Window > 0 {
		want = uint64(len(r.Spans))
	}
	if picks != want {
		t.Errorf("%s: %d picks for %d dispatches", label("picks"), picks, want)
	}
	if len(r.Sched.Occupancy) != int(want) {
		t.Errorf("%s: %d occupancy samples, want %d", label("occupancy"), len(r.Sched.Occupancy), want)
	}

	// Spans stay inside the makespan and cover every transaction once.
	seen := make(map[int]bool, len(r.Spans))
	for _, s := range r.Spans {
		if s.End < s.Start || s.End > r.Makespan {
			t.Errorf("%s: span %+v outside makespan %d", label("spans"), s, r.Makespan)
		}
		if seen[s.Tx] {
			t.Errorf("%s: tx %d dispatched twice", label("spans"), s.Tx)
		}
		seen[s.Tx] = true
	}
}

func TestObsSchedStallMatchesOverhead(t *testing.T) {
	genesis, block := buildBlock(t, 11, 80, 0.4)
	cfg := arch.DefaultConfig()
	acc := New(cfg)
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc.LearnHotspots(traces, 8)

	for _, mode := range allModes {
		res, err := acc.ReplayWith(block, traces, receipts, digest, mode,
			ReplayOpts{Obs: obs.NewCollector()})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		sequential := mode == ModeScalar || mode == ModeSequentialILP
		for _, c := range res.Obs.PUs {
			want := cfg.ScheduleOverhead * uint64(c.Txs)
			if sequential {
				want = 0
			}
			if c.StallSched != want {
				t.Errorf("%v: pu %d sched stall %d, want overhead %d × %d txs = %d",
					mode, c.PU, c.StallSched, cfg.ScheduleOverhead, c.Txs, want)
			}
		}
		// Window is only meaningful for the spatio-temporal modes.
		st := mode == ModeSpatialTemporal || mode == ModeSTRedundancy || mode == ModeSTHotspot
		if st && res.Obs.Sched.Window != cfg.CandidateWindow {
			t.Errorf("%v: window %d, want %d", mode, res.Obs.Sched.Window, cfg.CandidateWindow)
		}
		if !st && res.Obs.Sched.Window != 0 {
			t.Errorf("%v: window %d, want 0", mode, res.Obs.Sched.Window)
		}
	}
}

func TestObsDisabledByDefault(t *testing.T) {
	genesis, block := buildBlock(t, 5, 48, 0.3)
	acc := New(arch.DefaultConfig())
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	res, err := acc.Replay(block, traces, receipts, digest, ModeSpatialTemporal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Error("Result.Obs non-nil without ReplayOpts.Obs")
	}
}

// TestObsDoesNotPerturbTiming: attaching a collector must observe, not
// alter — cycle counts and digests match the uninstrumented replay.
func TestObsDoesNotPerturbTiming(t *testing.T) {
	genesis, block := buildBlock(t, 13, 96, 0.5)
	acc := New(arch.DefaultConfig())
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc.LearnHotspots(traces, 8)
	for _, mode := range allModes {
		plain, err := acc.Replay(block, traces, receipts, digest, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		inst, err := acc.ReplayWith(block, traces, receipts, digest, mode,
			ReplayOpts{Obs: obs.NewCollector()})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if plain.Cycles != inst.Cycles {
			t.Errorf("%v: instrumented run changed cycles %d -> %d", mode, plain.Cycles, inst.Cycles)
		}
		if plain.StateDigest != inst.StateDigest {
			t.Errorf("%v: instrumented run changed state digest", mode)
		}
		if plain.Pipeline != inst.Pipeline {
			t.Errorf("%v: instrumented run changed pipeline stats", mode)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}

func ftoa(v float64) string {
	switch v {
	case 0:
		return "0"
	case 0.5:
		return "0.5"
	case 1.0:
		return "1"
	}
	return "?"
}
