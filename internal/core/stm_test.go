package core

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/obs"
)

func TestModeBlockSTMMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name string
		dep  float64
	}{
		{"dep0", 0}, {"dep0.3", 0.3}, {"dep1.0", 1.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			genesis, block := buildBlock(t, 29, 96, tc.dep)
			acc := New(arch.DefaultConfig())
			traces, receipts, digest, err := CollectTraces(genesis, block)
			if err != nil {
				t.Fatal(err)
			}
			for _, pus := range []int{2, 4, 8} {
				res, err := acc.ReplayWith(block, traces, receipts, digest, ModeBlockSTM,
					ReplayOpts{NumPUs: pus, Genesis: genesis})
				if err != nil {
					t.Fatalf("pus=%d: %v", pus, err)
				}
				if res.StateDigest != digest {
					t.Fatalf("pus=%d: digest mismatch", pus)
				}
				if res.Cycles == 0 || res.Utilization <= 0 {
					t.Errorf("pus=%d: empty timing result (cycles=%d util=%f)", pus, res.Cycles, res.Utilization)
				}
				if res.STM == nil {
					t.Fatalf("pus=%d: missing STM stats", pus)
				}
				s := res.STM
				if s.Incarnations-s.Aborts != len(block.Transactions) {
					t.Errorf("pus=%d: incarnations %d - aborts %d != txs %d",
						pus, s.Incarnations, s.Aborts, len(block.Transactions))
				}
				if got := s.ExecCycles + s.ValidateCycles + s.IdleCycles; got != uint64(pus)*res.Cycles {
					t.Errorf("pus=%d: cycle terms %d != pus×makespan %d", pus, got, uint64(pus)*res.Cycles)
				}
				if err := VerifySTMConflicts(block.DAG, res.STMConflicts); err != nil {
					t.Errorf("pus=%d: %v", pus, err)
				}
			}
		})
	}
}

func TestModeBlockSTMRequiresGenesis(t *testing.T) {
	genesis, block := buildBlock(t, 29, 32, 0.3)
	acc := New(arch.DefaultConfig())
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acc.Replay(block, traces, receipts, digest, ModeBlockSTM); err == nil {
		t.Fatal("expected error replaying block-stm without ReplayOpts.Genesis")
	}
}

// TestModeBlockSTMObsReport: the instrumentation report carries the STM
// section and keeps the per-PU cycle accounting invariant (validation and
// scheduling land in the sched bucket, idle fills to the makespan).
func TestModeBlockSTMObsReport(t *testing.T) {
	genesis, block := buildBlock(t, 29, 96, 0.5)
	acc := New(arch.DefaultConfig())
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	res, err := acc.ReplayWith(block, traces, receipts, digest, ModeBlockSTM,
		ReplayOpts{NumPUs: 4, Genesis: genesis, Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil || res.Obs.STM == nil {
		t.Fatal("obs report missing STM section")
	}
	if res.Obs.Schema != obs.SchemaVersion {
		t.Errorf("schema %d != %d", res.Obs.Schema, obs.SchemaVersion)
	}
	for _, c := range res.Obs.PUs {
		if c.Accounted() != c.Total {
			t.Errorf("PU %d: accounted %d != total %d", c.PU, c.Accounted(), c.Total)
		}
	}
	if res.Obs.Render() == "" {
		t.Error("empty rendered report")
	}
}
