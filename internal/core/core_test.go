package core

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// buildBlock generates a token block with its DAG attached.
func buildBlock(t *testing.T, seed int64, n int, depRatio float64) (*state.StateDB, *types.Block) {
	t.Helper()
	g := workload.NewGenerator(seed, 4*n+64)
	genesis := g.Genesis()
	block := g.TokenBlock(n, depRatio)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	return genesis, block
}

// allModes in capability order: every registered engine that replays
// traces without needing the pre-block genesis (ModeBlockSTM has its
// own tests, which supply ReplayOpts.Genesis).
var allModes = []Mode{
	ModeScalar, ModeSequentialILP, ModeSynchronous,
	ModeSpatialTemporal, ModeSTRedundancy, ModeSTHotspot,
	ModeBSE,
}

// runAll executes one block under every mode with shared traces.
func runAll(t *testing.T, genesis *state.StateDB, block *types.Block) map[Mode]*Result {
	t.Helper()
	acc := New(arch.DefaultConfig())
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc.LearnHotspots(traces, 8)
	out := make(map[Mode]*Result, len(allModes))
	for _, m := range allModes {
		res, err := acc.Replay(block, traces, receipts, digest, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		out[m] = res
	}
	return out
}

func TestModeLadderShape(t *testing.T) {
	genesis, block := buildBlock(t, 21, 160, 0.3)
	res := runAll(t, genesis, block)

	scalar := res[ModeScalar].Cycles
	t.Logf("dep ratio %.2f, critical path %d", block.DAG.DependentRatio(), block.DAG.CriticalPathLen())
	for _, m := range allModes {
		r := res[m]
		t.Logf("%-38v cycles=%9d speedup=%.2f util=%.2f ipc=%.2f hit=%.2f",
			m, r.Cycles, float64(scalar)/float64(r.Cycles), r.Utilization, r.IPC(), r.Pipeline.HitRatio())
	}

	// The ladder must be ordered at the big steps. A lone ILP PU that
	// flushes its DB cache between transactions gains almost nothing
	// (single-transaction hit rates are 3-10% in the paper, §4.2) — the
	// ILP benefit materializes through reuse, asserted further down.
	if res[ModeSequentialILP].Cycles > scalar {
		t.Error("ILP made things worse than scalar")
	}
	if !(res[ModeSynchronous].Cycles < res[ModeSequentialILP].Cycles) {
		t.Error("synchronous parallel did not beat sequential")
	}
	if !(res[ModeSpatialTemporal].Cycles <= res[ModeSynchronous].Cycles) {
		t.Error("spatial-temporal did not match/beat synchronous")
	}
	if !(res[ModeSTRedundancy].Cycles < res[ModeSpatialTemporal].Cycles) {
		t.Error("redundancy reuse did not help")
	}
	if !(res[ModeSTHotspot].Cycles < res[ModeSTRedundancy].Cycles) {
		t.Error("hotspot optimization did not help")
	}
}

func TestEveryModeSerializable(t *testing.T) {
	genesis, block := buildBlock(t, 23, 120, 0.5)
	res := runAll(t, genesis, block)
	for _, m := range allModes {
		if err := VerifySchedule(genesis, block, res[m]); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func TestGasIdenticalAcrossModes(t *testing.T) {
	genesis, block := buildBlock(t, 25, 80, 0.4)
	res := runAll(t, genesis, block)
	want := res[ModeScalar].GasUsed
	if want == 0 {
		t.Fatal("zero gas")
	}
	for _, m := range allModes {
		if res[m].GasUsed != want {
			t.Errorf("%v: gas %d != %d", m, res[m].GasUsed, want)
		}
		if res[m].StateDigest != res[ModeScalar].StateDigest {
			t.Errorf("%v: digest mismatch", m)
		}
	}
}

func TestSpeedupGrowsWithIndependence(t *testing.T) {
	acc := New(arch.DefaultConfig())
	speedupAt := func(dep float64) float64 {
		genesis, block := buildBlock(t, 31, 120, dep)
		traces, receipts, digest, err := CollectTraces(genesis, block)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := acc.Replay(block, traces, receipts, digest, ModeSequentialILP)
		if err != nil {
			t.Fatal(err)
		}
		st, err := acc.Replay(block, traces, receipts, digest, ModeSpatialTemporal)
		if err != nil {
			t.Fatal(err)
		}
		return float64(seq.Cycles) / float64(st.Cycles)
	}
	low := speedupAt(0.0)
	high := speedupAt(0.9)
	t.Logf("ST speedup at dep=0: %.2f, at dep=0.9: %.2f", low, high)
	if low <= high {
		t.Errorf("speedup should fall with dependence: %.2f vs %.2f", low, high)
	}
	if low < 2.0 {
		t.Errorf("4-PU speedup on independent block too low: %.2f", low)
	}
}

func TestHotspotLearnIsDeterministic(t *testing.T) {
	genesis, block := buildBlock(t, 37, 60, 0.2)
	traces, _, _, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := New(arch.DefaultConfig()), New(arch.DefaultConfig())
	h1 := a1.LearnHotspots(traces, 8)
	h2 := a2.LearnHotspots(traces, 8)
	if len(h1) != len(h2) {
		t.Fatalf("hotspot counts differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hotspot %d differs: %s vs %s", i, h1[i], h2[i])
		}
	}
	if a1.Table.Len() != a2.Table.Len() {
		t.Fatalf("table sizes differ")
	}
}
