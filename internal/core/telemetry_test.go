package core

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/obs"
	"mtpu/internal/telemetry"
)

// TestTelemetryDoesNotPerturbResults pins the observer-effect contract:
// attaching a telemetry registry must leave every simulated quantity —
// cycles, digests, gas, utilization — byte-identical to the bare run,
// for every engine including the optimistic one.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	genesis, block := buildBlock(t, 31, 96, 0.4)
	acc := New(arch.DefaultConfig())
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc.LearnHotspots(traces, 8)

	modes := append([]Mode{}, allModes...)
	modes = append(modes, ModeBlockSTM)
	tel := telemetry.New()
	for _, m := range modes {
		bare, err := acc.ReplayWith(block, traces, receipts, digest, m,
			ReplayOpts{Genesis: genesis})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		observed, err := acc.ReplayWith(block, traces, receipts, digest, m,
			ReplayOpts{Genesis: genesis, Tel: tel})
		if err != nil {
			t.Fatalf("%v with telemetry: %v", m, err)
		}
		if bare.Cycles != observed.Cycles {
			t.Errorf("%v: cycles %d != %d with telemetry", m, bare.Cycles, observed.Cycles)
		}
		if bare.StateDigest != observed.StateDigest {
			t.Errorf("%v: state digest changed under telemetry", m)
		}
		if bare.GasUsed != observed.GasUsed {
			t.Errorf("%v: gas %d != %d with telemetry", m, bare.GasUsed, observed.GasUsed)
		}
		if bare.Utilization != observed.Utilization {
			t.Errorf("%v: utilization %v != %v with telemetry", m, bare.Utilization, observed.Utilization)
		}
	}

	// The registry must actually have seen the instrumented replays.
	snap := tel.Snapshot()
	if snap.Replays != uint64(len(modes)) {
		t.Errorf("telemetry saw %d replays, want %d", snap.Replays, len(modes))
	}
	wantTxs := uint64(len(modes) * len(block.Transactions))
	if snap.ReplayTxs != wantTxs {
		t.Errorf("telemetry saw %d txs, want %d", snap.ReplayTxs, wantTxs)
	}
	if len(snap.Latency) != len(modes) {
		t.Errorf("latency sections = %d, want one per mode (%d)", len(snap.Latency), len(modes))
	}
	if snap.STM.Incarnations == 0 {
		t.Error("Block-STM replay recorded no incarnations")
	}
	if snap.STM.Incarnations < snap.STM.Aborts {
		t.Error("more aborts than incarnations")
	}
	if snap.SBufHits+snap.SBufMisses == 0 {
		t.Error("no State Buffer traffic recorded")
	}
}

// TestTelemetryCoexistsWithCollector exercises the Tee attachment: a
// cycle-obs Collector and the telemetry bridge observing the same
// replay must both see the events, and the Report must be unchanged
// relative to a Collector-only run.
func TestTelemetryCoexistsWithCollector(t *testing.T) {
	genesis, block := buildBlock(t, 33, 64, 0.3)
	acc := New(arch.DefaultConfig())
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}

	only, err := acc.ReplayWith(block, traces, receipts, digest, ModeSpatialTemporal,
		ReplayOpts{Genesis: genesis, Obs: obs.NewCollector()})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New()
	both, err := acc.ReplayWith(block, traces, receipts, digest, ModeSpatialTemporal,
		ReplayOpts{Genesis: genesis, Obs: obs.NewCollector(), Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	if only.Obs == nil || both.Obs == nil {
		t.Fatal("collector report missing")
	}
	if only.Cycles != both.Cycles {
		t.Errorf("cycles %d != %d when teeing telemetry in", only.Cycles, both.Cycles)
	}
	if only.Obs.DB.Totals.Lookups != both.Obs.DB.Totals.Lookups {
		t.Errorf("collector DB lookups %d != %d under tee", only.Obs.DB.Totals.Lookups, both.Obs.DB.Totals.Lookups)
	}
	if tel.DBHits.Load()+tel.DBMisses.Load() == 0 {
		t.Error("telemetry bridge saw no DB traffic through the tee")
	}
}
