package core

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/evm"
	"mtpu/internal/mvstate"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// Prepared is the decode product of one block against one pre-state
// snapshot: everything the replay, verification and commit layers need,
// produced by a single sequential EVM pass over a versioned overlay (no
// copy of the pre-state is ever made).
type Prepared struct {
	// Traces and Receipts are the golden sequential results, aligned
	// with the block's transactions.
	Traces   []*arch.TxTrace
	Receipts []*types.Receipt
	// WriteKeys/WriteVals are the block's net write-set in first-write
	// order — the input to mvstate.Store.Commit. The coinbase balance is
	// carved out; its aggregate credit is Fees.
	WriteKeys []state.AccessKey
	WriteVals []mvstate.Value
	Fees      uint256.Int
	// BaseReads are the keys the decode resolved from the snapshot —
	// the read-set a speculative decode revalidates against later folds
	// (mvstate.Store.Invalidated).
	BaseReads []state.AccessKey
	// Height is the snapshot height the block was decoded at.
	Height uint64
}

// PrepareBlock decodes block against head: one sequential EVM pass over
// an mvstate overlay that simultaneously records per-transaction access
// sets (for the conflict DAG), collects instruction traces and receipts,
// and accumulates the block's net write-set. The block's DAG is rebuilt
// from the observed access sets — callers treat block input as
// untrusted, so every engine downstream schedules against conflicts the
// sequential replay actually proved.
//
// The coinbase balance is touched by every transaction's gas payment;
// treating it as a conflict would serialize the whole block, so the
// overlay carves it out of access sets and write-set alike — matching
// workload.BuildDAG and the commutative-reward treatment every engine
// applies.
func PrepareBlock(head *mvstate.Snapshot, block *types.Block) (*Prepared, error) {
	n := len(block.Transactions)
	if n == 0 {
		return nil, fmt.Errorf("core: empty block")
	}
	ov := mvstate.NewOverlay(head, block.Header.Coinbase)
	e := evm.New(evm.NewBlockContext(block.Header), ov)
	col := arch.NewCollector()
	e.Tracer = col

	traces := make([]*arch.TxTrace, n)
	receipts := make([]*types.Receipt, n)
	reads := make([]state.AccessSet, n)
	writes := make([]state.AccessSet, n)
	for i, tx := range block.Transactions {
		col.Begin(tx)
		ov.BeginTxRecord()
		r, err := evm.ApplyTransaction(e, tx, i)
		rd, wr := ov.EndTxRecord()
		if err != nil {
			return nil, fmt.Errorf("core: tx %d invalid: %w", i, err)
		}
		reads[i], writes[i] = rd, wr
		receipts[i] = r
		traces[i] = col.Finish(r.GasUsed)
	}

	block.DAG = types.NewDAG(n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if writes[i].Overlaps(reads[j]) || writes[i].Overlaps(writes[j]) ||
				reads[i].Overlaps(writes[j]) {
				block.DAG.AddEdge(i, j)
			}
		}
	}

	p := &Prepared{
		Traces:    traces,
		Receipts:  receipts,
		BaseReads: ov.BaseReads(),
		Fees:      ov.FeeTotal(),
		Height:    head.Height(),
	}
	p.WriteKeys, p.WriteVals = ov.WriteSet()
	return p, nil
}

// DigestAt prices the prepared block's write-set on top of head and
// returns the post-block state digest — byte-identical to committing
// the block and digesting the result, without mutating head.
func (p *Prepared) DigestAt(head *mvstate.Snapshot, coinbase types.Address) types.Hash {
	return head.DigestWith(mvstate.BuildOverrides(head, p.WriteKeys, p.WriteVals, coinbase, &p.Fees))
}
