package core

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/engine"
	"mtpu/internal/workload"
)

// TestPooledProcessorReplayIdentical pins the correctness contract of
// the processor pool: replaying the same block repeatedly on one
// Accelerator (each call after the first is served a recycled, Reset
// processor) must produce results identical to the first, fresh-built
// run — for every registered engine.
func TestPooledProcessorReplayIdentical(t *testing.T) {
	g := workload.NewGenerator(41, 512)
	genesis := g.Genesis()
	block := g.TokenBlock(48, 0.4)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}

	acc := New(arch.DefaultConfig())
	opts := ReplayOpts{Genesis: genesis}
	for _, m := range engine.Modes() {
		first, err := acc.ReplayWith(block, traces, receipts, digest, m, opts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for run := 1; run < 4; run++ {
			res, err := acc.ReplayWith(block, traces, receipts, digest, m, opts)
			if err != nil {
				t.Fatalf("%s run %d: %v", m, run, err)
			}
			if res.Cycles != first.Cycles || res.Pipeline != first.Pipeline ||
				res.Utilization != first.Utilization {
				t.Fatalf("%s run %d diverged from fresh run:\nfresh  cycles=%d %+v\npooled cycles=%d %+v",
					m, run, first.Cycles, first.Pipeline, res.Cycles, res.Pipeline)
			}
		}
	}
}

// TestPoolSkipsMismatchedConfig checks a recycled processor is only
// reused when its configuration matches exactly; alternating PU counts
// must never bleed state or config between calls.
func TestPoolSkipsMismatchedConfig(t *testing.T) {
	g := workload.NewGenerator(42, 512)
	genesis := g.Genesis()
	block := g.TokenBlock(32, 0.3)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}

	acc := New(arch.DefaultConfig())
	ref := map[int]uint64{}
	for _, pus := range []int{2, 8, 2, 8, 2} {
		res, err := acc.ReplayWith(block, traces, receipts, digest,
			ModeSpatialTemporal, ReplayOpts{NumPUs: pus})
		if err != nil {
			t.Fatal(err)
		}
		if want, ok := ref[pus]; ok && res.Cycles != want {
			t.Fatalf("%d PUs: cycles %d, first run said %d", pus, res.Cycles, want)
		}
		ref[pus] = res.Cycles
	}
}
