// Package core is the public face of the reproduction: it executes a
// block functionally (the golden sequential EVM run), replays the
// resulting instruction traces through the MTPU timing model under a
// selected execution engine, and verifies that every parallel schedule
// commits a state identical to sequential execution. The engine ladder
// mirrors the paper's evaluation: scalar baseline → ILP (Fig. 12/13,
// Table 7) → synchronous parallel vs spatio-temporal scheduling
// (Fig. 14/15) → + redundancy reuse → + hotspot optimization (Fig. 16),
// plus the optimistic Block-STM and Batch-Schedule-Execute baselines.
// The engines themselves live in internal/engine; ReplayWith is a
// registry lookup plus shared result assembly, with no per-mode
// dispatch of its own.
package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/arch/mtpu"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/engine"
	"mtpu/internal/evm"
	"mtpu/internal/hotspot"
	"mtpu/internal/mvstate"
	"mtpu/internal/obs"
	"mtpu/internal/sched"
	"mtpu/internal/state"
	"mtpu/internal/stm"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
)

// Mode selects the execution engine; it is the registry ordinal of
// internal/engine, re-exported so existing call sites keep working.
type Mode = engine.Mode

// The registered execution engines, ordered by capability. See the
// internal/engine constants for per-mode documentation.
const (
	ModeScalar          = engine.ModeScalar
	ModeSequentialILP   = engine.ModeSequentialILP
	ModeSynchronous     = engine.ModeSynchronous
	ModeSpatialTemporal = engine.ModeSpatialTemporal
	ModeSTRedundancy    = engine.ModeSTRedundancy
	ModeSTHotspot       = engine.ModeSTHotspot
	ModeBlockSTM        = engine.ModeBlockSTM
	ModeBSE             = engine.ModeBSE
)

// Result reports one simulated block execution.
type Result struct {
	Mode        Mode
	Receipts    []*types.Receipt
	StateDigest types.Hash
	GasUsed     uint64

	// Cycles is the block makespan in the timing model.
	Cycles uint64
	// Utilization is busy/(PUs × makespan) — Fig. 15.
	Utilization float64
	// Pipeline aggregates the per-PU pipeline counters.
	Pipeline pipeline.Stats
	// Sched carries the dispatch timeline.
	Sched sched.Result
	// Instructions executed (after hotspot skipping).
	Instructions uint64
	// SkippedInstructions removed by hotspot optimization.
	SkippedInstructions int
	// Obs is the instrumentation report, present only when the replay
	// ran with ReplayOpts.Obs set.
	Obs *obs.Report
	// STM carries the optimistic-execution counters; nil for every mode
	// except ModeBlockSTM.
	STM *obs.STMStats
	// STMConflicts are ModeBlockSTM's runtime-detected dependency edges,
	// checkable against the consensus DAG with VerifySTMConflicts.
	STMConflicts []stm.Conflict
}

// IPC is the block-level instructions-per-cycle over pipeline time.
func (r *Result) IPC() float64 { return r.Pipeline.IPC() }

// Accelerator executes blocks under the MTPU model.
//
// Replay and ReplayWith never mutate the Accelerator, so any number of
// replays may run concurrently on one Accelerator — provided Cfg is not
// reassigned and LearnHotspots is not called while they run (learn first,
// then replay, as ExecuteChain's block-interval model does anyway).
type Accelerator struct {
	Cfg   arch.Config
	Table *hotspot.ContractTable
}

// New returns an accelerator with an empty hotspot Contract Table.
func New(cfg arch.Config) *Accelerator {
	return &Accelerator{Cfg: cfg, Table: hotspot.NewContractTable()}
}

// CollectTraces runs the golden sequential execution against a copy of
// genesis, returning per-transaction traces, the receipts and the final
// state digest every other mode must reproduce.
func CollectTraces(genesis *state.StateDB, block *types.Block) ([]*arch.TxTrace, []*types.Receipt, types.Hash, error) {
	return collectOn(genesis.Copy(), block)
}

// CollectTracesOn is CollectTraces against a caller-owned mutable state:
// the block commits into st, so successive calls over one st replay a
// chained stream sequentially — the oracle for cross-block state
// chaining.
func CollectTracesOn(st *state.StateDB, block *types.Block) ([]*arch.TxTrace, []*types.Receipt, types.Hash, error) {
	return collectOn(st, block)
}

// collectOn is CollectTraces against a mutable state (the block commits).
func collectOn(st *state.StateDB, block *types.Block) ([]*arch.TxTrace, []*types.Receipt, types.Hash, error) {
	e := evm.New(evm.NewBlockContext(block.Header), st)
	col := arch.NewCollector()
	e.Tracer = col

	traces := make([]*arch.TxTrace, len(block.Transactions))
	receipts := make([]*types.Receipt, len(block.Transactions))
	for i, tx := range block.Transactions {
		col.Begin(tx)
		r, err := evm.ApplyTransaction(e, tx, i)
		if err != nil {
			return nil, nil, types.Hash{}, fmt.Errorf("core: tx %d: %w", i, err)
		}
		receipts[i] = r
		traces[i] = col.Finish(r.GasUsed)
	}
	return traces, receipts, st.Digest(), nil
}

// ExecuteChain processes consecutive blocks of a chain (committing each
// to the evolving state) under the given mode. After each block the
// accelerator learns hotspots from its traces — the offline optimization
// the MTPU performs in the idle block interval (§2.2.4) — so later blocks
// run with a warm Contract Table. The returned results are per block.
func (a *Accelerator) ExecuteChain(genesis *state.StateDB, blocks []*types.Block, mode Mode, hotspotTopN int) ([]*Result, error) {
	st := genesis.Copy()
	results := make([]*Result, len(blocks))
	for i, block := range blocks {
		traces, receipts, digest, err := collectOn(st, block)
		if err != nil {
			return nil, fmt.Errorf("core: block %d: %w", i, err)
		}
		res, err := a.Replay(block, traces, receipts, digest, mode)
		if err != nil {
			return nil, fmt.Errorf("core: block %d: %w", i, err)
		}
		results[i] = res
		// Block interval: profile this block's hotspots for the next one.
		a.LearnHotspots(traces, hotspotTopN)
	}
	return results, nil
}

// TPS converts a block's cycle count to transactions per second at the
// given core clock (the paper's prototype runs at 300 MHz).
func TPS(txCount int, cycles uint64, clockHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(txCount) * clockHz / float64(cycles)
}

// PrototypeClockHz is the synthesized MTPU's clock (§4.1).
const PrototypeClockHz = 300e6

// LearnHotspots profiles the traces of the topN most-invoked contracts
// into the Contract Table — the offline optimization the MTPU performs in
// the block-generation interval (§3.4). It returns the hotspot addresses.
func (a *Accelerator) LearnHotspots(traces []*arch.TxTrace, topN int) []types.Address {
	counts := make(map[types.Address]int)
	for _, t := range traces {
		if t.HasSelector {
			counts[t.Contract]++
		}
	}
	hot := topAddresses(counts, topN)
	hotSet := make(map[types.Address]bool, len(hot))
	for _, h := range hot {
		hotSet[h] = true
	}
	for _, t := range traces {
		if t.HasSelector && hotSet[t.Contract] {
			a.Table.Learn(t)
		}
	}
	return hot
}

func topAddresses(counts map[types.Address]int, n int) []types.Address {
	type entry struct {
		addr  types.Address
		count int
	}
	entries := make([]entry, 0, len(counts))
	for a, c := range counts {
		entries = append(entries, entry{a, c})
	}
	// Count desc, address asc — a total order, so the result is
	// deterministic despite the map iteration above.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return string(entries[i].addr[:]) < string(entries[j].addr[:])
	})
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]types.Address, n)
	for i := 0; i < n; i++ {
		out[i] = entries[i].addr
	}
	return out
}

// Execute runs the block under the given mode: functional execution for
// receipts and state, then a timing replay through the scheduled MTPU.
func (a *Accelerator) Execute(genesis *state.StateDB, block *types.Block, mode Mode) (*Result, error) {
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		return nil, err
	}
	return a.Replay(block, traces, receipts, digest, mode)
}

// ReplayOpts adjusts one Replay call without touching the shared
// Accelerator, which keeps concurrent replays on one Accelerator safe.
type ReplayOpts struct {
	// NumPUs overrides Cfg.NumPUs when > 0. Single-PU modes (scalar,
	// sequential+ILP) still run on one PU.
	NumPUs int
	// Plans supplies prebuilt plain plans aligned with the traces (e.g.
	// tracecache.Entry.PlainPlans), so one plan set serves every mode of a
	// sweep. Ignored by ModeSTHotspot, whose plans depend on the Contract
	// Table. Shared plans are only read during replay.
	Plans []*pu.Plan
	// Obs enables cycle-level instrumentation: the collector receives
	// pipeline and scheduler events during the replay and the Result
	// carries the assembled obs.Report. Use a fresh collector per call.
	// nil (the default) keeps every hot path on its uninstrumented,
	// zero-allocation route.
	Obs *obs.Collector
	// Genesis is the pre-block state, required by engines that
	// re-execute transactions functionally instead of replaying traces
	// (those whose NeedsGenesis() is true, e.g. ModeBlockSTM). It is
	// only read, never mutated, so one shared genesis serves concurrent
	// replays.
	Genesis *state.StateDB
	// Head is the pre-block state as an mvstate snapshot — the chained
	// head in server mode (internal/stream), where the pre-block state
	// is the result of folding every committed block into the store. It
	// takes precedence over Genesis for engines that re-execute
	// functionally; when nil, ReplayWith derives a bare snapshot from
	// Genesis so one-shot replays pay no locking.
	Head *mvstate.Snapshot
	// Tel enables host-side telemetry: the replay's wall-clock latency,
	// simulated volume, cache warm/cold splits, scheduler pick rates and
	// STM incarnation/abort rates stream into the shared registry. The
	// registry is concurrency-safe, so — unlike Obs — one instance serves
	// every replay of a sweep. nil (the default) costs the hot path one
	// branch per replay and zero allocations.
	Tel *telemetry.Metrics
}

// Replay runs only the timing model over pre-collected traces (callers
// sweeping many modes over one block avoid re-executing functionally).
func (a *Accelerator) Replay(block *types.Block, traces []*arch.TxTrace, receipts []*types.Receipt, digest types.Hash, mode Mode) (*Result, error) {
	return a.ReplayWith(block, traces, receipts, digest, mode, ReplayOpts{})
}

// procPool recycles Processors between ReplayWith calls so sweeps that
// replay many (block, mode) points reuse warm PU pipelines and State
// Buffer arenas instead of re-growing them from zero per point.
// Processor.Reset guarantees a recycled processor replays
// byte-identically to a fresh one; a pooled processor whose config does
// not match is dropped.
var procPool sync.Pool

func getProcessor(cfg arch.Config) *mtpu.Processor {
	if v := procPool.Get(); v != nil {
		p := v.(*mtpu.Processor)
		if p.Cfg == cfg {
			p.Reset()
			return p
		}
	}
	return mtpu.New(cfg)
}

// ReplayWith is Replay with per-call overrides. It contains no per-mode
// dispatch: the engine registry supplies the mode's configuration, plan
// construction and scheduling; this function only assembles the shared
// Result and instrumentation report around whatever the engine ran.
func (a *Accelerator) ReplayWith(block *types.Block, traces []*arch.TxTrace, receipts []*types.Receipt, digest types.Hash, mode Mode, opts ReplayOpts) (*Result, error) {
	eng, err := engine.Get(mode)
	if err != nil {
		return nil, err
	}
	cfg := a.Cfg
	if opts.NumPUs > 0 {
		cfg.NumPUs = opts.NumPUs
	}
	cfg = eng.Configure(cfg)
	proc := getProcessor(cfg)

	// The typed-nil guards matter: assigning a nil *Collector (or a nil
	// *Metrics' sink) into the interface directly would defeat the
	// sink != nil fast path. Tee is the one attachment point where the
	// cycle-obs collector and the host-telemetry bridge meet; with both
	// absent the sink stays nil and every hot path keeps its
	// uninstrumented route.
	var sink obs.Sink
	if opts.Obs != nil {
		sink = opts.Obs
	}
	if opts.Tel != nil {
		sink = obs.Tee(sink, opts.Tel.Sink())
	}
	if sink != nil {
		proc.SetSink(sink)
	}

	if opts.Plans != nil && len(opts.Plans) != len(traces) {
		return nil, fmt.Errorf("core: %d prebuilt plans for %d traces", len(opts.Plans), len(traces))
	}
	plans, skipped := eng.Plans(a.Table, traces, opts.Plans)

	env := &engine.Env{
		Cfg:      cfg,
		Proc:     proc,
		Plans:    plans,
		Sink:     sink,
		Genesis:  opts.Genesis,
		Head:     opts.Head,
		Receipts: receipts,
		Digest:   digest,
		Tel:      opts.Tel,
	}
	var replayStart time.Time
	if opts.Tel != nil {
		replayStart = time.Now()
	}
	er, err := eng.Run(block, traces, env)
	if err != nil {
		return nil, err
	}
	sres := er.Sched

	var gasUsed uint64
	for _, r := range receipts {
		gasUsed += r.GasUsed
	}
	ps := proc.PipelineStats()
	res := &Result{
		Mode:                mode,
		Receipts:            receipts,
		StateDigest:         digest,
		GasUsed:             gasUsed,
		Cycles:              sres.Makespan,
		Utilization:         sres.Utilization(),
		Pipeline:            ps,
		Sched:               sres,
		Instructions:        ps.Instructions,
		SkippedInstructions: skipped,
	}
	if er.STM != nil {
		res.STM = &er.STM.Stats
		res.STMConflicts = er.STM.Conflicts
	}
	if opts.Tel != nil {
		opts.Tel.ObserveReplay(mode.String(), len(traces), ps.Instructions, sres.Makespan, time.Since(replayStart))
		// Reset zeroes the State Buffer counters, so the post-run values
		// are exactly this replay's warm/cold split.
		opts.Tel.SBufHits.Add(proc.SBuf.Hits)
		opts.Tel.SBufMisses.Add(proc.SBuf.Misses)
		opts.Tel.SchedRefillScans.Add(sres.RefillScans)
	}
	if opts.Obs != nil {
		res.Obs = buildObsReport(cfg, mode.String(), er.SchedWindow, proc, &sres, block, opts.Obs)
		res.Obs.STM = res.STM
	}
	if sink == nil {
		// Instrumented processors are not recycled: the report path walks
		// the processor after the replay, and keeping only sink-free
		// processors in the pool keeps the uninstrumented fast path honest.
		procPool.Put(proc)
	}
	return res, nil
}

// VerifySchedule re-executes the block's transactions in the dispatch
// order of a schedule against a versioned overlay of genesis (the base
// is only read, never copied) and checks the final state digest matches
// sequential execution — the serializability invariant of §3.2
// ("scheduling does not violate blockchain consistency"). It does not
// apply to ModeBlockSTM, whose schedule deliberately overlaps
// conflicting transactions and re-dispatches aborted ones; that mode
// asserts digest identity internally and is cross-checked with
// VerifySTMConflicts instead.
func VerifySchedule(genesis *state.StateDB, block *types.Block, res *Result) error {
	return VerifyScheduleAt(mvstate.SnapshotOf(genesis), block, res)
}

// VerifyScheduleAt is VerifySchedule against an mvstate snapshot of the
// pre-block state — the form the block-stream service uses, where the
// pre-state is a pinned snapshot of the chained head rather than a
// standalone genesis StateDB.
func VerifyScheduleAt(head *mvstate.Snapshot, block *types.Block, res *Result) error {
	order := make([]sched.Dispatch, len(res.Sched.Dispatches))
	copy(order, res.Sched.Dispatches)
	// Commit order: by start time, PU index breaking ties, transaction
	// index last — a total order, so the sort is deterministic (a PU runs
	// one transaction at a time, so (Start, PU) never actually repeats).
	sort.Slice(order, func(i, j int) bool {
		if order[i].Start != order[j].Start {
			return order[i].Start < order[j].Start
		}
		if order[i].PU != order[j].PU {
			return order[i].PU < order[j].PU
		}
		return order[i].Tx < order[j].Tx
	})
	// Structural check: no transaction may start before every DAG
	// predecessor has finished, independent of whether the particular
	// operations happen to commute.
	endOf := make(map[int]uint64, len(order))
	for _, d := range order {
		endOf[d.Tx] = d.End
	}
	for _, d := range order {
		for _, dep := range block.DAG.Deps[d.Tx] {
			end, ok := endOf[dep]
			if !ok {
				return fmt.Errorf("core: tx %d scheduled but its dependency %d was not", d.Tx, dep)
			}
			if d.Start < end {
				return fmt.Errorf("core: tx %d started at %d before dependency %d ended at %d",
					d.Tx, d.Start, dep, end)
			}
		}
	}

	if len(res.Receipts) != len(block.Transactions) {
		return fmt.Errorf("core: %d receipts for %d transactions", len(res.Receipts), len(block.Transactions))
	}
	ov := mvstate.NewOverlay(head, block.Header.Coinbase)
	e := evm.New(evm.NewBlockContext(block.Header), ov)
	seen := make([]bool, len(block.Transactions))
	for _, d := range order {
		if seen[d.Tx] {
			return fmt.Errorf("core: tx %d dispatched twice", d.Tx)
		}
		seen[d.Tx] = true
		r, err := evm.ApplyTransaction(e, block.Transactions[d.Tx], d.Tx)
		if err != nil {
			return fmt.Errorf("core: replay order broke tx %d: %w", d.Tx, err)
		}
		// Receipt identity: the scheduled order must reproduce the
		// sequential outcome per transaction, not just the final digest.
		want := res.Receipts[d.Tx]
		if want.TxIndex != d.Tx {
			return fmt.Errorf("core: receipt %d carries tx index %d", d.Tx, want.TxIndex)
		}
		if r.Status != want.Status || r.GasUsed != want.GasUsed {
			return fmt.Errorf("core: tx %d replayed to status %d / gas %d, sequential receipt says %d / %d",
				d.Tx, r.Status, r.GasUsed, want.Status, want.GasUsed)
		}
	}
	for tx, ok := range seen {
		if !ok {
			return fmt.Errorf("core: tx %d never dispatched", tx)
		}
	}
	keys, vals := ov.WriteSet()
	fee := ov.FeeTotal()
	if got := head.DigestWith(mvstate.BuildOverrides(head, keys, vals, block.Header.Coinbase, &fee)); got != res.StateDigest {
		return fmt.Errorf("core: scheduled state digest %s != sequential %s", got, res.StateDigest)
	}
	return nil
}

// VerifySTMConflicts checks that every conflict the optimistic executor
// detected at run time lies within the transitive closure of the
// consensus DAG: Block-STM may discover dependencies indirectly (through
// intermediate writers), but it must never manufacture a conflict between
// transactions the DAG proves independent.
func VerifySTMConflicts(dag *types.DAG, conflicts []stm.Conflict) error {
	for _, c := range conflicts {
		if !dag.HasPath(c.From, c.To) {
			return fmt.Errorf("core: stm conflict %d→%d outside the consensus DAG's transitive closure", c.From, c.To)
		}
	}
	return nil
}

// VerifyResult applies the serializability check a result's engine
// declares: DAG-order engines get the full VerifySchedule replay,
// internal-digest engines get the conflict cross-check. This is the one
// verification entry point the CLIs and the differential harness share,
// so every engine is held to its declared bar the same way everywhere.
func VerifyResult(genesis *state.StateDB, block *types.Block, res *Result) error {
	return VerifyResultAt(mvstate.SnapshotOf(genesis), block, res)
}

// VerifyResultAt is VerifyResult against an mvstate snapshot of the
// pre-block state (see VerifyScheduleAt).
func VerifyResultAt(head *mvstate.Snapshot, block *types.Block, res *Result) error {
	eng, err := engine.Get(res.Mode)
	if err != nil {
		return err
	}
	switch v := eng.Verify(); v {
	case engine.VerifyDAGOrder:
		if err := VerifyScheduleAt(head, block, res); err != nil {
			return fmt.Errorf("core: %s schedule: %w", res.Mode, err)
		}
	case engine.VerifyInternalDigest:
		if err := VerifySTMConflicts(block.DAG, res.STMConflicts); err != nil {
			return fmt.Errorf("core: %s conflicts: %w", res.Mode, err)
		}
	default:
		return fmt.Errorf("core: %s declares unknown verification %s", res.Mode, v)
	}
	return nil
}
