package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/sched"
	"mtpu/internal/types"
)

// TestTopAddressesPermutationInvariant pins the sort.Slice comparator in
// topAddresses: with heavy count ties, repeated calls over the same map
// (whose iteration order Go randomizes per call) must agree exactly.
func TestTopAddressesPermutationInvariant(t *testing.T) {
	counts := make(map[types.Address]int)
	for i := byte(0); i < 24; i++ {
		counts[types.BytesToAddress([]byte{i})] = int(i) % 3 // eight-way ties
	}
	want := topAddresses(counts, 10)
	for run := 0; run < 20; run++ {
		got := topAddresses(counts, 10)
		if len(got) != len(want) {
			t.Fatalf("run %d: %d addresses, want %d", run, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d: position %d is %s, want %s", run, i, got[i], want[i])
			}
		}
	}
	// The declared order: count desc, address asc within ties.
	for i := 1; i < len(want); i++ {
		ci, cj := counts[want[i-1]], counts[want[i]]
		if ci < cj || (ci == cj && string(want[i-1][:]) >= string(want[i][:])) {
			t.Fatalf("order violated at %d: %v", i, want)
		}
	}
}

// TestLearnHotspotsPermutedTraces feeds the same trace set in forward
// and reversed order: the hotspot list and the learned Contract Table
// (via its canonical JSON form) must be identical, because Learn's merge
// operations are commutative and every ordering choice is sorted.
func TestLearnHotspotsPermutedTraces(t *testing.T) {
	genesis, block := buildBlock(t, 53, 80, 0.2)
	traces, _, _, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	reversed := make([]*arch.TxTrace, len(traces))
	for i, tr := range traces {
		reversed[len(traces)-1-i] = tr
	}

	a1, a2 := New(arch.DefaultConfig()), New(arch.DefaultConfig())
	h1 := a1.LearnHotspots(traces, 8)
	h2 := a2.LearnHotspots(reversed, 8)
	if len(h1) != len(h2) {
		t.Fatalf("hotspot counts differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("hotspot %d differs under permuted traces: %s vs %s", i, h1[i], h2[i])
		}
	}
	j1, err := json.Marshal(a1.Table)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(a2.Table)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("learned Contract Table depends on trace order")
	}
}

// TestVerifySchedulePermutedDispatches pins the dispatch sort inside
// VerifySchedule: the verifier normalizes dispatch order itself, so a
// shuffled (but otherwise honest) dispatch list must still verify, and
// repeatedly so.
func TestVerifySchedulePermutedDispatches(t *testing.T) {
	genesis, block := buildBlock(t, 59, 60, 0.5)
	acc := New(arch.DefaultConfig())
	res, err := acc.Execute(genesis, block, ModeSpatialTemporal)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for run := 0; run < 3; run++ {
		shuffled := *res
		shuffled.Sched.Dispatches = append([]sched.Dispatch{}, res.Sched.Dispatches...)
		rng.Shuffle(len(shuffled.Sched.Dispatches), func(i, j int) {
			d := shuffled.Sched.Dispatches
			d[i], d[j] = d[j], d[i]
		})
		if err := VerifySchedule(genesis, block, &shuffled); err != nil {
			t.Fatalf("run %d: shuffled honest schedule rejected: %v", run, err)
		}
	}
}
