package core

import (
	"sync"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pu"
)

// TestConcurrentReplayMatchesSerial replays one cached trace set from
// many goroutines — across every mode and several PU counts, sharing one
// Accelerator and one prebuilt plan set — and checks each result against
// a serial reference. Run under -race this also proves ReplayWith is
// data-race-free, the property the parallel experiment engine rests on.
func TestConcurrentReplayMatchesSerial(t *testing.T) {
	genesis, block := buildBlock(t, 97, 96, 0.4)
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc := New(arch.DefaultConfig())
	acc.LearnHotspots(traces, 8)
	plans := pu.PlainPlans(traces)

	type point struct {
		mode Mode
		pus  int
	}
	var points []point
	for _, m := range allModes {
		for _, pus := range []int{1, 2, 4} {
			points = append(points, point{m, pus})
		}
	}

	// Serial reference first, on fresh plans so the memoized splits of
	// the shared set are exercised by the concurrent pass too.
	want := make([]uint64, len(points))
	for i, p := range points {
		res, err := acc.ReplayWith(block, traces, receipts, digest, p.mode,
			ReplayOpts{NumPUs: p.pus, Plans: pu.PlainPlans(traces)})
		if err != nil {
			t.Fatalf("serial %v/%d PUs: %v", p.mode, p.pus, err)
		}
		want[i] = res.Cycles
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(points))
	for r := 0; r < rounds; r++ {
		for i, p := range points {
			wg.Add(1)
			go func(i int, p point) {
				defer wg.Done()
				res, err := acc.ReplayWith(block, traces, receipts, digest, p.mode,
					ReplayOpts{NumPUs: p.pus, Plans: plans})
				if err != nil {
					errs <- err
					return
				}
				if res.Cycles != want[i] {
					t.Errorf("%v/%d PUs: concurrent cycles %d, serial %d",
						p.mode, p.pus, res.Cycles, want[i])
				}
			}(i, p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestReplayOptsPlanLengthMismatch checks the guard on prebuilt plans.
func TestReplayOptsPlanLengthMismatch(t *testing.T) {
	genesis, block := buildBlock(t, 98, 16, 0.2)
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	acc := New(arch.DefaultConfig())
	plans := pu.PlainPlans(traces[:len(traces)-1])
	_, err = acc.ReplayWith(block, traces, receipts, digest, ModeSequentialILP,
		ReplayOpts{Plans: plans})
	if err == nil {
		t.Fatal("want error for mismatched plan count, got nil")
	}
}

// TestReplayWithNumPUsOverride checks the per-call PU override leaves
// the shared config untouched and matches a config-level setting.
func TestReplayWithNumPUsOverride(t *testing.T) {
	genesis, block := buildBlock(t, 99, 64, 0.3)
	traces, receipts, digest, err := CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}

	cfg := arch.DefaultConfig()
	cfg.NumPUs = 8
	ref := New(cfg)
	refRes, err := ref.Replay(block, traces, receipts, digest, ModeSpatialTemporal)
	if err != nil {
		t.Fatal(err)
	}

	acc := New(arch.DefaultConfig())
	before := acc.Cfg.NumPUs
	res, err := acc.ReplayWith(block, traces, receipts, digest, ModeSpatialTemporal,
		ReplayOpts{NumPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != refRes.Cycles {
		t.Errorf("override cycles %d, config cycles %d", res.Cycles, refRes.Cycles)
	}
	if acc.Cfg.NumPUs != before {
		t.Errorf("ReplayWith mutated Cfg.NumPUs: %d -> %d", before, acc.Cfg.NumPUs)
	}
}
