package core

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/mtpu"
	"mtpu/internal/obs"
	"mtpu/internal/sched"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// buildObsReport assembles the instrumentation report of one replay
// from three independent sources — the per-PU pipeline counters, the
// scheduler's dispatch timeline and the collector's events — so the
// cycle-accounting invariant (busy + stalls + idle == makespan per PU)
// genuinely cross-checks the layers instead of restating one of them.
// window is the candidate-window size the engine consulted (0 for
// engines that never touch the window), reported by the engine itself
// so this assembly stays mode-agnostic.
func buildObsReport(cfg arch.Config, mode string, window int, proc *mtpu.Processor, sres *sched.Result, block *types.Block, col *obs.Collector) *obs.Report {
	r := &obs.Report{
		Schema:   obs.SchemaVersion,
		Mode:     mode,
		NumPUs:   cfg.NumPUs,
		Makespan: sres.Makespan,
	}

	for i, p := range proc.PUs {
		ps := p.Pipeline().Stats()
		c := obs.PUCycles{
			PU:        i,
			Txs:       p.TxCount,
			Busy:      ps.IssueCycles,
			MissIssue: ps.MissIssueCycles(),
			StallMem:  ps.MemStallCycles(),
			StallLoad: p.LoadCycles,
			Total:     sres.Makespan,
		}
		// The dispatch timeline accounts this PU for BusyCycles[i] cycles
		// (execution plus per-dispatch scheduling overhead); everything
		// beyond the PU's own pipeline and load cycles is that overhead,
		// and the remainder up to the makespan is idle time.
		span := sres.BusyCycles[i]
		if own := c.Busy + c.StallMem + c.StallLoad; span >= own {
			c.StallSched = span - own
		}
		if sres.Makespan >= span {
			c.Idle = sres.Makespan - span
		}
		r.PUs = append(r.PUs, c)
	}

	r.DB.PerPU = col.PUStats(cfg.NumPUs)
	for _, s := range r.DB.PerPU {
		r.DB.Totals.Add(s)
	}
	r.DB.LineSizeHist = col.LineHistogram()
	r.DB.PerContract = col.Contracts()

	r.Sched.Picks = col.Picks()
	r.Sched.Occupancy = col.Occupancy()
	r.Sched.RedundantSteers = sres.RedundantSteers
	r.Sched.Window = window

	r.SBuf = obs.StateBufferStats{Hits: proc.SBuf.Hits, Misses: proc.SBuf.Misses}

	contracts := workload.ContractOf(block)
	r.Spans = make([]obs.Span, len(sres.Dispatches))
	for i, d := range sres.Dispatches {
		r.Spans[i] = obs.Span{
			PU: d.PU, Tx: d.Tx, Start: d.Start, End: d.End,
			Contract: contracts[d.Tx],
		}
	}
	return r
}
