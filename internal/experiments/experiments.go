// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment returns structured rows plus a
// paper-style rendering; cmd/mtpu-bench prints them and bench_test.go
// wraps each in a testing.B benchmark. The per-experiment index lives in
// DESIGN.md; measured-vs-paper numbers live in EXPERIMENTS.md.
package experiments

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/contracts"
	"mtpu/internal/core"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// DefaultSeed keeps every experiment deterministic.
const DefaultSeed = 20230617 // ISCA'23 opening day

// Env carries the shared workload fixtures for one experiment run.
type Env struct {
	Seed    int64
	Gen     *workload.Generator
	Genesis *state.StateDB
}

// NewEnv builds the standard environment.
func NewEnv(seed int64) *Env {
	g := workload.NewGenerator(seed, 8192)
	return &Env{Seed: seed, Gen: g, Genesis: g.Genesis()}
}

// Top8Names lists the evaluated contracts in Table 6 order.
var Top8Names = []string{
	"TetherUSD", "UniswapV2Router02", "FiatTokenProxy", "OpenSea",
	"LinkToken", "SwapRouter", "Dai", "MainchainGatewayProxy",
}

// batchTraces collects golden traces for a same-contract batch.
func (e *Env) batchTraces(contract *contracts.Contract, n int) []*arch.TxTrace {
	block := e.Gen.Batch(contract, n)
	traces, _, _, err := core.CollectTraces(e.Genesis, block)
	if err != nil {
		panic("experiments: batch for " + contract.Name + ": " + err.Error())
	}
	return traces
}

// runPipeline replays traces through a fresh pipeline with the given
// configuration, passes times, and returns the final-pass stats.
func runPipeline(cfg arch.Config, traces []*arch.TxTrace, passes int) pipeline.Stats {
	pipe := pipeline.New(cfg)
	mem := pipeline.FlatMem{Cfg: cfg}
	for pass := 0; pass < passes; pass++ {
		if pass == passes-1 {
			pipe.ResetStats()
		}
		for _, tr := range traces {
			steps, ann := pipeline.Split(pu.PlainPlan(tr).Steps)
			pipe.Execute(steps, ann, mem)
		}
	}
	return pipe.Stats()
}

// scalarPipelineCycles is the no-ILP reference for IPC/speedup ratios.
func scalarPipelineCycles(traces []*arch.TxTrace) uint64 {
	return runPipeline(arch.ScalarConfig(), traces, 1).Cycles
}

// erc20AppSet returns the contracts and selectors BPU's App engine
// accelerates: direct ERC-20 tokens (the proxy's indirection defeats the
// dedicated dataflow).
func erc20AppSet(gen *workload.Generator) (map[types.Address]bool, map[[4]byte]bool) {
	addrs := map[types.Address]bool{}
	for _, name := range []string{"TetherUSD", "Dai", "LinkToken"} {
		addrs[gen.Contract(name).Address] = true
	}
	sels := map[[4]byte]bool{}
	tether := gen.Contract("TetherUSD")
	for _, fname := range []string{"transfer", "approve", "transferFrom", "balanceOf", "totalSupply", "allowance"} {
		sels[tether.Function(fname).Selector] = true
	}
	return addrs, sels
}
