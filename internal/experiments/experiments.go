// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment returns structured rows plus a
// paper-style rendering; cmd/mtpu-bench prints them and bench_test.go
// wraps each in a testing.B benchmark. The per-experiment index lives in
// DESIGN.md; measured-vs-paper numbers live in EXPERIMENTS.md.
package experiments

import (
	"sync"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/state"
	"mtpu/internal/telemetry"
	"mtpu/internal/tracecache"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// DefaultSeed keeps every experiment deterministic.
const DefaultSeed = 20230617 // ISCA'23 opening day

// envAccounts is the funded-account pool every environment draws from.
const envAccounts = 8192

// Env carries the shared workload fixtures for one experiment run.
type Env struct {
	Seed    int64
	Gen     *workload.Generator
	Genesis *state.StateDB

	// Cache shares generated blocks, golden traces and plain plans
	// between experiments (Fig. 14/15/16 sweep the same TokenBlock grid;
	// Fig. 12 and Table 7 replay the same batches).
	Cache *tracecache.Cache

	// Workers is the fan-out of the sweep experiments; <= 1 runs
	// serially. Results are identical at every setting.
	Workers int

	// Stats, when non-nil, accumulates per-experiment counter snapshots
	// (mtpu-bench -stats). Merging is commutative, so the aggregates are
	// identical at every Workers setting.
	Stats *StatsRecorder

	// PerfWall overrides the per-point measurement budget of the perf
	// sweep; <= 0 uses DefaultPerfWall.
	PerfWall time.Duration

	// Tel, when non-nil, receives host-side telemetry from every replay
	// of every experiment: block latency percentiles per engine,
	// sustained tx/s, cache warm/cold splits, STM abort rates. The
	// registry is concurrency-safe, so one instance serves all Workers.
	Tel *telemetry.Metrics
}

// NewEnv builds the standard environment.
func NewEnv(seed int64) *Env {
	g := workload.NewGenerator(seed, envAccounts)
	genesis := g.Genesis()
	return &Env{
		Seed:    seed,
		Gen:     g,
		Genesis: genesis,
		Cache:   tracecache.New(seed, envAccounts, genesis),
	}
}

// Top8Names lists the evaluated contracts in Table 6 order.
var Top8Names = []string{
	"TetherUSD", "UniswapV2Router02", "FiatTokenProxy", "OpenSea",
	"LinkToken", "SwapRouter", "Dai", "MainchainGatewayProxy",
}

// batch returns the cached entry for a same-contract batch.
func (e *Env) batch(name string, n int) *tracecache.Entry {
	return e.Cache.Get(tracecache.Batch(name, n))
}

// batchTraces collects golden traces for a same-contract batch.
func (e *Env) batchTraces(name string, n int) []*arch.TxTrace {
	return e.batch(name, n).Traces
}

// pipePool recycles pipelines between runPipeline calls so repeated
// replays (the sweep grids and the perf loop) reuse warm arenas instead
// of re-growing directory rows and cache nodes from zero each time.
// Reset guarantees a recycled pipeline replays byte-identically to a
// fresh one; a pooled pipeline with the wrong config is dropped.
var pipePool sync.Pool

func getPipeline(cfg arch.Config) *pipeline.Pipeline {
	if v := pipePool.Get(); v != nil {
		p := v.(*pipeline.Pipeline)
		if p.Config() == cfg {
			p.Reset()
			return p
		}
	}
	return pipeline.New(cfg)
}

// runPipeline replays plans through a clean pipeline with the given
// configuration, passes times, and returns the final-pass stats.
func runPipeline(cfg arch.Config, plans []*pu.Plan, passes int) pipeline.Stats {
	pipe := getPipeline(cfg)
	defer pipePool.Put(pipe)
	// One interface value up front: passing the concrete FlatMem would
	// re-box (and heap-allocate) it on every ExecuteHot call.
	var mem pipeline.MemModel = pipeline.FlatMem{Cfg: cfg}
	for pass := 0; pass < passes; pass++ {
		if pass == passes-1 {
			pipe.ResetStats()
		}
		for _, p := range plans {
			steps, ann := p.Split()
			pipe.SetFillMemo(p.Memo)
			pipe.ExecuteHot(steps, ann, p.Hot(), mem)
		}
	}
	return pipe.Stats()
}

// scalarPipelineCycles is the no-ILP reference for IPC/speedup ratios.
func scalarPipelineCycles(plans []*pu.Plan) uint64 {
	return runPipeline(arch.ScalarConfig(), plans, 1).Cycles
}

// erc20AppSet returns the contracts and selectors BPU's App engine
// accelerates: direct ERC-20 tokens (the proxy's indirection defeats the
// dedicated dataflow).
func erc20AppSet(gen *workload.Generator) (map[types.Address]bool, map[[4]byte]bool) {
	addrs := map[types.Address]bool{}
	for _, name := range []string{"TetherUSD", "Dai", "LinkToken"} {
		addrs[gen.Contract(name).Address] = true
	}
	sels := map[[4]byte]bool{}
	tether := gen.Contract("TetherUSD")
	for _, fname := range []string{"transfer", "approve", "transferFrom", "balanceOf", "totalSupply", "allowance"} {
		sels[tether.Function(fname).Selector] = true
	}
	return addrs, sels
}
