// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment returns structured rows plus a
// paper-style rendering; cmd/mtpu-bench prints them and bench_test.go
// wraps each in a testing.B benchmark. The per-experiment index lives in
// DESIGN.md; measured-vs-paper numbers live in EXPERIMENTS.md.
package experiments

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/state"
	"mtpu/internal/tracecache"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// DefaultSeed keeps every experiment deterministic.
const DefaultSeed = 20230617 // ISCA'23 opening day

// envAccounts is the funded-account pool every environment draws from.
const envAccounts = 8192

// Env carries the shared workload fixtures for one experiment run.
type Env struct {
	Seed    int64
	Gen     *workload.Generator
	Genesis *state.StateDB

	// Cache shares generated blocks, golden traces and plain plans
	// between experiments (Fig. 14/15/16 sweep the same TokenBlock grid;
	// Fig. 12 and Table 7 replay the same batches).
	Cache *tracecache.Cache

	// Workers is the fan-out of the sweep experiments; <= 1 runs
	// serially. Results are identical at every setting.
	Workers int

	// Stats, when non-nil, accumulates per-experiment counter snapshots
	// (mtpu-bench -stats). Merging is commutative, so the aggregates are
	// identical at every Workers setting.
	Stats *StatsRecorder
}

// NewEnv builds the standard environment.
func NewEnv(seed int64) *Env {
	g := workload.NewGenerator(seed, envAccounts)
	genesis := g.Genesis()
	return &Env{
		Seed:    seed,
		Gen:     g,
		Genesis: genesis,
		Cache:   tracecache.New(seed, envAccounts, genesis),
	}
}

// Top8Names lists the evaluated contracts in Table 6 order.
var Top8Names = []string{
	"TetherUSD", "UniswapV2Router02", "FiatTokenProxy", "OpenSea",
	"LinkToken", "SwapRouter", "Dai", "MainchainGatewayProxy",
}

// batch returns the cached entry for a same-contract batch.
func (e *Env) batch(name string, n int) *tracecache.Entry {
	return e.Cache.Get(tracecache.Batch(name, n))
}

// batchTraces collects golden traces for a same-contract batch.
func (e *Env) batchTraces(name string, n int) []*arch.TxTrace {
	return e.batch(name, n).Traces
}

// runPipeline replays plans through a fresh pipeline with the given
// configuration, passes times, and returns the final-pass stats.
func runPipeline(cfg arch.Config, plans []*pu.Plan, passes int) pipeline.Stats {
	pipe := pipeline.New(cfg)
	mem := pipeline.FlatMem{Cfg: cfg}
	for pass := 0; pass < passes; pass++ {
		if pass == passes-1 {
			pipe.ResetStats()
		}
		for _, p := range plans {
			steps, ann := p.Split()
			pipe.Execute(steps, ann, mem)
		}
	}
	return pipe.Stats()
}

// scalarPipelineCycles is the no-ILP reference for IPC/speedup ratios.
func scalarPipelineCycles(plans []*pu.Plan) uint64 {
	return runPipeline(arch.ScalarConfig(), plans, 1).Cycles
}

// erc20AppSet returns the contracts and selectors BPU's App engine
// accelerates: direct ERC-20 tokens (the proxy's indirection defeats the
// dedicated dataflow).
func erc20AppSet(gen *workload.Generator) (map[types.Address]bool, map[[4]byte]bool) {
	addrs := map[types.Address]bool{}
	for _, name := range []string{"TetherUSD", "Dai", "LinkToken"} {
		addrs[gen.Contract(name).Address] = true
	}
	sels := map[[4]byte]bool{}
	tether := gen.Contract("TetherUSD")
	for _, fname := range []string{"transfer", "approve", "transferFrom", "balanceOf", "totalSupply", "allowance"} {
		sels[tether.Function(fname).Selector] = true
	}
	return addrs, sels
}
