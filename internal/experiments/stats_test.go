package experiments

import (
	"reflect"
	"strings"
	"testing"

	"mtpu/internal/arch/pipeline"
	"mtpu/internal/core"
)

// TestStatsRecorderParallelMatchesSerial extends the determinism
// invariant to the counter snapshots: aggregates merged from 8 workers
// must equal the serial run exactly (merging is a commutative sum).
func TestStatsRecorderParallelMatchesSerial(t *testing.T) {
	serial, par := twoEnvs()
	serial.Stats = NewStatsRecorder()
	par.Stats = NewStatsRecorder()

	modes := []core.Mode{core.ModeSynchronous, core.ModeSTHotspot}
	pus := []int{1, 4}
	ratios := []float64{0, 0.5, 1.0}
	SchedulingSweep(serial, modes, pus, ratios)
	SchedulingSweep(par, modes, pus, ratios)

	want, got := serial.Stats.Snapshots(), par.Stats.Snapshots()
	if len(want) == 0 {
		t.Fatal("serial sweep recorded no snapshots")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel snapshots differ from serial:\nserial: %+v\nparallel: %+v", want, got)
	}
	if RenderStats(serial.Stats) != RenderStats(par.Stats) {
		t.Error("rendered stats differ")
	}
}

func TestStatsRecorderLabelsAndMerge(t *testing.T) {
	r := NewStatsRecorder()
	env := NewEnv(DefaultSeed)
	env.Stats = r
	_ = Fig12(env)

	labels := r.Labels()
	want := []string{"fig12/+DF", "fig12/+IF", "fig12/F&D"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	for _, l := range labels {
		s := r.Get(l)
		if s.Points != len(Top8Names) {
			t.Errorf("%s: %d points, want one per contract (%d)", l, s.Points, len(Top8Names))
		}
		if s.Cycles == 0 || s.Pipeline.Instructions == 0 {
			t.Errorf("%s: empty snapshot %+v", l, s)
		}
		if s.Pipeline.IssueCycles > s.Pipeline.Cycles {
			t.Errorf("%s: issue cycles exceed total: %+v", l, s.Pipeline)
		}
	}
	if got := r.Get("no-such-label"); got != (Snapshot{}) {
		t.Errorf("absent label returned %+v", got)
	}

	out := RenderStats(r)
	for _, l := range labels {
		if !strings.Contains(out, l) {
			t.Errorf("rendered stats missing label %s:\n%s", l, out)
		}
	}
}

// TestRecordNoopWhenDisabled: the default environment (Stats == nil)
// must not panic or allocate a recorder as experiments run.
func TestRecordNoopWhenDisabled(t *testing.T) {
	env := NewEnv(DefaultSeed)
	env.record("x", pipeline.Stats{}, 1)
	if env.Stats != nil {
		t.Error("record materialized a recorder")
	}
}
