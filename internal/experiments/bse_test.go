package experiments

import "testing"

func TestBSESweepShape(t *testing.T) {
	points := BSESweep(testEnv)
	want := len(BSEDepRatios) * len(BSEPUCounts)
	if len(points) != want {
		t.Fatalf("%d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.Txs != SchedBlockSize {
			t.Errorf("ratio %.1f pus %d: txs %d", p.TargetRatio, p.PUs, p.Txs)
		}
		if p.Batches < 1 || p.Batches > p.Txs {
			t.Errorf("ratio %.1f pus %d: %d batches for %d txs",
				p.TargetRatio, p.PUs, p.Batches, p.Txs)
		}
		if p.SeqCycles == 0 || p.SyncCycles == 0 || p.STCycles == 0 || p.BSECycles == 0 {
			t.Errorf("ratio %.1f pus %d: zero cycle count %+v", p.TargetRatio, p.PUs, p)
		}
		if p.SyncSpeedup <= 0 || p.STSpeedup <= 0 || p.BSESpeedup <= 0 {
			t.Errorf("ratio %.1f pus %d: non-positive speedup", p.TargetRatio, p.PUs)
		}
		// Barriers cannot beat the dynamic schedulers: batch-execute pays
		// for the slowest PU of every batch, so the work-conserving
		// spatio-temporal schedule is a lower bound on its cycles.
		if p.BSECycles < p.STCycles {
			t.Errorf("ratio %.1f pus %d: bse %d cycles beat spatial-temporal %d",
				p.TargetRatio, p.PUs, p.BSECycles, p.STCycles)
		}
	}
	// The batch count is a property of the DAG alone: constant across PU
	// counts at one ratio, and monotonically non-decreasing in the ratio.
	batchAt := map[float64]int{}
	for _, p := range points {
		if prev, ok := batchAt[p.TargetRatio]; ok && prev != p.Batches {
			t.Errorf("ratio %.1f: batch count varies with PUs (%d vs %d)",
				p.TargetRatio, prev, p.Batches)
		}
		batchAt[p.TargetRatio] = p.Batches
	}
	for i := 1; i < len(BSEDepRatios); i++ {
		lo, hi := BSEDepRatios[i-1], BSEDepRatios[i]
		if batchAt[lo] > batchAt[hi] {
			t.Errorf("batches fell from %d to %d as dep ratio rose %.1f→%.1f",
				batchAt[lo], batchAt[hi], lo, hi)
		}
	}
	if out := RenderBSE(points); len(out) == 0 {
		t.Error("empty rendering")
	}
}
