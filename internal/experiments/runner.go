package experiments

import (
	"sync"
	"sync/atomic"
)

// forEachPoint runs fn(0..n-1), fanning out over the environment's
// worker count. Every job writes only its own output slot and reads only
// shared immutable inputs (the trace cache's entries), so the result is
// byte-identical to the serial run at any worker count.
func (e *Env) forEachPoint(n int, fn func(i int)) {
	forEach(e.Workers, n, fn)
}

// forEach distributes indices over a worker pool. workers <= 1 runs
// inline. A panic in any job is re-raised in the caller after the pool
// drains, matching the serial behaviour.
func forEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
