package experiments

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/workload"
)

// AblationRow is one knob setting and the full-system speedup under it.
type AblationRow struct {
	Knob    string
	Setting string
	Speedup float64 // ModeSTHotspot (4 PUs) vs scalar baseline
}

// Ablations sweeps the design choices DESIGN.md calls out, one at a
// time, on a fixed mixed-dependency token block: the ILP features
// (DB cache / forwarding / folding), the candidate window m, the
// Call_Contract residency, the State Buffer capacity and the scheduling
// overhead. Every row answers "what does the full system lose if this
// piece is weakened?".
func Ablations(env *Env) []AblationRow {
	block := env.Gen.TokenBlock(160, 0.3)
	if _, err := workload.BuildDAG(env.Genesis, block); err != nil {
		panic(fmt.Sprintf("experiments: ablation dag: %v", err))
	}
	traces, receipts, digest, err := core.CollectTraces(env.Genesis, block)
	if err != nil {
		panic(err)
	}

	// Scalar reference is independent of the knobs under test.
	scalarAcc := core.New(arch.DefaultConfig())
	scalarRes, err := scalarAcc.Replay(block, traces, receipts, digest, core.ModeScalar)
	if err != nil {
		panic(err)
	}
	scalar := float64(scalarRes.Cycles)

	measure := func(knob, setting string, mutate func(*arch.Config)) AblationRow {
		cfg := arch.DefaultConfig()
		mutate(&cfg)
		acc := core.New(cfg)
		acc.LearnHotspots(traces, 8)
		res, err := acc.Replay(block, traces, receipts, digest, core.ModeSTHotspot)
		if err != nil {
			panic(err)
		}
		return AblationRow{Knob: knob, Setting: setting, Speedup: scalar / float64(res.Cycles)}
	}

	var rows []AblationRow
	rows = append(rows, measure("baseline", "full design", func(*arch.Config) {}))

	rows = append(rows,
		measure("ILP", "no DB cache (F&D off)", func(c *arch.Config) {
			c.EnableDBCache = false
			c.EnableForwarding = false
			c.EnableFolding = false
		}),
		measure("ILP", "no forwarding (DF off)", func(c *arch.Config) {
			c.EnableForwarding = false
			c.EnableFolding = false
		}),
		measure("ILP", "no folding (IF off)", func(c *arch.Config) {
			c.EnableFolding = false
		}),
	)

	for _, m := range []int{1, 2, 4, 8, 16} {
		rows = append(rows, measure("window m", itoa(m), func(c *arch.Config) {
			c.CandidateWindow = m
		}))
	}

	for _, r := range []int{1, 2, 8} {
		rows = append(rows, measure("residency", itoa(r), func(c *arch.Config) {
			c.ContractResidency = r
		}))
	}

	for _, s := range []int{16, 256, 4096} {
		rows = append(rows, measure("state buffer", itoa(s), func(c *arch.Config) {
			c.StateBufferSlots = s
		}))
	}

	for _, o := range []uint64{0, 4, 64, 512} {
		rows = append(rows, measure("sched overhead", fmt.Sprintf("%d cyc", o), func(c *arch.Config) {
			c.ScheduleOverhead = o
		}))
	}

	for _, e := range []int{64, 512, 2048} {
		rows = append(rows, measure("DB entries", itoa(e), func(c *arch.Config) {
			c.DBCacheEntries = e
		}))
	}
	return rows
}

// RenderAblations formats the ablation report.
func RenderAblations(rows []AblationRow) string {
	t := metrics.NewTable("Ablations — full-system speedup (4 PUs, ST+redundancy+hotspot, dep 0.3)",
		"knob", "setting", "speedup")
	for _, r := range rows {
		t.Row(r.Knob, r.Setting, metrics.X(r.Speedup))
	}
	return t.String()
}
