package experiments

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/tracecache"
)

// AblationRow is one knob setting and the full-system speedup under it.
type AblationRow struct {
	Knob    string
	Setting string
	Speedup float64 // ModeSTHotspot (4 PUs) vs scalar baseline
}

// ablationSpec is one knob setting to measure.
type ablationSpec struct {
	knob    string
	setting string
	mutate  func(*arch.Config)
}

// ablationSpecs enumerates the rows of the ablation sweep.
func ablationSpecs() []ablationSpec {
	specs := []ablationSpec{
		{"baseline", "full design", func(*arch.Config) {}},
		{"ILP", "no DB cache (F&D off)", func(c *arch.Config) {
			c.EnableDBCache = false
			c.EnableForwarding = false
			c.EnableFolding = false
		}},
		{"ILP", "no forwarding (DF off)", func(c *arch.Config) {
			c.EnableForwarding = false
			c.EnableFolding = false
		}},
		{"ILP", "no folding (IF off)", func(c *arch.Config) {
			c.EnableFolding = false
		}},
	}
	for _, m := range []int{1, 2, 4, 8, 16} {
		m := m
		specs = append(specs, ablationSpec{"window m", itoa(m), func(c *arch.Config) {
			c.CandidateWindow = m
		}})
	}
	for _, r := range []int{1, 2, 8} {
		r := r
		specs = append(specs, ablationSpec{"residency", itoa(r), func(c *arch.Config) {
			c.ContractResidency = r
		}})
	}
	for _, s := range []int{16, 256, 4096} {
		s := s
		specs = append(specs, ablationSpec{"state buffer", itoa(s), func(c *arch.Config) {
			c.StateBufferSlots = s
		}})
	}
	for _, o := range []uint64{0, 4, 64, 512} {
		o := o
		specs = append(specs, ablationSpec{"sched overhead", fmt.Sprintf("%d cyc", o), func(c *arch.Config) {
			c.ScheduleOverhead = o
		}})
	}
	for _, e := range []int{64, 512, 2048} {
		e := e
		specs = append(specs, ablationSpec{"DB entries", itoa(e), func(c *arch.Config) {
			c.DBCacheEntries = e
		}})
	}
	return specs
}

// Ablations sweeps the design choices DESIGN.md calls out, one at a
// time, on a fixed mixed-dependency token block: the ILP features
// (DB cache / forwarding / folding), the candidate window m, the
// Call_Contract residency, the State Buffer capacity and the scheduling
// overhead. Every row answers "what does the full system lose if this
// piece is weakened?". Knob settings fan out over env.Workers; they
// share one cached trace set and one scalar reference.
func Ablations(env *Env) []AblationRow {
	e := env.Cache.Get(tracecache.Token(160, 0.3))

	// Scalar reference is independent of the knobs under test.
	scalarAcc := core.New(arch.DefaultConfig())
	scalarRes, err := scalarAcc.ReplayWith(e.Block, e.Traces, e.Receipts, e.Digest,
		core.ModeScalar, core.ReplayOpts{Plans: e.PlainPlans(), Tel: env.Tel})
	if err != nil {
		panic(err)
	}
	scalar := float64(scalarRes.Cycles)

	specs := ablationSpecs()
	rows := make([]AblationRow, len(specs))
	env.forEachPoint(len(specs), func(i int) {
		spec := specs[i]
		cfg := arch.DefaultConfig()
		spec.mutate(&cfg)
		acc := core.New(cfg)
		acc.LearnHotspots(e.Traces, 8)
		res, err := acc.Replay(e.Block, e.Traces, e.Receipts, e.Digest, core.ModeSTHotspot)
		if err != nil {
			panic(err)
		}
		rows[i] = AblationRow{Knob: spec.knob, Setting: spec.setting, Speedup: scalar / float64(res.Cycles)}
	})
	return rows
}

// RenderAblations formats the ablation report.
func RenderAblations(rows []AblationRow) string {
	t := metrics.NewTable("Ablations — full-system speedup (4 PUs, ST+redundancy+hotspot, dep 0.3)",
		"knob", "setting", "speedup")
	for _, r := range rows {
		t.Row(r.Knob, r.Setting, metrics.X(r.Speedup))
	}
	return t.String()
}
