package experiments

import (
	"strings"
	"testing"

	"mtpu/internal/engine"
	"mtpu/internal/workload"
)

func TestScenarioSweepCoversGrid(t *testing.T) {
	points := ScenarioSweep(testEnv)
	modes := engine.Modes()
	want := len(workload.Scenarios) * len(ScenarioPUs) * len(modes)
	if len(points) != want {
		t.Fatalf("%d points, want %d (scenarios × PUs × engines)", len(points), want)
	}
	i := 0
	for _, s := range workload.Scenarios {
		for _, pus := range ScenarioPUs {
			for _, m := range modes {
				p := points[i]
				i++
				if p.Scenario != s || p.PUs != pus || p.Engine != m.String() {
					t.Fatalf("point %d: got %s/%s/pus%d, want %s/%s/pus%d",
						i-1, p.Scenario, p.Engine, p.PUs, s, m, pus)
				}
				if p.Cycles == 0 || p.Speedup <= 0 || p.TxPerSec <= 0 {
					t.Errorf("%s/%s pus %d: empty measurement %+v", s, m, pus, p)
				}
			}
		}
	}
	// The first registered engine anchors each cell's speedup column.
	for c := 0; c < len(points); c += len(modes) {
		if points[c].Speedup != 1.0 {
			t.Errorf("%s pus %d: anchor speedup %.2f, want 1.0",
				points[c].Scenario, points[c].PUs, points[c].Speedup)
		}
	}
	out := RenderScenarios(points)
	if out == "" {
		t.Fatal("empty rendering")
	}
	if !strings.Contains(out, "hotspot-optimization delta") {
		t.Error("rendering missing the hotspot delta table")
	}
	for _, s := range workload.Scenarios {
		if !strings.Contains(out, s) {
			t.Errorf("rendering missing scenario %s", s)
		}
	}
}

// TestScenarioSweepDeterministic: simulated cycles (and hence speedups)
// must be identical across runs — the table is regenerable data, and
// only the wall-clock tx/s column is allowed to vary.
func TestScenarioSweepDeterministic(t *testing.T) {
	a := ScenarioSweep(testEnv)
	b := ScenarioSweep(testEnv)
	if len(a) != len(b) {
		t.Fatalf("%d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i].Cycles != b[i].Cycles || a[i].Speedup != b[i].Speedup {
			t.Errorf("point %d (%s/%s pus %d): cycles %d/%.3f vs %d/%.3f",
				i, a[i].Scenario, a[i].Engine, a[i].PUs,
				a[i].Cycles, a[i].Speedup, b[i].Cycles, b[i].Speedup)
		}
	}
}
