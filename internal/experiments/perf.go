package experiments

import (
	"fmt"
	"strings"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/tracecache"
)

// PerfPoint is one host-side throughput measurement of the simulator hot
// loop: how many transactions (and instructions) the timing model replays
// per wall-second. Unlike every other artifact, these numbers measure the
// simulator itself, not the simulated hardware — they are the experiment-
// scale budget of ROADMAP item 5 and the regression gate of `make perf`.
type PerfPoint struct {
	Name string `json:"name"`
	// Txs and Instructions are the per-repetition simulated volume.
	Txs          int    `json:"txs"`
	Instructions uint64 `json:"instructions"`
	// Reps is how many repetitions the calibrated loop ran.
	Reps   int     `json:"reps"`
	WallMS float64 `json:"wall_ms"`
	// TxPerSec is the headline metric: simulated transactions per
	// wall-second (Txs × Reps / wall).
	TxPerSec float64 `json:"tx_per_sec"`
	// InstrPerSec is simulated instructions per wall-second.
	InstrPerSec float64 `json:"instr_per_sec"`
}

// DefaultPerfWall is the default per-point measurement budget: reps are
// calibrated so each point runs at least this long, which keeps the tx/s
// estimate stable without making `make perf` slow. Profile-guided runs
// raise it (mtpu-bench -perf-wall) so the hot loop dominates setup in
// the CPU profile.
const DefaultPerfWall = 250 * time.Millisecond

// perfCase is one measurable hot-loop workload. run executes exactly one
// repetition (replaying txs transactions) and returns the instructions
// it simulated.
type perfCase struct {
	name string
	txs  int
	run  func() uint64
}

// replayCase builds a full-replay perf case: one repetition is one
// core.ReplayWith of the entry's block under the mode — scheduling,
// PU/pipeline replay and result assembly included, exactly what the
// sweep experiments pay per grid point.
func replayCase(name string, env *Env, spec tracecache.Spec, mode core.Mode, pus int) perfCase {
	entry := env.Cache.Get(spec)
	acc := core.New(arch.DefaultConfig())
	// Genesis is only read, and only by engines that re-execute
	// functionally (NeedsGenesis), so it is safe to supply always.
	opts := core.ReplayOpts{NumPUs: pus, Plans: entry.PlainPlans(), Genesis: env.Genesis, Tel: env.Tel}
	return perfCase{
		name: name,
		txs:  len(entry.Block.Transactions),
		run: func() uint64 {
			res, err := acc.ReplayWith(entry.Block, entry.Traces, entry.Receipts,
				entry.Digest, mode, opts)
			if err != nil {
				panic(fmt.Sprintf("experiments: perf %s: %v", name, err))
			}
			return res.Instructions
		},
	}
}

// PerfSweep measures simulated-tx/s over the hot-loop workload classes:
// the fig13-class single-PU pipeline batch replay (DB cache + fill
// unit), the fig14-class scheduled multi-PU replays (spatio-temporal
// scheduler + discrete-event engine), the fig16-class reuse replay
// (shared State Buffer), and the optimistic Block-STM replay (functional
// re-execution + multi-version reads). Points always run serially — the
// wall clock is the measurement — so env.Workers is ignored.
func PerfSweep(env *Env) []PerfPoint { return PerfSweepOnly(env, "") }

// PerfSweepOnly is PerfSweep restricted to points whose name contains
// only (empty runs everything) — the profiling aid behind mtpu-bench
// -perf-only, so a CPU profile isolates one workload class.
func PerfSweepOnly(env *Env, only string) []PerfPoint {
	// Cases are built lazily so a -perf-only profile contains only the
	// selected workload's setup (trace building hashes enough to drown
	// the hot loop in a whole-process profile otherwise).
	cases := []struct {
		name  string
		build func() perfCase
	}{
		{"fig13/pipeline-batch", func() perfCase { return pipelineBatchCase(env) }},
		{"fig14/st-dep0.3-4pu", func() perfCase {
			return replayCase("fig14/st-dep0.3-4pu", env, tracecache.Token(SchedBlockSize, 0.3), core.ModeSpatialTemporal, 4)
		}},
		{"fig14/st-dep0.6-8pu", func() perfCase {
			return replayCase("fig14/st-dep0.6-8pu", env, tracecache.Token(SchedBlockSize, 0.6), core.ModeSpatialTemporal, 8)
		}},
		{"fig16/redundancy-dep0.3-4pu", func() perfCase {
			return replayCase("fig16/redundancy-dep0.3-4pu", env, tracecache.Token(SchedBlockSize, 0.3), core.ModeSTRedundancy, 4)
		}},
		{"stm/dep0.3-4pu", func() perfCase {
			return replayCase("stm/dep0.3-4pu", env, tracecache.Token(SchedBlockSize, 0.3), core.ModeBlockSTM, 4)
		}},
	}
	minWall := env.PerfWall
	if minWall <= 0 {
		minWall = DefaultPerfWall
	}
	var out []PerfPoint
	for _, c := range cases {
		if only != "" && !strings.Contains(c.name, only) {
			continue
		}
		out = append(out, measure(c.build(), minWall))
	}
	return out
}

// pipelineBatchCase replays the TOP-8 same-contract batches through one
// warmed pipeline — the fig13-class inner loop with no scheduler around
// it, isolating the per-instruction replay cost.
func pipelineBatchCase(env *Env) perfCase {
	txs := 0
	entries := make([]*tracecache.Entry, len(Top8Names))
	for i, name := range Top8Names {
		entries[i] = env.batch(name, Fig13BatchSize)
		txs += Fig13BatchSize
	}
	cfg := arch.DefaultConfig()
	return perfCase{
		name: "fig13/pipeline-batch",
		txs:  txs,
		run: func() uint64 {
			var instr uint64
			for _, e := range entries {
				st := runPipeline(cfg, e.PlainPlans(), 1)
				instr += st.Instructions
			}
			return instr
		},
	}
}

// measure calibrates and times one case: a warmup repetition (also the
// instruction count), then batches of repetitions until the point has
// run for at least perfMinWall.
func measure(c perfCase, minWall time.Duration) PerfPoint {
	instr := c.run() // warmup + instruction count
	reps := 0
	start := time.Now()
	batch := 1
	for {
		for i := 0; i < batch; i++ {
			c.run()
		}
		reps += batch
		if el := time.Since(start); el >= minWall {
			wall := el.Seconds()
			return PerfPoint{
				Name:         c.name,
				Txs:          c.txs,
				Instructions: instr,
				Reps:         reps,
				WallMS:       wall * 1000,
				TxPerSec:     float64(c.txs) * float64(reps) / wall,
				InstrPerSec:  float64(instr) * float64(reps) / wall,
			}
		} else if el > 0 {
			// Grow the batch so the loop re-checks the clock a handful of
			// times per point rather than per repetition.
			remaining := minWall - el
			perRep := el / time.Duration(reps)
			if perRep <= 0 {
				perRep = time.Microsecond
			}
			batch = int(remaining/perRep)/2 + 1
		}
	}
}

// RenderPerf formats the perf sweep.
func RenderPerf(points []PerfPoint) string {
	t := metrics.NewTable("Perf — simulator hot-loop throughput (host wall clock)",
		"workload", "txs/rep", "reps", "wall ms", "tx/s", "Minstr/s")
	for _, p := range points {
		t.Row(p.Name, p.Txs, p.Reps, p.WallMS, p.TxPerSec, p.InstrPerSec/1e6)
	}
	return t.String()
}
