package experiments

import (
	"fmt"
	"sync"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/metrics"
	"mtpu/internal/tracecache"
)

// BSEDepRatios and BSEPUCounts reuse the optimistic sweep's grid so the
// two proof-of-extensibility rows in the report are directly comparable.
var (
	BSEDepRatios = STMDepRatios
	BSEPUCounts  = STMPUCounts
)

// BSEPoint is one (dep ratio, PU count) measurement of the
// batch-schedule-execute engine against the synchronous and
// spatio-temporal schedulers, all normalised to single-PU sequential
// execution. Batches is the number of conflict-free batches the DAG
// partitioned into (== its critical path length).
type BSEPoint struct {
	TargetRatio float64 `json:"target_ratio"`
	DepRatio    float64 `json:"dep_ratio"` // achieved ratio from the DAG
	PUs         int     `json:"pus"`
	Txs         int     `json:"txs"`
	Batches     int     `json:"batches"`

	SeqCycles  uint64 `json:"seq_cycles"` // single-PU sequential baseline
	SyncCycles uint64 `json:"sync_cycles"`
	STCycles   uint64 `json:"st_cycles"`
	BSECycles  uint64 `json:"bse_cycles"`

	SyncSpeedup float64 `json:"sync_speedup"`
	STSpeedup   float64 `json:"st_speedup"`
	BSESpeedup  float64 `json:"bse_speedup"`
}

// bsePrep mirrors stmPrep: cached trace entry, accelerator, sequential
// baseline and the precomputed batch count, built once per dep ratio.
type bsePrep struct {
	once     sync.Once
	entry    *tracecache.Entry
	acc      *core.Accelerator
	base     uint64
	achieved float64
	batches  int
}

func (p *bsePrep) init(env *Env, target float64) {
	p.once.Do(func() {
		p.entry = env.Cache.Get(tracecache.Token(SchedBlockSize, target))
		p.acc = core.New(arch.DefaultConfig())

		baseRes, err := p.acc.ReplayWith(p.entry.Block, p.entry.Traces,
			p.entry.Receipts, p.entry.Digest, core.ModeSequentialILP,
			core.ReplayOpts{Plans: p.entry.PlainPlans(), Tel: env.Tel})
		if err != nil {
			panic(err)
		}
		p.base = baseRes.Cycles
		p.achieved = p.entry.Block.DAG.DependentRatio()
		p.batches = len(engine.BSEBatches(p.entry.Block.DAG))
	})
}

// BSESweep measures the pre-scheduled batch-execute engine over the same
// dependency-ratio × PU-count grid as the optimistic sweep. Grid points
// fan out over env.Workers; each point writes only its own output slot.
func BSESweep(env *Env) []BSEPoint {
	preps := make([]bsePrep, len(BSEDepRatios))
	out := make([]BSEPoint, len(BSEDepRatios)*len(BSEPUCounts))
	env.forEachPoint(len(out), func(i int) {
		pi := i % len(BSEPUCounts)
		ri := i / len(BSEPUCounts)
		target, pus := BSEDepRatios[ri], BSEPUCounts[pi]

		prep := &preps[ri]
		prep.init(env, target)
		e := prep.entry

		replay := func(mode core.Mode) *core.Result {
			res, err := prep.acc.ReplayWith(e.Block, e.Traces, e.Receipts,
				e.Digest, mode, core.ReplayOpts{NumPUs: pus, Plans: e.PlainPlans(), Tel: env.Tel})
			if err != nil {
				panic(err)
			}
			env.record("bse/"+mode.String(), res.Pipeline, res.Cycles)
			return res
		}

		syncRes := replay(core.ModeSynchronous)
		stRes := replay(core.ModeSpatialTemporal)
		bseRes := replay(core.ModeBSE)

		out[i] = BSEPoint{
			TargetRatio: target,
			DepRatio:    prep.achieved,
			PUs:         pus,
			Txs:         len(e.Block.Transactions),
			Batches:     prep.batches,
			SeqCycles:   prep.base,
			SyncCycles:  syncRes.Cycles,
			STCycles:    stRes.Cycles,
			BSECycles:   bseRes.Cycles,
			SyncSpeedup: float64(prep.base) / float64(syncRes.Cycles),
			STSpeedup:   float64(prep.base) / float64(stRes.Cycles),
			BSESpeedup:  float64(prep.base) / float64(bseRes.Cycles),
		}
	})
	return out
}

// RenderBSE renders the sweep as a ratio × PU grid of speedups with the
// batch count that fixes the engine's barrier count.
func RenderBSE(points []BSEPoint) string {
	t := metrics.NewTable(
		fmt.Sprintf("batch-schedule-execute — speedup vs 1-PU sequential (%d txs)", SchedBlockSize),
		"dep ratio", "PUs", "batches", "sync", "spatial-temporal", "batch-schedule-execute")
	for _, p := range points {
		t.Row(fmt.Sprintf("%.1f", p.TargetRatio), p.PUs, p.Batches,
			metrics.X(p.SyncSpeedup), metrics.X(p.STSpeedup), metrics.X(p.BSESpeedup))
	}
	return t.String()
}
