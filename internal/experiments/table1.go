package experiments

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/metrics"
	"mtpu/internal/tracecache"
)

// Table1Row reproduces the execution-overhead row of Table 1: the share
// of total execution time attributable to smart-contract transactions at
// a given SCT count share (Ethereum 2017-2021 moved from 37% SCTs/72%
// overhead to 68% SCTs/91% overhead).
type Table1Row struct {
	Year          string
	SCTShare      float64
	OverheadShare float64
}

// table1Years mirrors the paper's Ethereum statistics.
var table1Years = []struct {
	year  string
	share float64
}{
	{"2017", 0.3723},
	{"2018", 0.5057},
	{"2019", 0.6352},
	{"2020", 0.6794},
	{"2021", 0.6840},
}

// Table1 measures the SCT execution-overhead share on a scalar PU for
// each year's SCT count share. Years fan out over env.Workers.
func Table1(env *Env) []Table1Row {
	rows := make([]Table1Row, len(table1Years))
	env.forEachPoint(len(rows), func(i int) {
		y := table1Years[i]
		e := env.Cache.Get(tracecache.SCT(200, y.share))
		cfg := arch.ScalarConfig()
		unit := pu.New(0, cfg)
		mem := pipeline.FlatMem{Cfg: cfg}
		var sct, total uint64
		for j, plan := range e.PlainPlans() {
			c := unit.Run(plan, mem).Total
			total += c
			if !e.Traces[j].IsTransfer {
				sct += c
			}
		}
		rows[i] = Table1Row{
			Year:          y.year,
			SCTShare:      y.share,
			OverheadShare: float64(sct) / float64(total),
		}
	})
	return rows
}

// RenderTable1 formats the Table 1 data.
func RenderTable1(rows []Table1Row) string {
	headers := []string{""}
	for _, r := range rows {
		headers = append(headers, r.Year)
	}
	t := metrics.NewTable("Table 1 — SCT share vs execution-overhead share (scalar PU)", headers...)
	share := []any{"Proportion of SCTs"}
	over := []any{"Execution overhead of SCTs"}
	for _, r := range rows {
		share = append(share, metrics.Pct(r.SCTShare))
		over = append(over, metrics.Pct(r.OverheadShare))
	}
	t.Row(share...)
	t.Row(over...)
	return t.String()
}
