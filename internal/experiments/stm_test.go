package experiments

import "testing"

func TestSTMSweepShape(t *testing.T) {
	points := STMSweep(testEnv)
	want := len(STMDepRatios) * len(STMPUCounts)
	if len(points) != want {
		t.Fatalf("%d points, want %d", len(points), want)
	}
	for _, p := range points {
		if p.Txs != SchedBlockSize {
			t.Errorf("ratio %.1f pus %d: txs %d", p.TargetRatio, p.PUs, p.Txs)
		}
		if p.SeqCycles == 0 || p.SyncCycles == 0 || p.STCycles == 0 || p.STMCycles == 0 {
			t.Errorf("ratio %.1f pus %d: zero cycle count %+v", p.TargetRatio, p.PUs, p)
		}
		if p.SyncSpeedup <= 0 || p.STSpeedup <= 0 || p.STMSpeedup <= 0 {
			t.Errorf("ratio %.1f pus %d: non-positive speedup", p.TargetRatio, p.PUs)
		}
		// Identical-state assertion already ran inside ReplayWith; here we
		// check the counter invariants survive the sweep plumbing.
		s := p.Stats
		if s.Incarnations-s.Aborts != p.Txs {
			t.Errorf("ratio %.1f pus %d: incarnations %d - aborts %d != txs %d",
				p.TargetRatio, p.PUs, s.Incarnations, s.Aborts, p.Txs)
		}
		if got := s.ExecCycles + s.ValidateCycles + s.IdleCycles; got != uint64(p.PUs)*p.STMCycles {
			t.Errorf("ratio %.1f pus %d: cycle terms %d != pus×makespan %d",
				p.TargetRatio, p.PUs, got, uint64(p.PUs)*p.STMCycles)
		}
	}
	// With no dependencies the optimistic executor never aborts; fully
	// chained it must.
	for _, p := range points {
		if p.TargetRatio == 0 && p.Stats.Aborts != 0 {
			t.Errorf("dep-0 pus %d: %d aborts", p.PUs, p.Stats.Aborts)
		}
		if p.TargetRatio == 1.0 && p.PUs >= 4 && p.Stats.Aborts == 0 {
			t.Errorf("dep-1.0 pus %d: no aborts", p.PUs)
		}
	}
	if out := RenderSTM(points); len(out) == 0 {
		t.Error("empty rendering")
	}
}
