package experiments

import (
	"fmt"
	"sync"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/obs"
	"mtpu/internal/tracecache"
)

// STMDepRatios is the dependency-ratio grid of the optimistic-baseline
// sweep — the corners plus two interior points are enough to show the
// crossover against the DAG-driven schedulers.
var STMDepRatios = []float64{0, 0.3, 0.6, 1.0}

// STMPUCounts are the PU counts evaluated in the optimistic sweep.
var STMPUCounts = []int{2, 4, 8}

// STMPoint is one (dep ratio, PU count) measurement comparing the
// optimistic Block-STM executor against the synchronous and
// spatio-temporal DAG schedulers, all normalised to single-PU
// sequential execution.
type STMPoint struct {
	TargetRatio float64 `json:"target_ratio"`
	DepRatio    float64 `json:"dep_ratio"` // achieved ratio from the DAG
	PUs         int     `json:"pus"`
	Txs         int     `json:"txs"`

	SeqCycles  uint64 `json:"seq_cycles"` // single-PU sequential baseline
	SyncCycles uint64 `json:"sync_cycles"`
	STCycles   uint64 `json:"st_cycles"`
	STMCycles  uint64 `json:"stm_cycles"`

	SyncSpeedup float64 `json:"sync_speedup"`
	STSpeedup   float64 `json:"st_speedup"`
	STMSpeedup  float64 `json:"stm_speedup"`

	Stats obs.STMStats `json:"stm"`
}

// stmPrep is the shared per-ratio state: the cached trace entry, an
// accelerator, and the sequential baseline. Built once on first demand,
// then only read, so every grid point of that ratio replays concurrently
// against it.
type stmPrep struct {
	once     sync.Once
	entry    *tracecache.Entry
	acc      *core.Accelerator
	base     uint64
	achieved float64
}

func (p *stmPrep) init(env *Env, target float64) {
	p.once.Do(func() {
		p.entry = env.Cache.Get(tracecache.Token(SchedBlockSize, target))
		p.acc = core.New(arch.DefaultConfig())

		baseRes, err := p.acc.ReplayWith(p.entry.Block, p.entry.Traces,
			p.entry.Receipts, p.entry.Digest, core.ModeSequentialILP,
			core.ReplayOpts{Plans: p.entry.PlainPlans(), Tel: env.Tel})
		if err != nil {
			panic(err)
		}
		p.base = baseRes.Cycles
		p.achieved = p.entry.Block.DAG.DependentRatio()
	})
}

// STMSweep measures the optimistic Block-STM baseline against the
// synchronous and spatio-temporal schedulers over the dependency-ratio ×
// PU-count grid. Grid points fan out over env.Workers; each point writes
// only its own output slot, so the result is identical to the serial
// sweep. The shared genesis is only read by the STM executor (it copies
// before committing), so concurrent points are safe.
func STMSweep(env *Env) []STMPoint {
	preps := make([]stmPrep, len(STMDepRatios))
	out := make([]STMPoint, len(STMDepRatios)*len(STMPUCounts))
	env.forEachPoint(len(out), func(i int) {
		pi := i % len(STMPUCounts)
		ri := i / len(STMPUCounts)
		target, pus := STMDepRatios[ri], STMPUCounts[pi]

		prep := &preps[ri]
		prep.init(env, target)
		e := prep.entry

		replay := func(mode core.Mode, opts core.ReplayOpts) *core.Result {
			opts.NumPUs = pus
			opts.Plans = e.PlainPlans()
			res, err := prep.acc.ReplayWith(e.Block, e.Traces, e.Receipts,
				e.Digest, mode, opts)
			if err != nil {
				panic(err)
			}
			env.record("stm/"+mode.String(), res.Pipeline, res.Cycles)
			return res
		}

		syncRes := replay(core.ModeSynchronous, core.ReplayOpts{Tel: env.Tel})
		stRes := replay(core.ModeSpatialTemporal, core.ReplayOpts{Tel: env.Tel})
		stmRes := replay(core.ModeBlockSTM, core.ReplayOpts{Genesis: env.Cache.Genesis(), Tel: env.Tel})

		pt := STMPoint{
			TargetRatio: target,
			DepRatio:    prep.achieved,
			PUs:         pus,
			Txs:         len(e.Block.Transactions),
			SeqCycles:   prep.base,
			SyncCycles:  syncRes.Cycles,
			STCycles:    stRes.Cycles,
			STMCycles:   stmRes.Cycles,
			SyncSpeedup: float64(prep.base) / float64(syncRes.Cycles),
			STSpeedup:   float64(prep.base) / float64(stRes.Cycles),
			STMSpeedup:  float64(prep.base) / float64(stmRes.Cycles),
		}
		if stmRes.STM != nil {
			pt.Stats = *stmRes.STM
		}
		out[i] = pt
	})
	return out
}

// RenderSTM renders the sweep as a ratio × PU grid of speedups, one
// column group per executor, plus the abort counts that explain the
// optimistic executor's gap.
func RenderSTM(points []STMPoint) string {
	t := metrics.NewTable(
		fmt.Sprintf("optimistic baseline — speedup vs 1-PU sequential (%d txs)", SchedBlockSize),
		"dep ratio", "PUs", "sync", "spatial-temporal", "block-stm", "incarnations", "aborts")
	for _, p := range points {
		t.Row(fmt.Sprintf("%.1f", p.TargetRatio), p.PUs,
			metrics.X(p.SyncSpeedup), metrics.X(p.STSpeedup), metrics.X(p.STMSpeedup),
			p.Stats.Incarnations, p.Stats.Aborts)
	}
	return t.String()
}
