package experiments

import (
	"testing"

	"mtpu/internal/engine"
)

func TestLadderEnumeratesRegistry(t *testing.T) {
	rows := Ladder(testEnv)
	modes := engine.Modes()
	if len(rows) != len(modes) {
		t.Fatalf("%d rows for %d registered engines", len(rows), len(modes))
	}
	for i, r := range rows {
		if r.Mode != modes[i] {
			t.Errorf("row %d: mode %v, registry order says %v", i, r.Mode, modes[i])
		}
		if r.Name != modes[i].String() {
			t.Errorf("row %d: name %q != %q", i, r.Name, modes[i])
		}
		if r.Cycles == 0 || r.Speedup <= 0 {
			t.Errorf("row %d (%s): empty measurement %+v", i, r.Name, r)
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("first registered engine anchors the speedup column: %.2f", rows[0].Speedup)
	}
	if out := RenderLadder(rows); len(out) == 0 {
		t.Error("empty rendering")
	}
}
