package experiments

import (
	"testing"

	"mtpu/internal/core"
)

// One shared environment: experiments are deterministic, so building it
// once keeps the suite fast.
var testEnv = NewEnv(DefaultSeed)

func TestTable2Shape(t *testing.T) {
	rows := Table2(testEnv)
	if len(rows) != len(Table2Cases) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BytecodeBytes <= 0 || r.OtherBytes <= 0 {
			t.Errorf("%s.%s: sizes %d/%d", r.Contract, r.Function, r.BytecodeBytes, r.OtherBytes)
		}
		// The paper's claim: bytecode dominates the loaded context.
		if r.BytecodeShare < 0.5 {
			t.Errorf("%s.%s: bytecode share %.2f below half", r.Contract, r.Function, r.BytecodeShare)
		}
	}
	if out := RenderTable2(rows); len(out) == 0 {
		t.Error("empty rendering")
	}
}

func TestTable6Shape(t *testing.T) {
	rows := Table6(testEnv)
	if len(rows) != len(Top8Names) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		var sum float64
		var maxIdx int
		for u, s := range r.Shares {
			sum += s
			if s > r.Shares[maxIdx] {
				maxIdx = u
			}
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: shares sum %.4f", r.Contract, sum)
		}
		// Stack instructions dominate every contract (the paper: ~62%).
		if maxIdx != 8 /* FUStack */ {
			t.Errorf("%s: dominant unit %d, want Stack", r.Contract, maxIdx)
		}
		if r.Shares[8] < 0.4 {
			t.Errorf("%s: stack share %.2f", r.Contract, r.Shares[8])
		}
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12(testEnv)
	if len(rows) != len(Top8Names) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Each optimization must not regress IPC or speedup.
		if !(r.IPC[0] < r.IPC[1] && r.IPC[1] < r.IPC[2]) {
			t.Errorf("%s: IPC not monotone: %v", r.Contract, r.IPC)
		}
		if !(r.Speedup[0] <= r.Speedup[1] && r.Speedup[1] <= r.Speedup[2]) {
			t.Errorf("%s: speedup not monotone: %v", r.Contract, r.Speedup)
		}
		if r.IPC[2] < 1.5 {
			t.Errorf("%s: +IF IPC %.2f too low", r.Contract, r.IPC[2])
		}
		if r.Speedup[2] < 1.1 {
			t.Errorf("%s: +IF speedup %.2f", r.Contract, r.Speedup[2])
		}
		for v, h := range r.HitRatio {
			if h < 0.4 || h > 1 {
				t.Errorf("%s: variant %d hit ratio %.2f", r.Contract, v, h)
			}
		}
	}
}

func TestFig13Shape(t *testing.T) {
	rows := Fig13(testEnv)
	for _, r := range rows {
		// Monotone non-decreasing in cache size, saturating high.
		for i := 1; i < len(r.HitRatios); i++ {
			if r.HitRatios[i] < r.HitRatios[i-1]-0.02 {
				t.Errorf("%s: hit ratio fell at size %d: %v", r.Contract, Fig13Sizes[i], r.HitRatios)
			}
		}
		last := r.HitRatios[len(r.HitRatios)-1]
		if last < 0.8 {
			t.Errorf("%s: saturated hit ratio %.2f", r.Contract, last)
		}
		if r.HitRatios[0] > last-0.1 {
			t.Errorf("%s: no capacity effect visible: %v", r.Contract, r.HitRatios)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	rows := Table7(testEnv)
	for _, r := range rows {
		// The finite cache can only lose against the upper limit.
		if r.At2KIPC > r.UpperIPC+0.01 {
			t.Errorf("%s: 2K IPC above upper limit", r.Contract)
		}
		if r.At2KSpeedup > r.UpperSpeedup+0.01 {
			t.Errorf("%s: 2K speedup above upper limit", r.Contract)
		}
		if r.IPCDelta > 0.01 || r.SpeedupDelta > 0.01 {
			t.Errorf("%s: positive deltas %f %f", r.Contract, r.IPCDelta, r.SpeedupDelta)
		}
	}
}

func TestSchedulingSweepShape(t *testing.T) {
	// A reduced sweep keeps the test quick but checks the key shapes.
	pts := SchedulingSweep(testEnv,
		[]core.Mode{core.ModeSynchronous, core.ModeSpatialTemporal},
		[]int{4}, []float64{0, 1.0})
	get := func(mode core.Mode, ratio float64) SchedPoint {
		for _, p := range pts {
			if p.Mode == mode && p.TargetRatio == ratio {
				return p
			}
		}
		t.Fatalf("missing point %v %.1f", mode, ratio)
		return SchedPoint{}
	}
	sync0 := get(core.ModeSynchronous, 0)
	sync1 := get(core.ModeSynchronous, 1)
	st0 := get(core.ModeSpatialTemporal, 0)
	st1 := get(core.ModeSpatialTemporal, 1)

	if sync0.Speedup < 2.5 {
		t.Errorf("sync speedup at dep=0: %.2f", sync0.Speedup)
	}
	if !(sync1.Speedup < sync0.Speedup) {
		t.Errorf("sync speedup did not fall with dependence: %.2f vs %.2f", sync1.Speedup, sync0.Speedup)
	}
	if st0.Speedup < sync0.Speedup-0.05 {
		t.Errorf("ST below sync at dep=0: %.2f vs %.2f", st0.Speedup, sync0.Speedup)
	}
	if !(st1.Speedup < st0.Speedup) {
		t.Errorf("ST speedup did not fall with dependence")
	}
	for _, p := range pts {
		if p.Utilization <= 0 || p.Utilization > 1.0001 {
			t.Errorf("utilization %f out of range", p.Utilization)
		}
	}
}

func TestFig16AddsOverFig14(t *testing.T) {
	base := SchedulingSweep(testEnv, []core.Mode{core.ModeSpatialTemporal},
		[]int{4}, []float64{0.2})
	opt := SchedulingSweep(testEnv, []core.Mode{core.ModeSTRedundancy, core.ModeSTHotspot},
		[]int{4}, []float64{0.2})
	var st, red, hot float64
	st = base[0].Speedup
	for _, p := range opt {
		switch p.Mode {
		case core.ModeSTRedundancy:
			red = p.Speedup
		case core.ModeSTHotspot:
			hot = p.Speedup
		}
	}
	if !(st < red && red < hot) {
		t.Errorf("optimization ladder broken: %.2f, %.2f, %.2f", st, red, hot)
	}
}

func TestTable8Shape(t *testing.T) {
	rows := Table8(testEnv)
	if len(rows) != len(ERC20Shares) {
		t.Fatalf("%d rows", len(rows))
	}
	// BPU monotone decreasing as ERC-20 share falls; ~1x at 0%.
	for i := 1; i < len(rows); i++ {
		if rows[i].BPUSpeedup > rows[i-1].BPUSpeedup+0.05 {
			t.Errorf("BPU speedup rose: %v", rows)
		}
	}
	if rows[0].BPUSpeedup < 8 {
		t.Errorf("BPU at 100%% ERC-20: %.2f", rows[0].BPUSpeedup)
	}
	last := rows[len(rows)-1]
	if last.BPUSpeedup > 1.2 {
		t.Errorf("BPU at 0%% ERC-20: %.2f", last.BPUSpeedup)
	}
	// MTPU is stable: min within 60% of max (the paper's core claim).
	min, max := rows[0].MTPUSpeedup, rows[0].MTPUSpeedup
	for _, r := range rows {
		if r.MTPUSpeedup < min {
			min = r.MTPUSpeedup
		}
		if r.MTPUSpeedup > max {
			max = r.MTPUSpeedup
		}
		if r.MTPUSpeedup < 1.3 {
			t.Errorf("MTPU speedup %.2f at share %.0f%%", r.MTPUSpeedup, r.ERC20Share*100)
		}
	}
	if min < 0.6*max {
		t.Errorf("MTPU not stable: %.2f..%.2f", min, max)
	}
	// Crossover: MTPU wins at 0% ERC-20, BPU wins at 100%.
	if last.MTPUSpeedup <= last.BPUSpeedup {
		t.Error("MTPU should beat BPU on non-ERC20 blocks")
	}
	if rows[0].BPUSpeedup <= rows[0].MTPUSpeedup {
		t.Error("BPU should beat single-core MTPU on pure ERC-20 blocks")
	}
}

func TestTable9Shape(t *testing.T) {
	rows := Table9(testEnv)
	if len(rows) != len(Table9Ratios) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Fine-grained scheduling beats block-level parallelism everywhere.
		if r.MTPUSpeedup <= r.BPUSpeedup {
			t.Errorf("MTPU %.2f <= BPU %.2f at ratio %.0f%%",
				r.MTPUSpeedup, r.BPUSpeedup, r.DepRatio*100)
		}
	}
	// Both improve as dependence falls (first row is 100%, last is 0%).
	first, last := rows[0], rows[len(rows)-1]
	if last.BPUSpeedup <= first.BPUSpeedup {
		t.Errorf("BPU did not improve with independence: %.2f vs %.2f",
			first.BPUSpeedup, last.BPUSpeedup)
	}
	if last.MTPUSpeedup <= first.MTPUSpeedup {
		t.Errorf("MTPU did not improve with independence: %.2f vs %.2f",
			first.MTPUSpeedup, last.MTPUSpeedup)
	}
}

func TestChunkingShape(t *testing.T) {
	rows := Chunking(testEnv)
	if len(rows) < 30 {
		t.Fatalf("only %d chunking rows", len(rows))
	}
	foundTransfer := false
	for _, r := range rows {
		if r.LoadFraction <= 0 || r.LoadFraction > 1 {
			t.Errorf("%s.%s: load fraction %f", r.Contract, r.Function, r.LoadFraction)
		}
		if r.SkippedFraction < 0 || r.SkippedFraction >= 1 {
			t.Errorf("%s.%s: skipped fraction %f", r.Contract, r.Function, r.SkippedFraction)
		}
		if r.Contract == "TetherUSD" && r.Function == "transfer" {
			foundTransfer = true
			// The §3.4.2 headline: a small fraction of bytecode loads.
			if r.LoadFraction > 0.35 {
				t.Errorf("Tether transfer loads %.1f%% of bytecode", 100*r.LoadFraction)
			}
			if r.PreExecSteps == 0 {
				t.Error("Tether transfer has no pre-executed chunk")
			}
			if r.TotalSLOADs > 0 && r.PrefetchedSLOADs != r.TotalSLOADs {
				t.Errorf("Tether transfer prefetch %d/%d", r.PrefetchedSLOADs, r.TotalSLOADs)
			}
		}
	}
	if !foundTransfer {
		t.Fatal("no TetherUSD.transfer row")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	if RenderFig12(Fig12(testEnv)) == "" ||
		RenderFig13(Fig13(testEnv)) == "" ||
		RenderTable7(Table7(testEnv)) == "" ||
		RenderTable6(Table6(testEnv)) == "" ||
		RenderChunking(Chunking(testEnv)) == "" {
		t.Fatal("renderer produced empty output")
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(testEnv)
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		// SCTs always cost disproportionately more than their count share.
		if r.OverheadShare <= r.SCTShare {
			t.Errorf("%s: overhead %.2f <= share %.2f", r.Year, r.OverheadShare, r.SCTShare)
		}
		if i > 0 && r.SCTShare > rows[i-1].SCTShare &&
			r.OverheadShare < rows[i-1].OverheadShare-0.01 {
			t.Errorf("overhead fell while share rose at %s", r.Year)
		}
	}
	// The 2021 point: ~68% of transactions cause the vast majority of
	// execution time (paper: 90.81%).
	last := rows[len(rows)-1]
	if last.OverheadShare < 0.8 {
		t.Errorf("2021 overhead share %.2f too low", last.OverheadShare)
	}
	if RenderTable1(rows) == "" {
		t.Error("empty rendering")
	}
}
