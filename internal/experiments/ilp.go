package experiments

import (
	"mtpu/internal/arch"
	"mtpu/internal/metrics"
)

// Fig12Row holds one contract's ILP upper bound under the three
// instruction-level optimizations of §4.2: F&D (fill unit + DB cache),
// +DF (data forwarding), +IF (instruction folding). The upper bound
// assumes a fully warmed (unbounded) DB cache, the paper's "hit rate of
// the DB cache is 100%" idealization.
type Fig12Row struct {
	Contract string
	// IPC, Speedup and HitRatio per variant: [F&D, +DF, +IF].
	IPC      [3]float64
	Speedup  [3]float64
	HitRatio [3]float64
}

// Fig12BatchSize is the number of transactions per contract batch.
const Fig12BatchSize = 48

// Fig12 measures the ILP upper bound per TOP-8 contract. Contracts fan
// out over env.Workers.
func Fig12(env *Env) []Fig12Row {
	variants := []struct {
		name      string
		fwd, fold bool
	}{
		{"F&D", false, false},
		{"+DF", true, false},
		{"+IF", true, true},
	}
	rows := make([]Fig12Row, len(Top8Names))
	env.forEachPoint(len(rows), func(i int) {
		name := Top8Names[i]
		plans := env.batch(name, Fig12BatchSize).PlainPlans()
		scalar := scalarPipelineCycles(plans)
		row := Fig12Row{Contract: name}
		for v, opt := range variants {
			cfg := arch.DefaultConfig()
			cfg.DBCacheEntries = 0 // unbounded: upper-bound idealization
			cfg.EnableForwarding = opt.fwd
			cfg.EnableFolding = opt.fold
			st := runPipeline(cfg, plans, 2) // pass 1 fills, pass 2 measures
			env.record("fig12/"+opt.name, st, st.Cycles)
			row.IPC[v] = st.IPC()
			row.Speedup[v] = float64(scalar) / float64(st.Cycles)
			row.HitRatio[v] = st.HitRatio()
		}
		rows[i] = row
	})
	return rows
}

// RenderFig12 formats the Fig. 12 data.
func RenderFig12(rows []Fig12Row) string {
	t := metrics.NewTable("Fig.12 — ILP upper bound per optimization (unbounded DB cache)",
		"Contract", "F&D IPC", "F&D spd", "+DF IPC", "+DF spd", "+IF IPC", "+IF spd")
	var sum Fig12Row
	for _, r := range rows {
		t.Row(r.Contract, r.IPC[0], metrics.X(r.Speedup[0]), r.IPC[1],
			metrics.X(r.Speedup[1]), r.IPC[2], metrics.X(r.Speedup[2]))
		for v := 0; v < 3; v++ {
			sum.IPC[v] += r.IPC[v]
			sum.Speedup[v] += r.Speedup[v]
		}
	}
	n := float64(len(rows))
	t.Row("Avg", sum.IPC[0]/n, metrics.X(sum.Speedup[0]/n), sum.IPC[1]/n,
		metrics.X(sum.Speedup[1]/n), sum.IPC[2]/n, metrics.X(sum.Speedup[2]/n))
	return t.String()
}

// Fig13Sizes is the DB-cache sweep (entries). The paper sweeps up to 8K
// with the knee at 2K; our archetype contracts are ~5-10× smaller than
// the mainnet TOP-8 bytecode, so the knee appears proportionally earlier
// and the sweep extends down to 16 entries to show the full curve.
var Fig13Sizes = []int{16, 32, 64, 128, 256, 512, 1024, 2048}

// Fig13Row is one contract's hit-ratio curve over cache sizes.
type Fig13Row struct {
	Contract  string
	HitRatios []float64 // aligned with Fig13Sizes
}

// Fig13BatchSize is the per-contract batch length (a batch of
// transactions invoking the same contract, §4.2).
const Fig13BatchSize = 96

// Fig13 sweeps the DB-cache size and measures the hit ratio over a batch
// of same-contract transactions with cross-transaction reuse enabled.
// Contracts fan out over env.Workers.
func Fig13(env *Env) []Fig13Row {
	rows := make([]Fig13Row, len(Top8Names))
	env.forEachPoint(len(rows), func(i int) {
		name := Top8Names[i]
		plans := env.batch(name, Fig13BatchSize).PlainPlans()
		row := Fig13Row{Contract: name}
		for _, size := range Fig13Sizes {
			cfg := arch.DefaultConfig()
			cfg.DBCacheEntries = size
			st := runPipeline(cfg, plans, 1)
			env.record("fig13", st, st.Cycles)
			row.HitRatios = append(row.HitRatios, st.HitRatio())
		}
		rows[i] = row
	})
	return rows
}

// RenderFig13 formats the Fig. 13 data.
func RenderFig13(rows []Fig13Row) string {
	headers := []string{"Contract"}
	for _, s := range Fig13Sizes {
		headers = append(headers, itoa(s))
	}
	t := metrics.NewTable("Fig.13 — DB-cache hit ratio vs entries (same-contract batch)", headers...)
	for _, r := range rows {
		cells := []any{r.Contract}
		for _, h := range r.HitRatios {
			cells = append(cells, h)
		}
		t.Row(cells...)
	}
	return t.String()
}

// Table7Row compares the 2K-entry DB cache against the upper limit for
// one contract, as in Table 7.
type Table7Row struct {
	Contract               string
	UpperIPC, UpperSpeedup float64
	At2KIPC, At2KSpeedup   float64
	IPCDelta, SpeedupDelta float64 // (2K - upper) / upper
}

// Table7 measures single-PU performance with the production 2K-entry
// cache against the Fig. 12 upper limit. It shares the Fig. 12 batches
// through the trace cache; contracts fan out over env.Workers.
func Table7(env *Env) []Table7Row {
	rows := make([]Table7Row, len(Top8Names))
	env.forEachPoint(len(rows), func(i int) {
		name := Top8Names[i]
		plans := env.batch(name, Fig12BatchSize).PlainPlans()
		scalar := scalarPipelineCycles(plans)

		upperCfg := arch.DefaultConfig()
		upperCfg.DBCacheEntries = 0
		upper := runPipeline(upperCfg, plans, 2)
		env.record("table7/upper", upper, upper.Cycles)

		realCfg := arch.DefaultConfig() // 2048 entries
		real := runPipeline(realCfg, plans, 1)
		env.record("table7/2K", real, real.Cycles)

		row := Table7Row{
			Contract:     name,
			UpperIPC:     upper.IPC(),
			UpperSpeedup: float64(scalar) / float64(upper.Cycles),
			At2KIPC:      real.IPC(),
			At2KSpeedup:  float64(scalar) / float64(real.Cycles),
		}
		row.IPCDelta = (row.At2KIPC - row.UpperIPC) / row.UpperIPC
		row.SpeedupDelta = (row.At2KSpeedup - row.UpperSpeedup) / row.UpperSpeedup
		rows[i] = row
	})
	return rows
}

// RenderTable7 formats the Table 7 data.
func RenderTable7(rows []Table7Row) string {
	t := metrics.NewTable("Table 7 — single PU with 2K-entry DB cache vs upper limit",
		"Contract", "Up IPC", "Up spd", "2K IPC", "2K spd", "dIPC", "dSpd")
	var sIPCu, sSpdU, sIPC2, sSpd2, sdI, sdS float64
	for _, r := range rows {
		t.Row(r.Contract, r.UpperIPC, metrics.X(r.UpperSpeedup), r.At2KIPC,
			metrics.X(r.At2KSpeedup), metrics.Pct(r.IPCDelta), metrics.Pct(r.SpeedupDelta))
		sIPCu += r.UpperIPC
		sSpdU += r.UpperSpeedup
		sIPC2 += r.At2KIPC
		sSpd2 += r.At2KSpeedup
		sdI += r.IPCDelta
		sdS += r.SpeedupDelta
	}
	n := float64(len(rows))
	t.Row("Avg", sIPCu/n, metrics.X(sSpdU/n), sIPC2/n, metrics.X(sSpd2/n),
		metrics.Pct(sdI/n), metrics.Pct(sdS/n))
	return t.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}
