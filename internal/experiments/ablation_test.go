package experiments

import "testing"

func TestAblationShapes(t *testing.T) {
	rows := Ablations(testEnv)
	byKnob := map[string]map[string]float64{}
	var baseline float64
	for _, r := range rows {
		if r.Knob == "baseline" {
			baseline = r.Speedup
			continue
		}
		if byKnob[r.Knob] == nil {
			byKnob[r.Knob] = map[string]float64{}
		}
		byKnob[r.Knob][r.Setting] = r.Speedup
	}
	if baseline < 4 {
		t.Fatalf("baseline speedup %.2f", baseline)
	}

	// Removing each ILP feature hurts, and more removal hurts more.
	ilp := byKnob["ILP"]
	if !(ilp["no DB cache (F&D off)"] < ilp["no forwarding (DF off)"] &&
		ilp["no forwarding (DF off)"] < ilp["no folding (IF off)"] &&
		ilp["no folding (IF off)"] < baseline) {
		t.Errorf("ILP ablation ordering: %v vs baseline %.2f", ilp, baseline)
	}

	// A window of 1 serializes candidate selection; m≥2 saturates (larger
	// windows may fluctuate a few percent as admission order shifts which
	// chain tails get priority, but never collapse).
	win := byKnob["window m"]
	if !(win["1"] < win["4"]) {
		t.Errorf("window ablation: %v", win)
	}
	if win["16"] < 0.85*win["4"] {
		t.Errorf("large window regressed badly: %v", win)
	}

	// Scheduling overhead must degrade monotonically (the motivation for
	// decoupling scheduling from execution, §3.2.3).
	ov := byKnob["sched overhead"]
	if !(ov["512 cyc"] < ov["64 cyc"] && ov["64 cyc"] < ov["4 cyc"] && ov["4 cyc"] <= ov["0 cyc"]) {
		t.Errorf("overhead ablation: %v", ov)
	}

	// Tiny residency loses some context reuse.
	resid := byKnob["residency"]
	if resid["1"] > resid["8"] {
		t.Errorf("residency ablation: %v", resid)
	}

	// A starved DB cache loses ILP hits.
	db := byKnob["DB entries"]
	if db["64"] > db["2048"] {
		t.Errorf("DB entries ablation: %v", db)
	}

	if RenderAblations(rows) == "" {
		t.Error("empty rendering")
	}
}
