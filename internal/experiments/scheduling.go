package experiments

import (
	"fmt"
	"sync"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/tracecache"
)

// DepRatios is the dependent-transaction-ratio sweep of Figs. 14-16.
var DepRatios = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// SchedPUCounts are the PU counts evaluated in Figs. 14-16.
var SchedPUCounts = []int{1, 2, 4, 8}

// SchedBlockSize is the transactions per block in the scheduling sweeps.
const SchedBlockSize = 192

// SchedPoint is one (mode, dep ratio, PU count) measurement.
type SchedPoint struct {
	Mode        core.Mode
	DepRatio    float64 // achieved ratio from the DAG
	TargetRatio float64
	PUs         int
	Speedup     float64 // vs single-PU sequential (ILP, no reuse)
	Utilization float64
	HitRatio    float64
}

// schedPrep is the shared per-ratio state of a sweep: the cached trace
// entry, an accelerator with learned hotspots, and the sequential
// baseline. Built once (on first demand) and then only read, so every
// grid point of that ratio can replay concurrently against it.
type schedPrep struct {
	once     sync.Once
	entry    *tracecache.Entry
	acc      *core.Accelerator
	base     uint64
	achieved float64
}

func (p *schedPrep) init(env *Env, target float64) {
	p.once.Do(func() {
		p.entry = env.Cache.Get(tracecache.Token(SchedBlockSize, target))
		p.acc = core.New(arch.DefaultConfig())
		p.acc.LearnHotspots(p.entry.Traces, 8)

		baseRes, err := p.acc.ReplayWith(p.entry.Block, p.entry.Traces,
			p.entry.Receipts, p.entry.Digest, core.ModeSequentialILP,
			core.ReplayOpts{Plans: p.entry.PlainPlans(), Tel: env.Tel})
		if err != nil {
			panic(err)
		}
		p.base = baseRes.Cycles
		p.achieved = p.entry.Block.DAG.DependentRatio()
	})
}

// SchedulingSweep measures the given modes over the dependency-ratio ×
// PU-count grid. The baseline is the sequential execution of one PU
// (ModeSequentialILP), as in Fig. 14. Grid points fan out over
// env.Workers; each point writes only its own output slot, so the
// result is identical to the serial sweep.
func SchedulingSweep(env *Env, modes []core.Mode, puCounts []int, ratios []float64) []SchedPoint {
	preps := make([]schedPrep, len(ratios))
	out := make([]SchedPoint, len(ratios)*len(modes)*len(puCounts))
	env.forEachPoint(len(out), func(i int) {
		pi := i % len(puCounts)
		mi := (i / len(puCounts)) % len(modes)
		ri := i / (len(puCounts) * len(modes))
		target, mode, pus := ratios[ri], modes[mi], puCounts[pi]

		prep := &preps[ri]
		prep.init(env, target)
		e := prep.entry

		res, err := prep.acc.ReplayWith(e.Block, e.Traces, e.Receipts, e.Digest,
			mode, core.ReplayOpts{NumPUs: pus, Plans: e.PlainPlans(), Tel: env.Tel})
		if err != nil {
			panic(err)
		}
		env.record("sched/"+mode.String(), res.Pipeline, res.Cycles)
		out[i] = SchedPoint{
			Mode:        mode,
			DepRatio:    prep.achieved,
			TargetRatio: target,
			PUs:         pus,
			Speedup:     float64(prep.base) / float64(res.Cycles),
			Utilization: res.Utilization,
			HitRatio:    res.Pipeline.HitRatio(),
		}
	})
	return out
}

// Fig14 compares synchronous execution against spatio-temporal
// scheduling (no reuse) — Fig. 14(a)/(b).
func Fig14(env *Env) []SchedPoint {
	return SchedulingSweep(env,
		[]core.Mode{core.ModeSynchronous, core.ModeSpatialTemporal},
		SchedPUCounts, DepRatios)
}

// Fig16 adds the redundancy and hotspot optimizations — Fig. 16(a)/(b).
func Fig16(env *Env) []SchedPoint {
	return SchedulingSweep(env,
		[]core.Mode{core.ModeSTRedundancy, core.ModeSTHotspot},
		SchedPUCounts, DepRatios)
}

// RenderSchedPoints renders one mode's speedup grid (ratio rows × PU
// columns); metric selects Speedup ("speedup") or Utilization ("util").
func RenderSchedPoints(title string, points []SchedPoint, mode core.Mode, metric string) string {
	headers := []string{"dep ratio"}
	for _, p := range SchedPUCounts {
		headers = append(headers, fmt.Sprintf("%d PU", p))
	}
	t := metrics.NewTable(title, headers...)
	byRatio := map[float64]map[int]SchedPoint{}
	for _, pt := range points {
		if pt.Mode != mode {
			continue
		}
		if byRatio[pt.TargetRatio] == nil {
			byRatio[pt.TargetRatio] = map[int]SchedPoint{}
		}
		byRatio[pt.TargetRatio][pt.PUs] = pt
	}
	for _, r := range DepRatios {
		row, ok := byRatio[r]
		if !ok {
			continue
		}
		cells := []any{fmt.Sprintf("%.1f", r)}
		for _, p := range SchedPUCounts {
			pt := row[p]
			if metric == "util" {
				cells = append(cells, pt.Utilization)
			} else {
				cells = append(cells, metrics.X(pt.Speedup))
			}
		}
		t.Row(cells...)
	}
	return t.String()
}
