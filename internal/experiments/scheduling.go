package experiments

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/workload"
)

// DepRatios is the dependent-transaction-ratio sweep of Figs. 14-16.
var DepRatios = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// SchedPUCounts are the PU counts evaluated in Figs. 14-16.
var SchedPUCounts = []int{1, 2, 4, 8}

// SchedBlockSize is the transactions per block in the scheduling sweeps.
const SchedBlockSize = 192

// SchedPoint is one (mode, dep ratio, PU count) measurement.
type SchedPoint struct {
	Mode        core.Mode
	DepRatio    float64 // achieved ratio from the DAG
	TargetRatio float64
	PUs         int
	Speedup     float64 // vs single-PU sequential (ILP, no reuse)
	Utilization float64
	HitRatio    float64
}

// SchedulingSweep measures the given modes over the dependency-ratio ×
// PU-count grid. The baseline is the sequential execution of one PU
// (ModeSequentialILP), as in Fig. 14.
func SchedulingSweep(env *Env, modes []core.Mode, puCounts []int, ratios []float64) []SchedPoint {
	var out []SchedPoint
	for _, target := range ratios {
		block := env.Gen.TokenBlock(SchedBlockSize, target)
		if _, err := workload.BuildDAG(env.Genesis, block); err != nil {
			panic(fmt.Sprintf("experiments: dag at ratio %.2f: %v", target, err))
		}
		traces, receipts, digest, err := core.CollectTraces(env.Genesis, block)
		if err != nil {
			panic(err)
		}
		acc := core.New(arch.DefaultConfig())
		acc.LearnHotspots(traces, 8)

		baseRes, err := acc.Replay(block, traces, receipts, digest, core.ModeSequentialILP)
		if err != nil {
			panic(err)
		}
		base := baseRes.Cycles

		achieved := block.DAG.DependentRatio()
		for _, mode := range modes {
			for _, pus := range puCounts {
				acc.Cfg.NumPUs = pus
				res, err := acc.Replay(block, traces, receipts, digest, mode)
				if err != nil {
					panic(err)
				}
				out = append(out, SchedPoint{
					Mode:        mode,
					DepRatio:    achieved,
					TargetRatio: target,
					PUs:         pus,
					Speedup:     float64(base) / float64(res.Cycles),
					Utilization: res.Utilization,
					HitRatio:    res.Pipeline.HitRatio(),
				})
			}
		}
	}
	return out
}

// Fig14 compares synchronous execution against spatio-temporal
// scheduling (no reuse) — Fig. 14(a)/(b).
func Fig14(env *Env) []SchedPoint {
	return SchedulingSweep(env,
		[]core.Mode{core.ModeSynchronous, core.ModeSpatialTemporal},
		SchedPUCounts, DepRatios)
}

// Fig16 adds the redundancy and hotspot optimizations — Fig. 16(a)/(b).
func Fig16(env *Env) []SchedPoint {
	return SchedulingSweep(env,
		[]core.Mode{core.ModeSTRedundancy, core.ModeSTHotspot},
		SchedPUCounts, DepRatios)
}

// RenderSchedPoints renders one mode's speedup grid (ratio rows × PU
// columns); metric selects Speedup ("speedup") or Utilization ("util").
func RenderSchedPoints(title string, points []SchedPoint, mode core.Mode, metric string) string {
	headers := []string{"dep ratio"}
	for _, p := range SchedPUCounts {
		headers = append(headers, fmt.Sprintf("%d PU", p))
	}
	t := metrics.NewTable(title, headers...)
	byRatio := map[float64]map[int]SchedPoint{}
	for _, pt := range points {
		if pt.Mode != mode {
			continue
		}
		if byRatio[pt.TargetRatio] == nil {
			byRatio[pt.TargetRatio] = map[int]SchedPoint{}
		}
		byRatio[pt.TargetRatio][pt.PUs] = pt
	}
	for _, r := range DepRatios {
		row, ok := byRatio[r]
		if !ok {
			continue
		}
		cells := []any{fmt.Sprintf("%.1f", r)}
		for _, p := range SchedPUCounts {
			pt := row[p]
			if metric == "util" {
				cells = append(cells, pt.Utilization)
			} else {
				cells = append(cells, metrics.X(pt.Speedup))
			}
		}
		t.Row(cells...)
	}
	return t.String()
}
