package experiments

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/metrics"
	"mtpu/internal/tracecache"
)

// LadderDepRatio and LadderPUs fix the reference block of the
// registry-enumerated mode ladder.
const (
	LadderDepRatio = 0.3
	LadderPUs      = 4
)

// LadderRow is one registered engine measured on the reference block.
// The rows cover the engine registry in registration order, so a newly
// registered engine appears here (and in `mtpu-bench ladder`) with no
// further wiring.
type LadderRow struct {
	Mode    core.Mode `json:"-"`
	Name    string    `json:"name"`
	Cycles  uint64    `json:"cycles"`
	Speedup float64   `json:"speedup"` // vs the first registered engine
	Util    float64   `json:"util"`
}

// Ladder replays the reference block under every registered engine.
// Rows fan out over env.Workers; the speedup column is computed after
// the barrier so row order never affects it.
func Ladder(env *Env) []LadderRow {
	e := env.Cache.Get(tracecache.Token(SchedBlockSize, LadderDepRatio))
	acc := core.New(arch.DefaultConfig())
	acc.LearnHotspots(e.Traces, 8)

	modes := engine.Modes()
	out := make([]LadderRow, len(modes))
	env.forEachPoint(len(modes), func(i int) {
		m := modes[i]
		res, err := acc.ReplayWith(e.Block, e.Traces, e.Receipts, e.Digest, m,
			core.ReplayOpts{NumPUs: LadderPUs, Genesis: env.Cache.Genesis(), Tel: env.Tel})
		if err != nil {
			panic(err)
		}
		env.record("ladder/"+m.String(), res.Pipeline, res.Cycles)
		out[i] = LadderRow{Mode: m, Name: m.String(), Cycles: res.Cycles, Util: res.Utilization}
	})
	base := out[0].Cycles
	for i := range out {
		out[i].Speedup = float64(base) / float64(out[i].Cycles)
	}
	return out
}

// RenderLadder renders the registry-enumerated comparison.
func RenderLadder(rows []LadderRow) string {
	t := metrics.NewTable(
		fmt.Sprintf("mode ladder — every registered engine (%d txs, dep %.1f, %d PUs)",
			SchedBlockSize, LadderDepRatio, LadderPUs),
		"engine", "cycles", "speedup", "util")
	for _, r := range rows {
		t.Row(r.Name, r.Cycles, metrics.X(r.Speedup), metrics.Float(r.Util))
	}
	return t.String()
}
