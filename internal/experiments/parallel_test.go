package experiments

import (
	"reflect"
	"testing"

	"mtpu/internal/core"
)

// twoEnvs returns a serial environment and one fanned out over 8
// workers, both on the default seed.
func twoEnvs() (*Env, *Env) {
	serial := NewEnv(DefaultSeed)
	par := NewEnv(DefaultSeed)
	par.Workers = 8
	return serial, par
}

// TestParallelSweepMatchesSerial is the determinism invariant of the
// experiment engine: the same sweep fanned out over workers must be
// byte-identical to the serial run, down to float bit patterns.
func TestParallelSweepMatchesSerial(t *testing.T) {
	serial, par := twoEnvs()
	modes := []core.Mode{core.ModeSynchronous, core.ModeSTHotspot}
	pus := []int{1, 4}
	ratios := []float64{0, 0.5, 1.0}

	want := SchedulingSweep(serial, modes, pus, ratios)
	got := SchedulingSweep(par, modes, pus, ratios)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel sweep differs from serial:\nserial: %+v\nparallel: %+v", want, got)
	}

	wantStr := RenderSchedPoints("t", want, core.ModeSTHotspot, "speedup")
	gotStr := RenderSchedPoints("t", got, core.ModeSTHotspot, "speedup")
	if wantStr != gotStr {
		t.Fatalf("rendered sweep differs:\n%s\nvs\n%s", wantStr, gotStr)
	}
}

// TestParallelTablesMatchSerial checks the remaining fanned-out
// experiments point by point and on their rendered strings.
func TestParallelTablesMatchSerial(t *testing.T) {
	serial, par := twoEnvs()

	t9s, t9p := Table9(serial), Table9(par)
	if !reflect.DeepEqual(t9s, t9p) {
		t.Errorf("Table9 differs: %+v vs %+v", t9s, t9p)
	}
	if RenderTable9(t9s) != RenderTable9(t9p) {
		t.Error("rendered Table9 differs")
	}

	abS, abP := Ablations(serial), Ablations(par)
	if !reflect.DeepEqual(abS, abP) {
		t.Errorf("Ablations differ: %+v vs %+v", abS, abP)
	}

	t1s, t1p := Table1(serial), Table1(par)
	if !reflect.DeepEqual(t1s, t1p) {
		t.Errorf("Table1 differs: %+v vs %+v", t1s, t1p)
	}

	f13s, f13p := Fig13(serial), Fig13(par)
	if !reflect.DeepEqual(f13s, f13p) {
		t.Errorf("Fig13 differs: %+v vs %+v", f13s, f13p)
	}
}

// TestCacheSharedAcrossExperiments checks that experiments replaying
// the same workload shape share one functional-EVM pass.
func TestCacheSharedAcrossExperiments(t *testing.T) {
	env := NewEnv(DefaultSeed)
	_ = Fig12(env) // Fig12BatchSize batches
	_, miss0 := env.Cache.Stats()
	_ = Table7(env) // same batches, must all hit
	hits, miss1 := env.Cache.Stats()
	if miss1 != miss0 {
		t.Errorf("Table7 rebuilt traces: misses %d -> %d", miss0, miss1)
	}
	if hits == 0 {
		t.Error("no cache hits recorded")
	}
}
