package experiments

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/contracts"
	"mtpu/internal/core"
	"mtpu/internal/evm"
	"mtpu/internal/hotspot"
	"mtpu/internal/metrics"
	"mtpu/internal/types"
)

// Table2Case identifies one (contract, function) of Table 2.
type Table2Case struct {
	Contract string
	Function string
	Args     []any
	Value    uint64
	Caller   int // workload account index
}

// Table2Cases mirrors the paper's four examples (CryptoCat →
// CryptoAuction archetype).
var Table2Cases = []Table2Case{
	{Contract: "TetherUSD", Function: "transfer", Args: []any{workloadAccount(1), uint64(10)}},
	{Contract: "WETH9", Function: "withdraw", Args: []any{uint64(100)}},
	{Contract: "CryptoAuction", Function: "createSaleAuction", Args: []any{uint64(1 << 21), uint64(500)}},
	{Contract: "Ballot", Function: "vote", Args: []any{uint64(1)}},
}

func workloadAccount(i int) types.Address {
	var b [20]byte
	b[0] = 0xAC
	b[19] = byte(i)
	return types.Address(b)
}

// Table2Row reports the bytecode share of one invocation's loaded context.
type Table2Row struct {
	Contract, Function string
	BytecodeBytes      int
	OtherBytes         int
	BytecodeShare      float64
}

// fixedContextBytes approximates the fixed-length transaction and block
// header parameters of Table 4 loaded for every execution: nonce,
// gas fields, from, to, value, data length, plus the header words the
// environment instructions can read.
const fixedContextBytes = 104

// Table2 measures the proportion of bytecode in the loaded execution
// context for the paper's four example invocations.
func Table2(env *Env) []Table2Row {
	var rows []Table2Row
	for _, tc := range Table2Cases {
		c := env.Gen.Contract(tc.Contract)
		from := workloadAccount(200 + len(rows))
		input := contracts.EncodeCall(c.Function(tc.Function), tc.Args...)
		to := c.Address
		tx := &types.Transaction{
			Nonce: 0, GasPrice: 1, GasLimit: 2_000_000,
			From: from, To: &to, Data: input,
		}
		tx.Value.SetUint64(tc.Value)
		block := types.NewBlock(env.Gen.Header(), []*types.Transaction{tx})
		traces, _, _, err := core.CollectTraces(env.Genesis, block)
		if err != nil {
			panic(fmt.Sprintf("experiments: table2 %s.%s: %v", tc.Contract, tc.Function, err))
		}
		t := traces[0]
		bytecode := 0
		for _, cl := range t.CodeLoads {
			bytecode += cl.CodeBytes
		}
		slots := map[types.Hash]bool{}
		queries := 0
		for _, s := range t.Steps {
			switch {
			case s.Op == evm.SLOAD || s.Op == evm.SSTORE:
				slots[s.TouchSlot] = true
			case s.Op.Unit() == evm.FUStateQuery:
				queries++
			}
		}
		other := fixedContextBytes + len(input) + 32*len(slots) + 32*queries
		rows = append(rows, Table2Row{
			Contract:      tc.Contract,
			Function:      tc.Function,
			BytecodeBytes: bytecode,
			OtherBytes:    other,
			BytecodeShare: float64(bytecode) / float64(bytecode+other),
		})
	}
	return rows
}

// RenderTable2 formats the Table 2 data.
func RenderTable2(rows []Table2Row) string {
	t := metrics.NewTable("Table 2 — bytecode share of the loaded execution context",
		"Contract", "Function", "Bytecode(B)", "Other(B)", "Bytecode%")
	for _, r := range rows {
		t.Row(r.Contract, r.Function, r.BytecodeBytes, r.OtherBytes,
			metrics.Pct(r.BytecodeShare))
	}
	return t.String()
}

// Table6Row is one contract's dynamic instruction mix by functional unit.
type Table6Row struct {
	Contract string
	// Shares indexed by evm.FuncUnit (fractions of executed instructions).
	Shares [evm.NumFuncUnits]float64
}

// Table6 measures the executed-instruction breakdown of the TOP-8
// contracts over their entry-function batches. Contracts fan out over
// env.Workers.
func Table6(env *Env) []Table6Row {
	rows := make([]Table6Row, len(Top8Names))
	env.forEachPoint(len(rows), func(i int) {
		name := Top8Names[i]
		traces := env.batchTraces(name, 32)
		var counts [evm.NumFuncUnits]int
		total := 0
		for _, tr := range traces {
			for _, s := range tr.Steps {
				u := s.Op.Unit()
				if int(u) < evm.NumFuncUnits {
					counts[u]++
					total++
				}
			}
		}
		row := Table6Row{Contract: name}
		for u := 0; u < evm.NumFuncUnits; u++ {
			row.Shares[u] = float64(counts[u]) / float64(total)
		}
		rows[i] = row
	})
	return rows
}

// RenderTable6 formats the Table 6 data.
func RenderTable6(rows []Table6Row) string {
	headers := []string{"Contract"}
	for u := 0; u < evm.NumFuncUnits; u++ {
		headers = append(headers, evm.FuncUnit(u).String())
	}
	t := metrics.NewTable("Table 6 — executed instruction breakdown by functional unit", headers...)
	var avg [evm.NumFuncUnits]float64
	for _, r := range rows {
		cells := []any{r.Contract}
		for u := 0; u < evm.NumFuncUnits; u++ {
			cells = append(cells, metrics.Pct(r.Shares[u]))
			avg[u] += r.Shares[u]
		}
		t.Row(cells...)
	}
	cells := []any{"Avg"}
	for u := 0; u < evm.NumFuncUnits; u++ {
		cells = append(cells, metrics.Pct(avg[u]/float64(len(rows))))
	}
	t.Row(cells...)
	return t.String()
}

// ChunkingRow reports the §3.4 hotspot analysis for one (contract,
// function): the fraction of bytecode loaded after chunking plus
// pre-execution (the paper reports 8.2% for TetherToken transfer), and
// the instruction reductions.
type ChunkingRow struct {
	Contract, Function string
	LoadFraction       float64
	PreExecSteps       int
	TotalSteps         int
	SkippedFraction    float64
	PrefetchedSLOADs   int
	TotalSLOADs        int
}

// Chunking analyzes every TOP-8 entry function observed in a mixed
// batch. Contracts fan out over env.Workers; per-contract row groups are
// flattened in Top8Names order so the output is order-independent.
func Chunking(env *Env) []ChunkingRow {
	groups := make([][]ChunkingRow, len(Top8Names))
	env.forEachPoint(len(groups), func(gi int) {
		name := Top8Names[gi]
		c := env.Gen.Contract(name)
		traces := env.batchTraces(name, 40)
		var rows []ChunkingRow
		table := hotspot.NewContractTable()
		samples := map[[4]byte]*arch.TxTrace{}
		for _, tr := range traces {
			if tr.HasSelector {
				table.Learn(tr)
				if samples[tr.Selector] == nil {
					samples[tr.Selector] = tr
				}
			}
		}
		for _, key := range table.Keys() {
			info := table.Lookup(key.Addr, key.Selector)
			sample := samples[key.Selector]
			if sample == nil {
				continue
			}
			fn, ok := c.FunctionBySelector(key.Selector)
			if !ok {
				continue
			}
			plan := table.Plan(sample)
			slTotal, slPref := 0, 0
			for _, st := range plan.Steps {
				if st.Step.Op == evm.SLOAD {
					slTotal++
					if st.Annotation.Prefetched {
						slPref++
					}
				}
			}
			rows = append(rows, ChunkingRow{
				Contract:         name,
				Function:         fn.Name,
				LoadFraction:     info.LoadFractionOf(key.Addr),
				PreExecSteps:     info.PreExecLen,
				TotalSteps:       len(sample.Steps),
				SkippedFraction:  float64(plan.SkippedInstructions) / float64(len(sample.Steps)),
				PrefetchedSLOADs: slPref,
				TotalSLOADs:      slTotal,
			})
		}
		groups[gi] = rows
	})
	var rows []ChunkingRow
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows
}

// RenderChunking formats the hotspot-analysis report.
func RenderChunking(rows []ChunkingRow) string {
	t := metrics.NewTable("§3.4 — hotspot chunking, pre-execution, elimination and prefetch",
		"Contract", "Function", "Load%", "PreExec", "Steps", "Skipped%", "Prefetch")
	for _, r := range rows {
		t.Row(r.Contract, r.Function, metrics.Pct(r.LoadFraction), r.PreExecSteps,
			r.TotalSteps, metrics.Pct(r.SkippedFraction),
			fmt.Sprintf("%d/%d", r.PrefetchedSLOADs, r.TotalSLOADs))
	}
	return t.String()
}
