package experiments

import (
	"fmt"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/metrics"
	"mtpu/internal/mvstate"
	"mtpu/internal/workload"
)

// Shape of the scenario sweep: every mainnet-shaped Zipfian scenario,
// chained over ScenarioSweepBlocks blocks, replayed by every registered
// engine at each PU count. Skew 1.2 sits at the top of the mainnet
// account-popularity range, where the hotspot optimization's TOP-N
// skew assumption (§2.2.1) should pay off or visibly fail.
const (
	ScenarioSweepBlocks = 5
	ScenarioSweepTxs    = 32
	ScenarioSweepSkew   = 1.2
)

// ScenarioPUs are the PU counts the sweep crosses with each scenario.
var ScenarioPUs = []int{2, 8}

// ScenarioPoint is one (scenario, engine, PU-count) cell: the summed
// simulated cycles of the chained replay, the speedup against the first
// registered engine at the same cell, and the host-side simulated tx/s
// of the whole prepare→replay→commit chain.
type ScenarioPoint struct {
	Scenario string  `json:"scenario"`
	Engine   string  `json:"engine"`
	PUs      int     `json:"pus"`
	Blocks   int     `json:"blocks"`
	Txs      int     `json:"txs"`
	Skew     float64 `json:"skew"`
	Cycles   uint64  `json:"cycles"`
	Speedup  float64 `json:"speedup"` // vs the first registered engine
	TxPerSec float64 `json:"tx_per_sec"`
}

// ScenarioSweep replays every scenario chain under every registered
// engine at every PU count. Each cell opens its own scenario stream and
// mvstate store (chains are stateful; sharing one across engines would
// leak learned hotspots and head state between cells), so cells are
// independent and fan out over env.Workers. Speedups are computed after
// the barrier so row order never affects them.
func ScenarioSweep(env *Env) []ScenarioPoint {
	modes := engine.Modes()
	type cell struct {
		scenario string
		pus      int
	}
	var grid []cell
	for _, s := range workload.Scenarios {
		for _, pus := range ScenarioPUs {
			grid = append(grid, cell{s, pus})
		}
	}
	out := make([]ScenarioPoint, len(grid)*len(modes))
	env.forEachPoint(len(grid), func(gi int) {
		pt := grid[gi]
		spec := workload.ScenarioSpec{
			Scenario: pt.scenario,
			Blocks:   ScenarioSweepBlocks,
			Txs:      ScenarioSweepTxs,
			Skew:     ScenarioSweepSkew,
			Seed:     env.Seed,
		}
		for mi, m := range modes {
			src, err := spec.Open()
			if err != nil {
				panic(err)
			}
			acc := core.New(arch.DefaultConfig())
			store := mvstate.NewStore(src.Genesis(), nil)
			var cycles uint64
			txs := 0
			start := time.Now()
			for {
				b, ok := src.Next()
				if !ok {
					break
				}
				head := store.Head()
				prep, err := core.PrepareBlock(head, b)
				if err != nil {
					panic(err)
				}
				digest := prep.DigestAt(head, b.Header.Coinbase)
				res, err := acc.ReplayWith(b, prep.Traces, prep.Receipts, digest, m,
					core.ReplayOpts{NumPUs: pt.pus, Genesis: head.DB(), Head: head, Tel: env.Tel})
				if err != nil {
					panic(err)
				}
				env.record("scenarios/"+pt.scenario+"/"+m.String(), res.Pipeline, res.Cycles)
				cycles += res.Cycles
				txs += len(b.Transactions)
				// The Contract Table learns across the chain, exactly as
				// the stream service does between blocks.
				acc.LearnHotspots(prep.Traces, 8)
				store.Commit(prep.WriteKeys, prep.WriteVals, b.Header.Coinbase, &prep.Fees)
			}
			wall := time.Since(start).Seconds()
			if wall <= 0 {
				wall = 1e-9 // timer granularity floor keeps tx/s finite
			}
			out[gi*len(modes)+mi] = ScenarioPoint{
				Scenario: pt.scenario, Engine: m.String(), PUs: pt.pus,
				Blocks: spec.Blocks, Txs: spec.Txs, Skew: spec.Skew,
				Cycles: cycles, TxPerSec: float64(txs) / wall,
			}
		}
	})
	for gi := range grid {
		base := out[gi*len(modes)].Cycles
		for mi := range modes {
			p := &out[gi*len(modes)+mi]
			p.Speedup = float64(base) / float64(p.Cycles)
		}
	}
	return out
}

// RenderScenarios renders the headline scenario × engine × PU table
// followed by the hotspot-optimization delta per scenario.
func RenderScenarios(points []ScenarioPoint) string {
	t := metrics.NewTable(
		fmt.Sprintf("mainnet-shaped scenarios — every engine × PU count (%d blocks × %d txs, skew %.1f)",
			ScenarioSweepBlocks, ScenarioSweepTxs, ScenarioSweepSkew),
		"scenario", "engine", "PUs", "cycles", "speedup", "sim tx/s")
	for _, p := range points {
		t.Row(p.Scenario, p.Engine, p.PUs, p.Cycles, metrics.X(p.Speedup), int(p.TxPerSec))
	}
	return t.String() + "\n" + renderScenarioHotspotDelta(points)
}

// renderScenarioHotspotDelta isolates the paper's hotspot optimization:
// spatial-temporal+redundancy with and without the Contract Table, per
// scenario and PU count. Positive deltas are cycles the TOP-N skew
// assumption saved; negative ones are where it visibly fails.
func renderScenarioHotspotDelta(points []ScenarioPoint) string {
	type key struct {
		scenario string
		pus      int
	}
	red := map[key]ScenarioPoint{}
	hot := map[key]ScenarioPoint{}
	var order []key
	for _, p := range points {
		k := key{p.Scenario, p.PUs}
		switch p.Engine {
		case "spatial-temporal+redundancy":
			red[k] = p
			order = append(order, k)
		case "spatial-temporal+redundancy+hotspot":
			hot[k] = p
		}
	}
	t := metrics.NewTable(
		"hotspot-optimization delta (spatial-temporal+redundancy → +hotspot)",
		"scenario", "PUs", "cycles w/o", "cycles with", "delta")
	for _, k := range order {
		r, okR := red[k]
		h, okH := hot[k]
		if !okR || !okH {
			continue
		}
		delta := 100 * (float64(r.Cycles) - float64(h.Cycles)) / float64(r.Cycles)
		t.Row(k.scenario, k.pus, r.Cycles, h.Cycles, fmt.Sprintf("%+.1f%%", delta))
	}
	return t.String()
}
