package experiments

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/baseline"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/tracecache"
)

// ERC20Shares is the Table 8 sweep (proportion of ERC-20 transactions).
var ERC20Shares = []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.0}

// CompareBlockSize is the transactions per block in Tables 8/9.
const CompareBlockSize = 160

// Table8Row compares BPU and MTPU single-core speedups (over a scalar
// GSC-like engine) at one ERC-20 share.
type Table8Row struct {
	ERC20Share  float64
	BPUSpeedup  float64
	MTPUSpeedup float64
}

// Table8 reproduces the single-core BPU-vs-MTPU comparison. Shares fan
// out over env.Workers.
func Table8(env *Env) []Table8Row {
	erc20Addrs, erc20Sels := erc20AppSet(env.Gen)
	rows := make([]Table8Row, len(ERC20Shares))
	env.forEachPoint(len(rows), func(i int) {
		share := ERC20Shares[i]
		e := env.Cache.Get(tracecache.ERC20(CompareBlockSize, share))
		plans := e.PlainPlans()

		acc := core.New(arch.DefaultConfig())
		acc.Cfg.NumPUs = 1
		acc.LearnHotspots(e.Traces, 8)

		scalarRes, err := acc.ReplayWith(e.Block, e.Traces, e.Receipts, e.Digest,
			core.ModeScalar, core.ReplayOpts{NumPUs: 1, Plans: plans, Tel: env.Tel})
		if err != nil {
			panic(err)
		}
		mtpuRes, err := acc.ReplayWith(e.Block, e.Traces, e.Receipts, e.Digest,
			core.ModeSTHotspot, core.ReplayOpts{NumPUs: 1, Tel: env.Tel})
		if err != nil {
			panic(err)
		}

		flags := baseline.ERC20Flags(e.Block.Transactions, erc20Addrs, erc20Sels)
		bpu := baseline.New(1, e.Traces, flags)
		bpuRes := bpu.RunSequential(len(e.Traces))

		rows[i] = Table8Row{
			ERC20Share:  share,
			BPUSpeedup:  float64(scalarRes.Cycles) / float64(bpuRes.Makespan),
			MTPUSpeedup: float64(scalarRes.Cycles) / float64(mtpuRes.Cycles),
		}
	})
	return rows
}

// RenderTable8 formats the Table 8 data.
func RenderTable8(rows []Table8Row) string {
	headers := []string{""}
	for _, r := range rows {
		headers = append(headers, fmt.Sprintf("%.0f%%", r.ERC20Share*100))
	}
	t := metrics.NewTable("Table 8 — BPU vs MTPU, single core, by ERC-20 share", headers...)
	bpu := []any{"BPU"}
	mtpu := []any{"MTPU"}
	for _, r := range rows {
		bpu = append(bpu, metrics.X(r.BPUSpeedup))
		mtpu = append(mtpu, metrics.X(r.MTPUSpeedup))
	}
	t.Row(bpu...)
	t.Row(mtpu...)
	return t.String()
}

// Table9Ratios is the Table 9 dependent-transaction sweep.
var Table9Ratios = []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.0}

// Table9Row compares quad-core BPU and MTPU at one dependency ratio.
type Table9Row struct {
	DepRatio    float64
	BPUSpeedup  float64
	MTPUSpeedup float64
}

// Table9 reproduces the quad-core comparison over dependency ratios.
// Ratios fan out over env.Workers.
func Table9(env *Env) []Table9Row {
	erc20Addrs, erc20Sels := erc20AppSet(env.Gen)
	rows := make([]Table9Row, len(Table9Ratios))
	env.forEachPoint(len(rows), func(i int) {
		ratio := Table9Ratios[i]
		e := env.Cache.Get(tracecache.Mixed(CompareBlockSize, ratio))
		plans := e.PlainPlans()

		acc := core.New(arch.DefaultConfig())
		acc.Cfg.NumPUs = 4
		acc.LearnHotspots(e.Traces, 8)

		accScalar := core.New(arch.DefaultConfig())
		scalarRes, err := accScalar.ReplayWith(e.Block, e.Traces, e.Receipts, e.Digest,
			core.ModeScalar, core.ReplayOpts{Plans: plans, Tel: env.Tel})
		if err != nil {
			panic(err)
		}
		mtpuRes, err := acc.ReplayWith(e.Block, e.Traces, e.Receipts, e.Digest,
			core.ModeSTHotspot, core.ReplayOpts{NumPUs: 4, Tel: env.Tel})
		if err != nil {
			panic(err)
		}

		flags := baseline.ERC20Flags(e.Block.Transactions, erc20Addrs, erc20Sels)
		bpu := baseline.New(4, e.Traces, flags)
		bpuRes := bpu.RunSynchronous(e.Block.DAG)

		rows[i] = Table9Row{
			DepRatio:    ratio,
			BPUSpeedup:  float64(scalarRes.Cycles) / float64(bpuRes.Makespan),
			MTPUSpeedup: float64(scalarRes.Cycles) / float64(mtpuRes.Cycles),
		}
	})
	return rows
}

// RenderTable9 formats the Table 9 data.
func RenderTable9(rows []Table9Row) string {
	headers := []string{""}
	for _, r := range rows {
		headers = append(headers, fmt.Sprintf("%.0f%%", r.DepRatio*100))
	}
	t := metrics.NewTable("Table 9 — BPU vs MTPU, quad core, by dependent-tx ratio", headers...)
	bpu := []any{"BPU"}
	mtpu := []any{"MTPU"}
	for _, r := range rows {
		bpu = append(bpu, metrics.X(r.BPUSpeedup))
		mtpu = append(mtpu, metrics.X(r.MTPUSpeedup))
	}
	t.Row(bpu...)
	t.Row(mtpu...)
	return t.String()
}
