package experiments

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/baseline"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/workload"
)

// ERC20Shares is the Table 8 sweep (proportion of ERC-20 transactions).
var ERC20Shares = []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.0}

// CompareBlockSize is the transactions per block in Tables 8/9.
const CompareBlockSize = 160

// Table8Row compares BPU and MTPU single-core speedups (over a scalar
// GSC-like engine) at one ERC-20 share.
type Table8Row struct {
	ERC20Share  float64
	BPUSpeedup  float64
	MTPUSpeedup float64
}

// Table8 reproduces the single-core BPU-vs-MTPU comparison.
func Table8(env *Env) []Table8Row {
	erc20Addrs, erc20Sels := erc20AppSet(env.Gen)
	var rows []Table8Row
	for _, share := range ERC20Shares {
		block := env.Gen.ERC20Block(CompareBlockSize, share)
		if _, err := workload.BuildDAG(env.Genesis, block); err != nil {
			panic(fmt.Sprintf("experiments: table8 share %.1f: %v", share, err))
		}
		traces, receipts, digest, err := core.CollectTraces(env.Genesis, block)
		if err != nil {
			panic(err)
		}

		acc := core.New(arch.DefaultConfig())
		acc.Cfg.NumPUs = 1
		acc.LearnHotspots(traces, 8)

		scalarRes, err := acc.Replay(block, traces, receipts, digest, core.ModeScalar)
		if err != nil {
			panic(err)
		}
		mtpuRes, err := acc.Replay(block, traces, receipts, digest, core.ModeSTHotspot)
		if err != nil {
			panic(err)
		}

		flags := baseline.ERC20Flags(block.Transactions, erc20Addrs, erc20Sels)
		bpu := baseline.New(1, traces, flags)
		bpuRes := bpu.RunSequential(len(traces))

		rows = append(rows, Table8Row{
			ERC20Share:  share,
			BPUSpeedup:  float64(scalarRes.Cycles) / float64(bpuRes.Makespan),
			MTPUSpeedup: float64(scalarRes.Cycles) / float64(mtpuRes.Cycles),
		})
	}
	return rows
}

// RenderTable8 formats the Table 8 data.
func RenderTable8(rows []Table8Row) string {
	headers := []string{""}
	for _, r := range rows {
		headers = append(headers, fmt.Sprintf("%.0f%%", r.ERC20Share*100))
	}
	t := metrics.NewTable("Table 8 — BPU vs MTPU, single core, by ERC-20 share", headers...)
	bpu := []any{"BPU"}
	mtpu := []any{"MTPU"}
	for _, r := range rows {
		bpu = append(bpu, metrics.X(r.BPUSpeedup))
		mtpu = append(mtpu, metrics.X(r.MTPUSpeedup))
	}
	t.Row(bpu...)
	t.Row(mtpu...)
	return t.String()
}

// Table9Ratios is the Table 9 dependent-transaction sweep.
var Table9Ratios = []float64{1.0, 0.8, 0.6, 0.4, 0.2, 0.0}

// Table9Row compares quad-core BPU and MTPU at one dependency ratio.
type Table9Row struct {
	DepRatio    float64
	BPUSpeedup  float64
	MTPUSpeedup float64
}

// Table9 reproduces the quad-core comparison over dependency ratios.
func Table9(env *Env) []Table9Row {
	erc20Addrs, erc20Sels := erc20AppSet(env.Gen)
	var rows []Table9Row
	for _, ratio := range Table9Ratios {
		block := env.Gen.MixedBlock(CompareBlockSize, ratio)
		if _, err := workload.BuildDAG(env.Genesis, block); err != nil {
			panic(fmt.Sprintf("experiments: table9 ratio %.1f: %v", ratio, err))
		}
		traces, receipts, digest, err := core.CollectTraces(env.Genesis, block)
		if err != nil {
			panic(err)
		}

		acc := core.New(arch.DefaultConfig())
		acc.Cfg.NumPUs = 4
		acc.LearnHotspots(traces, 8)

		accScalar := core.New(arch.DefaultConfig())
		scalarRes, err := accScalar.Replay(block, traces, receipts, digest, core.ModeScalar)
		if err != nil {
			panic(err)
		}
		mtpuRes, err := acc.Replay(block, traces, receipts, digest, core.ModeSTHotspot)
		if err != nil {
			panic(err)
		}

		flags := baseline.ERC20Flags(block.Transactions, erc20Addrs, erc20Sels)
		bpu := baseline.New(4, traces, flags)
		bpuRes := bpu.RunSynchronous(block.DAG)

		rows = append(rows, Table9Row{
			DepRatio:    ratio,
			BPUSpeedup:  float64(scalarRes.Cycles) / float64(bpuRes.Makespan),
			MTPUSpeedup: float64(scalarRes.Cycles) / float64(mtpuRes.Cycles),
		})
	}
	return rows
}

// RenderTable9 formats the Table 9 data.
func RenderTable9(rows []Table9Row) string {
	headers := []string{""}
	for _, r := range rows {
		headers = append(headers, fmt.Sprintf("%.0f%%", r.DepRatio*100))
	}
	t := metrics.NewTable("Table 9 — BPU vs MTPU, quad core, by dependent-tx ratio", headers...)
	bpu := []any{"BPU"}
	mtpu := []any{"MTPU"}
	for _, r := range rows {
		bpu = append(bpu, metrics.X(r.BPUSpeedup))
		mtpu = append(mtpu, metrics.X(r.MTPUSpeedup))
	}
	t.Row(bpu...)
	t.Row(mtpu...)
	return t.String()
}
