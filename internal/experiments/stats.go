package experiments

import (
	"sort"
	"sync"

	"mtpu/internal/arch/pipeline"
	"mtpu/internal/metrics"
)

// Snapshot is the aggregate counter state of one experiment label: how
// many replays contributed, their summed simulated cycles, and the
// merged pipeline counters.
type Snapshot struct {
	Points   int            `json:"points"`
	Cycles   uint64         `json:"cycles"`
	Pipeline pipeline.Stats `json:"pipeline"`
}

// StatsRecorder merges per-point counter snapshots from sweep workers.
// Merging is a commutative sum, so a sweep fanned out over Env.Workers
// records byte-identical aggregates to the serial run.
type StatsRecorder struct {
	mu      sync.Mutex
	byLabel map[string]*Snapshot
}

// NewStatsRecorder returns an empty recorder.
func NewStatsRecorder() *StatsRecorder {
	return &StatsRecorder{byLabel: make(map[string]*Snapshot)}
}

// Record merges one replay's counters under label.
func (r *StatsRecorder) Record(label string, st pipeline.Stats, cycles uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.byLabel[label]
	if s == nil {
		s = &Snapshot{}
		r.byLabel[label] = s
	}
	s.Points++
	s.Cycles += cycles
	s.Pipeline.Add(st)
}

// Labels returns the recorded labels, sorted.
func (r *StatsRecorder) Labels() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byLabel))
	for l := range r.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Get returns the snapshot of one label (zero if absent).
func (r *StatsRecorder) Get(label string) Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.byLabel[label]; s != nil {
		return *s
	}
	return Snapshot{}
}

// Snapshots returns a copy of every recorded label's snapshot.
func (r *StatsRecorder) Snapshots() map[string]Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Snapshot, len(r.byLabel))
	for l, s := range r.byLabel {
		out[l] = *s
	}
	return out
}

// RenderStats formats the recorder as a paper-style counter table.
func RenderStats(r *StatsRecorder) string {
	t := metrics.NewTable("per-experiment counter snapshots",
		"experiment", "points", "cycles", "insts", "issue", "hits", "misses", "evicts", "IPC", "hit%")
	for _, l := range r.Labels() {
		s := r.Get(l)
		p := s.Pipeline
		t.Row(l, s.Points, s.Cycles, p.Instructions, p.IssueCycles,
			p.LineHits, p.LineMisses, p.LineEvictions,
			p.IPC(), metrics.Pct(p.HitRatio()))
	}
	return t.String()
}

// record routes one replay's counters into the environment's recorder;
// a nil recorder (the default) makes this a no-op, so experiments only
// pay for snapshots when mtpu-bench runs with -stats.
func (e *Env) record(label string, st pipeline.Stats, cycles uint64) {
	if e.Stats == nil {
		return
	}
	e.Stats.Record(label, st, cycles)
}
