package arch

import (
	"mtpu/internal/evm"
	"mtpu/internal/types"
)

// SymbolTable interns the addresses and storage keys of one block's
// traces into dense 1-based uint32 ids, assigned in first-appearance
// order — a pure function of the instruction stream, so identical
// traces always produce identical id assignments and the timing model
// stays deterministic. The hot structures downstream (DB-cache tags,
// the shared State Buffer, the scheduler tables) index arrays by these
// ids instead of hashing 20-byte addresses and 32-byte slot hashes on
// every simulated access.
//
// Id spaces:
//   - CodeID names a code address (DB-cache line tags).
//   - TouchID names a State Buffer key: either one storage slot
//     (addr, slot) or one account's state (addr). The two classes share
//     a single id space, mirroring the buffer's unified entry array.
//
// Ids are block-scoped: steps from different symbol tables must not be
// replayed through one warm structure (every replay runs a single
// block, so this cannot happen in the engine paths; structures also
// keep a slow path for id 0 that never aliases interned ids).
type SymbolTable struct {
	codeIDs   map[types.Address]uint32
	codeAddrs []types.Address

	storageIDs map[storageKey]uint32
	accountIDs map[types.Address]uint32
	touchCount uint32

	// lastCodeAddr/lastCodeID memoize the previous lookup: consecutive
	// steps nearly always execute the same contract.
	lastCodeAddr types.Address
	lastCodeID   uint32
}

type storageKey struct {
	addr types.Address
	slot types.Hash
}

// NewSymbolTable returns an empty table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{
		codeIDs:    make(map[types.Address]uint32),
		storageIDs: make(map[storageKey]uint32),
		accountIDs: make(map[types.Address]uint32),
	}
}

// CodeID interns a code address.
func (st *SymbolTable) CodeID(a types.Address) uint32 {
	if st.lastCodeID != 0 && a == st.lastCodeAddr {
		return st.lastCodeID
	}
	id, ok := st.codeIDs[a]
	if !ok {
		st.codeAddrs = append(st.codeAddrs, a)
		id = uint32(len(st.codeAddrs))
		st.codeIDs[a] = id
	}
	st.lastCodeAddr, st.lastCodeID = a, id
	return id
}

// CodeAddr returns the address behind a CodeID.
func (st *SymbolTable) CodeAddr(id uint32) types.Address { return st.codeAddrs[id-1] }

// NumCodeIDs returns how many code addresses are interned.
func (st *SymbolTable) NumCodeIDs() int { return len(st.codeAddrs) }

// StorageID interns one storage slot (SLOAD/SSTORE target).
func (st *SymbolTable) StorageID(addr types.Address, slot types.Hash) uint32 {
	k := storageKey{addr, slot}
	id, ok := st.storageIDs[k]
	if !ok {
		st.touchCount++
		id = st.touchCount
		st.storageIDs[k] = id
	}
	return id
}

// AccountID interns one account's state (BALANCE/EXTCODE* target). It
// never collides with StorageID: the two live in one id space but
// distinct key maps.
func (st *SymbolTable) AccountID(addr types.Address) uint32 {
	id, ok := st.accountIDs[addr]
	if !ok {
		st.touchCount++
		id = st.touchCount
		st.accountIDs[addr] = id
	}
	return id
}

// NumTouchIDs returns how many state-buffer keys are interned.
func (st *SymbolTable) NumTouchIDs() int { return int(st.touchCount) }

// Intern assigns step's CodeID and TouchID. The TouchID class follows
// the opcode: storage ops intern their (addr, slot), state queries
// their account; every other step leaves TouchID 0.
func (st *SymbolTable) Intern(s *evm.Step) {
	s.CodeID = st.CodeID(s.CodeAddr)
	switch {
	case s.Op == evm.SLOAD || s.Op == evm.SSTORE:
		s.TouchID = st.StorageID(s.TouchAddr, s.TouchSlot)
	case s.Op.Unit() == evm.FUStateQuery:
		s.TouchID = st.AccountID(s.TouchAddr)
	}
}
