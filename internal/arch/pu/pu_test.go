package pu

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/evm"
	"mtpu/internal/types"
)

var (
	conA = types.HexToAddress("0x00000000000000000000000000000000000000a1")
	conB = types.HexToAddress("0x00000000000000000000000000000000000000b2")
)

// trace builds a minimal SCT trace: one code load plus a few steps.
func trace(addr types.Address, codeBytes int, ops ...evm.Opcode) *arch.TxTrace {
	t := &arch.TxTrace{Contract: addr, HasSelector: true, Selector: [4]byte{1}}
	t.CodeLoads = []arch.CodeLoad{{Addr: addr, CodeBytes: codeBytes, Depth: 1}}
	pc := uint64(0)
	for _, op := range ops {
		t.Steps = append(t.Steps, evm.Step{PC: pc, Op: op, Depth: 1, CodeAddr: addr})
		pc += 1 + uint64(op.PushSize())
	}
	return t
}

func TestTransferCost(t *testing.T) {
	cfg := arch.ScalarConfig()
	p := New(0, cfg)
	tr := &arch.TxTrace{IsTransfer: true}
	cost := p.Run(PlainPlan(tr), pipeline.FlatMem{Cfg: cfg})
	want := cfg.TxSetupLat + 2*cfg.MainMemLat
	if cost.Total != want {
		t.Fatalf("transfer cost %d, want %d", cost.Total, want)
	}
	if cost.Pipeline != 0 {
		t.Fatal("transfer has pipeline cycles")
	}
}

func TestCodeLoadBandwidth(t *testing.T) {
	cfg := arch.ScalarConfig()
	p := New(0, cfg)
	tr := trace(conA, int(3*cfg.CodeLoadBytesPerCycle), evm.STOP)
	cost := p.Run(PlainPlan(tr), pipeline.FlatMem{Cfg: cfg})
	wantLoad := cfg.TxSetupLat + 3
	if cost.Load != wantLoad {
		t.Fatalf("load %d, want %d", cost.Load, wantLoad)
	}
	if cost.Total != cost.Load+cost.Pipeline {
		t.Fatal("total != load + pipeline")
	}
}

func TestResidencySkipsReload(t *testing.T) {
	cfg := arch.DefaultConfig() // ReuseContext on
	p := New(0, cfg)
	tr := trace(conA, 3200, evm.STOP)
	first := p.Run(PlainPlan(tr), pipeline.FlatMem{Cfg: cfg})
	second := p.Run(PlainPlan(tr), pipeline.FlatMem{Cfg: cfg})
	if second.Load >= first.Load {
		t.Fatalf("redundant tx reloaded code: %d vs %d", second.Load, first.Load)
	}
	if second.Load != cfg.TxSetupLat {
		t.Fatalf("warm load %d, want setup only %d", second.Load, cfg.TxSetupLat)
	}
}

func TestNoReuseAlwaysReloads(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.ReuseContext = false
	p := New(0, cfg)
	tr := trace(conA, 3200, evm.STOP)
	first := p.Run(PlainPlan(tr), pipeline.FlatMem{Cfg: cfg})
	second := p.Run(PlainPlan(tr), pipeline.FlatMem{Cfg: cfg})
	if second.Load != first.Load {
		t.Fatalf("no-reuse PU reused context: %d vs %d", second.Load, first.Load)
	}
}

func TestResidencyEviction(t *testing.T) {
	cfg := arch.DefaultConfig()
	p := New(0, cfg)
	mem := pipeline.FlatMem{Cfg: cfg}
	// Fill residency beyond capacity with distinct contracts.
	for i := 0; i < DefaultContractResidency+2; i++ {
		var a types.Address
		a[19] = byte(i + 1)
		p.Run(PlainPlan(trace(a, 640, evm.STOP)), mem)
	}
	// The first contract must have been evicted → full reload cost.
	var first types.Address
	first[19] = 1
	cost := p.Run(PlainPlan(trace(first, 640, evm.STOP)), mem)
	if cost.Load == cfg.TxSetupLat {
		t.Fatal("evicted contract served from residency")
	}
}

func TestLoadScaleAppliesFraction(t *testing.T) {
	cfg := arch.ScalarConfig()
	p := New(0, cfg)
	tr := trace(conA, 3200, evm.STOP)
	plan := PlainPlan(tr)
	plan.LoadScale = map[types.Address]float64{conA: 0.25}
	cost := p.Run(plan, pipeline.FlatMem{Cfg: cfg})
	wantLoad := cfg.TxSetupLat + (800+cfg.CodeLoadBytesPerCycle-1)/cfg.CodeLoadBytesPerCycle
	if cost.Load != wantLoad {
		t.Fatalf("scaled load %d, want %d", cost.Load, wantLoad)
	}
}

func TestBusyAccountingAndLastContract(t *testing.T) {
	cfg := arch.DefaultConfig()
	p := New(3, cfg)
	mem := pipeline.FlatMem{Cfg: cfg}
	c1 := p.Run(PlainPlan(trace(conA, 64, evm.STOP)), mem)
	c2 := p.Run(PlainPlan(trace(conB, 64, evm.STOP)), mem)
	if p.BusyCycles != c1.Total+c2.Total {
		t.Fatalf("busy %d", p.BusyCycles)
	}
	if p.TxCount != 2 {
		t.Fatalf("tx count %d", p.TxCount)
	}
	if p.LastContract != conB {
		t.Fatalf("last contract %s", p.LastContract)
	}
	if p.ID != 3 {
		t.Fatal("ID lost")
	}
}

func TestInnerCallLoadsCalleeCode(t *testing.T) {
	cfg := arch.ScalarConfig()
	p := New(0, cfg)
	tr := trace(conA, 320, evm.PUSH1, evm.STOP)
	tr.CodeLoads = append(tr.CodeLoads, arch.CodeLoad{Addr: conB, CodeBytes: 640, Depth: 2, StepIndex: 1})
	cost := p.Run(PlainPlan(tr), pipeline.FlatMem{Cfg: cfg})
	bw := cfg.CodeLoadBytesPerCycle
	wantLoad := cfg.TxSetupLat + (320+bw-1)/bw + (640+bw-1)/bw
	if cost.Load != wantLoad {
		t.Fatalf("load %d, want %d", cost.Load, wantLoad)
	}
}
