// Package pu models one processing unit of the MTPU: the instruction
// pipeline (arch/pipeline) plus the transaction-context machinery — the
// Call_Contract stack that loads contract bytecode (the dominant context
// cost, Table 2) and keeps it resident for redundant transactions, and
// the fixed per-transaction setup work.
package pu

import (
	"sync"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/evm"
	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// DefaultContractResidency is used when the configuration leaves
// ContractResidency unset.
const DefaultContractResidency = 8

// Plan is a transaction prepared for timing replay: the (possibly
// hotspot-filtered) steps, their annotations, and per-contract bytecode
// load scaling from chunk-based loading (§3.4.2).
type Plan struct {
	Trace *arch.TxTrace
	// Steps are the instructions that actually issue (pre-executed and
	// eliminated instructions removed). Nil means Trace.Steps unmodified.
	Steps []pipeline.AnnotatedStep
	// LoadScale maps a contract address to the fraction of its bytecode
	// loaded (1.0 when hotspot chunking is off). Missing entries mean 1.
	LoadScale map[types.Address]float64
	// SkippedInstructions counts instructions removed by hotspot
	// optimization (for reporting).
	SkippedInstructions int

	// Memo is an optional shared fill-segmentation memo (see
	// AttachFillMemo); the PU attaches it to its pipeline before replay.
	Memo *pipeline.FillMemo

	splitOnce  sync.Once
	splitSteps []evm.Step
	splitAnn   []pipeline.Annotation
	splitHot   *pipeline.HotPlan
}

// Split returns the plan's steps separated into the parallel slices the
// pipeline consumes, computed once per plan and shared by every replay
// (including concurrent ones) — the slices are read-only during replay.
func (p *Plan) Split() ([]evm.Step, []pipeline.Annotation) {
	p.splitOnce.Do(func() {
		p.splitSteps, p.splitAnn = pipeline.Split(p.Steps)
		p.splitHot = pipeline.NewHotPlan(p.splitSteps, p.splitAnn)
	})
	return p.splitSteps, p.splitAnn
}

// Hot returns the precomputed hot-path plan of the steps (nil for
// un-interned traces), computed alongside Split.
func (p *Plan) Hot() *pipeline.HotPlan {
	p.Split()
	return p.splitHot
}

// PlainPlan wraps a trace with no hotspot optimization.
func PlainPlan(t *arch.TxTrace) *Plan {
	steps := make([]pipeline.AnnotatedStep, len(t.Steps))
	for i := range t.Steps {
		steps[i].Step = t.Steps[i]
	}
	return &Plan{Trace: t, Steps: steps}
}

// PlainPlans builds the unoptimized plan of every trace.
func PlainPlans(traces []*arch.TxTrace) []*Plan {
	plans := make([]*Plan, len(traces))
	for i, t := range traces {
		plans[i] = PlainPlan(t)
	}
	return plans
}

// AttachFillMemo computes the shared fill-segmentation memo of a plan
// set under the default fill rules and attaches it to every plan, so
// all PUs and all replays of the set reuse one canonical segmentation
// instead of each re-deriving it. Worth doing only for plan sets that
// are replayed repeatedly (cached entries); a one-shot replay would pay
// the build without amortizing it. Must be called before the plans are
// shared across goroutines.
func AttachFillMemo(cfg arch.Config, plans []*Plan) {
	memo := pipeline.NewFillMemo(cfg)
	for _, p := range plans {
		steps, ann := p.Split()
		memo.AddTrace(steps, ann)
	}
	for _, p := range plans {
		p.Memo = memo
	}
}

// Cost breaks down the cycles of one transaction on a PU.
type Cost struct {
	Total    uint64
	Load     uint64 // context construction (bytecode + setup)
	Pipeline uint64 // instruction execution
}

// PU is one processing unit with persistent microarchitectural state.
type PU struct {
	ID  int
	cfg arch.Config

	pipe *pipeline.Pipeline

	// resident tracks contracts loaded in the Call_Contract stack (LRU).
	resident []types.Address

	// LastContract is the contract of the most recent transaction; the
	// scheduler steers redundant transactions here (§3.2.2).
	LastContract types.Address

	// BusyUntil is the completion time used by the discrete-event engine.
	BusyUntil uint64
	// BusyCycles accumulates working (non-idle) time for utilization.
	BusyCycles uint64
	// LoadCycles is the context-construction share of BusyCycles
	// (bytecode loading plus per-transaction setup) — the load-stall
	// term of the internal/obs cycle attribution.
	LoadCycles uint64
	// TxCount counts transactions executed on this PU.
	TxCount int
}

// New returns an idle PU.
func New(id int, cfg arch.Config) *PU {
	return &PU{ID: id, cfg: cfg, pipe: pipeline.New(cfg)}
}

// Pipeline exposes the pipeline for stats collection.
func (p *PU) Pipeline() *pipeline.Pipeline { return p.pipe }

// Reset returns the PU to its just-constructed state (pipeline arenas
// kept warm), so a pooled PU replays byte-identically to a fresh one.
func (p *PU) Reset() {
	p.pipe.Reset()
	p.pipe.SetSink(nil, p.ID)
	p.resident = p.resident[:0]
	p.LastContract = types.Address{}
	p.BusyUntil = 0
	p.BusyCycles = 0
	p.LoadCycles = 0
	p.TxCount = 0
}

// SetSink attaches an instrumentation sink to the PU's pipeline,
// labelling events with the PU id. nil disables.
func (p *PU) SetSink(s obs.Sink) { p.pipe.SetSink(s, p.ID) }

// isResident reports (and refreshes) Call_Contract stack residency.
func (p *PU) isResident(addr types.Address) bool {
	for i, a := range p.resident {
		if a == addr {
			// Move to front.
			copy(p.resident[1:i+1], p.resident[:i])
			p.resident[0] = a
			return true
		}
	}
	return false
}

func (p *PU) load(addr types.Address) {
	cap := p.cfg.ContractResidency
	if cap <= 0 {
		cap = DefaultContractResidency
	}
	p.resident = append([]types.Address{addr}, p.resident...)
	if len(p.resident) > cap {
		p.resident = p.resident[:cap]
	}
}

// Run replays one transaction and returns its cycle cost. PU state (DB
// cache, residency) persists across calls when ReuseContext is enabled
// and is flushed otherwise.
func (p *PU) Run(plan *Plan, mem pipeline.MemModel) Cost {
	if !p.cfg.ReuseContext {
		p.pipe.Flush()
		p.resident = p.resident[:0]
	}

	var cost Cost
	cost.Load = p.cfg.TxSetupLat

	t := plan.Trace
	if t.IsTransfer {
		// A token transfer touches two balances and writes them back.
		cost.Load += 2 * p.cfg.MainMemLat
		cost.Total = cost.Load
		p.finish(t, cost)
		return cost
	}

	for _, cl := range t.CodeLoads {
		if cl.CodeBytes == 0 {
			continue
		}
		if p.cfg.ReuseContext && p.isResident(cl.Addr) {
			// Bytecode reused from the Call_Contract stack (§3.3.5).
			continue
		}
		bytes := uint64(cl.CodeBytes)
		if plan.LoadScale != nil {
			if f, ok := plan.LoadScale[cl.Addr]; ok {
				bytes = uint64(float64(bytes)*f + 0.5)
			}
		}
		bw := p.cfg.CodeLoadBytesPerCycle
		if bw == 0 {
			bw = 1
		}
		cost.Load += (bytes + bw - 1) / bw
		p.load(cl.Addr)
	}

	steps, ann := plan.Split()
	p.pipe.SetFillMemo(plan.Memo)
	cost.Pipeline = p.pipe.ExecuteHot(steps, ann, plan.Hot(), mem)
	cost.Total = cost.Load + cost.Pipeline
	p.finish(t, cost)
	return cost
}

func (p *PU) finish(t *arch.TxTrace, cost Cost) {
	p.LastContract = t.Contract
	p.BusyCycles += cost.Total
	p.LoadCycles += cost.Load
	p.TxCount++
}
