package mtpu

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/evm"
	"mtpu/internal/types"
)

var (
	acctA = types.HexToAddress("0x00000000000000000000000000000000000000d1")
	slotX = types.BytesToHash([]byte{0x11})
	slotY = types.BytesToHash([]byte{0x22})
)

func TestStateBufferLRU(t *testing.T) {
	b := NewStateBuffer(2)
	k1 := sbKey{sbStorage, acctA, slotX}
	k2 := sbKey{sbStorage, acctA, slotY}
	k3 := sbKey{sbAccount, acctA, types.Hash{}}

	if b.Touch(k1) {
		t.Fatal("cold hit")
	}
	if !b.Touch(k1) {
		t.Fatal("warm miss")
	}
	b.Touch(k2)
	b.Touch(k1) // refresh k1; k2 is now LRU
	b.Touch(k3) // evicts k2
	if b.Touch(k2) {
		t.Fatal("evicted key hit")
	}
	if !b.Touch(k1) {
		// k1 was evicted when k2 re-entered (capacity 2: k3,k2 resident).
		// After re-touching k2 above, residents are {k2, k3}; k1 gone.
		t.Log("k1 evicted as expected after k2 reinsertion")
	}
	if b.Len() != 2 {
		t.Fatalf("len %d", b.Len())
	}
}

func TestStateBufferStats(t *testing.T) {
	b := NewStateBuffer(10)
	k := sbKey{sbStorage, acctA, slotX}
	b.Touch(k)
	b.Touch(k)
	b.Touch(k)
	if b.Hits != 2 || b.Misses != 1 {
		t.Fatalf("hits %d misses %d", b.Hits, b.Misses)
	}
}

// storStep builds an un-interned storage-access step (TouchID 0, so the
// memory model exercises its key-hashing fallback).
func storStep(addr types.Address, slot types.Hash) *evm.Step {
	return &evm.Step{Op: evm.SLOAD, TouchAddr: addr, TouchSlot: slot}
}

func TestProcessorMemLatencies(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := New(cfg)
	mem := m.Mem()

	// Cold storage read → main memory; warm → env buffer.
	if got := mem.StorageRead(storStep(acctA, slotX), false); got != cfg.MainMemLat {
		t.Fatalf("cold read %d", got)
	}
	if got := mem.StorageRead(storStep(acctA, slotX), false); got != cfg.EnvBufferLat {
		t.Fatalf("warm read %d", got)
	}
	// Prefetched → dcache regardless of buffer.
	if got := mem.StorageRead(storStep(acctA, slotY), true); got != cfg.DCacheLat {
		t.Fatalf("prefetched read %d", got)
	}
	// Writes cost the write latency and warm the buffer.
	if got := mem.StorageWrite(storStep(acctA, slotY)); got != cfg.StorageWriteLat {
		t.Fatalf("write %d", got)
	}
	if got := mem.StorageRead(storStep(acctA, slotY), false); got != cfg.EnvBufferLat {
		t.Fatalf("read after write %d", got)
	}
	// Account queries share the buffer.
	q := &evm.Step{Op: evm.BALANCE, TouchAddr: acctA}
	if got := mem.StateQuery(q, false); got != cfg.MainMemLat {
		t.Fatalf("cold query %d", got)
	}
	if got := mem.StateQuery(q, false); got != cfg.EnvBufferLat {
		t.Fatalf("warm query %d", got)
	}
}

// TestInternedAndFallbackKeysCoexist drives one buffer with both
// interned TouchIDs and fallback keys: the two id spaces must never
// alias.
func TestInternedAndFallbackKeysCoexist(t *testing.T) {
	b := NewStateBuffer(8)
	if b.TouchID(1) {
		t.Fatal("cold interned hit")
	}
	if b.Touch(sbKey{sbStorage, acctA, slotX}) {
		t.Fatal("cold fallback hit")
	}
	if !b.TouchID(1) || !b.Touch(sbKey{sbStorage, acctA, slotX}) {
		t.Fatal("warm miss")
	}
	if b.Len() != 2 {
		t.Fatalf("len %d, want 2 (id spaces aliased?)", b.Len())
	}
}

func TestReuseOffDisablesStateBuffer(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.ReuseContext = false
	m := New(cfg)
	mem := m.Mem()
	mem.StorageRead(storStep(acctA, slotX), false)
	if got := mem.StorageRead(storStep(acctA, slotX), false); got != cfg.MainMemLat {
		t.Fatalf("state buffer active with reuse off: %d", got)
	}
	if m.SBuf.Len() != 0 {
		t.Fatal("buffer populated with reuse off")
	}
}

func TestProcessorBuildsPUs(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.NumPUs = 6
	m := New(cfg)
	if len(m.PUs) != 6 {
		t.Fatalf("%d PUs", len(m.PUs))
	}
	for i, p := range m.PUs {
		if p.ID != i {
			t.Fatalf("PU %d has ID %d", i, p.ID)
		}
	}
	// Aggregated stats start zeroed.
	if s := m.PipelineStats(); s.Instructions != 0 || s.Cycles != 0 {
		t.Fatalf("fresh stats %+v", s)
	}
}

func TestStateBufferResetDropsEntriesKeepsIntern(t *testing.T) {
	b := NewStateBuffer(4)
	k1 := sbKey{sbStorage, acctA, slotX}
	b.Touch(k1)
	b.TouchID(7)
	b.TouchID(7)
	id1 := b.fallback[k1]
	if b.Len() != 2 || b.Hits != 1 {
		t.Fatalf("len %d hits %d before reset", b.Len(), b.Hits)
	}

	b.Reset()
	if b.Len() != 0 || b.Hits != 0 || b.Misses != 0 {
		t.Fatalf("len %d hits %d misses %d after reset", b.Len(), b.Hits, b.Misses)
	}
	// Every reset key is cold again — TouchID 7 belonged to the previous
	// plan set's symbol table and must not alias whatever set comes next.
	if b.TouchID(7) {
		t.Fatal("stale TouchID survived Reset")
	}
	if b.Touch(k1) {
		t.Fatal("stale fallback entry resident after Reset")
	}
	// The fallback intern table is address-keyed, not symbol-table
	// scoped, so the id assignment itself persists.
	if got := b.fallback[k1]; got != id1 {
		t.Fatalf("fallback id changed across Reset: %d then %d", id1, got)
	}
}

func TestStateBufferResetMatchesFresh(t *testing.T) {
	touch := func(b *StateBuffer) (hits, misses uint64) {
		for round := 0; round < 3; round++ {
			for id := uint32(1); id <= 24; id++ {
				b.TouchID(id)
			}
		}
		return b.Hits, b.Misses
	}
	fresh := NewStateBuffer(16)
	fh, fm := touch(fresh)

	reused := NewStateBuffer(16)
	for id := uint32(1); id <= 40; id += 3 { // arbitrary prior block
		reused.TouchID(id)
	}
	reused.Reset()
	rh, rm := touch(reused)
	if rh != fh || rm != fm {
		t.Fatalf("reused buffer hits/misses %d/%d, fresh %d/%d", rh, rm, fh, fm)
	}
}

// TestStateBufferWarmTouchZeroAllocs pins the arena layout property the
// perf pass depends on: once a working set is resident, interned and
// fallback touches are pure array/LRU operations.
func TestStateBufferWarmTouchZeroAllocs(t *testing.T) {
	b := NewStateBuffer(64)
	keys := make([]sbKey, 16)
	for i := range keys {
		keys[i] = sbKey{sbStorage, acctA, types.BytesToHash([]byte{byte(i)})}
		b.Touch(keys[i])
	}
	for id := uint32(1); id <= 16; id++ {
		b.TouchID(id)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			b.Touch(k)
		}
		for id := uint32(1); id <= 16; id++ {
			b.TouchID(id)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm State Buffer touches allocated %.1f times per run", allocs)
	}
}

func TestProcessorResetClearsPUs(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.NumPUs = 2
	m := New(cfg)
	m.SBuf.TouchID(3)
	m.PUs[0].LastContract = acctA
	m.PUs[1].BusyUntil = 99

	m.Reset()
	if m.SBuf.Len() != 0 {
		t.Fatalf("state buffer kept %d entries", m.SBuf.Len())
	}
	if m.PUs[0].LastContract != (types.Address{}) || m.PUs[1].BusyUntil != 0 {
		t.Fatal("PU state survived Reset")
	}
}
