package mtpu

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/types"
)

var (
	acctA = types.HexToAddress("0x00000000000000000000000000000000000000d1")
	slotX = types.BytesToHash([]byte{0x11})
	slotY = types.BytesToHash([]byte{0x22})
)

func TestStateBufferLRU(t *testing.T) {
	b := NewStateBuffer(2)
	k1 := sbKey{sbStorage, acctA, slotX}
	k2 := sbKey{sbStorage, acctA, slotY}
	k3 := sbKey{sbAccount, acctA, types.Hash{}}

	if b.Touch(k1) {
		t.Fatal("cold hit")
	}
	if !b.Touch(k1) {
		t.Fatal("warm miss")
	}
	b.Touch(k2)
	b.Touch(k1) // refresh k1; k2 is now LRU
	b.Touch(k3) // evicts k2
	if b.Touch(k2) {
		t.Fatal("evicted key hit")
	}
	if !b.Touch(k1) {
		// k1 was evicted when k2 re-entered (capacity 2: k3,k2 resident).
		// After re-touching k2 above, residents are {k2, k3}; k1 gone.
		t.Log("k1 evicted as expected after k2 reinsertion")
	}
	if b.Len() != 2 {
		t.Fatalf("len %d", b.Len())
	}
}

func TestStateBufferStats(t *testing.T) {
	b := NewStateBuffer(10)
	k := sbKey{sbStorage, acctA, slotX}
	b.Touch(k)
	b.Touch(k)
	b.Touch(k)
	if b.Hits != 2 || b.Misses != 1 {
		t.Fatalf("hits %d misses %d", b.Hits, b.Misses)
	}
}

func TestProcessorMemLatencies(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := New(cfg)
	mem := m.Mem()

	// Cold storage read → main memory; warm → env buffer.
	if got := mem.StorageRead(acctA, slotX, false); got != cfg.MainMemLat {
		t.Fatalf("cold read %d", got)
	}
	if got := mem.StorageRead(acctA, slotX, false); got != cfg.EnvBufferLat {
		t.Fatalf("warm read %d", got)
	}
	// Prefetched → dcache regardless of buffer.
	if got := mem.StorageRead(acctA, slotY, true); got != cfg.DCacheLat {
		t.Fatalf("prefetched read %d", got)
	}
	// Writes cost the write latency and warm the buffer.
	if got := mem.StorageWrite(acctA, slotY); got != cfg.StorageWriteLat {
		t.Fatalf("write %d", got)
	}
	if got := mem.StorageRead(acctA, slotY, false); got != cfg.EnvBufferLat {
		t.Fatalf("read after write %d", got)
	}
	// Account queries share the buffer.
	if got := mem.StateQuery(acctA, false); got != cfg.MainMemLat {
		t.Fatalf("cold query %d", got)
	}
	if got := mem.StateQuery(acctA, false); got != cfg.EnvBufferLat {
		t.Fatalf("warm query %d", got)
	}
}

func TestReuseOffDisablesStateBuffer(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.ReuseContext = false
	m := New(cfg)
	mem := m.Mem()
	mem.StorageRead(acctA, slotX, false)
	if got := mem.StorageRead(acctA, slotX, false); got != cfg.MainMemLat {
		t.Fatalf("state buffer active with reuse off: %d", got)
	}
	if m.SBuf.Len() != 0 {
		t.Fatal("buffer populated with reuse off")
	}
}

func TestProcessorBuildsPUs(t *testing.T) {
	cfg := arch.DefaultConfig()
	cfg.NumPUs = 6
	m := New(cfg)
	if len(m.PUs) != 6 {
		t.Fatalf("%d PUs", len(m.PUs))
	}
	for i, p := range m.PUs {
		if p.ID != i {
			t.Fatalf("PU %d has ID %d", i, p.ID)
		}
	}
	// Aggregated stats start zeroed.
	if s := m.PipelineStats(); s.Instructions != 0 || s.Cycles != 0 {
		t.Fatalf("fresh stats %+v", s)
	}
}
