// Package mtpu assembles the multi-transaction processing unit: NumPUs
// processing units sharing an execution-environment buffer whose State
// Buffer serves recently touched state at buffer latency instead of main
// memory (§3.3.6), exactly the reuse channel the redundancy optimization
// exploits between transactions that touch the same contract state.
package mtpu

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/evm"
	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// sbKind distinguishes State Buffer entry classes.
type sbKind uint8

const (
	sbStorage sbKind = iota
	sbAccount
)

// sbKey identifies one buffer entry for accesses that carry no interned
// TouchID (hand-built steps); interned accesses index the buffer by id
// directly.
type sbKey struct {
	kind sbKind
	addr types.Address
	slot types.Hash
}

// StateBuffer is the shared recently-touched-state cache. Modified state
// is written back after commit but "the state of dependent transactions
// is kept for a period of time so that subsequent transactions are able
// to access it directly". Entries are identified by the dense TouchID
// the trace-build symbol table assigned, so a touch is two array
// indexes and an LRU splice — no hashing of the 53-byte (kind, addr,
// slot) key — and all storage (the id-indexed directory plus a node
// arena with a free list) is reused, so a warm buffer never allocates.
type StateBuffer struct {
	capacity int
	// dir maps interned TouchIDs (1-based) to their arena node, -1 when
	// absent; localDir does the same for locally interned ids. Both grow
	// to the largest id seen and are never shrunk.
	dir      []int32
	localDir []int32
	nodes    []sbNode
	// LRU list plus free list as arena indexes (-1 = none).
	head, tail, free int32
	count            int

	Hits, Misses uint64

	// fallback interns un-id'd keys into the same id space, starting at
	// sbLocalIDBase so they never alias symbol-table ids.
	fallback map[sbKey]uint32
}

type sbNode struct {
	id         uint32
	prev, next int32
}

// sbLocalIDBase is the first locally interned TouchID.
const sbLocalIDBase = 1 << 31

// NewStateBuffer returns a buffer holding up to capacity entries.
func NewStateBuffer(capacity int) *StateBuffer {
	return &StateBuffer{capacity: capacity, head: -1, tail: -1, free: -1}
}

// Touch records an access to the key with no interned id.
func (b *StateBuffer) Touch(k sbKey) bool {
	if b.fallback == nil {
		b.fallback = make(map[sbKey]uint32)
	}
	id, ok := b.fallback[k]
	if !ok {
		id = sbLocalIDBase + uint32(len(b.fallback))
		b.fallback[k] = id
	}
	return b.TouchID(id)
}

// TouchID records an access to the interned key id and reports whether
// it hit.
func (b *StateBuffer) TouchID(id uint32) bool {
	slot := b.dirSlot(id)
	if i := *slot; i >= 0 {
		b.unlink(i)
		b.pushFront(i)
		b.Hits++
		return true
	}
	i := b.alloc()
	n := &b.nodes[i]
	n.id = id
	*slot = i
	b.pushFront(i)
	b.count++
	if b.capacity > 0 && b.count > b.capacity {
		victim := b.tail
		b.unlink(victim)
		*b.dirSlot(b.nodes[victim].id) = -1
		b.nodes[victim].next = b.free
		b.free = victim
		b.count--
	}
	b.Misses++
	return false
}

// dirSlot returns the directory cell for id, growing the directory on
// first sight; locally interned ids (top bit set) live in their own
// directory so both stay proportional to the number of distinct keys.
func (b *StateBuffer) dirSlot(id uint32) *int32 {
	dir, idx := &b.dir, int(id)
	if id >= sbLocalIDBase {
		dir, idx = &b.localDir, int(id-sbLocalIDBase)
	}
	for len(*dir) <= idx {
		*dir = append(*dir, -1)
	}
	return &(*dir)[idx]
}

// Reset empties the buffer while keeping the directory, node arena and
// fallback intern table for reuse. Interned TouchIDs are per-plan-set,
// so resident entries must be dropped before the buffer serves another
// set; the fallback table is keyed by full (kind, addr, slot) keys and
// persists safely.
func (b *StateBuffer) Reset() {
	for i := b.head; i >= 0; {
		next := b.nodes[i].next
		*b.dirSlot(b.nodes[i].id) = -1
		b.nodes[i].next = b.free
		b.free = i
		i = next
	}
	b.head, b.tail = -1, -1
	b.count = 0
	b.Hits, b.Misses = 0, 0
}

func (b *StateBuffer) alloc() int32 {
	if i := b.free; i >= 0 {
		b.free = b.nodes[i].next
		return i
	}
	b.nodes = append(b.nodes, sbNode{})
	return int32(len(b.nodes) - 1)
}

func (b *StateBuffer) pushFront(i int32) {
	n := &b.nodes[i]
	n.prev = -1
	n.next = b.head
	if b.head >= 0 {
		b.nodes[b.head].prev = i
	}
	b.head = i
	if b.tail < 0 {
		b.tail = i
	}
}

func (b *StateBuffer) unlink(i int32) {
	n := &b.nodes[i]
	if n.prev >= 0 {
		b.nodes[n.prev].next = n.next
	} else {
		b.head = n.next
	}
	if n.next >= 0 {
		b.nodes[n.next].prev = n.prev
	} else {
		b.tail = n.prev
	}
}

// Len returns the number of resident entries.
func (b *StateBuffer) Len() int { return b.count }

// Processor is the MTPU: the PUs plus the shared memory system.
type Processor struct {
	Cfg  arch.Config
	PUs  []*pu.PU
	SBuf *StateBuffer
}

// New builds a processor with cfg.NumPUs processing units.
func New(cfg arch.Config) *Processor {
	m := &Processor{
		Cfg:  cfg,
		SBuf: NewStateBuffer(cfg.StateBufferSlots),
	}
	for i := 0; i < cfg.NumPUs; i++ {
		m.PUs = append(m.PUs, pu.New(i, cfg))
	}
	return m
}

// Reset returns the processor to its just-constructed state — every PU
// and the State Buffer cleared, all arenas kept warm — so a pooled
// processor replays a new block byte-identically to a fresh one.
func (m *Processor) Reset() {
	m.SBuf.Reset()
	for _, p := range m.PUs {
		p.Reset()
	}
}

// SetSink attaches an instrumentation sink to every PU's pipeline
// (nil disables). Call before dispatching work.
func (m *Processor) SetSink(s obs.Sink) {
	for _, p := range m.PUs {
		p.SetSink(s)
	}
}

// Mem returns the memory model PUs execute against.
func (m *Processor) Mem() pipeline.MemModel {
	return procMem{m}
}

// procMem implements pipeline.MemModel over the shared State Buffer.
// Interned steps index the buffer by TouchID; steps without one fall
// back to key hashing.
type procMem struct{ m *Processor }

// touch records the access behind s in the State Buffer.
func (pm procMem) touch(s *evm.Step, kind sbKind) bool {
	if s.TouchID != 0 {
		return pm.m.SBuf.TouchID(s.TouchID)
	}
	k := sbKey{kind: kind, addr: s.TouchAddr}
	if kind == sbStorage {
		k.slot = s.TouchSlot
	}
	return pm.m.SBuf.Touch(k)
}

// StorageRead implements pipeline.MemModel.
func (pm procMem) StorageRead(s *evm.Step, prefetched bool) uint64 {
	cfg := &pm.m.Cfg
	if prefetched {
		return cfg.DCacheLat
	}
	if cfg.ReuseContext && pm.touch(s, sbStorage) {
		return cfg.EnvBufferLat
	}
	return cfg.MainMemLat
}

// StorageWrite implements pipeline.MemModel. Writes land in the State
// Buffer and are written back off the critical path.
func (pm procMem) StorageWrite(s *evm.Step) uint64 {
	cfg := &pm.m.Cfg
	if cfg.ReuseContext {
		pm.touch(s, sbStorage)
	}
	return cfg.StorageWriteLat
}

// StateQuery implements pipeline.MemModel.
func (pm procMem) StateQuery(s *evm.Step, prefetched bool) uint64 {
	cfg := &pm.m.Cfg
	if prefetched {
		return cfg.DCacheLat
	}
	if cfg.ReuseContext && pm.touch(s, sbAccount) {
		return cfg.EnvBufferLat
	}
	return cfg.MainMemLat
}

// PipelineStats sums the pipeline counters of every PU.
func (m *Processor) PipelineStats() pipeline.Stats {
	var s pipeline.Stats
	for _, p := range m.PUs {
		s.Add(p.Pipeline().Stats())
	}
	return s
}
