// Package mtpu assembles the multi-transaction processing unit: NumPUs
// processing units sharing an execution-environment buffer whose State
// Buffer serves recently touched state at buffer latency instead of main
// memory (§3.3.6), exactly the reuse channel the redundancy optimization
// exploits between transactions that touch the same contract state.
package mtpu

import (
	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// sbKind distinguishes State Buffer entry classes.
type sbKind uint8

const (
	sbStorage sbKind = iota
	sbAccount
)

type sbKey struct {
	kind sbKind
	addr types.Address
	slot types.Hash
}

// StateBuffer is the shared recently-touched-state cache. Modified state
// is written back after commit but "the state of dependent transactions
// is kept for a period of time so that subsequent transactions are able
// to access it directly".
type StateBuffer struct {
	capacity int
	entries  map[sbKey]*sbNode
	head     *sbNode
	tail     *sbNode

	Hits, Misses uint64
}

type sbNode struct {
	key        sbKey
	prev, next *sbNode
}

// NewStateBuffer returns a buffer holding up to capacity entries.
func NewStateBuffer(capacity int) *StateBuffer {
	return &StateBuffer{capacity: capacity, entries: make(map[sbKey]*sbNode)}
}

// Touch records an access and reports whether it hit.
func (b *StateBuffer) Touch(k sbKey) bool {
	if n, ok := b.entries[k]; ok {
		b.unlink(n)
		b.pushFront(n)
		b.Hits++
		return true
	}
	n := &sbNode{key: k}
	b.entries[k] = n
	b.pushFront(n)
	if b.capacity > 0 && len(b.entries) > b.capacity {
		victim := b.tail
		b.unlink(victim)
		delete(b.entries, victim.key)
	}
	b.Misses++
	return false
}

func (b *StateBuffer) pushFront(n *sbNode) {
	n.prev = nil
	n.next = b.head
	if b.head != nil {
		b.head.prev = n
	}
	b.head = n
	if b.tail == nil {
		b.tail = n
	}
}

func (b *StateBuffer) unlink(n *sbNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		b.tail = n.prev
	}
}

// Len returns the number of resident entries.
func (b *StateBuffer) Len() int { return len(b.entries) }

// Processor is the MTPU: the PUs plus the shared memory system.
type Processor struct {
	Cfg  arch.Config
	PUs  []*pu.PU
	SBuf *StateBuffer
}

// New builds a processor with cfg.NumPUs processing units.
func New(cfg arch.Config) *Processor {
	m := &Processor{
		Cfg:  cfg,
		SBuf: NewStateBuffer(cfg.StateBufferSlots),
	}
	for i := 0; i < cfg.NumPUs; i++ {
		m.PUs = append(m.PUs, pu.New(i, cfg))
	}
	return m
}

// SetSink attaches an instrumentation sink to every PU's pipeline
// (nil disables). Call before dispatching work.
func (m *Processor) SetSink(s obs.Sink) {
	for _, p := range m.PUs {
		p.SetSink(s)
	}
}

// Mem returns the memory model PUs execute against.
func (m *Processor) Mem() pipeline.MemModel {
	return procMem{m}
}

// procMem implements pipeline.MemModel over the shared State Buffer.
type procMem struct{ m *Processor }

// StorageRead implements pipeline.MemModel.
func (pm procMem) StorageRead(addr types.Address, slot types.Hash, prefetched bool) uint64 {
	cfg := &pm.m.Cfg
	if prefetched {
		return cfg.DCacheLat
	}
	if cfg.ReuseContext && pm.m.SBuf.Touch(sbKey{sbStorage, addr, slot}) {
		return cfg.EnvBufferLat
	}
	return cfg.MainMemLat
}

// StorageWrite implements pipeline.MemModel. Writes land in the State
// Buffer and are written back off the critical path.
func (pm procMem) StorageWrite(addr types.Address, slot types.Hash) uint64 {
	cfg := &pm.m.Cfg
	if cfg.ReuseContext {
		pm.m.SBuf.Touch(sbKey{sbStorage, addr, slot})
	}
	return cfg.StorageWriteLat
}

// StateQuery implements pipeline.MemModel.
func (pm procMem) StateQuery(addr types.Address, prefetched bool) uint64 {
	cfg := &pm.m.Cfg
	if prefetched {
		return cfg.DCacheLat
	}
	if cfg.ReuseContext && pm.m.SBuf.Touch(sbKey{sbAccount, addr, types.Hash{}}) {
		return cfg.EnvBufferLat
	}
	return cfg.MainMemLat
}

// PipelineStats sums the pipeline counters of every PU.
func (m *Processor) PipelineStats() pipeline.Stats {
	var s pipeline.Stats
	for _, p := range m.PUs {
		s.Add(p.Pipeline().Stats())
	}
	return s
}
