package arch

import (
	"testing"

	"mtpu/internal/types"
)

// FuzzSymbolTable drives the interner with adversarial key sequences —
// the byte-derived keys repeat constantly, so duplicate addresses,
// storage/account aliasing on one address, and interleaved classes are
// the common case — and checks the invariants every downstream dense
// structure relies on: a key always maps to the id it was first
// assigned, distinct keys never share an id, and both id spaces stay
// dense and 1-based.
func FuzzSymbolTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 0, 1, 2})
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Add([]byte("interleaved classes over few addresses"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewSymbolTable()
		codeSeen := map[types.Address]uint32{}
		type touchKey struct {
			account bool
			addr    types.Address
			slot    types.Hash
		}
		touchSeen := map[touchKey]uint32{}
		touchIDs := map[uint32]touchKey{}
		for i := 0; i+2 < len(data); i += 3 {
			op, ab, sb := data[i]%3, data[i+1]%5, data[i+2]%5
			addr := types.BytesToAddress([]byte{ab, 0xcd})
			switch op {
			case 0:
				id := st.CodeID(addr)
				if id == 0 {
					t.Fatal("CodeID returned the reserved id 0")
				}
				if prev, ok := codeSeen[addr]; ok && prev != id {
					t.Fatalf("CodeID(%x) changed: %d then %d", addr, prev, id)
				} else if !ok {
					if int(id) != len(codeSeen)+1 {
						t.Fatalf("CodeID(%x) = %d, want dense %d", addr, id, len(codeSeen)+1)
					}
					codeSeen[addr] = id
					if st.CodeAddr(id) != addr {
						t.Fatalf("CodeAddr(%d) does not round-trip", id)
					}
				}
			case 1:
				slot := types.BytesToHash([]byte{sb})
				k := touchKey{addr: addr, slot: slot}
				checkTouch(t, st.StorageID(addr, slot), k, touchSeen, touchIDs)
			case 2:
				k := touchKey{account: true, addr: addr}
				checkTouch(t, st.AccountID(addr), k, touchSeen, touchIDs)
			}
		}
		if st.NumCodeIDs() != len(codeSeen) {
			t.Fatalf("NumCodeIDs %d, interned %d", st.NumCodeIDs(), len(codeSeen))
		}
		if st.NumTouchIDs() != len(touchSeen) {
			t.Fatalf("NumTouchIDs %d, interned %d", st.NumTouchIDs(), len(touchSeen))
		}
	})
}

func checkTouch[K comparable](t *testing.T, id uint32, k K, seen map[K]uint32, ids map[uint32]K) {
	t.Helper()
	if id == 0 {
		t.Fatal("touch id 0 assigned; 0 is the not-interned sentinel")
	}
	if prev, ok := seen[k]; ok {
		if prev != id {
			t.Fatalf("touch key %+v changed id: %d then %d", k, prev, id)
		}
		return
	}
	if owner, taken := ids[id]; taken {
		t.Fatalf("touch id %d assigned to both %+v and %+v", id, owner, k)
	}
	if int(id) != len(seen)+1 {
		t.Fatalf("touch id %d for %+v, want dense %d", id, k, len(seen)+1)
	}
	seen[k] = id
	ids[id] = k
}

// TestSymbolTableBeyond16BitKeys interns more keys than a 16-bit id
// could name, the regression guard for any future narrowing of the id
// types or of the packed structures they index.
func TestSymbolTableBeyond16BitKeys(t *testing.T) {
	st := NewSymbolTable()
	const n = 1<<16 + 512
	for i := 0; i < n; i++ {
		addr := types.BytesToAddress([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		slot := types.BytesToHash([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		if id := st.StorageID(addr, slot); int(id) != i+1 {
			t.Fatalf("storage key %d got id %d", i, id)
		}
		if id := st.CodeID(addr); int(id) != i+1 {
			t.Fatalf("code addr %d got id %d", i, id)
		}
	}
	if st.NumTouchIDs() != n || st.NumCodeIDs() != n {
		t.Fatalf("interned %d/%d keys, want %d", st.NumTouchIDs(), st.NumCodeIDs(), n)
	}
	// Re-interning the full set must return the original ids.
	for i := 0; i < n; i += 997 {
		addr := types.BytesToAddress([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		slot := types.BytesToHash([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		if id := st.StorageID(addr, slot); int(id) != i+1 {
			t.Fatalf("storage key %d re-interned as %d", i, id)
		}
	}
}
