package pipeline_test

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/core"
	"mtpu/internal/workload"
)

// TestProbeUpperBound prints Fig. 12-style numbers: per-contract IPC and
// speedup at 100% DB-cache hit for F&D / +DF / +IF. Run with -v to tune.
func TestProbeUpperBound(t *testing.T) {
	g := workload.NewGenerator(101, 4096)
	genesis := g.Genesis()

	variants := []struct {
		name      string
		fwd, fold bool
	}{
		{"F&D", false, false},
		{"+DF", true, false},
		{"+IF", true, true},
	}

	for _, c := range g.Contracts {
		if c.Name == "TokenReceiver" {
			continue
		}
		block := g.Batch(c, 48)
		traces, _, _, err := core.CollectTraces(genesis, block)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}

		// Scalar pipeline cycles (baseline).
		scfg := arch.ScalarConfig()
		spipe := pipeline.New(scfg)
		for _, tr := range traces {
			p := pu.PlainPlan(tr)
			steps, ann := pipeline.Split(p.Steps)
			spipe.Execute(steps, ann, pipeline.FlatMem{Cfg: scfg})
		}
		scalarCycles := spipe.Stats().Cycles

		line := c.Name + ":"
		for _, v := range variants {
			cfg := arch.DefaultConfig()
			cfg.DBCacheEntries = 0 // unbounded
			cfg.EnableForwarding = v.fwd
			cfg.EnableFolding = v.fold
			pipe := pipeline.New(cfg)
			// Pass 1: fill. Pass 2: measure (100% hit upper bound).
			for pass := 0; pass < 2; pass++ {
				if pass == 1 {
					pipe.ResetStats()
				}
				for _, tr := range traces {
					p := pu.PlainPlan(tr)
					steps, ann := pipeline.Split(p.Steps)
					pipe.Execute(steps, ann, pipeline.FlatMem{Cfg: cfg})
				}
			}
			st := pipe.Stats()
			line += "  " + v.name + " ipc=" + f2(st.IPC()) +
				" spd=" + f2(float64(scalarCycles)/float64(st.Cycles)) +
				" hit=" + f2(st.HitRatio())
		}
		t.Log(line)
	}
}

func f2(v float64) string {
	return string([]byte{byte('0' + int(v)%10), '.', byte('0' + int(v*10)%10), byte('0' + int(v*100)%10)})
}
