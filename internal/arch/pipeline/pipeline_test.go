package pipeline

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/evm"
	"mtpu/internal/types"
)

var codeA = types.HexToAddress("0xc0de000000000000000000000000000000000001")
var codeB = types.HexToAddress("0xc0de000000000000000000000000000000000002")

// step builds a trace step with sensible defaults.
func step(pc uint64, op evm.Opcode) evm.Step {
	return evm.Step{PC: pc, Op: op, Depth: 1, CodeAddr: codeA, GasCost: op.ConstGas()}
}

// seq builds a straight-line step sequence from opcodes, assigning pcs
// with correct push widths.
func seq(ops ...evm.Opcode) []evm.Step {
	var out []evm.Step
	pc := uint64(0)
	for _, op := range ops {
		out = append(out, step(pc, op))
		pc += 1 + uint64(op.PushSize())
	}
	return out
}

func ilpConfig() arch.Config {
	cfg := arch.DefaultConfig()
	cfg.DBCacheEntries = 0
	return cfg
}

// runTwice executes the steps twice, returning second-pass stats.
func runTwice(cfg arch.Config, steps []evm.Step) Stats {
	p := New(cfg)
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	p.ResetStats()
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	return p.Stats()
}

func TestScalarOneInstructionPerCycle(t *testing.T) {
	cfg := arch.ScalarConfig()
	p := New(cfg)
	steps := seq(evm.PUSH1, evm.PUSH1, evm.ADD, evm.POP, evm.STOP)
	cycles := p.Execute(steps, nil, FlatMem{Cfg: cfg})
	if cycles != 5 {
		t.Fatalf("scalar cycles %d, want 5", cycles)
	}
	st := p.Stats()
	if st.Instructions != 5 || st.IssueCycles != 5 || st.LineHits != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLinePacksAcrossUnits(t *testing.T) {
	// CALLER (FixedAccess) + PUSH (Stack) + MSTORE folded: all one line.
	steps := seq(evm.CALLER, evm.PUSH1, evm.MSTORE, evm.STOP)
	st := runTwice(ilpConfig(), steps)
	if st.LineHits == 0 {
		t.Fatalf("no hits on second pass: %+v", st)
	}
	if st.IPC() <= 1.0 {
		t.Fatalf("no packing: IPC %.2f", st.IPC())
	}
}

func TestUnitConflictEndsLine(t *testing.T) {
	// Two MLOADs compete for the single Memory field.
	cfg := ilpConfig()
	cfg.EnableFolding = false
	cfg.EnableForwarding = true
	p := New(cfg)
	steps := []evm.Step{
		step(0, evm.MLOAD), step(1, evm.POP),
		step(2, evm.MLOAD), step(3, evm.POP),
		step(4, evm.STOP),
	}
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	p.ResetStats()
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	st := p.Stats()
	// At least two separate lines: a single 5-instruction line would mean
	// the Memory unit held two instructions.
	if st.LineHits < 2 {
		t.Fatalf("unit conflict not enforced: %+v", st)
	}
}

func TestSecondRAWEndsLineWithoutForwarding(t *testing.T) {
	// PUSH, PUSH, ADD: ADD reads two in-line values — one RAW absorbed by
	// forwarding, so with forwarding OFF the ADD cannot join the pushes'
	// line at all (and the two pushes conflict on the Stack unit anyway).
	cfg := ilpConfig()
	cfg.EnableFolding = false
	cfg.EnableForwarding = false
	steps := seq(evm.PUSH1, evm.CALLER, evm.ADD, evm.STOP)
	st := runTwice(cfg, steps)
	// PUSH(Stack) + CALLER(FixedAccess) fit one line; ADD has 2 in-line
	// RAWs → must start a new line.
	if st.LineHits < 2 {
		t.Fatalf("expected ≥2 lines, got %+v", st)
	}

	// A single-RAW case: CALLER feeding ISZERO can be absorbed by
	// forwarding (reconfigurable producer), packing both in one line.
	single := seq(evm.CALLER, evm.ISZERO, evm.STOP)
	cfgF := ilpConfig()
	cfgF.EnableFolding = false
	pf := New(cfgF)
	pf.Execute(single, nil, FlatMem{Cfg: cfgF})
	if pf.Stats().ForwardedRAWs == 0 { // forwarding happens at fill time
		t.Fatalf("forwarding never used: %+v", pf.Stats())
	}
	cfgNF := cfgF
	cfgNF.EnableForwarding = false
	stNoFwd := runTwice(cfgNF, single)
	stFwd := runTwice(cfgF, single)
	if stFwd.IPC() <= stNoFwd.IPC() {
		t.Fatalf("forwarding did not improve IPC: %.2f vs %.2f", stFwd.IPC(), stNoFwd.IPC())
	}
}

func TestFoldingCombinesPushConsumer(t *testing.T) {
	cfg := ilpConfig()
	p := New(cfg)
	// The paper's selector-compare pattern: PUSH4 id, EQ, PUSH2, JUMPI.
	steps := []evm.Step{
		step(0, evm.DUP1),
		step(1, evm.PUSH4),
		step(6, evm.EQ),
		step(7, evm.PUSH2),
		step(10, evm.JUMPI),
		step(11, evm.STOP),
	}
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	if p.Stats().FoldedPairs == 0 {
		t.Fatalf("PUSH4+EQ not folded: %+v", p.Stats())
	}
	p.ResetStats()
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	st := p.Stats()
	// Dispatcher line: DUP1 + folded(PUSH4,EQ) + PUSH2 + JUMPI = 5
	// instructions in ideally one line.
	if st.IPC() < 2.0 {
		t.Fatalf("dispatch IPC %.2f", st.IPC())
	}
}

func TestBranchEndsLine(t *testing.T) {
	cfg := ilpConfig()
	cfg.EnableFolding = false
	p := New(cfg)
	// JUMPDEST after JUMP must start a new line even though no conflict.
	steps := []evm.Step{
		step(0, evm.PUSH2),
		step(3, evm.JUMP),
		step(10, evm.JUMPDEST),
		step(11, evm.CALLER),
		step(12, evm.STOP),
	}
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	p.ResetStats()
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	st := p.Stats()
	if st.LineHits < 2 {
		t.Fatalf("branch did not end line: %+v", st)
	}
}

func TestSingleInstructionLinesNotCached(t *testing.T) {
	cfg := ilpConfig()
	cfg.EnableFolding = false
	cfg.EnableForwarding = false
	p := New(cfg)
	// Isolated instructions separated by line-enders: STOP-only runs.
	steps := []evm.Step{step(0, evm.JUMPDEST), step(1, evm.JUMP)}
	// JUMPDEST+JUMP: JUMP pops a pre-existing value (no in-line RAW) so
	// they can share a line; use a harder case: lone POPs after branches.
	steps = []evm.Step{
		step(0, evm.PUSH2), step(3, evm.JUMP), // line 1
		step(8, evm.JUMPDEST), // will line with next...
	}
	_ = steps
	// Direct check: a 1-instruction fill is not inserted.
	p.Execute([]evm.Step{step(0, evm.STOP)}, nil, FlatMem{Cfg: cfg})
	if p.CacheLines() != 0 {
		t.Fatalf("%d lines cached for single STOP", p.CacheLines())
	}
}

func TestGasInvariant(t *testing.T) {
	// Gas charged through the pipeline must equal the trace gas exactly,
	// whether issued scalar or via hit lines (the per-line G field).
	steps := seq(evm.PUSH1, evm.PUSH1, evm.ADD, evm.CALLER, evm.POP, evm.POP, evm.STOP)
	var want uint64
	for _, s := range steps {
		want += s.GasCost
	}
	for _, mode := range []string{"scalar", "ilp"} {
		cfg := arch.ScalarConfig()
		if mode == "ilp" {
			cfg = ilpConfig()
		}
		p := New(cfg)
		p.Execute(steps, nil, FlatMem{Cfg: cfg})
		p.Execute(steps, nil, FlatMem{Cfg: cfg})
		if got := p.Stats().GasCharged; got != 2*want {
			t.Errorf("%s: gas %d, want %d", mode, got, 2*want)
		}
	}
}

func TestCrossContractTagIsolation(t *testing.T) {
	cfg := ilpConfig()
	p := New(cfg)
	a := seq(evm.PUSH1, evm.CALLER, evm.ADD, evm.STOP)
	b := make([]evm.Step, len(a))
	copy(b, a)
	for i := range b {
		b[i].CodeAddr = codeB
		b[i].Op = []evm.Opcode{evm.PUSH1, evm.ORIGIN, evm.SUB, evm.STOP}[i]
	}
	p.Execute(a, nil, FlatMem{Cfg: cfg})
	// Same pcs, different contract: must not hit contract A's lines (and
	// must not panic on divergence).
	p.ResetStats()
	p.Execute(b, nil, FlatMem{Cfg: cfg})
	if p.Stats().LineHits != 0 {
		t.Fatalf("cross-contract cache hit: %+v", p.Stats())
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := ilpConfig()
	cfg.DBCacheEntries = 2
	p := New(cfg)
	mk := func(pcBase uint64) []evm.Step {
		return []evm.Step{
			step(pcBase, evm.CALLER), step(pcBase+1, evm.PUSH1),
			step(pcBase+3, evm.MSTORE), step(pcBase+4, evm.JUMP),
		}
	}
	p.Execute(mk(0), nil, FlatMem{Cfg: cfg})   // line @0
	p.Execute(mk(100), nil, FlatMem{Cfg: cfg}) // line @100
	p.Execute(mk(200), nil, FlatMem{Cfg: cfg}) // line @200 evicts @0
	if p.CacheLines() != 2 {
		t.Fatalf("cache holds %d lines, cap 2", p.CacheLines())
	}
	p.ResetStats()
	p.Execute(mk(0), nil, FlatMem{Cfg: cfg}) // must miss (evicted)
	if p.Stats().LineHits != 0 {
		t.Fatalf("evicted line hit")
	}
	p.ResetStats()
	p.Execute(mk(0), nil, FlatMem{Cfg: cfg}) // refilled now
	if p.Stats().LineHits != 1 {
		t.Fatalf("refilled line missed: %+v", p.Stats())
	}
}

func TestFlushClearsCache(t *testing.T) {
	cfg := ilpConfig()
	p := New(cfg)
	steps := seq(evm.CALLER, evm.PUSH1, evm.MSTORE, evm.STOP)
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	if p.CacheLines() == 0 {
		t.Fatal("nothing cached")
	}
	p.Flush()
	if p.CacheLines() != 0 {
		t.Fatal("flush did not clear")
	}
}

func TestStorageLatencyDominatesStalls(t *testing.T) {
	cfg := arch.ScalarConfig()
	p := New(cfg)
	sloadStep := step(0, evm.SLOAD)
	stop := step(1, evm.STOP)
	cycles := p.Execute([]evm.Step{sloadStep, stop}, nil, FlatMem{Cfg: cfg})
	want := 2 + cfg.MainMemLat
	if cycles != want {
		t.Fatalf("SLOAD cycles %d, want %d", cycles, want)
	}
}

func TestPrefetchAnnotationReducesLatency(t *testing.T) {
	cfg := arch.ScalarConfig()
	p := New(cfg)
	steps := []evm.Step{step(0, evm.SLOAD), step(1, evm.STOP)}
	slow := p.Execute(steps, nil, FlatMem{Cfg: cfg})
	p2 := New(cfg)
	fast := p2.Execute(steps, []Annotation{{Prefetched: true}, {}}, FlatMem{Cfg: cfg})
	if fast >= slow {
		t.Fatalf("prefetch did not help: %d vs %d", fast, slow)
	}
	if fast != 2+cfg.DCacheLat {
		t.Fatalf("prefetched SLOAD cycles %d", fast)
	}
}

func TestConstOperandsRemoveRAW(t *testing.T) {
	// CALLER, ADD-with-const-operands: without the annotation the ADD has
	// an in-line RAW against CALLER; with ConstOperands it packs freely.
	cfg := ilpConfig()
	cfg.EnableForwarding = false
	cfg.EnableFolding = false
	steps := seq(evm.CALLER, evm.ADD, evm.STOP)
	ann := []Annotation{{}, {ConstOperands: true}, {}}

	p1 := New(cfg)
	p1.Execute(steps, nil, FlatMem{Cfg: cfg})
	p1.ResetStats()
	p1.Execute(steps, nil, FlatMem{Cfg: cfg})
	without := p1.Stats().IPC()

	p2 := New(cfg)
	p2.Execute(steps, ann, FlatMem{Cfg: cfg})
	p2.ResetStats()
	p2.Execute(steps, ann, FlatMem{Cfg: cfg})
	with := p2.Stats().IPC()

	if with <= without {
		t.Fatalf("const operands did not improve packing: %.2f vs %.2f", with, without)
	}
}

func TestHitRatioMonotoneInCacheSize(t *testing.T) {
	// Synthetic working set larger than the small cache.
	var steps []evm.Step
	for base := uint64(0); base < 4000; base += 40 {
		steps = append(steps,
			step(base, evm.CALLER), step(base+1, evm.PUSH1),
			step(base+3, evm.MSTORE), step(base+4, evm.JUMP))
	}
	// Repeat the whole set three times (reuse opportunity).
	all := append(append(append([]evm.Step{}, steps...), steps...), steps...)

	prev := -1.0
	for _, size := range []int{8, 32, 128, 0} {
		cfg := ilpConfig()
		cfg.DBCacheEntries = size
		p := New(cfg)
		p.Execute(all, nil, FlatMem{Cfg: cfg})
		hr := p.Stats().HitRatio()
		if hr < prev-0.01 {
			t.Fatalf("hit ratio fell from %.3f to %.3f at size %d", prev, hr, size)
		}
		prev = hr
	}
	if prev < 0.5 {
		t.Fatalf("unbounded cache hit ratio %.2f too low", prev)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Instructions: 1, Cycles: 2, IssueCycles: 1, LineHits: 3, GasCharged: 4}
	b := Stats{Instructions: 10, Cycles: 20, IssueCycles: 10, LineMisses: 5}
	a.Add(b)
	if a.Instructions != 11 || a.Cycles != 22 || a.LineHits != 3 || a.LineMisses != 5 {
		t.Fatalf("%+v", a)
	}
	if (Stats{}).IPC() != 0 || (Stats{}).HitRatio() != 0 || (Stats{}).EffectiveIPC() != 0 {
		t.Fatal("zero stats ratios")
	}
}

func TestFrameBoundaryEndsLine(t *testing.T) {
	cfg := ilpConfig()
	cfg.EnableFolding = false
	p := New(cfg)
	steps := []evm.Step{
		step(0, evm.PUSH1),
		{PC: 2, Op: evm.CALLER, Depth: 2, CodeAddr: codeB}, // inner frame
		{PC: 3, Op: evm.STOP, Depth: 2, CodeAddr: codeB},
	}
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	p.ResetStats()
	p.Execute(steps, nil, FlatMem{Cfg: cfg})
	// The PUSH at depth 1 cannot share a line with depth-2 instructions.
	for _, d := range []int{1, 2} {
		_ = d
	}
	if p.Stats().HitInstructions > 0 {
		// Any hits must cover only intra-frame lines; specifically the
		// depth-1 PUSH must remain a 1-instruction (uncached) line.
		if p.Stats().HitInstructions == 3 {
			t.Fatalf("line spanned frames: %+v", p.Stats())
		}
	}
}

func TestAvgLineSize(t *testing.T) {
	if (Stats{}).AvgLineSize() != 0 {
		t.Fatal("empty stats line size")
	}
	st := runTwice(ilpConfig(), seq(evm.CALLER, evm.PUSH1, evm.MSTORE, evm.STOP))
	if got := st.AvgLineSize(); got < 1.5 {
		t.Fatalf("avg line size %.2f", got)
	}
}

// TestRewrittenVariantFallsBackToMiss pins the divergence fix: the
// hotspot Contract Table rewrites hot traces (pre-executed and
// eliminated instructions are dropped), so planned and plain
// transactions of one contract can share a line's entry key with
// different downstream pc streams. A tag hit on the stale variant must
// degrade to an ordinary miss that refills the line — priced exactly
// like a cold miss, never mis-charged — and the local-id Execute,
// interned Execute, and ExecuteHot paths must all price the mixed
// stream identically.
func TestRewrittenVariantFallsBackToMiss(t *testing.T) {
	plain := []evm.Step{
		step(0, evm.PUSH1), step(2, evm.PUSH1), step(4, evm.ADD),
		step(5, evm.POP), step(6, evm.STOP),
	}
	// The rewritten variant enters at the same pc, but its interior
	// differs — as if the plan dropped pre-executed steps. Each pc still
	// maps to the same opcode (code is immutable).
	rewritten := []evm.Step{
		step(0, evm.PUSH1), step(4, evm.ADD), step(5, evm.POP),
		step(2, evm.PUSH1), step(6, evm.STOP),
	}
	intern := func(src []evm.Step) []evm.Step {
		out := append([]evm.Step(nil), src...)
		for i := range out {
			out[i].CodeID = 5
		}
		return out
	}
	cfg := ilpConfig()
	mem := FlatMem{Cfg: cfg}
	var gasB uint64
	for i := range rewritten {
		gasB += rewritten[i].GasCost
	}

	// sequence replays a once, then b twice on one pipeline, returning
	// the cycles of each call and asserting the stale-tag pass (first b)
	// misses and the refilled pass (second b) hits.
	sequence := func(a, b []evm.Step, exec func(p *Pipeline, s []evm.Step) uint64) [3]uint64 {
		t.Helper()
		p := New(cfg)
		var out [3]uint64
		out[0] = exec(p, a)

		p.ResetStats()
		out[1] = exec(p, b)
		st := p.Stats()
		if st.LineHits != 0 {
			t.Fatalf("stale variant served as a hit: %+v", st)
		}
		if st.GasCharged != gasB {
			t.Fatalf("gas %d, want %d", st.GasCharged, gasB)
		}

		p.ResetStats()
		out[2] = exec(p, b)
		if st := p.Stats(); st.LineHits == 0 {
			t.Fatalf("refill did not replace the stale line: %+v", st)
		}
		return out
	}

	plainExec := func(p *Pipeline, s []evm.Step) uint64 {
		return p.Execute(s, nil, mem)
	}
	local := sequence(plain, rewritten, plainExec)

	// The stale-tag pass must cost exactly what a cold miss costs.
	if cold := New(cfg).Execute(rewritten, nil, mem); local[1] != cold {
		t.Fatalf("stale-tag pass %d cycles, cold miss %d", local[1], cold)
	}

	plainI, rewrittenI := intern(plain), intern(rewritten)
	interned := sequence(plainI, rewrittenI, plainExec)
	hpA, hpB := NewHotPlan(plainI, nil), NewHotPlan(rewrittenI, nil)
	if hpA == nil || hpB == nil {
		t.Fatal("hot plan rejected an interned stream")
	}
	hot := sequence(plainI, rewrittenI, func(p *Pipeline, s []evm.Step) uint64 {
		hp := hpA
		if &s[0] == &rewrittenI[0] {
			hp = hpB
		}
		return p.ExecuteHot(s, nil, hp, mem)
	})
	if interned != local || hot != local {
		t.Fatalf("paths disagree: local %v interned %v hot %v", local, interned, hot)
	}
}

func TestSideTableRecordsSingles(t *testing.T) {
	cfg := ilpConfig()
	cfg.EnableFolding = false
	cfg.EnableForwarding = false
	p := New(cfg)
	// A lone STOP is a single-instruction fill: not cached, side-tabled.
	p.Execute([]evm.Step{step(0, evm.STOP)}, nil, FlatMem{Cfg: cfg})
	if p.CacheLines() != 0 {
		t.Fatal("single cached")
	}
	if p.SideTableLen() != 1 {
		t.Fatalf("side table %d", p.SideTableLen())
	}
	p.Flush()
	if p.SideTableLen() != 0 {
		t.Fatal("flush kept side table")
	}
}
