// Package pipeline implements the timing model of one PU's instruction
// pipeline (§3.3.2-3.3.5): the six-stage in-order scalar path, the fill
// unit that packs decoded bytecodes into DB-cache lines under the
// dependency rules of the paper (one field per functional unit, WAR/WAW
// removed by R/W sequence numbers, a single RAW absorbed by forwarding,
// common patterns folded), and the LRU decoded-bytecode cache whose hits
// issue a whole line in one cycle with its gas pre-summed.
package pipeline

import (
	"mtpu/internal/arch"
	"mtpu/internal/evm"
	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// Annotation carries hotspot-optimization facts about one trace step.
type Annotation struct {
	// Prefetched data costs a dcache hit instead of a state access (§3.4.4).
	Prefetched bool
	// ConstOperands marks instructions whose operands come from the
	// Constants Table, removing their stack dependencies (§3.4.3).
	ConstOperands bool
}

// AnnotatedStep pairs one executed instruction with its hotspot
// annotations; plans built by the hotspot optimizer are slices of these.
type AnnotatedStep struct {
	Step       evm.Step
	Annotation Annotation
}

// Split separates annotated steps into the parallel slices Execute takes.
func Split(in []AnnotatedStep) ([]evm.Step, []Annotation) {
	return SplitInto(in, nil, nil)
}

// SplitInto is Split reusing the caller's buffers when they have the
// capacity, so tight replay loops split without allocating.
func SplitInto(in []AnnotatedStep, steps []evm.Step, ann []Annotation) ([]evm.Step, []Annotation) {
	if cap(steps) < len(in) {
		steps = make([]evm.Step, len(in))
	} else {
		steps = steps[:len(in)]
	}
	if cap(ann) < len(in) {
		ann = make([]Annotation, len(in))
	} else {
		ann = ann[:len(in)]
	}
	for i := range in {
		steps[i] = in[i].Step
		ann[i] = in[i].Annotation
	}
	return steps, ann
}

// MemModel resolves data-access latencies. The MTPU supplies an
// implementation backed by the shared State Buffer. Methods take the
// whole step so implementations can use its interned TouchID (falling
// back to TouchAddr/TouchSlot when it is 0).
type MemModel interface {
	// StorageRead returns the SLOAD latency for the slot the step touches.
	StorageRead(s *evm.Step, prefetched bool) uint64
	// StorageWrite returns the SSTORE latency.
	StorageWrite(s *evm.Step) uint64
	// StateQuery returns the BALANCE/EXTCODE* latency.
	StateQuery(s *evm.Step, prefetched bool) uint64
}

// FlatMem is a MemModel with fixed latencies and no State Buffer,
// used by single-PU experiments.
type FlatMem struct {
	Cfg arch.Config
}

// StorageRead implements MemModel.
func (m FlatMem) StorageRead(_ *evm.Step, prefetched bool) uint64 {
	if prefetched {
		return m.Cfg.DCacheLat
	}
	return m.Cfg.MainMemLat
}

// StorageWrite implements MemModel.
func (m FlatMem) StorageWrite(*evm.Step) uint64 {
	return m.Cfg.StorageWriteLat
}

// StateQuery implements MemModel.
func (m FlatMem) StateQuery(_ *evm.Step, prefetched bool) uint64 {
	if prefetched {
		return m.Cfg.DCacheLat
	}
	return m.Cfg.MainMemLat
}

// Stats aggregates pipeline activity.
type Stats struct {
	// Instructions executed (original count; folded pairs count as two).
	Instructions uint64
	// Cycles consumed by the pipeline (excludes context loading),
	// including data-access stalls.
	Cycles uint64
	// IssueCycles counts issue slots only (one per scalar instruction or
	// per hit line) — the denominator of the paper's IPC metric, which
	// measures packing density rather than memory behaviour.
	IssueCycles uint64
	// LineHits / LineMisses count DB-cache lookups at line granularity.
	LineHits, LineMisses uint64
	// HitInstructions is the number of instructions issued from hit lines.
	HitInstructions uint64
	// FoldedPairs counts PUSH+op folds performed by the fill unit.
	FoldedPairs uint64
	// ForwardedRAWs counts RAW hazards absorbed by data forwarding.
	ForwardedRAWs uint64
	// GasCharged sums gas deducted (scalar or via line G fields).
	GasCharged uint64
	// LinesCached counts lines inserted into the DB cache.
	LinesCached uint64
	// LineEvictions counts LRU evictions from the DB cache.
	LineEvictions uint64
}

// HitRatio is the fraction of instructions issued from DB-cache hits.
func (s Stats) HitRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.HitInstructions) / float64(s.Instructions)
}

// IPC is instructions per issue cycle — the Fig. 12/Table 7 metric:
// how many instructions the DB cache issues per slot, independent of
// data-access stalls (which EffectiveIPC includes).
func (s Stats) IPC() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.IssueCycles)
}

// AvgLineSize is the mean instructions per hit line — the packing
// density the fill unit achieved on reused lines.
func (s Stats) AvgLineSize() float64 {
	if s.LineHits == 0 {
		return 0
	}
	return float64(s.HitInstructions) / float64(s.LineHits)
}

// EffectiveIPC is instructions per total pipeline cycle, stalls included.
func (s Stats) EffectiveIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.Cycles += o.Cycles
	s.IssueCycles += o.IssueCycles
	s.LineHits += o.LineHits
	s.LineMisses += o.LineMisses
	s.HitInstructions += o.HitInstructions
	s.FoldedPairs += o.FoldedPairs
	s.ForwardedRAWs += o.ForwardedRAWs
	s.GasCharged += o.GasCharged
	s.LinesCached += o.LinesCached
	s.LineEvictions += o.LineEvictions
}

// MemStallCycles is the dependency-stall share of Cycles: time spent
// waiting on data accesses rather than issuing.
func (s Stats) MemStallCycles() uint64 { return s.Cycles - s.IssueCycles }

// MissIssueCycles is the share of IssueCycles spent on the DB-cache
// miss path (each hit line takes exactly one issue slot, so the rest of
// the issue slots are scalar streaming during fills or with the cache
// disabled).
func (s Stats) MissIssueCycles() uint64 { return s.IssueCycles - s.LineHits }

// member is one entry of a DB-cache line.
type member struct {
	pc uint64
	op evm.Opcode
	// foldedPC is the original instruction folded into this member (its
	// pc precedes pc in the trace); folding synthesizes at most one pair
	// (§3.3.4), so a scalar suffices and keeps members allocation-free.
	foldedPC  uint64
	hasFolded bool
}

// line is one DB-cache line: up to one member per functional unit, ended
// by a unit conflict, a second RAW, or a control-flow change. The address
// of the next instruction and the summed gas (G) live at the end of the
// line in hardware; here they are implicit in the trace replay.
// lineTag identifies a line: contract address plus entry pc.
type lineTag struct {
	addr types.Address
	pc   uint64
}

type line struct {
	tag   lineTag
	insts []member
	// count is the original instruction count (including folded ones).
	count int
	// keySum fingerprints the line's content: the sum of mix64'd pcs over
	// the exact step window the fill consumed (pcs only, so the value is
	// identical whether the stream was interned or used local code ids).
	// A directory tag match does NOT imply a content match — the Contract
	// Table rewrites hot traces (pre-executed and eliminated instructions
	// are dropped), so planned and plain transactions of the same
	// contract can reach the same (code id, entry pc) key with different
	// downstream streams. Hit paths verify the window's pcs and treat a
	// mismatch as an ordinary miss that refills the line, the same way
	// fill-memo segments are verified by segValid.
	keySum uint64
	// flatWorst is the precomputed worst member stall under a stateless
	// flat memory model with no prefetching, baked at fill time from the
	// members' latency classes and the fill config; lineDynStall marks
	// lines whose stall depends on per-step data (SHA3/copy footprints)
	// and must be computed per execution.
	flatWorst uint32
}

// lineDynStall marks a line whose worst stall cannot be precomputed.
const lineDynStall = ^uint32(0)

// copyFrom overwrites ln with src, reusing ln's member capacity so a
// recycled cache node absorbs a new line without allocating.
func (ln *line) copyFrom(src *line) {
	ln.tag = src.tag
	ln.count = src.count
	ln.keySum = src.keySum
	ln.flatWorst = src.flatWorst
	ln.insts = append(ln.insts[:0], src.insts...)
}

// codeDir maps packed (code id, pc) keys to int32 payloads with two
// array indexes instead of a hash. Rows are allocated per code id and
// grown to the highest pc seen (bytecode offsets, so rows stay at most
// code-sized); dense symbol-table ids index global, pipeline-local ids
// (top bit set) index local. Cells carry a generation stamp in the high
// half so the whole directory empties with one counter bump (clear) —
// the clean-slate reuse a pooled pipeline needs. gen starts at 1
// (constructors must set it) and rows are allocated zeroed, so a
// never-written cell can never read as present.
type codeDir struct {
	global, local [][]uint64
	gen           uint32
}

// get returns the payload for key, -1 when absent. No allocation.
func (d *codeDir) get(key uint64) int32 {
	id := uint32(key >> 32)
	pc := int(uint32(key))
	rows := d.global
	idx := int(id)
	if id >= localIDBase {
		rows = d.local
		idx = int(id - localIDBase)
	}
	if idx >= len(rows) {
		return -1
	}
	row := rows[idx]
	if pc >= len(row) {
		return -1
	}
	cell := row[pc]
	if uint32(cell>>32) != d.gen {
		return -1
	}
	return int32(uint32(cell))
}

// set stores the payload for key (use -1 to delete), growing the
// directory as needed.
func (d *codeDir) set(key uint64, v int32) {
	id := uint32(key >> 32)
	pc := int(uint32(key))
	tab := &d.global
	idx := int(id)
	if id >= localIDBase {
		tab = &d.local
		idx = int(id - localIDBase)
	}
	cell := uint64(d.gen)<<32 | uint64(uint32(v))
	// Steady state: the row already spans this pc, so the store is two
	// bounds checks with no growth bookkeeping.
	if idx < len(*tab) {
		if row := (*tab)[idx]; pc < len(row) {
			row[pc] = cell
			return
		}
	}
	for len(*tab) <= idx {
		*tab = append(*tab, nil)
	}
	row := (*tab)[idx]
	if pc >= len(row) {
		need := pc + 1
		if need < 2*len(row) {
			need = 2 * len(row)
		}
		grown := make([]uint64, need)
		copy(grown, row)
		(*tab)[idx] = grown
		row = grown
	}
	row[pc] = cell
}

// clear empties the directory in O(1) by advancing the generation. The
// (in practice unreachable) wrap-around zeroes rows for real so ancient
// stamps can never alias.
func (d *codeDir) clear() {
	d.gen++
	if d.gen == 0 {
		for _, rows := range [2][][]uint64{d.global, d.local} {
			for _, row := range rows {
				for i := range row {
					row[i] = 0
				}
			}
		}
		d.gen = 1
	}
}

// genDir is a generation-stamped membership set over the same key space:
// a cell is a member iff it holds the current generation, so emptying
// the set is one counter bump instead of a walk.
type genDir struct {
	global, local [][]uint32
	gen           uint32
	count         int
}

func (d *genDir) add(key uint64) {
	id := uint32(key >> 32)
	pc := int(uint32(key))
	tab := &d.global
	idx := int(id)
	if id >= localIDBase {
		tab = &d.local
		idx = int(id - localIDBase)
	}
	// Fast path: the cell exists — stamp it without any growth checks
	// (repeat adds of warm keys are the overwhelmingly common case).
	if idx < len(*tab) {
		if row := (*tab)[idx]; pc < len(row) {
			if row[pc] != d.gen {
				row[pc] = d.gen
				d.count++
			}
			return
		}
	}
	for len(*tab) <= idx {
		*tab = append(*tab, nil)
	}
	row := (*tab)[idx]
	if pc >= len(row) {
		need := pc + 1
		if need < 2*len(row) {
			need = 2 * len(row)
		}
		grown := make([]uint32, need)
		copy(grown, row)
		(*tab)[idx] = grown
		row = grown
	}
	if row[pc] != d.gen {
		row[pc] = d.gen
		d.count++
	}
}

// reset empties the set. On the (astronomically rare) generation wrap
// every cell is zeroed so stale stamps can never read as members.
func (d *genDir) reset() {
	d.count = 0
	d.gen++
	if d.gen == 0 {
		for _, row := range d.global {
			clear(row)
		}
		for _, row := range d.local {
			clear(row)
		}
		d.gen = 1
	}
}

// dbCache is a fully-associative LRU cache of decoded lines. Lines are
// keyed by a packed word — interned CodeID in the high half, entry pc
// in the low half — resolved through a codeDir, so a lookup is two
// array indexes with no hashing at all. Nodes live in one arena slice
// linked by indexes; evicted and flushed nodes go to a free list and
// are recycled with their member capacity, so a warm cache inserts
// without allocating.
type dbCache struct {
	capacity int // 0 = unbounded
	dir      codeDir
	count    int
	nodes    []cacheNode
	// LRU doubly-linked list plus free list, as arena indexes (-1 = none).
	head, tail, free int32
	// lines[i] is node i's owned line copy (unused while the node
	// aliases a shared memo line); kept out of cacheNode so the hot LRU
	// state stays dense.
	lines []line
}

// cacheNode is the LRU hot state of one cache entry — 32 bytes, so
// lookups, touches and hint chases stride a dense array instead of
// dragging each node's line payload through the cache. The node-owned
// line copies live in the dbCache's parallel lines array (cold side).
type cacheNode struct {
	key uint64
	// shared, when non-nil, is the node's line aliased from the shared
	// fill memo (stable and read-only for the pipeline's life) — the
	// common case under FillMemo, inserted with no copy. Otherwise
	// lines[i] is the node-owned copy. insert always sets shared, so a
	// live node is never read with a stale alias.
	shared     *line
	prev, next int32
	// succ is a successor hint: the node that was looked up right after
	// this one last time. Replays are repetitive, so the hint usually
	// short-circuits the next map probe; it is validated against the
	// computed key (dead nodes zero their key), never trusted.
	succ int32
}

func newDBCache(capacity int) *dbCache {
	c := &dbCache{
		capacity: capacity,
		head:     -1, tail: -1, free: -1,
	}
	c.dir.gen = 1
	return c
}

// resolve returns node i's line: the memo alias when shared, else the
// node-owned copy.
func (c *dbCache) resolve(i int32) *line {
	if ln := c.nodes[i].shared; ln != nil {
		return ln
	}
	return &c.lines[i]
}

// insert stores a line in the cache, returning the node that holds it
// and whether an LRU victim was evicted. shared marks ln as stable for
// the pipeline's life (a FillMemo segment), letting the node alias it
// instead of copying; scratch and overlay lines are copied.
func (c *dbCache) insert(key uint64, ln *line, shared bool) (idx int32, evicted bool) {
	if i := c.dir.get(key); i >= 0 {
		n := &c.nodes[i]
		if shared {
			n.shared = ln
		} else {
			n.shared = nil
			c.lines[i].copyFrom(ln)
		}
		c.touch(i)
		return i, false
	}
	i := c.alloc()
	n := &c.nodes[i]
	n.key = key
	if shared {
		n.shared = ln
	} else {
		n.shared = nil
		c.lines[i].copyFrom(ln)
	}
	c.dir.set(key, i)
	c.pushFront(i)
	c.count++
	if c.capacity > 0 && c.count > c.capacity {
		c.evict()
		return i, true
	}
	return i, false
}

// alloc returns a node index, recycling the free list before growing
// the arena.
func (c *dbCache) alloc() int32 {
	if i := c.free; i >= 0 {
		c.free = c.nodes[i].next
		return i
	}
	c.nodes = append(c.nodes, cacheNode{})
	c.lines = append(c.lines, line{})
	return int32(len(c.nodes) - 1)
}

func (c *dbCache) touch(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

func (c *dbCache) pushFront(i int32) {
	n := &c.nodes[i]
	n.prev = -1
	n.next = c.head
	if c.head >= 0 {
		c.nodes[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *dbCache) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *dbCache) evict() {
	i := c.tail
	if i < 0 {
		return
	}
	c.unlink(i)
	c.dir.set(c.nodes[i].key, -1)
	// Zero the key so stale successor hints can never validate against a
	// free node (live keys always have a nonzero code id in the high half).
	c.nodes[i].key = 0
	c.nodes[i].next = c.free
	c.free = i
	c.count--
}

// reset empties the cache, keeping the directory rows and the node arena
// (with their member capacity) for reuse — a context-switch Flush in
// the no-reuse modes walks the resident list and allocates nothing.
func (c *dbCache) reset() {
	for i := c.head; i >= 0; {
		next := c.nodes[i].next
		c.nodes[i].key = 0
		c.nodes[i].next = c.free
		c.free = i
		i = next
	}
	c.dir.clear()
	c.head, c.tail = -1, -1
	c.count = 0
}

func (c *dbCache) size() int { return c.count }

// Why fill is memoizable: the line the fill unit builds is a pure
// function of the step window it consumes, the ConstOperands annotations
// over that window, and — when the line ends for a reason other than a
// control-flow opcode or the end of the trace — the two steps just past
// the window (the break candidate and its fold-lookahead). A segment
// records the fill result together with everything that decision depended
// on; reuse verifies all of it against the current trace and falls back
// to a real fill on any mismatch, so memoized and direct replays are
// indistinguishable. Keys share the packed (code id, pc) word with the
// DB cache; code is immutable and a pipeline never outlives one block's
// id space, so a key names one bytecode location for the pipeline's
// whole life and the memo is never invalidated.
type segment struct {
	// ln is the assembled line, ready for dbCache.insert to copy —
	// callers must treat it as read-only. hasLine mirrors fill returning
	// nil (a single uncacheable instruction).
	ln      line
	hasLine bool
	// consumed is how many trace steps the window covers.
	consumed int
	// folded/forwarded are the FoldedPairs / ForwardedRAWs stat deltas
	// one execution of this fill contributes.
	folded    uint64
	forwarded uint64
	// constMask bit j holds ConstOperands of window step j.
	constMask uint32
	term      uint8
	// Context past the window, checked only for termNext: the pc of the
	// break candidate and of its fold-lookahead, whether each exists and
	// shares the window's call frame, and their ConstOperands (a fold at
	// the candidate reads the lookahead step's annotation too).
	nextPC    [2]uint64
	nextOK    [2]bool
	nextSame  [2]bool
	nextConst [2]bool
}

const (
	// termEnder: the line ended at a control-flow opcode; the decision
	// looked at nothing past the window.
	termEnder uint8 = iota
	// termEnd: the trace ended exactly at the window's edge.
	termEnd
	// termNext: the break depended on the steps just past the window
	// (unit conflict, second RAW, or call-frame change).
	termNext
)

// constAt mirrors annAt for the one annotation fill reads.
func constAt(ann []Annotation, i int) bool {
	return ann != nil && i < len(ann) && ann[i].ConstOperands
}

// segMaxConsumed bounds memoized windows so constMask's 32 bits always
// cover them; fill lines hold at most one member per functional unit
// (each covering ≤ 2 steps), so real windows never get near this.
const segMaxConsumed = 32

// Pipeline is the per-PU instruction timing model. It retains DB-cache
// contents across Execute calls; Flush models a context switch without
// reuse.
type Pipeline struct {
	cfg   arch.Config
	cache *dbCache
	stats Stats

	// sink receives instrumentation events when non-nil; the hot loop
	// pays one nil check per DB-cache transaction (lookup/fill/evict),
	// never per instruction. puID labels the events.
	sink obs.Sink
	puID int

	// scratch is the fill unit's assembly buffer, reused across fills so
	// a miss that ends up uncacheable (side-table entries re-streamed on
	// every replay) costs no allocation; insert copies it into the cache.
	scratch line

	// sideTable records addresses of single-instruction fills, keyed by
	// the same packed word as cache lines. They are never cached
	// ("fetching a single instruction from the DB cache is considered to
	// be inefficient", §3.4.1) but the hardware keeps their addresses so
	// the hotspot optimizer sees complete execution paths.
	sideTable genDir

	// localIDs interns code addresses of steps whose CodeID is 0
	// (hand-built traces). Local ids start at localIDBase so they can
	// never alias symbol-table ids within one pipeline.
	localIDs      map[types.Address]uint32
	lastLocalAddr types.Address
	lastLocalID   uint32

	// pend batches DB-cache counters for the sink between commit
	// boundaries; pendContract attributes them (events of different
	// contracts never share a batch).
	pend         obs.DBDelta
	pendContract types.Address

	// segIdx/segArena memoize fill results by packed line key. This is
	// software memoization of a pure function, not modeled hardware
	// state, so Flush leaves it alone — the no-reuse modes re-fill their
	// caches every transaction without re-deriving the same segmentation.
	segIdx   codeDir
	segArena []segment

	// memo is an optional shared segmentation consulted before the
	// private overlay (SetFillMemo).
	memo *FillMemo
}

// localIDBase is the first pipeline-local code id; interned symbol
// tables stay far below it.
const localIDBase = 1 << 31

// New returns a pipeline for the configuration.
func New(cfg arch.Config) *Pipeline {
	p := &Pipeline{
		cfg:       cfg,
		cache:     newDBCache(cfg.DBCacheEntries),
		sideTable: genDir{gen: 1},
	}
	p.segIdx.gen = 1
	return p
}

// Config returns the configuration the pipeline was built with.
func (p *Pipeline) Config() arch.Config { return p.cfg }

// Reset returns the pipeline to its just-constructed state while
// keeping every arena allocation warm (DB-cache nodes and lines, their
// member capacity, directory rows, overlay segments), so a pooled
// pipeline replays a new plan set with near-zero allocation. Unlike
// Flush, Reset also empties the private fill overlay — interned code
// ids are per-plan-set, so stale segments from another set could alias.
// Stats are cleared; replays after Reset are byte-identical to a fresh
// pipeline's.
func (p *Pipeline) Reset() {
	p.cache.reset()
	p.sideTable.reset()
	p.segIdx.clear()
	p.segArena = p.segArena[:0]
	p.memo = nil
	p.stats = Stats{}
	p.pend.Reset()
	p.pendContract = types.Address{}
	// Local ids persist deliberately: they are keyed by address, so
	// reuse across plan sets cannot alias.
}

// lineKey packs the identity of the line starting at s into one word:
// dense code id high, entry pc low (bytecode offsets fit 32 bits).
func (p *Pipeline) lineKey(s *evm.Step) uint64 {
	id := s.CodeID
	if id == 0 {
		id = p.localCodeID(s.CodeAddr)
	}
	return uint64(id)<<32 | uint64(uint32(s.PC))
}

// mix64 is the splitmix64 finalizer — the avalanche behind line.keySum,
// which sums mixed pcs so that reordered or substituted windows cannot
// cancel out the way raw pc sums would.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// localCodeID interns a code address locally for steps built without a
// symbol table, memoizing the previous lookup (consecutive steps almost
// always share a contract).
func (p *Pipeline) localCodeID(a types.Address) uint32 {
	if p.lastLocalID != 0 && a == p.lastLocalAddr {
		return p.lastLocalID
	}
	if p.localIDs == nil {
		p.localIDs = make(map[types.Address]uint32)
	}
	id, ok := p.localIDs[a]
	if !ok {
		id = localIDBase + uint32(len(p.localIDs))
		p.localIDs[a] = id
	}
	p.lastLocalAddr, p.lastLocalID = a, id
	return id
}

// SetSink attaches an instrumentation sink (nil disables) emitting
// events labelled with puID.
func (p *Pipeline) SetSink(s obs.Sink, puID int) {
	p.sink = s
	p.puID = puID
}

// Flush clears the DB cache and side table (used when ReuseContext is
// off). Both keep their backing storage, so the per-transaction flush
// of the no-reuse modes allocates nothing.
func (p *Pipeline) Flush() {
	p.cache.reset()
	p.sideTable.reset()
}

// SideTableLen reports how many single-instruction addresses the side
// table holds.
func (p *Pipeline) SideTableLen() int { return p.sideTable.count }

// Stats returns the accumulated counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// ResetStats zeroes the counters (the cache is left intact).
func (p *Pipeline) ResetStats() { p.stats = Stats{} }

// CacheLines returns the number of resident DB-cache lines.
func (p *Pipeline) CacheLines() int { return p.cache.size() }

// foldableConsumers are the second halves of recognized fold patterns: a
// stack-manipulation instruction (PUSH/DUP/SWAP) immediately feeding one
// of these is synthesized into a single instruction on the consumer's
// functional unit (§3.3.4: "when a foldable pattern occurs, the fill unit
// fills the synthesized instruction directly into the cache line"). The
// R/W sequence numbers let the synthesized instruction address its
// operands directly, so the stack op vanishes from the issue stream.
var foldableConsumers = func() (t [256]bool) {
	for _, op := range []evm.Opcode{
		evm.EQ, evm.LT, evm.GT, evm.SLT, evm.SGT, evm.ISZERO, evm.NOT,
		evm.ADD, evm.SUB, evm.MUL, evm.DIV, evm.AND, evm.OR, evm.XOR,
		evm.SHR, evm.SHL, evm.MSTORE, evm.SLOAD,
	} {
		t[op] = true
	}
	return
}()

// foldKind classifies the folded stack producer.
type foldKind int

const (
	foldNone foldKind = iota
	// foldImmediate: a PUSH supplies one operand as an immediate.
	foldImmediate
	// foldAddressed: a DUP/SWAP is subsumed by R/W-sequence-number
	// operand addressing; the operand count is unchanged but the stack
	// op leaves the issue stream.
	foldAddressed
)

// reconfigurable units complete in half a cycle and can forward their
// results to each other (§3.3.4).
func reconfigurable(u evm.FuncUnit) bool {
	switch u {
	case evm.FUStack, evm.FULogic, evm.FUArithmetic, evm.FUFixedAccess:
		return true
	}
	return false
}

// lineEnder reports opcodes that always terminate a line after inclusion:
// control-flow changes and context switches.
func lineEnder(op evm.Opcode) bool {
	switch op.Unit() {
	case evm.FUBranch:
		return op != evm.JUMPDEST
	case evm.FUControl, evm.FUContext:
		return true
	}
	return false
}

// Execute replays one instruction stream through the pipeline and returns
// the cycles it consumed. steps and ann must be parallel slices (ann may
// be nil for no hotspot annotations). mem resolves data latencies.
func (p *Pipeline) Execute(steps []evm.Step, ann []Annotation, mem MemModel) uint64 {
	if mem == nil {
		mem = FlatMem{Cfg: p.cfg}
	}
	var cycles uint64

	if !p.cfg.EnableDBCache {
		// Pure scalar: one issue per cycle plus stalls.
		for i := range steps {
			cycles += 1 + p.extraLat(&steps[i], annAt(ann, i), mem)
			p.stats.Instructions++
			p.stats.IssueCycles++
			p.stats.GasCharged += steps[i].GasCost
		}
		p.stats.Cycles += cycles
		return cycles
	}

	// Streaming counters accumulate in locals and land in p.stats once
	// at the end, so the loop body touches no heap-resident counters.
	var instructions, issueCycles, lineHits, lineMisses, hitInstructions, gasCharged uint64
	// last is the previous line's cache node; its successor hint usually
	// resolves the next lookup without probing the map.
	last := int32(-1)

	for i := 0; i < len(steps); {
		// Key computation is inlined here (lineKey is not inlinable —
		// the local-id fallback calls into map code): interned steps take
		// the two-instruction fast path.
		var key uint64
		if s0 := &steps[i]; s0.CodeID != 0 {
			key = uint64(s0.CodeID)<<32 | uint64(uint32(s0.PC))
		} else {
			key = p.lineKey(s0)
		}
		ni := int32(-1)
		if last >= 0 {
			if h := p.cache.nodes[last].succ; h >= 0 && p.cache.nodes[h].key == key {
				ni = h
			}
		}
		if ni < 0 {
			ni = p.cache.dir.get(key)
		}
		if ni >= 0 {
			p.cache.touch(ni)
			ln := p.cache.resolve(ni)
			if i+ln.count <= len(steps) && lineMatches(ln, steps, i) {
				// Hit: the whole line issues in one cycle; stalls overlap,
				// so the line costs 1 + the slowest member. lineMatches
				// verified the window's pcs up front — a tag match alone is
				// not enough, because the Contract Table rewrites hot
				// traces, so two variants of the same contract can share an
				// entry key with different downstream streams; the stale
				// variant falls through to the miss path and is refilled.
				if p.sink != nil {
					p.obsLookup(steps[i].CodeAddr, true, ln.count)
				}
				var worst uint64
				for k := i; k < i+ln.count; k++ {
					s := &steps[k]
					gasCharged += s.GasCost
					if c := latClass[s.Op]; c != latNone {
						var a Annotation
						if ann != nil && k < len(ann) {
							a = ann[k]
						}
						if l := p.classLat(c, s, a, mem); l > worst {
							worst = l
						}
					}
				}
				cycles += 1 + worst
				issueCycles++
				lineHits++
				hitInstructions += uint64(ln.count)
				instructions += uint64(ln.count)
				if last >= 0 {
					p.cache.nodes[last].succ = ni
				}
				last = ni
				i += ln.count
				continue
			}
		}

		// Miss: instructions stream through the scalar path while the
		// fill unit builds a line alongside (memoized — the segmentation
		// is a pure function of the trace window).
		lineMisses++
		ln, consumed, stable := p.fillCached(steps, ann, i, key)
		if p.sink != nil {
			p.obsLookup(steps[i].CodeAddr, false, consumed)
		}
		for j := i; j < i+consumed; j++ {
			s := &steps[j]
			gasCharged += s.GasCost
			var lat uint64
			if c := latClass[s.Op]; c != latNone {
				var a Annotation
				if ann != nil && j < len(ann) {
					a = ann[j]
				}
				lat = p.classLat(c, s, a, mem)
			}
			cycles += 1 + lat
		}
		instructions += uint64(consumed)
		issueCycles += uint64(consumed)
		if ln != nil && ln.count >= max(2, p.cfg.MinLineInstructions) {
			idx, evicted := p.cache.insert(key, ln, stable)
			p.stats.LinesCached++
			if evicted {
				p.stats.LineEvictions++
			}
			if p.sink != nil {
				p.pend.AddFill(ln.count)
				if evicted {
					p.pend.Evictions++
				}
			}
			if last >= 0 {
				p.cache.nodes[last].succ = idx
			}
			last = idx
		} else {
			if consumed == 1 {
				// §3.4.1: record the lone instruction's address only.
				p.sideTable.add(key)
			}
			last = -1
		}
		i += consumed
	}
	p.stats.Cycles += cycles
	p.stats.Instructions += instructions
	p.stats.IssueCycles += issueCycles
	p.stats.LineHits += lineHits
	p.stats.LineMisses += lineMisses
	p.stats.HitInstructions += hitInstructions
	p.stats.GasCharged += gasCharged
	if p.sink != nil {
		p.flushObs()
	}
	return cycles
}

// lineMatches reports whether the trace window at start reproduces the
// line's recorded pc sequence, folded members included (the caller has
// already checked that start+ln.count fits the stream). Code is
// immutable and lines never span frames, so a full pc match implies the
// window's ops and frame match the line too.
func lineMatches(ln *line, steps []evm.Step, start int) bool {
	k := start
	for mi := range ln.insts {
		m := &ln.insts[mi]
		if m.hasFolded {
			if steps[k].PC != m.foldedPC {
				return false
			}
			k++
		}
		if steps[k].PC != m.pc {
			return false
		}
		k++
	}
	return true
}

// HotStep is the compact per-step image of the replay hit path: the
// step's packed line key, its gas cost, and its latency class — 16
// bytes against evm.Step's cache-line-and-a-half, so the line-head load
// and the member walk of ExecuteHot stream an order of magnitude less
// memory. Built once per plan (HotSteps); instructions with a stall
// class still load the full step for their latency inputs.
type HotStep struct {
	Key   uint64
	Gas   uint32
	Class uint8
	_     byte
	// Depth is the call depth (≤ 1024, so uint16 is exact); with the
	// code id in Key's high half it answers sameFrame without the step.
	Depth uint16
}

// HotSteps builds the compact hit-path image of an interned step
// stream. It returns nil — callers fall back to the full-step path —
// when any step lacks an interned code id or has a pc, gas cost, or
// depth outside the packed ranges (never the case for real traces).
func HotSteps(steps []evm.Step) []HotStep {
	hot := make([]HotStep, len(steps))
	for i := range steps {
		s := &steps[i]
		if s.CodeID == 0 || s.PC > 0xffffffff || s.GasCost > 0xffffffff ||
			s.Depth < 0 || s.Depth > 0xffff {
			return nil
		}
		hot[i] = HotStep{
			Key:   uint64(s.CodeID)<<32 | uint64(uint32(s.PC)),
			Gas:   uint32(s.GasCost),
			Class: latClass[s.Op],
			Depth: uint16(s.Depth),
		}
	}
	return hot
}

// sameFrameHot is sameFrame on the compact image: equal depth and equal
// code id (HotSteps only builds fully interned images, where equal ids
// coincide with equal addresses).
func sameFrameHot(a, b *HotStep) bool {
	return a.Depth == b.Depth && a.Key>>32 == b.Key>>32
}

// HotPlan is the per-plan precomputation behind ExecuteHot: the compact
// HotStep image plus gas prefix sums and a next-stall index, so the hit
// and miss paths charge any window's gas with one subtraction and walk
// only the instructions that can stall.
type HotPlan struct {
	Steps []HotStep
	// GasPrefix[i] is the total gas of Steps[:i] (len(Steps)+1 entries).
	GasPrefix []uint64
	// NextStall[i] is the first index >= i whose latency class is not
	// latNone (len(Steps)+1 entries; NextStall[len] == len), so stall
	// walks advance stall-to-stall in ascending order — preserving the
	// MemModel call order of the full walk.
	NextStall []int32
	// Words[i] is the step's memory footprint in 32-byte words — the
	// SHA3/copy stall multiplier — so flat stall walks never load the
	// 128-byte step.
	Words []uint32
	// NoPrefetch records that no annotation marks a prefetched access,
	// making every flat-memory stall a pure function of the latency
	// class (plus SHA3/copy footprints) — the precondition for serving
	// hits from line.flatWorst.
	NoPrefetch bool
	// KeySum[i] is the sum of mix64'd pcs of Steps[:i] (len(Steps)+1
	// entries), so the hit path checks a whole window's pc sequence
	// against line.keySum with one subtraction.
	KeySum []uint64
}

// NewHotPlan precomputes the hot-path image of an interned step stream,
// or nil — callers fall back to Execute — when HotSteps rejects it.
func NewHotPlan(steps []evm.Step, ann []Annotation) *HotPlan {
	hot := HotSteps(steps)
	if hot == nil {
		return nil
	}
	n := len(hot)
	hp := &HotPlan{
		Steps:      hot,
		GasPrefix:  make([]uint64, n+1),
		NextStall:  make([]int32, n+1),
		Words:      make([]uint32, n),
		NoPrefetch: true,
		KeySum:     make([]uint64, n+1),
	}
	for i := range hot {
		hp.GasPrefix[i+1] = hp.GasPrefix[i] + uint64(hot[i].Gas)
		hp.KeySum[i+1] = hp.KeySum[i] + mix64(uint64(uint32(hot[i].Key)))
		w := (steps[i].MemBytes + 31) / 32
		if w > 0xffffffff {
			return nil
		}
		hp.Words[i] = uint32(w)
	}
	hp.NextStall[n] = int32(n)
	for i := n - 1; i >= 0; i-- {
		if hot[i].Class != latNone {
			hp.NextStall[i] = int32(i)
		} else {
			hp.NextStall[i] = hp.NextStall[i+1]
		}
	}
	for i := range ann {
		if ann[i].Prefetched {
			hp.NoPrefetch = false
			break
		}
	}
	return hp
}

// ExecuteHot is Execute given a precomputed HotPlan of the same stream
// (nil falls back to Execute). The replay is cycle-identical — the plan
// only removes redundant work from the walks: gas comes from prefix
// sums, stall walks skip stall-free instructions (FlatMem is stateless
// and walks stay ascending, so MemModel observes the same calls in the
// same order), and the hit-path lineMatches walk reduces to one keySum
// prefix subtraction (the window's mixed-pc sum equals line.keySum
// exactly when every pc Execute would compare matches, up to a
// negligible 2^-64 mix collision). The loop mirrors Execute's; changes
// to one must land in both.
func (p *Pipeline) ExecuteHot(steps []evm.Step, ann []Annotation, hp *HotPlan, mem MemModel) uint64 {
	if hp == nil || len(hp.Steps) != len(steps) || !p.cfg.EnableDBCache {
		return p.Execute(steps, ann, mem)
	}
	if mem == nil {
		mem = FlatMem{Cfg: p.cfg}
	}
	hot, gp, ns, words := hp.Steps, hp.GasPrefix, hp.NextStall, hp.Words
	// Under a flat memory model agreeing with the pipeline's config on
	// every latency a stall walk can read, with no prefetched
	// annotations, stalls are a pure function of the latency class and
	// footprint: hits use the precomputed line.flatWorst and walks use
	// the devirtualized flatLat. Field-wise compare — a whole-Config
	// equality is a memeq per call.
	fm, isFlat := mem.(FlatMem)
	flatOK := isFlat && hp.NoPrefetch &&
		fm.Cfg.MainMemLat == p.cfg.MainMemLat &&
		fm.Cfg.StorageWriteLat == p.cfg.StorageWriteLat &&
		fm.Cfg.ContextSwitchLat == p.cfg.ContextSwitchLat &&
		fm.Cfg.Sha3PerWordLat == p.cfg.Sha3PerWordLat &&
		fm.Cfg.CopyPerWordLat == p.cfg.CopyPerWordLat
	var cycles uint64
	var instructions, issueCycles, lineHits, lineMisses, hitInstructions, gasCharged uint64
	last := int32(-1)

	for i := 0; i < len(steps); {
		key := hot[i].Key
		ni := int32(-1)
		if last >= 0 {
			if h := p.cache.nodes[last].succ; h >= 0 && p.cache.nodes[h].key == key {
				ni = h
			}
		}
		if ni < 0 {
			ni = p.cache.dir.get(key)
		}
		if ni >= 0 {
			p.cache.touch(ni)
			ln := p.cache.resolve(ni)
			if end := i + ln.count; end <= len(steps) &&
				hp.KeySum[end]-hp.KeySum[i] == ln.keySum {
				// The prefix-sum check stands in for Execute's full pc
				// walk (see the function comment); a mismatched window —
				// a Contract-Table-rewritten variant sharing the entry
				// key — falls through to the miss path and is refilled.
				if p.sink != nil {
					p.obsLookup(steps[i].CodeAddr, true, ln.count)
				}
				gasCharged += gp[end] - gp[i]
				var worst uint64
				if flatOK && ln.flatWorst != lineDynStall {
					worst = uint64(ln.flatWorst)
				} else {
					for j := int(ns[i]); j < end; j = int(ns[j+1]) {
						var l uint64
						if flatOK {
							l = p.flatLat(hot[j].Class, uint64(words[j]))
						} else {
							var a Annotation
							if ann != nil && j < len(ann) {
								a = ann[j]
							}
							l = p.classLat(hot[j].Class, &steps[j], a, mem)
						}
						if l > worst {
							worst = l
						}
					}
				}
				cycles += 1 + worst
				issueCycles++
				lineHits++
				hitInstructions += uint64(ln.count)
				instructions += uint64(ln.count)
				if last >= 0 {
					p.cache.nodes[last].succ = ni
				}
				last = ni
				i = end
				continue
			}
		}

		lineMisses++
		ln, consumed, stable := p.fillCachedHot(steps, ann, hot, i, key)
		if p.sink != nil {
			p.obsLookup(steps[i].CodeAddr, false, consumed)
		}
		end := i + consumed
		gasCharged += gp[end] - gp[i]
		cycles += uint64(consumed)
		for j := int(ns[i]); j < end; j = int(ns[j+1]) {
			if flatOK {
				cycles += p.flatLat(hot[j].Class, uint64(words[j]))
			} else {
				var a Annotation
				if ann != nil && j < len(ann) {
					a = ann[j]
				}
				cycles += p.classLat(hot[j].Class, &steps[j], a, mem)
			}
		}
		instructions += uint64(consumed)
		issueCycles += uint64(consumed)
		if ln != nil && ln.count >= max(2, p.cfg.MinLineInstructions) {
			idx, evicted := p.cache.insert(key, ln, stable)
			p.stats.LinesCached++
			if evicted {
				p.stats.LineEvictions++
			}
			if p.sink != nil {
				p.pend.AddFill(ln.count)
				if evicted {
					p.pend.Evictions++
				}
			}
			if last >= 0 {
				p.cache.nodes[last].succ = idx
			}
			last = idx
		} else {
			if consumed == 1 {
				p.sideTable.add(key)
			}
			last = -1
		}
		i += consumed
	}
	p.stats.Cycles += cycles
	p.stats.Instructions += instructions
	p.stats.IssueCycles += issueCycles
	p.stats.LineHits += lineHits
	p.stats.LineMisses += lineMisses
	p.stats.HitInstructions += hitInstructions
	p.stats.GasCharged += gasCharged
	if p.sink != nil {
		p.flushObs()
	}
	return cycles
}

// obsLookup batches one DB-cache lookup for the sink, flushing the
// pending delta when the executing contract changes so attribution
// stays exact. Only called with a non-nil sink.
func (p *Pipeline) obsLookup(contract types.Address, hit bool, insts int) {
	if contract != p.pendContract && !p.pend.Empty() {
		p.flushObs()
	}
	p.pendContract = contract
	p.pend.Lookups++
	if hit {
		p.pend.Hits++
		p.pend.HitInstructions += uint64(insts)
	} else {
		p.pend.Misses++
	}
}

// flushObs hands the pending delta to the sink — the commit-boundary
// flush of the batched obs scheme.
func (p *Pipeline) flushObs() {
	if p.pend.Empty() {
		return
	}
	p.sink.DBFlush(p.puID, p.pendContract, &p.pend)
	p.pend.Reset()
}

// fillCached returns fill's result for the window at start, serving it
// from the segment memo when the recorded context still matches and
// recording a fresh segment (replacing any stale one) otherwise.
// fillCached's stable result reports whether the returned line pointer
// outlives the call unchanged for the pipeline's whole life: true only
// for shared-memo segments (the memo is frozen after construction).
// Overlay segments live in segArena, which may still grow and move, and
// real fills return the reused scratch buffer — both must be copied if
// retained.
func (p *Pipeline) fillCached(steps []evm.Step, ann []Annotation, start int, key uint64) (ln *line, consumed int, stable bool) {
	if m := p.memo; m != nil {
		if si := m.idx.get(key); si >= 0 {
			if seg := &m.arena[si]; p.segValid(seg, steps, ann, start) {
				p.stats.FoldedPairs += seg.folded
				p.stats.ForwardedRAWs += seg.forwarded
				if !seg.hasLine {
					return nil, seg.consumed, false
				}
				return &seg.ln, seg.consumed, true
			}
		}
	}
	if si := p.segIdx.get(key); si >= 0 {
		if seg := &p.segArena[si]; p.segValid(seg, steps, ann, start) {
			p.stats.FoldedPairs += seg.folded
			p.stats.ForwardedRAWs += seg.forwarded
			if !seg.hasLine {
				return nil, seg.consumed, false
			}
			// The caller only reads the line (insert copies it), so the
			// memo's own copy is handed out directly.
			return &seg.ln, seg.consumed, false
		}
	}
	f0, r0 := p.stats.FoldedPairs, p.stats.ForwardedRAWs
	ln, consumed = p.fill(steps, ann, start)
	p.recordSeg(key, ln, consumed, steps, ann, start,
		p.stats.FoldedPairs-f0, p.stats.ForwardedRAWs-r0)
	return ln, consumed, false
}

// segValid reports whether replaying fill at start would reproduce seg
// exactly: the window's pcs and call frame, its ConstOperands, and —
// when the original fill's break looked past the window — the break
// context must all match what was recorded.
func (p *Pipeline) segValid(seg *segment, steps []evm.Step, ann []Annotation, start int) bool {
	if start+seg.consumed > len(steps) {
		return false
	}
	w0 := &steps[start]
	k := start
	for mi := range seg.ln.insts {
		m := &seg.ln.insts[mi]
		if m.hasFolded {
			s := &steps[k]
			if s.PC != m.foldedPC || !sameFrame(w0, s) {
				return false
			}
			k++
		}
		s := &steps[k]
		if s.PC != m.pc || !sameFrame(w0, s) {
			return false
		}
		k++
	}
	if ann == nil {
		if seg.constMask != 0 {
			return false
		}
	} else {
		for j := 0; j < seg.consumed; j++ {
			if constAt(ann, start+j) != ((seg.constMask>>uint(j))&1 != 0) {
				return false
			}
		}
	}
	switch seg.term {
	case termEnder:
		// A control-flow opcode ended the line; nothing past the window
		// was consulted.
		return true
	case termEnd:
		return start+seg.consumed == len(steps)
	}
	// termNext: the break candidate (and possibly its fold lookahead)
	// shaped the decision.
	j := start + seg.consumed
	if j >= len(steps) {
		return false
	}
	b0 := &steps[j]
	if sameFrame(w0, b0) != seg.nextSame[0] {
		return false
	}
	if !seg.nextSame[0] {
		// The break was the frame change itself; only the frame flag of
		// the candidate was ever read.
		return true
	}
	if b0.PC != seg.nextPC[0] || constAt(ann, j) != seg.nextConst[0] {
		return false
	}
	if (j+1 < len(steps)) != seg.nextOK[1] {
		return false
	}
	if seg.nextOK[1] {
		b1 := &steps[j+1]
		if sameFrame(w0, b1) != seg.nextSame[1] {
			return false
		}
		if seg.nextSame[1] && (b1.PC != seg.nextPC[1] || constAt(ann, j+1) != seg.nextConst[1]) {
			return false
		}
	}
	return true
}

// segValidHot is segValid reading the compact step image instead of
// full steps: pc and frame checks use the packed key and depth. The
// verification is exactly equivalent (see sameFrameHot); n is the
// stream length.
func (p *Pipeline) segValidHot(seg *segment, hot []HotStep, ann []Annotation, start, n int) bool {
	if start+seg.consumed > n {
		return false
	}
	h0 := &hot[start]
	k := start
	for mi := range seg.ln.insts {
		m := &seg.ln.insts[mi]
		if m.hasFolded {
			h := &hot[k]
			if uint64(uint32(h.Key)) != m.foldedPC || !sameFrameHot(h0, h) {
				return false
			}
			k++
		}
		h := &hot[k]
		if uint64(uint32(h.Key)) != m.pc || !sameFrameHot(h0, h) {
			return false
		}
		k++
	}
	if ann == nil {
		if seg.constMask != 0 {
			return false
		}
	} else {
		for j := 0; j < seg.consumed; j++ {
			if constAt(ann, start+j) != ((seg.constMask>>uint(j))&1 != 0) {
				return false
			}
		}
	}
	switch seg.term {
	case termEnder:
		return true
	case termEnd:
		return start+seg.consumed == n
	}
	j := start + seg.consumed
	if j >= n {
		return false
	}
	b0 := &hot[j]
	if sameFrameHot(h0, b0) != seg.nextSame[0] {
		return false
	}
	if !seg.nextSame[0] {
		return true
	}
	if uint64(uint32(b0.Key)) != seg.nextPC[0] || constAt(ann, j) != seg.nextConst[0] {
		return false
	}
	if (j+1 < n) != seg.nextOK[1] {
		return false
	}
	if seg.nextOK[1] {
		b1 := &hot[j+1]
		if sameFrameHot(h0, b1) != seg.nextSame[1] {
			return false
		}
		if seg.nextSame[1] && (uint64(uint32(b1.Key)) != seg.nextPC[1] || constAt(ann, j+1) != seg.nextConst[1]) {
			return false
		}
	}
	return true
}

// fillCachedHot is fillCached verifying memo segments against the
// compact step image; real fills still read the full steps.
func (p *Pipeline) fillCachedHot(steps []evm.Step, ann []Annotation, hot []HotStep, start int, key uint64) (ln *line, consumed int, stable bool) {
	n := len(hot)
	if m := p.memo; m != nil {
		if si := m.idx.get(key); si >= 0 {
			if seg := &m.arena[si]; p.segValidHot(seg, hot, ann, start, n) {
				p.stats.FoldedPairs += seg.folded
				p.stats.ForwardedRAWs += seg.forwarded
				if !seg.hasLine {
					return nil, seg.consumed, false
				}
				return &seg.ln, seg.consumed, true
			}
		}
	}
	if si := p.segIdx.get(key); si >= 0 {
		if seg := &p.segArena[si]; p.segValidHot(seg, hot, ann, start, n) {
			p.stats.FoldedPairs += seg.folded
			p.stats.ForwardedRAWs += seg.forwarded
			if !seg.hasLine {
				return nil, seg.consumed, false
			}
			return &seg.ln, seg.consumed, false
		}
	}
	f0, r0 := p.stats.FoldedPairs, p.stats.ForwardedRAWs
	ln, consumed = p.fill(steps, ann, start)
	p.recordSeg(key, ln, consumed, steps, ann, start,
		p.stats.FoldedPairs-f0, p.stats.ForwardedRAWs-r0)
	return ln, consumed, false
}

// recordSeg stores the outcome of one real fill in the pipeline's
// private overlay memo.
func (p *Pipeline) recordSeg(key uint64, ln *line, consumed int, steps []evm.Step, ann []Annotation, start int, folded, forwarded uint64) {
	recordInto(&p.segIdx, &p.segArena, key, ln, consumed, steps, ann, start, folded, forwarded)
}

// recordInto stores the outcome of one real fill into a memo's storage;
// shared by the per-pipeline overlay and FillMemo construction.
func recordInto(idx *codeDir, arena *[]segment, key uint64, ln *line, consumed int, steps []evm.Step, ann []Annotation, start int, folded, forwarded uint64) {
	if consumed > segMaxConsumed {
		return
	}
	si := idx.get(key)
	if si < 0 {
		// Reslice before appending so a truncated arena (pooled pipeline
		// reuse) hands back its old segments' member capacity.
		if n := len(*arena); n < cap(*arena) {
			*arena = (*arena)[:n+1]
		} else {
			*arena = append(*arena, segment{})
		}
		si = int32(len(*arena) - 1)
		idx.set(key, si)
	}
	seg := &(*arena)[si]
	var lastOp evm.Opcode
	if ln != nil {
		seg.ln.copyFrom(ln)
		seg.hasLine = true
		lastOp = ln.insts[len(ln.insts)-1].op
	} else {
		// Single uncacheable instruction; never folded (a folded pair
		// counts two instructions and is cached as a line).
		seg.ln.insts = seg.ln.insts[:0]
		seg.ln.count = 0
		seg.hasLine = false
		lastOp = steps[start].Op
	}
	seg.consumed = consumed
	seg.folded = folded
	seg.forwarded = forwarded
	seg.constMask = 0
	for j := 0; j < consumed; j++ {
		if constAt(ann, start+j) {
			seg.constMask |= 1 << uint(j)
		}
	}
	seg.nextPC = [2]uint64{}
	seg.nextOK = [2]bool{}
	seg.nextSame = [2]bool{}
	seg.nextConst = [2]bool{}
	end := start + consumed
	switch {
	case lineEnder(lastOp):
		seg.term = termEnder
	case end >= len(steps):
		seg.term = termEnd
	default:
		seg.term = termNext
		b0 := &steps[end]
		seg.nextOK[0] = true
		seg.nextPC[0] = b0.PC
		seg.nextSame[0] = sameFrame(&steps[start], b0)
		seg.nextConst[0] = constAt(ann, end)
		if end+1 < len(steps) {
			b1 := &steps[end+1]
			seg.nextOK[1] = true
			seg.nextPC[1] = b1.PC
			seg.nextSame[1] = sameFrame(&steps[start], b1)
			seg.nextConst[1] = constAt(ann, end+1)
		}
	}
}

// FillMemo is a fill-segmentation memo shared across pipelines: the
// canonical segments of a plan set, computed once and consulted
// read-only by every PU and every replay of the same cached entry. It
// only holds segments for interned steps (CodeID != 0) — local ids are
// assigned per pipeline and would alias across sharers. Reuse goes
// through the same segValid verification as the private overlay, so a
// memo built from one trace serves another only where the decision
// context genuinely matches.
type FillMemo struct {
	cfg   arch.Config
	idx   codeDir
	arena []segment

	// builder drives the real fill unit during construction; it is not
	// used after AddTrace calls stop.
	builder *Pipeline
}

// NewFillMemo returns an empty memo recording segments under the
// configuration's fill rules. SetFillMemo refuses memos whose build
// configuration could yield different lines (see fillCompatible).
func NewFillMemo(cfg arch.Config) *FillMemo {
	m := &FillMemo{
		cfg:     cfg,
		builder: New(cfg),
	}
	m.idx.gen = 1
	return m
}

// AddTrace walks one trace's canonical segmentation — the chain a cold
// pipeline produces, starting at the trace head and advancing by each
// fill's consumed count — and records the first segment seen per line
// key. Construction must be single-threaded; replays treat the memo as
// immutable.
func (m *FillMemo) AddTrace(steps []evm.Step, ann []Annotation) {
	b := m.builder
	for i := 0; i < len(steps); {
		f0, r0 := b.stats.FoldedPairs, b.stats.ForwardedRAWs
		ln, consumed := b.fill(steps, ann, i)
		if id := steps[i].CodeID; id != 0 {
			key := uint64(id)<<32 | uint64(uint32(steps[i].PC))
			if m.idx.get(key) < 0 {
				recordInto(&m.idx, &m.arena, key, ln, consumed, steps, ann, i,
					b.stats.FoldedPairs-f0, b.stats.ForwardedRAWs-r0)
			}
		}
		i += consumed
	}
}

// SetFillMemo attaches a shared memo consulted before the pipeline's
// private overlay. A memo built under an incompatible configuration is
// ignored entirely, so attaching one can never change timing — only
// skip re-deriving identical segmentations.
func (p *Pipeline) SetFillMemo(m *FillMemo) {
	if m != nil && !fillCompatible(m.cfg, p.cfg) {
		m = nil
	}
	p.memo = m
}

// fillCompatible reports whether lines filled under a reproduce lines
// filled under b exactly: the same folding/forwarding rules (which shape
// segmentation) and the same flat-memory latencies (which are baked into
// line.flatWorst at fill time). SHA3/copy per-word rates are excluded —
// lines with those members carry the lineDynStall sentinel regardless.
func fillCompatible(a, b arch.Config) bool {
	return a.EnableFolding == b.EnableFolding &&
		a.EnableForwarding == b.EnableForwarding &&
		a.MainMemLat == b.MainMemLat &&
		a.StorageWriteLat == b.StorageWriteLat &&
		a.ContextSwitchLat == b.ContextSwitchLat
}

// fill implements the fill unit: starting at steps[start], pack
// instructions into one line until a functional-unit conflict, an
// unabsorbable RAW, or a control-flow change. Returns the line (nil if
// only one instruction fit) and how many trace steps it covers.
func (p *Pipeline) fill(steps []evm.Step, ann []Annotation, start int) (*line, int) {
	ln := &p.scratch
	ln.tag = lineTag{steps[start].CodeAddr, steps[start].PC}
	ln.count = 0
	ln.insts = ln.insts[:0]
	unitUsed := [evm.NumFuncUnits + 1]bool{}
	// flatWorst/flatDyn accumulate the line's precomputed worst stall
	// under a flat memory model with no prefetching (see line.flatWorst).
	var flatWorst uint64
	flatDyn := false
	// produced tracks how many of the virtual stack's top values were
	// pushed by instructions already in this line (the RAW window).
	produced := 0
	forwardingUsed := false
	lastProducerUnit := evm.FUInvalid

	i := start
	for i < len(steps) {
		s := &steps[i]
		a := annAt(ann, i)
		op := s.Op
		unit := op.Unit()

		// Folding: a stack op feeding a foldable consumer synthesizes
		// into one instruction on the consumer's unit (§3.3.4).
		fold := foldNone
		var foldedPC uint64
		if p.cfg.EnableFolding && i+1 < len(steps) && sameFrame(s, &steps[i+1]) {
			next := &steps[i+1]
			if foldableConsumers[next.Op] && !unitUsed[next.Op.Unit()] {
				switch {
				case op.IsPush():
					fold = foldImmediate
				case op.IsDup() || op.IsSwap():
					fold = foldAddressed
				}
				if fold != foldNone {
					foldedPC = s.PC
					op = next.Op
					unit = op.Unit()
					s = next
					a = annAt(ann, i+1)
				}
			}
		}

		if unitUsed[unit] {
			break // the field for this functional unit is already filled
		}

		// Dependency analysis. Reads against values produced in-line are
		// RAW; WAR/WAW never end a line (R/W sequence numbers).
		reads := op.Pops()
		if fold == foldImmediate {
			reads-- // the folded PUSH supplies one operand as an immediate
		}
		if a.ConstOperands {
			reads = 0 // operands come from the Constants Table
		}
		raw := reads
		if raw > produced {
			raw = produced
		}
		if raw > 0 && len(ln.insts) > 0 {
			if raw == 1 && p.cfg.EnableForwarding && !forwardingUsed && reconfigurable(lastProducerUnit) {
				forwardingUsed = true
				p.stats.ForwardedRAWs++
			} else {
				break // second RAW (or forwarding unavailable) ends the line
			}
		}

		m := member{pc: s.PC, op: op}
		if fold != foldNone {
			m.foldedPC = foldedPC
			m.hasFolded = true
			ln.count += 2
			i += 2
			p.stats.FoldedPairs++
		} else {
			ln.count++
			i++
		}
		ln.insts = append(ln.insts, m)
		unitUsed[unit] = true

		// Folded producers are stack ops (latNone), so member ops alone
		// determine the line's flat-memory stall profile.
		switch latClass[op] {
		case latNone:
		case latStorageRead, latStateQuery:
			if p.cfg.MainMemLat > flatWorst {
				flatWorst = p.cfg.MainMemLat
			}
		case latStorageWrite:
			if p.cfg.StorageWriteLat > flatWorst {
				flatWorst = p.cfg.StorageWriteLat
			}
		case latContext:
			if p.cfg.ContextSwitchLat > flatWorst {
				flatWorst = p.cfg.ContextSwitchLat
			}
		default: // latSha3, latCopy — stall depends on the memory footprint
			flatDyn = true
		}

		pops := op.Pops()
		if fold == foldImmediate {
			pops--
		}
		produced -= pops
		if produced < 0 {
			produced = 0
		}
		produced += op.Pushes()
		if op.Pushes() > 0 {
			lastProducerUnit = unit
		}

		if lineEnder(op) {
			break
		}
		// A line cannot cross into a different call frame.
		if i < len(steps) && !sameFrame(s, &steps[i]) {
			break
		}
	}

	consumed := i - start
	if consumed == 0 {
		// Defensive: always make progress even if the first instruction
		// could not be placed (cannot happen with an empty line).
		consumed = 1
	}
	if len(ln.insts) < 2 && ln.count < 2 {
		// Single-instruction lines are not cached (§3.4.1) — hardware
		// records only their address in the hotspot side table.
		return nil, consumed
	}
	if flatDyn || flatWorst >= uint64(lineDynStall) {
		ln.flatWorst = lineDynStall
	} else {
		ln.flatWorst = uint32(flatWorst)
	}
	var ks uint64
	for j := start; j < start+consumed; j++ {
		ks += mix64(steps[j].PC)
	}
	ln.keySum = ks
	return ln, consumed
}

// sameFrame reports whether two steps execute in the same call frame, so
// a line never spans a context switch.
func sameFrame(a, b *evm.Step) bool {
	if a.Depth != b.Depth {
		return false
	}
	// Interned ids stand in for the 20-byte address compare: within one
	// block's symbol table, equal addresses and equal ids coincide.
	if a.CodeID != 0 && b.CodeID != 0 {
		return a.CodeID == b.CodeID
	}
	return a.CodeAddr == b.CodeAddr
}

// Latency classes partition opcodes by which extra-latency rule applies,
// so the hot loop pays one table index instead of a chain of opcode and
// unit comparisons (latNone — no stall — is by far the common case).
const (
	latNone uint8 = iota
	latSha3
	latStorageRead
	latStorageWrite
	latStateQuery
	latContext
	latCopy
)

var latClass = func() (t [256]uint8) {
	for i := 0; i < 256; i++ {
		op := evm.Opcode(i)
		switch {
		case op == evm.SHA3:
			t[i] = latSha3
		case op == evm.SLOAD:
			t[i] = latStorageRead
		case op == evm.SSTORE:
			t[i] = latStorageWrite
		case op.Unit() == evm.FUStateQuery:
			t[i] = latStateQuery
		case op.Unit() == evm.FUContext:
			t[i] = latContext
		case op == evm.CALLDATACOPY || op == evm.CODECOPY ||
			op == evm.RETURNDATACOPY || op == evm.EXTCODECOPY,
			op >= evm.LOG0 && op <= evm.LOG4:
			t[i] = latCopy
		}
	}
	return
}()

// classLat resolves the stall cycles for a non-latNone class: hashing,
// copies, storage and state-query accesses, and context switches.
func (p *Pipeline) classLat(c uint8, s *evm.Step, a Annotation, mem MemModel) uint64 {
	words := func(n uint64) uint64 { return (n + 31) / 32 }
	switch c {
	case latSha3:
		return p.cfg.Sha3PerWordLat * words(s.MemBytes)
	case latStorageRead:
		return mem.StorageRead(s, a.Prefetched)
	case latStorageWrite:
		return mem.StorageWrite(s)
	case latStateQuery:
		return mem.StateQuery(s, a.Prefetched)
	case latContext:
		return p.cfg.ContextSwitchLat
	case latCopy:
		return p.cfg.CopyPerWordLat * words(s.MemBytes)
	}
	return 0
}

// flatLat is classLat specialized to a FlatMem agreeing with the
// pipeline's config, with no prefetched annotations — ExecuteHot's
// flatOK precondition. words is the step's precomputed footprint
// (HotPlan.Words); the returned stalls are identical to classLat's.
func (p *Pipeline) flatLat(c uint8, words uint64) uint64 {
	switch c {
	case latSha3:
		return p.cfg.Sha3PerWordLat * words
	case latStorageRead, latStateQuery:
		return p.cfg.MainMemLat
	case latStorageWrite:
		return p.cfg.StorageWriteLat
	case latContext:
		return p.cfg.ContextSwitchLat
	case latCopy:
		return p.cfg.CopyPerWordLat * words
	}
	return 0
}

// extraLat returns the stall cycles of one instruction beyond its issue
// slot.
func (p *Pipeline) extraLat(s *evm.Step, a Annotation, mem MemModel) uint64 {
	c := latClass[s.Op]
	if c == latNone {
		return 0
	}
	return p.classLat(c, s, a, mem)
}

func annAt(ann []Annotation, i int) Annotation {
	if ann == nil || i >= len(ann) {
		return Annotation{}
	}
	return ann[i]
}
