// Package pipeline implements the timing model of one PU's instruction
// pipeline (§3.3.2-3.3.5): the six-stage in-order scalar path, the fill
// unit that packs decoded bytecodes into DB-cache lines under the
// dependency rules of the paper (one field per functional unit, WAR/WAW
// removed by R/W sequence numbers, a single RAW absorbed by forwarding,
// common patterns folded), and the LRU decoded-bytecode cache whose hits
// issue a whole line in one cycle with its gas pre-summed.
package pipeline

import (
	"fmt"

	"mtpu/internal/arch"
	"mtpu/internal/evm"
	"mtpu/internal/obs"
	"mtpu/internal/types"
)

// Annotation carries hotspot-optimization facts about one trace step.
type Annotation struct {
	// Prefetched data costs a dcache hit instead of a state access (§3.4.4).
	Prefetched bool
	// ConstOperands marks instructions whose operands come from the
	// Constants Table, removing their stack dependencies (§3.4.3).
	ConstOperands bool
}

// AnnotatedStep pairs one executed instruction with its hotspot
// annotations; plans built by the hotspot optimizer are slices of these.
type AnnotatedStep struct {
	Step       evm.Step
	Annotation Annotation
}

// Split separates annotated steps into the parallel slices Execute takes.
func Split(in []AnnotatedStep) ([]evm.Step, []Annotation) {
	return SplitInto(in, nil, nil)
}

// SplitInto is Split reusing the caller's buffers when they have the
// capacity, so tight replay loops split without allocating.
func SplitInto(in []AnnotatedStep, steps []evm.Step, ann []Annotation) ([]evm.Step, []Annotation) {
	if cap(steps) < len(in) {
		steps = make([]evm.Step, len(in))
	} else {
		steps = steps[:len(in)]
	}
	if cap(ann) < len(in) {
		ann = make([]Annotation, len(in))
	} else {
		ann = ann[:len(in)]
	}
	for i := range in {
		steps[i] = in[i].Step
		ann[i] = in[i].Annotation
	}
	return steps, ann
}

// MemModel resolves data-access latencies. The MTPU supplies an
// implementation backed by the shared State Buffer.
type MemModel interface {
	// StorageRead returns the SLOAD latency for the slot.
	StorageRead(addr types.Address, slot types.Hash, prefetched bool) uint64
	// StorageWrite returns the SSTORE latency.
	StorageWrite(addr types.Address, slot types.Hash) uint64
	// StateQuery returns the BALANCE/EXTCODE* latency.
	StateQuery(addr types.Address, prefetched bool) uint64
}

// FlatMem is a MemModel with fixed latencies and no State Buffer,
// used by single-PU experiments.
type FlatMem struct {
	Cfg arch.Config
}

// StorageRead implements MemModel.
func (m FlatMem) StorageRead(_ types.Address, _ types.Hash, prefetched bool) uint64 {
	if prefetched {
		return m.Cfg.DCacheLat
	}
	return m.Cfg.MainMemLat
}

// StorageWrite implements MemModel.
func (m FlatMem) StorageWrite(types.Address, types.Hash) uint64 {
	return m.Cfg.StorageWriteLat
}

// StateQuery implements MemModel.
func (m FlatMem) StateQuery(_ types.Address, prefetched bool) uint64 {
	if prefetched {
		return m.Cfg.DCacheLat
	}
	return m.Cfg.MainMemLat
}

// Stats aggregates pipeline activity.
type Stats struct {
	// Instructions executed (original count; folded pairs count as two).
	Instructions uint64
	// Cycles consumed by the pipeline (excludes context loading),
	// including data-access stalls.
	Cycles uint64
	// IssueCycles counts issue slots only (one per scalar instruction or
	// per hit line) — the denominator of the paper's IPC metric, which
	// measures packing density rather than memory behaviour.
	IssueCycles uint64
	// LineHits / LineMisses count DB-cache lookups at line granularity.
	LineHits, LineMisses uint64
	// HitInstructions is the number of instructions issued from hit lines.
	HitInstructions uint64
	// FoldedPairs counts PUSH+op folds performed by the fill unit.
	FoldedPairs uint64
	// ForwardedRAWs counts RAW hazards absorbed by data forwarding.
	ForwardedRAWs uint64
	// GasCharged sums gas deducted (scalar or via line G fields).
	GasCharged uint64
	// LinesCached counts lines inserted into the DB cache.
	LinesCached uint64
	// LineEvictions counts LRU evictions from the DB cache.
	LineEvictions uint64
}

// HitRatio is the fraction of instructions issued from DB-cache hits.
func (s Stats) HitRatio() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.HitInstructions) / float64(s.Instructions)
}

// IPC is instructions per issue cycle — the Fig. 12/Table 7 metric:
// how many instructions the DB cache issues per slot, independent of
// data-access stalls (which EffectiveIPC includes).
func (s Stats) IPC() float64 {
	if s.IssueCycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.IssueCycles)
}

// AvgLineSize is the mean instructions per hit line — the packing
// density the fill unit achieved on reused lines.
func (s Stats) AvgLineSize() float64 {
	if s.LineHits == 0 {
		return 0
	}
	return float64(s.HitInstructions) / float64(s.LineHits)
}

// EffectiveIPC is instructions per total pipeline cycle, stalls included.
func (s Stats) EffectiveIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Instructions += o.Instructions
	s.Cycles += o.Cycles
	s.IssueCycles += o.IssueCycles
	s.LineHits += o.LineHits
	s.LineMisses += o.LineMisses
	s.HitInstructions += o.HitInstructions
	s.FoldedPairs += o.FoldedPairs
	s.ForwardedRAWs += o.ForwardedRAWs
	s.GasCharged += o.GasCharged
	s.LinesCached += o.LinesCached
	s.LineEvictions += o.LineEvictions
}

// MemStallCycles is the dependency-stall share of Cycles: time spent
// waiting on data accesses rather than issuing.
func (s Stats) MemStallCycles() uint64 { return s.Cycles - s.IssueCycles }

// MissIssueCycles is the share of IssueCycles spent on the DB-cache
// miss path (each hit line takes exactly one issue slot, so the rest of
// the issue slots are scalar streaming during fills or with the cache
// disabled).
func (s Stats) MissIssueCycles() uint64 { return s.IssueCycles - s.LineHits }

// member is one entry of a DB-cache line.
type member struct {
	pc uint64
	op evm.Opcode
	// foldedPC is the original instruction folded into this member (its
	// pc precedes pc in the trace); folding synthesizes at most one pair
	// (§3.3.4), so a scalar suffices and keeps members allocation-free.
	foldedPC  uint64
	hasFolded bool
}

// line is one DB-cache line: up to one member per functional unit, ended
// by a unit conflict, a second RAW, or a control-flow change. The address
// of the next instruction and the summed gas (G) live at the end of the
// line in hardware; here they are implicit in the trace replay.
// lineTag identifies a line: contract address plus entry pc.
type lineTag struct {
	addr types.Address
	pc   uint64
}

type line struct {
	tag   lineTag
	insts []member
	// count is the original instruction count (including folded ones).
	count int
}

// clone copies a scratch-assembled line into a fresh heap value the
// cache can own past the next fill.
func (ln *line) clone() *line {
	c := &line{tag: ln.tag, count: ln.count}
	c.insts = append(c.insts, ln.insts...)
	return c
}

// dbCache is a fully-associative LRU cache of decoded lines keyed by the
// address of their first instruction.
type dbCache struct {
	capacity int // 0 = unbounded
	lines    map[lineTag]*cacheNode
	// LRU doubly-linked list.
	head, tail *cacheNode
}

type cacheNode struct {
	key        lineTag
	ln         *line
	prev, next *cacheNode
}

func newDBCache(capacity int) *dbCache {
	return &dbCache{capacity: capacity, lines: make(map[lineTag]*cacheNode)}
}

func (c *dbCache) lookup(tag lineTag) *line {
	n := c.lines[tag]
	if n == nil {
		return nil
	}
	c.touch(n)
	return n.ln
}

// insert adds the line, reporting whether an LRU victim was evicted.
func (c *dbCache) insert(ln *line) (evicted bool) {
	if n, ok := c.lines[ln.tag]; ok {
		n.ln = ln
		c.touch(n)
		return false
	}
	n := &cacheNode{key: ln.tag, ln: ln}
	c.lines[ln.tag] = n
	c.pushFront(n)
	if c.capacity > 0 && len(c.lines) > c.capacity {
		c.evict()
		return true
	}
	return false
}

func (c *dbCache) touch(n *cacheNode) {
	c.unlink(n)
	c.pushFront(n)
}

func (c *dbCache) pushFront(n *cacheNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *dbCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *dbCache) evict() {
	victim := c.tail
	if victim == nil {
		return
	}
	c.unlink(victim)
	delete(c.lines, victim.key)
}

func (c *dbCache) reset() {
	c.lines = make(map[lineTag]*cacheNode)
	c.head, c.tail = nil, nil
}

func (c *dbCache) size() int { return len(c.lines) }

// Pipeline is the per-PU instruction timing model. It retains DB-cache
// contents across Execute calls; Flush models a context switch without
// reuse.
type Pipeline struct {
	cfg   arch.Config
	cache *dbCache
	stats Stats

	// sink receives instrumentation events when non-nil; the hot loop
	// pays one nil check per DB-cache transaction (lookup/fill/evict),
	// never per instruction. puID labels the events.
	sink obs.Sink
	puID int

	// scratch is the fill unit's assembly buffer, reused across fills so
	// a miss that ends up uncacheable (side-table entries re-streamed on
	// every replay) costs no allocation; insert clones it into the cache.
	scratch line

	// sideTable records addresses of single-instruction fills. They are
	// never cached ("fetching a single instruction from the DB cache is
	// considered to be inefficient", §3.4.1) but the hardware keeps their
	// addresses so the hotspot optimizer sees complete execution paths.
	sideTable map[lineTag]bool
}

// New returns a pipeline for the configuration.
func New(cfg arch.Config) *Pipeline {
	return &Pipeline{
		cfg:       cfg,
		cache:     newDBCache(cfg.DBCacheEntries),
		sideTable: make(map[lineTag]bool),
	}
}

// SetSink attaches an instrumentation sink (nil disables) emitting
// events labelled with puID.
func (p *Pipeline) SetSink(s obs.Sink, puID int) {
	p.sink = s
	p.puID = puID
}

// Flush clears the DB cache and side table (used when ReuseContext is off).
func (p *Pipeline) Flush() {
	p.cache.reset()
	p.sideTable = make(map[lineTag]bool)
}

// SideTableLen reports how many single-instruction addresses the side
// table holds.
func (p *Pipeline) SideTableLen() int { return len(p.sideTable) }

// Stats returns the accumulated counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// ResetStats zeroes the counters (the cache is left intact).
func (p *Pipeline) ResetStats() { p.stats = Stats{} }

// CacheLines returns the number of resident DB-cache lines.
func (p *Pipeline) CacheLines() int { return p.cache.size() }

// foldableConsumers are the second halves of recognized fold patterns: a
// stack-manipulation instruction (PUSH/DUP/SWAP) immediately feeding one
// of these is synthesized into a single instruction on the consumer's
// functional unit (§3.3.4: "when a foldable pattern occurs, the fill unit
// fills the synthesized instruction directly into the cache line"). The
// R/W sequence numbers let the synthesized instruction address its
// operands directly, so the stack op vanishes from the issue stream.
var foldableConsumers = map[evm.Opcode]bool{
	evm.EQ:     true,
	evm.LT:     true,
	evm.GT:     true,
	evm.SLT:    true,
	evm.SGT:    true,
	evm.ISZERO: true,
	evm.NOT:    true,
	evm.ADD:    true,
	evm.SUB:    true,
	evm.MUL:    true,
	evm.DIV:    true,
	evm.AND:    true,
	evm.OR:     true,
	evm.XOR:    true,
	evm.SHR:    true,
	evm.SHL:    true,
	evm.MSTORE: true,
	evm.SLOAD:  true,
}

// foldKind classifies the folded stack producer.
type foldKind int

const (
	foldNone foldKind = iota
	// foldImmediate: a PUSH supplies one operand as an immediate.
	foldImmediate
	// foldAddressed: a DUP/SWAP is subsumed by R/W-sequence-number
	// operand addressing; the operand count is unchanged but the stack
	// op leaves the issue stream.
	foldAddressed
)

// reconfigurable units complete in half a cycle and can forward their
// results to each other (§3.3.4).
func reconfigurable(u evm.FuncUnit) bool {
	switch u {
	case evm.FUStack, evm.FULogic, evm.FUArithmetic, evm.FUFixedAccess:
		return true
	}
	return false
}

// lineEnder reports opcodes that always terminate a line after inclusion:
// control-flow changes and context switches.
func lineEnder(op evm.Opcode) bool {
	switch op.Unit() {
	case evm.FUBranch:
		return op != evm.JUMPDEST
	case evm.FUControl, evm.FUContext:
		return true
	}
	return false
}

// Execute replays one instruction stream through the pipeline and returns
// the cycles it consumed. steps and ann must be parallel slices (ann may
// be nil for no hotspot annotations). mem resolves data latencies.
func (p *Pipeline) Execute(steps []evm.Step, ann []Annotation, mem MemModel) uint64 {
	if mem == nil {
		mem = FlatMem{Cfg: p.cfg}
	}
	var cycles uint64

	if !p.cfg.EnableDBCache {
		// Pure scalar: one issue per cycle plus stalls.
		for i := range steps {
			cycles += 1 + p.extraLat(&steps[i], annAt(ann, i), mem)
			p.stats.Instructions++
			p.stats.IssueCycles++
			p.stats.GasCharged += steps[i].GasCost
		}
		p.stats.Cycles += cycles
		return cycles
	}

	for i := 0; i < len(steps); {
		if ln := p.cache.lookup(lineTag{steps[i].CodeAddr, steps[i].PC}); ln != nil && p.lineMatches(ln, steps, i) {
			// Hit: the whole line issues in one cycle; stalls overlap, so
			// the line costs 1 + the slowest member.
			if p.sink != nil {
				p.sink.DBLookup(p.puID, steps[i].CodeAddr, true, ln.count)
			}
			var worst uint64
			for j := 0; j < ln.count; j++ {
				s := &steps[i+j]
				if l := p.extraLat(s, annAt(ann, i+j), mem); l > worst {
					worst = l
				}
				p.stats.GasCharged += s.GasCost
			}
			cycles += 1 + worst
			p.stats.IssueCycles++
			p.stats.LineHits++
			p.stats.HitInstructions += uint64(ln.count)
			p.stats.Instructions += uint64(ln.count)
			i += ln.count
			continue
		}

		// Miss: instructions stream through the scalar path while the
		// fill unit builds a line alongside.
		p.stats.LineMisses++
		ln, consumed := p.fill(steps, ann, i)
		if p.sink != nil {
			p.sink.DBLookup(p.puID, steps[i].CodeAddr, false, consumed)
		}
		for j := 0; j < consumed; j++ {
			s := &steps[i+j]
			cycles += 1 + p.extraLat(s, annAt(ann, i+j), mem)
			p.stats.Instructions++
			p.stats.IssueCycles++
			p.stats.GasCharged += s.GasCost
		}
		if ln != nil && ln.count >= max(2, p.cfg.MinLineInstructions) {
			evicted := p.cache.insert(ln.clone())
			p.stats.LinesCached++
			if evicted {
				p.stats.LineEvictions++
			}
			if p.sink != nil {
				p.sink.DBFill(p.puID, ln.count)
				if evicted {
					p.sink.DBEvict(p.puID)
				}
			}
		} else if consumed == 1 {
			// §3.4.1: record the lone instruction's address only.
			p.sideTable[lineTag{steps[i].CodeAddr, steps[i].PC}] = true
		}
		i += consumed
	}
	p.stats.Cycles += cycles
	return cycles
}

// lineMatches verifies that the cached line corresponds to the upcoming
// trace. Code is immutable and lines never span branches, so a tag match
// implies a content match; this check enforces that invariant.
func (p *Pipeline) lineMatches(ln *line, steps []evm.Step, i int) bool {
	if i+ln.count > len(steps) {
		return false
	}
	k := i
	for _, m := range ln.insts {
		if m.hasFolded {
			if steps[k].PC != m.foldedPC {
				panic(fmt.Sprintf("pipeline: line %s:0x%x diverged at folded pc 0x%x vs trace 0x%x",
					ln.tag.addr, ln.tag.pc, m.foldedPC, steps[k].PC))
			}
			k++
		}
		if steps[k].PC != m.pc {
			panic(fmt.Sprintf("pipeline: line %s:0x%x diverged at pc 0x%x vs trace 0x%x",
				ln.tag.addr, ln.tag.pc, m.pc, steps[k].PC))
		}
		k++
	}
	return true
}

// fill implements the fill unit: starting at steps[start], pack
// instructions into one line until a functional-unit conflict, an
// unabsorbable RAW, or a control-flow change. Returns the line (nil if
// only one instruction fit) and how many trace steps it covers.
func (p *Pipeline) fill(steps []evm.Step, ann []Annotation, start int) (*line, int) {
	ln := &p.scratch
	ln.tag = lineTag{steps[start].CodeAddr, steps[start].PC}
	ln.count = 0
	ln.insts = ln.insts[:0]
	unitUsed := [evm.NumFuncUnits + 1]bool{}
	// produced tracks how many of the virtual stack's top values were
	// pushed by instructions already in this line (the RAW window).
	produced := 0
	forwardingUsed := false
	lastProducerUnit := evm.FUInvalid

	i := start
	for i < len(steps) {
		s := &steps[i]
		a := annAt(ann, i)
		op := s.Op
		unit := op.Unit()

		// Folding: a stack op feeding a foldable consumer synthesizes
		// into one instruction on the consumer's unit (§3.3.4).
		fold := foldNone
		var foldedPC uint64
		if p.cfg.EnableFolding && i+1 < len(steps) && sameFrame(s, &steps[i+1]) {
			next := &steps[i+1]
			if foldableConsumers[next.Op] && !unitUsed[next.Op.Unit()] {
				switch {
				case op.IsPush():
					fold = foldImmediate
				case op.IsDup() || op.IsSwap():
					fold = foldAddressed
				}
				if fold != foldNone {
					foldedPC = s.PC
					op = next.Op
					unit = op.Unit()
					s = next
					a = annAt(ann, i+1)
				}
			}
		}

		if unitUsed[unit] {
			break // the field for this functional unit is already filled
		}

		// Dependency analysis. Reads against values produced in-line are
		// RAW; WAR/WAW never end a line (R/W sequence numbers).
		reads := op.Pops()
		if fold == foldImmediate {
			reads-- // the folded PUSH supplies one operand as an immediate
		}
		if a.ConstOperands {
			reads = 0 // operands come from the Constants Table
		}
		raw := reads
		if raw > produced {
			raw = produced
		}
		if raw > 0 && len(ln.insts) > 0 {
			if raw == 1 && p.cfg.EnableForwarding && !forwardingUsed && reconfigurable(lastProducerUnit) {
				forwardingUsed = true
				p.stats.ForwardedRAWs++
			} else {
				break // second RAW (or forwarding unavailable) ends the line
			}
		}

		m := member{pc: s.PC, op: op}
		if fold != foldNone {
			m.foldedPC = foldedPC
			m.hasFolded = true
			ln.count += 2
			i += 2
			p.stats.FoldedPairs++
		} else {
			ln.count++
			i++
		}
		ln.insts = append(ln.insts, m)
		unitUsed[unit] = true

		pops := op.Pops()
		if fold == foldImmediate {
			pops--
		}
		produced -= pops
		if produced < 0 {
			produced = 0
		}
		produced += op.Pushes()
		if op.Pushes() > 0 {
			lastProducerUnit = unit
		}

		if lineEnder(op) {
			break
		}
		// A line cannot cross into a different call frame.
		if i < len(steps) && !sameFrame(s, &steps[i]) {
			break
		}
	}

	consumed := i - start
	if consumed == 0 {
		// Defensive: always make progress even if the first instruction
		// could not be placed (cannot happen with an empty line).
		consumed = 1
	}
	if len(ln.insts) < 2 && ln.count < 2 {
		// Single-instruction lines are not cached (§3.4.1) — hardware
		// records only their address in the hotspot side table.
		return nil, consumed
	}
	return ln, consumed
}

// sameFrame reports whether two steps execute in the same call frame, so
// a line never spans a context switch.
func sameFrame(a, b *evm.Step) bool {
	return a.Depth == b.Depth && a.CodeAddr == b.CodeAddr
}

// extraLat returns the stall cycles of one instruction beyond its issue
// slot: hashing, copies, storage and state-query accesses, and context
// switches.
func (p *Pipeline) extraLat(s *evm.Step, a Annotation, mem MemModel) uint64 {
	words := func(n uint64) uint64 { return (n + 31) / 32 }
	switch {
	case s.Op == evm.SHA3:
		return p.cfg.Sha3PerWordLat * words(s.MemBytes)
	case s.Op == evm.SLOAD:
		return mem.StorageRead(s.TouchAddr, s.TouchSlot, a.Prefetched)
	case s.Op == evm.SSTORE:
		return mem.StorageWrite(s.TouchAddr, s.TouchSlot)
	case s.Op.Unit() == evm.FUStateQuery:
		return mem.StateQuery(s.TouchAddr, a.Prefetched)
	case s.Op.Unit() == evm.FUContext:
		return p.cfg.ContextSwitchLat
	case s.Op == evm.CALLDATACOPY || s.Op == evm.CODECOPY ||
		s.Op == evm.RETURNDATACOPY || s.Op == evm.EXTCODECOPY:
		return p.cfg.CopyPerWordLat * words(s.MemBytes)
	case s.Op >= evm.LOG0 && s.Op <= evm.LOG4:
		return p.cfg.CopyPerWordLat * words(s.MemBytes)
	}
	return 0
}

func annAt(ann []Annotation, i int) Annotation {
	if ann == nil || i >= len(ann) {
		return Annotation{}
	}
	return ann[i]
}
