package pipeline_test

import (
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/core"
	"mtpu/internal/workload"
)

// allocFixture builds a warmed pipeline, PU and plan set: one pass over
// the plans fills the DB cache and memoizes every plan's split, so the
// measured replay below runs the pure hit path.
func allocFixture(t testing.TB) (*pipeline.Pipeline, *pu.PU, []*pu.Plan, pipeline.MemModel) {
	g := workload.NewGenerator(303, 1024)
	genesis := g.Genesis()
	block := g.Batch(g.Contract("TetherUSD"), 16)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		t.Fatal(err)
	}
	plans := pu.PlainPlans(traces)

	cfg := arch.DefaultConfig() // ReuseContext on: state survives across txs
	pipe := pipeline.New(cfg)
	unit := pu.New(0, cfg)
	// Box the memory model once; passing a freshly-composed interface
	// value inside the measured loop would itself allocate.
	var mem pipeline.MemModel = pipeline.FlatMem{Cfg: cfg}

	for _, p := range plans {
		steps, ann := p.Split()
		pipe.Execute(steps, ann, mem)
		unit.Run(p, mem)
	}
	return pipe, unit, plans, mem
}

// TestPipelineExecuteWarmZeroAllocs is the zero-overhead guard of the
// instrumentation layer: with no sink attached, a warm (all-hit) replay
// of the pipeline hot path must not allocate at all.
func TestPipelineExecuteWarmZeroAllocs(t *testing.T) {
	pipe, _, plans, mem := allocFixture(t)
	avg := testing.AllocsPerRun(20, func() {
		for _, p := range plans {
			steps, ann := p.Split()
			pipe.Execute(steps, ann, mem)
		}
	})
	if avg != 0 {
		t.Errorf("warm Execute allocates %.1f objects per replay, want 0", avg)
	}
}

// TestPURunWarmZeroAllocs extends the guard one layer up: the whole
// PU.Run path (context residency, load accounting, pipeline) stays
// allocation-free on a warm replay with instrumentation disabled.
func TestPURunWarmZeroAllocs(t *testing.T) {
	_, unit, plans, mem := allocFixture(t)
	avg := testing.AllocsPerRun(20, func() {
		for _, p := range plans {
			unit.Run(p, mem)
		}
	})
	if avg != 0 {
		t.Errorf("warm PU.Run allocates %.1f objects per replay, want 0", avg)
	}
}
