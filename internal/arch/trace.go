package arch

import (
	"mtpu/internal/evm"
	"mtpu/internal/types"
)

// CodeLoad records one contract-context construction: entering a call
// frame loads the callee bytecode into the Call_Contract stack. Bytecode
// dominates the loaded context (Table 2), so it is the unit the
// redundancy and hotspot optimizations act on.
type CodeLoad struct {
	Addr      types.Address
	CodeBytes int
	InputLen  int
	Depth     int
	// StepIndex is the position in Steps where the frame began.
	StepIndex int
}

// TxTrace is the full dynamic record of one executed transaction,
// sufficient for the timing model to replay it cycle by cycle.
type TxTrace struct {
	// Contract is the top-level callee (zero for plain transfers).
	Contract types.Address
	// Selector is the entry-function identifier (ok=false for transfers).
	Selector    [4]byte
	HasSelector bool

	Steps     []evm.Step
	CodeLoads []CodeLoad
	GasUsed   uint64

	// Plain value transfers have no Steps but still cost setup time.
	IsTransfer bool

	// Syms is the block-scoped symbol table that assigned the dense
	// CodeID/TouchID fields of Steps; every trace of one collected block
	// shares the same table. Nil for hand-built traces (Steps then carry
	// zero ids and consumers use their slow paths).
	Syms *SymbolTable
}

// InstructionCount returns the number of executed instructions.
func (t *TxTrace) InstructionCount() int { return len(t.Steps) }

// Collector implements evm.Tracer, accumulating a TxTrace per transaction.
type Collector struct {
	trace *TxTrace

	// syms interns addresses and storage keys as steps arrive; one table
	// spans every transaction the collector sees (one block), so dense
	// ids stay consistent across the whole replay.
	syms *SymbolTable

	// stepHint/loadHint carry the previous transaction's trace sizes as
	// capacity hints for the next one — blocks are dominated by runs of
	// similar transactions, so the per-step appends stop regrowing.
	stepHint int
	loadHint int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{trace: &TxTrace{}, syms: NewSymbolTable()}
}

// Begin resets the collector for a new transaction.
func (c *Collector) Begin(tx *types.Transaction) {
	t := &TxTrace{}
	if c.stepHint > 0 {
		t.Steps = make([]evm.Step, 0, c.stepHint)
	}
	if c.loadHint > 0 {
		t.CodeLoads = make([]CodeLoad, 0, c.loadHint)
	}
	if tx != nil {
		if tx.To != nil {
			t.Contract = *tx.To
		}
		if sel, ok := tx.Selector(); ok {
			t.Selector = sel
			t.HasSelector = true
		}
		t.IsTransfer = tx.To != nil && len(tx.Data) == 0
	}
	c.trace = t
}

// Finish returns the accumulated trace and resets.
func (c *Collector) Finish(gasUsed uint64) *TxTrace {
	t := c.trace
	t.GasUsed = gasUsed
	t.Syms = c.syms
	if len(t.Steps) > 0 {
		c.stepHint = len(t.Steps)
	}
	if len(t.CodeLoads) > 0 {
		c.loadHint = len(t.CodeLoads)
	}
	c.trace = &TxTrace{}
	return t
}

// OnEnter implements evm.Tracer.
func (c *Collector) OnEnter(depth int, codeAddr types.Address, codeLen, inputLen int) {
	c.trace.CodeLoads = append(c.trace.CodeLoads, CodeLoad{
		Addr:      codeAddr,
		CodeBytes: codeLen,
		InputLen:  inputLen,
		Depth:     depth,
		StepIndex: len(c.trace.Steps),
	})
}

// OnStep implements evm.Tracer.
func (c *Collector) OnStep(step *evm.Step) {
	c.trace.Steps = append(c.trace.Steps, *step)
	c.syms.Intern(&c.trace.Steps[len(c.trace.Steps)-1])
}

// OnExit implements evm.Tracer.
func (c *Collector) OnExit(depth int, err error) {}

var _ evm.Tracer = (*Collector)(nil)
