package arch

import (
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/types"
)

func TestCollectorLifecycle(t *testing.T) {
	c := NewCollector()
	to := types.HexToAddress("0x1111111111111111111111111111111111111111")
	tx := &types.Transaction{To: &to, Data: []byte{0xa9, 0x05, 0x9c, 0xbb, 0x01}}

	c.Begin(tx)
	c.OnEnter(1, to, 321, len(tx.Data))
	c.OnStep(&evm.Step{PC: 0, Op: evm.PUSH1, Depth: 1, CodeAddr: to})
	c.OnStep(&evm.Step{PC: 2, Op: evm.STOP, Depth: 1, CodeAddr: to})
	c.OnExit(1, nil)
	tr := c.Finish(2100)

	if tr.Contract != to {
		t.Fatalf("contract %s", tr.Contract)
	}
	if !tr.HasSelector || tr.Selector != [4]byte{0xa9, 0x05, 0x9c, 0xbb} {
		t.Fatalf("selector %x ok=%v", tr.Selector, tr.HasSelector)
	}
	if tr.IsTransfer {
		t.Fatal("SCT marked as transfer")
	}
	if tr.GasUsed != 2100 {
		t.Fatalf("gas %d", tr.GasUsed)
	}
	if len(tr.Steps) != 2 || tr.InstructionCount() != 2 {
		t.Fatalf("%d steps", len(tr.Steps))
	}
	if len(tr.CodeLoads) != 1 || tr.CodeLoads[0].CodeBytes != 321 ||
		tr.CodeLoads[0].StepIndex != 0 {
		t.Fatalf("code loads %+v", tr.CodeLoads)
	}

	// Finish resets: the next trace is clean.
	c.Begin(&types.Transaction{To: &to})
	tr2 := c.Finish(0)
	if len(tr2.Steps) != 0 || tr2.HasSelector {
		t.Fatalf("collector leaked state: %+v", tr2)
	}
	if !tr2.IsTransfer {
		t.Fatal("empty-data call with To should be a transfer")
	}
}

func TestCollectorCreationTx(t *testing.T) {
	c := NewCollector()
	c.Begin(&types.Transaction{To: nil, Data: []byte{1, 2, 3, 4, 5}})
	tr := c.Finish(0)
	if tr.HasSelector || tr.IsTransfer || !tr.Contract.IsZero() {
		t.Fatalf("creation misclassified: %+v", tr)
	}
}

func TestCollectorNilTx(t *testing.T) {
	c := NewCollector()
	c.Begin(nil)
	c.OnStep(&evm.Step{Op: evm.STOP})
	tr := c.Finish(7)
	if len(tr.Steps) != 1 || tr.GasUsed != 7 {
		t.Fatalf("%+v", tr)
	}
}

func TestScalarVsDefaultConfigs(t *testing.T) {
	d := DefaultConfig()
	if !d.EnableDBCache || !d.EnableForwarding || !d.EnableFolding || !d.ReuseContext {
		t.Fatal("default config lacks optimizations")
	}
	if d.NumPUs != 4 || d.DBCacheEntries != 2048 {
		t.Fatalf("default sizing %+v", d)
	}
	s := ScalarConfig()
	if s.EnableDBCache || s.ReuseContext || s.NumPUs != 1 {
		t.Fatalf("scalar config %+v", s)
	}
	// Shared latency constants must agree so speedups isolate features.
	if s.MainMemLat != d.MainMemLat || s.TxSetupLat != d.TxSetupLat {
		t.Fatal("scalar and default configs disagree on latencies")
	}
}
