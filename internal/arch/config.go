// Package arch defines the shared configuration and instruction-trace
// representation of the MTPU architectural model. The functional EVM
// produces traces (arch.Collector); the timing model in arch/pipeline,
// arch/pu and arch/mtpu replays them through the six-stage pipeline, DB
// cache, memory hierarchy and multi-PU scheduler of §3.3.
package arch

// Config holds every architectural parameter. Defaults follow the Table 5
// prototype: four PUs, a 2K-entry DB cache, 1024-deep operand stack, and a
// memory hierarchy of in-core caches, execution-environment buffer and
// main memory.
type Config struct {
	// --- Pipeline / ILP (§3.3.2-3.3.4) ---

	// EnableDBCache turns on the fill unit and decoded-bytecode cache
	// (the F&D optimization of Fig. 12).
	EnableDBCache bool
	// EnableForwarding allows one RAW per line to be absorbed by
	// half-cycle data forwarding between reconfigurable units (DF).
	EnableForwarding bool
	// EnableFolding turns on pattern detection and instruction folding (IF).
	EnableFolding bool
	// DBCacheEntries is the line capacity of the DB cache (LRU).
	// 0 means unbounded (used for upper-limit experiments).
	DBCacheEntries int
	// MinLineInstructions is the smallest line worth caching; shorter
	// fills are discarded (single instructions go to the hotspot side
	// table instead, §3.4.1).
	MinLineInstructions int

	// --- Memory hierarchy (§3.3.6), latencies in cycles ---

	// DCacheLat is an in-core data-cache hit (prefetched data lands here).
	DCacheLat uint64
	// EnvBufferLat is an execution-environment-buffer access (State
	// Buffer hit for recently touched state).
	EnvBufferLat uint64
	// MainMemLat is an on-accelerator main-memory access (cold state).
	MainMemLat uint64
	// StorageWriteLat is charged by SSTORE (write-back buffered).
	StorageWriteLat uint64
	// Sha3PerWordLat is the SHA unit's cost per 32-byte word hashed.
	Sha3PerWordLat uint64
	// CopyPerWordLat is charged per word by the copy instructions.
	CopyPerWordLat uint64
	// ContextSwitchLat is the fixed cost of a CALL-family context switch.
	ContextSwitchLat uint64
	// CodeLoadBytesPerCycle is the bandwidth for loading contract
	// bytecode into the Call_Contract stack (context construction).
	CodeLoadBytesPerCycle uint64
	// TxSetupLat is the fixed per-transaction context-construction cost
	// beyond bytecode loading.
	TxSetupLat uint64

	// --- Reuse / redundancy optimization (§3.3.5) ---

	// ReuseContext keeps the loaded contract bytecode and the DB cache
	// warm across transactions on the same PU.
	ReuseContext bool
	// ContractResidency is how many contract bytecodes the Call_Contract
	// stack keeps loaded per PU (417 KB in Table 5 ≈ several contracts).
	ContractResidency int
	// StateBufferSlots is the recently-touched-state capacity of the
	// shared State Buffer; hits cost EnvBufferLat instead of MainMemLat.
	StateBufferSlots int

	// --- Multi-PU / scheduling (§3.2) ---

	// NumPUs is the number of processing units.
	NumPUs int
	// CandidateWindow is m, the number of candidate transactions the CPU
	// keeps in main memory.
	CandidateWindow int
	// ScheduleOverhead is the per-selection critical-path cost in cycles
	// (the O(n)-bit logic of §3.2.3).
	ScheduleOverhead uint64

	// --- Optimistic execution baseline (Block-STM mode) ---

	// StmValidateBase is the fixed cycle cost of one read-set validation
	// task in the optimistic (block-stm) mode.
	StmValidateBase uint64
	// StmValidatePerKey is the additional validation cost per read-set
	// entry (one versioned lookup and compare).
	StmValidatePerKey uint64
}

// DefaultConfig returns the Table 5 prototype configuration with all
// optimizations enabled.
func DefaultConfig() Config {
	return Config{
		EnableDBCache:       true,
		EnableForwarding:    true,
		EnableFolding:       true,
		DBCacheEntries:      2048,
		MinLineInstructions: 2,

		DCacheLat:             1,
		EnvBufferLat:          4,
		MainMemLat:            20,
		StorageWriteLat:       2,
		Sha3PerWordLat:        4,
		CopyPerWordLat:        1,
		ContextSwitchLat:      16,
		CodeLoadBytesPerCycle: 32,
		TxSetupLat:            40,

		ReuseContext:      true,
		ContractResidency: 8,
		StateBufferSlots:  4096,

		NumPUs:           4,
		CandidateWindow:  8,
		ScheduleOverhead: 4,

		StmValidateBase:   8,
		StmValidatePerKey: 2,
	}
}

// ScalarConfig returns the single-PU baseline with no parallel features —
// the "single PU without any parallelism" of §4.2.
func ScalarConfig() Config {
	c := DefaultConfig()
	c.EnableDBCache = false
	c.EnableForwarding = false
	c.EnableFolding = false
	c.ReuseContext = false
	c.NumPUs = 1
	return c
}
