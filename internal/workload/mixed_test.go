package workload

import (
	"testing"

	"mtpu/internal/types"
)

func TestMixedBlockSucceedsAcrossRatios(t *testing.T) {
	for _, ratio := range []float64{0, 0.5, 1.0} {
		g := NewGenerator(71, 2048)
		genesis := g.Genesis()
		block := g.MixedBlock(120, ratio)
		receipts, err := BuildDAG(genesis, block)
		if err != nil {
			t.Fatalf("ratio %.1f: %v", ratio, err)
		}
		for i, r := range receipts {
			if r.Status != types.ReceiptSuccess {
				t.Fatalf("ratio %.1f: tx %d failed", ratio, i)
			}
		}
	}
}

func TestMixedBlockDependencyScalesWithRatio(t *testing.T) {
	g := NewGenerator(73, 2048)
	genesis := g.Genesis()

	low := g.MixedBlock(120, 0.1)
	if _, err := BuildDAG(genesis, low); err != nil {
		t.Fatal(err)
	}
	high := g.MixedBlock(120, 0.9)
	if _, err := BuildDAG(genesis, high); err != nil {
		t.Fatal(err)
	}
	if low.DAG.CriticalPathLen() >= high.DAG.CriticalPathLen() {
		t.Fatalf("critical path did not grow: %d vs %d",
			low.DAG.CriticalPathLen(), high.DAG.CriticalPathLen())
	}
	// At 90% dependence, two chains dominate: the critical path must be a
	// large fraction of the block.
	if high.DAG.CriticalPathLen() < 30 {
		t.Fatalf("high-ratio critical path only %d", high.DAG.CriticalPathLen())
	}
}

func TestMixedBlockContractVariety(t *testing.T) {
	g := NewGenerator(79, 2048)
	block := g.MixedBlock(120, 0.3)
	distinct := map[types.Address]bool{}
	for _, tx := range block.Transactions {
		if tx.To != nil {
			distinct[*tx.To] = true
		}
	}
	if len(distinct) < 6 {
		t.Fatalf("only %d distinct contracts in mixed block", len(distinct))
	}
}

func TestMixedBlockChainsAreHeterogeneous(t *testing.T) {
	// At 100% dependence, the two chains must not both live on App-
	// engine-eligible tokens (Table 9's workload property).
	g := NewGenerator(83, 2048)
	block := g.MixedBlock(100, 1.0)
	eligible := map[types.Address]bool{
		g.Contract("TetherUSD").Address: true,
		g.Contract("Dai").Address:       true,
	}
	el, inel := 0, 0
	for _, tx := range block.Transactions {
		if tx.To == nil {
			continue
		}
		if eligible[*tx.To] {
			el++
		} else {
			inel++
		}
	}
	if el == 0 || inel == 0 {
		t.Fatalf("chains not heterogeneous: %d eligible, %d ineligible", el, inel)
	}
}
