// Package workload synthesizes blocks with the knobs the paper's
// evaluation sweeps: the dependent-transaction ratio (Figs. 14-16,
// Table 9), the ERC-20 share (Table 8), hotspot skew (TOP-N contracts
// receiving most invocations, §2.2.1), and per-contract batches running
// through all entry functions (Fig. 12/13, Table 7). Blocks carry the
// dependency DAG the consensus stage would have attached, derived from
// the transactions' actual recorded read/write sets.
package workload

import (
	"fmt"
	"math/rand"

	"mtpu/internal/contracts"
	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
)

// BlockNumber is the header height generated blocks carry.
const BlockNumber = 1000

// Coinbase receives fees; its balance is excluded from conflict analysis
// (fee crediting is commutative and handled specially by real systems).
var Coinbase = types.HexToAddress("0x00000000000000000000000000000000000000fe")

// seedTokenBalance is the per-account genesis balance on every token.
const seedTokenBalance = 1 << 40

// Generator produces deterministic synthetic workloads.
type Generator struct {
	rng      *rand.Rand
	accounts []types.Address
	nonces   map[types.Address]uint64

	Contracts []*contracts.Contract
	byName    map[string]*contracts.Contract

	// Bookkeeping so generated transactions always succeed.
	nextFresh    int
	gatewayNonce uint64
	nextListing  int
	listings     []uint64
	nextVoter    int
	auctionBids  map[uint64]uint64
	auctions     []uint64
	nextMintID   uint64
	nextAuction  int
	approved     map[[2]types.Address]bool
}

// NewGenerator builds a generator over numAccounts funded accounts.
func NewGenerator(seed int64, numAccounts int) *Generator {
	g := &Generator{
		rng:         rand.New(rand.NewSource(seed)),
		nonces:      make(map[types.Address]uint64),
		Contracts:   contracts.All(),
		byName:      make(map[string]*contracts.Contract),
		auctionBids: make(map[uint64]uint64),
		nextMintID:  1 << 20,
		approved:    make(map[[2]types.Address]bool),
	}
	for _, c := range g.Contracts {
		g.byName[c.Name] = c
	}
	for i := 0; i < numAccounts; i++ {
		g.accounts = append(g.accounts, accountAddr(i))
	}
	for i := uint64(1); i <= 512; i++ {
		g.listings = append(g.listings, i)
		g.auctions = append(g.auctions, i)
		g.auctionBids[i] = 100
	}
	return g
}

func accountAddr(i int) types.Address {
	var b [20]byte
	b[0] = 0xAC
	b[16] = byte(i >> 24)
	b[17] = byte(i >> 16)
	b[18] = byte(i >> 8)
	b[19] = byte(i)
	return types.Address(b)
}

// beginBlock resets per-block bookkeeping: every generated block is
// self-contained and executes against a fresh copy of Genesis, so nonces
// and resource cursors restart from the genesis state.
func (g *Generator) beginBlock() {
	g.nonces = make(map[types.Address]uint64)
	g.nextFresh = 0
	g.nextVoter = 0
	g.nextListing = 0
	g.gatewayNonce = 0
	g.nextMintID = 1 << 20
	g.nextAuction = 0
	g.approved = make(map[[2]types.Address]bool)
	for i := uint64(1); i <= 512; i++ {
		g.auctionBids[i] = 100
	}
}

// AddContract registers an extra contract beyond the standard set, so
// Genesis deploys it and Contract resolves it by name. It must be
// called before Genesis.
func (g *Generator) AddContract(c *contracts.Contract) {
	if _, dup := g.byName[c.Name]; dup {
		panic("workload: duplicate contract " + c.Name)
	}
	g.Contracts = append(g.Contracts, c)
	g.byName[c.Name] = c
}

// Contract returns a named contract from the generator's set.
func (g *Generator) Contract(name string) *contracts.Contract {
	c := g.byName[name]
	if c == nil {
		panic("workload: unknown contract " + name)
	}
	return c
}

// Genesis deploys every contract and seeds balances, listings, reserves,
// deposits and auctions so any generated transaction can succeed.
func (g *Generator) Genesis() *state.StateDB {
	st := state.New()
	contracts.DeployAll(st, g.Contracts)

	ether := uint256.MustFromDecimal("1000000000000000000000000")
	for _, a := range g.accounts {
		st.SetBalance(a, ether)
	}
	st.SetBalance(contracts.TokenOwner, ether)
	st.DiscardJournal()

	amount := uint256.NewInt(seedTokenBalance)
	for _, name := range []string{"TetherUSD", "Dai", "LinkToken", "FiatTokenProxy"} {
		contracts.SeedBalances(st, g.Contract(name), g.accounts, amount)
	}
	contracts.SeedWETH(st, g.Contract("WETH9"), g.accounts, seedTokenBalance)
	contracts.SeedRouter(st, g.Contract("UniswapV2Router02"), g.accounts, seedTokenBalance, 1<<44)
	contracts.SeedRouter(st, g.Contract("SwapRouter"), g.accounts, seedTokenBalance, 1<<44)
	contracts.SeedGatewayDeposits(st, g.Contract("MainchainGatewayProxy"), g.accounts, seedTokenBalance)
	contracts.SeedMarketListings(st, g.Contract("OpenSea"), g.listings, contracts.TokenOwner, 1000)
	contracts.SeedAuctions(st, g.Contract("CryptoAuction"), g.auctions, contracts.TokenOwner, 100, BlockNumber+1000)
	return st
}

// Header returns the block header generated blocks use.
func (g *Generator) Header() types.BlockHeader {
	return types.BlockHeader{
		Height:    BlockNumber,
		Timestamp: 1700000000,
		Coinbase:  Coinbase,
		GasLimit:  30_000_000,
	}
}

func (g *Generator) nextNonce(a types.Address) uint64 {
	n := g.nonces[a]
	g.nonces[a] = n + 1
	return n
}

// freshAccount hands out accounts never used before in this generator,
// guaranteeing fee/nonce independence between transactions.
func (g *Generator) freshAccount() types.Address {
	if g.nextFresh >= len(g.accounts) {
		// Wrap around: reuse is acceptable for non-independence-critical txs.
		g.nextFresh = 0
	}
	a := g.accounts[g.nextFresh]
	g.nextFresh++
	return a
}

func (g *Generator) call(from types.Address, c *contracts.Contract, value uint64, fnName string, args ...any) *types.Transaction {
	to := c.Address
	tx := &types.Transaction{
		Nonce:    g.nextNonce(from),
		GasPrice: 1,
		GasLimit: 2_000_000,
		From:     from,
		To:       &to,
		Data:     contracts.EncodeCall(c.Function(fnName), args...),
	}
	tx.Value.SetUint64(value)
	return tx
}

// PlainTransfer builds a simple value transfer (a non-SCT transaction).
func (g *Generator) PlainTransfer(from, to types.Address, amount uint64) *types.Transaction {
	tx := &types.Transaction{
		Nonce:    g.nextNonce(from),
		GasPrice: 1,
		GasLimit: 50_000,
		From:     from,
		To:       &to,
	}
	tx.Value.SetUint64(amount)
	return tx
}

// tokenNames are the pure-storage token archetypes whose transfers touch
// only per-account balance slots (freely parallel with fresh accounts).
var tokenNames = []string{"TetherUSD", "FiatTokenProxy", "Dai", "LinkToken"}

// TokenBlock builds a block of n token transfers with approximately the
// target dependent-transaction ratio: a dependent transaction reuses an
// account (as sender) that an earlier transaction credited on the same
// token, creating real read/write conflicts the DAG captures.
func (g *Generator) TokenBlock(n int, depRatio float64) *types.Block {
	g.beginBlock()
	return types.NewBlock(g.Header(), g.tokenTxs(n, depRatio))
}

// ChainBlocks builds numBlocks consecutive token blocks forming a chain:
// account nonces and balances carry over, so the blocks must be executed
// in order against an evolving state — the validator-node scenario in
// which the Contract Table learned during one block interval accelerates
// the next block (§3.4, §2.2.4).
func (g *Generator) ChainBlocks(numBlocks, txsPerBlock int, depRatio float64) []*types.Block {
	g.beginBlock()
	blocks := make([]*types.Block, numBlocks)
	for b := 0; b < numBlocks; b++ {
		header := g.Header()
		header.Height += uint64(b)
		blocks[b] = types.NewBlock(header, g.tokenTxs(txsPerBlock, depRatio))
	}
	return blocks
}

// tokenTxs generates token transfers without resetting block bookkeeping.
func (g *Generator) tokenTxs(n int, depRatio float64) []*types.Transaction {
	type use struct {
		token *contracts.Contract
		addr  types.Address
	}
	// Dependent transactions extend one of a small number of persistent
	// chains (conflicts in real blocks concentrate on a few hot accounts
	// and contracts), so the critical path grows linearly with the
	// dependent ratio: at 100% the block collapses to chainCount chains,
	// matching the residual parallelism the paper's Table 9 implies.
	const chainCount = 2
	var tails [chainCount]*use
	txs := make([]*types.Transaction, 0, n)

	for i := 0; i < n; i++ {
		token := g.Contract(tokenNames[g.rng.Intn(len(tokenNames))])
		var from, to types.Address
		if g.rng.Float64() < depRatio {
			k := g.rng.Intn(chainCount)
			if tails[k] == nil {
				// Start the chain: its first transaction is independent.
				tails[k] = &use{token, g.freshAccount()}
			}
			token = tails[k].token
			from = tails[k].addr
			to = g.freshAccount()
			tails[k] = &use{token, to}
		} else {
			from = g.freshAccount()
			to = g.freshAccount()
		}
		txs = append(txs, g.call(from, token, 0, "transfer", to, uint64(10)))
	}
	return txs
}

// SCTBlock builds a block where sctShare of the transactions invoke a
// smart contract (Tether transfers) and the rest are plain value
// transfers — the workload behind Table 1's observation that SCTs
// dominate execution overhead far beyond their count share.
func (g *Generator) SCTBlock(n int, sctShare float64) *types.Block {
	g.beginBlock()
	txs := make([]*types.Transaction, 0, n)
	sctCount := int(float64(n)*sctShare + 0.5)
	for i := 0; i < n; i++ {
		if i < sctCount {
			from, to := g.freshAccount(), g.freshAccount()
			txs = append(txs, g.call(from, g.Contract("TetherUSD"), 0, "transfer", to, uint64(10)))
		} else {
			txs = append(txs, g.PlainTransfer(g.freshAccount(), g.freshAccount(), 100))
		}
	}
	g.rng.Shuffle(len(txs), func(a, b int) { txs[a], txs[b] = txs[b], txs[a] })
	return types.NewBlock(g.Header(), txs)
}

// MixedBlock builds a block spanning all archetypes with a controlled
// dependent-transaction ratio — the Table 9 workload ("randomly select
// blocks with different dependency transaction ratios"). Dependent
// transactions extend two persistent transfer chains over a mix of
// App-engine-eligible and ineligible contracts; independent transactions
// rotate across every archetype.
func (g *Generator) MixedBlock(n int, depRatio float64) *types.Block {
	g.beginBlock()
	type chain struct {
		token *contracts.Contract
		addr  types.Address
	}
	// One chain runs on a plain ERC-20 (BPU App-engine territory), the
	// other on a wrapped/proxied token the dedicated dataflow cannot
	// accelerate — as in real blocks, dependent work is heterogeneous.
	chainTokens := [2][]string{{"TetherUSD", "Dai"}, {"WETH9", "FiatTokenProxy"}}
	var tails [2]*chain
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		if g.rng.Float64() < depRatio {
			k := g.rng.Intn(len(tails))
			if tails[k] == nil {
				tok := g.Contract(chainTokens[k][g.rng.Intn(2)])
				tails[k] = &chain{tok, g.freshAccount()}
			}
			from := tails[k].addr
			to := g.freshAccount()
			txs = append(txs, g.call(from, tails[k].token, 0, "transfer", to, uint64(10)))
			tails[k].addr = to
			continue
		}
		if i%3 == 0 {
			from, to := g.freshAccount(), g.freshAccount()
			txs = append(txs, g.call(from, g.Contract(tokenNames[g.rng.Intn(len(tokenNames))]), 0,
				"transfer", to, uint64(10)))
			continue
		}
		txs = append(txs, g.otherArchetypeTx(i))
	}
	return types.NewBlock(g.Header(), txs)
}

// ERC20Block builds a block where erc20Share of the transactions are
// Tether transfers (the BPU App engine's target) and the rest rotate
// across the other archetypes — the Table 8 workload.
func (g *Generator) ERC20Block(n int, erc20Share float64) *types.Block {
	g.beginBlock()
	txs := make([]*types.Transaction, 0, n)
	erc20Count := int(float64(n)*erc20Share + 0.5)
	for i := 0; i < n; i++ {
		if i < erc20Count {
			from, to := g.freshAccount(), g.freshAccount()
			txs = append(txs, g.call(from, g.Contract("TetherUSD"), 0, "transfer", to, uint64(10)))
			continue
		}
		txs = append(txs, g.otherArchetypeTx(i))
	}
	// Shuffle so ERC-20 and other transactions interleave.
	g.rng.Shuffle(len(txs), func(a, b int) { txs[a], txs[b] = txs[b], txs[a] })
	return types.NewBlock(g.Header(), txs)
}

// otherArchetypeTx rotates across the non-ERC20 archetypes.
func (g *Generator) otherArchetypeTx(i int) *types.Transaction {
	switch i % 6 {
	case 0: // AMM swap
		router := g.Contract("UniswapV2Router02")
		if i%12 >= 6 {
			router = g.Contract("SwapRouter")
		}
		fn := "swap0For1"
		if i%2 == 1 {
			fn = "swap1For0"
		}
		return g.call(g.freshAccount(), router, 0, fn, uint64(100+g.rng.Intn(1000)))
	case 1: // marketplace buy
		if g.nextListing < len(g.listings) {
			id := g.listings[g.nextListing]
			g.nextListing++
			return g.call(g.freshAccount(), g.Contract("OpenSea"), 1000, "buy", id)
		}
		id := g.nextMintID
		g.nextMintID++
		return g.call(g.freshAccount(), g.Contract("OpenSea"), 0, "mintItem", id)
	case 2: // gateway withdrawal (replay-protected)
		g.gatewayNonce++
		return g.call(g.freshAccount(), g.Contract("MainchainGatewayProxy"), 0,
			"requestWithdrawal", uint64(50), g.gatewayNonce)
	case 3: // WETH wrapped transfer
		return g.call(g.freshAccount(), g.Contract("WETH9"), 0, "transfer", g.freshAccount(), uint64(25))
	case 4: // ballot vote (one account, one vote)
		return g.call(g.voterAccount(), g.Contract("Ballot"), 0, "vote",
			uint64(g.rng.Intn(contracts.BallotProposals)))
	default: // auction bid; distinct ids so shuffled order cannot underbid
		id := g.auctions[g.nextAuction%len(g.auctions)]
		g.nextAuction++
		g.auctionBids[id] += 10
		return g.call(g.freshAccount(), g.Contract("CryptoAuction"), g.auctionBids[id], "bid", id)
	}
}

// voterAccount returns accounts that have never voted, drawn from the
// end of the pool so they never collide with freshAccount senders.
func (g *Generator) voterAccount() types.Address {
	a := g.accounts[len(g.accounts)-1-g.nextVoter%(len(g.accounts)/2)]
	g.nextVoter++
	return a
}

// Batch builds n transactions all invoking one contract, cycling through
// its entry functions and execution paths — the Fig. 12/13 and Table 7
// workload ("run through all the execution paths of that smart contract
// as much as possible").
func (g *Generator) Batch(c *contracts.Contract, n int) *types.Block {
	g.beginBlock()
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		txs = append(txs, g.batchTx(c, i))
	}
	return types.NewBlock(g.Header(), txs)
}

func (g *Generator) batchTx(c *contracts.Contract, i int) *types.Transaction {
	fresh := g.freshAccount
	switch c.Name {
	case "TetherUSD", "Dai", "FiatTokenProxy", "LinkToken":
		switch i % 16 {
		case 10:
			return g.call(fresh(), c, 0, "increaseAllowance", fresh(), uint64(50))
		case 11:
			// Raise then lower, as a holder would.
			owner := fresh()
			if i%32 < 16 {
				return g.call(owner, c, 0, "increaseAllowance", fresh(), uint64(75))
			}
			return g.call(owner, c, 0, "decimals")
		case 12:
			return g.call(fresh(), c, 0, "decimals")
		case 13:
			return g.call(fresh(), c, 0, "getOwner")
		case 14:
			return g.call(fresh(), c, 0, "batchTransfer3", fresh(), fresh(), fresh(), uint64(5))
		case 15:
			return g.call(fresh(), c, 0, "balanceOf", fresh())
		}
		switch i % 10 {
		case 0:
			return g.call(fresh(), c, 0, "balanceOf", fresh())
		case 1:
			return g.call(fresh(), c, 0, "totalSupply")
		case 2, 3:
			// approve then transferFrom by the approved spender.
			owner, spender := fresh(), fresh()
			if i%10 == 2 {
				g.approved[[2]types.Address{owner, spender}] = true
				return g.call(owner, c, 0, "approve", spender, uint64(1000))
			}
			for pair := range g.approved {
				delete(g.approved, pair)
				return g.call(pair[1], c, 0, "transferFrom", pair[0], fresh(), uint64(5))
			}
			return g.call(fresh(), c, 0, "transfer", fresh(), uint64(10))
		case 4:
			if c.Name == "LinkToken" {
				return g.call(fresh(), c, 0, "transferAndCall", contracts.ReceiverAddr, uint64(7))
			}
			if c.Name == "TetherUSD" {
				return g.call(contracts.TokenOwner, c, 0, "issue", uint64(1000))
			}
			if c.Name == "Dai" {
				return g.call(contracts.TokenOwner, c, 0, "mint", fresh(), uint64(1000))
			}
			return g.call(fresh(), c, 0, "transfer", fresh(), uint64(10))
		default:
			return g.call(fresh(), c, 0, "transfer", fresh(), uint64(10))
		}

	case "WETH9":
		switch i % 5 {
		case 0:
			return g.call(fresh(), c, 1000, "deposit")
		case 1:
			return g.call(fresh(), c, 0, "withdraw", uint64(100))
		case 2:
			return g.call(fresh(), c, 0, "totalSupply")
		default:
			return g.call(fresh(), c, 0, "transfer", fresh(), uint64(25))
		}

	case "UniswapV2Router02", "SwapRouter":
		switch i % 6 {
		case 0:
			return g.call(fresh(), c, 0, "addLiquidity", uint64(500), uint64(500))
		case 1:
			return g.call(fresh(), c, 0, "reserve0")
		case 2:
			return g.call(fresh(), c, 0, "balance0Of", fresh())
		case 3:
			return g.call(fresh(), c, 0, "swap1For0", uint64(100+uint64(i)))
		default:
			return g.call(fresh(), c, 0, "swap0For1", uint64(100+uint64(i)))
		}

	case "OpenSea":
		switch i % 5 {
		case 0:
			id := g.nextMintID
			g.nextMintID++
			return g.call(fresh(), c, 0, "mintItem", id)
		case 1:
			if g.nextListing < len(g.listings) {
				id := g.listings[g.nextListing]
				g.nextListing++
				return g.call(fresh(), c, 1000, "buy", id)
			}
			return g.call(fresh(), c, 0, "ownerOf", uint64(1))
		case 2:
			return g.call(fresh(), c, 0, "priceOf", uint64(1+uint64(i)%512))
		case 3:
			return g.call(fresh(), c, 0, "proceedsOf", contracts.TokenOwner)
		default:
			return g.call(fresh(), c, 0, "ownerOf", uint64(1+uint64(i)%512))
		}

	case "MainchainGatewayProxy":
		switch i % 4 {
		case 0:
			return g.call(fresh(), c, 500, "deposit")
		case 1:
			return g.call(fresh(), c, 0, "depositOf", fresh())
		case 2:
			g.gatewayNonce++
			return g.call(fresh(), c, 0, "isProcessed", g.gatewayNonce)
		default:
			g.gatewayNonce++
			return g.call(fresh(), c, 0, "requestWithdrawal", uint64(50), g.gatewayNonce)
		}

	case "Ballot":
		switch i % 4 {
		case 0:
			return g.call(fresh(), c, 0, "winningProposal")
		case 1:
			return g.call(fresh(), c, 0, "voteCount", uint64(i%contracts.BallotProposals))
		default:
			return g.call(g.voterAccount(), c, 0, "vote", uint64(i%contracts.BallotProposals))
		}

	case "CryptoAuction":
		switch i % 3 {
		case 0:
			id := g.nextMintID
			g.nextMintID++
			return g.call(fresh(), c, 0, "createSaleAuction", id, uint64(100))
		case 1:
			return g.call(fresh(), c, 0, "highestBid", g.auctions[i%len(g.auctions)])
		default:
			id := g.auctions[g.rng.Intn(len(g.auctions))]
			g.auctionBids[id] += 10
			return g.call(fresh(), c, g.auctionBids[id], "bid", id)
		}
	}
	// Fallback: first function with no arguments, else a transfer shape.
	return g.call(fresh(), c, 0, c.Functions[0].Name)
}

// BuildChainDAG builds the per-block DAGs of a chain by executing the
// blocks cumulatively against a copy of genesis (each block's conflicts
// are intra-block; cross-block ordering is given by the chain itself).
func BuildChainDAG(genesis *state.StateDB, blocks []*types.Block) error {
	st := genesis.Copy()
	for i, block := range blocks {
		if _, err := buildDAGOn(st, block); err != nil {
			return fmt.Errorf("workload: block %d: %w", i, err)
		}
	}
	return nil
}

// BuildDAG executes the block sequentially against a copy of genesis,
// records each transaction's read/write sets, and fills block.DAG with
// every conflict edge (i → j when i's writes intersect j's reads or
// writes, or i's reads intersect j's writes). The coinbase balance is
// excluded: fee crediting is commutative. It returns the receipts of the
// sequential run and an error if any transaction failed.
func BuildDAG(genesis *state.StateDB, block *types.Block) ([]*types.Receipt, error) {
	return buildDAGOn(genesis.Copy(), block)
}

// buildDAGOn is BuildDAG against a mutable state (committed, not copied).
func buildDAGOn(st *state.StateDB, block *types.Block) ([]*types.Receipt, error) {
	e := evm.New(evm.NewBlockContext(block.Header), st)
	n := len(block.Transactions)
	reads := make([]state.AccessSet, n)
	writes := make([]state.AccessSet, n)
	receipts := make([]*types.Receipt, n)

	coinbaseKey := state.AccessKey{Kind: state.AccessBalance, Addr: block.Header.Coinbase}
	for i, tx := range block.Transactions {
		st.BeginAccessRecord()
		r, err := evm.ApplyTransaction(e, tx, i)
		rd, wr := st.EndAccessRecord()
		if err != nil {
			return nil, fmt.Errorf("workload: tx %d invalid: %w", i, err)
		}
		delete(rd, coinbaseKey)
		delete(wr, coinbaseKey)
		reads[i], writes[i] = rd, wr
		receipts[i] = r
		if r.Status != types.ReceiptSuccess {
			return receipts, fmt.Errorf("workload: tx %d reverted", i)
		}
	}

	block.DAG = types.NewDAG(n)
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if writes[i].Overlaps(reads[j]) || writes[i].Overlaps(writes[j]) ||
				reads[i].Overlaps(writes[j]) {
				block.DAG.AddEdge(i, j)
			}
		}
	}
	return receipts, nil
}

// VerifyDAG re-derives the block's conflict edges by sequential replay
// against a copy of genesis and checks they match block.DAG exactly —
// no missing edge (a conflict the consensus stage failed to declare) and
// no spurious edge (a declared dependency no replay justifies). Modes
// that trust the DAG are only as correct as this equivalence.
func VerifyDAG(genesis *state.StateDB, block *types.Block) error {
	st := genesis.Copy()
	e := evm.New(evm.NewBlockContext(block.Header), st)
	n := len(block.Transactions)
	reads := make([]state.AccessSet, n)
	writes := make([]state.AccessSet, n)

	coinbaseKey := state.AccessKey{Kind: state.AccessBalance, Addr: block.Header.Coinbase}
	for i, tx := range block.Transactions {
		st.BeginAccessRecord()
		_, err := evm.ApplyTransaction(e, tx, i)
		rd, wr := st.EndAccessRecord()
		if err != nil {
			return fmt.Errorf("workload: verify-dag: tx %d invalid: %w", i, err)
		}
		delete(rd, coinbaseKey)
		delete(wr, coinbaseKey)
		reads[i], writes[i] = rd, wr
	}

	if block.DAG == nil || block.DAG.Len() != n {
		return fmt.Errorf("workload: verify-dag: block DAG covers %d of %d transactions", block.DAG.Len(), n)
	}
	declared := make([]map[int]bool, n)
	for j, deps := range block.DAG.Deps {
		declared[j] = make(map[int]bool, len(deps))
		for _, i := range deps {
			declared[j][i] = true
		}
	}
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			conflict := writes[i].Overlaps(reads[j]) || writes[i].Overlaps(writes[j]) ||
				reads[i].Overlaps(writes[j])
			if conflict && !declared[j][i] {
				return fmt.Errorf("workload: verify-dag: replay conflict %d→%d missing from the DAG", i, j)
			}
			if !conflict && declared[j][i] {
				return fmt.Errorf("workload: verify-dag: DAG edge %d→%d not justified by any replay conflict", i, j)
			}
		}
	}
	return nil
}

// ContractOf returns the contract address each transaction invokes (zero
// for plain transfers), the scheduler's redundancy signal.
func ContractOf(block *types.Block) []types.Address {
	out := make([]types.Address, len(block.Transactions))
	for i, tx := range block.Transactions {
		if tx.To != nil && len(tx.Data) > 0 {
			out[i] = *tx.To
		}
	}
	return out
}
